# Tier-1 gate and developer conveniences for CHAOS-Go.

GO ?= go

# COVER_FLOOR is the recorded statement-coverage floor of ./internal/...
# (89.8% measured under -short at the time of recording); `make
# cover-check` fails when total coverage drops below it. Raise it when
# coverage durably improves.
COVER_FLOOR = 89.0

.PHONY: check build vet lint analyze test race cover cover-check bench bench-json bench-gate bench-baseline profile-cpu profile-mem fuzz-short service-bench quickstart tables examples docs-check api-check api-snapshot

# The BenchmarkHot* suite measures the steady state of the arena-backed
# hot paths with -benchmem; the gate (cmd/benchjson -gate) fails CI when
# any of them allocates past the checked-in BENCH_BASELINE.json (5%
# scheduling-noise headroom, exact for allocation-free kernels) or slows
# past 1.5x its baseline ns/op. Refresh the baseline with `make
# bench-baseline` after an intentional perf change and commit the diff.
BENCH_GATE_CMD = $(GO) test -run '^$$' -bench '^BenchmarkHot' -benchmem -benchtime 10x ./internal/partition ./internal/geocol ./internal/stream

check: build lint analyze test docs-check api-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# analyze runs chaosvet, the project-specific static-analysis suite
# (internal/analysis): SPMD collective divergence, hot-path allocation,
# deprecated string-spec usage, and discarded exchange results. See
# docs/ANALYZERS.md for the catalog and the //chaosvet:ignore contract.
analyze:
	$(GO) run ./cmd/chaosvet ./...
	@echo "analyze OK"

# lint is the explicit style gate: fails when any file needs gofmt, then
# runs go vet.
lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

# examples runs the testable godoc examples of the public API and the
# partitioner library.
examples:
	$(GO) test -run Example -v ./chaos ./internal/partition

# docs-check is the documentation gate: the markdown link checker over
# the README, docs/ and examples/ (cmd/docscheck: relative targets must
# exist, anchors must name real headings) and a `go doc` rendering
# smoke run over the packages with curated package documentation.
# (Doc-comment hygiene itself is go vet's job, which lint already
# runs.)
docs-check:
	$(GO) run ./cmd/docscheck README.md docs examples
	@$(GO) doc ./internal/partition >/dev/null
	@$(GO) doc ./internal/geocol >/dev/null
	@$(GO) doc ./internal/partition Multilevel >/dev/null
	@echo "docs-check OK"

# api-check pins the exported surface of the public chaos package:
# `go doc -all ./chaos` (normalized: trailing whitespace stripped) must
# match the reviewed snapshot in docs/API.txt, so accidental API drift
# fails tier-1. After an intentional API change, review the diff and
# refresh the snapshot with `make api-snapshot`.
api-check:
	@$(GO) doc -all ./chaos | sed -e 's/[[:space:]]*$$//' > .api-current.txt; \
	if ! diff -u docs/API.txt .api-current.txt; then \
		rm -f .api-current.txt; \
		echo "FAIL: exported chaos API drifted from docs/API.txt;"; \
		echo "      review the diff above and run 'make api-snapshot' if intended"; \
		exit 1; \
	fi; \
	rm -f .api-current.txt; echo "api-check OK"

api-snapshot:
	$(GO) doc -all ./chaos | sed -e 's/[[:space:]]*$$//' > docs/API.txt
	@echo "wrote docs/API.txt"

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the machine
# simulator is goroutine-per-rank, so this is the gate that matters.
race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# cover-check enforces the statement-coverage floor over ./internal/...
# -short skips the host-timing comparisons, which are meaningless (and
# flaky) under coverage instrumentation overhead.
cover-check:
	$(GO) test -short -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total ./internal/... coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "FAIL: coverage $$total% is below the recorded $(COVER_FLOOR)% floor"; exit 1; }

bench:
	$(GO) test -bench . -benchtime 10x -run '^$$' ./...

# fuzz-short gives each fuzz target a 30-second budget — enough for the
# corpus plus a few hundred thousand mutated executions. Go runs one
# -fuzz target per invocation, hence one line per target.
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzAlltoAll$$' -fuzztime 30s ./internal/machine
	$(GO) test -run '^$$' -fuzz '^FuzzGhostExchange$$' -fuzztime 30s ./internal/geocol
	$(GO) test -run '^$$' -fuzz '^FuzzWireFrame$$' -fuzztime 30s ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzStreamDecode$$' -fuzztime 30s ./internal/stream

# bench-json emits the perf-trajectory document CI archives per push.
bench-json:
	$(GO) test -bench . -benchtime 5x -run '^$$' ./... | $(GO) run ./cmd/benchjson -o BENCH_local.json
	@echo wrote BENCH_local.json

# bench-gate is the allocs/op regression rail (required on pull
# requests): hot-path benchmarks against BENCH_BASELINE.json.
bench-gate:
	$(BENCH_GATE_CMD) | $(GO) run ./cmd/benchjson -gate BENCH_BASELINE.json

# bench-baseline re-records the gate baseline.
bench-baseline:
	$(BENCH_GATE_CMD) | $(GO) run ./cmd/benchjson -sha "" -o BENCH_BASELINE.json
	@echo wrote BENCH_BASELINE.json

# profile-cpu / profile-mem run the 21952-node distributed V-cycle
# benchmark under the Go profiler and drop pprof files under the
# git-ignored profiles/ directory; inspect them with
# `go tool pprof profiles/cpu.out`. See README "Profiling".
profile-cpu:
	@mkdir -p profiles
	$(GO) test -run '^$$' -bench BenchmarkParallelMultilevel8 -benchtime 5x \
		-cpuprofile profiles/cpu.out -o profiles/partition.test ./internal/partition
	@echo "wrote profiles/cpu.out; inspect with: go tool pprof profiles/partition.test profiles/cpu.out"

profile-mem:
	@mkdir -p profiles
	$(GO) test -run '^$$' -bench BenchmarkParallelMultilevel8 -benchtime 5x -benchmem \
		-memprofile profiles/mem.out -o profiles/partition.test ./internal/partition
	@echo "wrote profiles/mem.out; inspect with: go tool pprof -sample_index=alloc_objects profiles/partition.test profiles/mem.out"

# service-bench runs the partitioning-service load study on the short
# profile: a serial client, then 16 concurrent clients, against a
# fresh in-process chaosd each — failing below a 2x aggregate
# partitions/sec gain (the CI service job's acceptance gate).
service-bench:
	$(GO) run ./cmd/chaosbench -service -quick -min-speedup 2.0

quickstart:
	$(GO) run ./examples/quickstart

tables:
	$(GO) run ./cmd/chaosbench -quick -markdown
