# Tier-1 gate and developer conveniences for CHAOS-Go.

GO ?= go

.PHONY: check build vet lint test cover bench quickstart tables examples

check: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the explicit style gate: fails when any file needs gofmt, then
# runs go vet.
lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

# examples runs the testable godoc examples of the public API.
examples:
	$(GO) test -run Example -v ./chaos

test:
	$(GO) test ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench . -benchtime 10x -run '^$$' ./...

quickstart:
	$(GO) run ./examples/quickstart

tables:
	$(GO) run ./cmd/chaosbench -quick -markdown
