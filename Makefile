# Tier-1 gate and developer conveniences for CHAOS-Go.

GO ?= go

.PHONY: check build vet test cover bench quickstart tables

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench . -benchtime 10x -run '^$$' ./...

quickstart:
	$(GO) run ./examples/quickstart

tables:
	$(GO) run ./cmd/chaosbench -quick -markdown
