// Package bench holds the benchmark harness that regenerates the
// paper's tables as Go benchmarks. Each BenchmarkTableN* target runs
// one cell (or column) of the corresponding paper table on a scaled
// grid and reports the simulated machine time as the custom metric
// "vsec" alongside host ns/op; cmd/chaosbench runs the full paper-size
// grid. Ablation benchmarks cover the design choices called out in
// DESIGN.md.
package bench

import (
	"testing"

	"chaos/internal/core"
	"chaos/internal/experiments"
	"chaos/internal/iterpart"
	"chaos/internal/machine"
	"chaos/internal/partition"
	"chaos/internal/registry"
	"chaos/internal/schedule"
	"chaos/internal/ttable"

	"chaos/internal/dist"
)

// benchGrid is the scaled configuration used by the Go benchmarks
// (the full paper grid lives behind cmd/chaosbench).
const (
	benchMeshNodes = 2000
	benchProcs     = 8
	benchIters     = 10
)

func runCell(b *testing.B, cfg experiments.Config) {
	b.Helper()
	var total float64
	for i := 0; i < b.N; i++ {
		ph, err := experiments.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = ph.Total()
	}
	b.ReportMetric(total, "vsec")
}

// --- Table 1: schedule reuse vs none (paper Table 1) ---

func BenchmarkTable1ScheduleReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters,
	})
}

func BenchmarkTable1NoReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: false, Iters: benchIters,
	})
}

func BenchmarkTable1MDScheduleReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: 4, Workload: experiments.Water648(),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters,
	})
}

func BenchmarkTable1MDNoReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: 4, Workload: experiments.Water648(),
		Spec: partition.MustSpec("RCB"), Reuse: false, Iters: benchIters,
	})
}

// --- Table 2: partitioner/codegen regimes on the mesh template ---

func BenchmarkTable2RCBCompilerReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters, Compiler: true,
	})
}

func BenchmarkTable2RCBCompilerNoReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: false, Iters: benchIters, Compiler: true,
	})
}

func BenchmarkTable2RCBHand(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters,
	})
}

func BenchmarkTable2BlockHand(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("BLOCK"), Reuse: true, Iters: benchIters,
	})
}

func BenchmarkTable2RSBCompilerReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RSB"), Reuse: true, Iters: benchIters, Compiler: true,
	})
}

func BenchmarkTable2MultilevelCompilerReuse(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("MULTILEVEL"), Reuse: true, Iters: benchIters, Compiler: true,
	})
}

// --- Table 3: compiler-linked RCB detail (one cell per proc count) ---

func BenchmarkTable3RCBDetailP4(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: 4, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters, Compiler: true,
	})
}

func BenchmarkTable3RCBDetailP16(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: 16, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters, Compiler: true,
	})
}

// --- Table 4: BLOCK partitioning with schedule reuse ---

func BenchmarkTable4BlockP4(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: 4, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("BLOCK"), Reuse: true, Iters: benchIters,
	})
}

func BenchmarkTable4BlockP16(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: 16, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("BLOCK"), Reuse: true, Iters: benchIters,
	})
}

// --- Real-cores backend: wall time vs virtual time at P=1 and P=8 ---

// benchReal runs the RCB pipeline on the Real execution backend and
// reports both trajectories: host wall time ("wallms", max across
// ranks) and the virtual time the same run charged ("vsec"). Compare
// the P=1 and P=8 wallms on a multi-core host for real speedup;
// cmd/chaosbench -backend=real runs the paper-size grid.
func benchReal(b *testing.B, procs int) {
	b.Helper()
	var wall, vsec float64
	for i := 0; i < b.N; i++ {
		ph, err := experiments.Run(experiments.Config{
			Procs: procs, Workload: experiments.MeshWorkload(benchMeshNodes),
			Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters,
			Backend: machine.Real, Seed: 1993,
		})
		if err != nil {
			b.Fatal(err)
		}
		wall = ph.Wall * 1000
		vsec = ph.Total()
	}
	b.ReportMetric(wall, "wallms")
	b.ReportMetric(vsec, "vsec")
}

func BenchmarkRealBackendMeshP1(b *testing.B) { benchReal(b, 1) }
func BenchmarkRealBackendMeshP8(b *testing.B) { benchReal(b, 8) }

// --- Ablation: inspector dedup of duplicate off-processor refs ---

func benchDedup(b *testing.B, noDedup bool) {
	b.Helper()
	w := experiments.MeshWorkload(benchMeshNodes)
	var vsec float64
	for i := 0; i < b.N; i++ {
		t, err := machine.MaxClock(machine.IPSC860(benchProcs), func(c *machine.Ctx) {
			d := dist.NewBlock(w.NNode, c.Procs())
			local := make([]float64, d.LocalSize(c.Rank()))
			ib := dist.NewBlock(w.NIter, c.Procs())
			lo, hi := ib.Lo(c.Rank()), ib.Hi(c.Rank())
			globals := make([]int, 0, 2*(hi-lo))
			for e := lo; e < hi; e++ {
				globals = append(globals, w.E1[e], w.E2[e])
			}
			sch, _ := schedule.BuildGather(c, ttable.Regular{D: d}, len(local),
				globals, schedule.Options{NoDedup: noDedup})
			ghost := make([]float64, sch.NGhost())
			for it := 0; it < benchIters; it++ {
				sch.Gather(c, local, ghost)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		vsec = t
	}
	b.ReportMetric(vsec, "vsec")
}

func BenchmarkAblationDedup(b *testing.B)   { benchDedup(b, false) }
func BenchmarkAblationNoDedup(b *testing.B) { benchDedup(b, true) }

// --- Ablation: iteration-partitioning policy ---

func benchIterPolicy(b *testing.B, pol iterpart.Policy, skip bool) {
	b.Helper()
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RCB"), Reuse: true, Iters: benchIters,
		IterPolicy: pol, SkipIterPart: skip,
	})
}

func BenchmarkAblationIterAlmostOwner(b *testing.B) {
	benchIterPolicy(b, iterpart.AlmostOwnerComputes, false)
}
func BenchmarkAblationIterOwnerComputes(b *testing.B) {
	benchIterPolicy(b, iterpart.OwnerComputes, false)
}
func BenchmarkAblationIterBlock(b *testing.B) {
	benchIterPolicy(b, iterpart.BlockIterations, true)
}

// --- Ablation: KL refinement on top of RSB ---

func BenchmarkAblationRSB(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RSB"), Reuse: true, Iters: benchIters,
	})
}

func BenchmarkAblationRSBKL(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("RSB-KL"), Reuse: true, Iters: benchIters,
	})
}

// --- Ablation: multilevel V-cycle vs full spectral bisection ---

func BenchmarkAblationMultilevel(b *testing.B) {
	runCell(b, experiments.Config{
		Procs: benchProcs, Workload: experiments.MeshWorkload(benchMeshNodes),
		Spec: partition.MustSpec("MULTILEVEL"), Reuse: true, Iters: benchIters,
	})
}

// --- Ablation: distributed vs replicated translation table ---

func benchTranslation(b *testing.B, replicated, cached bool) {
	b.Helper()
	w := experiments.MeshWorkload(benchMeshNodes)
	var vsec float64
	for i := 0; i < b.N; i++ {
		t, err := machine.MaxClock(machine.IPSC860(benchProcs), func(c *machine.Ctx) {
			// An irregular distribution dealt round-robin by hash.
			var mine []int
			for g := 0; g < w.NNode; g++ {
				if int(uint(g*2654435761)>>4)%c.Procs() == c.Rank() {
					mine = append(mine, g)
				}
			}
			tab := ttable.Build(c, w.NNode, mine)
			if cached {
				tab.EnableCache()
			}
			var res ttable.Resolver = tab
			if replicated {
				res = ttable.Regular{D: tab.Replicated(c)}
			}
			ib := dist.NewBlock(w.NIter, c.Procs())
			lo, hi := ib.Lo(c.Rank()), ib.Hi(c.Rank())
			globals := make([]int, 0, 2*(hi-lo))
			for e := lo; e < hi; e++ {
				globals = append(globals, w.E1[e], w.E2[e])
			}
			for it := 0; it < 5; it++ {
				res.Resolve(c, globals)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		vsec = t
	}
	b.ReportMetric(vsec, "vsec")
}

func BenchmarkAblationTranslationDistributed(b *testing.B) { benchTranslation(b, false, false) }
func BenchmarkAblationTranslationReplicated(b *testing.B)  { benchTranslation(b, true, false) }
func BenchmarkAblationTranslationCached(b *testing.B)      { benchTranslation(b, false, true) }

// --- Ablation: schedule fusion (one comm phase per array vs per access) ---

func benchMergeAccesses(b *testing.B, merge bool) {
	b.Helper()
	w := experiments.MeshWorkload(benchMeshNodes)
	var vsec float64
	for i := 0; i < b.N; i++ {
		t, err := machine.MaxClock(machine.IPSC860(benchProcs), func(c *machine.Ctx) {
			s := core.NewSession(c)
			x := s.NewArray("x", w.NNode)
			y := s.NewArray("y", w.NNode)
			x.FillByGlobal(w.Init)
			e1 := s.NewIntArray("e1", w.NIter)
			e2 := s.NewIntArray("e2", w.NIter)
			e1.FillByGlobal(func(g int) int { return w.E1[g] })
			e2.FillByGlobal(func(g int) int { return w.E2[g] })
			loop := s.NewLoop("sweep", w.NIter,
				[]core.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
				[]core.Write{{Arr: y, Ind: e1, Op: core.Add}, {Arr: y, Ind: e2, Op: core.Add}},
				w.Flops, w.Kernel)
			loop.MergeAccesses = merge
			for it := 0; it < benchIters; it++ {
				loop.Execute()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		vsec = t
	}
	b.ReportMetric(vsec, "vsec")
}

func BenchmarkAblationSeparateAccesses(b *testing.B) { benchMergeAccesses(b, false) }
func BenchmarkAblationMergedAccesses(b *testing.B)   { benchMergeAccesses(b, true) }

// --- Ablation: reuse-check overhead (the cost of the guard itself) ---

func BenchmarkAblationReuseCheckOverhead(b *testing.B) {
	// Measures the pure bookkeeping cost of the conservative check on
	// an always-valid record: this is the host-side overhead every
	// executor iteration pays for the ability to reuse schedules — a
	// handful of integer comparisons, exactly as the paper argues.
	r := registry.New()
	a := dist.NewDADAllocator()
	data := []dist.DAD{a.New(dist.Irregular, 53000), a.New(dist.Irregular, 53000)}
	ind := []dist.DAD{a.New(dist.Block, 350000), a.New(dist.Block, 350000)}
	var rec registry.LoopRecord
	r.Record(&rec, data, ind)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Check(&rec, data, ind) {
			b.Fatal("check unexpectedly failed")
		}
	}
}
