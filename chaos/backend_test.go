package chaos_test

import (
	"context"
	"errors"
	"testing"

	"chaos/chaos"
)

// ringSweep is a small full-pipeline body used by the backend tests:
// ring mesh, RSB partitioning, three executor sweeps. It stores the
// rank-0 gathered y vector through out.
func ringSweep(t *testing.T, out *[]float64) func(*chaos.Session) {
	const n = 24
	return func(s *chaos.Session) {
		x := s.NewArray("x", n)
		y := s.NewArray("y", n)
		x.FillByGlobal(func(g int) float64 { return float64(g + 1) })
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("e1", n)
		e2 := s.NewIntArray("e2", n)
		e1.FillByGlobal(func(g int) int { return g })
		e2.FillByGlobal(func(g int) int { return (g + 1) % n })
		g := s.Construct(n, chaos.GeoColInput{Link1: e1, Link2: e2})
		m, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRSB}, s.C.Procs())
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(m, []*chaos.Array{x, y}, nil)
		loop := s.NewLoop("ring", n,
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			2, func(_ int, in, out []float64) {
				out[0] = in[0] + in[1]
				out[1] = in[1] - in[0]
			})
		loop.PartitionIterations(chaos.AlmostOwnerComputes)
		for it := 0; it < 3; it++ {
			loop.Execute()
		}
		full := s.C.AllGatherFloats(y.Data)
		if s.C.Rank() == 0 {
			*out = full
		}
	}
}

// TestRunRealMatchesRun pins the public backend contract: RunReal
// produces bit-identical results to Run, reports both timing
// trajectories, and the Backend/Stats aliases interoperate with a
// Config.Backend-selected Run.
func TestRunRealMatchesRun(t *testing.T) {
	const p = 4
	var simY, realY []float64
	if err := chaos.Run(chaos.IPSC860(p), ringSweep(t, &simY)); err != nil {
		t.Fatal(err)
	}
	st, err := chaos.RunReal(context.Background(), chaos.IPSC860(p), ringSweep(t, &realY))
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxClock <= 0 || st.Elapsed <= 0 {
		t.Errorf("stats missing a trajectory: %+v", st)
	}
	if len(simY) == 0 || len(simY) != len(realY) {
		t.Fatalf("gathered %d sim vs %d real values", len(simY), len(realY))
	}
	for i := range simY {
		if simY[i] != realY[i] {
			t.Errorf("y[%d]: real %v != sim %v", i, realY[i], simY[i])
		}
	}

	// Config.Backend is the equivalent spelling.
	cfg := chaos.IPSC860(p)
	cfg.Backend = chaos.Real
	var againY []float64
	if err := chaos.Run(cfg, ringSweep(t, &againY)); err != nil {
		t.Fatal(err)
	}
	for i := range simY {
		if againY[i] != simY[i] {
			t.Errorf("Config.Backend run y[%d]: %v != %v", i, againY[i], simY[i])
		}
	}
}

// TestRunRealCancelled pins the cancellation contract on the public
// surface: a pre-cancelled context unwinds the run with an error that
// wraps context.Canceled.
func TestRunRealCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var y []float64
	_, err := chaos.RunReal(ctx, chaos.IPSC860(2), ringSweep(t, &y))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
