// Package chaos is the public API of CHAOS-Go, a reproduction of the
// CHAOS/PARTI runtime-compilation system of Ponnusamy, Saltz and
// Choudhary, "Runtime Compilation Techniques for Data Partitioning and
// Communication Schedule Reuse" (Supercomputing '93).
//
// The API mirrors the paper's Fortran D language extensions at the
// runtime-call level — the calls a distributed-memory compiler would
// emit (paper Figure 6):
//
//	chaos.Run(chaos.IPSC860(16), func(s *chaos.Session) {
//	    x := s.NewArray("x", nnode)            // REAL*8 x(nnode), BLOCK
//	    y := s.NewArray("y", nnode)            // REAL*8 y(nnode), BLOCK
//	    e1 := s.NewIntArray("end_pt1", nedge)  // INTEGER end_pt1(nedge)
//	    e2 := s.NewIntArray("end_pt2", nedge)
//	    // ... fill arrays ...
//	    g := s.Construct(nnode, chaos.GeoColInput{Link1: e1, Link2: e2})          // C$ CONSTRUCT G (nnode, LINK(...))
//	    m, _ := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRSB}, // C$ SET distfmt BY PARTITIONING G USING RSB
//	        s.C.Procs())
//	    s.Redistribute(m, []*chaos.Array{x, y}, nil)                              // C$ REDISTRIBUTE reg(distfmt)
//	    loop := s.NewLoop("sweep", nedge,
//	        []chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
//	        []chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
//	        8, flux)
//	    loop.PartitionIterations(chaos.AlmostOwnerComputes)
//	    for t := 0; t < 100; t++ {
//	        loop.Execute() // inspector runs once; schedules are reused
//	    }
//	})
//
// Everything runs on a simulated distributed-memory machine (package
// internal/machine): each processor is a goroutine with a virtual clock
// charged by an iPSC/860-calibrated cost model, so experiments report
// deterministic machine-like times. Config.Backend (or RunReal)
// switches to the Real backend, where the same program executes on
// host cores with physical payload delivery and reports wall time
// next to the virtual clock; results are bit-identical between
// backends at a fixed Config.Seed.
//
// SetPartitioning selects from the partitioner library of the paper's
// Section 4.2 through a typed PartitionSpec: MethodRCB and
// MethodInertial consume GEOMETRY; MethodRSB, MethodRSBKL, MethodKL
// and MethodMultilevel consume LINK connectivity; MethodBlock and
// MethodRandom are baselines. Every built-in partitioner declares its
// requirements as Capabilities, and a spec is validated against them
// and the graph's components before any work starts, so mismatches
// fail with a descriptive error at the call site. MULTILEVEL (coarsen
// with heavy-edge matching, spectral-solve the coarse graph, uncoarsen
// with KL refinement) matches RSB's cut quality at a small fraction of
// its cost and is the recommended default for large meshes; on
// machines with more than one processor it coarsens distributedly over
// the block-distributed GeoCoL graph, so — alone in the serial
// connectivity family — its partitioning time keeps falling as
// processors are added, and its tuning knobs (CoarsenTo,
// ParallelThreshold, FMPasses, VCycle, Seed, Imbalance) are
// PartitionSpec fields. See docs/ARCHITECTURE.md for the trade-offs.
//
// MethodStream is the out-of-core member of the family: a streaming
// partitioner (buffered LDG/Fennel with a clustering bootstrap and
// restream polish, package internal/stream) whose resident state is
// bounded by the slab granularity rather than the edge count, for
// meshes too large to hold in memory. Its knobs (Objective,
// StreamBuffer, Restreams, BalanceSlack) are PartitionSpec fields too,
// and `meshgen -stream` writes meshes in its bounded-memory edge-
// stream file format. A Repartitioner with FirstTouch set to
// MethodStream seeds its first partition out-of-core and hands the
// result to MULTILEVEL refinement for the warm path.
//
// Session.NewRepartitioner returns the stateful Repartitioner handle
// for meshes that change over time: unchanged inputs are served from
// cache (the paper's Section 3 reuse guard), and slightly changed
// meshes are warm-repartitioned off the retained multilevel coarsening
// ladder at a fraction of a cold run (see examples/adaptive).
//
// The Fortran-D-style string forms remain as deprecated shims:
// SetByPartitioning(g, "RSB", n) and ParseSpec("MULTILEVEL(...)")
// produce bit-identical results to the typed path.
// RegisterPartitioner links a custom implementation under its own
// name.
package chaos

import (
	"context"

	"chaos/internal/core"
	"chaos/internal/iterpart"
	"chaos/internal/machine"
	"chaos/internal/partition"
)

// Session is one rank's runtime instance; see internal/core.Session.
type Session = core.Session

// Array is a distributed REAL*8 array.
type Array = core.Array

// IntArray is a distributed INTEGER array (indirection arrays).
type IntArray = core.IntArray

// Loop is an irregular forall loop handled by inspector/executor.
type Loop = core.Loop

// Read is a gathered right-hand-side access Arr(Ind(i)).
type Read = core.Read

// Write is a reduced left-hand-side access Arr(Ind(i)).
type Write = core.Write

// Mapping is a computed irregular distribution (a map array).
type Mapping = core.Mapping

// MapperRecord caches a CONSTRUCT+PARTITION result for reuse.
type MapperRecord = core.MapperRecord

// GeoColInput declares the arrays feeding a CONSTRUCT directive.
type GeoColInput = core.GeoColInput

// Reduce is a left-hand-side reduction operator.
type Reduce = core.Reduce

// Reduction operators for Write accesses.
const (
	Assign = core.Assign
	Add    = core.Add
	Max    = core.Max
	Min    = core.Min
	Mul    = core.Mul
)

// Policy selects the loop-iteration placement convention.
type Policy = iterpart.Policy

// Iteration-placement policies.
const (
	AlmostOwnerComputes = iterpart.AlmostOwnerComputes
	OwnerComputes       = iterpart.OwnerComputes
	BlockIterations     = iterpart.BlockIterations
)

// Config describes the simulated machine.
type Config = machine.Config

// Backend selects the execution backend of a Run: Simulated (the
// default virtual-clock simulator) or Real (ranks execute on host
// cores with physical payload delivery). Set it via Config.Backend or
// use RunReal.
type Backend = machine.Backend

// Execution backends for Config.Backend.
const (
	Simulated = machine.Simulated
	Real      = machine.Real
)

// Stats reports both timing trajectories of one run: the simulated
// makespan (MaxClock, virtual seconds) and the host wall time
// (Elapsed, max-reduced across ranks).
type Stats = machine.Stats

// Ctx is the per-rank machine handle (message passing, virtual clock).
type Ctx = machine.Ctx

// IPSC860 returns a machine configuration calibrated to the Intel
// iPSC/860 hypercube used in the paper.
func IPSC860(procs int) Config { return machine.IPSC860(procs) }

// ZeroCost returns a configuration whose cost model charges nothing;
// useful for pure-correctness runs.
func ZeroCost(procs int) Config { return machine.Zero(procs) }

// Run executes body on every simulated processor with a fresh Session
// and blocks until all ranks finish. It returns an error if any rank
// panics.
func Run(cfg Config, body func(s *Session)) error {
	return machine.Run(cfg, func(c *machine.Ctx) {
		body(core.NewSession(c))
	})
}

// RunReal executes body on the Real backend: ranks run on host cores
// (at most min(GOMAXPROCS, Procs) computing concurrently), payloads
// are physically copied into receiver memory, and the returned Stats
// carry the host wall time next to the virtual clock the same run
// charged. Cancelling ctx unwinds every rank — including ranks blocked
// mid-collective — and returns an error wrapping ctx.Err(). Results
// are bit-identical to Run with the same Config.Seed.
func RunReal(ctx context.Context, cfg Config, body func(s *Session)) (Stats, error) {
	cfg.Backend = Real
	return machine.RunStats(ctx, cfg, func(c *machine.Ctx) {
		body(core.NewSession(c))
	})
}

// Partitioner is the interface user-supplied partitioners implement to
// be linked via RegisterPartitioner (paper: "the user can link a
// customized partitioner as long as the calling sequence matches").
type Partitioner = partition.Partitioner

// RegisterPartitioner links a custom partitioner into the library under
// its Name.
func RegisterPartitioner(p Partitioner) { partition.Register(p) }

// Partitioners returns the names of all linked partitioners.
func Partitioners() []string { return partition.Names() }

// Phase timer names reported by Session.Timer / Session.TimerMax.
const (
	TimerGraphGen  = core.TimerGraphGen
	TimerPartition = core.TimerPartition
	TimerRemap     = core.TimerRemap
	TimerInspector = core.TimerInspector
	TimerExecutor  = core.TimerExecutor
)
