package chaos_test

import (
	"math"
	"testing"

	"chaos/chaos"
)

// TestQuickstartSurface exercises the documented public API end to end:
// declare, construct, partition, redistribute, partition iterations,
// execute with reuse.
func TestQuickstartSurface(t *testing.T) {
	const n, p = 24, 4
	// A ring mesh: edge i links i and i+1 mod n.
	err := chaos.Run(chaos.IPSC860(p), func(s *chaos.Session) {
		x := s.NewArray("x", n)
		y := s.NewArray("y", n)
		x.FillByGlobal(func(g int) float64 { return float64(g + 1) })
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("e1", n)
		e2 := s.NewIntArray("e2", n)
		e1.FillByGlobal(func(g int) int { return g })
		e2.FillByGlobal(func(g int) int { return (g + 1) % n })

		g := s.Construct(n, chaos.GeoColInput{Link1: e1, Link2: e2})
		m, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRSB}, p)
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(m, []*chaos.Array{x, y}, nil)

		loop := s.NewLoop("ring", n,
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			2, func(_ int, in, out []float64) {
				out[0] = in[0] + in[1]
				out[1] = in[1] - in[0]
			})
		loop.PartitionIterations(chaos.AlmostOwnerComputes)
		for it := 0; it < 3; it++ {
			loop.Execute()
		}
		hits, misses := s.Reg.Stats()
		if hits != 2 || misses != 1 {
			t.Errorf("reuse stats (%d,%d), want (2,1)", hits, misses)
		}
		// Serial reference: y(g) over 3 sweeps.
		want := make([]float64, n)
		for sweep := 0; sweep < 3; sweep++ {
			for i := 0; i < n; i++ {
				a, b := float64(i+1), float64((i+1)%n+1)
				want[i] += a + b
				want[(i+1)%n] += b - a
			}
		}
		for i, g := range y.MyGlobals() {
			if math.Abs(y.Data[i]-want[g]) > 1e-9 {
				t.Errorf("y[%d] = %v, want %v", g, y.Data[i], want[g])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegisterPartitionerSurface(t *testing.T) {
	names := chaos.Partitioners()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"BLOCK", "RCB", "RSB", "RSB-KL", "RANDOM", "INERTIAL"} {
		if !found[want] {
			t.Errorf("built-in partitioner %q missing from %v", want, names)
		}
	}
}

func TestZeroCostConfig(t *testing.T) {
	err := chaos.Run(chaos.ZeroCost(2), func(s *chaos.Session) {
		if s.C.Clock() != 0 {
			t.Error("zero-cost machine advanced clock at start")
		}
		s.C.Barrier()
		if s.C.Clock() != 0 {
			t.Error("zero-cost barrier charged time")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
