package chaos_test

import (
	"fmt"

	"chaos/chaos"
)

// ExampleRun shows the smallest complete program: an SPMD body running
// on every simulated processor, a BLOCK-distributed array, and a
// collective reduction. Only rank 0 prints.
func ExampleRun() {
	const n, p = 8, 2
	err := chaos.Run(chaos.ZeroCost(p), func(s *chaos.Session) {
		x := s.NewArray("x", n) // REAL*8 x(n), BLOCK-distributed
		x.FillByGlobal(func(g int) float64 { return float64(g) })
		local := 0.0
		for _, v := range x.Data {
			local += v
		}
		total := s.C.SumFloat(local) // collective: every rank participates
		if s.C.Rank() == 0 {
			fmt.Printf("%d ranks hold x(0:%d); sum %.0f\n", s.C.Procs(), n-1, total)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: 2 ranks hold x(0:7); sum 28
}

// ExampleSession_SetPartitioning walks the paper's Figure 2 pipeline
// on a 16-vertex ring: CONSTRUCT a GeoCoL graph from the edge list,
// SET the distribution BY PARTITIONING it with a typed multilevel
// spec, REDISTRIBUTE the data arrays, and run one inspector/executor
// sweep that accumulates each vertex's neighbors.
func ExampleSession_SetPartitioning() {
	const n, p = 16, 2
	err := chaos.Run(chaos.ZeroCost(p), func(s *chaos.Session) {
		x := s.NewArray("x", n)
		y := s.NewArray("y", n)
		x.FillByGlobal(func(g int) float64 { return float64(g + 1) })
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", n) // edge i links i and i+1 mod n
		e2 := s.NewIntArray("end_pt2", n)
		e1.FillByGlobal(func(g int) int { return g })
		e2.FillByGlobal(func(g int) int { return (g + 1) % n })

		// C$ CONSTRUCT G (n, LINK(end_pt1, end_pt2))
		g := s.Construct(n, chaos.GeoColInput{Link1: e1, Link2: e2})
		// C$ SET distfmt BY PARTITIONING G USING MULTILEVEL
		m, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodMultilevel}, p)
		if err != nil {
			panic(err)
		}
		// C$ REDISTRIBUTE reg(distfmt)
		s.Redistribute(m, []*chaos.Array{x, y}, nil)

		loop := s.NewLoop("sweep", n,
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			2, func(_ int, in, out []float64) {
				out[0] = in[1] // each endpoint accumulates its neighbor
				out[1] = in[0]
			})
		loop.PartitionIterations(chaos.AlmostOwnerComputes)
		loop.Execute()

		local := 0.0
		for _, v := range y.Data {
			local += v
		}
		sum := s.C.SumFloat(local)
		sizes := s.C.AllGatherInts([]int{len(x.MyGlobals())})
		if s.C.Rank() == 0 {
			fmt.Printf("parts hold %v vertices; neighbor-sum checksum %.0f\n", sizes, sum)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: parts hold [8 8] vertices; neighbor-sum checksum 272
}

// ExampleParseSpec shows the two interchangeable spellings of a
// partitioner selection: the Fortran-D-style string the front end
// consumes and the typed PartitionSpec, which round-trip through
// ParseSpec / String.
func ExampleParseSpec() {
	sp, err := chaos.ParseSpec("MULTILEVEL(CoarsenTo=200,VCycle=true)")
	if err != nil {
		panic(err)
	}
	fmt.Println(sp.Method, sp.CoarsenTo, sp.VCycle)
	fmt.Println(sp.String())
	// Output:
	// MULTILEVEL 200 true
	// MULTILEVEL(CoarsenTo=200,VCycle=true)
}
