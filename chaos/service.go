package chaos

import (
	"chaos/internal/service"
)

// This file is the public surface of the partitioning service
// (cmd/chaosd): a long-lived daemon wrapping the partitioner library
// behind a small wire protocol, with a content-addressed cache of
// finished partitions and retained MULTILEVEL coarsening ladders so
// partitioning cost is amortized across every client — the paper's
// schedule-reuse economy lifted from one program's iterations to a
// fleet of programs. See internal/service and
// docs/ARCHITECTURE.md ("Service layer").

// ServiceServer is the partitioning daemon core: construct with
// NewServiceServer, answer in-process requests with Do, serve wire
// clients with Serve, shut down with Close.
type ServiceServer = service.Server

// ServiceOptions configures a ServiceServer (pool width, admission
// queue depth, cache memory cap, request size caps). The zero value
// selects the documented defaults.
type ServiceOptions = service.Options

// ServiceClient speaks the chaosd wire protocol over one connection.
type ServiceClient = service.Client

// ServiceRequest is one partitioning request: a graph (full upload,
// or base fingerprint + churn delta) plus a PartitionSpec, part count
// and machine width.
type ServiceRequest = service.Request

// ServiceResponse is the answer: the full part vector with cut,
// timing figures, the graph's fingerprint (usable as a later
// request's Base) and how the request was served.
type ServiceResponse = service.Response

// ServiceFingerprint is the stable content address of a graph.
type ServiceFingerprint = service.Fingerprint

// ServiceEdgeRewire is one churn-delta element: edge Edge's second
// endpoint re-pointed at NewEnd.
type ServiceEdgeRewire = service.EdgeRewire

// ServiceServed reports how a response was produced: cache hit, cold
// compute, warm ladder-reusing repartition, or batched onto an
// identical in-flight request.
type ServiceServed = service.Served

// Served classes of a ServiceResponse.
const (
	ServiceServedHit    = service.ServedHit
	ServiceServedCold   = service.ServedCold
	ServiceServedWarm   = service.ServedWarm
	ServiceServedShared = service.ServedShared
)

// Typed service errors, errors.Is-able on both sides of the wire.
var (
	// ErrServiceOverloaded is the admission-control rejection
	// (retryable: back off and resend).
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrServiceUnknownGraph rejects a delta whose base fingerprint the
	// daemon no longer holds; re-send the graph as a full upload.
	ErrServiceUnknownGraph = service.ErrUnknownGraph
	// ErrServiceBadRequest rejects an invalid request.
	ErrServiceBadRequest = service.ErrBadRequest
)

// NewServiceServer creates a partitioning daemon core.
func NewServiceServer(opt ServiceOptions) *ServiceServer { return service.New(opt) }

// DialService connects a ServiceClient to a chaosd daemon.
func DialService(network, addr string) (*ServiceClient, error) {
	return service.Dial(network, addr)
}
