package chaos_test

import (
	"math"
	"testing"

	"chaos/chaos"
	"chaos/internal/experiments"
	"chaos/internal/mesh"
)

// TestQuickstartMeshEndToEnd is the examples/quickstart path as a
// tier-1 test: generate an unstructured mesh, CONSTRUCT and partition
// its GeoCoL graph, REDISTRIBUTE the solution arrays, run the edge
// sweep through the inspector/executor with schedule reuse, and verify
// the distributed result against a serial reference sweep.
func TestQuickstartMeshEndToEnd(t *testing.T) {
	const procs, iters = 4, 5
	m := mesh.Generate(300, 42)

	// Serial reference: iters Euler sweeps over the edge list.
	want := make([]float64, m.NNode)
	xs := make([]float64, m.NNode)
	for v := range xs {
		xs[v] = m.InitialState(v)
	}
	out := make([]float64, 2)
	for it := 0; it < iters; it++ {
		for e := 0; e < m.NEdge(); e++ {
			mesh.EulerFlux(e, []float64{xs[m.E1[e]], xs[m.E2[e]]}, out)
			want[m.E1[e]] += out[0]
			want[m.E2[e]] += out[1]
		}
	}

	err := chaos.Run(chaos.IPSC860(procs), func(s *chaos.Session) {
		x := s.NewArray("x", m.NNode)
		y := s.NewArray("y", m.NNode)
		x.FillByGlobal(m.InitialState)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", m.NEdge())
		e2 := s.NewIntArray("end_pt2", m.NEdge())
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })

		g := s.Construct(m.NNode, chaos.GeoColInput{Link1: e1, Link2: e2})
		dec, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRSB}, procs)
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(dec, []*chaos.Array{x, y}, nil)

		loop := s.NewLoop("edge-sweep", m.NEdge(),
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			mesh.EulerFlops, mesh.EulerFlux)
		loop.PartitionIterations(chaos.AlmostOwnerComputes)
		for it := 0; it < iters; it++ {
			loop.Execute()
		}

		// The inspector must run once and be reused thereafter.
		hits, misses := s.Reg.Stats()
		if misses != 1 || hits != iters-1 {
			t.Errorf("reuse stats (hits=%d, misses=%d), want (%d, 1)", hits, misses, iters-1)
		}
		// Executor time must have been charged on the virtual clock.
		if s.TimerMax(chaos.TimerExecutor) <= 0 {
			t.Error("executor charged no virtual time")
		}
		for i, gidx := range y.MyGlobals() {
			if math.Abs(y.Data[i]-want[gidx]) > 1e-9*math.Max(1, math.Abs(want[gidx])) {
				t.Errorf("y[%d] = %v, want %v", gidx, y.Data[i], want[gidx])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosbenchCellSmoke runs one scaled-down cell of the experiment
// harness behind cmd/chaosbench — hand-coded and compiler-driven, with
// and without schedule reuse — so the benchmark binary's code path is
// exercised by tier-1. Reuse must never be slower than re-inspection on
// a static mesh.
func TestChaosbenchCellSmoke(t *testing.T) {
	w := experiments.MeshWorkload(200)
	base := experiments.Config{
		Procs: 4, Workload: w, Spec: chaos.MustSpec("RCB"), Iters: 4,
	}

	withReuse := base
	withReuse.Reuse = true
	phReuse, err := experiments.Run(withReuse)
	if err != nil {
		t.Fatal(err)
	}
	phNone, err := experiments.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if phReuse.Total() <= 0 || phNone.Total() <= 0 {
		t.Fatalf("experiment cells charged no virtual time: %+v %+v", phReuse, phNone)
	}
	if phReuse.Inspector > phNone.Inspector {
		t.Errorf("reuse inspector time %v exceeds no-reuse %v", phReuse.Inspector, phNone.Inspector)
	}

	compiler := withReuse
	compiler.Compiler = true
	phComp, err := experiments.Run(compiler)
	if err != nil {
		t.Fatal(err)
	}
	if phComp.Total() <= 0 {
		t.Error("compiler-driven cell charged no virtual time")
	}
}
