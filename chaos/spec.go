package chaos

import (
	"chaos/internal/core"
	"chaos/internal/partition"
)

// PartitionSpec is the typed partitioner selection consumed by
// Session.SetPartitioning and Session.NewRepartitioner: a Method plus
// the multilevel tuning knobs (CoarsenTo, ParallelThreshold, FMPasses,
// VCycle, Seed, Imbalance) that previously required importing
// internal/partition. The zero value of every option keeps the method
// default, so PartitionSpec{Method: MethodMultilevel} behaves exactly
// like the old "MULTILEVEL" string. Specs are validated against the
// partitioner's declared Capabilities and the GeoCoL graph's
// components before any work starts.
type PartitionSpec = partition.Spec

// Method is the typed identity of a partitioning method.
type Method = partition.Method

// Built-in partitioning methods (paper Section 4.2 plus MULTILEVEL).
const (
	MethodBlock      = partition.MethodBlock
	MethodRandom     = partition.MethodRandom
	MethodRCB        = partition.MethodRCB
	MethodInertial   = partition.MethodInertial
	MethodRSB        = partition.MethodRSB
	MethodRSBKL      = partition.MethodRSBKL
	MethodKL         = partition.MethodKL
	MethodMultilevel = partition.MethodMultilevel
	MethodStream     = partition.MethodStream
)

// StreamObjective names the greedy placement rule of the STREAM
// out-of-core partitioner; set it through PartitionSpec.Objective
// (together with StreamBuffer, Restreams and BalanceSlack, which apply
// to MethodStream only).
type StreamObjective = partition.StreamObjective

// STREAM placement objectives.
const (
	ObjectiveLDG    = partition.ObjectiveLDG
	ObjectiveFennel = partition.ObjectiveFennel
)

// ParseSpec parses the Fortran-D-style string form of a spec: a bare
// registry name ("MULTILEVEL") or a name with a parenthesized option
// list ("MULTILEVEL(CoarsenTo=200,VCycle=true)"). PartitionSpec.String
// is its inverse.
//
// Deprecated: construct a typed PartitionSpec literal
// (PartitionSpec{Method: MethodRCB}) instead. The string form survives
// for callers holding user-authored spec strings.
func ParseSpec(s string) (PartitionSpec, error) { return partition.ParseSpec(s) }

// MustSpec is ParseSpec for trusted literals; it panics on error.
//
// Deprecated: a trusted literal is exactly the case where a typed
// PartitionSpec literal says the same thing with compile-time checking
// and nothing to panic on.
func MustSpec(s string) PartitionSpec { return partition.MustSpec(s) }

// Capabilities describes what a partitioner consumes and supports;
// see PartitionerV2.
type Capabilities = partition.Capabilities

// PartitionerV2 is a Partitioner that reports its Capabilities, which
// is what lets SetPartitioning validate a spec against the GeoCoL
// graph at the call site. All built-in partitioners implement it;
// custom partitioners registered without capability metadata are
// treated as declaring no requirements.
type PartitionerV2 = partition.PartitionerV2

// PartitionerCaps reports p's capabilities (the zero Capabilities for
// a legacy v1 partitioner).
func PartitionerCaps(p Partitioner) Capabilities { return partition.Caps(p) }

// Repartitioner is the stateful, reuse-guarded CONSTRUCT+PARTITION
// handle returned by Session.NewRepartitioner: beyond MapperRecord's
// unchanged-input guard it retains the MULTILEVEL coarsening ladder
// and previous partition, warm-starting slightly changed meshes at a
// fraction of a cold repartition. See examples/adaptive for the
// adaptive-mesh REDISTRIBUTE demo built on it.
type Repartitioner = core.Repartitioner

// RepartitionerStats counts how each Repartitioner.Map call was
// served (cache hit / cold run / warm ladder reuse).
type RepartitionerStats = core.RepartitionerStats
