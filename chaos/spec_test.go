package chaos_test

import (
	"strings"
	"testing"

	"chaos/chaos"
	"chaos/internal/mesh"
)

// TestStringShimBitIdenticalToTypedPath pins the deprecation
// contract: SetByPartitioning(name) must produce bit-identical
// partitions to SetPartitioning with the equivalent typed spec, for
// every built-in method.
func TestStringShimBitIdenticalToTypedPath(t *testing.T) {
	const procs = 4
	m := mesh.Generate(600, 42)
	err := chaos.Run(chaos.IPSC860(procs), func(s *chaos.Session) {
		e1 := s.NewIntArray("e1", m.NEdge())
		e2 := s.NewIntArray("e2", m.NEdge())
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })
		xc := s.NewArray("xc", m.NNode)
		yc := s.NewArray("yc", m.NNode)
		zc := s.NewArray("zc", m.NNode)
		xc.FillByGlobal(func(g int) float64 { return m.X[g] })
		yc.FillByGlobal(func(g int) float64 { return m.Y[g] })
		zc.FillByGlobal(func(g int) float64 { return m.Z[g] })
		g := s.Construct(m.NNode, chaos.GeoColInput{
			Link1: e1, Link2: e2,
			Geometry: []*chaos.Array{xc, yc, zc},
		})

		for _, name := range []string{"BLOCK", "RANDOM", "RCB", "INERTIAL", "RSB", "RSB-KL", "KL", "MULTILEVEL", "STREAM"} {
			byName, err := s.SetByPartitioning(g, name, procs)
			if err != nil {
				t.Errorf("%s string path: %v", name, err)
				continue
			}
			spec, err := chaos.ParseSpec(name)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				continue
			}
			typed, err := s.SetPartitioning(g, spec, procs)
			if err != nil {
				t.Errorf("%s typed path: %v", name, err)
				continue
			}
			a, b := byName.LocalPart(), typed.LocalPart()
			if len(a) != len(b) {
				t.Errorf("%s: partition lengths differ: %d vs %d", name, len(a), len(b))
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%s: partitions differ at local %d: %d vs %d", name, i, a[i], b[i])
					break
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetPartitioningValidatesEarly pins the call-site error shape of
// the typed public API: a capability mismatch is a descriptive error,
// not a panic, and an unknown method names what is registered.
func TestSetPartitioningValidatesEarly(t *testing.T) {
	err := chaos.Run(chaos.ZeroCost(2), func(s *chaos.Session) {
		e1 := s.NewIntArray("e1", 16)
		e2 := s.NewIntArray("e2", 16)
		e1.FillByGlobal(func(g int) int { return g })
		e2.FillByGlobal(func(g int) int { return (g + 1) % 16 })
		g := s.Construct(16, chaos.GeoColInput{Link1: e1, Link2: e2})

		if _, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRCB}, 2); err == nil ||
			!strings.Contains(err.Error(), "GEOMETRY") {
			t.Errorf("RCB on LINK-only graph: %v, want GEOMETRY error", err)
		}
		if _, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: "NOPE"}, 2); err == nil ||
			!strings.Contains(err.Error(), "unknown partitioner") {
			t.Errorf("unknown method: %v, want unknown-partitioner error", err)
		}
		if _, err := s.NewRepartitioner(chaos.PartitionSpec{Method: chaos.MethodRSB, VCycle: true}); err == nil ||
			!strings.Contains(err.Error(), "tuning") {
			t.Errorf("tuned RSB spec: %v, want tuning-options error", err)
		}
		if _, err := s.SetPartitioning(g, chaos.PartitionSpec{
			Method: chaos.MethodMultilevel, Objective: chaos.ObjectiveFennel}, 2); err == nil ||
			!strings.Contains(err.Error(), "STREAM") {
			t.Errorf("streaming knobs on MULTILEVEL: %v, want STREAM-only error", err)
		}
		if _, err := s.SetPartitioning(g, chaos.PartitionSpec{
			Method: chaos.MethodStream, Objective: chaos.ObjectiveLDG, Restreams: 1}, 2); err != nil {
			t.Errorf("typed STREAM spec: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
