package main

import (
	"strings"
	"testing"
)

func mkBench(pkg, name string, allocs, ns float64) Benchmark {
	m := map[string]float64{}
	if allocs >= 0 {
		m["allocs/op"] = allocs
	}
	if ns >= 0 {
		m["ns/op"] = ns
	}
	return Benchmark{Pkg: pkg, Name: name, Runs: 5, Metrics: m}
}

func TestGateKeyStripsProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkHotKLRefine-8":  "p BenchmarkHotKLRefine",
		"BenchmarkHotKLRefine-16": "p BenchmarkHotKLRefine",
		"BenchmarkHotKLRefine":    "p BenchmarkHotKLRefine",
		"BenchmarkMesh-2D-4":      "p BenchmarkMesh-2D",
	}
	for name, want := range cases {
		if got := gateKey(Benchmark{Pkg: "p", Name: name}); got != want {
			t.Errorf("gateKey(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestCompareClean(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 100, 1000)}}
	cur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-4", 100, 1400)}}
	problems, notes := compare(base, cur, 0.05, 1.5)
	if len(problems) != 0 || len(notes) != 0 {
		t.Errorf("want clean pass, got problems=%v notes=%v", problems, notes)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 100, 1000)}}
	// 104 is inside the 5% window, 106 is out.
	okCur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 104, 1000)}}
	if problems, _ := compare(base, okCur, 0.05, 1.5); len(problems) != 0 {
		t.Errorf("104 allocs vs baseline 100 at 5%% tolerance should pass: %v", problems)
	}
	badCur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 106, 1000)}}
	problems, _ := compare(base, badCur, 0.05, 1.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs/op") {
		t.Errorf("want one allocs/op failure, got %v", problems)
	}
}

func TestCompareZeroAllocBaselineIsExact(t *testing.T) {
	// An allocation-free kernel must stay allocation-free: with a zero
	// baseline the tolerance multiplies out to zero and a single alloc
	// fails the gate.
	base := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkKL-8", 0, 1000)}}
	cur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkKL-8", 1, 1000)}}
	problems, _ := compare(base, cur, 0.05, 1.5)
	if len(problems) != 1 {
		t.Errorf("want one failure for 0 -> 1 allocs, got %v", problems)
	}
	same := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkKL-8", 0, 1000)}}
	if problems, _ := compare(base, same, 0.05, 1.5); len(problems) != 0 {
		t.Errorf("0 -> 0 allocs should pass, got %v", problems)
	}
}

func TestCompareNsTolerance(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 10, 1000)}}
	okCur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 10, 1499)}}
	if problems, _ := compare(base, okCur, 0.05, 1.5); len(problems) != 0 {
		t.Errorf("1499 ns vs baseline 1000 at 1.5x should pass: %v", problems)
	}
	badCur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 10, 1501)}}
	problems, _ := compare(base, badCur, 0.05, 1.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "ns/op") {
		t.Errorf("want one ns/op failure, got %v", problems)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{
		mkBench("p", "BenchmarkA-8", 10, 1000),
		mkBench("p", "BenchmarkGone-8", 10, 1000),
	}}
	cur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 10, 1000)}}
	problems, _ := compare(base, cur, 0.05, 1.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Errorf("want one missing-benchmark failure, got %v", problems)
	}
}

func TestCompareNewBenchmarkIsNoteNotFailure(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 10, 1000)}}
	cur := &Doc{Benchmarks: []Benchmark{
		mkBench("p", "BenchmarkA-8", 10, 1000),
		mkBench("p", "BenchmarkNew-8", 999, 999999),
	}}
	problems, notes := compare(base, cur, 0.05, 1.5)
	if len(problems) != 0 {
		t.Errorf("new benchmark must not fail the gate: %v", problems)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "BenchmarkNew") {
		t.Errorf("want one note for the new benchmark, got %v", notes)
	}
}

func TestCompareMissingBenchmemInInput(t *testing.T) {
	base := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", 10, 1000)}}
	cur := &Doc{Benchmarks: []Benchmark{mkBench("p", "BenchmarkA-8", -1, 1000)}}
	problems, _ := compare(base, cur, 0.05, 1.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "-benchmem") {
		t.Errorf("want one missing-allocs-metric failure, got %v", problems)
	}
}

func TestCompareDifferentPackagesDontCollide(t *testing.T) {
	// The same benchmark name in two packages must be tracked per
	// package, not merged.
	base := &Doc{Benchmarks: []Benchmark{
		mkBench("p1", "BenchmarkHot-8", 10, 1000),
		mkBench("p2", "BenchmarkHot-8", 20, 2000),
	}}
	cur := &Doc{Benchmarks: []Benchmark{
		mkBench("p1", "BenchmarkHot-8", 10, 1000),
		mkBench("p2", "BenchmarkHot-8", 50, 2000), // p2 regressed
	}}
	problems, _ := compare(base, cur, 0.05, 1.5)
	if len(problems) != 1 || !strings.Contains(problems[0], "p2") {
		t.Errorf("want exactly the p2 regression, got %v", problems)
	}
}
