// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so CI can archive one
// BENCH_<sha>.json artifact per push and the repository accumulates a
// machine-readable performance trajectory.
//
// Usage:
//
//	go test -bench . -benchtime 5x -run '^$' ./... | benchjson -sha $GITHUB_SHA -o BENCH_$GITHUB_SHA.json
//
// Every benchmark line contributes one entry with its iteration count
// and all reported metrics (ns/op, B/op, allocs/op, and custom metrics
// such as the partitioner benches' part-ms). The goos/goarch/pkg/cpu
// header lines annotate the entries; -sha (defaulting to $GITHUB_SHA)
// stamps the document. With -o absent or "-", the JSON goes to stdout.
//
// -real <file> additionally ingests the "realbench:" lines printed by
// `chaosbench -backend=real` (one per machine size, key=value
// format): each becomes an entry of the document's "real" array and
// the wall-time ratio of the smallest to the largest machine size is
// stamped as "real_speedup", so the archive carries the real-cores
// trajectory next to the virtual one.
//
// -service <file> likewise ingests the "servicebench:" lines printed
// by `chaosbench -service` (one per load-generation phase, key=value
// format): each becomes an entry of the document's "service" array,
// and the partitions/sec ratio of the last phase (the concurrent
// fleet) over the first (the serial client) is stamped as
// "service_speedup" — the daemon's cache-and-batching dividend,
// archived next to the real-cores and virtual trajectories.
//
// -stream <file> likewise ingests the "streambench:" lines printed by
// `chaosbench -stream` (one per (mesh size, method) cell, key=value
// format): each becomes an entry of the document's "stream" array, and
// the largest mesh's STREAM/MULTILEVEL cut ratio and
// MULTILEVEL/STREAM allocation ratio are stamped as
// "stream_cut_ratio" and "stream_mem_ratio" — the out-of-core
// engine's quality price and memory dividend, archived together.
//
// -gate <baseline.json> turns benchjson into the CI regression rail:
// the parsed stdin is compared against the baseline document (itself
// written by an earlier benchjson run, see `make bench-baseline`) and
// the process exits non-zero when any baseline benchmark is missing
// from the input, reports more than (1+alloc-tol)× the baseline
// allocs/op (exact when the baseline is zero — an allocation-free
// kernel must stay allocation-free), or exceeds ns-tol× the baseline
// ns/op. Benchmarks present on stdin but absent from the baseline are
// noted, not failed, so adding a benchmark does not require a
// lockstep baseline refresh. Names are matched with the -GOMAXPROCS
// suffix stripped, keyed by package, so baselines travel across
// machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkXxx-N  runs  metrics...` line.
type Benchmark struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// RealRun is one "realbench:" line from `chaosbench -backend=real`:
// the full pipeline on the Real execution backend at one machine
// size, with host wall time next to the virtual time of the same run.
type RealRun struct {
	Workload string  `json:"workload"`
	Method   string  `json:"method"`
	Procs    int     `json:"procs"`
	WallMS   float64 `json:"wall_ms"`
	VirtualS float64 `json:"virtual_s"`
}

// ServiceRun is one "servicebench:" line from `chaosbench -service`:
// one load-generation phase against the partitioning daemon, with
// aggregate throughput and the served-class mix.
type ServiceRun struct {
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	PPS       float64 `json:"pps"`
	HitRatio  float64 `json:"hit_ratio"`
	Hits      int     `json:"hits"`
	Cold      int     `json:"cold"`
	Warm      int     `json:"warm"`
	Shared    int     `json:"shared"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// StreamRun is one "streambench:" line from `chaosbench -stream`: one
// partitioner (STREAM or the in-memory MULTILEVEL baseline) on one
// mesh size, with the edge cut and the bytes the run allocated.
type StreamRun struct {
	Workload string  `json:"workload"`
	N        int     `json:"n"`
	Method   string  `json:"method"`
	Parts    int     `json:"parts"`
	Cut      int     `json:"cut"`
	Bytes    uint64  `json:"bytes"`
	WallMS   float64 `json:"wall_ms"`
}

// Doc is the archived JSON document.
type Doc struct {
	SHA        string      `json:"sha,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Real holds the real-cores study cells, and RealSpeedup the wall
	// time of its smallest machine divided by its largest (P=1 → P=8
	// real speedup). Absent when -real was not given.
	Real        []RealRun `json:"real,omitempty"`
	RealSpeedup float64   `json:"real_speedup,omitempty"`
	// Service holds the partitioning-service load-study phases, and
	// ServiceSpeedup the partitions/sec of its last phase (the
	// concurrent fleet) divided by its first (the serial client).
	// Absent when -service was not given.
	Service        []ServiceRun `json:"service,omitempty"`
	ServiceSpeedup float64      `json:"service_speedup,omitempty"`
	// Stream holds the out-of-core study cells; StreamCutRatio is the
	// largest mesh's STREAM cut over its MULTILEVEL cut (quality price)
	// and StreamMemRatio the same mesh's MULTILEVEL bytes over its
	// STREAM bytes (memory dividend). Absent when -stream was not given.
	Stream         []StreamRun `json:"stream,omitempty"`
	StreamCutRatio float64     `json:"stream_cut_ratio,omitempty"`
	StreamMemRatio float64     `json:"stream_mem_ratio,omitempty"`
}

// parse reads `go test -bench` output and collects the benchmark lines.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line, pkg)
			if err != nil {
				return nil, err
			}
			if b != nil {
				doc.Benchmarks = append(doc.Benchmarks, *b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine splits "BenchmarkName-8  5  123 ns/op  4.5 part-ms"
// into a Benchmark; lines without an iteration count (e.g. a benchmark
// name echoed by -v) are skipped, not errors.
func parseBenchLine(line, pkg string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkX" alone, or a failure marker
	}
	b := &Benchmark{Pkg: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// parseReal reads `chaosbench -backend=real` output and collects the
// per-machine-size "realbench:" cells, ignoring the human-facing
// summary lines. The speedup is the wall time of the first cell (the
// smallest machine) over the last (the largest); zero when fewer than
// two cells are present.
func parseReal(r io.Reader) ([]RealRun, float64, error) {
	var runs []RealRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "realbench: ") {
			continue
		}
		rr := RealRun{}
		for _, kv := range strings.Fields(strings.TrimPrefix(line, "realbench: ")) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, 0, fmt.Errorf("benchjson: bad realbench field %q in %q", kv, line)
			}
			key, val := kv[:eq], kv[eq+1:]
			var err error
			switch key {
			case "workload":
				rr.Workload = val
			case "method":
				rr.Method = val
			case "procs":
				rr.Procs, err = strconv.Atoi(val)
			case "wall_ms":
				rr.WallMS, err = strconv.ParseFloat(val, 64)
			case "virtual_s":
				rr.VirtualS, err = strconv.ParseFloat(val, 64)
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return nil, 0, fmt.Errorf("benchjson: bad realbench field %q in %q", kv, line)
			}
		}
		if rr.Procs <= 0 || rr.WallMS <= 0 {
			return nil, 0, fmt.Errorf("benchjson: realbench line missing procs or wall_ms: %q", line)
		}
		runs = append(runs, rr)
	}
	speedup := 0.0
	if len(runs) >= 2 {
		speedup = runs[0].WallMS / runs[len(runs)-1].WallMS
	}
	return runs, speedup, sc.Err()
}

// parseService reads `chaosbench -service` output and collects the
// per-phase "servicebench:" cells, ignoring the summary lines. The
// speedup is the partitions/sec of the last cell (the concurrent
// fleet) over the first (the serial client); zero when fewer than two
// cells are present.
func parseService(r io.Reader) ([]ServiceRun, float64, error) {
	var runs []ServiceRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "servicebench: ") {
			continue
		}
		sr := ServiceRun{}
		for _, kv := range strings.Fields(strings.TrimPrefix(line, "servicebench: ")) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, 0, fmt.Errorf("benchjson: bad servicebench field %q in %q", kv, line)
			}
			key, val := kv[:eq], kv[eq+1:]
			var err error
			switch key {
			case "clients":
				sr.Clients, err = strconv.Atoi(val)
			case "requests":
				sr.Requests, err = strconv.Atoi(val)
			case "pps":
				sr.PPS, err = strconv.ParseFloat(val, 64)
			case "hit_ratio":
				sr.HitRatio, err = strconv.ParseFloat(val, 64)
			case "hits":
				sr.Hits, err = strconv.Atoi(val)
			case "cold":
				sr.Cold, err = strconv.Atoi(val)
			case "warm":
				sr.Warm, err = strconv.Atoi(val)
			case "shared":
				sr.Shared, err = strconv.Atoi(val)
			case "elapsed_ms":
				sr.ElapsedMS, err = strconv.ParseFloat(val, 64)
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return nil, 0, fmt.Errorf("benchjson: bad servicebench field %q in %q", kv, line)
			}
		}
		if sr.Clients <= 0 || sr.PPS <= 0 {
			return nil, 0, fmt.Errorf("benchjson: servicebench line missing clients or pps: %q", line)
		}
		runs = append(runs, sr)
	}
	speedup := 0.0
	if len(runs) >= 2 && runs[0].PPS > 0 {
		speedup = runs[len(runs)-1].PPS / runs[0].PPS
	}
	return runs, speedup, sc.Err()
}

// parseStream reads `chaosbench -stream` output and collects the
// per-(size, method) "streambench:" cells. The ratios come from the
// largest mesh that carries both methods: STREAM cut over MULTILEVEL
// cut, and MULTILEVEL bytes over STREAM bytes; both zero when no mesh
// has the full pair.
func parseStream(r io.Reader) ([]StreamRun, float64, float64, error) {
	var runs []StreamRun
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "streambench: ") {
			continue
		}
		sr := StreamRun{}
		for _, kv := range strings.Fields(strings.TrimPrefix(line, "streambench: ")) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, 0, 0, fmt.Errorf("benchjson: bad streambench field %q in %q", kv, line)
			}
			key, val := kv[:eq], kv[eq+1:]
			var err error
			switch key {
			case "workload":
				sr.Workload = val
			case "n":
				sr.N, err = strconv.Atoi(val)
			case "method":
				sr.Method = val
			case "parts":
				sr.Parts, err = strconv.Atoi(val)
			case "cut":
				sr.Cut, err = strconv.Atoi(val)
			case "bytes":
				sr.Bytes, err = strconv.ParseUint(val, 10, 64)
			case "ms":
				sr.WallMS, err = strconv.ParseFloat(val, 64)
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return nil, 0, 0, fmt.Errorf("benchjson: bad streambench field %q in %q", kv, line)
			}
		}
		if sr.N <= 0 || sr.Method == "" || sr.Bytes == 0 {
			return nil, 0, 0, fmt.Errorf("benchjson: streambench line missing n, method, or bytes: %q", line)
		}
		runs = append(runs, sr)
	}
	cutRatio, memRatio := 0.0, 0.0
	best := 0
	for _, a := range runs {
		if a.Method != "STREAM" || a.N < best {
			continue
		}
		for _, b := range runs {
			if b.Method == "MULTILEVEL" && b.N == a.N && b.Cut > 0 && a.Bytes > 0 {
				best = a.N
				cutRatio = float64(a.Cut) / float64(b.Cut)
				memRatio = float64(b.Bytes) / float64(a.Bytes)
			}
		}
	}
	return runs, cutRatio, memRatio, sc.Err()
}

// gateKey identifies a benchmark across machines: package plus name
// with the trailing -GOMAXPROCS suffix stripped (the suffix tracks the
// host's core count, not the benchmark).
func gateKey(b Benchmark) string {
	name := b.Name
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return b.Pkg + " " + name
}

// compare gates cur against base: every baseline benchmark must be
// present, must not allocate more than (1+allocTol)× its baseline
// allocs/op (exactly zero when the baseline is zero), and must not run
// longer than nsTol× its baseline ns/op. Returns the hard failures and
// the informational notes (benchmarks without a baseline) separately.
func compare(base, cur *Doc, allocTol, nsTol float64) (problems, notes []string) {
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[gateKey(b)] = b
	}
	seen := make(map[string]bool, len(base.Benchmarks))
	for _, bb := range base.Benchmarks {
		key := gateKey(bb)
		seen[key] = true
		cb, ok := current[key]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from input (removed, renamed, or failed to run?)", key))
			continue
		}
		if baseA, ok := bb.Metrics["allocs/op"]; ok {
			curA, ok := cb.Metrics["allocs/op"]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: baseline has allocs/op but input does not (run with -benchmem)", key))
			} else if curA > baseA*(1+allocTol) {
				problems = append(problems, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f (tolerance %.0f%%)", key, curA, baseA, allocTol*100))
			}
		}
		if baseNs, ok := bb.Metrics["ns/op"]; ok && baseNs > 0 {
			if curNs, ok := cb.Metrics["ns/op"]; ok && curNs > baseNs*nsTol {
				problems = append(problems, fmt.Sprintf("%s: ns/op %.0f exceeds %.2fx baseline %.0f", key, curNs, nsTol, baseNs))
			}
		}
	}
	for _, b := range cur.Benchmarks {
		if key := gateKey(b); !seen[key] {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (run `make bench-baseline` to pin it)", key))
		}
	}
	return problems, notes
}

func main() {
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit sha to stamp the document with")
	out := flag.String("o", "-", "output file (\"-\" = stdout)")
	real := flag.String("real", "", "file holding `chaosbench -backend=real` output to merge into the document")
	svc := flag.String("service", "", "file holding `chaosbench -service` output to merge into the document")
	strm := flag.String("stream", "", "file holding `chaosbench -stream` output to merge into the document")
	gate := flag.String("gate", "", "baseline JSON to gate against; exit non-zero on regression")
	allocTol := flag.Float64("alloc-tol", 0.05, "allocs/op headroom over baseline (scheduling noise; zero baselines stay exact)")
	nsTol := flag.Float64("ns-tol", 1.5, "ns/op failure threshold as a multiple of baseline")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc.SHA = *sha
	if *real != "" {
		f, err := os.Open(*real)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		doc.Real, doc.RealSpeedup, err = parseReal(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *svc != "" {
		f, err := os.Open(*svc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		doc.Service, doc.ServiceSpeedup, err = parseService(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *strm != "" {
		f, err := os.Open(*strm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		doc.Stream, doc.StreamCutRatio, doc.StreamMemRatio, err = parseStream(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if len(doc.Benchmarks) == 0 && len(doc.Real) == 0 && len(doc.Service) == 0 && len(doc.Stream) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *gate != "" {
		raw, err := os.ReadFile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		base := &Doc{}
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *gate, err)
			os.Exit(1)
		}
		problems, notes := compare(base, doc, *allocTol, *nsTol)
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "benchjson: note: %s\n", n)
		}
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %s\n", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Printf("bench-gate OK: %d benchmarks within baseline %s\n", len(base.Benchmarks), *gate)
		if *out == "-" {
			return // gate mode only emits JSON when -o names a file
		}
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
