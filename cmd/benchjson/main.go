// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so CI can archive one
// BENCH_<sha>.json artifact per push and the repository accumulates a
// machine-readable performance trajectory.
//
// Usage:
//
//	go test -bench . -benchtime 5x -run '^$' ./... | benchjson -sha $GITHUB_SHA -o BENCH_$GITHUB_SHA.json
//
// Every benchmark line contributes one entry with its iteration count
// and all reported metrics (ns/op, B/op, allocs/op, and custom metrics
// such as the partitioner benches' part-ms). The goos/goarch/pkg/cpu
// header lines annotate the entries; -sha (defaulting to $GITHUB_SHA)
// stamps the document. With -o absent or "-", the JSON goes to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `BenchmarkXxx-N  runs  metrics...` line.
type Benchmark struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the archived JSON document.
type Doc struct {
	SHA        string      `json:"sha,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output and collects the benchmark lines.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line, pkg)
			if err != nil {
				return nil, err
			}
			if b != nil {
				doc.Benchmarks = append(doc.Benchmarks, *b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine splits "BenchmarkName-8  5  123 ns/op  4.5 part-ms"
// into a Benchmark; lines without an iteration count (e.g. a benchmark
// name echoed by -v) are skipped, not errors.
func parseBenchLine(line, pkg string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkX" alone, or a failure marker
	}
	b := &Benchmark{Pkg: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

func main() {
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit sha to stamp the document with")
	out := flag.String("o", "-", "output file (\"-\" = stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc.SHA = *sha
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
