package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: chaos
cpu: Intel(R) Xeon(R)
BenchmarkExecutorMesh4K-8   	       5	 210000000 ns/op
PASS
ok  	chaos	2.1s
pkg: chaos/internal/partition
BenchmarkMultilevel20K-8   	       5	 123456789 ns/op	        33.50 part-ms
BenchmarkRSB20K
BenchmarkRSB20K-8          	       5	 987654321 ns/op	       250.00 part-ms
PASS
ok  	chaos/internal/partition	9.9s
`
	doc, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %q/%q/%q", doc.GoOS, doc.GoArch, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[1]
	if b.Pkg != "chaos/internal/partition" || b.Name != "BenchmarkMultilevel20K-8" || b.Runs != 5 {
		t.Errorf("bench[1] = %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 || b.Metrics["part-ms"] != 33.5 {
		t.Errorf("bench[1] metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Metrics["part-ms"] != 250 {
		t.Errorf("bench[2] metrics = %v", doc.Benchmarks[2].Metrics)
	}
}

func TestParseBadMetricValue(t *testing.T) {
	_, err := parse(strings.NewReader("Benchmark_X-2 3 oops ns/op\n"))
	if err == nil {
		t.Fatal("want error for malformed metric value")
	}
}

func TestParseReal(t *testing.T) {
	const out = `realbench: workload=mesh21000 method=RCB procs=1 wall_ms=4200.125 virtual_s=12.3456
realbench: workload=mesh21000 method=RCB procs=2 wall_ms=2400.500 virtual_s=7.0001
realbench: workload=mesh21000 method=RCB procs=8 wall_ms=1000.250 virtual_s=3.1415
realbench-speedup: workload=mesh21000 method=RCB procs=8 vs=1 real=4.20 virtual=3.93
[real backend on 8 host cores (GOMAXPROCS); real speedup is meaningful on 4+ cores]
`
	runs, speedup, err := parseReal(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("parsed %d real runs, want 3: %+v", len(runs), runs)
	}
	r := runs[0]
	if r.Workload != "mesh21000" || r.Method != "RCB" || r.Procs != 1 ||
		r.WallMS != 4200.125 || r.VirtualS != 12.3456 {
		t.Errorf("runs[0] = %+v", r)
	}
	if runs[2].Procs != 8 || runs[2].WallMS != 1000.25 {
		t.Errorf("runs[2] = %+v", runs[2])
	}
	if want := 4200.125 / 1000.25; speedup != want {
		t.Errorf("speedup = %v, want %v", speedup, want)
	}
}

func TestParseRealSingleCell(t *testing.T) {
	runs, speedup, err := parseReal(strings.NewReader(
		"realbench: workload=w method=BLOCK procs=4 wall_ms=10 virtual_s=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || speedup != 0 {
		t.Errorf("runs = %+v, speedup = %v; want one run and zero speedup", runs, speedup)
	}
}

func TestParseRealBadLines(t *testing.T) {
	for _, in := range []string{
		"realbench: procs=2 wall_ms=oops\n",          // bad float
		"realbench: procs=2\n",                       // missing wall_ms
		"realbench: nonsense\n",                      // no key=value
		"realbench: bogus=1 procs=2 wall_ms=3\n",     // unknown key
		"realbench: procs=zero wall_ms=3 method=X\n", // bad int
	} {
		if _, _, err := parseReal(strings.NewReader(in)); err == nil {
			t.Errorf("want error for %q", in)
		}
	}
}

func TestParseRealEmpty(t *testing.T) {
	runs, speedup, err := parseReal(strings.NewReader("no realbench lines here\n"))
	if err != nil || len(runs) != 0 || speedup != 0 {
		t.Errorf("got runs=%v speedup=%v err=%v; want empty", runs, speedup, err)
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("want no benchmarks, got %+v", doc.Benchmarks)
	}
}
