package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: chaos
cpu: Intel(R) Xeon(R)
BenchmarkExecutorMesh4K-8   	       5	 210000000 ns/op
PASS
ok  	chaos	2.1s
pkg: chaos/internal/partition
BenchmarkMultilevel20K-8   	       5	 123456789 ns/op	        33.50 part-ms
BenchmarkRSB20K
BenchmarkRSB20K-8          	       5	 987654321 ns/op	       250.00 part-ms
PASS
ok  	chaos/internal/partition	9.9s
`
	doc, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %q/%q/%q", doc.GoOS, doc.GoArch, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[1]
	if b.Pkg != "chaos/internal/partition" || b.Name != "BenchmarkMultilevel20K-8" || b.Runs != 5 {
		t.Errorf("bench[1] = %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 || b.Metrics["part-ms"] != 33.5 {
		t.Errorf("bench[1] metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Metrics["part-ms"] != 250 {
		t.Errorf("bench[2] metrics = %v", doc.Benchmarks[2].Metrics)
	}
}

func TestParseBadMetricValue(t *testing.T) {
	_, err := parse(strings.NewReader("Benchmark_X-2 3 oops ns/op\n"))
	if err == nil {
		t.Fatal("want error for malformed metric value")
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("want no benchmarks, got %+v", doc.Benchmarks)
	}
}
