package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: chaos
cpu: Intel(R) Xeon(R)
BenchmarkExecutorMesh4K-8   	       5	 210000000 ns/op
PASS
ok  	chaos	2.1s
pkg: chaos/internal/partition
BenchmarkMultilevel20K-8   	       5	 123456789 ns/op	        33.50 part-ms
BenchmarkRSB20K
BenchmarkRSB20K-8          	       5	 987654321 ns/op	       250.00 part-ms
PASS
ok  	chaos/internal/partition	9.9s
`
	doc, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %q/%q/%q", doc.GoOS, doc.GoArch, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[1]
	if b.Pkg != "chaos/internal/partition" || b.Name != "BenchmarkMultilevel20K-8" || b.Runs != 5 {
		t.Errorf("bench[1] = %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 || b.Metrics["part-ms"] != 33.5 {
		t.Errorf("bench[1] metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[2].Metrics["part-ms"] != 250 {
		t.Errorf("bench[2] metrics = %v", doc.Benchmarks[2].Metrics)
	}
}

func TestParseBadMetricValue(t *testing.T) {
	_, err := parse(strings.NewReader("Benchmark_X-2 3 oops ns/op\n"))
	if err == nil {
		t.Fatal("want error for malformed metric value")
	}
}

func TestParseReal(t *testing.T) {
	const out = `realbench: workload=mesh21000 method=RCB procs=1 wall_ms=4200.125 virtual_s=12.3456
realbench: workload=mesh21000 method=RCB procs=2 wall_ms=2400.500 virtual_s=7.0001
realbench: workload=mesh21000 method=RCB procs=8 wall_ms=1000.250 virtual_s=3.1415
realbench-speedup: workload=mesh21000 method=RCB procs=8 vs=1 real=4.20 virtual=3.93
[real backend on 8 host cores (GOMAXPROCS); real speedup is meaningful on 4+ cores]
`
	runs, speedup, err := parseReal(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("parsed %d real runs, want 3: %+v", len(runs), runs)
	}
	r := runs[0]
	if r.Workload != "mesh21000" || r.Method != "RCB" || r.Procs != 1 ||
		r.WallMS != 4200.125 || r.VirtualS != 12.3456 {
		t.Errorf("runs[0] = %+v", r)
	}
	if runs[2].Procs != 8 || runs[2].WallMS != 1000.25 {
		t.Errorf("runs[2] = %+v", runs[2])
	}
	if want := 4200.125 / 1000.25; speedup != want {
		t.Errorf("speedup = %v, want %v", speedup, want)
	}
}

func TestParseRealSingleCell(t *testing.T) {
	runs, speedup, err := parseReal(strings.NewReader(
		"realbench: workload=w method=BLOCK procs=4 wall_ms=10 virtual_s=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || speedup != 0 {
		t.Errorf("runs = %+v, speedup = %v; want one run and zero speedup", runs, speedup)
	}
}

func TestParseRealBadLines(t *testing.T) {
	for _, in := range []string{
		"realbench: procs=2 wall_ms=oops\n",          // bad float
		"realbench: procs=2\n",                       // missing wall_ms
		"realbench: nonsense\n",                      // no key=value
		"realbench: bogus=1 procs=2 wall_ms=3\n",     // unknown key
		"realbench: procs=zero wall_ms=3 method=X\n", // bad int
	} {
		if _, _, err := parseReal(strings.NewReader(in)); err == nil {
			t.Errorf("want error for %q", in)
		}
	}
}

func TestParseRealEmpty(t *testing.T) {
	runs, speedup, err := parseReal(strings.NewReader("no realbench lines here\n"))
	if err != nil || len(runs) != 0 || speedup != 0 {
		t.Errorf("got runs=%v speedup=%v err=%v; want empty", runs, speedup, err)
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("want no benchmarks, got %+v", doc.Benchmarks)
	}
}

func TestParseService(t *testing.T) {
	in := `chaosd: serving on 127.0.0.1:7850
servicebench: clients=1 requests=8 pps=198.81 hit_ratio=0.500 hits=4 cold=4 warm=0 shared=0 elapsed_ms=40.2
servicebench: clients=16 requests=128 pps=2180.71 hit_ratio=0.969 hits=112 cold=4 warm=0 shared=12 elapsed_ms=58.7
servicebench-speedup: clients=16 vs=1 pps=10.97
[against an external daemon the phases share its cache]
`
	runs, speedup, err := parseService(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	want0 := ServiceRun{Clients: 1, Requests: 8, PPS: 198.81, HitRatio: 0.5,
		Hits: 4, Cold: 4, ElapsedMS: 40.2}
	if runs[0] != want0 {
		t.Errorf("runs[0] = %+v, want %+v", runs[0], want0)
	}
	if runs[1].Clients != 16 || runs[1].Shared != 12 || runs[1].HitRatio != 0.969 {
		t.Errorf("runs[1] = %+v", runs[1])
	}
	if got := 2180.71 / 198.81; speedup != got {
		t.Errorf("speedup = %v, want %v", speedup, got)
	}
}

func TestParseServiceSingleCell(t *testing.T) {
	runs, speedup, err := parseService(strings.NewReader(
		"servicebench: clients=1 requests=8 pps=100 hit_ratio=0.5 hits=4 cold=4 warm=0 shared=0 elapsed_ms=40\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || speedup != 0 {
		t.Errorf("runs = %+v, speedup = %v; want one run and zero speedup", runs, speedup)
	}
}

func TestParseServiceBadLines(t *testing.T) {
	for _, in := range []string{
		"servicebench: clients=1 pps=oops\n",         // bad float
		"servicebench: clients=1\n",                  // missing pps
		"servicebench: nonsense\n",                   // no key=value
		"servicebench: bogus=1 clients=1 pps=2\n",    // unknown key
		"servicebench: clients=one pps=2\n",          // bad int
		"servicebench: clients=0 pps=2 requests=1\n", // non-positive clients
	} {
		if _, _, err := parseService(strings.NewReader(in)); err == nil {
			t.Errorf("want error for %q", in)
		}
	}
}

func TestParseServiceEmpty(t *testing.T) {
	runs, speedup, err := parseService(strings.NewReader("no servicebench lines here\n"))
	if err != nil || len(runs) != 0 || speedup != 0 {
		t.Errorf("got runs=%v speedup=%v err=%v; want empty", runs, speedup, err)
	}
}

func TestParseStream(t *testing.T) {
	in := `streambench: workload=mesh n=4096 method=MULTILEVEL parts=8 cut=2383 bytes=20897400 ms=27.7
streambench: workload=mesh n=4096 method=STREAM parts=8 cut=3219 bytes=6945672 ms=17.1
streambench: workload=mesh n=21952 method=MULTILEVEL parts=8 cut=8401 bytes=117414232 ms=210.0
streambench: workload=mesh n=21952 method=STREAM parts=8 cut=10490 bytes=8443440 ms=35.1
some human-facing trailer
`
	runs, cutRatio, memRatio, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	want0 := StreamRun{Workload: "mesh", N: 4096, Method: "MULTILEVEL",
		Parts: 8, Cut: 2383, Bytes: 20897400, WallMS: 27.7}
	if runs[0] != want0 {
		t.Errorf("runs[0] = %+v, want %+v", runs[0], want0)
	}
	// Ratios come from the largest mesh carrying both methods.
	if want := 10490.0 / 8401.0; cutRatio != want {
		t.Errorf("cutRatio = %v, want %v", cutRatio, want)
	}
	if want := 117414232.0 / 8443440.0; memRatio != want {
		t.Errorf("memRatio = %v, want %v", memRatio, want)
	}
}

func TestParseStreamUnpairedCell(t *testing.T) {
	// A STREAM cell with no same-size MULTILEVEL partner yields no
	// ratios, and does not steal them from a smaller paired mesh.
	in := `streambench: workload=mesh n=1728 method=MULTILEVEL parts=8 cut=1292 bytes=7998072 ms=45.6
streambench: workload=mesh n=1728 method=STREAM parts=8 cut=1768 bytes=2314480 ms=6.8
streambench: workload=mesh n=9261 method=STREAM parts=8 cut=5000 bytes=7000000 ms=20.0
`
	runs, cutRatio, memRatio, err := parseStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if want := 1768.0 / 1292.0; cutRatio != want {
		t.Errorf("cutRatio = %v, want %v (the largest PAIRED mesh)", cutRatio, want)
	}
	if want := 7998072.0 / 2314480.0; memRatio != want {
		t.Errorf("memRatio = %v, want %v", memRatio, want)
	}
}

func TestParseStreamBadLines(t *testing.T) {
	for _, in := range []string{
		"streambench: n=oops method=STREAM bytes=1\n",      // bad int
		"streambench: n=10 method=STREAM\n",                // missing bytes
		"streambench: nonsense\n",                          // no key=value
		"streambench: bogus=1 n=10 method=S bytes=1\n",     // unknown key
		"streambench: n=10 bytes=5\n",                      // missing method
		"streambench: n=10 method=STREAM bytes=notanum\n",  // bad uint
		"streambench: n=10 method=STREAM bytes=1 ms=zzz\n", // bad float
	} {
		if _, _, _, err := parseStream(strings.NewReader(in)); err == nil {
			t.Errorf("want error for %q", in)
		}
	}
}

func TestParseStreamEmpty(t *testing.T) {
	runs, cutRatio, memRatio, err := parseStream(strings.NewReader("no stream lines\n"))
	if err != nil || len(runs) != 0 || cutRatio != 0 || memRatio != 0 {
		t.Errorf("got runs=%v cut=%v mem=%v err=%v; want empty", runs, cutRatio, memRatio, err)
	}
}
