// Command chaosbench regenerates the tables of the paper's evaluation
// section (Ponnusamy, Saltz, Choudhary, SC'93) on the simulated
// iPSC/860.
//
// Usage:
//
//	chaosbench [-table N] [-quick] [-iters N] [-markdown]
//	chaosbench -crossover | -adaptive [-quick]
//	chaosbench -backend=real [-quick] [-iters N]
//
// With no -table flag every table (1-4) is produced. -quick runs a
// scaled-down grid (smaller meshes, fewer processors and iterations)
// that finishes in seconds; the full paper grid (10K/53K meshes, up to
// 64 simulated processors, 100 iterations) takes several minutes of
// host time.
//
// Table 2 carries one column beyond the paper: "ML Compiler Reuse"
// runs the MULTILEVEL partitioner (coarsen with heavy-edge matching,
// spectral-solve the coarse graph, uncoarsen with KL refinement),
// showing near-RSB executor times with the partitioner cost collapsed.
// On the multi-processor grids MULTILEVEL coarsens distributedly, so
// its partitioner cell — unlike RSB's replicated solve — also shrinks
// with the processor count. -crossover likewise includes MULTILEVEL in
// the amortization study.
//
// -adaptive emits the adaptive-mesh REDISTRIBUTE study as JSON: the
// mesh is adapted (edges rewired) every epoch and repartitioned
// through a Repartitioner, so warm, ladder-reusing MULTILEVEL runs
// are compared against same-graph cold runs — the incremental
// repartitioning column the paper could not afford to run.
//
// -backend=real switches from the tables to the real-cores study: the
// full RCB pipeline runs on the Real execution backend (ranks execute
// on host cores, payloads physically delivered) at P = 1, 2, 4, 8 on
// the 21952-node mesh, printing one parseable "realbench:" line per
// machine size with host wall time next to the virtual time the same
// run charged, plus a closing speedup summary. cmd/benchjson -real
// ingests these lines into BENCH_<sha>.json.
//
// -stream switches to the out-of-core streaming study: on each mesh
// size the STREAM engine (buffered bootstrap + restreams, fed slab by
// slab from the lattice source, adjacency never materialized) is run
// against the in-memory MULTILEVEL baseline at P=1, printing one
// parseable "streambench:" line per (size, method) with the edge cut,
// bytes allocated and host milliseconds. cmd/benchjson -stream ingests
// the lines into BENCH_<sha>.json as cut/memory ratios.
//
// -service switches to the partitioning-service load study: a serial
// client and then -clients concurrent clients drive a chaosd server
// (an in-process one on a loopback listener, or the daemon at
// -connect) through the load generator, printing one parseable
// "servicebench:" line per phase — partitions/sec, cache-hit ratio
// and the served-class mix — plus a closing "servicebench-speedup:"
// line with the concurrent-over-serial throughput ratio.
// -min-speedup turns that ratio into a gate (exit non-zero below it);
// cmd/benchjson -service ingests the lines into BENCH_<sha>.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"chaos/internal/experiments"
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
	"chaos/internal/partition"
	"chaos/internal/report"
	"chaos/internal/service"
	"chaos/internal/stream"
)

// runRealStudy executes the real-cores speedup study: the RCB
// pipeline on the Real backend at P = 1, 2, 4, 8, on the 21952-node
// acceptance mesh (a 3000-node mesh with -quick). RCB keeps the
// partitioner cheap so the executor sweep — the part that genuinely
// parallelizes on host cores — dominates the wall time.
func runRealStudy(quick bool, iters int) {
	nodes := 21000 // mesh.Generate rounds up to the 28^3 lattice: 21952
	if iters <= 0 {
		iters = 20
	}
	if quick {
		nodes = 3000
	}
	w := experiments.MeshWorkload(nodes)
	cells, err := experiments.RealSpeedupStudy(w,
		partition.Spec{Method: partition.MethodRCB}, []int{1, 2, 4, 8}, iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(1)
	}
	for _, rc := range cells {
		fmt.Println(rc)
	}
	first, last := cells[0], cells[len(cells)-1]
	fmt.Printf("realbench-speedup: workload=%s method=%s procs=%d vs=%d real=%.2f virtual=%.2f\n",
		first.Workload, first.Method, last.Procs, first.Procs,
		first.WallMS/last.WallMS, first.VirtualS/last.VirtualS)
	fmt.Printf("[real backend on %d host cores (GOMAXPROCS); real speedup is meaningful on 4+ cores]\n",
		runtime.GOMAXPROCS(0))
}

// allocDelta runs fn and returns the bytes it allocated (cumulative,
// so short-lived scratch counts — the honest number for an
// out-of-core-vs-in-memory comparison) plus its wall time.
func allocDelta(fn func()) (uint64, time.Duration) {
	var s0, s1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&s0)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&s1)
	return s1.TotalAlloc - s0.TotalAlloc, elapsed
}

// runStreamStudy compares the STREAM out-of-core engine against the
// in-memory MULTILEVEL baseline across mesh sizes: same mesh, same
// part count, cut quality vs bytes allocated. The streaming side reads
// the lattice source slab by slab — its adjacency never materializes.
func runStreamStudy(quick bool) {
	sizes := []int{4096, 9261, 21952}
	if quick {
		sizes = []int{1728, 4096}
	}
	const nparts = 8
	const seed = 1993
	for _, n := range sizes {
		m := mesh.Generate(n, seed)

		var mlCut float64
		mlBytes, mlT := allocDelta(func() {
			cfg := machine.IPSC860(1)
			cfg.Seed = 42
			err := machine.Run(cfg, func(c *machine.Ctx) {
				g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1, m.E2))
				part := partition.Multilevel{Seed: seed}.Partition(c, g, nparts)
				mlCut = partition.Cut(c, g, part)
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaosbench: stream study: %v\n", err)
				os.Exit(1)
			}
		})
		fmt.Printf("streambench: workload=mesh n=%d method=MULTILEVEL parts=%d cut=%d bytes=%d ms=%.1f\n",
			m.NNode, nparts, int(mlCut), mlBytes, float64(mlT.Nanoseconds())/1e6)

		side := mesh.SideFor(n)
		src := mesh.NewLatticeSource(side, side, side, seed)
		gs := stream.FromSource(src, stream.DefaultSlabVerts)
		var cut int
		stBytes, stT := allocDelta(func() {
			part, err := stream.Partition(gs, nparts, stream.Options{Restreams: 2, Seed: seed})
			if err == nil {
				cut, err = stream.Cut(gs, part)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaosbench: stream study: %v\n", err)
				os.Exit(1)
			}
		})
		fmt.Printf("streambench: workload=mesh n=%d method=STREAM parts=%d cut=%d bytes=%d ms=%.1f\n",
			m.NNode, nparts, cut, stBytes, float64(stT.Nanoseconds())/1e6)
	}
}

// serviceLine renders one load-generation phase as the parseable
// "servicebench:" key=value line benchjson ingests.
func serviceLine(res *service.LoadGenResult) string {
	return fmt.Sprintf("servicebench: clients=%d requests=%d pps=%.2f hit_ratio=%.3f hits=%d cold=%d warm=%d shared=%d elapsed_ms=%.1f",
		res.Clients, res.Requests, res.PartsPerSec, res.HitRatio,
		res.Hits, res.Cold, res.Warm, res.Shared,
		float64(res.Elapsed.Nanoseconds())/1e6)
}

// runServiceStudy measures service throughput: the same per-client
// request stream against a cold daemon, first with one serial client,
// then with `clients` concurrent ones. The concurrent phase's
// aggregate partitions/sec over the serial phase's is the service
// speedup — the cache and singleflight layers are exactly what turns
// 16 identical request streams into ~one stream of computes.
func runServiceStudy(connect string, quick bool, clients, requests int, minSpeedup float64) {
	nnode := 2000
	if quick {
		nnode = 600
	}
	cfg := service.LoadGenConfig{
		Requests: requests,
		Graphs:   4,
		NNode:    nnode, Degree: 6,
		NParts: 8, Procs: 4,
		Spec: partition.Spec{
			Method:            partition.MethodMultilevel,
			ParallelThreshold: 256,
			Seed:              1993,
		},
	}

	// phase runs one load-generation pass. Without -connect each phase
	// gets a fresh in-process daemon on a loopback listener, so both
	// phases start cold and the comparison is honest; with -connect the
	// daemon's cache persists across phases (noted on the output).
	phase := func(nclients int) *service.LoadGenResult {
		addr := connect
		var srv *service.Server
		if connect == "" {
			srv = service.New(service.Options{})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
				os.Exit(1)
			}
			go srv.Serve(l)
			addr = l.Addr().String()
		}
		c := cfg
		c.Clients = nclients
		c.Dial = func() (*service.Client, error) { return service.Dial("tcp", addr) }
		res, err := c.RunLoadGen(context.Background())
		if srv != nil {
			srv.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: service study: %v\n", err)
			os.Exit(1)
		}
		return res
	}

	serial := phase(1)
	fmt.Println(serviceLine(serial))
	conc := phase(clients)
	fmt.Println(serviceLine(conc))

	speedup := 0.0
	if serial.PartsPerSec > 0 {
		speedup = conc.PartsPerSec / serial.PartsPerSec
	}
	fmt.Printf("servicebench-speedup: clients=%d vs=1 pps=%.2f\n", clients, speedup)
	if connect != "" {
		fmt.Println("[against an external daemon the phases share its cache; run against a fresh daemon for a cold comparison]")
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "chaosbench: service speedup %.2fx below the %.2fx gate\n", speedup, minSpeedup)
		os.Exit(1)
	}
}

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (1-4); 0 = all")
		quick     = flag.Bool("quick", false, "scaled-down grid for a fast run")
		iters     = flag.Int("iters", 0, "override executor iteration count")
		markdown  = flag.Bool("markdown", false, "emit markdown tables")
		crossover = flag.Bool("crossover", false, "partitioner amortization/crossover study instead of tables")
		adaptive  = flag.Bool("adaptive", false, "adaptive-mesh cold/warm repartition amortization study, emitted as JSON")
		backend   = flag.String("backend", "sim", "execution backend: sim (virtual-clock tables) or real (real-cores speedup study)")

		strm       = flag.Bool("stream", false, "out-of-core streaming-vs-multilevel study instead of tables")
		svc        = flag.Bool("service", false, "partitioning-service load study instead of tables")
		connect    = flag.String("connect", "", "chaosd address for -service (empty = spawn an in-process daemon)")
		clients    = flag.Int("clients", 16, "concurrent clients for the -service study")
		requests   = flag.Int("requests", 8, "requests per client for the -service study")
		minSpeedup = flag.Float64("min-speedup", 0, "fail -service below this concurrent/serial pps ratio (0 = report only)")
	)
	flag.Parse()

	if *strm {
		runStreamStudy(*quick)
		return
	}
	if *svc {
		runServiceStudy(*connect, *quick, *clients, *requests, *minSpeedup)
		return
	}

	grid := experiments.PaperGrid()
	if *quick {
		grid = experiments.QuickGrid()
	}
	if *iters > 0 {
		grid.Iters = *iters
	}

	be, err := machine.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(2)
	}
	if be == machine.Real {
		runRealStudy(*quick, *iters)
		return
	}

	if *adaptive {
		// The incremental-repartitioning column: an adaptive mesh
		// repartitioned with MULTILEVEL every epoch through a
		// Repartitioner, warm ladder-reusing runs compared against
		// same-graph cold runs. ParallelThreshold is lowered so the
		// ladder path (the one with retained state) also engages on
		// the -quick grid's smaller mesh.
		rep, err := experiments.AdaptiveStudy(experiments.AdaptiveConfig{
			Procs: grid.Table2Procs, NNode: grid.MeshB,
			Epochs: 4, Rewire: 0.05, Iters: grid.Iters,
			Spec: partition.Spec{
				Method:            partition.MethodMultilevel,
				ParallelThreshold: 256,
			},
			ColdBaseline: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *crossover {
		w := experiments.MeshWorkload(grid.MeshB)
		rep, err := experiments.CrossoverReport(grid.Table2Procs, w,
			[]partition.Spec{
				{Method: partition.MethodBlock},
				{Method: partition.MethodRCB},
				{Method: partition.MethodRSB},
				{Method: partition.MethodMultilevel},
			}, grid.Iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}

	type gen struct {
		id int
		fn func(experiments.Grid) (*report.Table, error)
	}
	gens := []gen{
		{1, experiments.Table1},
		{2, experiments.Table2},
		{3, experiments.Table3},
		{4, experiments.Table4},
	}
	ran := false
	for _, g := range gens {
		if *table != 0 && *table != g.id {
			continue
		}
		ran = true
		start := time.Now()
		t, err := g.fn(grid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: table %d: %v\n", g.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		fmt.Printf("[table %d regenerated in %.1fs host time]\n\n", g.id, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "chaosbench: unknown table %d (have 1-4)\n", *table)
		os.Exit(2)
	}
}
