// Command chaosbench regenerates the tables of the paper's evaluation
// section (Ponnusamy, Saltz, Choudhary, SC'93) on the simulated
// iPSC/860.
//
// Usage:
//
//	chaosbench [-table N] [-quick] [-iters N] [-markdown]
//	chaosbench -crossover | -adaptive [-quick]
//	chaosbench -backend=real [-quick] [-iters N]
//
// With no -table flag every table (1-4) is produced. -quick runs a
// scaled-down grid (smaller meshes, fewer processors and iterations)
// that finishes in seconds; the full paper grid (10K/53K meshes, up to
// 64 simulated processors, 100 iterations) takes several minutes of
// host time.
//
// Table 2 carries one column beyond the paper: "ML Compiler Reuse"
// runs the MULTILEVEL partitioner (coarsen with heavy-edge matching,
// spectral-solve the coarse graph, uncoarsen with KL refinement),
// showing near-RSB executor times with the partitioner cost collapsed.
// On the multi-processor grids MULTILEVEL coarsens distributedly, so
// its partitioner cell — unlike RSB's replicated solve — also shrinks
// with the processor count. -crossover likewise includes MULTILEVEL in
// the amortization study.
//
// -adaptive emits the adaptive-mesh REDISTRIBUTE study as JSON: the
// mesh is adapted (edges rewired) every epoch and repartitioned
// through a Repartitioner, so warm, ladder-reusing MULTILEVEL runs
// are compared against same-graph cold runs — the incremental
// repartitioning column the paper could not afford to run.
//
// -backend=real switches from the tables to the real-cores study: the
// full RCB pipeline runs on the Real execution backend (ranks execute
// on host cores, payloads physically delivered) at P = 1, 2, 4, 8 on
// the 21952-node mesh, printing one parseable "realbench:" line per
// machine size with host wall time next to the virtual time the same
// run charged, plus a closing speedup summary. cmd/benchjson -real
// ingests these lines into BENCH_<sha>.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"chaos/internal/experiments"
	"chaos/internal/machine"
	"chaos/internal/partition"
	"chaos/internal/report"
)

// runRealStudy executes the real-cores speedup study: the RCB
// pipeline on the Real backend at P = 1, 2, 4, 8, on the 21952-node
// acceptance mesh (a 3000-node mesh with -quick). RCB keeps the
// partitioner cheap so the executor sweep — the part that genuinely
// parallelizes on host cores — dominates the wall time.
func runRealStudy(quick bool, iters int) {
	nodes := 21000 // mesh.Generate rounds up to the 28^3 lattice: 21952
	if iters <= 0 {
		iters = 20
	}
	if quick {
		nodes = 3000
	}
	w := experiments.MeshWorkload(nodes)
	cells, err := experiments.RealSpeedupStudy(w,
		partition.Spec{Method: partition.MethodRCB}, []int{1, 2, 4, 8}, iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(1)
	}
	for _, rc := range cells {
		fmt.Println(rc)
	}
	first, last := cells[0], cells[len(cells)-1]
	fmt.Printf("realbench-speedup: workload=%s method=%s procs=%d vs=%d real=%.2f virtual=%.2f\n",
		first.Workload, first.Method, last.Procs, first.Procs,
		first.WallMS/last.WallMS, first.VirtualS/last.VirtualS)
	fmt.Printf("[real backend on %d host cores (GOMAXPROCS); real speedup is meaningful on 4+ cores]\n",
		runtime.GOMAXPROCS(0))
}

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (1-4); 0 = all")
		quick     = flag.Bool("quick", false, "scaled-down grid for a fast run")
		iters     = flag.Int("iters", 0, "override executor iteration count")
		markdown  = flag.Bool("markdown", false, "emit markdown tables")
		crossover = flag.Bool("crossover", false, "partitioner amortization/crossover study instead of tables")
		adaptive  = flag.Bool("adaptive", false, "adaptive-mesh cold/warm repartition amortization study, emitted as JSON")
		backend   = flag.String("backend", "sim", "execution backend: sim (virtual-clock tables) or real (real-cores speedup study)")
	)
	flag.Parse()

	grid := experiments.PaperGrid()
	if *quick {
		grid = experiments.QuickGrid()
	}
	if *iters > 0 {
		grid.Iters = *iters
	}

	be, err := machine.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(2)
	}
	if be == machine.Real {
		runRealStudy(*quick, *iters)
		return
	}

	if *adaptive {
		// The incremental-repartitioning column: an adaptive mesh
		// repartitioned with MULTILEVEL every epoch through a
		// Repartitioner, warm ladder-reusing runs compared against
		// same-graph cold runs. ParallelThreshold is lowered so the
		// ladder path (the one with retained state) also engages on
		// the -quick grid's smaller mesh.
		rep, err := experiments.AdaptiveStudy(experiments.AdaptiveConfig{
			Procs: grid.Table2Procs, NNode: grid.MeshB,
			Epochs: 4, Rewire: 0.05, Iters: grid.Iters,
			Spec: partition.Spec{
				Method:            partition.MethodMultilevel,
				ParallelThreshold: 256,
			},
			ColdBaseline: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *crossover {
		w := experiments.MeshWorkload(grid.MeshB)
		rep, err := experiments.CrossoverReport(grid.Table2Procs, w,
			[]partition.Spec{
				{Method: partition.MethodBlock},
				{Method: partition.MethodRCB},
				{Method: partition.MethodRSB},
				{Method: partition.MethodMultilevel},
			}, grid.Iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}

	type gen struct {
		id int
		fn func(experiments.Grid) (*report.Table, error)
	}
	gens := []gen{
		{1, experiments.Table1},
		{2, experiments.Table2},
		{3, experiments.Table3},
		{4, experiments.Table4},
	}
	ran := false
	for _, g := range gens {
		if *table != 0 && *table != g.id {
			continue
		}
		ran = true
		start := time.Now()
		t, err := g.fn(grid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: table %d: %v\n", g.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		fmt.Printf("[table %d regenerated in %.1fs host time]\n\n", g.id, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "chaosbench: unknown table %d (have 1-4)\n", *table)
		os.Exit(2)
	}
}
