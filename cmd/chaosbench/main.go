// Command chaosbench regenerates the tables of the paper's evaluation
// section (Ponnusamy, Saltz, Choudhary, SC'93) on the simulated
// iPSC/860.
//
// Usage:
//
//	chaosbench [-table N] [-quick] [-iters N] [-markdown]
//
// With no -table flag every table (1-4) is produced. -quick runs a
// scaled-down grid (smaller meshes, fewer processors and iterations)
// that finishes in seconds; the full paper grid (10K/53K meshes, up to
// 64 simulated processors, 100 iterations) takes several minutes of
// host time.
//
// Table 2 carries one column beyond the paper: "ML Compiler Reuse"
// runs the MULTILEVEL partitioner (coarsen with heavy-edge matching,
// spectral-solve the coarse graph, uncoarsen with KL refinement),
// showing near-RSB executor times with the partitioner cost collapsed.
// On the multi-processor grids MULTILEVEL coarsens distributedly, so
// its partitioner cell — unlike RSB's replicated solve — also shrinks
// with the processor count. -crossover likewise includes MULTILEVEL in
// the amortization study.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chaos/internal/experiments"
	"chaos/internal/report"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (1-4); 0 = all")
		quick     = flag.Bool("quick", false, "scaled-down grid for a fast run")
		iters     = flag.Int("iters", 0, "override executor iteration count")
		markdown  = flag.Bool("markdown", false, "emit markdown tables")
		crossover = flag.Bool("crossover", false, "partitioner amortization/crossover study instead of tables")
	)
	flag.Parse()

	grid := experiments.PaperGrid()
	if *quick {
		grid = experiments.QuickGrid()
	}
	if *iters > 0 {
		grid.Iters = *iters
	}

	if *crossover {
		w := experiments.MeshWorkload(grid.MeshB)
		rep, err := experiments.CrossoverReport(grid.Table2Procs, w,
			[]string{"BLOCK", "RCB", "RSB", "MULTILEVEL"}, grid.Iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}

	type gen struct {
		id int
		fn func(experiments.Grid) (*report.Table, error)
	}
	gens := []gen{
		{1, experiments.Table1},
		{2, experiments.Table2},
		{3, experiments.Table3},
		{4, experiments.Table4},
	}
	ran := false
	for _, g := range gens {
		if *table != 0 && *table != g.id {
			continue
		}
		ran = true
		start := time.Now()
		t, err := g.fn(grid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: table %d: %v\n", g.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		fmt.Printf("[table %d regenerated in %.1fs host time]\n\n", g.id, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "chaosbench: unknown table %d (have 1-4)\n", *table)
		os.Exit(2)
	}
}
