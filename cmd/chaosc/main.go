// Command chaosc compiles a Fortran-90D-like source file with the
// paper's irregular extensions (CONSTRUCT / SET ... BY PARTITIONING /
// REDISTRIBUTE / FORALL+REDUCE) and either prints the generated CHAOS
// runtime plan (-plan) or runs the program on the simulated machine.
//
// Usage:
//
//	chaosc [-p procs] [-plan] [-mesh N | -ring N] file.f90d
//
// Programs typically READ their indirection arrays from the host; this
// driver offers two synthetic data sources:
//
//	-mesh N  binds END_PT1/END_PT2 (and XC/YC/ZC, X) to an N-node
//	         unstructured mesh workload
//	-ring N  binds END_PT1/END_PT2 to an N-cycle
//
// On completion the maximum per-phase virtual times are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"chaos/internal/core"
	"chaos/internal/lang"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

func main() {
	var (
		procs    = flag.Int("p", 8, "simulated processor count")
		planOnly = flag.Bool("plan", false, "print the compiled plan and exit")
		meshN    = flag.Int("mesh", 0, "bind a synthetic N-node mesh workload")
		ringN    = flag.Int("ring", 0, "bind an N-cycle edge list")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chaosc [-p procs] [-plan] [-mesh N | -ring N] file.f90d")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosc: %v\n", err)
		os.Exit(1)
	}
	prog, err := lang.Compile(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosc: %v\n", err)
		os.Exit(1)
	}
	if *planOnly {
		fmt.Print(prog.PlanString())
		return
	}

	env := &lang.Env{
		RealData: map[string]func(int) float64{},
		IntData:  map[string]func(int) int{},
	}
	switch {
	case *meshN > 0:
		m := mesh.Generate(*meshN, 1993)
		env.IntData["END_PT1"] = func(g int) int { return m.E1[g] }
		env.IntData["END_PT2"] = func(g int) int { return m.E2[g] }
		env.RealData["XC"] = func(g int) float64 { return m.X[g] }
		env.RealData["YC"] = func(g int) float64 { return m.Y[g] }
		env.RealData["ZC"] = func(g int) float64 { return m.Z[g] }
		env.RealData["X"] = m.InitialState
	case *ringN > 0:
		n := *ringN
		env.IntData["END_PT1"] = func(g int) int { return g }
		env.IntData["END_PT2"] = func(g int) int { return (g + 1) % n }
	}

	var mu sync.Mutex
	phases := map[string]float64{}
	var execErr error
	env.OnFinish = func(s *core.Session, _ map[string]*core.Array, _ map[string]*core.IntArray) {
		for _, name := range []string{core.TimerGraphGen, core.TimerPartition, core.TimerRemap, core.TimerInspector, core.TimerExecutor} {
			v := s.TimerMax(name)
			if s.C.Rank() == 0 {
				mu.Lock()
				phases[name] = v
				mu.Unlock()
			}
		}
	}
	err = machine.Run(machine.IPSC860(*procs), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), env); e != nil {
			mu.Lock()
			if execErr == nil {
				execErr = e
			}
			mu.Unlock()
		}
	})
	if err == nil {
		err = execErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("program %s ran on %d simulated processors\n", prog.Name, *procs)
	total := 0.0
	for _, name := range []string{core.TimerGraphGen, core.TimerPartition, core.TimerRemap, core.TimerInspector, core.TimerExecutor} {
		fmt.Printf("  %-10s %10.4f s\n", name, phases[name])
		total += phases[name]
	}
	fmt.Printf("  %-10s %10.4f s\n", "total", total)
}
