// Command chaosd is the partitioning daemon: a long-lived server that
// answers partition requests over a small length-prefixed wire
// protocol, amortizing partitioning work across every client that
// connects. Finished partitions and the retained MULTILEVEL
// coarsening ladders live in a content-addressed cache keyed by
// (graph fingerprint, canonical spec, nparts, procs), so one client's
// cold run serves another's identical request from memory and
// warm-starts churned descendants of the same graph (the CHAOS
// schedule-reuse economy, lifted from one program's iterations to a
// fleet of programs).
//
// Usage:
//
//	chaosd [-listen 127.0.0.1:7850] [-workers N] [-queue N] [-cache-mb N]
//
// Admission is bounded: at most -workers computes run concurrently
// over a -queue-deep FIFO; requests beyond that are rejected with a
// typed retryable error rather than queued without bound. Identical
// in-flight requests are batched server-side (singleflight).
//
// The daemon serves until SIGINT/SIGTERM, then drains: in-flight
// computes are cancelled, every waiting client unwinds with a typed
// error, and the process exits cleanly. cmd/chaosbench -service is
// the matching load generator.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"chaos/internal/service"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7850", "TCP address to serve on")
		workers = flag.Int("workers", 0, "compute pool width (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
		cacheMB = flag.Int64("cache-mb", 256, "cache memory cap in MiB (0 = default, <0 = unbounded)")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	s := service.New(service.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: cacheBytes,
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chaosd: serving on %s\n", l.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	select {
	case sig := <-sigc:
		fmt.Printf("chaosd: %v, draining\n", sig)
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosd: serve: %v\n", err)
			s.Close()
			os.Exit(1)
		}
	}
	s.Close()
	m := s.Metrics()
	fmt.Printf("chaosd: served hits=%d cold=%d warm=%d shared=%d rejected=%d\n",
		m.Hits, m.Cold, m.Warm, m.Shared, m.Rejected)
}
