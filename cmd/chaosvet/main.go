// Command chaosvet runs the repository's project-specific static
// analyzers (internal/analysis) over Go package patterns and reports
// violations of the SPMD, hot-path, deprecation and exchange-result
// invariants with file:line diagnostics:
//
//	go run ./cmd/chaosvet ./...
//	go run ./cmd/chaosvet -run spmdcollective,hotalloc ./internal/partition
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic is
// reported, and 2 on usage or load errors. `make analyze` runs the full
// suite as part of tier-1 CI; see docs/ANALYZERS.md for what each
// analyzer enforces and how to suppress a reviewed false positive with
// a //chaosvet:ignore directive.
package main

import (
	"flag"
	"fmt"
	"os"

	"chaos/internal/analysis"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chaosvet [-run analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(analyzers, fset, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "chaosvet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
