// Command docscheck is the repository's markdown link checker: it
// scans the given files and directories for .md files, extracts every
// inline link and image, and verifies that relative targets exist on
// disk and that fragment targets (#anchors) name a real heading in
// the target file. External links (http, https, mailto) are not
// fetched — CI must not depend on the network — only recognized and
// skipped.
//
// Usage:
//
//	docscheck [path ...]
//
// Each path is a markdown file or a directory to walk. Exits 0 when
// every link resolves, 1 with a "file:line: message" report per
// broken link otherwise. `make docs-check` runs it over README.md,
// docs/ and examples/ alongside a go-doc rendering smoke pass.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Nested brackets in the text are not supported; the
// repository's docs do not use them.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"."}
	}
	problems, err := check(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", len(problems))
		os.Exit(1)
	}
}

// check walks the given paths and returns one "file:line: message"
// string per broken link, in deterministic (walk) order.
func check(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.Walk(p, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !fi.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var problems []string
	for _, f := range files {
		ps, err := checkFile(f)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// checkFile verifies every link of one markdown file.
func checkFile(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var problems []string
	dir := filepath.Dir(file)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(dir, file, target); msg != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", file, i+1, msg))
			}
		}
	}
	return problems, nil
}

// checkTarget validates one link target relative to the markdown file
// it appears in; empty means the link resolves.
func checkTarget(dir, file, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not fetched by design
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := file
	if path != "" {
		resolved = filepath.Join(dir, path)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // anchors into non-markdown files are not checkable
	}
	ok, err := hasAnchor(resolved, frag)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !ok {
		return fmt.Sprintf("broken link %q: no heading for anchor #%s in %s", target, frag, resolved)
	}
	return ""
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-style slug equals frag. Lines inside ``` fences are not
// headings — a `# comment` in a fenced shell block must not satisfy
// an anchor.
func hasAnchor(file, frag string) (bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	fenced := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slug(heading) == strings.ToLower(frag) {
			return true, nil
		}
	}
	return false, nil
}

// slug converts a heading to a GitHub-style anchor: trimmed,
// lowercased, punctuation dropped, spaces and hyphens kept as
// hyphens.
func slug(heading string) string {
	heading = strings.TrimSpace(strings.ToLower(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}
