package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file under dir, making parents as needed.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckCleanTree(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/GUIDE.md", "# Guide\n\n## Deep Dive\n\nSee [readme](../README.md) and [dive](#deep-dive).\n")
	write(t, dir, "README.md", "# Top\n\n[guide](docs/GUIDE.md) and [section](docs/GUIDE.md#deep-dive)\nand [site](https://example.com) and ![img](docs/GUIDE.md)\n")
	problems, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("clean tree reported problems: %v", problems)
	}
}

func TestCheckBrokenLink(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", "intro\n\n[missing](docs/NOPE.md)\n")
	problems, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("want exactly one problem, got %v", problems)
	}
	if !strings.Contains(problems[0], "README.md:3") || !strings.Contains(problems[0], "NOPE.md") {
		t.Errorf("problem should name file, line and target: %q", problems[0])
	}
}

func TestCheckBrokenAnchor(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.md", "# Real Heading\n")
	write(t, dir, "b.md", "[x](a.md#real-heading)\n[y](a.md#fake-heading)\n[z](#also-fake)\n")
	problems, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want two anchor problems, got %v", problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "fake") {
			t.Errorf("unexpected problem %q", p)
		}
	}
}

func TestAnchorIgnoresFencedCode(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.md", "# Real\n\n```sh\n# fake heading\n```\n")
	write(t, dir, "b.md", "[ok](a.md#real)\n[bad](a.md#fake-heading)\n")
	problems, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "fake-heading") {
		t.Fatalf("want one fenced-anchor problem, got %v", problems)
	}
}

func TestCheckExplicitFileArg(t *testing.T) {
	dir := t.TempDir()
	md := write(t, dir, "solo.md", "[ok](solo.md)\n[bad](gone.md)\n")
	problems, err := check([]string{md})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("want one problem, got %v", problems)
	}
}

func TestCheckMissingPathErrors(t *testing.T) {
	if _, err := check([]string{filepath.Join(t.TempDir(), "absent")}); err == nil {
		t.Fatal("nonexistent argument should error")
	}
}

func TestSlug(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{" The refinement stack ", "the-refinement-stack"},
		{"Tuning the multilevel partitioner", "tuning-the-multilevel-partitioner"},
		{"Phase A — GeoCoL and the partitioner library (Sections 4.1–4.2)", "phase-a--geocol-and-the-partitioner-library-sections-4142"},
	} {
		if got := slug(tc.in); got != tc.want {
			t.Errorf("slug(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
