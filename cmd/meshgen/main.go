// Command meshgen generates the synthetic workloads (unstructured
// meshes and water boxes) used by the experiments and writes them as
// JSON, for inspection or for feeding external tools.
//
// Usage:
//
//	meshgen -kind mesh -n 10000 [-seed S] [-o mesh.json]
//	meshgen -kind water -mol 216 [-cutoff 4.5] [-seed S] [-o water.json]
//
// With no -o the workload summary is printed instead of the full JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chaos/internal/md"
	"chaos/internal/mesh"
)

type meshOut struct {
	NNode int       `json:"nnode"`
	NEdge int       `json:"nedge"`
	E1    []int     `json:"end_pt1"`
	E2    []int     `json:"end_pt2"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
	Z     []float64 `json:"z"`
}

type waterOut struct {
	NAtom  int       `json:"natom"`
	NPair  int       `json:"npair"`
	P1     []int     `json:"p1"`
	P2     []int     `json:"p2"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
	Z      []float64 `json:"z"`
	Q      []float64 `json:"q"`
	Cutoff float64   `json:"cutoff"`
}

func main() {
	var (
		kind   = flag.String("kind", "mesh", "workload kind: mesh or water")
		n      = flag.Int("n", 10000, "mesh node target")
		mol    = flag.Int("mol", 216, "water molecule count")
		cutoff = flag.Float64("cutoff", 4.5, "pair-list cutoff (Angstrom)")
		seed   = flag.Uint64("seed", 1993, "generator seed")
		out    = flag.String("o", "", "output JSON path (default: summary only)")
	)
	flag.Parse()

	var payload any
	var summary string
	switch *kind {
	case "mesh":
		m := mesh.Generate(*n, *seed)
		payload = meshOut{m.NNode, m.NEdge(), m.E1, m.E2, m.X, m.Y, m.Z}
		summary = fmt.Sprintf("mesh: %d nodes, %d edges, avg degree %.2f",
			m.NNode, m.NEdge(), m.AvgDegree())
	case "water":
		s := md.Water(*mol, *cutoff, *seed)
		payload = waterOut{s.NAtom, s.NPair(), s.P1, s.P2, s.X, s.Y, s.Z, s.Q, s.Cutoff}
		summary = fmt.Sprintf("water: %d atoms, %d nonbonded pairs within %.2f A",
			s.NAtom, s.NPair(), s.Cutoff)
	default:
		fmt.Fprintf(os.Stderr, "meshgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	fmt.Println(summary)
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(payload); err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
