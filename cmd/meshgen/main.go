// Command meshgen generates the synthetic workloads (unstructured
// meshes and water boxes) used by the experiments and writes them as
// JSON, for inspection or for feeding external tools.
//
// Usage:
//
//	meshgen -kind mesh -n 10000 [-seed S] [-o mesh.json]
//	meshgen -kind water -mol 216 [-cutoff 4.5] [-seed S] [-o water.json]
//	meshgen -kind mesh -n 10000 -stream [-slab 4096] -o mesh.cs
//
// With no -o the workload summary is printed instead of the full JSON.
// With -stream the mesh is emitted as a binary edge-stream file
// (internal/stream's "cs" format) written slab by slab straight from
// the lattice source — the full adjacency is never materialized, so
// arbitrarily large meshes stream to disk in bounded memory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"chaos/internal/md"
	"chaos/internal/mesh"
	"chaos/internal/stream"
)

type meshOut struct {
	NNode int       `json:"nnode"`
	NEdge int       `json:"nedge"`
	E1    []int     `json:"end_pt1"`
	E2    []int     `json:"end_pt2"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
	Z     []float64 `json:"z"`
}

type waterOut struct {
	NAtom  int       `json:"natom"`
	NPair  int       `json:"npair"`
	P1     []int     `json:"p1"`
	P2     []int     `json:"p2"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
	Z      []float64 `json:"z"`
	Q      []float64 `json:"q"`
	Cutoff float64   `json:"cutoff"`
}

func main() {
	var (
		kind    = flag.String("kind", "mesh", "workload kind: mesh or water")
		n       = flag.Int("n", 10000, "mesh node target")
		mol     = flag.Int("mol", 216, "water molecule count")
		cutoff  = flag.Float64("cutoff", 4.5, "pair-list cutoff (Angstrom)")
		seed    = flag.Uint64("seed", 1993, "generator seed")
		out     = flag.String("o", "", "output path (default: summary only)")
		asStrm  = flag.Bool("stream", false, "emit a binary edge-stream (.cs) file instead of JSON (mesh only; requires -o)")
		slabLen = flag.Int("slab", stream.DefaultSlabVerts, "edge-stream slab granularity in vertices")
	)
	flag.Parse()

	if *asStrm {
		if *kind != "mesh" {
			fmt.Fprintln(os.Stderr, "meshgen: -stream supports -kind mesh only")
			os.Exit(2)
		}
		if *out == "" {
			fmt.Fprintln(os.Stderr, "meshgen: -stream requires -o")
			os.Exit(2)
		}
		side := mesh.SideFor(*n)
		src := mesh.NewLatticeSource(side, side, side, *seed)
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
			os.Exit(1)
		}
		gs := stream.FromSource(src, *slabLen)
		slabs, err := stream.Copy(f, gs)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mesh: %d nodes, %d edges\n", src.NumVertices(), src.NumEdges())
		fmt.Printf("wrote %s (%d slabs of %d vertices)\n", *out, slabs, *slabLen)
		return
	}

	var payload any
	var summary string
	switch *kind {
	case "mesh":
		m := mesh.Generate(*n, *seed)
		payload = meshOut{m.NNode, m.NEdge(), m.E1, m.E2, m.X, m.Y, m.Z}
		summary = fmt.Sprintf("mesh: %d nodes, %d edges, avg degree %.2f",
			m.NNode, m.NEdge(), m.AvgDegree())
	case "water":
		s := md.Water(*mol, *cutoff, *seed)
		payload = waterOut{s.NAtom, s.NPair(), s.P1, s.P2, s.X, s.Y, s.Z, s.Q, s.Cutoff}
		summary = fmt.Sprintf("water: %d atoms, %d nonbonded pairs within %.2f A",
			s.NAtom, s.NPair(), s.Cutoff)
	default:
		fmt.Fprintf(os.Stderr, "meshgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	fmt.Println(summary)
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(payload); err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
