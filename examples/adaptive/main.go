// Adaptive example: incremental repartitioning of an adaptive mesh —
// the REDISTRIBUTE experiment the paper could not afford to run. An
// Euler edge sweep runs over an unstructured mesh whose connectivity
// is "adapted" every few time steps (a fraction of edges rewired, as
// an adaptive CFD solver does), and the mesh is repartitioned with
// MULTILEVEL at every adaptation through a chaos.Repartitioner:
//
//   - Between adaptations, every Execute reuses the saved inspector,
//     and Repartitioner.Map returns its cached mapping without any
//     work (the paper's Section 3 unchanged-input guard).
//   - At each adaptation the indirection arrays change, so Map must
//     repartition — but instead of a cold MULTILEVEL run it restricts
//     the previous partition onto the retained coarsening ladder and
//     re-runs refinement only, a fraction of the cold cost.
//   - The typed PartitionSpec lowers ParallelThreshold so the
//     distributed ladder path (the one with retained state) engages
//     on this demo-sized mesh.
//
// The program prints the cold-vs-warm partition time per epoch plus
// the remap traffic each repartition causes — the Table-2-style
// column chaosbench -adaptive emits as JSON.
//
// Run: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"chaos/chaos"
	"chaos/internal/mesh"
	"chaos/internal/xrand"
)

func main() {
	const (
		procs  = 8
		steps  = 40
		adapt  = 10 // adapt connectivity every this many steps
		rewire = 0.05
	)
	m := mesh.Generate(4000, 7)
	nedge := m.NEdge()
	fmt.Printf("adaptive sweep: %d nodes, %d edges, adapting %d%% of edges every %d steps\n",
		m.NNode, nedge, int(rewire*100), adapt)

	// Precompute the rewired edge lists for each adaptation epoch so
	// every rank sees identical "mesh adaptation" results.
	epochs := 1 + (steps-1)/adapt
	e1s := make([][]int, epochs)
	e2s := make([][]int, epochs)
	e1s[0], e2s[0] = m.E1, m.E2
	rng := xrand.New(99)
	for ep := 1; ep < epochs; ep++ {
		e1 := append([]int(nil), e1s[ep-1]...)
		e2 := append([]int(nil), e2s[ep-1]...)
		for k := 0; k < int(rewire*float64(nedge)); k++ {
			// Re-point one endpoint of a random edge at a random
			// vertex (index-space rewiring is fine here; the point is
			// that the access pattern changed).
			e := rng.Intn(nedge)
			e2[e] = rng.Intn(m.NNode)
		}
		e1s[ep], e2s[ep] = e1, e2
	}

	spec := chaos.PartitionSpec{
		Method:            chaos.MethodMultilevel,
		ParallelThreshold: 512, // engage the ladder path on this mesh size
	}

	err := chaos.Run(chaos.IPSC860(procs), func(s *chaos.Session) {
		x := s.NewArray("x", m.NNode)
		y := s.NewArray("y", m.NNode)
		x.FillByGlobal(m.InitialState)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", nedge)
		e2 := s.NewIntArray("end_pt2", nedge)
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })
		in := chaos.GeoColInput{Link1: e1, Link2: e2}

		rp, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}

		loop := s.NewLoop("sweep", nedge,
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			mesh.EulerFlops, mesh.EulerFlux)
		loop.PartitionIterations(chaos.AlmostOwnerComputes)

		var prevFull []int
		epoch := 0
		for step := 0; step < steps; step++ {
			if step > 0 && step%adapt == 0 {
				epoch++
				// Mesh adaptation: rewrite the indirection arrays,
				// which bumps their lastmod timestamps so both the
				// inspector and the mapper guard see the change.
				cur1, cur2 := e1s[epoch], e2s[epoch]
				e1.FillByGlobal(func(g int) int { return cur1[g] })
				e2.FillByGlobal(func(g int) int { return cur2[g] })
			}
			pt0 := s.Timer(chaos.TimerPartition)
			st0 := rp.Stats()
			mapping, err := rp.Map(m.NNode, in, procs)
			if err != nil {
				panic(err)
			}
			partS := s.C.MaxFloat(s.Timer(chaos.TimerPartition) - pt0)
			st := rp.Stats()

			if st.Cold+st.Warm > st0.Cold+st0.Warm {
				// A repartition actually ran: redistribute onto the
				// new mapping and report the epoch.
				full := s.C.AllGatherInts(mapping.LocalPart())
				moved := 0
				if prevFull != nil {
					for i, p := range full {
						if prevFull[i] != p {
							moved++
						}
					}
				}
				prevFull = full
				cut := 0
				for i := range e1s[epoch] {
					u, v := e1s[epoch][i], e2s[epoch][i]
					if u != v && full[u] != full[v] {
						cut++
					}
				}
				s.Redistribute(mapping, []*chaos.Array{x, y}, nil)
				if s.C.Rank() == 0 {
					mode := "cold"
					if st.Warm > st0.Warm {
						mode = "warm"
					}
					fmt.Printf("epoch %d: %-4s partition %6.3fs (virtual), cut %d, remap moved %d of %d vertices\n",
						epoch, mode, partS, cut, moved, m.NNode)
				}
			}
			loop.Execute()
		}

		st := rp.Stats()
		ins := s.TimerMax(chaos.TimerInspector)
		ex := s.TimerMax(chaos.TimerExecutor)
		if s.C.Rank() == 0 {
			fmt.Printf("%d sweeps across %d adaptation epochs: %d cold run, %d warm ladder reuses, %d cache hits\n",
				steps, epochs, st.Cold, st.Warm, st.Hits)
			fmt.Printf("inspector %.3fs, executor %.3fs (virtual)\n", ins, ex)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
