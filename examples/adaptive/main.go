// Adaptive example: what schedule reuse buys — and when the runtime
// must conservatively give it up. An Euler edge sweep runs over an
// unstructured mesh whose connectivity is "adapted" every few time
// steps (a fraction of edges rewired, as an adaptive CFD solver does).
//
//   - Between adaptations, every Execute reuses the saved inspector.
//   - Writing the indirection arrays bumps their lastmod timestamps, so
//     the first sweep after each adaptation re-runs the inspector
//     (condition 3 of the paper's Section 3).
//   - The GeoCoL mapping is guarded by the same mechanism: geometry is
//     unchanged, so ConstructAndPartition keeps returning the cached
//     RCB mapping instead of repartitioning.
//
// Run: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"chaos/chaos"
	"chaos/internal/mesh"
	"chaos/internal/xrand"
)

func main() {
	const (
		procs  = 8
		steps  = 30
		adapt  = 10 // adapt connectivity every this many steps
		rewire = 0.05
	)
	m := mesh.Generate(2000, 7)
	nedge := m.NEdge()
	fmt.Printf("adaptive sweep: %d nodes, %d edges, adapting %d%% of edges every %d steps\n",
		m.NNode, nedge, int(rewire*100), adapt)

	// Precompute the rewired edge lists for each adaptation epoch so
	// every rank sees identical "mesh adaptation" results.
	epochs := 1 + (steps-1)/adapt
	e1s := make([][]int, epochs)
	e2s := make([][]int, epochs)
	e1s[0], e2s[0] = m.E1, m.E2
	rng := xrand.New(99)
	for ep := 1; ep < epochs; ep++ {
		e1 := append([]int(nil), e1s[ep-1]...)
		e2 := append([]int(nil), e2s[ep-1]...)
		for k := 0; k < int(rewire*float64(nedge)); k++ {
			// Re-point one endpoint of a random edge at a random
			// nearby vertex (index-space rewiring is fine here; the
			// point is that the access pattern changed).
			e := rng.Intn(nedge)
			e2[e] = rng.Intn(m.NNode)
		}
		e1s[ep], e2s[ep] = e1, e2
	}

	err := chaos.Run(chaos.IPSC860(procs), func(s *chaos.Session) {
		x := s.NewArray("x", m.NNode)
		y := s.NewArray("y", m.NNode)
		x.FillByGlobal(m.InitialState)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", nedge)
		e2 := s.NewIntArray("end_pt2", nedge)
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })
		xc := s.NewArray("xc", m.NNode)
		yc := s.NewArray("yc", m.NNode)
		zc := s.NewArray("zc", m.NNode)
		xc.FillByGlobal(func(g int) float64 { return m.X[g] })
		yc.FillByGlobal(func(g int) float64 { return m.Y[g] })
		zc.FillByGlobal(func(g int) float64 { return m.Z[g] })

		// Reuse-guarded mapper coupling: the geometry never changes,
		// so the partitioner runs exactly once across all epochs.
		var mapperCache chaos.MapperRecord
		in := chaos.GeoColInput{Geometry: []*chaos.Array{xc, yc, zc}}
		mapping, err := s.ConstructAndPartition(&mapperCache, m.NNode, in, "RCB", procs)
		if err != nil {
			panic(err)
		}
		s.Redistribute(mapping, []*chaos.Array{x, y}, nil)

		loop := s.NewLoop("sweep", nedge,
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			mesh.EulerFlops, mesh.EulerFlux)
		loop.PartitionIterations(chaos.AlmostOwnerComputes)

		epoch := 0
		for step := 0; step < steps; step++ {
			if step > 0 && step%adapt == 0 {
				epoch++
				// Mesh adaptation: rewrite the indirection arrays.
				// (After iteration partitioning they are irregularly
				// distributed; FillByGlobal writes the local section
				// and bumps lastmod.)
				cur1, cur2 := e1s[epoch], e2s[epoch]
				e1.FillByGlobal(func(g int) int { return cur1[g] })
				e2.FillByGlobal(func(g int) int { return cur2[g] })
				// The mapper cache is still valid: geometry unchanged.
				if again, _ := s.ConstructAndPartition(&mapperCache, m.NNode, in, "RCB", procs); again != mapping {
					panic("mapper cache should have been reused")
				}
			}
			loop.Execute()
		}

		hits, misses := s.Reg.Stats()
		if s.C.Rank() == 0 {
			fmt.Printf("%d sweeps across %d adaptation epochs\n", steps, epochs)
			// One miss belongs to the mapper record's first check.
			fmt.Printf("inspector executions: %d (one per epoch), reuse hits: %d\n", misses-1, hits)
		}
		ins := s.TimerMax(chaos.TimerInspector)
		ex := s.TimerMax(chaos.TimerExecutor)
		pt := s.TimerMax(chaos.TimerPartition)
		if s.C.Rank() == 0 {
			fmt.Printf("partitioner %.3fs (ran once), inspector %.3fs, executor %.3fs (virtual)\n", pt, ins, ex)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
