// Compiler example: runtime compilation of a Fortran-90D-like source
// program (the paper's Figure 4) into a CHAOS plan, then execution on
// the simulated machine. Prints the generated plan — the K1-K4
// transformation of the paper's Figure 6 — and the per-phase times.
//
// Run: go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"sync"

	"chaos/internal/core"
	"chaos/internal/lang"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

const source = `
      PROGRAM figure4
C     The implicit-mapping example of the paper's Figure 4:
C     connectivity-based (RSB) partitioning driven by directives.
      PARAMETER (nnode = 2197, nedge = 11700, nsweep = 25)
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
      DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
      DISTRIBUTE reg(BLOCK), reg2(BLOCK)
      ALIGN x, y WITH reg
      ALIGN end_pt1, end_pt2 WITH reg2
      READ end_pt1, end_pt2, x
      FORALL i = 1, nnode
        y(i) = 0.0
      END FORALL
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      DO t = 1, nsweep
        FORALL i = 1, nedge
          REDUCE (ADD, y(end_pt1(i)), (0.5*(x(end_pt1(i))+x(end_pt2(i))))**2 + 0.5*(x(end_pt2(i))-x(end_pt1(i))))
          REDUCE (ADD, y(end_pt2(i)), (0.5*(x(end_pt1(i))+x(end_pt2(i))))**2 - 0.5*(x(end_pt2(i))-x(end_pt1(i))))
        END FORALL
      END DO
      END
`

func main() {
	const procs = 8
	m := mesh.Generate(2000, 42)
	if m.NNode != 2197 || m.NEdge() != 11700 {
		log.Fatalf("mesh has %d nodes / %d edges; update the PARAMETER line", m.NNode, m.NEdge())
	}

	prog, err := lang.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated plan (paper Figure 6) ===")
	fmt.Print(prog.PlanString())
	fmt.Println()

	env := &lang.Env{
		RealData: map[string]func(int) float64{"X": m.InitialState},
		IntData: map[string]func(int) int{
			"END_PT1": func(g int) int { return m.E1[g] },
			"END_PT2": func(g int) int { return m.E2[g] },
		},
	}
	var mu sync.Mutex
	var sum float64
	env.OnFinish = func(s *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
		y := reals["Y"]
		local := 0.0
		for _, v := range y.Data {
			local += v
		}
		tot := s.C.SumFloat(local)
		hits, misses := s.Reg.Stats()
		ins := s.TimerMax(core.TimerInspector)
		ex := s.TimerMax(core.TimerExecutor)
		pt := s.TimerMax(core.TimerPartition)
		if s.C.Rank() == 0 {
			mu.Lock()
			sum = tot
			mu.Unlock()
			fmt.Printf("=== execution on %d simulated processors ===\n", procs)
			fmt.Printf("sum(y) = %.6f after 25 sweeps\n", tot)
			fmt.Printf("inspector runs %d, reuses %d\n", misses, hits)
			fmt.Printf("partitioner %.3fs, inspector %.3fs, executor %.3fs (virtual)\n", pt, ins, ex)
		}
	}
	if err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), env); e != nil {
			panic(e)
		}
	}); err != nil {
		log.Fatal(err)
	}
	_ = sum
}
