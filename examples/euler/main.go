// Euler example: the unstructured-mesh edge sweep of the paper's
// Section 6 under four data decompositions — naive BLOCK, recursive
// coordinate bisection (RCB), recursive spectral bisection (RSB), and
// the multilevel partitioner (MULTILEVEL) — showing the executor-time
// ranking the paper reports: the irregular decompositions cut executor
// time by 2-3x over BLOCK, RSB buys a slightly better executor than
// RCB at much higher partitioning cost, and MULTILEVEL buys the
// spectral-quality executor with the partitioning cost collapsed.
//
// Run: go run ./examples/euler [-n nodes] [-p procs] [-iters n]
package main

import (
	"flag"
	"fmt"
	"log"

	"chaos/chaos"
	"chaos/internal/mesh"
)

func main() {
	var (
		n     = flag.Int("n", 10000, "mesh nodes")
		procs = flag.Int("p", 16, "simulated processors")
		iters = flag.Int("iters", 100, "executor iterations")
	)
	flag.Parse()

	m := mesh.Generate(*n, 1993)
	fmt.Printf("Euler sweep: %d nodes, %d edges, %d simulated processors, %d iterations\n",
		m.NNode, m.NEdge(), *procs, *iters)
	fmt.Printf("%-10s  %10s  %10s  %10s  %10s\n", "partition", "partition", "remap", "executor", "total")

	for _, spec := range []chaos.PartitionSpec{
		{Method: chaos.MethodBlock},
		{Method: chaos.MethodRCB},
		{Method: chaos.MethodRSB},
		{Method: chaos.MethodMultilevel},
	} {
		runOne(m, spec, *procs, *iters)
	}
}

func runOne(m *mesh.Mesh, spec chaos.PartitionSpec, procs, iters int) {
	err := chaos.Run(chaos.IPSC860(procs), func(s *chaos.Session) {
		x := s.NewArray("x", m.NNode)
		y := s.NewArray("y", m.NNode)
		x.FillByGlobal(m.InitialState)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", m.NEdge())
		e2 := s.NewIntArray("end_pt2", m.NEdge())
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })

		var in chaos.GeoColInput
		switch spec.Method {
		case chaos.MethodRCB:
			xc := s.NewArray("xc", m.NNode)
			yc := s.NewArray("yc", m.NNode)
			zc := s.NewArray("zc", m.NNode)
			xc.FillByGlobal(func(g int) float64 { return m.X[g] })
			yc.FillByGlobal(func(g int) float64 { return m.Y[g] })
			zc.FillByGlobal(func(g int) float64 { return m.Z[g] })
			in = chaos.GeoColInput{Geometry: []*chaos.Array{xc, yc, zc}}
		case chaos.MethodRSB, chaos.MethodMultilevel:
			in = chaos.GeoColInput{Link1: e1, Link2: e2}
		}
		g := s.Construct(m.NNode, in)
		dist, err := s.SetPartitioning(g, spec, procs)
		if err != nil {
			panic(err)
		}
		s.Redistribute(dist, []*chaos.Array{x, y}, nil)

		loop := s.NewLoop("edge-sweep", m.NEdge(),
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			mesh.EulerFlops, mesh.EulerFlux)
		loop.PartitionIterations(chaos.AlmostOwnerComputes)
		for it := 0; it < iters; it++ {
			loop.Execute()
		}

		pt := s.TimerMax(chaos.TimerGraphGen) + s.TimerMax(chaos.TimerPartition)
		rm := s.TimerMax(chaos.TimerRemap)
		ins := s.TimerMax(chaos.TimerInspector)
		ex := s.TimerMax(chaos.TimerExecutor)
		if s.C.Rank() == 0 {
			fmt.Printf("%-10s  %10.3f  %10.3f  %10.3f  %10.3f\n",
				spec, pt, rm, ex, pt+rm+ins+ex)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
