// MD example: the 648-atom water electrostatic force calculation of
// the paper's Section 6 (CHARMM template). The nonbonded pair list is
// an irregular edge list over atom sites; the force loop is the paper's
// loop L2 with REDUCE(ADD, ...) on both endpoints. Demonstrates
// communication-schedule reuse across force sweeps and a geometry-based
// (RCB) atom decomposition.
//
// Run: go run ./examples/md [-mol 216] [-p procs] [-sweeps n]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"chaos/chaos"
	"chaos/internal/md"
)

func main() {
	var (
		mol    = flag.Int("mol", 216, "water molecules (216 = 648 atoms)")
		procs  = flag.Int("p", 8, "simulated processors")
		sweeps = flag.Int("sweeps", 100, "force sweeps")
	)
	flag.Parse()

	sys := md.Water(*mol, 4.5, 1993)
	fmt.Printf("water box: %d atoms, %d nonbonded pairs, %d simulated processors\n",
		sys.NAtom, sys.NPair(), *procs)

	err := chaos.Run(chaos.IPSC860(*procs), func(s *chaos.Session) {
		q := s.NewArray("q", sys.NAtom)
		f := s.NewArray("f", sys.NAtom)
		q.FillByGlobal(func(g int) float64 { return sys.Q[g] })
		f.FillByGlobal(func(int) float64 { return 0 })
		p1 := s.NewIntArray("p1", sys.NPair())
		p2 := s.NewIntArray("p2", sys.NPair())
		p1.FillByGlobal(func(g int) int { return sys.P1[g] })
		p2.FillByGlobal(func(g int) int { return sys.P2[g] })

		// Decompose atoms by spatial position (RCB on coordinates).
		xc := s.NewArray("xc", sys.NAtom)
		yc := s.NewArray("yc", sys.NAtom)
		zc := s.NewArray("zc", sys.NAtom)
		xc.FillByGlobal(func(g int) float64 { return sys.X[g] })
		yc.FillByGlobal(func(g int) float64 { return sys.Y[g] })
		zc.FillByGlobal(func(g int) float64 { return sys.Z[g] })
		g := s.Construct(sys.NAtom, chaos.GeoColInput{Geometry: []*chaos.Array{xc, yc, zc}})
		dist, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRCB}, *procs)
		if err != nil {
			panic(err)
		}
		s.Redistribute(dist, []*chaos.Array{q, f}, nil)

		loop := s.NewLoop("electrostatics", sys.NPair(),
			[]chaos.Read{{Arr: q, Ind: p1}, {Arr: q, Ind: p2}},
			[]chaos.Write{{Arr: f, Ind: p1, Op: chaos.Add}, {Arr: f, Ind: p2, Op: chaos.Add}},
			md.ForceFlops, sys.ForceKernel())
		loop.PartitionIterations(chaos.AlmostOwnerComputes)

		for sweep := 0; sweep < *sweeps; sweep++ {
			loop.Execute()
		}

		// Global force sum must vanish (Newton's third law).
		local := 0.0
		for _, v := range f.Data {
			local += v
		}
		total := s.C.SumFloat(local)
		hits, misses := s.Reg.Stats()
		ex := s.TimerMax(chaos.TimerExecutor)
		ins := s.TimerMax(chaos.TimerInspector)
		if s.C.Rank() == 0 {
			fmt.Printf("force closure |sum f| = %.2e (should be ~0)\n", math.Abs(total))
			fmt.Printf("inspector runs: %d, schedule reuses: %d\n", misses, hits)
			fmt.Printf("inspector %.4fs, executor %.4fs for %d sweeps (virtual)\n", ins, ex, *sweeps)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
