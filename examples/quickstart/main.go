// Quickstart: the five phases of the paper's Figure 2 on a small
// unstructured mesh, using the public chaos API.
//
//	Phase A: CONSTRUCT a GeoCoL graph and partition it
//	Phase B: partition loop iterations
//	Phase C: remap arrays and iterations
//	Phase D: inspector (communication schedules, cached)
//	Phase E: executor (gather - compute - scatter-add)
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chaos/chaos"
	"chaos/internal/mesh"
)

func main() {
	const procs = 8
	m := mesh.Generate(2000, 42)
	fmt.Printf("mesh: %d nodes, %d edges (randomly renumbered)\n", m.NNode, m.NEdge())

	err := chaos.Run(chaos.IPSC860(procs), func(s *chaos.Session) {
		// Declarations: REAL*8 x(n), y(n) and the edge arrays,
		// everything BLOCK-distributed initially.
		x := s.NewArray("x", m.NNode)
		y := s.NewArray("y", m.NNode)
		x.FillByGlobal(m.InitialState)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", m.NEdge())
		e2 := s.NewIntArray("end_pt2", m.NEdge())
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })

		// Phase A: C$ CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
		//          C$ SET distfmt BY PARTITIONING G USING RSB
		g := s.Construct(m.NNode, chaos.GeoColInput{Link1: e1, Link2: e2})
		dist, err := s.SetPartitioning(g, chaos.PartitionSpec{Method: chaos.MethodRSB}, procs)
		if err != nil {
			log.Fatal(err)
		}

		// Phase C (arrays): C$ REDISTRIBUTE reg(distfmt)
		s.Redistribute(dist, []*chaos.Array{x, y}, nil)

		// The edge sweep (paper loop L2).
		loop := s.NewLoop("edge-sweep", m.NEdge(),
			[]chaos.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]chaos.Write{{Arr: y, Ind: e1, Op: chaos.Add}, {Arr: y, Ind: e2, Op: chaos.Add}},
			mesh.EulerFlops, mesh.EulerFlux)

		// Phases B+C (iterations): almost-owner-computes placement.
		loop.PartitionIterations(chaos.AlmostOwnerComputes)

		// Phases D+E, 50 times; the inspector runs once.
		for iter := 0; iter < 50; iter++ {
			loop.Execute()
		}

		if s.C.Rank() == 0 {
			hits, misses := s.Reg.Stats()
			fmt.Printf("inspector runs: %d, schedule reuses: %d\n", misses, hits)
		}
		for _, name := range []string{
			chaos.TimerGraphGen, chaos.TimerPartition, chaos.TimerRemap,
			chaos.TimerInspector, chaos.TimerExecutor,
		} {
			v := s.TimerMax(name)
			if s.C.Rank() == 0 {
				fmt.Printf("  %-10s %9.4f virtual seconds\n", name, v)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
