module chaos

go 1.24
