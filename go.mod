module chaos

go 1.23
