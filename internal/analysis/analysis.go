// Package analysis is the chaosvet static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// analyzer shape on top of go/ast and go/types, driven by a package
// loader built on `go list -export` (load.go). It exists because the
// repository's SPMD runtime has hard invariants `go vet` cannot see —
// every rank must reach every collective, hot paths must not allocate,
// the deprecated string-spec surface must not grow new callers, and
// exchange results must not be dropped — and prose in docs/ does not
// fail CI. Each invariant is one Analyzer in this package; cmd/chaosvet
// runs them all and `make analyze` gates tier-1 on the result.
//
// A diagnostic can be suppressed at a call site that is a reviewed
// false positive with a directive comment on the flagged line or the
// line directly above it:
//
//	//chaosvet:ignore <analyzer> <reason>
//
// The reason is mandatory: an unexplained suppression is itself
// reported. See docs/ANALYZERS.md for the catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked source package under analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's per-expression results.
	Info *types.Info
}

// Analyzer is one named invariant check. Run receives every loaded
// package at once (not one package at a time) so checks can collect
// cross-package facts — the "Collective." doc markers and "Deprecated:"
// tags live in one package while the call sites live in another.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-analyzer view of one load: the packages plus the
// reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All is the chaosvet analyzer suite, in reporting order.
var All = []*Analyzer{
	SPMDCollective,
	HotAlloc,
	DeprecatedSpec,
	ExchangeErr,
}

// ByName returns the analyzers selected by the comma-separated list
// (the -run flag of cmd/chaosvet); an empty list selects All.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All, nil
	}
	var sel []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				sel = append(sel, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames())
		}
	}
	return sel, nil
}

func analyzerNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// ignoreDirective is one parsed //chaosvet:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
}

const directivePrefix = "//chaosvet:ignore"

// parseDirectives extracts every suppression directive from the loaded
// files, keyed by file name and line. Malformed directives — a missing
// analyzer name, an unknown analyzer name, or an empty reason — are
// reported as diagnostics themselves so suppressions cannot silently
// rot.
func parseDirectives(fset *token.FileSet, pkgs []*Package, report func(Diagnostic)) map[string]map[int][]ignoreDirective {
	dirs := make(map[string]map[int][]ignoreDirective)
	bad := func(pos token.Position, format string, args ...any) {
		report(Diagnostic{Analyzer: "chaosvet", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad(pos, "malformed %s: missing analyzer name (want %q)", directivePrefix, directivePrefix+" <analyzer> <reason>")
						continue
					}
					name := fields[0]
					known := false
					for _, a := range All {
						if a.Name == name {
							known = true
							break
						}
					}
					if !known {
						bad(pos, "%s names unknown analyzer %q (have %s)", directivePrefix, name, analyzerNames())
						continue
					}
					if len(fields) < 2 {
						bad(pos, "%s %s: a reason is required, an unexplained suppression is not reviewable", directivePrefix, name)
						continue
					}
					if dirs[pos.Filename] == nil {
						dirs[pos.Filename] = make(map[int][]ignoreDirective)
					}
					d := ignoreDirective{pos: pos, analyzer: name, reason: strings.Join(fields[1:], " ")}
					dirs[pos.Filename][pos.Line] = append(dirs[pos.Filename][pos.Line], d)
				}
			}
		}
	}
	return dirs
}

// suppressed reports whether d is covered by an ignore directive on its
// own line or the line directly above.
func suppressed(d Diagnostic, dirs map[string]map[int][]ignoreDirective) bool {
	lines := dirs[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics sorted by position. Suppression directives are
// applied here, after every analyzer has reported, so an ignore comment
// behaves identically no matter which analyzer subset runs.
func Run(analyzers []*Analyzer, fset *token.FileSet, pkgs []*Package) []Diagnostic {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }
	dirs := parseDirectives(fset, pkgs, collect)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Packages: pkgs, report: collect}
		a.Run(pass)
	}
	var out []Diagnostic
	for _, d := range raw {
		if d.Analyzer != "chaosvet" && suppressed(d, dirs) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// --- shared helpers used by the individual analyzers ---

// funcKey names a function or method uniquely across packages:
// "pkgpath.Name" for functions, "pkgpath.Recv.Name" for methods (the
// receiver's named type, pointers stripped).
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if f.Pkg() == nil {
			return f.Name() // builtins such as error.Error
		}
		return f.Pkg().Path() + "." + f.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
}

// declKey is funcKey computed from a source declaration.
func declKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic receiver type parameters, not used in this module.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return pkgPath + "." + d.Name.Name
	}
	return pkgPath + "." + id.Name + "." + d.Name.Name
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if f, ok := info.Uses[id].(*types.Func); ok {
		return f
	}
	return nil
}

// docMatches reports whether the declaration's doc comment matches re.
func docMatches(doc *ast.CommentGroup, re *regexp.Regexp) bool {
	return doc != nil && re.MatchString(doc.Text())
}

// docDirective reports whether the doc comment group contains the exact
// directive line (directives such as //chaos:hotpath are excluded from
// CommentGroup.Text, so the raw list is scanned).
func docDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// firstDocLine returns the first sentence line of a doc comment after
// the given marker, for quoting in diagnostics.
func firstDocLine(doc *ast.CommentGroup, marker string) string {
	if doc == nil {
		return ""
	}
	text := doc.Text()
	i := strings.Index(text, marker)
	if i < 0 {
		return ""
	}
	line := text[i+len(marker):]
	if j := strings.IndexByte(line, '\n'); j >= 0 {
		line = line[:j]
	}
	return strings.TrimSpace(line)
}
