package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// DeprecatedSpec makes in-repo deprecation one-way. The typed
// partition.Spec API replaced the Fortran-D string surface
// (SetByPartitioning, string ParseSpec) in PR 5 and the shims carry
// standard "Deprecated:" doc tags — but a doc tag alone only warns in
// editors, and five PRs of migration discipline erode the first time a
// new call site slips through review. This analyzer reports every use
// of an in-module object whose doc comment carries a "Deprecated:"
// paragraph, except:
//
//   - uses inside functions that are themselves deprecated (the shims
//     are implemented in terms of each other), and
//   - test files, which are not loaded at all (the string/typed
//     equivalence tests legitimately exercise the shims).
//
// External consumers keep working — the shims stay exported and
// bit-identical — but the repository itself cannot grow new callers
// without an explicit //chaosvet:ignore and a written reason.
var DeprecatedSpec = &Analyzer{
	Name: "deprecatedspec",
	Doc:  "report in-repo uses of deprecated API outside the deprecated shims",
	Run:  runDeprecatedSpec,
}

var deprecatedRe = regexp.MustCompile(`(?m)^\s*Deprecated:`)

func runDeprecatedSpec(pass *Pass) {
	// Collect the deprecated set from source docs across the whole
	// load: funcKey -> first line of the deprecation notice.
	deprecated := make(map[string]string)
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !docMatches(fn.Doc, deprecatedRe) {
					continue
				}
				deprecated[declKey(pkg.Path, fn)] = firstDocLine(fn.Doc, "Deprecated:")
			}
		}
	}
	if len(deprecated) == 0 {
		return
	}
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if _, isShim := deprecated[declKey(pkg.Path, fn)]; isShim {
					continue // shims may call shims
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					f, ok := pkg.Info.Uses[id].(*types.Func)
					if !ok {
						return true
					}
					if note, dep := deprecated[funcKey(f)]; dep {
						msg := "use of deprecated " + f.Name()
						if note != "" {
							msg += " (Deprecated: " + note + ")"
						}
						pass.Reportf(id.Pos(), "%s", msg)
					}
					return true
				})
			}
		}
	}
}
