package analysis

import (
	"go/ast"
)

// ExchangeErr reports discarded results of the runtime's communication
// surface. Two families are covered:
//
// Error results: the machine entry points (Run, RunReal, RunStats,
// MaxClock, Elapsed) and chaos.Run/chaos.RunReal return the first rank
// panic as an error; dropping it (an expression statement, a blank
// assignment, or a blank in the error position) silently turns a
// deadlocked or crashed simulated machine into a green test.
//
// Exchanged payloads: the ghost-exchange handshake and the mailbox
// receive methods consume messages their peers paid to send. A
// discarded PushInts result or a bare c.Recv(...) statement means data
// crossed the wire — and advanced every participant's virtual clock —
// only to be dropped, which is either dead communication (delete the
// call) or a protocol bug (the value was needed). For AllReduce-family
// calls used purely as a synchronization point, Barrier is the
// intention-revealing replacement.
var ExchangeErr = &Analyzer{
	Name: "exchangeerr",
	Doc:  "report discarded exchange results and unchecked machine errors",
	Run:  runExchangeErr,
}

const geocolPath = "chaos/internal/geocol"

// errResultFuncs return an error that must be checked; the value is the
// error's index in the result tuple.
var errResultFuncs = map[string]int{
	machinePath + ".Run":      0,
	machinePath + ".RunReal":  0,
	machinePath + ".RunStats": 1,
	machinePath + ".MaxClock": 1,
	machinePath + ".Elapsed":  1,
	"chaos/chaos.Run":         0,
	"chaos/chaos.RunReal":     1,
}

// valueResultFuncs return exchanged data that must be used.
var valueResultFuncs = map[string]bool{
	geocolPath + ".GhostExchange.PushInts":              true,
	geocolPath + ".GhostExchange.PushIntsInto":          true,
	geocolPath + ".GhostExchange.PushFloats":            true,
	geocolPath + ".GhostExchange.PushFloatsInto":        true,
	geocolPath + ".GhostExchange.UpdateIntsTouched":     true,
	geocolPath + ".GhostExchange.UpdateIntsTouchedInto": true,
	machinePath + ".Ctx.Recv":                           true,
	machinePath + ".Ctx.RecvInts":                       true,
	machinePath + ".Ctx.RecvFloats":                     true,
	machinePath + ".Ctx.AlltoAllInts":                   true,
	machinePath + ".Ctx.AlltoAllFloats":                 true,
	machinePath + ".Ctx.AllGatherInt":                   true,
	machinePath + ".Ctx.AllGatherFloat":                 true,
	machinePath + ".Ctx.AllGatherInts":                  true,
	machinePath + ".Ctx.AllGatherFloats":                true,
	machinePath + ".Ctx.AllReduceInt":                   true,
	machinePath + ".Ctx.AllReduceFloat":                 true,
	machinePath + ".Ctx.SumInt":                         true,
	machinePath + ".Ctx.SumFloat":                       true,
	machinePath + ".Ctx.MaxInt":                         true,
	machinePath + ".Ctx.MaxFloat":                       true,
	machinePath + ".Ctx.MinFloat":                       true,
	machinePath + ".Ctx.BroadcastInts":                  true,
	machinePath + ".Ctx.BroadcastFloats":                true,
}

func runExchangeErr(pass *Pass) {
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					checkDiscardedCall(pass, pkg, n.X, "discarded")
				case *ast.GoStmt:
					checkDiscardedCall(pass, pkg, n.Call, "discarded by go statement")
				case *ast.DeferStmt:
					checkDiscardedCall(pass, pkg, n.Call, "discarded by defer")
				case *ast.AssignStmt:
					checkBlankError(pass, pkg, n)
				}
				return true
			})
		}
	}
}

// checkDiscardedCall flags statement-position calls whose results carry
// an error or exchanged data.
func checkDiscardedCall(pass *Pass, pkg *Package, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := calleeFunc(pkg.Info, call)
	if callee == nil {
		return
	}
	key := funcKey(callee)
	if _, ok := errResultFuncs[key]; ok {
		pass.Reportf(call.Pos(), "error result of %s %s: a rank panic would vanish silently", callee.Name(), how)
		return
	}
	if valueResultFuncs[key] {
		pass.Reportf(call.Pos(), "exchanged result of %s %s: peers paid to send data that is dropped (dead communication or missing consumer; Barrier synchronizes without payload)", callee.Name(), how)
	}
}

// checkBlankError flags assignments that discard the error position of
// an error-returning machine entry point: _ = machine.Run(...) and
// t, _ := machine.MaxClock(...).
func checkBlankError(pass *Pass, pkg *Package, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := calleeFunc(pkg.Info, call)
	if callee == nil {
		return
	}
	key := funcKey(callee)
	errIdx, isErr := errResultFuncs[key]
	if isErr {
		if errIdx < len(assign.Lhs) && isBlank(assign.Lhs[errIdx]) {
			pass.Reportf(assign.Pos(), "error result of %s assigned to _: a rank panic would vanish silently", callee.Name())
		}
		return
	}
	if valueResultFuncs[key] && len(assign.Lhs) == 1 && isBlank(assign.Lhs[0]) {
		pass.Reportf(assign.Pos(), "exchanged result of %s assigned to _: peers paid to send data that is dropped", callee.Name())
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
