package analysis

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-file tests load one fixture package per analyzer from
// testdata/src (skipped by ./... wildcards, so `make analyze` never
// sees the planted violations) and compare the diagnostics against
// "want" comments: every `// want "regex"` must be matched by exactly
// one diagnostic on its line, and no diagnostic may lack a want.

func loadTestdata(t *testing.T, name string) (*token.FileSet, []*Package) {
	t.Helper()
	fset, pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(pkgs))
	}
	return fset, pkgs
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(t *testing.T, fset *token.FileSet, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "// want ")
					if i < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(c.Text[i:], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}
	return wants
}

func checkGolden(t *testing.T, analyzer, fixture string) {
	t.Helper()
	fset, pkgs := loadTestdata(t, fixture)
	wants := parseWants(t, fset, pkgs)
	sel, err := ByName(analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(sel, fset, pkgs) {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestSPMDCollectiveGolden(t *testing.T) { checkGolden(t, "spmdcollective", "spmdtest") }
func TestHotAllocGolden(t *testing.T)       { checkGolden(t, "hotalloc", "hottest") }
func TestDeprecatedSpecGolden(t *testing.T) { checkGolden(t, "deprecatedspec", "deptest") }
func TestExchangeErrGolden(t *testing.T)    { checkGolden(t, "exchangeerr", "exchtest") }

// TestSuppression pins the //chaosvet:ignore contract on the suptest
// fixture: two reviewed suppressions silence their diagnostics, and the
// two malformed directives are each reported while suppressing nothing.
func TestSuppression(t *testing.T) {
	fset, pkgs := loadTestdata(t, "suptest")
	sel, err := ByName("spmdcollective")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(sel, fset, pkgs)

	var chaosvet, spmd []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "chaosvet":
			chaosvet = append(chaosvet, d)
		case "spmdcollective":
			spmd = append(spmd, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}

	if len(chaosvet) != 2 {
		t.Fatalf("got %d chaosvet directive diagnostics, want 2: %v", len(chaosvet), chaosvet)
	}
	if !strings.Contains(chaosvet[0].Message, "unknown analyzer") {
		t.Errorf("first directive diagnostic should report the unknown analyzer: %s", chaosvet[0])
	}
	if !strings.Contains(chaosvet[1].Message, "reason is required") {
		t.Errorf("second directive diagnostic should require a reason: %s", chaosvet[1])
	}

	// The barriers under the two malformed directives must still be
	// flagged; the two reviewed suppressions must not.
	if len(spmd) != 2 {
		t.Fatalf("got %d spmdcollective diagnostics, want 2 (malformed directives must not suppress): %v", len(spmd), spmd)
	}
	for _, d := range spmd {
		if d.Pos.Line < chaosvet[0].Pos.Line {
			t.Errorf("diagnostic above the malformed directives can only be an unsuppressed reviewed site: %s", d)
		}
	}
}

// TestDiagnosticString pins the file:line: message [analyzer] shape the
// cmd/chaosvet driver prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "hotalloc",
		Pos:      token.Position{Filename: "kl.go", Line: 69, Column: 13},
		Message:  "make allocates per loop iteration",
	}
	want := "kl.go:69:13: make allocates per loop iteration [hotalloc]"
	if got := d.String(); got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
}

// TestByName pins the -run selection surface of cmd/chaosvet.
func TestByName(t *testing.T) {
	all, err := ByName(" ")
	if err != nil || len(all) != len(All) {
		t.Fatalf("blank list: got %d analyzers, err %v; want all %d", len(all), err, len(All))
	}
	sel, err := ByName("hotalloc, exchangeerr")
	if err != nil || len(sel) != 2 || sel[0].Name != "hotalloc" || sel[1].Name != "exchangeerr" {
		t.Fatalf("subset selection failed: %v %v", sel, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must error")
	}
}
