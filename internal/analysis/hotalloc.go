package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc reports allocating constructs inside the loops of functions
// annotated //chaos:hotpath. The annotation is the mechanical form of
// the ROADMAP's "allocation-free hot paths" direction: the bench CI job
// records allocs/op trajectories, and this analyzer keeps the annotated
// inner loops — gain buckets, climb loops, match routing, ghost
// exchanges — from regrowing per-iteration allocations between bench
// runs.
//
// Inside a hot-path function the analyzer flags, per loop iteration:
// make calls, map/slice composite literals, closures (a func literal
// born inside a loop escapes to the heap on every pass), and interface
// boxing at call sites (a concrete value passed to an interface
// parameter). It flags any fmt call anywhere in the function — one
// Sprintf in a refinement sweep dwarfs everything else the annotation
// protects. And it flags `x = append(x, ...)` inside a loop when x is
// declared in the function with no capacity evidence: no make with an
// explicit length or capacity, and no x = x[:0]-style reslice reset
// anywhere in the function (the repository's amortized-reuse idiom,
// which reaches steady-state capacity and stops allocating).
//
// Setup allocations before the loops are deliberately NOT flagged —
// hot-path functions may prepare scratch buffers; what they must not do
// is allocate per iteration.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "report per-iteration allocations in //chaos:hotpath functions",
	Run:  runHotAlloc,
}

// hotPathDirective is the annotation contract: a directive line in the
// function's doc comment.
const hotPathDirective = "//chaos:hotpath"

func runHotAlloc(pass *Pass) {
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !docDirective(fn.Doc, hotPathDirective) {
					continue
				}
				checkHotFunc(pass, pkg, fn)
			}
		}
	}
}

func checkHotFunc(pass *Pass, pkg *Package, fn *ast.FuncDecl) {
	hinted := capacityHinted(pkg, fn.Body)

	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walk(n.Init, inLoop)
			walkExpr(pass, pkg, fn, n.Cond, inLoop, hinted, walk)
			walk(n.Body, true)
			walk(n.Post, true)
			return
		case *ast.RangeStmt:
			walkExpr(pass, pkg, fn, n.X, inLoop, hinted, walk)
			walk(n.Body, true)
			return
		case *ast.AssignStmt:
			checkAppendGrowth(pass, pkg, fn, n, inLoop, hinted)
			for _, e := range n.Rhs {
				walkExpr(pass, pkg, fn, e, inLoop, hinted, walk)
			}
			for _, e := range n.Lhs {
				walkExpr(pass, pkg, fn, e, inLoop, hinted, walk)
			}
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				walk(s, inLoop)
			}
			return
		case *ast.IfStmt:
			walk(n.Init, inLoop)
			walkExpr(pass, pkg, fn, n.Cond, inLoop, hinted, walk)
			walk(n.Body, inLoop)
			walk(n.Else, inLoop)
			return
		case *ast.SwitchStmt:
			walk(n.Init, inLoop)
			walkExpr(pass, pkg, fn, n.Tag, inLoop, hinted, walk)
			walk(n.Body, inLoop)
			return
		case *ast.TypeSwitchStmt:
			walk(n.Init, inLoop)
			walk(n.Body, inLoop)
			return
		case *ast.CaseClause:
			for _, e := range n.List {
				walkExpr(pass, pkg, fn, e, inLoop, hinted, walk)
			}
			for _, s := range n.Body {
				walk(s, inLoop)
			}
			return
		case *ast.ExprStmt:
			walkExpr(pass, pkg, fn, n.X, inLoop, hinted, walk)
			return
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				walkExpr(pass, pkg, fn, e, inLoop, hinted, walk)
			}
			return
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							walkExpr(pass, pkg, fn, v, inLoop, hinted, walk)
						}
					}
				}
			}
			return
		case *ast.LabeledStmt:
			walk(n.Stmt, inLoop)
			return
		case *ast.GoStmt:
			walkExpr(pass, pkg, fn, n.Call, inLoop, hinted, walk)
			return
		case *ast.DeferStmt:
			walkExpr(pass, pkg, fn, n.Call, inLoop, hinted, walk)
			return
		case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
			return
		case *ast.SendStmt:
			walkExpr(pass, pkg, fn, n.Chan, inLoop, hinted, walk)
			walkExpr(pass, pkg, fn, n.Value, inLoop, hinted, walk)
			return
		case *ast.SelectStmt:
			walk(n.Body, inLoop)
			return
		case *ast.CommClause:
			for _, s := range n.Body {
				walk(s, inLoop)
			}
			return
		}
	}
	walk(fn.Body, false)
}

// walkExpr scans one expression in statement context: allocation checks
// apply at the current loop depth, and nested statements (function
// literal bodies) continue the walk — a closure's body runs at least as
// hot as the point where the closure is used.
func walkExpr(pass *Pass, pkg *Package, fn *ast.FuncDecl, e ast.Expr, inLoop bool, hinted map[types.Object]bool, walk func(ast.Node, bool)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if inLoop {
				pass.Reportf(n.Pos(), "hot path %s: closure allocated per loop iteration (hoist the func literal out of the loop)", fn.Name.Name)
			}
			walk(n.Body, inLoop)
			return false
		case *ast.CallExpr:
			checkHotCall(pass, pkg, fn, n, inLoop)
		case *ast.CompositeLit:
			if inLoop {
				switch pkg.Info.TypeOf(n).Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path %s: slice literal allocates per loop iteration", fn.Name.Name)
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path %s: map literal allocates per loop iteration", fn.Name.Name)
				}
			}
		}
		return true
	})
}

// checkHotCall flags allocating calls: make in loops, fmt anywhere, and
// interface boxing of concrete arguments in loops.
func checkHotCall(pass *Pass, pkg *Package, fn *ast.FuncDecl, call *ast.CallExpr, inLoop bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			if obj.Name() == "make" && inLoop {
				pass.Reportf(call.Pos(), "hot path %s: make allocates per loop iteration (hoist and reuse the buffer)", fn.Name.Name)
			}
			return
		}
	}
	callee := calleeFunc(pkg.Info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s: fmt.%s allocates and boxes its operands (format outside the hot path)", fn.Name.Name, callee.Name())
		return
	}
	if !inLoop {
		return
	}
	// Interface boxing: concrete argument, interface parameter.
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path %s: argument boxes a concrete %s into interface %s per loop iteration", fn.Name.Name, at, param)
	}
}

// checkAppendGrowth flags x = append(x, ...) in a loop when x has no
// capacity evidence in this function.
func checkAppendGrowth(pass *Pass, pkg *Package, fn *ast.FuncDecl, assign *ast.AssignStmt, inLoop bool, hinted map[types.Object]bool) {
	if !inLoop || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return
	}
	obj := pkg.Info.Uses[lhs]
	if obj == nil {
		obj = pkg.Info.Defs[lhs]
	}
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only locals of this function: appends to fields or package vars
	// amortize across calls and stay out of scope here.
	if fnObj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
		if obj.Parent() == nil || !scopeWithin(obj.Parent(), fnObj.Scope()) {
			return
		}
	}
	if hinted[obj] {
		return
	}
	pass.Reportf(assign.Pos(), "hot path %s: append grows %s without a capacity hint (preallocate with make(..., 0, cap) or reuse via %s = %s[:0])", fn.Name.Name, lhs.Name, lhs.Name, lhs.Name)
}

func scopeWithin(s, outer *types.Scope) bool {
	for ; s != nil; s = s.Parent() {
		if s == outer {
			return true
		}
	}
	return false
}

// capacityHinted collects local slice variables with capacity evidence
// anywhere in the function body: assigned a make with an explicit
// length or capacity, assigned from a slice expression (the x = x[:0]
// reuse idiom and friends), or assigned the result of a call (the
// callee sized it).
func capacityHinted(pkg *Package, body ast.Node) map[types.Object]bool {
	hinted := make(map[types.Object]bool)
	mark := func(lhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			hinted[obj] = true
		}
	}
	consider := func(lhs, rhs ast.Expr) {
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.SliceExpr:
			mark(lhs)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						// make([]T, n) or make([]T, n, c) with a non-zero
						// size expresses intent; make([]T, 0) does not.
						if len(rhs.Args) >= 3 {
							mark(lhs)
						} else if len(rhs.Args) == 2 && !isZeroLit(rhs.Args[1]) {
							mark(lhs)
						}
					case "append":
						return // growth, not evidence
					}
					return
				}
			}
			mark(lhs) // sized by the callee
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					consider(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					consider(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return hinted
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}
