package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns `go list` package patterns into type-checked
// *Packages without depending on golang.org/x/tools. The trick that
// keeps it small and fast is `go list -export -deps -json`: the go
// command compiles (or serves from the build cache) export data for
// every dependency and prints the file path, and go/importer's gc mode
// accepts a lookup function that reads exactly those files. Only the
// requested packages themselves are parsed and type-checked from
// source — dependencies, including in-module ones, are imported from
// export data — so a whole-module load is one cached `go list`
// invocation plus one type-check per analyzed package.

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	Name       string
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// Load lists patterns in the module rooted at dir and returns the
// type-checked main-module packages the patterns name. Dependencies are
// imported from compiler export data; the named packages are parsed
// with comments (analyzers read doc markers and directives) and
// type-checked from source.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,Name,GoFiles,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil && p.Module.Main {
			cp := p
			roots = append(roots, &cp)
		}
	}
	if len(roots) == 0 {
		return nil, nil, fmt.Errorf("go list %s: no main-module packages matched", strings.Join(patterns, " "))
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, root := range roots {
		pkg, err := typeCheck(fset, imp, root)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// typeCheck parses and checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, errors.Join(typeErrs...))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Files: files, Types: tpkg, Info: info}, nil
}
