package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// SPMDCollective reports collective operations whose execution is
// control-dependent on a rank-valued expression. The machine simulator
// is goroutine-per-rank and every collective is a rendezvous of ALL
// ranks: a collective reached by some ranks but not others (the classic
// divergent-collective MPI deadlock) blocks the arrivers forever. The
// invariant is therefore purely about CONTROL, not data — collectives
// may freely exchange rank-dependent values, but the decision to call
// one must be identical on every rank.
//
// A "collective" is (a) a communication method of machine.Ctx that
// synchronizes all ranks, (b) any function whose doc comment carries
// the repository's "Collective." marker, or (c) transitively, any
// function or closure that calls one of those. A condition is
// "rank-valued" when it mentions machine.Ctx.Rank (or the rank field
// inside package machine) or a variable derived from it; derivation is
// tracked per function through assignments, including through calls
// such as g.LocalN(me), whose results genuinely differ across ranks.
//
// Two shapes are reported: a collective call lexically inside a
// rank-conditional branch or loop, and a collective call downstream of
// a rank-conditional return/break/continue (ranks that took the early
// exit never arrive).
var SPMDCollective = &Analyzer{
	Name: "spmdcollective",
	Doc:  "report collectives control-dependent on the SPMD rank",
	Run:  runSPMDCollective,
}

const machinePath = "chaos/internal/machine"

// ctxCollectives are the all-rank synchronizing methods of machine.Ctx
// (and the unexported rendezvous primitive they are built on).
// Point-to-point Send/Recv are deliberately absent: pairing those is a
// protocol property, not an all-ranks one.
var ctxCollectives = []string{
	"exchange",
	"Barrier",
	"AllReduceFloat", "AllReduceInt",
	"SumInt", "SumFloat", "MaxInt", "MaxFloat", "MinFloat",
	"AllGatherInt", "AllGatherFloat", "AllGatherInts", "AllGatherFloats",
	"BroadcastInts", "BroadcastFloats",
	"AlltoAllInts", "AlltoAllFloats",
}

var collectiveDocRe = regexp.MustCompile(`\bCollective\b`)

func runSPMDCollective(pass *Pass) {
	collective := collectCollectiveKeys(pass.Packages)
	for _, pkg := range pass.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkSPMDFunc(pass, pkg, fn, collective)
			}
		}
	}
}

// collectCollectiveKeys builds the set of collective funcKeys: the
// machine.Ctx seed, every doc-marked function in the loaded source, and
// the transitive closure over the loaded call graph.
func collectCollectiveKeys(pkgs []*Package) map[string]bool {
	collective := make(map[string]bool)
	for _, m := range ctxCollectives {
		collective[machinePath+".Ctx."+m] = true
	}
	// calls[f] lists the funcKeys f's body references.
	calls := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := declKey(pkg.Path, fn)
				if docMatches(fn.Doc, collectiveDocRe) {
					collective[key] = true
				}
				if fn.Body == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if callee := calleeFunc(pkg.Info, call); callee != nil {
							calls[key] = append(calls[key], funcKey(callee))
						}
					}
					return true
				})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for key, callees := range calls {
			if collective[key] {
				continue
			}
			for _, callee := range callees {
				if collective[callee] {
					collective[key] = true
					changed = true
					break
				}
			}
		}
	}
	return collective
}

// spmdChecker walks one function body with rank-taint and
// control-dependence state.
type spmdChecker struct {
	pass       *Pass
	pkg        *Package
	collective map[string]bool
	// tainted holds rank-derived objects of the enclosing function,
	// closures included (captures stay tainted inside literals).
	tainted map[types.Object]bool
	// closureCollective marks local variables bound to function
	// literals that (transitively) perform a collective.
	closureCollective map[types.Object]bool

	// cond is the innermost active rank-tainted condition, nil outside
	// rank-conditional regions.
	cond ast.Expr
	// loops is the stack of enclosing loop bodies (for break/continue
	// divergence scoping).
	loops []ast.Node
	// exits records rank-conditional early exits; collectives lexically
	// after an exit inside its scope are divergent.
	exits []spmdExit
	// fnBody is the body of the function or literal being walked; the
	// scope of a rank-conditional return.
	fnBody ast.Node

	// collectiveCalls records every collective call site with whether
	// it was already reported, for the exit post-pass.
	collectiveCalls []spmdCall
}

type spmdExit struct {
	pos   token.Pos
	scope ast.Node // enclosing loop body for break/continue, function body for return
	fn    ast.Node // the function or literal body the exit belongs to
	what  string
	cond  ast.Expr
}

type spmdCall struct {
	call     *ast.CallExpr
	name     string
	fn       ast.Node // the function or literal body the call belongs to
	reported bool
}

func checkSPMDFunc(pass *Pass, pkg *Package, fn *ast.FuncDecl, collective map[string]bool) {
	c := &spmdChecker{
		pass:              pass,
		pkg:               pkg,
		collective:        collective,
		tainted:           make(map[types.Object]bool),
		closureCollective: make(map[types.Object]bool),
		fnBody:            fn.Body,
	}
	c.computeTaint(fn.Body)
	c.computeClosures(fn.Body)
	c.walkStmt(fn.Body)
	// Exit post-pass: a collective after a rank-conditional early exit
	// inside the exit's scope is not reached by the ranks that left.
	for _, call := range c.collectiveCalls {
		if call.reported {
			continue
		}
		for _, exit := range c.exits {
			// An exit only diverts the collectives of its own function
			// context: an SPMD body literal runs on every rank no
			// matter what its host function returns around it.
			if call.fn != exit.fn {
				continue
			}
			if call.call.Pos() > exit.pos &&
				call.call.Pos() < exit.scope.End() && call.call.Pos() > exit.scope.Pos() {
				c.pass.Reportf(call.call.Pos(),
					"SPMD divergence: collective %s is skipped by ranks taking the rank-conditional %s at line %d (condition %s)",
					call.name, exit.what, c.pass.Fset.Position(exit.pos).Line, types.ExprString(exit.cond))
				break
			}
		}
	}
}

// computeTaint finds rank-derived objects by fixed point over the
// function's assignments (closures included: captured taint persists).
func (c *spmdChecker) computeTaint(body ast.Node) {
	for changed := true; changed; {
		changed = false
		mark := func(id *ast.Ident) {
			obj := c.pkg.Info.Defs[id]
			if obj == nil {
				obj = c.pkg.Info.Uses[id]
			}
			if obj != nil && !c.tainted[obj] {
				c.tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if c.exprTainted(rhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok {
								mark(id)
							}
						}
					}
				} else if len(n.Rhs) == 1 && c.exprTainted(n.Rhs[0]) {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							mark(id)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					switch {
					case len(n.Values) == len(n.Names):
						if c.exprTainted(n.Values[i]) {
							mark(name)
						}
					case len(n.Values) == 1:
						if c.exprTainted(n.Values[0]) {
							mark(name)
						}
					}
				}
			case *ast.RangeStmt:
				if c.exprTainted(n.X) {
					if id, ok := n.Key.(*ast.Ident); ok {
						mark(id)
					}
					if id, ok := n.Value.(*ast.Ident); ok {
						mark(id)
					}
				}
			}
			return true
		})
	}
}

// exprTainted reports whether the expression mentions the rank: a
// Rank() call, machine's own rank field, or a tainted variable.
// Function literals are opaque: a call taking an SPMD body that
// mentions the rank does not make the call's own result rank-valued.
func (c *spmdChecker) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := c.pkg.Info.Uses[n]; obj != nil && c.tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			if callee := calleeFunc(c.pkg.Info, n); callee != nil && funcKey(callee) == machinePath+".Ctx.Rank" {
				found = true
			}
		case *ast.SelectorExpr:
			// The rank field itself, visible inside package machine.
			if n.Sel.Name == "rank" && c.pkg.Path == machinePath {
				if sel, ok := c.pkg.Info.Selections[n]; ok && sel.Obj().Pkg() != nil && sel.Obj().Pkg().Path() == machinePath {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// computeClosures marks local variables bound to collective-performing
// function literals, iterating to cover closures that call closures.
func (c *spmdChecker) computeClosures(body ast.Node) {
	for pass := 0; pass < 4; pass++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				id, ok := assign.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pkg.Info.Defs[id]
				if obj == nil {
					obj = c.pkg.Info.Uses[id]
				}
				if obj == nil || c.closureCollective[obj] {
					continue
				}
				if c.litPerformsCollective(lit) {
					c.closureCollective[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

func (c *spmdChecker) litPerformsCollective(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := c.collectiveName(call); ok {
				_ = name
				found = true
			}
		}
		return !found
	})
	return found
}

// collectiveName resolves whether the call invokes a collective and
// returns a printable name for it.
func (c *spmdChecker) collectiveName(call *ast.CallExpr) (string, bool) {
	if callee := calleeFunc(c.pkg.Info, call); callee != nil {
		if key := funcKey(callee); c.collective[key] {
			return callee.Name(), true
		}
		return "", false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := c.pkg.Info.Uses[id]; obj != nil && c.closureCollective[obj] {
			return id.Name, true
		}
	}
	return "", false
}

// walkStmt traverses statements tracking the innermost rank-tainted
// condition and loop nesting.
func (c *spmdChecker) walkStmt(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.BlockStmt:
		for _, s := range n.List {
			c.walkStmt(s)
		}
	case *ast.IfStmt:
		c.walkStmt(n.Init)
		c.checkExpr(n.Cond)
		saved := c.cond
		if c.cond == nil && c.exprTainted(n.Cond) {
			c.cond = n.Cond
		}
		c.walkStmt(n.Body)
		c.walkStmt(n.Else)
		c.cond = saved
	case *ast.SwitchStmt:
		c.walkStmt(n.Init)
		c.checkExpr(n.Tag)
		tainted := n.Tag != nil && c.exprTainted(n.Tag)
		for _, clause := range n.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				c.checkExpr(e)
				if c.exprTainted(e) {
					tainted = true
				}
			}
		}
		saved := c.cond
		if c.cond == nil && tainted {
			if n.Tag != nil {
				c.cond = n.Tag
			} else {
				c.cond = &ast.Ident{Name: "switch", NamePos: n.Switch}
			}
			// Re-scan for the actual tainted case expression, more
			// useful in the message than the bare tag.
			for _, clause := range n.Body.List {
				for _, e := range clause.(*ast.CaseClause).List {
					if c.exprTainted(e) {
						c.cond = e
						break
					}
				}
			}
		}
		for _, clause := range n.Body.List {
			for _, s := range clause.(*ast.CaseClause).Body {
				c.walkStmt(s)
			}
		}
		c.cond = saved
	case *ast.TypeSwitchStmt:
		c.walkStmt(n.Init)
		c.walkStmt(n.Body)
	case *ast.ForStmt:
		c.walkStmt(n.Init)
		c.checkExpr(n.Cond)
		saved := c.cond
		if c.cond == nil && n.Cond != nil && c.exprTainted(n.Cond) {
			c.cond = n.Cond
		}
		c.loops = append(c.loops, n.Body)
		c.walkStmt(n.Body)
		c.walkStmt(n.Post)
		c.loops = c.loops[:len(c.loops)-1]
		c.cond = saved
	case *ast.RangeStmt:
		c.checkExpr(n.X)
		saved := c.cond
		if c.cond == nil && c.exprTainted(n.X) {
			c.cond = n.X
		}
		c.loops = append(c.loops, n.Body)
		c.walkStmt(n.Body)
		c.loops = c.loops[:len(c.loops)-1]
		c.cond = saved
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			c.checkExpr(e)
		}
		if c.cond != nil {
			c.exits = append(c.exits, spmdExit{pos: n.Pos(), scope: c.funcScope(), fn: c.fnBody, what: "return", cond: c.cond})
		}
	case *ast.BranchStmt:
		if c.cond != nil && (n.Tok == token.BREAK || n.Tok == token.CONTINUE || n.Tok == token.GOTO) {
			scope := c.funcScope()
			if len(c.loops) > 0 && n.Tok != token.GOTO {
				scope = c.loops[len(c.loops)-1]
			}
			c.exits = append(c.exits, spmdExit{pos: n.Pos(), scope: scope, fn: c.fnBody, what: n.Tok.String(), cond: c.cond})
		}
	case *ast.LabeledStmt:
		c.walkStmt(n.Stmt)
	case *ast.ExprStmt:
		c.checkExpr(n.X)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			c.checkExpr(e)
		}
		for _, e := range n.Lhs {
			c.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		c.checkExpr(n.Call)
	case *ast.DeferStmt:
		c.checkExpr(n.Call)
	case *ast.SendStmt:
		c.checkExpr(n.Chan)
		c.checkExpr(n.Value)
	case *ast.IncDecStmt:
		c.checkExpr(n.X)
	case *ast.SelectStmt:
		c.walkStmt(n.Body)
	case *ast.CommClause:
		for _, s := range n.Body {
			c.walkStmt(s)
		}
	}
}

// funcScope is the exit scope of a return: the body of the enclosing
// function or function literal.
func (c *spmdChecker) funcScope() ast.Node { return c.fnBody }

// checkExpr scans an expression for collective calls, reporting those
// under an active rank condition and recording all of them for the
// early-exit post-pass. Function literals get a fresh control context:
// their bodies run when invoked, not where they appear.
func (c *spmdChecker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			savedCond, savedLoops, savedBody := c.cond, c.loops, c.fnBody
			c.cond, c.loops, c.fnBody = nil, nil, n.Body
			c.walkStmt(n.Body)
			c.cond, c.loops, c.fnBody = savedCond, savedLoops, savedBody
			return false
		case *ast.CallExpr:
			if name, ok := c.collectiveName(n); ok {
				reported := false
				if c.cond != nil {
					c.pass.Reportf(n.Pos(),
						"SPMD divergence: collective %s is control-dependent on rank-valued condition %s; every rank must reach every collective",
						name, types.ExprString(c.cond))
					reported = true
				}
				c.collectiveCalls = append(c.collectiveCalls, spmdCall{call: n, name: name, fn: c.fnBody, reported: reported})
			}
		}
		return true
	})
}
