// Package deptest is golden-file input for the deprecatedspec
// analyzer: a Deprecated:-tagged function, a shim that may call it, and
// a caller that may not.
package deptest

// oldAPI is retained for external compatibility.
//
// Deprecated: use newAPI.
func oldAPI() int { return newAPI() }

func newAPI() int { return 1 }

// shim is itself deprecated, so calling oldAPI is allowed: shims are
// implemented in terms of each other.
//
// Deprecated: use newAPI.
func shim() int { return oldAPI() }

func freshCaller() int {
	return oldAPI() // want "use of deprecated oldAPI"
}

func cleanCaller() int {
	return newAPI()
}

type legacy struct{}

// Old is retained for compatibility.
//
// Deprecated: use New.
func (l *legacy) Old() int { return l.New() }

func (l *legacy) New() int { return 2 }

// Gone has a value receiver.
//
// Deprecated: gone.
func (legacy) Gone() {}

func methodCaller(l *legacy) int {
	legacy{}.Gone() // want "use of deprecated Gone"
	return l.Old()  // want "use of deprecated Old"
}
