// Package exchtest is golden-file input for the exchangeerr analyzer:
// discarded machine errors and dropped exchange payloads, plus the
// checked forms.
package exchtest

import (
	"context"

	"chaos/chaos"
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

func dropRunError(cfg machine.Config, body func(*machine.Ctx)) {
	machine.Run(cfg, body)     // want "error result of Run discarded"
	_ = machine.Run(cfg, body) // want "error result of Run assigned to _"
}

func dropMaxClock(cfg machine.Config, body func(*machine.Ctx)) float64 {
	t, _ := machine.MaxClock(cfg, body) // want "error result of MaxClock assigned to _"
	return t
}

func dropRealBackend(ctx context.Context, cfg machine.Config, body func(*machine.Ctx)) machine.Stats {
	machine.RunReal(ctx, cfg, body)           // want "error result of RunReal discarded"
	_, _ = machine.Elapsed(cfg, body)         // want "error result of Elapsed assigned to _"
	st, _ := machine.RunStats(ctx, cfg, body) // want "error result of RunStats assigned to _"
	return st
}

func dropPayload(c *machine.Ctx, ge *geocol.GhostExchange, vals []int) {
	ge.PushInts(c, vals) // want "exchanged result of PushInts discarded"
	c.SumInt(1)          // want "exchanged result of SumInt discarded"
}

func checkedRun(cfg machine.Config, body func(*machine.Ctx)) error {
	if err := machine.Run(cfg, body); err != nil {
		return err
	}
	return nil
}

func usedPayload(c *machine.Ctx, ge *geocol.GhostExchange, vals []int) []int {
	ghost := ge.PushInts(c, vals)
	return ghost
}

func dropPublicRun(ctx context.Context, cfg chaos.Config, body func(*chaos.Session)) {
	chaos.Run(cfg, body)                   // want "error result of Run discarded"
	_, _ = chaos.RunReal(ctx, cfg, body)   // want "error result of RunReal assigned to _"
	st, _ := chaos.RunReal(ctx, cfg, body) // want "error result of RunReal assigned to _"
	_ = st
}

func dropByGoAndDefer(cfg machine.Config, body func(*machine.Ctx)) {
	go machine.Run(cfg, body)    // want "error result of Run discarded by go statement"
	defer machine.Run(cfg, body) // want "error result of Run discarded by defer"
}

func blankPayload(c *machine.Ctx) {
	_ = c.SumInt(1) // want "exchanged result of SumInt assigned to _"
}
