// Package hottest is golden-file input for the hotalloc analyzer:
// //chaos:hotpath functions with per-iteration allocations, plus clean
// variants using the repository's preallocation and reuse idioms.
package hottest

import "fmt"

// hotMake allocates a fresh buffer every iteration.
//
//chaos:hotpath
func hotMake(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, n) // want "make allocates per loop iteration"
		total += len(buf)
	}
	fmt.Println(total) // want "allocates and boxes its operands"
	return total
}

// hotAppend grows a local with no capacity evidence.
//
//chaos:hotpath
func hotAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append grows out without a capacity hint"
	}
	return out
}

// hotClosure births a closure per iteration.
//
//chaos:hotpath
func hotClosure(xs []int) int {
	s := 0
	for _, x := range xs {
		f := func() int { return x } // want "closure allocated per loop iteration"
		s += f()
	}
	return s
}

// hotBox boxes a concrete int into an interface parameter per call.
//
//chaos:hotpath
func hotBox(xs []int) {
	for _, x := range xs {
		sink(x) // want "boxes a concrete int into interface"
	}
}

func sink(v interface{}) { _ = v }

// hinted preallocates and reuses; setup allocations before the loops
// are allowed. Clean.
//
//chaos:hotpath
func hinted(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	var scratch []int
	for i := 0; i < n; i++ {
		scratch = scratch[:0]
		scratch = append(scratch, i)
	}
	return append(out, scratch...)
}

// cold is not annotated: identical constructs are out of scope. Clean.
func cold(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, make([]int, n)...)
	}
	return out
}

// hotKitchen exercises the statement dispatch: literals inside switch
// arms are per-iteration allocations, conversions and slice forwarding
// are not.
//
//chaos:hotpath
func hotKitchen(n int, ch chan []int, vs []interface{}) int {
	total := 0
Loop:
	for i := 0; i < n; i++ {
		switch i % 2 {
		case 0:
			m := map[int]int{i: i} // want "map literal allocates per loop iteration"
			total += len(m)
		default:
			s := []int{i} // want "slice literal allocates per loop iteration"
			total += len(s)
		}
		switch v := vs[i%len(vs)].(type) {
		case int:
			total += v
		default:
		}
		select {
		case buf := <-ch:
			total += len(buf)
		default:
			break Loop
		}
		total += int(int64(i)) // conversion, not an allocating call
	}
	seed := make([]int, n) // setup allocation outside the loops: allowed
	for i := range seed {
		seed[i] = i
		sinkAll(vs...) // forwarding a slice: no boxing
	}
	for i := 0; i < n; i++ {
		ch <- seed // reusing the setup buffer: clean
		_ = i
	}
	go sinkAll()
	defer sinkAll()
	var local = make([]int, 0, n) // hinted DeclStmt
	for i := 0; i < n; i++ {
		local = append(local, i)
	}
	return total + len(local)
}

func sinkAll(vs ...interface{}) { _ = vs }

// hotDecl allocates through a var declaration inside the loop.
//
//chaos:hotpath
func hotDecl(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		var buf = make([]int, n) // want "make allocates per loop iteration"
		total += len(buf)
	}
	return total
}
