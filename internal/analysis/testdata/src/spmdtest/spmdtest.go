// Package spmdtest is golden-file input for the spmdcollective
// analyzer. It is skipped by ./... wildcards (testdata) and loaded
// explicitly by the analyzer tests; each "want" comment is an expected
// diagnostic on its line.
package spmdtest

import "chaos/internal/machine"

// rankConditional calls a collective under a rank-valued condition.
func rankConditional(c *machine.Ctx) {
	if c.Rank() == 0 {
		c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// earlyExit strands the barrier on ranks taking the return.
func earlyExit(c *machine.Ctx) {
	if c.Rank() == 0 {
		return
	}
	c.Barrier() // want "skipped by ranks taking the rank-conditional return"
}

// derivedTaint branches on a value computed from the rank.
func derivedTaint(c *machine.Ctx) {
	n := c.Rank() * 2
	for i := 0; i < n; i++ {
		c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// gatherCount wraps a reduction, so it is transitively collective.
func gatherCount(c *machine.Ctx) int {
	return c.SumInt(1)
}

// indirect diverges through the wrapper, not a Ctx method.
func indirect(c *machine.Ctx) {
	if c.Rank() > 0 {
		_ = gatherCount(c) // want "control-dependent on rank-valued condition"
	}
}

// loopBreak strands the second barrier on the breaking rank only.
func loopBreak(c *machine.Ctx, rounds int) {
	for i := 0; i < rounds; i++ {
		if c.Rank() == 0 {
			break
		}
		c.Barrier() // want "skipped by ranks taking the rank-conditional break"
	}
}

// uniform branches on a replicated reduction: every rank computes the
// identical value, so the conditional collective stays matched. Clean.
func uniform(c *machine.Ctx) {
	cut := c.SumInt(1)
	if cut > 0 {
		c.Barrier()
	}
}

// hostDriver shows the closure boundary: rank work inside the SPMD body
// neither taints the host's error nor exposes the body's collectives to
// the host's early return. Clean.
func hostDriver() error {
	err := machine.Run(machine.Config{Procs: 2}, func(c *machine.Ctx) {
		if c.Rank() == 0 {
			_ = gatherCount // reference only; no call under the branch
		}
		c.Barrier()
	})
	if err != nil {
		return err
	}
	return nil
}

// switchOnRank diverges through a tagged switch.
func switchOnRank(c *machine.Ctx) {
	switch c.Rank() {
	case 0:
		c.Barrier() // want "control-dependent on rank-valued condition"
	default:
	}
}

// switchOnCase diverges through an untagged switch with a rank-valued
// case expression.
func switchOnCase(c *machine.Ctx) {
	r := c.Rank()
	switch {
	case r == 0:
		c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// rangeDivergence iterates a slice whose length differs per rank.
func rangeDivergence(c *machine.Ctx) {
	verts := make([]int, c.Rank()+1)
	for range verts {
		c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// varSpecTaint taints through a var declaration.
func varSpecTaint(c *machine.Ctx) {
	var n = c.Rank() + 1
	if n > 1 {
		c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// closureDivergence calls a collective-performing closure (closure
// calling closure) under a rank branch.
func closureDivergence(c *machine.Ctx) {
	f := func() { c.Barrier() }
	g := func() { f() }
	if c.Rank() == 0 {
		g() // want "control-dependent on rank-valued condition"
	}
}

// continueExit strands the barrier on the continuing rank's iteration.
func continueExit(c *machine.Ctx, rounds int) {
	for i := 0; i < rounds; i++ {
		if c.Rank() == 0 {
			continue
		}
		c.Barrier() // want "skipped by ranks taking the rank-conditional continue"
	}
}

// deferDivergence defers a collective under a rank branch.
func deferDivergence(c *machine.Ctx) {
	if c.Rank() == 0 {
		defer c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// goDivergence spawns a collective under a rank branch.
func goDivergence(c *machine.Ctx) {
	if c.Rank() == 0 {
		go c.Barrier() // want "control-dependent on rank-valued condition"
	}
}

// kitchenSink exercises the statement dispatch with no divergence:
// labels, selects, sends, increments, type switches. Clean.
func kitchenSink(c *machine.Ctx, ch chan int, v interface{}) {
	i := 0
Loop:
	for {
		i++
		select {
		case x := <-ch:
			i += x
		default:
			break Loop
		}
	}
	switch v.(type) {
	case int:
		ch <- i
	default:
	}
	c.Barrier()
}
