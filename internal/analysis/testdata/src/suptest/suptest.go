// Package suptest is golden-file input for the //chaosvet:ignore
// suppression contract: well-formed directives silence the diagnostic
// on their line or the line below; malformed directives are reported
// themselves and suppress nothing. The expectations for this package
// are asserted explicitly in golden_test.go rather than with want
// comments, because the interesting diagnostics land on the directive
// lines.
package suptest

import "chaos/internal/machine"

// suppressedAbove carries a reviewed suppression on the line above.
func suppressedAbove(c *machine.Ctx) {
	if c.Rank() == 0 {
		//chaosvet:ignore spmdcollective golden-file demonstration of a reviewed suppression
		c.Barrier()
	}
}

// suppressedSameLine carries the directive on the flagged line.
func suppressedSameLine(c *machine.Ctx) {
	if c.Rank() == 0 {
		c.Barrier() //chaosvet:ignore spmdcollective golden-file demonstration of the same-line form
	}
}

// unknownAnalyzer names an analyzer that does not exist: the directive
// is reported and the barrier diagnostic survives.
func unknownAnalyzer(c *machine.Ctx) {
	if c.Rank() == 0 {
		//chaosvet:ignore nosuchanalyzer this suppression must not apply
		c.Barrier()
	}
}

// missingReason omits the mandatory reason: reported, not suppressing.
func missingReason(c *machine.Ctx) {
	if c.Rank() == 0 {
		//chaosvet:ignore spmdcollective
		c.Barrier()
	}
}
