package core

import (
	"fmt"

	"chaos/internal/dist"
	"chaos/internal/remap"
	"chaos/internal/ttable"
)

// Array is a distributed REAL*8 array. Data holds the local section;
// local index i corresponds to global index MyGlobals()[i]. The array
// carries a DAD that the schedule-reuse registry keys on; remapping
// mints a fresh DAD.
type Array struct {
	Name string
	s    *Session
	n    int
	dad  dist.DAD
	res  ttable.Resolver
	gl   []int
	Data []float64
}

// IntArray is a distributed INTEGER array, used for indirection arrays
// and map arrays.
type IntArray struct {
	Name string
	s    *Session
	n    int
	dad  dist.DAD
	res  ttable.Resolver
	gl   []int
	Data []int
}

// NewArray declares a REAL*8 array of n elements with the default BLOCK
// distribution (the paper's "initially, the distributed arrays are
// decomposed in a known regular manner").
func (s *Session) NewArray(name string, n int) *Array {
	b := dist.NewBlock(n, s.C.Procs())
	a := &Array{
		Name: name,
		s:    s,
		n:    n,
		dad:  s.DADs.New(dist.Block, n),
		res:  ttable.Regular{D: b},
		gl:   blockGlobals(b, s.C.Rank()),
	}
	a.Data = make([]float64, len(a.gl))
	return a
}

// NewIntArray declares an INTEGER array of n elements with the default
// BLOCK distribution.
func (s *Session) NewIntArray(name string, n int) *IntArray {
	b := dist.NewBlock(n, s.C.Procs())
	a := &IntArray{
		Name: name,
		s:    s,
		n:    n,
		dad:  s.DADs.New(dist.Block, n),
		res:  ttable.Regular{D: b},
		gl:   blockGlobals(b, s.C.Rank()),
	}
	a.Data = make([]int, len(a.gl))
	return a
}

func blockGlobals(b dist.BlockDist, rank int) []int {
	lo, hi := b.Lo(rank), b.Hi(rank)
	gl := make([]int, hi-lo)
	for i := range gl {
		gl[i] = lo + i
	}
	return gl
}

// Size returns the global extent of the array.
func (a *Array) Size() int { return a.n }

// DAD returns the array's current data access descriptor.
func (a *Array) DAD() dist.DAD { return a.dad }

// Resolver returns the array's current distribution resolver.
func (a *Array) Resolver() ttable.Resolver { return a.res }

// MyGlobals returns the global indices of the local section, in local
// order (do not mutate).
func (a *Array) MyGlobals() []int { return a.gl }

// FillByGlobal sets every local element from its global index and
// records the modification with the registry (one write event for the
// whole fill, per the paper's block-granularity counting).
func (a *Array) FillByGlobal(f func(g int) float64) {
	for i, g := range a.gl {
		a.Data[i] = f(g)
	}
	a.s.C.Words(len(a.gl))
	a.NoteWrite()
}

// NoteWrite records that a block of code may have modified this array.
func (a *Array) NoteWrite() { a.s.Reg.NoteWrite(a.dad) }

// Size returns the global extent of the array.
func (a *IntArray) Size() int { return a.n }

// DAD returns the array's current data access descriptor.
func (a *IntArray) DAD() dist.DAD { return a.dad }

// Resolver returns the array's current distribution resolver.
func (a *IntArray) Resolver() ttable.Resolver { return a.res }

// MyGlobals returns the global indices of the local section (do not
// mutate).
func (a *IntArray) MyGlobals() []int { return a.gl }

// FillByGlobal sets every local element from its global index and
// records the modification.
func (a *IntArray) FillByGlobal(f func(g int) int) {
	for i, g := range a.gl {
		a.Data[i] = f(g)
	}
	a.s.C.Words(len(a.gl))
	a.NoteWrite()
}

// NoteWrite records that a block of code may have modified this array.
func (a *IntArray) NoteWrite() { a.s.Reg.NoteWrite(a.dad) }

// Mapping is a computed irregular distribution: the runtime form of the
// map array produced by SET distfmt BY PARTITIONING ... USING ... .
// part is aligned with the home BLOCK distribution of the index space.
type Mapping struct {
	n    int
	home dist.BlockDist
	part []int
}

// Size returns the extent of the mapped index space.
func (m *Mapping) Size() int { return m.n }

// MappingFromIntArray builds a Mapping from a user-computed map array
// (the Fortran D "DISTRIBUTE irreg(map)" of the paper's Figure 3):
// map(g) = p assigns element g of the distribution to processor p. The
// map array must be BLOCK-distributed over the index space it maps
// (its home distribution), which is how Figure 3 aligns map with reg.
func (s *Session) MappingFromIntArray(arr *IntArray) *Mapping {
	if arr.res.Kind() != dist.Block {
		panic(fmt.Sprintf("core: map array %q must be BLOCK-distributed", arr.Name))
	}
	p := s.C.Procs()
	part := make([]int, len(arr.Data))
	for i, v := range arr.Data {
		if v < 0 || v >= p {
			panic(fmt.Sprintf("core: map array %q entry %d = %d out of range [0,%d)",
				arr.Name, arr.gl[i], v, p))
		}
		part[i] = v
	}
	s.C.Words(len(part))
	return &Mapping{n: arr.n, home: dist.NewBlock(arr.n, p), part: part}
}

// LocalPart returns this rank's home-aligned slice of the map array
// (do not mutate).
func (m *Mapping) LocalPart() []int { return m.part }

// OwnersOf answers "which rank will own global g" for a batch of
// globals by querying the home-resident map slices. Collective.
func (m *Mapping) OwnersOf(s *Session, globals []int) []int {
	c := s.C
	p := c.Procs()
	type ref struct{ pos, g int }
	byHome := make([][]ref, p)
	for pos, g := range globals {
		if g < 0 || g >= m.n {
			panic(fmt.Sprintf("core: mapping query %d out of range [0,%d)", g, m.n))
		}
		byHome[m.home.Owner(g)] = append(byHome[m.home.Owner(g)], ref{pos, g})
	}
	out := make([][]int, p)
	for h, refs := range byHome {
		for _, r := range refs {
			out[h] = append(out[h], r.g)
		}
	}
	c.Words(len(globals))
	queries := c.AlltoAllInts(out)
	lo := m.home.Lo(c.Rank())
	ans := make([][]int, p)
	for src := 0; src < p; src++ {
		if len(queries[src]) == 0 {
			continue
		}
		a := make([]int, len(queries[src]))
		for i, g := range queries[src] {
			a[i] = m.part[g-lo]
		}
		ans[src] = a
	}
	c.Words(len(globals))
	replies := c.AlltoAllInts(ans)
	owners := make([]int, len(globals))
	for h, refs := range byHome {
		for i, r := range refs {
			owners[r.pos] = replies[h][i]
		}
	}
	return owners
}

// Redistribute remaps arrays and intArrays — all currently aligned to
// the same distribution — onto the irregular distribution described by
// m, reusing one redistribution plan (paper Phase C / REDISTRIBUTE).
// Every remapped array receives a fresh DAD and the registry is
// notified, which is what later invalidates saved inspectors that
// referenced the old placement. Collective.
func (s *Session) Redistribute(m *Mapping, arrays []*Array, intArrays []*IntArray) {
	s.timed(TimerRemap, func() {
		var gl []int
		switch {
		case len(arrays) > 0:
			gl = arrays[0].gl
		case len(intArrays) > 0:
			gl = intArrays[0].gl
		default:
			return
		}
		for _, a := range arrays {
			if !sameGlobals(a.gl, gl) {
				panic(fmt.Sprintf("core: Redistribute of unaligned array %q", a.Name))
			}
		}
		for _, a := range intArrays {
			if !sameGlobals(a.gl, gl) {
				panic(fmt.Sprintf("core: Redistribute of unaligned array %q", a.Name))
			}
		}
		dest := m.OwnersOf(s, gl)
		pl := remap.Build(s.C, gl, dest)
		newGl := append([]int(nil), pl.NewGlobals()...)
		tab := ttable.Build(s.C, m.n, newGl)
		for _, a := range arrays {
			a.Data = pl.MoveFloats(s.C, a.Data)
			a.gl = newGl
			a.res = tab
			a.dad = s.DADs.New(dist.Irregular, a.n)
			s.Reg.NoteRemap(a.dad)
		}
		for _, a := range intArrays {
			a.Data = pl.MoveInts(s.C, a.Data)
			a.gl = newGl
			a.res = tab
			a.dad = s.DADs.New(dist.Irregular, a.n)
			s.Reg.NoteRemap(a.dad)
		}
	})
}

func sameGlobals(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
