package core

import (
	"math"
	"testing"

	"chaos/internal/iterpart"
	"chaos/internal/machine"
	"chaos/internal/xrand"
)

// gridMesh builds the edge list of a gx × gy grid.
func gridMesh(gx, gy int) (e1, e2 []int) {
	for v := 0; v < gx*gy; v++ {
		x, y := v%gx, v/gx
		if x+1 < gx {
			e1 = append(e1, v)
			e2 = append(e2, v+1)
		}
		if y+1 < gy {
			e1 = append(e1, v)
			e2 = append(e2, v+gx)
		}
	}
	return
}

// edgeKernel is the paper's L2 body: two reductions per edge.
func edgeKernel(_ int, in, out []float64) {
	x1, x2 := in[0], in[1]
	out[0] = x1*x2 + 1 // f
	out[1] = x1 - x2   // g
}

// serialL2 computes the L2 reference result.
func serialL2(n int, e1, e2 []int, xv []float64) []float64 {
	y := make([]float64, n)
	for i := range e1 {
		x1, x2 := xv[e1[i]], xv[e2[i]]
		y[e1[i]] += x1*x2 + 1
		y[e2[i]] += x1 - x2
	}
	return y
}

func xValue(g int) float64 { return math.Sin(float64(g)*0.7) + 2 }

// buildEdgeLoop declares x, y, the edge indirection arrays and the L2
// loop on a session.
func buildEdgeLoop(s *Session, n int, e1, e2 []int) (*Array, *Array, *IntArray, *IntArray, *Loop) {
	x := s.NewArray("x", n)
	y := s.NewArray("y", n)
	x.FillByGlobal(xValue)
	y.FillByGlobal(func(int) float64 { return 0 })
	nedge := len(e1)
	ia := s.NewIntArray("end_pt1", nedge)
	ib := s.NewIntArray("end_pt2", nedge)
	ia.FillByGlobal(func(g int) int { return e1[g] })
	ib.FillByGlobal(func(g int) int { return e2[g] })
	loop := s.NewLoop("L2", nedge,
		[]Read{{x, ia}, {x, ib}},
		[]Write{{y, ia, Add}, {y, ib, Add}},
		4, edgeKernel)
	return x, y, ia, ib, loop
}

// checkY compares a distributed y against the serial reference.
func checkY(t *testing.T, y *Array, want []float64, label string) {
	t.Helper()
	for i, g := range y.MyGlobals() {
		if math.Abs(y.Data[i]-want[g]) > 1e-9*(1+math.Abs(want[g])) {
			t.Errorf("%s: y[%d] = %v, want %v", label, g, y.Data[i], want[g])
		}
	}
}

func TestEdgeLoopBlockDistribution(t *testing.T) {
	const gx, gy, p = 8, 8, 4
	e1, e2 := gridMesh(gx, gy)
	want := func() []float64 {
		xv := make([]float64, gx*gy)
		for g := range xv {
			xv[g] = xValue(g)
		}
		return serialL2(gx*gy, e1, e2, xv)
	}()
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		_, y, _, _, loop := buildEdgeLoop(s, gx*gy, e1, e2)
		loop.Execute()
		checkY(t, y, want, "block")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssignLoopL1(t *testing.T) {
	// Figure 1 L1: y(ia(i)) = x(ib(i)) + x(ic(i)), no dependencies.
	const n, nIter, p = 30, 15, 3
	rng := xrand.New(3)
	iaV := rng.Perm(n)[:nIter] // distinct targets (single assignment)
	ibV := make([]int, nIter)
	icV := make([]int, nIter)
	for i := range ibV {
		ibV[i] = rng.Intn(n)
		icV[i] = rng.Intn(n)
	}
	want := make([]float64, n)
	for g := range want {
		want[g] = -1
	}
	for i := 0; i < nIter; i++ {
		want[iaV[i]] = xValue(ibV[i]) + xValue(icV[i])
	}
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x := s.NewArray("x", n)
		y := s.NewArray("y", n)
		x.FillByGlobal(xValue)
		y.FillByGlobal(func(int) float64 { return -1 })
		ia := s.NewIntArray("ia", nIter)
		ib := s.NewIntArray("ib", nIter)
		ic := s.NewIntArray("ic", nIter)
		ia.FillByGlobal(func(g int) int { return iaV[g] })
		ib.FillByGlobal(func(g int) int { return ibV[g] })
		ic.FillByGlobal(func(g int) int { return icV[g] })
		loop := s.NewLoop("L1", nIter,
			[]Read{{x, ib}, {x, ic}},
			[]Write{{y, ia, Assign}},
			1, func(_ int, in, out []float64) { out[0] = in[0] + in[1] })
		loop.Execute()
		checkY(t, y, want, "L1")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScheduleReuseAcrossIterations(t *testing.T) {
	const gx, gy, p = 6, 6, 4
	e1, e2 := gridMesh(gx, gy)
	err := machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
		s := NewSession(c)
		_, _, _, _, loop := buildEdgeLoop(s, gx*gy, e1, e2)
		loop.Execute()
		inspAfterFirst := s.Timer(TimerInspector)
		for it := 0; it < 10; it++ {
			loop.Execute()
		}
		if got := s.Timer(TimerInspector); got != inspAfterFirst {
			t.Errorf("inspector re-ran despite reuse: %v -> %v", inspAfterFirst, got)
		}
		hits, misses := s.Reg.Stats()
		if hits != 10 || misses != 1 {
			t.Errorf("reuse stats = (%d hits, %d misses), want (10, 1)", hits, misses)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndirectionWriteForcesReinspection(t *testing.T) {
	const gx, gy, p = 6, 6, 2
	e1, e2 := gridMesh(gx, gy)
	n := gx * gy
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x, y, ia, _, loop := buildEdgeLoop(s, n, e1, e2)
		loop.Execute()
		_, missesBefore := s.Reg.Stats()
		// Rewrite end_pt1 (same values, but the runtime cannot know).
		ia.FillByGlobal(func(g int) int { return e1[g] })
		loop.Execute()
		if _, misses := s.Reg.Stats(); misses != missesBefore+1 {
			t.Error("inspector did not re-run after indirection write")
		}
		// Correctness after re-inspection: run once on a fresh y.
		y.FillByGlobal(func(int) float64 { return 0 })
		loop.Execute()
		xv := make([]float64, n)
		for g := range xv {
			xv[g] = xValue(g)
		}
		want := serialL2(n, e1, e2, xv)
		// Three executions accumulated into y? No: y was zeroed
		// before the last one, so one execution's worth.
		checkY(t, y, want, "after reinspect")
		_ = x
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFullPipelineRCB(t *testing.T) {
	// Phases A-E: construct GeoCoL from geometry, partition with RCB,
	// redistribute, partition iterations, execute; compare to serial.
	const gx, gy, p = 8, 8, 4
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = xValue(g)
	}
	want := serialL2(n, e1, e2, xv)
	err := machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x, y, ia, ib, loop := buildEdgeLoop(s, n, e1, e2)
		xc := s.NewArray("xc", n)
		yc := s.NewArray("yc", n)
		xc.FillByGlobal(func(g int) float64 { return float64(g % gx) })
		yc.FillByGlobal(func(g int) float64 { return float64(g / gx) })

		g := s.Construct(n, GeoColInput{Geometry: []*Array{xc, yc}})
		m, err := s.SetByPartitioning(g, "RCB", p)
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(m, []*Array{x, y}, nil)
		loop.PartitionIterations(iterpart.AlmostOwnerComputes)
		loop.Execute()
		checkY(t, y, want, "pipeline-rcb")

		// All phase timers must be populated.
		for _, name := range []string{TimerGraphGen, TimerPartition, TimerRemap, TimerInspector, TimerExecutor} {
			if s.Timer(name) <= 0 {
				t.Errorf("timer %q empty", name)
			}
		}
		_ = ia
		_ = ib
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFullPipelineRSB(t *testing.T) {
	const gx, gy, p = 8, 8, 4
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = xValue(g)
	}
	want := serialL2(n, e1, e2, xv)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x, y, ia, ib, loop := buildEdgeLoop(s, n, e1, e2)
		g := s.Construct(n, GeoColInput{Link1: ia, Link2: ib})
		m, err := s.SetByPartitioning(g, "RSB", p)
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(m, []*Array{x, y}, nil)
		loop.PartitionIterations(iterpart.AlmostOwnerComputes)
		loop.Execute()
		checkY(t, y, want, "pipeline-rsb")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributePreservesValues(t *testing.T) {
	const n, p = 32, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x := s.NewArray("x", n)
		x.FillByGlobal(func(g int) float64 { return float64(g * g) })
		// Partition by parity of index using a custom mapping built
		// from a trivial GeoCoL graph + BLOCK partitioner on shuffled
		// geometry; simpler: use RANDOM partitioner.
		g := s.Construct(n, GeoColInput{})
		m, err := s.SetByPartitioning(g, "RANDOM", p)
		if err != nil {
			t.Error(err)
			return
		}
		oldDAD := x.DAD()
		s.Redistribute(m, []*Array{x}, nil)
		if x.DAD().Equal(oldDAD) {
			t.Error("redistribute kept old DAD")
		}
		total := 0.0
		for _, v := range x.Data {
			total += v
		}
		sum := c.SumFloat(total)
		wantSum := 0.0
		for g := 0; g < n; g++ {
			wantSum += float64(g * g)
		}
		if math.Abs(sum-wantSum) > 1e-9 {
			t.Errorf("values lost in redistribute: %v vs %v", sum, wantSum)
		}
		for i, g := range x.MyGlobals() {
			if x.Data[i] != float64(g*g) {
				t.Errorf("element %d has %v", g, x.Data[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeAfterLoopInvalidatesSchedule(t *testing.T) {
	const gx, gy, p = 6, 6, 2
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x, y, _, _, loop := buildEdgeLoop(s, n, e1, e2)
		loop.Execute()
		h0, m0 := s.Reg.Stats()
		// Remap data arrays: condition 1 must now fail.
		g := s.Construct(n, GeoColInput{})
		m, err := s.SetByPartitioning(g, "RANDOM", p)
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(m, []*Array{x, y}, nil)
		loop.Execute()
		h1, m1 := s.Reg.Stats()
		if h1 != h0 || m1 != m0+1 {
			t.Errorf("stats after remap = (%d,%d), want (%d,%d)", h1, m1, h0, m0+1)
		}
		// And the result is still right.
		xv := make([]float64, n)
		for g := range xv {
			xv[g] = xValue(g)
		}
		want := serialL2(n, e1, e2, xv)
		for g := range want {
			want[g] *= 2 // two executions accumulated
		}
		checkY(t, y, want, "after remap")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConstructAndPartitionCaching(t *testing.T) {
	const n, p = 24, 4
	err := machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
		s := NewSession(c)
		xc := s.NewArray("xc", n)
		xc.FillByGlobal(func(g int) float64 { return float64(g) })
		var mr MapperRecord
		in := GeoColInput{Geometry: []*Array{xc}}
		m1, err := s.ConstructAndPartition(&mr, n, in, "RCB", p)
		if err != nil {
			t.Error(err)
			return
		}
		tPart := s.Timer(TimerPartition)
		m2, err := s.ConstructAndPartition(&mr, n, in, "RCB", p)
		if err != nil {
			t.Error(err)
			return
		}
		if m2 != m1 {
			t.Error("cached mapping not returned")
		}
		if s.Timer(TimerPartition) != tPart {
			t.Error("partitioner re-ran despite unchanged inputs")
		}
		// Writing the geometry array invalidates the cache.
		xc.FillByGlobal(func(g int) float64 { return float64(2 * g) })
		m3, err := s.ConstructAndPartition(&mr, n, in, "RCB", p)
		if err != nil {
			t.Error(err)
			return
		}
		if m3 == m1 {
			t.Error("stale mapping returned after input write")
		}
		if s.Timer(TimerPartition) <= tPart {
			t.Error("partitioner did not re-run after input write")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	const n, nIter, p = 8, 16, 2
	targets := make([]int, nIter)
	vals := make([]float64, nIter)
	for i := range targets {
		targets[i] = i % n
		vals[i] = float64((i*13)%7) - 3
	}
	cases := []struct {
		op   Reduce
		init float64
		want func(cur, v float64) float64
	}{
		{Max, math.Inf(-1), math.Max},
		{Min, math.Inf(1), math.Min},
		{Mul, 1, func(c, v float64) float64 { return c * v }},
	}
	for _, tc := range cases {
		want := make([]float64, n)
		for g := range want {
			want[g] = tc.init
		}
		for i := range targets {
			want[targets[i]] = tc.want(want[targets[i]], vals[i])
		}
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			s := NewSession(c)
			y := s.NewArray("y", n)
			y.FillByGlobal(func(int) float64 { return tc.init })
			ia := s.NewIntArray("ia", nIter)
			ia.FillByGlobal(func(g int) int { return targets[g] })
			src := s.NewArray("src", nIter)
			src.FillByGlobal(func(g int) float64 { return vals[g] })
			idx := s.NewIntArray("idx", nIter)
			idx.FillByGlobal(func(g int) int { return g })
			loop := s.NewLoop("reduce", nIter,
				[]Read{{src, idx}},
				[]Write{{y, ia, tc.op}},
				1, func(_ int, in, out []float64) { out[0] = in[0] })
			loop.Execute()
			checkY(t, y, want, tc.op.String())
		})
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
	}
}

func TestIterationPartitioningPolicies(t *testing.T) {
	const gx, gy, p = 6, 6, 3
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = xValue(g)
	}
	want := serialL2(n, e1, e2, xv)
	for _, pol := range []iterpart.Policy{
		iterpart.AlmostOwnerComputes, iterpart.OwnerComputes, iterpart.BlockIterations,
	} {
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			s := NewSession(c)
			x, y, _, _, loop := buildEdgeLoop(s, n, e1, e2)
			g := s.Construct(n, GeoColInput{})
			m, err := s.SetByPartitioning(g, "RANDOM", p)
			if err != nil {
				t.Error(err)
				return
			}
			s.Redistribute(m, []*Array{x, y}, nil)
			loop.PartitionIterations(pol)
			loop.Execute()
			checkY(t, y, want, pol.String())
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

func TestTimersAndReset(t *testing.T) {
	err := machine.Run(machine.IPSC860(2), func(c *machine.Ctx) {
		s := NewSession(c)
		s.timed("phase", func() { c.Flops(1000) })
		if s.Timer("phase") <= 0 {
			t.Error("timer did not accumulate")
		}
		if got := s.TimerMax("phase"); got < s.Timer("phase") {
			t.Errorf("TimerMax %v < local %v", got, s.Timer("phase"))
		}
		names := s.TimerNames()
		if len(names) != 1 || names[0] != "phase" {
			t.Errorf("TimerNames = %v", names)
		}
		s.ResetTimers()
		if s.Timer("phase") != 0 {
			t.Error("ResetTimers did not clear")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceString(t *testing.T) {
	for r, s := range map[Reduce]string{Assign: "ASSIGN", Add: "ADD", Max: "MAX", Min: "MIN", Mul: "MUL"} {
		if r.String() != s {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
	if Reduce(99).String() == "" {
		t.Error("unknown reduce should format")
	}
}
