package core

import (
	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/partition"
	"chaos/internal/registry"
)

// GeoColInput declares the program arrays feeding a CONSTRUCT
// directive. Connectivity (LINK) comes from a pair of indirection
// arrays; geometry (GEOMETRY) from coordinate arrays aligned with the
// vertex space; load (LOAD) from a weight array. Any combination is
// allowed, mirroring the paper's Section 4.1.2.
type GeoColInput struct {
	// Link supplies edge endpoint arrays (both must be aligned).
	Link1, Link2 *IntArray
	// Geometry supplies coordinate arrays, one per spatial dimension.
	Geometry []*Array
	// Load supplies per-vertex computational weight.
	Load *Array
}

// dads lists the DADs of every contributing array, in a fixed order,
// for the reuse guard.
func (in GeoColInput) dads() []dist.DAD {
	var ds []dist.DAD
	if in.Link1 != nil {
		ds = append(ds, in.Link1.DAD())
	}
	if in.Link2 != nil {
		ds = append(ds, in.Link2.DAD())
	}
	for _, g := range in.Geometry {
		ds = append(ds, g.DAD())
	}
	if in.Load != nil {
		ds = append(ds, in.Load.DAD())
	}
	return ds
}

// Construct builds the GeoCoL data structure for an n-vertex index
// space from program arrays (the CONSTRUCT directive, Phase A). The
// graph-generation cost is attributed to TimerGraphGen. Collective.
func (s *Session) Construct(n int, in GeoColInput) *geocol.Graph {
	var g *geocol.Graph
	s.timed(TimerGraphGen, func() {
		var opts []geocol.Option
		if in.Link1 != nil || in.Link2 != nil {
			if in.Link1 == nil || in.Link2 == nil {
				panic("core: CONSTRUCT LINK requires both endpoint arrays")
			}
			opts = append(opts, geocol.WithLink(in.Link1.Data, in.Link2.Data))
		}
		if len(in.Geometry) > 0 {
			cols := make([][]float64, len(in.Geometry))
			for d, arr := range in.Geometry {
				cols[d] = arr.Data
			}
			opts = append(opts, geocol.WithGeometry(cols...))
		}
		if in.Load != nil {
			opts = append(opts, geocol.WithLoad(in.Load.Data))
		}
		g = geocol.Build(s.C, n, opts...)
	})
	return g
}

// SetPartitioning runs the partitioner selected by a typed spec on a
// GeoCoL graph and returns the resulting irregular distribution (the
// SET distfmt BY PARTITIONING G USING <spec> directive). The spec is
// resolved against the registry and validated against the
// partitioner's declared capabilities and the components g actually
// carries before any partitioning work starts, so a bad combination —
// RCB without GEOMETRY, tuning knobs on an untunable method — fails
// with a descriptive error here rather than a panic deep in the
// library. The partitioner cost is attributed to TimerPartition.
// Collective.
func (s *Session) SetPartitioning(g *geocol.Graph, spec partition.Spec, nparts int) (*Mapping, error) {
	p, err := spec.ValidateFor(g, nparts)
	if err != nil {
		return nil, err
	}
	var m *Mapping
	s.timed(TimerPartition, func() {
		part := p.Partition(s.C, g, nparts)
		m = &Mapping{n: g.N, home: g.Home, part: part}
	})
	return m, nil
}

// SetByPartitioning is the Fortran-D-style string form of
// SetPartitioning: the partitioner is named by its registry string,
// optionally with a parenthesized option list (partition.ParseSpec).
// It produces bit-identical partitions to the typed path.
//
// Deprecated: use SetPartitioning with a typed partition.Spec, which
// exposes the tuning knobs and validates the combination early.
func (s *Session) SetByPartitioning(g *geocol.Graph, partitioner string, nparts int) (*Mapping, error) {
	sp, err := partition.ParseSpec(partitioner)
	if err != nil {
		return nil, err
	}
	return s.SetPartitioning(g, sp, nparts)
}

// MapperRecord caches the result of a CONSTRUCT + PARTITIONING pair so
// the runtime can "avoid generating a new GeoCoL graph and carrying out
// a potentially expensive repartition when no change has occurred"
// (paper Section 3). The guard is the same conservative DAD/timestamp
// check used for inspector reuse, applied to the arrays feeding the
// CONSTRUCT.
type MapperRecord struct {
	rec     registry.LoopRecord
	mapping *Mapping
}

// Mapping returns the cached mapping (nil before the first build).
func (mr *MapperRecord) Mapping() *Mapping { return mr.mapping }

// ConstructAndPartition is the reuse-guarded Phase A: if none of the
// input arrays may have changed since the cached mapping was computed,
// the cached mapping is returned without rebuilding the GeoCoL graph or
// re-running the partitioner. Collective.
//
// Deprecated: use Session.NewRepartitioner, which adds incremental
// warm repartitioning (retained multilevel coarsening ladder) on top
// of the same unchanged-input guard.
func (s *Session) ConstructAndPartition(mr *MapperRecord, n int, in GeoColInput, partitioner string, nparts int) (*Mapping, error) {
	inputDADs := in.dads()
	for _, d := range inputDADs {
		s.Reg.Track(d)
	}
	s.C.Words(2 * len(inputDADs)) // the guard itself is a few comparisons
	if s.Reg.Check(&mr.rec, nil, inputDADs) && mr.mapping != nil {
		return mr.mapping, nil
	}
	g := s.Construct(n, in)
	m, err := s.SetByPartitioning(g, partitioner, nparts)
	if err != nil {
		return nil, err
	}
	mr.mapping = m
	s.Reg.Record(&mr.rec, nil, inputDADs)
	return m, nil
}
