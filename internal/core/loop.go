package core

import (
	"fmt"
	"math"

	"chaos/internal/dist"
	"chaos/internal/iterpart"
	"chaos/internal/registry"
	"chaos/internal/remap"
	"chaos/internal/schedule"
	"chaos/internal/ttable"
)

// DefaultIterPolicy is the runtime's default iteration-placement
// convention: "our current default is to employ a scheme that places a
// loop iteration on the processor that is the home of the largest
// number of the iteration's distributed array references."
const DefaultIterPolicy = iterpart.AlmostOwnerComputes

// Reduce names the reduction applied by a write access. The paper
// allows "left hand side reductions (e.g. addition, accumulation, max,
// min, etc)" as the only loop-carried dependencies; Assign covers
// dependence-free single-assignment loops such as Figure 1's L1.
type Reduce int

const (
	// Assign overwrites the target element. The loop must assign each
	// target at most once (no loop-carried dependence), per the
	// paper's model; NaN cannot be assigned (it is the internal
	// "untouched" sentinel).
	Assign Reduce = iota
	// Add accumulates contributions (REDUCE(ADD, ...)).
	Add
	// Max keeps the maximum contribution.
	Max
	// Min keeps the minimum contribution.
	Min
	// Mul multiplies contributions.
	Mul
)

func (r Reduce) String() string {
	switch r {
	case Assign:
		return "ASSIGN"
	case Add:
		return "ADD"
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Mul:
		return "MUL"
	default:
		return fmt.Sprintf("Reduce(%d)", int(r))
	}
}

func (r Reduce) identity() float64 {
	switch r {
	case Add:
		return 0
	case Max:
		return math.Inf(-1)
	case Min:
		return math.Inf(1)
	case Mul:
		return 1
	default:
		return math.NaN()
	}
}

func (r Reduce) combine(owned, contrib float64) float64 {
	switch r {
	case Add:
		return owned + contrib
	case Max:
		if contrib > owned {
			return contrib
		}
		return owned
	case Min:
		if contrib < owned {
			return contrib
		}
		return owned
	case Mul:
		return owned * contrib
	default: // Assign: NaN contributions mark untouched slots
		if math.IsNaN(contrib) {
			return owned
		}
		return contrib
	}
}

// Read is one gathered right-hand-side access of the form Arr(Ind(i)).
type Read struct {
	Arr *Array
	Ind *IntArray
}

// Write is one left-hand-side access of the form Arr(Ind(i)) combined
// with Op.
type Write struct {
	Arr *Array
	Ind *IntArray
	Op  Reduce
}

// Loop is an irregular forall loop: per iteration i, values
// Reads[j].Arr(Reads[j].Ind(i)) are gathered into in[j], Kernel
// computes contributions out[k], and each out[k] is combined into
// Writes[k].Arr(Writes[k].Ind(i)) with Writes[k].Op. Indirection
// arrays are indexed directly by the loop index (single-level
// indirection), matching the paper's loop model.
type Loop struct {
	Name  string
	NIter int
	Reads []Read
	// Writes lists the reduction targets.
	Writes []Write
	// Kernel computes one iteration. iter is the global iteration
	// number; in has one gathered value per read; out must be filled
	// with one contribution per write. in and out are reused across
	// iterations.
	Kernel func(iter int, in, out []float64)
	// FlopsPerIter is the modeled floating-point cost of one Kernel
	// call, charged to the virtual clock.
	FlopsPerIter int

	// MergeAccesses, when set before the first inspection, fuses all
	// accesses to the same array (and, for writes, the same reduction
	// operator) into a single communication schedule, so the executor
	// issues one gather per array and one scatter per (array, op)
	// instead of one per access — the CHAOS schedule-fusion
	// optimization. Results are identical; per-iteration message
	// counts drop.
	MergeAccesses bool

	s       *Session
	iterGl  []int // global iteration ids owned locally
	iterRes ttable.Resolver

	rec  registry.LoopRecord
	insp *inspectorState
}

// gatherGroup is one fused communication schedule serving one or more
// read accesses of the same array.
type gatherGroup struct {
	arr   *Array
	sched *schedule.Schedule
}

// scatterGroup is one fused schedule serving write accesses that share
// an array and a reduction operator.
type scatterGroup struct {
	arr   *Array
	op    Reduce
	sched *schedule.Schedule
}

// accessPlan ties one access to its group and its per-iteration
// reference vector into [local | group ghosts].
type accessPlan struct {
	group int
	ref   []int
}

type inspectorState struct {
	rGroups []gatherGroup
	rPlans  []accessPlan
	wGroups []scatterGroup
	wPlans  []accessPlan
}

// NewLoop declares an irregular loop over nIter iterations with the
// default BLOCK iteration distribution. Indirection arrays of every
// access must be aligned with the iteration space.
func (s *Session) NewLoop(name string, nIter int, reads []Read, writes []Write, flopsPerIter int, kernel func(iter int, in, out []float64)) *Loop {
	l := &Loop{
		Name:         name,
		NIter:        nIter,
		Reads:        reads,
		Writes:       writes,
		Kernel:       kernel,
		FlopsPerIter: flopsPerIter,
		s:            s,
	}
	b := dist.NewBlock(nIter, s.C.Procs())
	l.iterGl = blockGlobals(b, s.C.Rank())
	l.iterRes = ttable.Regular{D: b}
	l.checkAlignment()
	return l
}

func (l *Loop) checkAlignment() {
	for _, r := range l.Reads {
		if len(r.Ind.Data) != len(l.iterGl) {
			panic(fmt.Sprintf("core: loop %q: indirection %q not aligned with iteration space (%d vs %d)",
				l.Name, r.Ind.Name, len(r.Ind.Data), len(l.iterGl)))
		}
	}
	for _, w := range l.Writes {
		if len(w.Ind.Data) != len(l.iterGl) {
			panic(fmt.Sprintf("core: loop %q: indirection %q not aligned with iteration space (%d vs %d)",
				l.Name, w.Ind.Name, len(w.Ind.Data), len(l.iterGl)))
		}
	}
}

// MyIterations returns the global iteration ids executed locally (do
// not mutate).
func (l *Loop) MyIterations() []int { return l.iterGl }

// GhostCounts returns the ghost-buffer sizes of the saved inspector's
// schedules, one per gather group then one per scatter group, or nil
// before the first inspection. Useful for diagnostics and
// communication-volume studies.
func (l *Loop) GhostCounts() []int {
	if l.insp == nil {
		return nil
	}
	var out []int
	for _, g := range l.insp.rGroups {
		out = append(out, g.sched.NGhost())
	}
	for _, g := range l.insp.wGroups {
		out = append(out, g.sched.NGhost())
	}
	return out
}

// CommPhases returns the number of communication phases one executor
// iteration performs (gathers + scatters). With MergeAccesses this is
// the number of distinct arrays rather than the number of accesses.
func (l *Loop) CommPhases() int {
	if l.insp == nil {
		return 0
	}
	return len(l.insp.rGroups) + len(l.insp.wGroups)
}

func (l *Loop) dataDADs() []dist.DAD {
	var ds []dist.DAD
	for _, r := range l.Reads {
		ds = append(ds, r.Arr.DAD())
	}
	for _, w := range l.Writes {
		ds = append(ds, w.Arr.DAD())
	}
	return ds
}

func (l *Loop) indDADs() []dist.DAD {
	var ds []dist.DAD
	for _, r := range l.Reads {
		ds = append(ds, r.Ind.DAD())
	}
	for _, w := range l.Writes {
		ds = append(ds, w.Ind.DAD())
	}
	return ds
}

// Inspect runs the Phase D inspector unconditionally: it builds one
// communication schedule per access and the buffer-association vectors,
// then records the loop's DADs and indirection timestamps with the
// registry. Collective.
func (l *Loop) Inspect() {
	l.s.timed(TimerInspector, func() {
		// Register indirection descriptors with the (possibly
		// tracked) registry before recording timestamps.
		for _, d := range l.indDADs() {
			l.s.Reg.Track(d)
		}
		st := &inspectorState{}
		nLocal := len(l.iterGl)

		// Group read accesses (per array when merging, else one group
		// per access), then build one schedule per group over the
		// concatenated reference lists and slice the reference vector
		// back per access.
		rGroupOf := map[*Array]int{}
		var rMembers [][]int
		for j, r := range l.Reads {
			gi := -1
			if l.MergeAccesses {
				if idx, ok := rGroupOf[r.Arr]; ok {
					gi = idx
				}
			}
			if gi < 0 {
				gi = len(st.rGroups)
				st.rGroups = append(st.rGroups, gatherGroup{arr: r.Arr})
				rMembers = append(rMembers, nil)
				if l.MergeAccesses {
					rGroupOf[r.Arr] = gi
				}
			}
			rMembers[gi] = append(rMembers[gi], j)
		}
		st.rPlans = make([]accessPlan, len(l.Reads))
		for gi := range st.rGroups {
			arr := st.rGroups[gi].arr
			globals := make([]int, 0, nLocal*len(rMembers[gi]))
			for _, j := range rMembers[gi] {
				globals = append(globals, l.Reads[j].Ind.Data...)
			}
			sch, ref := schedule.BuildGather(l.s.C, arr.res, len(arr.Data), globals, schedule.Options{})
			st.rGroups[gi].sched = sch
			for idx, j := range rMembers[gi] {
				st.rPlans[j] = accessPlan{group: gi, ref: ref[idx*nLocal : (idx+1)*nLocal]}
			}
		}

		// Same for writes, grouped by (array, reduction operator).
		type wKey struct {
			arr *Array
			op  Reduce
		}
		wGroupOf := map[wKey]int{}
		var wMembers [][]int
		for k, w := range l.Writes {
			key := wKey{w.Arr, w.Op}
			gi := -1
			if l.MergeAccesses {
				if idx, ok := wGroupOf[key]; ok {
					gi = idx
				}
			}
			if gi < 0 {
				gi = len(st.wGroups)
				st.wGroups = append(st.wGroups, scatterGroup{arr: w.Arr, op: w.Op})
				wMembers = append(wMembers, nil)
				if l.MergeAccesses {
					wGroupOf[key] = gi
				}
			}
			wMembers[gi] = append(wMembers[gi], k)
		}
		st.wPlans = make([]accessPlan, len(l.Writes))
		for gi := range st.wGroups {
			arr := st.wGroups[gi].arr
			globals := make([]int, 0, nLocal*len(wMembers[gi]))
			for _, k := range wMembers[gi] {
				globals = append(globals, l.Writes[k].Ind.Data...)
			}
			sch, ref := schedule.BuildGather(l.s.C, arr.res, len(arr.Data), globals, schedule.Options{})
			st.wGroups[gi].sched = sch
			for idx, k := range wMembers[gi] {
				st.wPlans[k] = accessPlan{group: gi, ref: ref[idx*nLocal : (idx+1)*nLocal]}
			}
		}

		l.insp = st
		l.s.Reg.Record(&l.rec, l.dataDADs(), l.indDADs())
	})
}

// Execute runs one executor iteration of the loop, re-running the
// inspector only when the registry's conservative check fails (the
// paper's schedule-reuse mechanism). Collective.
func (l *Loop) Execute() {
	// The reuse check itself is charged: a few descriptor comparisons.
	l.s.C.Words(2 * (len(l.Reads) + len(l.Writes)))
	if !l.s.Reg.Check(&l.rec, l.dataDADs(), l.indDADs()) || l.insp == nil {
		l.Inspect()
	}
	l.s.timed(TimerExecutor, func() { l.executor() })
}

// ExecuteNoReuse forces a fresh inspector before every executor pass —
// the paper's "no schedule reuse" baseline (Table 1).
func (l *Loop) ExecuteNoReuse() {
	l.Inspect()
	l.s.timed(TimerExecutor, func() { l.executor() })
}

// executor is Phase E: gather ghost values, run the kernel over local
// iterations, combine write contributions, scatter off-processor
// contributions back to their owners.
func (l *Loop) executor() {
	c := l.s.C
	st := l.insp

	// Gather read operands: one communication phase per group.
	ghosts := make([][]float64, len(st.rGroups))
	for gi, g := range st.rGroups {
		ghosts[gi] = make([]float64, g.sched.NGhost())
		g.sched.Gather(c, g.arr.Data, ghosts[gi])
	}

	// Prepare write accumulation buffers (local section + ghost
	// slots), initialized to the reduction identity; one per group.
	wbufs := make([][]float64, len(st.wGroups))
	for gi, g := range st.wGroups {
		buf := make([]float64, len(g.arr.Data)+g.sched.NGhost())
		id := g.op.identity()
		for i := range buf {
			buf[i] = id
		}
		wbufs[gi] = buf
	}

	in := make([]float64, len(l.Reads))
	out := make([]float64, len(l.Writes))
	for i := range l.iterGl {
		for j := range l.Reads {
			pl := &st.rPlans[j]
			data := st.rGroups[pl.group].arr.Data
			ref := pl.ref[i]
			if ref < len(data) {
				in[j] = data[ref]
			} else {
				in[j] = ghosts[pl.group][ref-len(data)]
			}
		}
		l.Kernel(l.iterGl[i], in, out)
		for k := range l.Writes {
			pl := &st.wPlans[k]
			buf := wbufs[pl.group]
			buf[pl.ref[i]] = st.wGroups[pl.group].op.combine(buf[pl.ref[i]], out[k])
		}
	}
	c.Flops(len(l.iterGl) * (l.FlopsPerIter + len(l.Writes)))
	c.Words(len(l.iterGl) * (len(l.Reads) + len(l.Writes)))

	// Fold local contributions and scatter ghost contributions, one
	// communication phase per group.
	for gi, g := range st.wGroups {
		buf := wbufs[gi]
		nLocal := len(g.arr.Data)
		op := g.op
		for i := 0; i < nLocal; i++ {
			g.arr.Data[i] = op.combine(g.arr.Data[i], buf[i])
		}
		c.Flops(nLocal)
		g.sched.ScatterOp(c, g.arr.Data, buf[nLocal:], op.combine)
	}

	// One modification event per written array for this loop body.
	for _, w := range l.Writes {
		w.Arr.NoteWrite()
	}
}

// PartitionIterations runs the paper's Phase B on this loop: every
// local iteration is assigned to a processor according to policy
// (default almost-owner-computes), and the loop's iteration space and
// indirection arrays are remapped accordingly. The remap gives the
// indirection arrays fresh DADs, so any saved inspector is invalidated
// through the normal reuse conditions. The cost is attributed to
// TimerRemap. Collective.
func (l *Loop) PartitionIterations(policy iterpart.Policy) {
	s := l.s
	s.timed(TimerRemap, func() {
		c := s.C
		nAcc := len(l.Reads) + len(l.Writes)
		ownersByAcc := make([][]int, 0, nAcc)
		for _, r := range l.Reads {
			o, _ := r.Arr.res.Resolve(c, r.Ind.Data)
			ownersByAcc = append(ownersByAcc, o)
		}
		for _, w := range l.Writes {
			o, _ := w.Arr.res.Resolve(c, w.Ind.Data)
			ownersByAcc = append(ownersByAcc, o)
		}
		nLocal := len(l.iterGl)
		refOwners := make([][]int, nLocal)
		lhsOwner := make([]int, nLocal)
		blockHome := make([]int, nLocal)
		flat := make([]int, nAcc)
		for i := 0; i < nLocal; i++ {
			row := flat[:0]
			for _, o := range ownersByAcc {
				row = append(row, o[i])
			}
			refOwners[i] = append([]int(nil), row...)
			if len(l.Writes) > 0 {
				lhsOwner[i] = ownersByAcc[len(l.Reads)][i]
			} else if nAcc > 0 {
				lhsOwner[i] = ownersByAcc[0][i]
			}
			blockHome[i] = c.Rank()
		}
		dest := iterpart.ChooseAll(refOwners, lhsOwner, blockHome, policy)
		c.Words(nLocal * (nAcc + 2))

		pl := remap.Build(c, l.iterGl, dest)
		newGl := append([]int(nil), pl.NewGlobals()...)
		tab := ttable.Build(c, l.NIter, newGl)

		// Remap each distinct indirection array exactly once.
		moved := map[*IntArray]bool{}
		var inds []*IntArray
		for _, r := range l.Reads {
			inds = append(inds, r.Ind)
		}
		for _, w := range l.Writes {
			inds = append(inds, w.Ind)
		}
		for _, ind := range inds {
			if moved[ind] {
				continue
			}
			moved[ind] = true
			ind.Data = pl.MoveInts(c, ind.Data)
			ind.gl = newGl
			ind.res = tab
			ind.dad = s.DADs.New(dist.Irregular, ind.n)
			s.Reg.NoteRemap(ind.dad)
		}
		l.iterGl = newGl
		l.iterRes = tab
	})
}
