package core

import (
	"testing"

	"chaos/internal/iterpart"
	"chaos/internal/machine"
)

// TestMergeAccessesEquivalence runs the edge loop with and without
// schedule fusion and checks identical results with fewer
// communication phases.
func TestMergeAccessesEquivalence(t *testing.T) {
	const gx, gy, p = 8, 8, 4
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = xValue(g)
	}
	want := serialL2(n, e1, e2, xv)
	for _, merge := range []bool{false, true} {
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			s := NewSession(c)
			_, y, _, _, loop := buildEdgeLoop(s, n, e1, e2)
			loop.MergeAccesses = merge
			loop.Execute()
			checkY(t, y, want, map[bool]string{false: "separate", true: "merged"}[merge])
			phases := loop.CommPhases()
			if merge && phases != 2 { // one x gather + one y scatter
				t.Errorf("merged loop has %d comm phases, want 2", phases)
			}
			if !merge && phases != 4 { // two reads + two writes
				t.Errorf("separate loop has %d comm phases, want 4", phases)
			}
		})
		if err != nil {
			t.Fatalf("merge=%v: %v", merge, err)
		}
	}
}

// TestMergeAccessesCheaperExecutor verifies the fused schedules reduce
// virtual executor time (fewer messages, deduplicated ghosts shared
// across accesses).
func TestMergeAccessesCheaperExecutor(t *testing.T) {
	const gx, gy, p = 12, 12, 4
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	run := func(merge bool) float64 {
		var exec float64
		err := machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
			s := NewSession(c)
			_, _, _, _, loop := buildEdgeLoop(s, n, e1, e2)
			loop.MergeAccesses = merge
			for it := 0; it < 10; it++ {
				loop.Execute()
			}
			v := s.TimerMax(TimerExecutor)
			if c.Rank() == 0 {
				exec = v
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	sep := run(false)
	mrg := run(true)
	if mrg >= sep {
		t.Errorf("merged executor (%.6fs) not cheaper than separate (%.6fs)", mrg, sep)
	}
}

// TestMergeAccessesFullPipeline checks fusion composes with
// partitioning, redistribution and iteration placement.
func TestMergeAccessesFullPipeline(t *testing.T) {
	const gx, gy, p = 8, 8, 4
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = xValue(g)
	}
	want := serialL2(n, e1, e2, xv)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		x, y, ia, ib, loop := buildEdgeLoop(s, n, e1, e2)
		loop.MergeAccesses = true
		g := s.Construct(n, GeoColInput{Link1: ia, Link2: ib})
		m, err := s.SetByPartitioning(g, "RSB", p)
		if err != nil {
			t.Error(err)
			return
		}
		s.Redistribute(m, []*Array{x, y}, nil)
		loop.PartitionIterations(iterpart.AlmostOwnerComputes)
		loop.Execute()
		checkY(t, y, want, "merged-pipeline")
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMergeMixedOpsStaySeparate ensures writes with different reduction
// operators are not fused even when they target the same array.
func TestMergeMixedOpsStaySeparate(t *testing.T) {
	const n, nIter, p = 10, 20, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewSession(c)
		src := s.NewArray("src", nIter)
		src.FillByGlobal(func(g int) float64 { return float64(g % 5) })
		idx := s.NewIntArray("idx", nIter)
		idx.FillByGlobal(func(g int) int { return g })
		y := s.NewArray("y", n)
		y.FillByGlobal(func(int) float64 { return 0 })
		ia := s.NewIntArray("ia", nIter)
		ia.FillByGlobal(func(g int) int { return g % n })
		loop := s.NewLoop("mixed", nIter,
			[]Read{{src, idx}},
			[]Write{{y, ia, Add}, {y, ia, Max}},
			1, func(_ int, in, out []float64) {
				out[0] = in[0]
				out[1] = in[0]
			})
		loop.MergeAccesses = true
		loop.Execute()
		if phases := loop.CommPhases(); phases != 3 { // 1 gather + 2 scatters
			t.Errorf("mixed-op loop has %d phases, want 3", phases)
		}
		// Add contributions: each target g gets src values g and g+n.
		// Max applies afterwards in rank order; verify Add part via a
		// serial model including the Max interleave is complex, so
		// just check a structural invariant: y is nonnegative and
		// bounded by sum+max of contributions.
		for i := range y.Data {
			if y.Data[i] < 0 {
				t.Errorf("y[%d] = %v negative", i, y.Data[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
