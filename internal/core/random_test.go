package core

import (
	"fmt"
	"math"
	"testing"

	"chaos/internal/iterpart"
	"chaos/internal/machine"
	"chaos/internal/xrand"
)

// TestRandomizedLoopsMatchSerial drives the whole runtime (construct,
// partition, redistribute, iteration partitioning, inspector/executor
// with reuse) on randomly generated irregular loops and checks every
// result against a serial evaluation. Each seed draws the problem
// shape, the reduction operators, the partitioner and the iteration
// policy.
func TestRandomizedLoopsMatchSerial(t *testing.T) {
	partitioners := []string{"BLOCK", "RANDOM", "RCB", "RSB", "INERTIAL"}
	policies := []iterpart.Policy{
		iterpart.AlmostOwnerComputes, iterpart.OwnerComputes, iterpart.BlockIterations,
	}
	ops := []Reduce{Add, Max, Min}

	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := xrand.New(seed)
			n := 20 + rng.Intn(60)     // data array extent
			nIter := 10 + rng.Intn(80) // iterations
			procs := 2 + rng.Intn(5)   // 2..6 ranks
			nReads := 1 + rng.Intn(3)  // 1..3 gathered reads
			nWrites := 1 + rng.Intn(2) // 1..2 reductions
			part := partitioners[rng.Intn(len(partitioners))]
			pol := policies[rng.Intn(len(policies))]
			repeats := 1 + rng.Intn(3)

			// Random indirection contents.
			readInd := make([][]int, nReads)
			for j := range readInd {
				readInd[j] = make([]int, nIter)
				for i := range readInd[j] {
					readInd[j][i] = rng.Intn(n)
				}
			}
			writeInd := make([][]int, nWrites)
			writeOps := make([]Reduce, nWrites)
			for k := range writeInd {
				writeInd[k] = make([]int, nIter)
				for i := range writeInd[k] {
					writeInd[k][i] = rng.Intn(n)
				}
				writeOps[k] = ops[rng.Intn(len(ops))]
			}
			xInit := func(g int) float64 { return math.Sin(float64(g)*1.3) * 10 }
			yInit := func(k int) float64 {
				switch writeOps[k] {
				case Max:
					return math.Inf(-1)
				case Min:
					return math.Inf(1)
				default:
					return 0
				}
			}
			kernel := func(iter int, in, out []float64) {
				acc := float64(iter%7) * 0.5
				for _, v := range in {
					acc += v
				}
				for k := range out {
					out[k] = acc + float64(k)
				}
			}

			// Serial reference (repeated, since reductions accumulate).
			want := make([][]float64, nWrites)
			for k := range want {
				want[k] = make([]float64, n)
				for g := range want[k] {
					want[k][g] = yInit(k)
				}
			}
			in := make([]float64, nReads)
			out := make([]float64, nWrites)
			for rep := 0; rep < repeats; rep++ {
				for i := 0; i < nIter; i++ {
					for j := range in {
						in[j] = xInit(readInd[j][i])
					}
					kernel(i, in, out)
					for k := range out {
						tgt := writeInd[k][i]
						switch writeOps[k] {
						case Max:
							want[k][tgt] = math.Max(want[k][tgt], out[k])
						case Min:
							want[k][tgt] = math.Min(want[k][tgt], out[k])
						default:
							want[k][tgt] += out[k]
						}
					}
				}
			}

			err := machine.Run(machine.Zero(procs), func(c *machine.Ctx) {
				s := NewSession(c)
				x := s.NewArray("x", n)
				x.FillByGlobal(xInit)
				xc := s.NewArray("xc", n)
				yc := s.NewArray("yc", n)
				xc.FillByGlobal(func(g int) float64 {
					return float64(int(xrand.Hash64(uint64(g)) % 1000))
				})
				yc.FillByGlobal(func(g int) float64 {
					return float64(int(xrand.Hash64(uint64(g)+7) % 1000))
				})

				var reads []Read
				var inds []*IntArray
				for j := 0; j < nReads; j++ {
					ia := s.NewIntArray(fmt.Sprintf("r%d", j), nIter)
					vals := readInd[j]
					ia.FillByGlobal(func(g int) int { return vals[g] })
					reads = append(reads, Read{Arr: x, Ind: ia})
					inds = append(inds, ia)
				}
				var writes []Write
				var ys []*Array
				for k := 0; k < nWrites; k++ {
					y := s.NewArray(fmt.Sprintf("y%d", k), n)
					kk := k
					y.FillByGlobal(func(int) float64 { return yInit(kk) })
					ia := s.NewIntArray(fmt.Sprintf("w%d", k), nIter)
					vals := writeInd[k]
					ia.FillByGlobal(func(g int) int { return vals[g] })
					writes = append(writes, Write{Arr: y, Ind: ia, Op: writeOps[k]})
					ys = append(ys, y)
				}

				// Partition + redistribute data arrays.
				var gin GeoColInput
				switch part {
				case "RCB", "INERTIAL":
					gin = GeoColInput{Geometry: []*Array{xc, yc}}
				case "RSB":
					// Connectivity from the first read/write pair.
					gin = GeoColInput{Link1: inds[0], Link2: writes[0].Ind}
				}
				// RSB needs LINK arrays aligned to the vertex space;
				// our indirection arrays live on the iteration space,
				// which geocol accepts (edges may name any vertices).
				g := s.Construct(n, gin)
				m, err := s.SetByPartitioning(g, part, procs)
				if err != nil {
					panic(err)
				}
				arrays := append([]*Array{x}, ys...)
				s.Redistribute(m, arrays, nil)

				loop := s.NewLoop("rand", nIter, reads, writes, 3, kernel)
				loop.PartitionIterations(pol)
				for rep := 0; rep < repeats; rep++ {
					loop.Execute()
				}

				for k, y := range ys {
					for i, g := range y.MyGlobals() {
						w := want[k][g]
						if math.IsInf(w, 0) && math.IsInf(y.Data[i], 0) {
							continue
						}
						if math.Abs(y.Data[i]-w) > 1e-9*(1+math.Abs(w)) {
							t.Errorf("seed %d (%s/%v): y%d(%d) = %v, want %v",
								seed, part, pol, k, g, y.Data[i], w)
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("seed %d (%s/%v): %v", seed, part, pol, err)
			}
		})
	}
}
