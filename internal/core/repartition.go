package core

import (
	"chaos/internal/geocol"
	"chaos/internal/partition"
	"chaos/internal/registry"
)

// Repartitioner is the stateful, reuse-guarded CONSTRUCT+PARTITION
// handle that subsumes MapperRecord (paper Section 3, extended): it
// carries the conservative DAD/timestamp guard that skips all work
// when no input array may have changed, and — for the MULTILEVEL
// method on the distributed path — the retained coarsening ladder and
// previous partition, so a *slightly* changed mesh is warm-started by
// restricting the old partition onto the cached ladder and re-running
// only refinement (partition.Ladder), a fraction of a cold run.
//
// Repartitioner is per-rank state created inside the SPMD body via
// Session.NewRepartitioner; all ranks advance it identically, which
// keeps the cold/warm/hit decisions globally consistent without
// communication.
type Repartitioner struct {
	// MaxWarm caps consecutive warm (ladder-reusing) repartitions
	// before a full cold run rebuilds the ladder: the retained ladder
	// describes the mesh it was built from, and after many adaptation
	// epochs its clustering drifts away from the current connectivity.
	// 0 means no cap.
	MaxWarm int

	s        *Session
	spec     partition.Spec
	rec      registry.LoopRecord
	mapping  *Mapping
	nparts   int
	ladder   *partition.Ladder
	prevPart []int
	warmRuns int
	stats    RepartitionerStats
}

// RepartitionerStats counts how each Map call was served.
type RepartitionerStats struct {
	// Hits: inputs unchanged, cached mapping returned with no work.
	Hits int
	// Cold: full partitioner run (first build, non-multilevel method,
	// shape change, or MaxWarm reached).
	Cold int
	// Warm: incremental repartition off the retained ladder.
	Warm int
}

// NewRepartitioner validates the spec eagerly — an unknown method or
// a bad option combination fails here, at the declaration site — and
// returns the handle. The graph-component check (LINK/GEOMETRY) runs
// per Map call, against the graph actually constructed.
func (s *Session) NewRepartitioner(spec partition.Spec) (*Repartitioner, error) {
	if _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	return &Repartitioner{s: s, spec: spec}, nil
}

// Spec returns the partitioner spec the handle was created with.
func (rp *Repartitioner) Spec() partition.Spec { return rp.spec }

// Mapping returns the cached mapping (nil before the first Map).
func (rp *Repartitioner) Mapping() *Mapping { return rp.mapping }

// Stats returns the cumulative hit/cold/warm counts.
func (rp *Repartitioner) Stats() RepartitionerStats { return rp.stats }

// Invalidate drops the cached mapping, ladder and previous partition,
// forcing the next Map call to run cold.
func (rp *Repartitioner) Invalidate() {
	rp.mapping = nil
	rp.ladder = nil
	rp.prevPart = nil
	rp.warmRuns = 0
}

// Map is the reuse-guarded Phase A (CONSTRUCT + SET BY PARTITIONING)
// with incremental warm restarts:
//
//   - unchanged inputs (the MapperRecord guard): the cached mapping is
//     returned without rebuilding the GeoCoL graph or repartitioning;
//   - changed inputs, MULTILEVEL with a retained ladder and matching
//     shape: the graph is rebuilt (TimerGraphGen) and warm-repartitioned
//     off the ladder (TimerPartition), re-running refinement only;
//   - otherwise: the graph is rebuilt and partitioned cold, retaining
//     a fresh ladder when the distributed multilevel path ran.
//
// Collective.
func (rp *Repartitioner) Map(n int, in GeoColInput, nparts int) (*Mapping, error) {
	inputDADs := in.dads()
	for _, d := range inputDADs {
		rp.s.Reg.Track(d)
	}
	rp.s.C.Words(2 * len(inputDADs)) // the guard itself is a few comparisons
	if rp.s.Reg.Check(&rp.rec, nil, inputDADs) && rp.mapping != nil &&
		rp.nparts == nparts && rp.mapping.Size() == n {
		rp.stats.Hits++
		return rp.mapping, nil
	}
	g := rp.s.Construct(n, in)
	m, err := rp.partition(g, nparts)
	if err != nil {
		return nil, err
	}
	rp.mapping = m
	rp.nparts = nparts
	rp.s.Reg.Record(&rp.rec, nil, inputDADs)
	return m, nil
}

// partition dispatches one changed-input build: warm off the retained
// ladder when possible, cold otherwise.
func (rp *Repartitioner) partition(g *geocol.Graph, nparts int) (*Mapping, error) {
	p, err := rp.spec.ValidateFor(g, nparts)
	if err != nil {
		return nil, err
	}
	ml, isML := p.(partition.Multilevel)
	var part []int
	rp.s.timed(TimerPartition, func() {
		switch {
		case isML && rp.canWarm(g, nparts):
			part = ml.Repartition(rp.s.C, g, nparts, rp.ladder, rp.prevPart)
			rp.warmRuns++
			rp.stats.Warm++
		case isML:
			part, rp.ladder = ml.PartitionLadder(rp.s.C, g, nparts)
			rp.warmRuns = 0
			rp.stats.Cold++
		default:
			part = p.Partition(rp.s.C, g, nparts)
			rp.stats.Cold++
		}
	})
	if isML {
		rp.prevPart = part
	}
	return &Mapping{n: g.N, home: g.Home, part: part}, nil
}

// canWarm reports whether the retained ladder may serve g/nparts now.
func (rp *Repartitioner) canWarm(g *geocol.Graph, nparts int) bool {
	if !rp.ladder.Reusable(g, nparts) || len(rp.prevPart) != g.LocalN(rp.s.C.Rank()) {
		return false
	}
	return rp.MaxWarm == 0 || rp.warmRuns < rp.MaxWarm
}
