package core

import (
	"fmt"

	"chaos/internal/geocol"
	"chaos/internal/partition"
	"chaos/internal/registry"
)

// Repartitioner is the stateful, reuse-guarded CONSTRUCT+PARTITION
// handle that subsumes MapperRecord (paper Section 3, extended): it
// carries the conservative DAD/timestamp guard that skips all work
// when no input array may have changed, and — for the MULTILEVEL
// method on the distributed path — the retained coarsening ladder and
// previous partition, so a *slightly* changed mesh is warm-started by
// restricting the old partition onto the cached ladder and re-running
// only refinement (partition.Ladder), a fraction of a cold run.
//
// Warm reuse is guarded by quality, not by a counter: every warm
// repartition measures its edge cut against the cut of the last
// accepted build (cold or warm — the baseline rolls forward with the
// mesh, so gradual adaptation that legitimately inflates the cut is
// not mistaken for ladder drift), and when the ratio exceeds DriftTol
// the retained ladder has demonstrably drifted away from the current
// connectivity and is rebuilt cold in the same Map call. An adaptation
// sequence that stays local therefore warms indefinitely, while one
// that rewires the mesh re-colds exactly when the numbers say so.
//
// Repartitioner is per-rank state created inside the SPMD body via
// Session.NewRepartitioner; all ranks advance it identically (the cut
// is a collective reduction, so the drift decision is globally
// consistent by construction), which keeps the cold/warm/hit decisions
// aligned without extra communication.
type Repartitioner struct {
	// DriftTol is the warm-quality tolerance: a warm repartition whose
	// cut exceeds DriftTol x the last accepted build's cut triggers an
	// immediate cold rebuild. 0 means the default 2.0 (adaptation
	// churn legitimately inflates the cut — random rewires land long
	// chords that any partition must pay for — so the bar for calling
	// it ladder drift is a doubling); negative disables the check
	// (warm runs are always accepted).
	DriftTol float64
	// FirstTouch optionally names a cheap method for the very first
	// build: partition.MethodStream runs the streaming partitioner
	// cold and lets the next changed-input Map refine that seed through
	// MULTILEVEL's RefineLadder — the full multilevel cold start is
	// never paid. Only valid ("" or STREAM) with a MULTILEVEL spec.
	FirstTouch partition.Method

	s          *Session
	spec       partition.Spec
	rec        registry.LoopRecord
	mapping    *Mapping
	nparts     int
	ladder     *partition.Ladder
	prevPart   []int
	baseCut    float64 // cut of the last accepted build (drift baseline)
	streamSeed bool    // prevPart is a STREAM first-touch awaiting RefineLadder
	stats      RepartitionerStats
}

// RepartitionerStats counts how each Map call was served.
type RepartitionerStats struct {
	// Hits: inputs unchanged, cached mapping returned with no work.
	Hits int
	// Cold: full partitioner runs (first build, non-multilevel method,
	// shape change, or drift re-colds — those also count in Recold).
	Cold int
	// Warm: incremental repartitions off the retained ladder that
	// passed the drift check.
	Warm int
	// Recold: warm attempts whose cut drifted past DriftTol and were
	// replaced by a cold rebuild in the same Map call.
	Recold int
	// Stream: STREAM first-touch builds (FirstTouch).
	Stream int
	// Seeded: MULTILEVEL refinements of a STREAM first-touch seed
	// through RefineLadder instead of a full cold run.
	Seeded int
}

// NewRepartitioner validates the spec eagerly — an unknown method or
// a bad option combination fails here, at the declaration site — and
// returns the handle. The graph-component check (LINK/GEOMETRY) runs
// per Map call, against the graph actually constructed.
func (s *Session) NewRepartitioner(spec partition.Spec) (*Repartitioner, error) {
	if _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	return &Repartitioner{s: s, spec: spec}, nil
}

// Spec returns the partitioner spec the handle was created with.
func (rp *Repartitioner) Spec() partition.Spec { return rp.spec }

// Mapping returns the cached mapping (nil before the first Map).
func (rp *Repartitioner) Mapping() *Mapping { return rp.mapping }

// Stats returns the cumulative serve counts.
func (rp *Repartitioner) Stats() RepartitionerStats { return rp.stats }

// driftTol resolves the DriftTol default.
func (rp *Repartitioner) driftTol() float64 {
	if rp.DriftTol == 0 {
		return 2.0
	}
	return rp.DriftTol
}

// Invalidate drops the cached mapping, ladder and previous partition,
// forcing the next Map call to run cold.
func (rp *Repartitioner) Invalidate() {
	rp.mapping = nil
	rp.ladder = nil
	rp.prevPart = nil
	rp.baseCut = 0
	rp.streamSeed = false
}

// Map is the reuse-guarded Phase A (CONSTRUCT + SET BY PARTITIONING)
// with incremental warm restarts:
//
//   - unchanged inputs (the MapperRecord guard): the cached mapping is
//     returned without rebuilding the GeoCoL graph or repartitioning;
//   - changed inputs, MULTILEVEL with a retained ladder and matching
//     shape: the graph is rebuilt (TimerGraphGen) and warm-repartitioned
//     off the ladder (TimerPartition), re-running refinement only; a
//     warm cut past DriftTol x the last accepted cut re-colds on the
//     spot;
//   - otherwise: the graph is rebuilt and partitioned cold (or, on the
//     first build with FirstTouch=STREAM, streamed and later refined),
//     retaining a fresh ladder when the distributed multilevel path ran.
//
// Collective.
func (rp *Repartitioner) Map(n int, in GeoColInput, nparts int) (*Mapping, error) {
	inputDADs := in.dads()
	for _, d := range inputDADs {
		rp.s.Reg.Track(d)
	}
	rp.s.C.Words(2 * len(inputDADs)) // the guard itself is a few comparisons
	if rp.s.Reg.Check(&rp.rec, nil, inputDADs) && rp.mapping != nil &&
		rp.nparts == nparts && rp.mapping.Size() == n {
		rp.stats.Hits++
		return rp.mapping, nil
	}
	g := rp.s.Construct(n, in)
	m, err := rp.partition(g, nparts)
	if err != nil {
		return nil, err
	}
	rp.mapping = m
	rp.nparts = nparts
	rp.s.Reg.Record(&rp.rec, nil, inputDADs)
	return m, nil
}

// partition dispatches one changed-input build: warm off the retained
// ladder when possible (re-colding on drift), refine a streaming
// first-touch seed, or run cold.
func (rp *Repartitioner) partition(g *geocol.Graph, nparts int) (*Mapping, error) {
	p, err := rp.spec.ValidateFor(g, nparts)
	if err != nil {
		return nil, err
	}
	ml, isML := p.(partition.Multilevel)
	if rp.FirstTouch != "" {
		if rp.FirstTouch != partition.MethodStream {
			return nil, fmt.Errorf("core: FirstTouch %q is not supported (want STREAM)", rp.FirstTouch)
		}
		if !isML {
			return nil, fmt.Errorf("core: FirstTouch=STREAM requires a MULTILEVEL spec, have %s", rp.spec.Method)
		}
	}
	var part []int
	rp.s.timed(TimerPartition, func() {
		switch {
		case isML && rp.canWarm(g, nparts):
			part = ml.Repartition(rp.s.C, g, nparts, rp.ladder, rp.prevPart)
			cut := partition.Cut(rp.s.C, g, part)
			if tol := rp.driftTol(); tol > 0 && cut > rp.baseCut*tol {
				// The ladder's clustering no longer matches the mesh:
				// the warm result is measurably worse than the build it
				// came from. Rebuild now rather than serve it.
				part, rp.ladder = ml.PartitionLadder(rp.s.C, g, nparts)
				rp.baseCut = partition.Cut(rp.s.C, g, part)
				rp.stats.Recold++
				rp.stats.Cold++
			} else {
				rp.baseCut = cut
				rp.stats.Warm++
			}
		case isML && rp.canSeedRefine(g, nparts):
			part, rp.ladder = ml.RefineLadder(rp.s.C, g, nparts, rp.prevPart)
			rp.baseCut = partition.Cut(rp.s.C, g, part)
			rp.streamSeed = false
			rp.stats.Seeded++
		case isML && rp.FirstTouch == partition.MethodStream && rp.mapping == nil:
			part = partition.Streaming{Restreams: 1, Seed: rp.spec.Seed}.Partition(rp.s.C, g, nparts)
			rp.baseCut = partition.Cut(rp.s.C, g, part)
			rp.streamSeed = true
			rp.stats.Stream++
		case isML:
			part, rp.ladder = ml.PartitionLadder(rp.s.C, g, nparts)
			rp.baseCut = partition.Cut(rp.s.C, g, part)
			rp.stats.Cold++
		default:
			part = p.Partition(rp.s.C, g, nparts)
			rp.stats.Cold++
		}
	})
	if isML {
		rp.prevPart = part
	}
	return &Mapping{n: g.N, home: g.Home, part: part}, nil
}

// canWarm reports whether the retained ladder may serve g/nparts now.
// Reusable compares replicated shape fields, so the answer is globally
// consistent.
func (rp *Repartitioner) canWarm(g *geocol.Graph, nparts int) bool {
	return rp.ladder.Reusable(g, nparts) && len(rp.prevPart) == g.LocalN(rp.s.C.Rank())
}

// canSeedRefine reports whether prevPart is a STREAM first-touch seed
// that matches the current shape and may be refined into a ladder. The
// guard compares replicated values (mapping size, part count) so every
// rank takes the same branch.
func (rp *Repartitioner) canSeedRefine(g *geocol.Graph, nparts int) bool {
	return rp.streamSeed && rp.mapping != nil && rp.mapping.Size() == g.N &&
		rp.nparts == nparts && len(rp.prevPart) == g.LocalN(rp.s.C.Rank())
}
