package core

import (
	"strings"
	"testing"

	"chaos/internal/machine"
	"chaos/internal/mesh"
	"chaos/internal/partition"
	"chaos/internal/xrand"
)

// ringInput fills e1/e2 with an n-vertex ring (edge i: i — i+1 mod n)
// and returns the GeoColInput. Refilling with the same closure bumps
// the lastmod timestamps, which is how the tests model "the mesh may
// have changed".
func ringInput(s *Session, n int) (GeoColInput, *IntArray, *IntArray) {
	e1 := s.NewIntArray("e1", n)
	e2 := s.NewIntArray("e2", n)
	e1.FillByGlobal(func(g int) int { return g })
	e2.FillByGlobal(func(g int) int { return (g + 1) % n })
	return GeoColInput{Link1: e1, Link2: e2}, e1, e2
}

// meshInput loads a generated mesh's edge list into session arrays and
// returns a refill closure that rewires a deterministic fraction of
// the edge endpoints — the adaptation-churn model of the drift tests.
// frac=0 restores the pristine mesh; larger fractions scatter more
// endpoints uniformly, degrading any partition built for the original.
func meshInput(s *Session, m *mesh.Mesh) (GeoColInput, func(frac float64)) {
	ne := m.NEdge()
	e1 := s.NewIntArray("me1", ne)
	e2 := s.NewIntArray("me2", ne)
	fill := func(frac float64) {
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int {
			if frac > 0 && float64(xrand.Hash64(uint64(g))%10000) < frac*10000 {
				t := int(xrand.Hash64(uint64(g)^0x9e3779b97f4a7c15) % uint64(m.NNode))
				if t == m.E1[g] {
					t = (t + 1) % m.NNode
				}
				return t
			}
			return m.E2[g]
		})
	}
	fill(0)
	return GeoColInput{Link1: e1, Link2: e2}, fill
}

// TestRepartitionerModes pins the hit/warm/cold dispatch of the
// Repartitioner handle: unchanged inputs hit the cache, changed inputs
// warm-start off the retained ladder indefinitely while quality holds,
// Invalidate drops everything, and a part-count change can never be
// served warm.
func TestRepartitionerModes(t *testing.T) {
	const n, procs = 512, 4
	// CoarsenTo/ParallelThreshold are lowered so the distributed
	// ladder path (the one with retained state) engages at this size:
	// serial handoff = max(8*16, 64) = 128 < 512.
	spec := partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 16, ParallelThreshold: 64}
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, e1, _ := ringInput(s, n)

		rp, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}

		m1, err := rp.Map(n, in, procs)
		if err != nil {
			panic(err)
		}
		if st := rp.Stats(); st != (RepartitionerStats{Cold: 1}) {
			t.Errorf("after first Map: stats %+v, want 1 cold", st)
		}

		// Unchanged inputs: the cached mapping comes back untouched.
		m2, err := rp.Map(n, in, procs)
		if err != nil {
			panic(err)
		}
		if m2 != m1 {
			t.Error("unchanged inputs did not return the cached mapping")
		}
		if st := rp.Stats(); st.Hits != 1 {
			t.Errorf("stats %+v, want 1 hit", st)
		}

		// Touched inputs with identical content: the warm path serves
		// every epoch — no counter caps it, and an unchanged cut can
		// never trip the drift guard.
		for i := 0; i < 3; i++ {
			e1.FillByGlobal(func(g int) int { return g })
			if _, err := rp.Map(n, in, procs); err != nil {
				panic(err)
			}
		}
		if st := rp.Stats(); st.Warm != 3 || st.Cold != 1 || st.Recold != 0 {
			t.Errorf("stats %+v, want 3 warm / 1 cold / 0 recold", st)
		}

		// A different part count is never served from cache or ladder.
		m3, err := rp.Map(n, in, procs/2)
		if err != nil {
			panic(err)
		}
		if m3 == m1 {
			t.Error("nparts change returned the cached mapping")
		}
		if st := rp.Stats(); st.Cold != 2 {
			t.Errorf("stats %+v, want cold on nparts change", st)
		}

		// Invalidate forces cold even with unchanged inputs.
		rp.Invalidate()
		if _, err := rp.Map(n, in, procs/2); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Cold != 3 {
			t.Errorf("stats %+v, want cold after Invalidate", st)
		}

		// A changed vertex count with untouched inputs is never served
		// from cache — the cached mapping would be wrong-sized.
		mBig, err := rp.Map(2*n, in, procs/2)
		if err != nil {
			panic(err)
		}
		if mBig.Size() != 2*n {
			t.Errorf("mapping size %d after n change, want %d", mBig.Size(), 2*n)
		}
		if st := rp.Stats(); st.Cold != 4 {
			t.Errorf("stats %+v, want cold on vertex-count change", st)
		}

		// The produced mapping must stay a balanced 4-way partition.
		parts := map[int]int{}
		for _, p := range m1.LocalPart() {
			parts[p]++
		}
		for p := range parts {
			if p < 0 || p >= procs {
				t.Errorf("part %d out of range", p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionerDriftRecold pins the quality-guarded warm path at
// escalating churn: gentle adaptation keeps warming, heavy rewiring
// pushes the warm cut past DriftTol and forces a cold rebuild in the
// same Map call, and a disabled guard (DriftTol < 0) accepts any warm
// result.
func TestRepartitionerDriftRecold(t *testing.T) {
	const procs = 4
	m := mesh.Generate(2048, 11)
	spec := partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 16,
		ParallelThreshold: 64, Seed: 3}
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, fill := meshInput(s, m)

		rp, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}
		if _, err := rp.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Cold != 1 {
			t.Fatalf("stats %+v, want 1 cold", st)
		}

		// Gentle churn (0.5% of endpoints rewired): warm survives.
		fill(0.005)
		if _, err := rp.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Warm != 1 || st.Recold != 0 {
			t.Errorf("after gentle churn: stats %+v, want 1 warm / 0 recold", st)
		}

		// Heavy churn (half the endpoints rewired): the warm cut
		// degrades far past DriftTol and the ladder is rebuilt.
		fill(0.5)
		if _, err := rp.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Recold != 1 || st.Cold != 2 {
			t.Errorf("after heavy churn: stats %+v, want 1 recold / 2 cold", st)
		}

		// Same heavy mesh re-touched: the rebuilt ladder matches it, so
		// the next epoch warms again.
		fill(0.5)
		if _, err := rp.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Warm != 2 || st.Recold != 1 {
			t.Errorf("after re-touch: stats %+v, want 2 warm / 1 recold", st)
		}

		// DriftTol < 0 disables the guard: the same heavy swing is
		// served warm without a rebuild.
		loose, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}
		loose.DriftTol = -1
		fill(0)
		if _, err := loose.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		fill(0.5)
		if _, err := loose.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := loose.Stats(); st.Warm != 1 || st.Recold != 0 || st.Cold != 1 {
			t.Errorf("disabled guard: stats %+v, want 1 warm / 0 recold / 1 cold", st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionerStreamFirstTouch pins the STREAM -> MULTILEVEL
// bridge: the first build streams (no ladder cost), the first changed
// epoch refines that seed through RefineLadder into a retained ladder,
// and later epochs warm off it like any cold-built ladder.
func TestRepartitionerStreamFirstTouch(t *testing.T) {
	const procs = 4
	m := mesh.Generate(2048, 11)
	spec := partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 16,
		ParallelThreshold: 64, Seed: 3}
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, fill := meshInput(s, m)

		rp, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}
		rp.FirstTouch = partition.MethodStream

		m1, err := rp.Map(m.NNode, in, procs)
		if err != nil {
			panic(err)
		}
		if st := rp.Stats(); st != (RepartitionerStats{Stream: 1}) {
			t.Errorf("first touch: stats %+v, want 1 stream", st)
		}
		for _, p := range m1.LocalPart() {
			if p < 0 || p >= procs {
				t.Errorf("stream first touch produced part %d out of range", p)
			}
		}

		fill(0.005)
		if _, err := rp.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Seeded != 1 || st.Cold != 0 {
			t.Errorf("seed refine: stats %+v, want 1 seeded / 0 cold", st)
		}

		fill(0.005)
		if _, err := rp.Map(m.NNode, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Warm != 1 {
			t.Errorf("post-seed epoch: stats %+v, want 1 warm", st)
		}

		// FirstTouch is only meaningful for MULTILEVEL specs.
		bad, err := s.NewRepartitioner(partition.Spec{Method: partition.MethodRSB})
		if err != nil {
			panic(err)
		}
		bad.FirstTouch = partition.MethodStream
		if _, err := bad.Map(m.NNode, in, procs); err == nil ||
			!strings.Contains(err.Error(), "MULTILEVEL") {
			t.Errorf("FirstTouch on RSB: err %v, want MULTILEVEL requirement", err)
		}
		worse, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}
		worse.FirstTouch = partition.MethodRCB
		if _, err := worse.Map(m.NNode, in, procs); err == nil ||
			!strings.Contains(err.Error(), "not supported") {
			t.Errorf("FirstTouch=RCB: err %v, want not-supported error", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionerNonMultilevel pins that the handle degrades to the
// plain guard for methods without ladder support: changed inputs
// always run cold, never warm.
func TestRepartitionerNonMultilevel(t *testing.T) {
	const n, procs = 128, 4
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, e1, _ := ringInput(s, n)
		rp, err := s.NewRepartitioner(partition.Spec{Method: partition.MethodRSB})
		if err != nil {
			panic(err)
		}
		if _, err := rp.Map(n, in, procs); err != nil {
			panic(err)
		}
		e1.FillByGlobal(func(g int) int { return g })
		if _, err := rp.Map(n, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Warm != 0 || st.Cold != 2 {
			t.Errorf("stats %+v, want 2 cold / 0 warm for RSB", st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionerMatchesConstructAndPartition pins the subsumption
// contract: a cold Repartitioner.Map produces the identical mapping
// the deprecated ConstructAndPartition path computes.
func TestRepartitionerMatchesConstructAndPartition(t *testing.T) {
	const n, procs = 256, 4
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, _, _ := ringInput(s, n)

		var mr MapperRecord
		old, err := s.ConstructAndPartition(&mr, n, in, "RSB", procs)
		if err != nil {
			panic(err)
		}
		rp, err := s.NewRepartitioner(partition.Spec{Method: partition.MethodRSB})
		if err != nil {
			panic(err)
		}
		nu, err := rp.Map(n, in, procs)
		if err != nil {
			panic(err)
		}
		a, b := old.LocalPart(), nu.LocalPart()
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partitions differ at local %d: %d vs %d", i, a[i], b[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
