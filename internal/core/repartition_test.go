package core

import (
	"testing"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// ringInput fills e1/e2 with an n-vertex ring (edge i: i — i+1 mod n)
// and returns the GeoColInput. Refilling with the same closure bumps
// the lastmod timestamps, which is how the tests model "the mesh may
// have changed".
func ringInput(s *Session, n int) (GeoColInput, *IntArray, *IntArray) {
	e1 := s.NewIntArray("e1", n)
	e2 := s.NewIntArray("e2", n)
	e1.FillByGlobal(func(g int) int { return g })
	e2.FillByGlobal(func(g int) int { return (g + 1) % n })
	return GeoColInput{Link1: e1, Link2: e2}, e1, e2
}

// TestRepartitionerModes pins the hit/warm/cold dispatch of the
// Repartitioner handle: unchanged inputs hit the cache, changed
// inputs warm-start off the retained ladder, MaxWarm forces a cold
// ladder rebuild, Invalidate drops everything, and a part-count
// change can never be served warm.
func TestRepartitionerModes(t *testing.T) {
	const n, procs = 512, 4
	// CoarsenTo/ParallelThreshold are lowered so the distributed
	// ladder path (the one with retained state) engages at this size:
	// serial handoff = max(8*16, 64) = 128 < 512.
	spec := partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 16, ParallelThreshold: 64}
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, e1, _ := ringInput(s, n)

		rp, err := s.NewRepartitioner(spec)
		if err != nil {
			panic(err)
		}
		rp.MaxWarm = 2

		m1, err := rp.Map(n, in, procs)
		if err != nil {
			panic(err)
		}
		if st := rp.Stats(); st != (RepartitionerStats{Cold: 1}) {
			t.Errorf("after first Map: stats %+v, want 1 cold", st)
		}

		// Unchanged inputs: the cached mapping comes back untouched.
		m2, err := rp.Map(n, in, procs)
		if err != nil {
			panic(err)
		}
		if m2 != m1 {
			t.Error("unchanged inputs did not return the cached mapping")
		}
		if st := rp.Stats(); st.Hits != 1 {
			t.Errorf("stats %+v, want 1 hit", st)
		}

		// Touched inputs: warm ladder reuse, twice (the MaxWarm cap).
		for i := 0; i < 2; i++ {
			e1.FillByGlobal(func(g int) int { return g })
			if _, err := rp.Map(n, in, procs); err != nil {
				panic(err)
			}
		}
		if st := rp.Stats(); st.Warm != 2 || st.Cold != 1 {
			t.Errorf("stats %+v, want 2 warm / 1 cold", st)
		}

		// Third change: MaxWarm=2 reached, so the ladder is rebuilt.
		e1.FillByGlobal(func(g int) int { return g })
		if _, err := rp.Map(n, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Cold != 2 {
			t.Errorf("stats %+v, want cold rebuild after MaxWarm", st)
		}

		// A different part count is never served from cache or ladder.
		m3, err := rp.Map(n, in, procs/2)
		if err != nil {
			panic(err)
		}
		if m3 == m1 {
			t.Error("nparts change returned the cached mapping")
		}
		if st := rp.Stats(); st.Cold != 3 {
			t.Errorf("stats %+v, want cold on nparts change", st)
		}

		// Invalidate forces cold even with unchanged inputs.
		rp.Invalidate()
		if _, err := rp.Map(n, in, procs/2); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Cold != 4 {
			t.Errorf("stats %+v, want cold after Invalidate", st)
		}

		// A changed vertex count with untouched inputs is never served
		// from cache — the cached mapping would be wrong-sized.
		mBig, err := rp.Map(2*n, in, procs/2)
		if err != nil {
			panic(err)
		}
		if mBig.Size() != 2*n {
			t.Errorf("mapping size %d after n change, want %d", mBig.Size(), 2*n)
		}
		if st := rp.Stats(); st.Cold != 5 {
			t.Errorf("stats %+v, want cold on vertex-count change", st)
		}

		// The produced mapping must stay a balanced 4-way partition.
		parts := map[int]int{}
		for _, p := range m1.LocalPart() {
			parts[p]++
		}
		for p := range parts {
			if p < 0 || p >= procs {
				t.Errorf("part %d out of range", p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionerNonMultilevel pins that the handle degrades to the
// plain guard for methods without ladder support: changed inputs
// always run cold, never warm.
func TestRepartitionerNonMultilevel(t *testing.T) {
	const n, procs = 128, 4
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, e1, _ := ringInput(s, n)
		rp, err := s.NewRepartitioner(partition.Spec{Method: partition.MethodRSB})
		if err != nil {
			panic(err)
		}
		if _, err := rp.Map(n, in, procs); err != nil {
			panic(err)
		}
		e1.FillByGlobal(func(g int) int { return g })
		if _, err := rp.Map(n, in, procs); err != nil {
			panic(err)
		}
		if st := rp.Stats(); st.Warm != 0 || st.Cold != 2 {
			t.Errorf("stats %+v, want 2 cold / 0 warm for RSB", st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionerMatchesConstructAndPartition pins the subsumption
// contract: a cold Repartitioner.Map produces the identical mapping
// the deprecated ConstructAndPartition path computes.
func TestRepartitionerMatchesConstructAndPartition(t *testing.T) {
	const n, procs = 256, 4
	err := machine.Run(machine.IPSC860(procs), func(c *machine.Ctx) {
		s := NewSession(c)
		in, _, _ := ringInput(s, n)

		var mr MapperRecord
		old, err := s.ConstructAndPartition(&mr, n, in, "RSB", procs)
		if err != nil {
			panic(err)
		}
		rp, err := s.NewRepartitioner(partition.Spec{Method: partition.MethodRSB})
		if err != nil {
			panic(err)
		}
		nu, err := rp.Map(n, in, procs)
		if err != nil {
			panic(err)
		}
		a, b := old.LocalPart(), nu.LocalPart()
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partitions differ at local %d: %d vs %d", i, a[i], b[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
