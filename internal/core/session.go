// Package core is the heart of the CHAOS-Go runtime: it orchestrates
// the five phases of the paper's Figure 2 on the simulated machine.
//
//	Phase A: build the GeoCoL graph and partition it     (Construct, SetByPartitioning)
//	Phase B: partition loop iterations                   (PartitionIterations)
//	Phase C: remap arrays and loop iterations            (Redistribute)
//	Phase D: preprocess loops — the inspector            (Loop.Inspect, cached via the registry)
//	Phase E: execute loops — the executor                (Loop.Execute)
//
// A Session carries the per-rank runtime state: the DAD allocator, the
// schedule-reuse registry, and named virtual-time phase timers used by
// the experiment harness to regenerate the paper's tables.
package core

import (
	"sort"

	"chaos/internal/dist"
	"chaos/internal/machine"
	"chaos/internal/registry"
)

// Session is one rank's CHAOS runtime instance. All ranks create their
// session inside the same SPMD body; the allocator and registry advance
// identically on every rank, which keeps DAD identities and reuse
// decisions globally consistent without communication.
type Session struct {
	C    *machine.Ctx
	DADs *dist.DADAllocator
	Reg  *registry.Registry

	timers map[string]float64
}

// Timer names used by the runtime. The experiment harness reports
// these per paper-table row.
const (
	TimerGraphGen  = "graphgen"
	TimerPartition = "partition"
	TimerRemap     = "remap"
	TimerInspector = "inspector"
	TimerExecutor  = "executor"
)

// NewSession creates the per-rank runtime state.
func NewSession(c *machine.Ctx) *Session {
	return &Session{
		C:      c,
		DADs:   dist.NewDADAllocator(),
		Reg:    registry.New(),
		timers: make(map[string]float64),
	}
}

// NewTrackedSession creates a session whose registry records
// modification timestamps only for descriptors actually used as
// indirection arrays (or GeoCoL inputs) — the interprocedural
// optimization the paper lists as future work. Inspectors register
// their indirection DADs automatically; semantics are identical to the
// default registry, with less bookkeeping on data-array writes.
func NewTrackedSession(c *machine.Ctx) *Session {
	return &Session{
		C:      c,
		DADs:   dist.NewDADAllocator(),
		Reg:    registry.NewTracked(),
		timers: make(map[string]float64),
	}
}

// timed runs f and attributes the virtual time it consumed to the named
// phase timer.
func (s *Session) timed(name string, f func()) {
	start := s.C.Clock()
	f()
	s.timers[name] += s.C.Clock() - start
}

// Timer returns the accumulated virtual seconds attributed to a phase
// on this rank.
func (s *Session) Timer(name string) float64 { return s.timers[name] }

// TimerNames returns the phases with nonzero time, sorted.
func (s *Session) TimerNames() []string {
	names := make([]string, 0, len(s.timers))
	for n := range s.timers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResetTimers zeroes all phase timers.
func (s *Session) ResetTimers() {
	for n := range s.timers {
		delete(s.timers, n)
	}
}

// TimerMax returns the maximum over ranks of the named phase timer —
// the makespan figure reported in the paper's tables. Collective.
func (s *Session) TimerMax(name string) float64 {
	return s.C.MaxFloat(s.timers[name])
}
