package core

import (
	"math"
	"testing"

	"chaos/internal/machine"
)

// TestTrackedSessionEndToEnd runs the edge loop under the tracked
// registry (the paper's future-work optimization) and checks both the
// numeric result and the reuse behaviour match the default registry.
func TestTrackedSessionEndToEnd(t *testing.T) {
	const gx, gy, p = 8, 8, 4
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = xValue(g)
	}
	want := serialL2(n, e1, e2, xv)
	for g := range want {
		want[g] *= 5
	}
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewTrackedSession(c)
		if !s.Reg.Tracking() {
			t.Error("tracked session registry not tracking")
		}
		x, y, _, _, loop := buildEdgeLoop(s, n, e1, e2)
		for it := 0; it < 5; it++ {
			loop.Execute()
			// The loop writes y every iteration; under the tracked
			// registry that write is not even recorded because y is
			// never an indirection array.
			if s.Reg.LastMod(y.DAD()) != 0 {
				t.Error("data array write recorded under tracked registry")
			}
		}
		hits, misses := s.Reg.Stats()
		if hits != 4 || misses != 1 {
			t.Errorf("reuse stats = (%d,%d), want (4,1)", hits, misses)
		}
		checkY(t, y, want, "tracked")
		_ = x
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTrackedSessionCatchesIndirectionWrite verifies the conservative
// check still fires when an indirection array is modified.
func TestTrackedSessionCatchesIndirectionWrite(t *testing.T) {
	const gx, gy, p = 6, 6, 2
	n := gx * gy
	e1, e2 := gridMesh(gx, gy)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		s := NewTrackedSession(c)
		_, y, ia, _, loop := buildEdgeLoop(s, n, e1, e2)
		loop.Execute()
		_, m0 := s.Reg.Stats()
		ia.FillByGlobal(func(g int) int { return e1[g] })
		loop.Execute()
		if _, m1 := s.Reg.Stats(); m1 != m0+1 {
			t.Error("tracked registry missed an indirection write")
		}
		// Result after re-inspection is still correct (2 executions).
		xv := make([]float64, n)
		for g := range xv {
			xv[g] = xValue(g)
		}
		want := serialL2(n, e1, e2, xv)
		for g := range want {
			want[g] *= 2
		}
		for i, g := range y.MyGlobals() {
			if math.Abs(y.Data[i]-want[g]) > 1e-9*(1+math.Abs(want[g])) {
				t.Errorf("y(%d) = %v, want %v", g, y.Data[i], want[g])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
