package dist

import (
	"math/rand"
	"testing"
)

// BenchmarkBlockOwner measures the closed-form BLOCK ownership query —
// the fast path the executor takes for every regularly distributed
// reference.
func BenchmarkBlockOwner(b *testing.B) {
	d := NewBlock(53961, 64) // paper's 53K mesh on 64 processors
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		g := i % 53961
		sink += d.Owner(g) + d.Local(g)
	}
	_ = sink
}

// BenchmarkIrregularResolve measures replicated irregular ownership
// resolution, the comparison point for the distributed translation
// table ablation.
func BenchmarkIrregularResolve(b *testing.B) {
	const n, p = 53961, 64
	rng := rand.New(rand.NewSource(1))
	owner := make([]int, n)
	for g := range owner {
		owner[g] = rng.Intn(p)
	}
	d := NewIrregular(owner, p)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		g := i % n
		sink += d.Owner(g) + d.Local(g)
	}
	_ = sink
}

// BenchmarkDADAllocate measures descriptor minting, which happens on
// every array declaration and every remap.
func BenchmarkDADAllocate(b *testing.B) {
	a := NewDADAllocator()
	b.ReportAllocs()
	var sink DAD
	for i := 0; i < b.N; i++ {
		sink = a.New(Irregular, 53961)
	}
	_ = sink
}
