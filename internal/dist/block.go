package dist

// BlockDist is the Fortran D BLOCK decomposition of [0, n) over p
// ranks: rank r owns the contiguous chunk [Lo(r), Hi(r)). The n%p
// remainder elements are spread one apiece over the first n%p ranks, so
// chunk sizes differ by at most one and low ranks are never more than
// one element heavier. It is a small value type; copy it freely.
type BlockDist struct {
	n, p int
}

// NewBlock returns the BLOCK distribution of an index space of size n
// over p ranks. It panics if n is negative or p is not positive.
func NewBlock(n, p int) BlockDist {
	checkSpace("BLOCK", n, p)
	return BlockDist{n: n, p: p}
}

// Procs returns the number of ranks the space is distributed over.
func (b BlockDist) Procs() int { return b.p }

// Lo returns the first global index owned by rank (inclusive).
func (b BlockDist) Lo(rank int) int {
	checkRank("BLOCK", rank, b.p)
	q, r := b.n/b.p, b.n%b.p
	if rank < r {
		return rank * (q + 1)
	}
	return rank*q + r
}

// Hi returns one past the last global index owned by rank, so the
// rank's chunk is exactly [Lo(rank), Hi(rank)).
func (b BlockDist) Hi(rank int) int {
	return b.Lo(rank) + b.LocalSize(rank)
}

// Owner returns the rank owning global index g.
func (b BlockDist) Owner(g int) int {
	checkGlobal("BLOCK", g, b.n)
	q, r := b.n/b.p, b.n%b.p
	split := r * (q + 1) // first global index in the size-q region
	if g < split {
		return g / (q + 1)
	}
	return r + (g-split)/q
}

// Local returns the offset of g within its owner's chunk.
func (b BlockDist) Local(g int) int {
	return g - b.Lo(b.Owner(g))
}

// Global returns the global index at local offset l on rank.
func (b BlockDist) Global(rank, l int) int {
	lo, hi := b.Lo(rank), b.Hi(rank)
	checkLocal("BLOCK", l, hi-lo)
	return lo + l
}

// Size returns the extent of the index space.
func (b BlockDist) Size() int { return b.n }

// LocalSize returns the chunk size of rank.
func (b BlockDist) LocalSize(rank int) int {
	checkRank("BLOCK", rank, b.p)
	q, r := b.n/b.p, b.n%b.p
	if rank < r {
		return q + 1
	}
	return q
}

// Kind returns Block.
func (b BlockDist) Kind() Kind { return Block }

var _ Dist = BlockDist{}
