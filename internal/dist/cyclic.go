package dist

// CyclicDist is the Fortran D CYCLIC decomposition of [0, n) over p
// ranks: global index g lives on rank g mod p, and a rank's elements
// are numbered locally in ascending global order (local l on rank r is
// global l*p + r). CYCLIC is the degenerate CYCLIC(1) block-cyclic
// layout; like BlockDist it is a small value type.
type CyclicDist struct {
	n, p int
}

// NewCyclic returns the CYCLIC distribution of an index space of size n
// over p ranks. It panics if n is negative or p is not positive.
func NewCyclic(n, p int) CyclicDist {
	checkSpace("CYCLIC", n, p)
	return CyclicDist{n: n, p: p}
}

// Procs returns the number of ranks the space is distributed over.
func (c CyclicDist) Procs() int { return c.p }

// Owner returns the rank owning global index g.
func (c CyclicDist) Owner(g int) int {
	checkGlobal("CYCLIC", g, c.n)
	return g % c.p
}

// Local returns the local index of g on its owner.
func (c CyclicDist) Local(g int) int {
	checkGlobal("CYCLIC", g, c.n)
	return g / c.p
}

// Global returns the global index at local offset l on rank.
func (c CyclicDist) Global(rank, l int) int {
	checkRank("CYCLIC", rank, c.p)
	checkLocal("CYCLIC", l, c.LocalSize(rank))
	return l*c.p + rank
}

// Size returns the extent of the index space.
func (c CyclicDist) Size() int { return c.n }

// LocalSize returns the number of elements dealt to rank.
func (c CyclicDist) LocalSize(rank int) int {
	checkRank("CYCLIC", rank, c.p)
	if rank >= c.n {
		return 0
	}
	return (c.n - rank + c.p - 1) / c.p
}

// Kind returns Cyclic.
func (c CyclicDist) Kind() Kind { return Cyclic }

var _ Dist = CyclicDist{}

// BlockCyclicDist is the Fortran D CYCLIC(k) decomposition: [0, n) is
// cut into blocks of k consecutive elements (the last block may be
// short) and the blocks are dealt round-robin, block j to rank j mod p.
// A rank's elements are numbered locally in ascending global order.
type BlockCyclicDist struct {
	n, p, k int
}

// NewBlockCyclic returns the CYCLIC(k) distribution of an index space
// of size n over p ranks. It panics if n is negative, p is not
// positive, or the block size k is not positive.
func NewBlockCyclic(n, p, k int) BlockCyclicDist {
	checkSpace("BLOCK_CYCLIC", n, p)
	if k <= 0 {
		panic("dist: BLOCK_CYCLIC block size must be positive")
	}
	return BlockCyclicDist{n: n, p: p, k: k}
}

// Procs returns the number of ranks the space is distributed over.
func (bc BlockCyclicDist) Procs() int { return bc.p }

// BlockSize returns the dealing block size k.
func (bc BlockCyclicDist) BlockSize() int { return bc.k }

// Owner returns the rank owning global index g.
func (bc BlockCyclicDist) Owner(g int) int {
	checkGlobal("BLOCK_CYCLIC", g, bc.n)
	return (g / bc.k) % bc.p
}

// Local returns the local index of g on its owner. Every owned block
// preceding g's block is full (only the final global block can be
// short), so the local index is the owned-block count times k plus the
// offset within the block.
func (bc BlockCyclicDist) Local(g int) int {
	checkGlobal("BLOCK_CYCLIC", g, bc.n)
	return (g/bc.k/bc.p)*bc.k + g%bc.k
}

// Global returns the global index at local offset l on rank.
func (bc BlockCyclicDist) Global(rank, l int) int {
	checkRank("BLOCK_CYCLIC", rank, bc.p)
	checkLocal("BLOCK_CYCLIC", l, bc.LocalSize(rank))
	return (l/bc.k*bc.p+rank)*bc.k + l%bc.k
}

// Size returns the extent of the index space.
func (bc BlockCyclicDist) Size() int { return bc.n }

// LocalSize returns the number of elements dealt to rank.
func (bc BlockCyclicDist) LocalSize(rank int) int {
	checkRank("BLOCK_CYCLIC", rank, bc.p)
	full, rem := bc.n/bc.k, bc.n%bc.k
	sz := 0
	if full > rank {
		sz = (full - rank + bc.p - 1) / bc.p * bc.k
	}
	if rem > 0 && full%bc.p == rank {
		sz += rem
	}
	return sz
}

// Kind returns BlockCyclic.
func (bc BlockCyclicDist) Kind() Kind { return BlockCyclic }

var _ Dist = BlockCyclicDist{}
