package dist

import "fmt"

// DAD is a data access descriptor: the runtime identity of one
// placement of one distributed array. The descriptor records the
// distribution kind and extent, plus a unique ID minted at every
// (re)distribution, so descriptor equality certifies "same array
// layout, unchanged since this descriptor was issued" — conditions 1
// and 2 of the paper's schedule-reuse check compare exactly these
// values. DAD is a small comparable value type; the registry indexes
// its lastmod map by ID.
type DAD struct {
	// ID is unique per allocator; a remap mints a fresh ID even when
	// kind and extent are unchanged.
	ID uint64
	// Kind is the distribution family of this placement.
	Kind Kind
	// N is the global extent of the described array.
	N int
}

// Equal reports whether two descriptors denote the same placement. IDs
// are unique per allocator, so within one session ID equality implies
// full equality; comparing every field keeps Equal meaningful across
// descriptors that did not come from the same allocator.
func (d DAD) Equal(o DAD) bool { return d == o }

// String renders the descriptor for diagnostics.
func (d DAD) String() string {
	return fmt.Sprintf("DAD#%d(%s,%d)", d.ID, d.Kind, d.N)
}

// DADAllocator mints data access descriptors with session-unique IDs.
// In the SPMD runtime every rank owns a replica and allocates in
// identical program order, so the IDs agree on all ranks without
// communication. The zero allocator is not ready to use; call
// NewDADAllocator.
type DADAllocator struct {
	next uint64
}

// NewDADAllocator returns an allocator whose first descriptor gets
// ID 1 (the zero DAD is never minted, so it can serve as a sentinel).
func NewDADAllocator() *DADAllocator {
	return &DADAllocator{}
}

// New mints a descriptor for an array of extent n distributed with
// kind k.
func (a *DADAllocator) New(k Kind, n int) DAD {
	a.next++
	return DAD{ID: a.next, Kind: k, N: n}
}

// Minted returns the number of descriptors issued so far.
func (a *DADAllocator) Minted() uint64 { return a.next }
