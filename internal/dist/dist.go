// Package dist implements the distribution functions and data access
// descriptors (DADs) of the CHAOS/PARTI runtime (Ponnusamy, Saltz &
// Choudhary, SC'93).
//
// A distribution maps a global index space [0, n) onto p processors:
// every global index g has an owning rank Owner(g) and a local index
// Local(g) on that rank, and the pair is invertible via Global. The
// regular families — BLOCK, CYCLIC and BLOCK_CYCLIC, the Fortran D
// decompositions — have closed forms and resolve without communication;
// IRREGULAR distributions are given by an explicit owner map, the
// runtime form of the map array produced by the paper's
// SET distfmt BY PARTITIONING ... USING ... directive (Phase A) and the
// thing Phase C's REDISTRIBUTE installs.
//
// The DAD is the descriptor the paper's schedule-reuse check (Section
// 3) keys on: remapping an array mints a fresh DAD, so descriptor
// equality certifies that an array's placement is unchanged since an
// inspector (Phase D) recorded it, letting the executor (Phase E) skip
// re-inspection. DADAllocator mints descriptors with unique IDs; every
// rank of the SPMD runtime allocates in identical program order, so IDs
// agree across ranks without communication.
package dist

import "fmt"

// Kind identifies a distribution family for DAD bookkeeping and for
// dispatching between closed-form and table-based index translation.
type Kind int

const (
	// Block is the Fortran D BLOCK decomposition: contiguous,
	// nearly equal chunks in rank order.
	Block Kind = iota
	// Cyclic is the Fortran D CYCLIC decomposition: element g lives
	// on rank g mod p.
	Cyclic
	// BlockCyclic is the Fortran D CYCLIC(k) decomposition: blocks
	// of k consecutive elements dealt round-robin.
	BlockCyclic
	// Irregular is an explicit owner map computed at runtime by a
	// partitioner; it has no closed form and irregular arrays are
	// translated through the distributed translation table.
	Irregular
)

// String returns the Fortran D spelling of the distribution kind.
func (k Kind) String() string {
	switch k {
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	case BlockCyclic:
		return "BLOCK_CYCLIC"
	case Irregular:
		return "IRREGULAR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dist is a closed-form description of how a one-dimensional index
// space [0, Size()) is laid out across ranks 0..p-1. Implementations
// answer ownership queries locally, with no communication; the
// distributed translation table (package ttable) provides the same
// answers for irregular distributions too large to replicate.
type Dist interface {
	// Owner returns the rank that owns global index g.
	Owner(g int) int
	// Local returns the local index of global index g on Owner(g).
	Local(g int) int
	// Global is the inverse of (Owner, Local): the global index of
	// local index l on the given rank.
	Global(rank, l int) int
	// Size returns the extent of the distributed index space.
	Size() int
	// LocalSize returns the number of elements owned by rank.
	LocalSize(rank int) int
	// Kind returns the distribution family.
	Kind() Kind
}

// checkSpace validates a global extent and processor count shared by
// every distribution constructor.
func checkSpace(name string, n, p int) {
	if n < 0 {
		panic(fmt.Sprintf("dist: %s size %d negative", name, n))
	}
	if p <= 0 {
		panic(fmt.Sprintf("dist: %s over %d processors", name, p))
	}
}

// checkGlobal validates a global index against the extent n.
func checkGlobal(name string, g, n int) {
	if g < 0 || g >= n {
		panic(fmt.Sprintf("dist: %s global index %d out of range [0,%d)", name, g, n))
	}
}

// checkLocal validates a local index against a rank's local size.
func checkLocal(name string, l, size int) {
	if l < 0 || l >= size {
		panic(fmt.Sprintf("dist: %s local index %d out of range [0,%d)", name, l, size))
	}
}

// checkRank validates a rank against the processor count p.
func checkRank(name string, rank, p int) {
	if rank < 0 || rank >= p {
		panic(fmt.Sprintf("dist: %s rank %d out of range [0,%d)", name, rank, p))
	}
}
