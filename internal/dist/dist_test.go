package dist

import (
	"math/rand"
	"strings"
	"testing"
)

// checkDist verifies the closed-form contract every Dist must satisfy:
// Owner/Local/Global round-trip both ways, LocalSize consistent with
// ownership, and every global owned exactly once.
func checkDist(t *testing.T, d Dist, p int) {
	t.Helper()
	n := d.Size()
	seen := make([]bool, n)
	perRank := make([]int, p)
	for g := 0; g < n; g++ {
		o, l := d.Owner(g), d.Local(g)
		if o < 0 || o >= p {
			t.Fatalf("Owner(%d) = %d out of range [0,%d)", g, o, p)
		}
		if l < 0 || l >= d.LocalSize(o) {
			t.Fatalf("Local(%d) = %d out of range [0,%d) on rank %d", g, l, d.LocalSize(o), o)
		}
		if back := d.Global(o, l); back != g {
			t.Fatalf("Global(%d,%d) = %d, want %d", o, l, back, g)
		}
		seen[g] = true
		perRank[o]++
	}
	total := 0
	for r := 0; r < p; r++ {
		sz := d.LocalSize(r)
		if sz != perRank[r] {
			t.Fatalf("rank %d: LocalSize = %d but owns %d globals", r, sz, perRank[r])
		}
		total += sz
		// Global must enumerate the rank's elements, each mapping back.
		for l := 0; l < sz; l++ {
			g := d.Global(r, l)
			if d.Owner(g) != r || d.Local(g) != l {
				t.Fatalf("rank %d local %d: Global=%d maps back to (%d,%d)",
					r, l, g, d.Owner(g), d.Local(g))
			}
		}
	}
	if total != n {
		t.Fatalf("LocalSize sums to %d, want %d", total, n)
	}
	for g, ok := range seen {
		if !ok {
			t.Fatalf("global %d never owned", g)
		}
	}
}

// spaceGrid is the (n, p) matrix the property tests sweep: empty
// spaces, fewer elements than ranks, exact multiples and remainders.
var spaceGrid = []struct{ n, p int }{
	{0, 1}, {0, 4}, {1, 1}, {1, 5}, {3, 7}, {7, 3},
	{8, 4}, {10, 4}, {13, 4}, {100, 7}, {64, 64}, {65, 64},
}

func TestBlockContract(t *testing.T) {
	for _, tc := range spaceGrid {
		checkDist(t, NewBlock(tc.n, tc.p), tc.p)
	}
}

func TestCyclicContract(t *testing.T) {
	for _, tc := range spaceGrid {
		checkDist(t, NewCyclic(tc.n, tc.p), tc.p)
	}
}

func TestBlockCyclicContract(t *testing.T) {
	for _, tc := range spaceGrid {
		for _, k := range []int{1, 2, 3, 5, 16} {
			checkDist(t, NewBlockCyclic(tc.n, tc.p, k), tc.p)
		}
	}
}

func TestIrregularContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range spaceGrid {
		owner := make([]int, tc.n)
		for g := range owner {
			owner[g] = rng.Intn(tc.p)
		}
		checkDist(t, NewIrregular(owner, tc.p), tc.p)
	}
}

func TestBlockLoHiPartition(t *testing.T) {
	for _, tc := range spaceGrid {
		b := NewBlock(tc.n, tc.p)
		// Chunks must tile [0, n) exactly, in rank order.
		next := 0
		for r := 0; r < tc.p; r++ {
			lo, hi := b.Lo(r), b.Hi(r)
			if lo != next {
				t.Fatalf("n=%d p=%d rank %d: Lo = %d, want %d", tc.n, tc.p, r, lo, next)
			}
			if hi-lo != b.LocalSize(r) {
				t.Fatalf("n=%d p=%d rank %d: Hi-Lo = %d, LocalSize = %d",
					tc.n, tc.p, r, hi-lo, b.LocalSize(r))
			}
			for g := lo; g < hi; g++ {
				if b.Owner(g) != r {
					t.Fatalf("n=%d p=%d: Owner(%d) = %d, want %d", tc.n, tc.p, g, b.Owner(g), r)
				}
			}
			next = hi
		}
		if next != tc.n {
			t.Fatalf("n=%d p=%d: chunks end at %d", tc.n, tc.p, next)
		}
	}
}

func TestBlockRemainderSpreading(t *testing.T) {
	// 10 over 4: sizes 3,3,2,2 — remainder elements go to low ranks
	// and sizes differ by at most one.
	b := NewBlock(10, 4)
	want := []int{3, 3, 2, 2}
	for r, w := range want {
		if b.LocalSize(r) != w {
			t.Errorf("LocalSize(%d) = %d, want %d", r, b.LocalSize(r), w)
		}
	}
	if b.Lo(0) != 0 || b.Hi(0) != 3 || b.Lo(2) != 6 || b.Hi(3) != 10 {
		t.Errorf("bounds: [%d,%d) [%d,%d) [%d,%d) [%d,%d)",
			b.Lo(0), b.Hi(0), b.Lo(1), b.Hi(1), b.Lo(2), b.Hi(2), b.Lo(3), b.Hi(3))
	}
	if b.Procs() != 4 || b.Size() != 10 {
		t.Error("Procs/Size wrong")
	}
}

func TestCyclicDealing(t *testing.T) {
	c := NewCyclic(7, 3)
	// 0,3,6 → rank 0; 1,4 → rank 1; 2,5 → rank 2.
	wantOwner := []int{0, 1, 2, 0, 1, 2, 0}
	wantLocal := []int{0, 0, 0, 1, 1, 1, 2}
	for g := range wantOwner {
		if c.Owner(g) != wantOwner[g] || c.Local(g) != wantLocal[g] {
			t.Errorf("g=%d: (%d,%d), want (%d,%d)", g, c.Owner(g), c.Local(g), wantOwner[g], wantLocal[g])
		}
	}
	if c.LocalSize(0) != 3 || c.LocalSize(1) != 2 || c.LocalSize(2) != 2 {
		t.Error("CYCLIC LocalSize wrong")
	}
	if c.Procs() != 3 || c.Size() != 7 {
		t.Error("Procs/Size wrong")
	}
}

func TestBlockCyclicDealing(t *testing.T) {
	bc := NewBlockCyclic(10, 2, 3)
	// Blocks: [0,3)→0, [3,6)→1, [6,9)→0, [9,10)→1.
	wantOwner := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1}
	wantLocal := []int{0, 1, 2, 0, 1, 2, 3, 4, 5, 3}
	for g := range wantOwner {
		if bc.Owner(g) != wantOwner[g] || bc.Local(g) != wantLocal[g] {
			t.Errorf("g=%d: (%d,%d), want (%d,%d)", g, bc.Owner(g), bc.Local(g), wantOwner[g], wantLocal[g])
		}
	}
	if bc.LocalSize(0) != 6 || bc.LocalSize(1) != 4 {
		t.Errorf("LocalSize = (%d,%d), want (6,4)", bc.LocalSize(0), bc.LocalSize(1))
	}
	if bc.BlockSize() != 3 || bc.Procs() != 2 || bc.Size() != 10 {
		t.Error("BlockSize/Procs/Size wrong")
	}
}

func TestBlockCyclicOfOneIsCyclic(t *testing.T) {
	// CYCLIC(1) must agree with CYCLIC everywhere.
	const n, p = 23, 5
	bc, c := NewBlockCyclic(n, p, 1), NewCyclic(n, p)
	for g := 0; g < n; g++ {
		if bc.Owner(g) != c.Owner(g) || bc.Local(g) != c.Local(g) {
			t.Fatalf("g=%d: CYCLIC(1) (%d,%d) vs CYCLIC (%d,%d)",
				g, bc.Owner(g), bc.Local(g), c.Owner(g), c.Local(g))
		}
	}
}

func TestBlockCyclicOfWholeSpaceIsBlockOnRank0(t *testing.T) {
	// With k ≥ n everything is one block on rank 0.
	bc := NewBlockCyclic(9, 4, 16)
	for g := 0; g < 9; g++ {
		if bc.Owner(g) != 0 || bc.Local(g) != g {
			t.Fatalf("g=%d: (%d,%d)", g, bc.Owner(g), bc.Local(g))
		}
	}
	if bc.LocalSize(0) != 9 || bc.LocalSize(1) != 0 {
		t.Error("LocalSize wrong")
	}
}

func TestIrregularAscendingGlobalOrder(t *testing.T) {
	// remap.Build and ttable's replicated form assume local index =
	// position in the rank's ascending list of globals.
	owner := []int{2, 0, 1, 0, 2, 2, 1, 0}
	d := NewIrregular(owner, 3)
	wantMine := [][]int{{1, 3, 7}, {2, 6}, {0, 4, 5}}
	for r, mine := range wantMine {
		if got := d.MyGlobals(r); len(got) != len(mine) {
			t.Fatalf("rank %d owns %v, want %v", r, got, mine)
		}
		for l, g := range mine {
			if d.Global(r, l) != g || d.Local(g) != l || d.Owner(g) != r {
				t.Errorf("rank %d local %d: got global %d, Local(%d)=%d, Owner=%d",
					r, l, d.Global(r, l), g, d.Local(g), d.Owner(g))
			}
		}
		if d.LocalSize(r) != len(mine) {
			t.Errorf("LocalSize(%d) = %d", r, d.LocalSize(r))
		}
	}
	if d.Procs() != 3 || d.Size() != len(owner) {
		t.Error("Procs/Size wrong")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Block:       "BLOCK",
		Cyclic:      "CYCLIC",
		BlockCyclic: "BLOCK_CYCLIC",
		Irregular:   "IRREGULAR",
		Kind(99):    "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestKindsReportedByDists(t *testing.T) {
	if NewBlock(4, 2).Kind() != Block ||
		NewCyclic(4, 2).Kind() != Cyclic ||
		NewBlockCyclic(4, 2, 2).Kind() != BlockCyclic ||
		NewIrregular([]int{0, 1}, 2).Kind() != Irregular {
		t.Error("Kind() mismatch")
	}
}

func TestDADAllocatorMintsUniqueIDs(t *testing.T) {
	a := NewDADAllocator()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		d := a.New(Block, 10)
		if d.ID == 0 {
			t.Fatal("allocator minted the zero ID")
		}
		if seen[d.ID] {
			t.Fatalf("duplicate ID %d", d.ID)
		}
		seen[d.ID] = true
	}
	if a.Minted() != 100 {
		t.Errorf("Minted = %d, want 100", a.Minted())
	}
}

func TestDADAllocatorsAgreeAcrossReplicas(t *testing.T) {
	// The SPMD runtime relies on replicated allocators producing
	// identical descriptors when driven in identical program order.
	a, b := NewDADAllocator(), NewDADAllocator()
	for i := 0; i < 10; i++ {
		da, db := a.New(Irregular, 50+i), b.New(Irregular, 50+i)
		if !da.Equal(db) {
			t.Fatalf("replica divergence at %d: %v vs %v", i, da, db)
		}
	}
}

func TestDADEqual(t *testing.T) {
	a := NewDADAllocator()
	d1 := a.New(Block, 100)
	d2 := a.New(Block, 100)
	if !d1.Equal(d1) {
		t.Error("DAD not equal to itself")
	}
	if d1.Equal(d2) {
		t.Error("fresh mint with same kind/extent must not be Equal (remap invalidation)")
	}
	if d1.Equal(DAD{ID: d1.ID, Kind: Irregular, N: 100}) ||
		d1.Equal(DAD{ID: d1.ID, Kind: Block, N: 99}) {
		t.Error("Equal ignored Kind or N")
	}
}

func TestDADString(t *testing.T) {
	d := DAD{ID: 7, Kind: Irregular, N: 42}
	if got := d.String(); got != "DAD#7(IRREGULAR,42)" {
		t.Errorf("String() = %q", got)
	}
}

// mustPanic asserts f panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want substring %q", r, want)
		}
	}()
	f()
}

func TestConstructorValidation(t *testing.T) {
	mustPanic(t, "negative", func() { NewBlock(-1, 2) })
	mustPanic(t, "processors", func() { NewBlock(10, 0) })
	mustPanic(t, "negative", func() { NewCyclic(-4, 2) })
	mustPanic(t, "processors", func() { NewCyclic(4, -1) })
	mustPanic(t, "block size", func() { NewBlockCyclic(4, 2, 0) })
	mustPanic(t, "processors", func() { NewBlockCyclic(4, 0, 2) })
	mustPanic(t, "out of range", func() { NewIrregular([]int{0, 3}, 2) })
	mustPanic(t, "out of range", func() { NewIrregular([]int{-1}, 2) })
	mustPanic(t, "processors", func() { NewIrregular(nil, 0) })
}

func TestQueryValidation(t *testing.T) {
	b := NewBlock(10, 3)
	mustPanic(t, "out of range", func() { b.Owner(10) })
	mustPanic(t, "out of range", func() { b.Owner(-1) })
	mustPanic(t, "rank", func() { b.Lo(3) })
	mustPanic(t, "rank", func() { b.LocalSize(-1) })
	mustPanic(t, "out of range", func() { b.Global(0, 4) })

	c := NewCyclic(10, 3)
	mustPanic(t, "out of range", func() { c.Owner(10) })
	mustPanic(t, "out of range", func() { c.Local(-1) })
	mustPanic(t, "rank", func() { c.Global(3, 0) })
	mustPanic(t, "out of range", func() { c.Global(0, 4) })
	mustPanic(t, "rank", func() { c.LocalSize(3) })

	bc := NewBlockCyclic(10, 2, 3)
	mustPanic(t, "out of range", func() { bc.Owner(10) })
	mustPanic(t, "out of range", func() { bc.Local(10) })
	mustPanic(t, "rank", func() { bc.Global(2, 0) })
	mustPanic(t, "out of range", func() { bc.Global(0, 6) })
	mustPanic(t, "rank", func() { bc.LocalSize(2) })

	ir := NewIrregular([]int{0, 1, 0}, 2)
	mustPanic(t, "out of range", func() { ir.Owner(3) })
	mustPanic(t, "out of range", func() { ir.Local(-1) })
	mustPanic(t, "rank", func() { ir.Global(2, 0) })
	mustPanic(t, "out of range", func() { ir.Global(1, 1) })
	mustPanic(t, "rank", func() { ir.LocalSize(2) })
	mustPanic(t, "rank", func() { ir.MyGlobals(-1) })
}
