package dist_test

import (
	"math/rand"
	"testing"

	"chaos/internal/dist"
	"chaos/internal/machine"
	"chaos/internal/ttable"
)

// TestIrregularAgreesWithTranslationTable checks the cross-layer
// numbering contract: building the distributed translation table from
// per-rank global lists and gathering it back (Replicated) must yield
// exactly the IrregularDist built directly from the owner map — same
// owners, same ascending-global-order locals.
func TestIrregularAgreesWithTranslationTable(t *testing.T) {
	const n, p = 120, 4
	rng := rand.New(rand.NewSource(93))
	owner := make([]int, n)
	for g := range owner {
		owner[g] = rng.Intn(p)
	}
	ref := dist.NewIrregular(owner, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		var mine []int
		for g, o := range owner {
			if o == c.Rank() {
				mine = append(mine, g)
			}
		}
		tab := ttable.Build(c, n, mine)
		rep := tab.Replicated(c)
		for g := 0; g < n; g++ {
			if rep.Owner(g) != ref.Owner(g) || rep.Local(g) != ref.Local(g) {
				t.Errorf("g=%d: table (%d,%d), IrregularDist (%d,%d)",
					g, rep.Owner(g), rep.Local(g), ref.Owner(g), ref.Local(g))
			}
		}
		// The table's own resolution must agree too.
		qs := make([]int, n)
		for i := range qs {
			qs[i] = i
		}
		owners, locals := tab.Resolve(c, qs)
		for g := 0; g < n; g++ {
			if owners[g] != ref.Owner(g) || locals[g] != ref.Local(g) {
				t.Errorf("resolve g=%d: (%d,%d), want (%d,%d)",
					g, owners[g], locals[g], ref.Owner(g), ref.Local(g))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegularResolverOverEveryKind runs every closed-form distribution
// through the ttable.Regular adapter, which is how loops over
// regularly distributed arrays resolve ownership without communication.
func TestRegularResolverOverEveryKind(t *testing.T) {
	const n, p = 31, 3
	dists := []dist.Dist{
		dist.NewBlock(n, p),
		dist.NewCyclic(n, p),
		dist.NewBlockCyclic(n, p, 4),
	}
	for _, d := range dists {
		d := d
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			r := ttable.Regular{D: d}
			if r.Size() != n || r.Kind() != d.Kind() {
				t.Errorf("%v: Regular metadata wrong", d.Kind())
			}
			qs := []int{0, n - 1, n / 2, n / 2}
			owners, locals := r.Resolve(c, qs)
			for i, g := range qs {
				if owners[i] != d.Owner(g) || locals[i] != d.Local(g) {
					t.Errorf("%v: resolve(%d) = (%d,%d), want (%d,%d)",
						d.Kind(), g, owners[i], locals[i], d.Owner(g), d.Local(g))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
