package dist

import "fmt"

// IrregularDist is a fully replicated irregular distribution: an
// explicit owner map, as produced by a graph or coordinate partitioner
// (paper Phase A) and installed by REDISTRIBUTE (Phase C). Local
// indices are assigned in ascending global order within each rank —
// the same numbering the remap plan (remap.Build) and the distributed
// translation table (ttable.Build's replicated form) produce, so the
// three layers agree on where every element lands.
//
// The replicated form costs O(n) memory per rank; the paper's runtime
// holds large irregular distributions in the distributed translation
// table instead (package ttable) and uses this type for references,
// tests and small runs.
type IrregularDist struct {
	owner []int   // owner[g] = owning rank of global g
	local []int   // local[g] = local index of g on owner[g]
	mine  [][]int // mine[r] = globals owned by rank r, ascending
	p     int
}

// NewIrregular builds the irregular distribution described by the
// owner map (owner[g] = owning rank of global index g) over p ranks.
// The map is copied. It panics if p is not positive or any owner is
// out of range.
func NewIrregular(owner []int, p int) *IrregularDist {
	checkSpace("IRREGULAR", len(owner), p)
	d := &IrregularDist{
		owner: append([]int(nil), owner...),
		local: make([]int, len(owner)),
		mine:  make([][]int, p),
		p:     p,
	}
	for g, o := range d.owner {
		if o < 0 || o >= p {
			panic(fmt.Sprintf("dist: IRREGULAR owner[%d] = %d out of range [0,%d)", g, o, p))
		}
		d.local[g] = len(d.mine[o])
		d.mine[o] = append(d.mine[o], g)
	}
	return d
}

// Procs returns the number of ranks the space is distributed over.
func (d *IrregularDist) Procs() int { return d.p }

// Owner returns the rank owning global index g.
func (d *IrregularDist) Owner(g int) int {
	checkGlobal("IRREGULAR", g, len(d.owner))
	return d.owner[g]
}

// Local returns the local index of g on its owner: g's position among
// the owner's globals in ascending order.
func (d *IrregularDist) Local(g int) int {
	checkGlobal("IRREGULAR", g, len(d.owner))
	return d.local[g]
}

// Global returns the global index at local offset l on rank.
func (d *IrregularDist) Global(rank, l int) int {
	checkRank("IRREGULAR", rank, d.p)
	checkLocal("IRREGULAR", l, len(d.mine[rank]))
	return d.mine[rank][l]
}

// Size returns the extent of the index space.
func (d *IrregularDist) Size() int { return len(d.owner) }

// LocalSize returns the number of elements owned by rank.
func (d *IrregularDist) LocalSize(rank int) int {
	checkRank("IRREGULAR", rank, d.p)
	return len(d.mine[rank])
}

// MyGlobals returns the globals owned by rank in local (ascending
// global) order. Do not mutate.
func (d *IrregularDist) MyGlobals(rank int) []int {
	checkRank("IRREGULAR", rank, d.p)
	return d.mine[rank]
}

// Kind returns Irregular.
func (d *IrregularDist) Kind() Kind { return Irregular }

var _ Dist = (*IrregularDist)(nil)
