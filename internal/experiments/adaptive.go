package experiments

import (
	"fmt"
	"sync"

	"chaos/internal/core"
	"chaos/internal/machine"
	"chaos/internal/mesh"
	"chaos/internal/partition"
	"chaos/internal/xrand"
)

// This file is the adaptive-mesh REDISTRIBUTE study the paper could
// not afford to run (the ROADMAP's "Table-2-style column"): an Euler
// edge sweep over a mesh whose connectivity is adapted every epoch (a
// fraction of edges rewired), repartitioned each time through a
// core.Repartitioner. Epoch 0 partitions cold; later epochs reuse the
// retained multilevel coarsening ladder and re-run refinement only,
// and the study reports the warm-vs-cold partition-time and edge-cut
// comparison per epoch, plus the remap traffic each repartition
// causes.

// AdaptiveConfig configures the adaptive-mesh repartitioning study.
type AdaptiveConfig struct {
	Procs  int
	NNode  int
	Epochs int     // mesh adaptations after the initial build
	Rewire float64 // fraction of edges rewired per adaptation
	Iters  int     // executor iterations per epoch
	Spec   partition.Spec
	Seed   uint64
	// ColdBaseline additionally runs a cold partition of every adapted
	// epoch's graph (through a second, always-invalidated
	// Repartitioner), so each warm row carries the exact same-graph
	// cold comparison. Roughly doubles the study's partitioning work.
	ColdBaseline bool
}

// AdaptiveEpoch is one row of the study: the repartition mode and
// cost of one adaptation epoch.
type AdaptiveEpoch struct {
	Epoch int `json:"epoch"`
	// Mode is "cold" (full partitioner run) or "warm" (ladder reuse).
	Mode string `json:"mode"`
	// PartitionS is the virtual partition time of this epoch's Map
	// call (max over ranks).
	PartitionS float64 `json:"partition_s"`
	// ColdPartitionS is the same-graph cold reference time (0 when
	// ColdBaseline is off or the epoch itself ran cold).
	ColdPartitionS float64 `json:"cold_partition_s,omitempty"`
	// Cut is the global edge cut of the produced partition on this
	// epoch's connectivity.
	Cut int `json:"cut"`
	// ColdCut is the same-graph cold reference cut (0 as above).
	ColdCut int `json:"cold_cut,omitempty"`
	// MovedVertices counts vertices whose owner changed relative to
	// the previous epoch's mapping — the per-array remap traffic of
	// the REDISTRIBUTE that follows.
	MovedVertices int `json:"moved_vertices"`
	// RemapS and ExecutorS are the virtual remap and executor times of
	// the epoch (max over ranks).
	RemapS    float64 `json:"remap_s"`
	ExecutorS float64 `json:"executor_s"`
}

// AdaptiveReport is the machine-readable result of AdaptiveStudy.
type AdaptiveReport struct {
	Workload string          `json:"workload"`
	Procs    int             `json:"procs"`
	Spec     string          `json:"spec"`
	Rewire   float64         `json:"rewire"`
	Iters    int             `json:"iters_per_epoch"`
	Epochs   []AdaptiveEpoch `json:"epochs"`
	// WarmMeanS / ColdMeanS are the mean warm partition time and the
	// mean of its same-graph cold references (ColdBaseline only).
	WarmMeanS float64 `json:"warm_mean_s,omitempty"`
	ColdMeanS float64 `json:"cold_mean_s,omitempty"`
	// WarmOverCold is WarmMeanS / ColdMeanS — the headline incremental
	// repartitioning payoff (smaller is better).
	WarmOverCold float64 `json:"warm_over_cold,omitempty"`
	// WarmCutOverCold is the mean ratio of warm cut to same-graph cold
	// cut (1.0 = no quality loss).
	WarmCutOverCold float64 `json:"warm_cut_over_cold,omitempty"`
}

// rewireEpochs precomputes the edge lists of every adaptation epoch:
// each epoch re-points one endpoint of Rewire×nedge random edges, so
// every rank sees identical "mesh adaptation" results.
func rewireEpochs(m *mesh.Mesh, epochs int, rewire float64, seed uint64) (e1s, e2s [][]int) {
	nedge := m.NEdge()
	e1s = make([][]int, epochs+1)
	e2s = make([][]int, epochs+1)
	e1s[0], e2s[0] = m.E1, m.E2
	rng := xrand.New(seed)
	for ep := 1; ep <= epochs; ep++ {
		e1 := append([]int(nil), e1s[ep-1]...)
		e2 := append([]int(nil), e2s[ep-1]...)
		for k := 0; k < int(rewire*float64(nedge)); k++ {
			e := rng.Intn(nedge)
			e2[e] = rng.Intn(m.NNode)
		}
		e1s[ep], e2s[ep] = e1, e2
	}
	return e1s, e2s
}

// cutOf counts edges crossing parts under the full (gathered) map.
func cutOf(e1, e2, full []int) int {
	cut := 0
	for i := range e1 {
		if e1[i] != e2[i] && full[e1[i]] != full[e2[i]] {
			cut++
		}
	}
	return cut
}

// AdaptiveStudy runs the adaptive-mesh repartitioning pipeline and
// returns the per-epoch cold/warm table.
func AdaptiveStudy(cfg AdaptiveConfig) (*AdaptiveReport, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 4
	}
	if cfg.Rewire <= 0 {
		cfg.Rewire = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 99
	}
	if cfg.NNode <= 0 {
		cfg.NNode = 2000
	}
	m := mesh.Generate(cfg.NNode, 1993)
	nedge := m.NEdge()
	e1s, e2s := rewireEpochs(m, cfg.Epochs, cfg.Rewire, cfg.Seed)

	rep := &AdaptiveReport{
		Workload: fmt.Sprintf("mesh%d", m.NNode),
		Procs:    cfg.Procs,
		Spec:     cfg.Spec.String(),
		Rewire:   cfg.Rewire,
		Iters:    cfg.Iters,
	}
	var mu sync.Mutex
	err := machine.Run(machine.IPSC860(cfg.Procs), func(c *machine.Ctx) {
		s := core.NewSession(c)
		x := s.NewArray("x", m.NNode)
		y := s.NewArray("y", m.NNode)
		x.FillByGlobal(m.InitialState)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", nedge)
		e2 := s.NewIntArray("end_pt2", nedge)
		e1.FillByGlobal(func(g int) int { return m.E1[g] })
		e2.FillByGlobal(func(g int) int { return m.E2[g] })
		in := core.GeoColInput{Link1: e1, Link2: e2}

		rp, err := s.NewRepartitioner(cfg.Spec)
		if err != nil {
			panic(err)
		}
		var coldRp *core.Repartitioner
		if cfg.ColdBaseline {
			if coldRp, err = s.NewRepartitioner(cfg.Spec); err != nil {
				panic(err)
			}
		}

		loop := s.NewLoop("sweep", nedge,
			[]core.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]core.Write{{Arr: y, Ind: e1, Op: core.Add}, {Arr: y, Ind: e2, Op: core.Add}},
			mesh.EulerFlops, mesh.EulerFlux)
		loop.PartitionIterations(0)

		var prevFull []int
		for ep := 0; ep <= cfg.Epochs; ep++ {
			if ep > 0 {
				cur1, cur2 := e1s[ep], e2s[ep]
				e1.FillByGlobal(func(g int) int { return cur1[g] })
				e2.FillByGlobal(func(g int) int { return cur2[g] })
			}
			statsBefore := rp.Stats()
			pt0 := s.Timer(core.TimerPartition)
			mapping, err := rp.Map(m.NNode, in, cfg.Procs)
			if err != nil {
				panic(err)
			}
			partS := c.MaxFloat(s.Timer(core.TimerPartition) - pt0)
			mode := "cold"
			if st := rp.Stats(); st.Warm > statsBefore.Warm {
				mode = "warm"
			}

			full := c.AllGatherInts(mapping.LocalPart())
			moved := 0
			if prevFull != nil {
				for i, p := range full {
					if prevFull[i] != p {
						moved++
					}
				}
			}
			prevFull = full

			var coldS float64
			var coldCut int
			if coldRp != nil && ep > 0 {
				coldRp.Invalidate()
				ct0 := s.Timer(core.TimerPartition)
				cm, err := coldRp.Map(m.NNode, in, cfg.Procs)
				if err != nil {
					panic(err)
				}
				coldS = c.MaxFloat(s.Timer(core.TimerPartition) - ct0)
				coldFull := c.AllGatherInts(cm.LocalPart())
				coldCut = cutOf(e1s[ep], e2s[ep], coldFull)
			}

			rm0 := s.Timer(core.TimerRemap)
			s.Redistribute(mapping, []*core.Array{x, y}, nil)
			remapS := c.MaxFloat(s.Timer(core.TimerRemap) - rm0)

			ex0 := s.Timer(core.TimerExecutor)
			for it := 0; it < cfg.Iters; it++ {
				loop.Execute()
			}
			exS := c.MaxFloat(s.Timer(core.TimerExecutor) - ex0)

			if c.Rank() == 0 {
				mu.Lock()
				rep.Epochs = append(rep.Epochs, AdaptiveEpoch{
					Epoch: ep, Mode: mode,
					PartitionS: partS, ColdPartitionS: coldS,
					Cut: cutOf(e1s[ep], e2s[ep], full), ColdCut: coldCut,
					MovedVertices: moved, RemapS: remapS, ExecutorS: exS,
				})
				mu.Unlock()
			}
		}
	})
	if err != nil {
		return nil, err
	}

	warmN := 0
	for _, e := range rep.Epochs {
		if e.Mode != "warm" || e.ColdPartitionS == 0 {
			continue
		}
		warmN++
		rep.WarmMeanS += e.PartitionS
		rep.ColdMeanS += e.ColdPartitionS
		rep.WarmCutOverCold += float64(e.Cut) / float64(e.ColdCut)
	}
	if warmN > 0 {
		rep.WarmMeanS /= float64(warmN)
		rep.ColdMeanS /= float64(warmN)
		rep.WarmOverCold = rep.WarmMeanS / rep.ColdMeanS
		rep.WarmCutOverCold /= float64(warmN)
	}
	return rep, nil
}
