package experiments

import (
	"encoding/json"
	"testing"

	"chaos/internal/partition"
)

// TestAdaptiveWarmRepartitionPays pins the incremental-repartitioning
// acceptance bar on the adaptive scenario (5% of edges rewired per
// epoch): a warm Repartitioner run must reuse the retained ladder and
// finish in at most half the virtual partition time of a cold
// MULTILEVEL run on the same adapted graph, with an edge cut no more
// than 1.10x the cold cut.
func TestAdaptiveWarmRepartitionPays(t *testing.T) {
	rep, err := AdaptiveStudy(AdaptiveConfig{
		Procs: 4, NNode: 3000, Epochs: 3, Rewire: 0.05, Iters: 2,
		Spec:         partition.Spec{Method: partition.MethodMultilevel, ParallelThreshold: 256},
		ColdBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 4 {
		t.Fatalf("got %d epochs, want 4", len(rep.Epochs))
	}
	if rep.Epochs[0].Mode != "cold" {
		t.Errorf("epoch 0 mode %q, want cold", rep.Epochs[0].Mode)
	}
	for _, e := range rep.Epochs[1:] {
		if e.Mode != "warm" {
			t.Errorf("epoch %d mode %q, want warm (ladder should have been retained)", e.Epoch, e.Mode)
			continue
		}
		if e.PartitionS > 0.5*e.ColdPartitionS {
			t.Errorf("epoch %d: warm partition %.3fs exceeds 50%% of cold %.3fs",
				e.Epoch, e.PartitionS, e.ColdPartitionS)
		}
		if float64(e.Cut) > 1.10*float64(e.ColdCut) {
			t.Errorf("epoch %d: warm cut %d exceeds 1.10x cold cut %d", e.Epoch, e.Cut, e.ColdCut)
		}
		if e.MovedVertices == 0 {
			t.Errorf("epoch %d: repartition moved no vertices — remap traffic not measured", e.Epoch)
		}
	}
	if rep.WarmOverCold <= 0 || rep.WarmOverCold > 0.5 {
		t.Errorf("warm/cold partition-time ratio %.3f, want (0, 0.5]", rep.WarmOverCold)
	}

	// The report must round-trip as the machine-readable JSON that
	// chaosbench -adaptive emits.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back AdaptiveReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec != rep.Spec || len(back.Epochs) != len(rep.Epochs) {
		t.Errorf("JSON round-trip mangled the report: %+v", back)
	}
}

// TestAdaptiveRejectsGeometrySpec pins the early capability check on
// the study path: the study constructs LINK-only graphs, so a
// geometry-consuming spec must be rejected with the descriptive
// validation error rather than a panic deep in the partitioner.
func TestAdaptiveRejectsGeometrySpec(t *testing.T) {
	rep, err := AdaptiveStudy(AdaptiveConfig{
		Procs: 2, NNode: 500, Epochs: 1, Iters: 1,
		Spec: partition.Spec{Method: partition.MethodRCB},
	})
	if err == nil {
		t.Fatal("RCB spec on a LINK-only adaptive study should fail validation", rep)
	}
}
