package experiments

import (
	"strings"
	"testing"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// TestSimulatedElapsedFarBelowVirtual is the regression test for
// MaxClock's old wall-time blind spot: the simulator charges iPSC/860
// virtual seconds, which say nothing about host cost. Now that every
// run also reports wall time (machine.Stats.Elapsed → Phases.Wall),
// pin the relationship on the acceptance mesh: simulating the 21952-
// node Euler pipeline costs far less host time than the virtual time
// it reports (measured ~16x apart on one core; asserted at 4x for
// slow-CI headroom). If Wall ever approaches Total here, either the
// wall-time plumbing broke or the simulator grew pathological
// overhead.
func TestSimulatedElapsedFarBelowVirtual(t *testing.T) {
	if testing.Short() {
		t.Skip("21952-node mesh pipeline")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates host wall time; the ratio is meaningless")
	}
	ph, err := Run(Config{
		Procs: 8, Workload: MeshWorkload(21000),
		Spec: partition.Spec{Method: partition.MethodRCB}, Reuse: true, Iters: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ph.Wall <= 0 {
		t.Fatalf("simulated run reported no wall time: %+v", ph)
	}
	if ph.Wall >= ph.Total()/4 {
		t.Errorf("simulated wall time %.3fs not far below virtual total %.3fs", ph.Wall, ph.Total())
	}
}

// TestBackendPhasesIdentical pins that the Real backend charges the
// virtual clock identically to the Simulated backend through the full
// pipeline — both hand and compiler paths — so one real run yields
// the simulated trajectory for free.
func TestBackendPhasesIdentical(t *testing.T) {
	for _, compiler := range []bool{false, true} {
		base := Config{
			Procs: 4, Workload: MeshWorkload(2000),
			Spec: partition.Spec{Method: partition.MethodRCB}, Reuse: true, Iters: 3,
			Compiler: compiler,
		}
		sim, err := Run(base)
		if err != nil {
			t.Fatalf("compiler=%v simulated: %v", compiler, err)
		}
		realCfg := base
		realCfg.Backend = machine.Real
		re, err := Run(realCfg)
		if err != nil {
			t.Fatalf("compiler=%v real: %v", compiler, err)
		}
		if sim.Wall <= 0 || re.Wall <= 0 {
			t.Errorf("compiler=%v: missing wall time (sim %.6f, real %.6f)", compiler, sim.Wall, re.Wall)
		}
		sim.Wall, re.Wall = 0, 0
		if sim != re {
			t.Errorf("compiler=%v: virtual phases diverge across backends:\nsim  %+v\nreal %+v", compiler, sim, re)
		}
	}
}

// TestRealSpeedupStudySmoke checks the study harness that chaosbench
// -backend=real drives: cells are well-formed and their String form
// is the stable key=value line cmd/benchjson parses.
func TestRealSpeedupStudySmoke(t *testing.T) {
	w := MeshWorkload(2000)
	cells, err := RealSpeedupStudy(w, partition.Spec{Method: partition.MethodRCB}, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for i, rc := range cells {
		if rc.Workload != w.Name || rc.Method != "RCB" || rc.WallMS <= 0 || rc.VirtualS <= 0 {
			t.Errorf("cell %d malformed: %+v", i, rc)
		}
		line := rc.String()
		if !strings.HasPrefix(line, "realbench: workload=mesh2000 method=RCB procs=") ||
			!strings.Contains(line, " wall_ms=") || !strings.Contains(line, " virtual_s=") {
			t.Errorf("cell %d line not parseable: %q", i, line)
		}
	}
	if cells[0].Procs != 1 || cells[1].Procs != 2 {
		t.Errorf("procs = %d, %d; want 1, 2", cells[0].Procs, cells[1].Procs)
	}
}
