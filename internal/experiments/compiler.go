package experiments

import (
	"context"
	"fmt"
	"sync"

	"chaos/internal/core"
	"chaos/internal/lang"
	"chaos/internal/machine"
	"chaos/internal/partition"
)

// meshProgram renders the Fortran-90D source of the unstructured-mesh
// template (the paper's Figure 4/5 code) for the given workload,
// partitioner spec and executor iteration count. The spec's string
// form goes straight into the USING clause (the front end parses
// option lists), and the CONSTRUCT clause follows the partitioner's
// declared capabilities. The flux expressions are the same EulerFlux
// the hand path uses, written in the source language, so the compiler
// path pays the (slight) interpretation overhead a compiler-generated
// executor pays relative to hand code.
func meshProgram(w *Workload, sp partition.Spec, iters int) string {
	clause := "LINK(nedge, end_pt1, end_pt2)"
	if caps, err := inputCaps(sp); err == nil && caps.NeedsGeometry {
		clause = "GEOMETRY(3, xc, yc, zc)"
	}
	return fmt.Sprintf(`
      PROGRAM template
      PARAMETER (nnode = %d, nedge = %d, niter = %d)
      REAL*8 x(nnode), y(nnode)
      REAL*8 xc(nnode), yc(nnode), zc(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
      DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
      DISTRIBUTE reg(BLOCK), reg2(BLOCK)
      ALIGN x, y, xc, yc, zc WITH reg
      ALIGN end_pt1, end_pt2 WITH reg2
      READ end_pt1, end_pt2, xc, yc, zc, x
      FORALL i = 1, nnode
        y(i) = 0.0
      END FORALL
C$    CONSTRUCT G (nnode, %s)
C$    SET distfmt BY PARTITIONING G USING %s
C$    REDISTRIBUTE reg(distfmt)
      DO t = 1, niter
        FORALL i = 1, nedge
          REDUCE (ADD, y(end_pt1(i)), (0.5*(x(end_pt1(i))+x(end_pt2(i))))**2 + 0.5*(x(end_pt2(i))-x(end_pt1(i))))
          REDUCE (ADD, y(end_pt2(i)), (0.5*(x(end_pt1(i))+x(end_pt2(i))))**2 - 0.5*(x(end_pt2(i))-x(end_pt1(i))))
        END FORALL
      END DO
      END
`, w.NNode, w.NIter, iters, clause, sp.String())
}

// runCompiler drives the experiment through the Fortran-90D front end:
// compile once, then execute the generated plan on every rank.
func runCompiler(cfg Config) (Phases, error) {
	w := cfg.Workload
	if w.MD {
		return Phases{}, fmt.Errorf("experiments: compiler mode supports the mesh template only")
	}
	prog, err := lang.Compile(meshProgram(w, cfg.Spec, cfg.Iters))
	if err != nil {
		return Phases{}, err
	}
	env := &lang.Env{
		RealData: map[string]func(int) float64{
			"X":  w.Init,
			"XC": func(g int) float64 { return w.X[g] },
			"YC": func(g int) float64 { return w.Y[g] },
			"ZC": func(g int) float64 { return w.Z[g] },
		},
		IntData: map[string]func(int) int{
			"END_PT1": func(g int) int { return w.E1[g] },
			"END_PT2": func(g int) int { return w.E2[g] },
		},
		DisableScheduleReuse: !cfg.Reuse,
	}
	var (
		mu  sync.Mutex
		out Phases
	)
	st, err := machine.RunStats(context.Background(), machineConfig(cfg), func(c *machine.Ctx) {
		s := core.NewSession(c)
		if e := prog.Execute(s, env); e != nil {
			panic(e)
		}
		ph := gatherPhases(s)
		if c.Rank() == 0 {
			mu.Lock()
			out = ph
			mu.Unlock()
		}
	})
	out.Wall = st.Elapsed.Seconds()
	return out, err
}
