package experiments

import (
	"fmt"
	"math"
	"strings"

	"chaos/internal/partition"
)

// Amortization decomposes a configuration's cost into the one-time
// mapping overhead (graph generation + partitioner + remap + first
// inspector) and the per-iteration executor cost, the decomposition
// behind the paper's remark that "the number of executor iterations on
// which [the] partitioner should be chosen" matters: an expensive
// partitioner pays off only past a crossover iteration count.
type Amortization struct {
	Partitioner string
	// Fixed is the one-time preprocessing cost in virtual seconds.
	Fixed float64
	// PerIter is the executor cost per iteration.
	PerIter float64
}

// Cost returns the total virtual time for iters executor iterations.
func (a Amortization) Cost(iters int) float64 {
	return a.Fixed + float64(iters)*a.PerIter
}

// MeasureAmortization runs the pipeline once with a probe iteration
// count and extracts the fixed/per-iteration decomposition.
func MeasureAmortization(procs int, w *Workload, sp partition.Spec, probeIters int) (Amortization, error) {
	ph, err := Run(Config{
		Procs: procs, Workload: w, Spec: sp,
		Reuse: true, Iters: probeIters,
	})
	if err != nil {
		return Amortization{}, err
	}
	return Amortization{
		Partitioner: sp.String(),
		Fixed:       ph.GraphGen + ph.Partition + ph.Remap + ph.Inspector,
		PerIter:     ph.Executor / float64(probeIters),
	}, nil
}

// Crossover returns the executor iteration count past which b becomes
// cheaper than a, or -1 when b never catches up (its per-iteration cost
// is not lower).
func Crossover(a, b Amortization) int {
	if b.PerIter >= a.PerIter {
		return -1
	}
	x := (b.Fixed - a.Fixed) / (a.PerIter - b.PerIter)
	if x <= 0 {
		return 0
	}
	return int(math.Ceil(x))
}

// CrossoverReport formats the partitioner-amortization study for one
// workload: per method, the fixed cost, per-iteration executor cost,
// totals at 1/100/1000 iterations, and pairwise crossovers against the
// cheapest-to-run method.
func CrossoverReport(procs int, w *Workload, specs []partition.Spec, probeIters int) (string, error) {
	var ams []Amortization
	for _, sp := range specs {
		a, err := MeasureAmortization(procs, w, sp, probeIters)
		if err != nil {
			return "", err
		}
		ams = append(ams, a)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Partitioner amortization: %s, %d processors (virtual seconds)\n", w.Name, procs)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %10s %10s\n",
		"method", "fixed", "sec/iter", "@1", "@100", "@1000")
	for _, a := range ams {
		fmt.Fprintf(&b, "%-10s %10.2f %12.4f %10.1f %10.1f %10.1f\n",
			a.Partitioner, a.Fixed, a.PerIter, a.Cost(1), a.Cost(100), a.Cost(1000))
	}
	// Crossovers relative to the first (baseline) method.
	base := ams[0]
	for _, a := range ams[1:] {
		x := Crossover(base, a)
		if x < 0 {
			fmt.Fprintf(&b, "%s never overtakes %s (per-iteration cost not lower)\n",
				a.Partitioner, base.Partitioner)
		} else {
			fmt.Fprintf(&b, "%s overtakes %s after %d executor iterations\n",
				a.Partitioner, base.Partitioner, x)
		}
	}
	return b.String(), nil
}
