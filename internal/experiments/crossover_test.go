package experiments

import (
	"strings"
	"testing"

	"chaos/internal/partition"
)

func TestAmortizationDecomposition(t *testing.T) {
	a, err := MeasureAmortization(4, small(), partition.MustSpec("RCB"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fixed <= 0 || a.PerIter <= 0 {
		t.Fatalf("degenerate amortization %+v", a)
	}
	if got := a.Cost(10); got <= a.Fixed {
		t.Errorf("Cost(10) = %v not above fixed %v", got, a.Fixed)
	}
}

func TestCrossoverArithmetic(t *testing.T) {
	cheapSetup := Amortization{Partitioner: "A", Fixed: 1, PerIter: 2}
	richSetup := Amortization{Partitioner: "B", Fixed: 101, PerIter: 1}
	if x := Crossover(cheapSetup, richSetup); x != 100 {
		t.Errorf("crossover = %d, want 100", x)
	}
	never := Amortization{Partitioner: "C", Fixed: 0.5, PerIter: 2}
	if x := Crossover(cheapSetup, never); x != -1 {
		t.Errorf("equal per-iter crossover = %d, want -1", x)
	}
	alreadyBetter := Amortization{Partitioner: "D", Fixed: 0.5, PerIter: 1}
	if x := Crossover(cheapSetup, alreadyBetter); x != 0 {
		t.Errorf("dominating crossover = %d, want 0", x)
	}
}

func TestCrossoverBlockVsRCB(t *testing.T) {
	// RCB's executor is cheaper than BLOCK's, so RCB must overtake
	// BLOCK within a modest iteration count.
	blk, err := MeasureAmortization(8, small(), partition.MustSpec("BLOCK"), 10)
	if err != nil {
		t.Fatal(err)
	}
	rcb, err := MeasureAmortization(8, small(), partition.MustSpec("RCB"), 10)
	if err != nil {
		t.Fatal(err)
	}
	x := Crossover(blk, rcb)
	if x < 0 || x > 200 {
		t.Errorf("RCB should overtake BLOCK quickly, crossover = %d", x)
	}
}

func TestCrossoverReportFormat(t *testing.T) {
	rep, err := CrossoverReport(4, small(), []partition.Spec{partition.MustSpec("BLOCK"), partition.MustSpec("RCB")}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fixed", "sec/iter", "BLOCK", "RCB", "@100"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
