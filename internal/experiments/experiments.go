// Package experiments is the benchmark harness that regenerates every
// table of the paper's evaluation (Section 6) on the simulated
// iPSC/860. Each experiment runs the full Figure 2 pipeline — GeoCoL
// construction, partitioning, array and iteration remapping, inspector,
// and 100 executor iterations — and reports per-phase virtual-time
// maxima across ranks, which is what the paper's tables tabulate.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"chaos/internal/core"
	"chaos/internal/iterpart"
	"chaos/internal/machine"
	"chaos/internal/md"
	"chaos/internal/mesh"
	"chaos/internal/partition"
)

// Workload is one irregular-loop template: the paper's unstructured
// Euler edge sweep or the molecular-dynamics electrostatic loop (both
// instances of loop L2).
type Workload struct {
	Name  string
	NNode int
	NIter int // edges or nonbonded pairs
	E1    []int
	E2    []int
	X     []float64
	Y     []float64
	Z     []float64
	// Init gives node g's initial state value.
	Init func(g int) float64
	// Kernel computes the two reduction contributions per iteration.
	Kernel func(iter int, in, out []float64)
	// Flops models one kernel invocation.
	Flops int
	// HasMDGeometry marks the MD workload (kernel closes over pair
	// geometry; compiler mode is not available).
	MD bool
}

var (
	wlMu    sync.Mutex
	wlCache = map[string]*Workload{}
)

// MeshWorkload returns the Euler edge-sweep template on a synthetic
// unstructured mesh of roughly n nodes. Results are cached: the paper's
// 10K and 53K meshes are reused across table cells.
func MeshWorkload(n int) *Workload {
	key := fmt.Sprintf("mesh%d", n)
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache[key]; ok {
		return w
	}
	m := mesh.Generate(n, 1993)
	w := &Workload{
		Name:   key,
		NNode:  m.NNode,
		NIter:  m.NEdge(),
		E1:     m.E1,
		E2:     m.E2,
		X:      m.X,
		Y:      m.Y,
		Z:      m.Z,
		Init:   m.InitialState,
		Kernel: mesh.EulerFlux,
		Flops:  mesh.EulerFlops,
	}
	wlCache[key] = w
	return w
}

// Mesh10K and Mesh53K are the paper's two Euler meshes.
func Mesh10K() *Workload { return MeshWorkload(10000) }

// Mesh53K returns the 53K-node mesh workload.
func Mesh53K() *Workload { return MeshWorkload(53000) }

// Water648 returns the 648-atom water electrostatic force loop.
func Water648() *Workload {
	wlMu.Lock()
	defer wlMu.Unlock()
	if w, ok := wlCache["water648"]; ok {
		return w
	}
	sys := md.Water(216, 4.5, 1993)
	w := &Workload{
		Name:   "water648",
		NNode:  sys.NAtom,
		NIter:  sys.NPair(),
		E1:     sys.P1,
		E2:     sys.P2,
		X:      sys.X,
		Y:      sys.Y,
		Z:      sys.Z,
		Init:   func(g int) float64 { return sys.Q[g] },
		Kernel: sys.ForceKernel(),
		Flops:  md.ForceFlops,
		MD:     true,
	}
	wlCache["water648"] = w
	return w
}

// Config selects one experiment cell.
type Config struct {
	Procs    int
	Workload *Workload
	// Spec selects and tunes the partitioner (partition.Spec{Method: partition.MethodRCB},
	// partition.Spec{Method: partition.MethodMultilevel, ...}, ...).
	Spec     partition.Spec
	Reuse    bool // communication-schedule reuse on/off
	Iters    int  // executor iterations (paper: 100)
	Compiler bool // drive through the Fortran-90D front end
	// IterPolicy defaults to almost-owner-computes.
	IterPolicy iterpart.Policy
	// SkipIterPart disables Phase B (ablation).
	SkipIterPart bool
	// Backend selects the machine execution backend. The zero value is
	// the classic virtual-clock simulator; machine.Real runs the same
	// pipeline on host cores with physical payload delivery, filling
	// Phases.Wall with authoritative wall time.
	Backend machine.Backend
	// Seed is the machine's base random seed (Ctx.Rand streams).
	Seed uint64
	// NoDedupInspector is reserved for the dedup ablation (uses the
	// hand path with duplicate ghost slots). Implemented in the
	// ablation bench directly against the schedule package.
}

// Phases reports per-phase virtual-time maxima across ranks, in
// seconds, matching the rows of the paper's Tables 2-4.
type Phases struct {
	GraphGen  float64
	Partition float64
	Remap     float64
	Inspector float64
	Executor  float64
	// Wall is the host wall-clock time of the whole cell in seconds,
	// max-reduced across ranks (machine.Stats.Elapsed). On the Real
	// backend it is the authoritative timing; on Simulated it merely
	// records simulator overhead. Not part of Total, which stays the
	// paper's virtual-seconds row.
	Wall float64
}

// Total is the sum of all phases (the paper's "Total" row).
func (p Phases) Total() float64 {
	return p.GraphGen + p.Partition + p.Remap + p.Inspector + p.Executor
}

// Run executes one experiment cell and returns its phase times.
func Run(cfg Config) (Phases, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	if cfg.Compiler {
		return runCompiler(cfg)
	}
	return runHand(cfg)
}

// machineConfig builds the iPSC/860 machine of one experiment cell,
// applying the cell's execution backend and seed.
func machineConfig(cfg Config) machine.Config {
	mc := machine.IPSC860(cfg.Procs)
	mc.Backend = cfg.Backend
	mc.Seed = cfg.Seed
	return mc
}

// inputCaps resolves which GeoCoL components the configured
// partitioner consumes, from its declared capability metadata.
func inputCaps(sp partition.Spec) (partition.Capabilities, error) {
	p, err := sp.Resolve()
	if err != nil {
		return partition.Capabilities{}, err
	}
	return partition.Caps(p), nil
}

// runHand is the hand-parallelized path: direct CHAOS runtime calls,
// the baseline the paper compares compiler-generated code against.
func runHand(cfg Config) (Phases, error) {
	var (
		mu  sync.Mutex
		out Phases
	)
	w := cfg.Workload
	caps, err := inputCaps(cfg.Spec)
	if err != nil {
		return Phases{}, err
	}
	st, err := machine.RunStats(context.Background(), machineConfig(cfg), func(c *machine.Ctx) {
		s := core.NewSession(c)
		x := s.NewArray("x", w.NNode)
		y := s.NewArray("y", w.NNode)
		x.FillByGlobal(w.Init)
		y.FillByGlobal(func(int) float64 { return 0 })
		e1 := s.NewIntArray("end_pt1", w.NIter)
		e2 := s.NewIntArray("end_pt2", w.NIter)
		e1.FillByGlobal(func(g int) int { return w.E1[g] })
		e2.FillByGlobal(func(g int) int { return w.E2[g] })

		var in core.GeoColInput
		if caps.NeedsGeometry {
			xc := s.NewArray("xc", w.NNode)
			yc := s.NewArray("yc", w.NNode)
			zc := s.NewArray("zc", w.NNode)
			xc.FillByGlobal(func(g int) float64 { return w.X[g] })
			yc.FillByGlobal(func(g int) float64 { return w.Y[g] })
			zc.FillByGlobal(func(g int) float64 { return w.Z[g] })
			in = core.GeoColInput{Geometry: []*core.Array{xc, yc, zc}}
		} else if caps.NeedsLink {
			in = core.GeoColInput{Link1: e1, Link2: e2}
		}
		g := s.Construct(w.NNode, in)
		m, err := s.SetPartitioning(g, cfg.Spec, cfg.Procs)
		if err != nil {
			panic(err)
		}
		s.Redistribute(m, []*core.Array{x, y}, nil)

		loop := s.NewLoop("sweep", w.NIter,
			[]core.Read{{Arr: x, Ind: e1}, {Arr: x, Ind: e2}},
			[]core.Write{{Arr: y, Ind: e1, Op: core.Add}, {Arr: y, Ind: e2, Op: core.Add}},
			w.Flops, w.Kernel)
		if !cfg.SkipIterPart {
			loop.PartitionIterations(cfg.IterPolicy)
		}
		for it := 0; it < cfg.Iters; it++ {
			if cfg.Reuse {
				loop.Execute()
			} else {
				loop.ExecuteNoReuse()
			}
		}
		ph := gatherPhases(s)
		if c.Rank() == 0 {
			mu.Lock()
			out = ph
			mu.Unlock()
		}
	})
	out.Wall = st.Elapsed.Seconds()
	return out, err
}

func gatherPhases(s *core.Session) Phases {
	return Phases{
		GraphGen:  s.TimerMax(core.TimerGraphGen),
		Partition: s.TimerMax(core.TimerPartition),
		Remap:     s.TimerMax(core.TimerRemap),
		Inspector: s.TimerMax(core.TimerInspector),
		Executor:  s.TimerMax(core.TimerExecutor),
	}
}
