package experiments

import (
	"math"
	"strings"
	"testing"

	"chaos/internal/partition"
)

// small returns a cheap mesh workload for shape tests.
func small() *Workload { return MeshWorkload(1000) }

func TestScheduleReuseWinsBigly(t *testing.T) {
	// Paper Table 1 shape: no-reuse is an order of magnitude (or
	// more) slower over repeated executor iterations.
	base := Config{Procs: 4, Workload: small(), Spec: partition.MustSpec("RCB"), Iters: 20}
	withCfg := base
	withCfg.Reuse = true
	withoutCfg := base
	withoutCfg.Reuse = false
	with, err := Run(withCfg)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(withoutCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := without.Total() / with.Total(); ratio < 4 {
		t.Errorf("reuse speedup only %.2fx (with=%.3fs without=%.3fs)", ratio, with.Total(), without.Total())
	}
	// Executor time itself must be nearly identical.
	if math.Abs(with.Executor-without.Executor) > 0.15*with.Executor {
		t.Errorf("executor differs with reuse: %v vs %v", with.Executor, without.Executor)
	}
}

func TestIrregularBeatsBlockExecutor(t *testing.T) {
	// Paper Table 2/4 shape: RCB or RSB executor is 2-3x faster than
	// BLOCK executor on the renumbered mesh.
	for _, part := range []string{"RCB", "RSB"} {
		irr, err := Run(Config{Procs: 8, Workload: small(), Spec: partition.MustSpec(part), Reuse: true, Iters: 10})
		if err != nil {
			t.Fatal(err)
		}
		blk, err := Run(Config{Procs: 8, Workload: small(), Spec: partition.MustSpec("BLOCK"), Reuse: true, Iters: 10})
		if err != nil {
			t.Fatal(err)
		}
		if ratio := blk.Executor / irr.Executor; ratio < 1.5 {
			t.Errorf("%s executor speedup over BLOCK only %.2fx (%v vs %v)",
				part, ratio, irr.Executor, blk.Executor)
		}
	}
}

func TestRSBPartitionerCostlierThanRCB(t *testing.T) {
	// Paper Table 2 shape: spectral bisection pays far more
	// partitioning time than coordinate bisection (258s vs 1.6s),
	// with an executor at least as good.
	rcb, err := Run(Config{Procs: 8, Workload: small(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	rsb, err := Run(Config{Procs: 8, Workload: small(), Spec: partition.MustSpec("RSB"), Reuse: true, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rsb.Partition+rsb.GraphGen < 3*(rcb.Partition+rcb.GraphGen) {
		t.Errorf("RSB partitioning (%.4fs) not clearly costlier than RCB (%.4fs)",
			rsb.Partition+rsb.GraphGen, rcb.Partition+rcb.GraphGen)
	}
	if rsb.Executor > 1.3*rcb.Executor {
		t.Errorf("RSB executor (%v) much worse than RCB (%v)", rsb.Executor, rcb.Executor)
	}
}

func TestCompilerWithinTenPercentOfHand(t *testing.T) {
	// The paper's headline: compiler-generated code within about 10%
	// of the hand-parallelized version.
	hand, err := Run(Config{Procs: 4, Workload: small(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(Config{Procs: 4, Workload: small(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 20, Compiler: true})
	if err != nil {
		t.Fatal(err)
	}
	over := comp.Total()/hand.Total() - 1
	if over > 0.15 {
		t.Errorf("compiler overhead %.1f%% exceeds 15%% (hand=%.3fs compiler=%.3fs)",
			100*over, hand.Total(), comp.Total())
	}
	if over < -0.05 {
		t.Errorf("compiler implausibly faster than hand by %.1f%%", -100*over)
	}
}

func TestCompilerRejectsMDWorkload(t *testing.T) {
	if _, err := Run(Config{Procs: 2, Workload: Water648(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 1, Compiler: true}); err == nil {
		t.Fatal("compiler mode accepted MD workload")
	}
}

func TestMDWorkloadRuns(t *testing.T) {
	ph, err := Run(Config{Procs: 4, Workload: Water648(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ph.Executor <= 0 || ph.Inspector <= 0 {
		t.Errorf("phases empty: %+v", ph)
	}
}

func TestScalingWithProcs(t *testing.T) {
	// Executor time must drop as processors are added.
	p4, err := Run(Config{Procs: 4, Workload: small(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	p16, err := Run(Config{Procs: 16, Workload: small(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p16.Executor >= p4.Executor {
		t.Errorf("executor did not scale: P=4 %.4fs, P=16 %.4fs", p4.Executor, p16.Executor)
	}
}

func TestDeterministicPhases(t *testing.T) {
	cfg := Config{Procs: 4, Workload: small(), Spec: partition.MustSpec("RCB"), Reuse: true, Iters: 3}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall is host time and inherently varies run to run; every
	// virtual-clock phase must be bit-identical.
	a.Wall, b.Wall = 0, 0
	if a != b {
		t.Errorf("phases not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("quick tables still take a few seconds")
	}
	g := Grid{
		MeshA: 500, MeshB: 800,
		ProcsA: []int{2}, ProcsB: []int{4}, ProcsMD: []int{2},
		Table2Procs: 4, Iters: 3,
	}
	t1, err := Table1(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1.String(), "Schedule Reuse") {
		t.Error("table 1 malformed")
	}
	t2, err := Table2(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2.String(), "RSB Compiler Reuse") {
		t.Error("table 2 malformed")
	}
	t3, err := Table3(g)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table4(g)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 row ordering: no-reuse > reuse everywhere.
	for c := range t1.Cols {
		if t1.Cells[0][c] <= t1.Cells[1][c] {
			t.Errorf("table1 col %s: no-reuse %.3f <= reuse %.3f", t1.Cols[c], t1.Cells[0][c], t1.Cells[1][c])
		}
	}
	// Table 4 (BLOCK) executor >= Table 3 (RCB) executor per column.
	for c := range t3.Cols {
		ex3 := t3.Cells[3][c]
		ex4 := t4.Cells[2][c]
		if ex4 < ex3 {
			t.Errorf("col %s: BLOCK executor %.3f beat RCB %.3f", t3.Cols[c], ex4, ex3)
		}
	}
	_ = t2
}

func TestWorkloadCaching(t *testing.T) {
	a, b := MeshWorkload(1000), MeshWorkload(1000)
	if a != b {
		t.Error("mesh workload not cached")
	}
	if Water648() != Water648() {
		t.Error("water workload not cached")
	}
}
