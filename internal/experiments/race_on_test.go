//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// host-timing comparison tests skip under it because instrumentation
// inflates wall time by an order of magnitude.
const raceEnabled = true
