package experiments

import (
	"fmt"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// RealCell is one Real-backend measurement of the full pipeline: the
// host wall time next to the virtual time the simulator charges for
// the same run. One run yields both trajectories because the Real
// backend keeps charging the virtual clock while the ranks do the
// physical work.
type RealCell struct {
	Workload string  `json:"workload"`
	Method   string  `json:"method"`
	Procs    int     `json:"procs"`
	WallMS   float64 `json:"wall_ms"`
	VirtualS float64 `json:"virtual_s"`
}

// String renders the cell in the stable key=value line format consumed
// by cmd/benchjson -real.
func (rc RealCell) String() string {
	return fmt.Sprintf("realbench: workload=%s method=%s procs=%d wall_ms=%.3f virtual_s=%.4f",
		rc.Workload, rc.Method, rc.Procs, rc.WallMS, rc.VirtualS)
}

// RealSpeedupStudy runs the full pipeline on the Real backend at each
// machine size and reports wall time next to virtual time. The wall
// times measure genuine parallel execution on host cores (compute
// slots are capped at GOMAXPROCS), so WallMS dropping from P=1 to P=8
// is real speedup, while VirtualS keeps reporting what the simulated
// iPSC/860 would have charged — the pair is what BENCH_<sha>.json
// archives as the repository's two performance trajectories.
func RealSpeedupStudy(w *Workload, sp partition.Spec, procs []int, iters int) ([]RealCell, error) {
	cells := make([]RealCell, 0, len(procs))
	for _, p := range procs {
		ph, err := Run(Config{
			Procs: p, Workload: w, Spec: sp, Reuse: true, Iters: iters,
			Backend: machine.Real, Seed: 1993,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: real study P=%d: %w", p, err)
		}
		cells = append(cells, RealCell{
			Workload: w.Name,
			Method:   string(sp.Method),
			Procs:    p,
			WallMS:   ph.Wall * 1000,
			VirtualS: ph.Total(),
		})
	}
	return cells, nil
}
