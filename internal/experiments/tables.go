package experiments

import (
	"fmt"

	"chaos/internal/partition"
	"chaos/internal/report"
)

// Grid fixes the workload/processor matrix of Tables 1, 3 and 4 and
// the single configuration of Table 2.
type Grid struct {
	// MeshA/MeshB are the two Euler mesh sizes (paper: 10K and 53K).
	MeshA, MeshB int
	// ProcsA/ProcsB/ProcsMD are the processor counts per column group
	// (paper: 4/8/16, 16/32/64, 4/8/16).
	ProcsA, ProcsB, ProcsMD []int
	// Table2Procs is the Table 2 machine size (paper: 32).
	Table2Procs int
	// Iters is the executor iteration count (paper: 100).
	Iters int
}

// PaperGrid reproduces the paper's exact configurations.
func PaperGrid() Grid {
	return Grid{
		MeshA: 10000, MeshB: 53000,
		ProcsA: []int{4, 8, 16}, ProcsB: []int{16, 32, 64}, ProcsMD: []int{4, 8, 16},
		Table2Procs: 32, Iters: 100,
	}
}

// QuickGrid is a scaled-down matrix for smoke tests and CI: the same
// shape at a fraction of the cost.
func QuickGrid() Grid {
	return Grid{
		MeshA: 1000, MeshB: 4000,
		ProcsA: []int{2, 4, 8}, ProcsB: []int{4, 8, 16}, ProcsMD: []int{2, 4, 8},
		Table2Procs: 8, Iters: 10,
	}
}

// cells enumerates the (workload, procs) columns of the 9-column grid.
func (g Grid) cells() (ws []*Workload, procs []int, labels []string) {
	type group struct {
		w  *Workload
		ps []int
		lb string
	}
	groups := []group{
		{MeshWorkload(g.MeshA), g.ProcsA, fmt.Sprintf("%dK Mesh", g.MeshA/1000)},
		{MeshWorkload(g.MeshB), g.ProcsB, fmt.Sprintf("%dK Mesh", g.MeshB/1000)},
		{Water648(), g.ProcsMD, "648 Atoms"},
	}
	if g.MeshA < 1000 {
		groups[0].lb = fmt.Sprintf("%d Mesh", g.MeshA)
	}
	if g.MeshB < 1000 {
		groups[1].lb = fmt.Sprintf("%d Mesh", g.MeshB)
	}
	for _, gr := range groups {
		for _, p := range gr.ps {
			ws = append(ws, gr.w)
			procs = append(procs, p)
			labels = append(labels, fmt.Sprintf("%s/%d", gr.lb, p))
		}
	}
	return
}

// Table1 regenerates the paper's Table 1: total time over the full grid
// with and without communication-schedule reuse, arrays decomposed with
// recursive coordinate bisection.
func Table1(g Grid) (*report.Table, error) {
	ws, procs, labels := g.cells()
	t := report.New("Table 1: Performance With and Without Schedule Reuse",
		"virtual seconds, "+fmt.Sprint(g.Iters)+" iterations, RCB decomposition",
		labels, []string{"No Schedule Reuse", "Schedule Reuse"})
	for i := range ws {
		for _, reuse := range []bool{false, true} {
			ph, err := Run(Config{
				Procs: procs[i], Workload: ws[i], Spec: partition.Spec{Method: partition.MethodRCB},
				Reuse: reuse, Iters: g.Iters,
			})
			if err != nil {
				return nil, err
			}
			row := "No Schedule Reuse"
			if reuse {
				row = "Schedule Reuse"
			}
			t.Set(row, labels[i], ph.Total())
		}
	}
	return t, nil
}

// Table2 regenerates the paper's Table 2: the 53K-mesh template on 32
// processors under five regimes — coordinate bisection driven by the
// compiler (with and without schedule reuse) and by hand, naive BLOCK
// partitioning by hand, and compiler-driven spectral bisection — plus
// a sixth column the paper could not run: the multilevel partitioner,
// which shows the SET BY PARTITIONING bottleneck (RSB's Lanczos solve)
// collapsing while the executor keeps spectral-quality communication.
func Table2(g Grid) (*report.Table, error) {
	w := MeshWorkload(g.MeshB)
	p := g.Table2Procs
	cols := []string{
		"RCB Compiler Reuse", "RCB Compiler NoReuse", "RCB Hand",
		"BLOCK Hand", "RSB Compiler Reuse", "ML Compiler Reuse",
	}
	rows := []string{"Graph Generation", "Partitioner", "Remap", "Inspector", "Executor", "Total"}
	t := report.New(
		fmt.Sprintf("Table 2: Unstructured Mesh Template - %d Mesh - %d Processors", w.NNode, p),
		fmt.Sprintf("virtual seconds, %d iterations", g.Iters), cols, rows)

	set := func(col string, ph Phases) {
		t.Set("Graph Generation", col, ph.GraphGen)
		t.Set("Partitioner", col, ph.Partition)
		t.Set("Remap", col, ph.Remap)
		t.Set("Inspector", col, ph.Inspector)
		t.Set("Executor", col, ph.Executor)
		t.Set("Total", col, ph.Total())
	}
	cfgs := []struct {
		col  string
		conf Config
	}{
		{"RCB Compiler Reuse", Config{Procs: p, Workload: w, Spec: partition.Spec{Method: partition.MethodRCB}, Reuse: true, Iters: g.Iters, Compiler: true}},
		{"RCB Compiler NoReuse", Config{Procs: p, Workload: w, Spec: partition.Spec{Method: partition.MethodRCB}, Reuse: false, Iters: g.Iters, Compiler: true}},
		{"RCB Hand", Config{Procs: p, Workload: w, Spec: partition.Spec{Method: partition.MethodRCB}, Reuse: true, Iters: g.Iters}},
		{"BLOCK Hand", Config{Procs: p, Workload: w, Spec: partition.Spec{Method: partition.MethodBlock}, Reuse: true, Iters: g.Iters}},
		{"RSB Compiler Reuse", Config{Procs: p, Workload: w, Spec: partition.Spec{Method: partition.MethodRSB}, Reuse: true, Iters: g.Iters, Compiler: true}},
		{"ML Compiler Reuse", Config{Procs: p, Workload: w, Spec: partition.Spec{Method: partition.MethodMultilevel}, Reuse: true, Iters: g.Iters, Compiler: true}},
	}
	for _, c := range cfgs {
		ph, err := Run(c.conf)
		if err != nil {
			return nil, err
		}
		set(c.col, ph)
	}
	return t, nil
}

// Table3 regenerates the paper's Table 3: per-phase detail of the
// compiler-linked coordinate-bisection partitioner with schedule reuse
// over the full grid.
func Table3(g Grid) (*report.Table, error) {
	ws, procs, labels := g.cells()
	rows := []string{"Partitioner", "Inspector", "Remap", "Executor", "Total"}
	t := report.New("Table 3: Performance of Compiler-linked Coordinate Bisection Partitioner with Schedule Reuse",
		fmt.Sprintf("virtual seconds, %d iterations", g.Iters), labels, rows)
	for i := range ws {
		cfg := Config{Procs: procs[i], Workload: ws[i], Spec: partition.Spec{Method: partition.MethodRCB}, Reuse: true, Iters: g.Iters}
		// The MD workload runs the hand path (its kernel closes over
		// pair geometry); mesh cells run the compiler path as the
		// table title says.
		if !ws[i].MD {
			cfg.Compiler = true
		}
		ph, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t.Set("Partitioner", labels[i], ph.GraphGen+ph.Partition)
		t.Set("Inspector", labels[i], ph.Inspector)
		t.Set("Remap", labels[i], ph.Remap)
		t.Set("Executor", labels[i], ph.Executor)
		t.Set("Total", labels[i], ph.Total())
	}
	return t, nil
}

// Table4 regenerates the paper's Table 4: the naive BLOCK partition
// with schedule reuse over the full grid.
func Table4(g Grid) (*report.Table, error) {
	ws, procs, labels := g.cells()
	rows := []string{"Inspector", "Remap", "Executor", "Total"}
	t := report.New("Table 4: Performance of Block Partitioning with Schedule Reuse",
		fmt.Sprintf("virtual seconds, %d iterations", g.Iters), labels, rows)
	for i := range ws {
		ph, err := Run(Config{
			Procs: procs[i], Workload: ws[i], Spec: partition.Spec{Method: partition.MethodBlock}, Reuse: true, Iters: g.Iters,
		})
		if err != nil {
			return nil, err
		}
		t.Set("Inspector", labels[i], ph.Inspector)
		t.Set("Remap", labels[i], ph.Remap)
		t.Set("Executor", labels[i], ph.Executor)
		t.Set("Total", labels[i], ph.Total())
	}
	return t, nil
}
