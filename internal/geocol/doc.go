// Package geocol implements the GeoCoL (GEOmetry / COnnectivity /
// Load) interface data structure of the paper's Section 4.1: the
// standardized representation through which user programs hand
// partitioners the information data partitioning is to be based on.
//
// A GeoCoL graph has N vertices (array indices) and any combination of
//
//   - LINK connectivity (graph edges linking vertices, e.g. the union
//     of edges {ia(i), ib(i)} contributed by an irregular loop),
//   - GEOMETRY (spatial coordinates per vertex, from mesh node
//     positions), and
//   - LOAD (per-vertex computational weight).
//
// # Public surface
//
// Build is the CONSTRUCT directive: collective, with the vertices
// block-distributed over ranks (the initial default distribution of
// the paper's Phase A) and the directive keywords supplied as Options
// (WithLink, WithGeometry, WithLoad). The resulting Graph holds one
// rank's slice — a deduplicated symmetric CSR plus coordinate and
// weight columns — and Gather replicates it (Full) for partitioners
// that run serially, charging the communication to the virtual clock.
//
// Three families of helpers serve the multilevel partitioner stack:
//
//   - Contractor/Contract build coarse graphs under a clustering,
//     aggregating vertex weights, merging parallel edges and dropping
//     intra-cluster edges; BuildCoarse is the distributed form,
//     contracting a block-distributed Graph collectively without ever
//     gathering it.
//   - GhostExchange precomputes the boundary-exchange pattern of a
//     distributed Graph — which home vertices each neighbor rank
//     reads, derived locally thanks to the symmetric CSR — and moves
//     one value per boundary vertex (PushInts/PushFloats), or only
//     the changed ones (UpdateInts, PushMarks). UpdateIntsTouched
//     additionally reports which ghost slots changed, which is what
//     lets the parallel FM refiner maintain its gain and boundary
//     caches incrementally instead of rescanning the ghost layer
//     every round.
//
// # Guarantees pinned by tests
//
// geocol_test.go pins CONSTRUCT semantics (dedup, symmetry,
// self-loop removal, directive validation) and Gather fidelity;
// ghost_test.go pins the exchange pattern derivation, the dense and
// incremental pushes, and the touched-slot report;
// TestBuildCoarseMatchesSerialContract pins the distributed
// contraction edge-for-edge against the serial Contractor. The
// structure's role in the paper's pipeline is mapped in
// docs/ARCHITECTURE.md.
package geocol
