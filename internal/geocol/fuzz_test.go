package geocol_test

import (
	"testing"

	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// fuzzEdges decodes the fuzz bytes into an edge list over n vertices.
// Consecutive byte pairs become one edge each, reduced mod n, so the
// corpus naturally produces self-loops, duplicate edges, isolated
// vertices (empty exchanges) and edges touching vertex n-1 on the
// max rank. A (0, n-1) edge is always appended so every case has at
// least one cross-rank dependence when P > 1.
func fuzzEdges(data []byte, n int) (e1, e2 []int) {
	for i := 0; i+1 < len(data); i += 2 {
		e1 = append(e1, int(data[i])%n)
		e2 = append(e2, int(data[i+1])%n)
	}
	e1 = append(e1, 0)
	e2 = append(e2, n-1)
	return e1, e2
}

// FuzzGhostExchange builds a fuzzed graph under both backends and
// checks the full GhostExchange surface against ground truth that is
// known exactly because each pushed value is the sender's global
// vertex id: after PushInts, ghost slot i must hold IDs[i]; after an
// UpdateInts touching every third vertex, exactly those ghosts moved.
func FuzzGhostExchange(f *testing.F) {
	f.Add([]byte{}, byte(0), byte(0))                             // minimal graph, single rank
	f.Add([]byte{0, 0, 5, 5}, byte(3), byte(20))                  // self-loops only
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5}, byte(1), byte(6)) // path across 2 ranks
	f.Add([]byte{0, 9, 9, 0, 3, 7}, byte(3), byte(10))            // duplicates + max rank
	f.Fuzz(func(t *testing.T, data []byte, pb, nb byte) {
		p := 1 + int(pb)%4
		n := p + int(nb)%24 // at least one vertex per rank
		e1, e2 := fuzzEdges(data, n)
		for _, backend := range []machine.Backend{machine.Simulated, machine.Real} {
			cfg := machine.Zero(p)
			cfg.Backend = backend
			err := machine.Run(cfg, func(c *machine.Ctx) {
				// Each rank contributes a strided slice of the edge list.
				var me1, me2 []int
				for i := range e1 {
					if i%p == c.Rank() {
						me1 = append(me1, e1[i])
						me2 = append(me2, e2[i])
					}
				}
				g := geocol.Build(c, n, geocol.WithLink(me1, me2))
				ge := geocol.NewGhostExchange(c, g)

				lo := g.Home.Lo(c.Rank())
				localN := g.LocalN(c.Rank())
				ids := make([]int, localN)
				fids := make([]float64, localN)
				for l := range ids {
					ids[l] = lo + l
					fids[l] = float64(lo+l) + 0.5
				}
				ghost := ge.PushInts(c, ids)
				for i, v := range ghost {
					if v != ge.IDs[i] {
						t.Errorf("%v: rank %d ghost slot %d: got %d, want id %d",
							backend, c.Rank(), i, v, ge.IDs[i])
					}
					if ge.Slot(ge.IDs[i]) != i {
						t.Errorf("%v: rank %d: Slot(%d) = %d, want %d",
							backend, c.Rank(), ge.IDs[i], ge.Slot(ge.IDs[i]), i)
					}
				}
				fghost := ge.PushFloats(c, fids)
				for i, v := range fghost {
					if v != float64(ge.IDs[i])+0.5 {
						t.Errorf("%v: rank %d float ghost slot %d: got %v, want %v",
							backend, c.Rank(), i, v, float64(ge.IDs[i])+0.5)
					}
				}

				// Incremental update: every third global vertex moves.
				changed := make([]bool, localN)
				for l := range ids {
					if (lo+l)%3 == 0 {
						ids[l] += n
						changed[l] = true
					}
				}
				touched := ge.UpdateIntsTouched(c, ids, changed, ghost)
				for i, id := range ge.IDs {
					want := id
					if id%3 == 0 {
						want = id + n
					}
					if ghost[i] != want {
						t.Errorf("%v: rank %d updated ghost %d: got %d, want %d",
							backend, c.Rank(), i, ghost[i], want)
					}
				}
				for k, s := range touched {
					if ge.IDs[s]%3 != 0 {
						t.Errorf("%v: rank %d touched slot %d (id %d) never changed",
							backend, c.Rank(), s, ge.IDs[s])
					}
					if k > 0 && touched[k-1] >= s {
						t.Errorf("%v: rank %d touched list not ascending: %v",
							backend, c.Rank(), touched)
					}
				}

				// Monotone marks: flag the same vertices via PushMarks.
				marks := make([]int, len(ge.IDs))
				ge.PushMarks(c, changed, marks)
				for i, id := range ge.IDs {
					want := 0
					if id%3 == 0 {
						want = 1
					}
					if marks[i] != want {
						t.Errorf("%v: rank %d mark %d (id %d): got %d, want %d",
							backend, c.Rank(), i, id, marks[i], want)
					}
				}
			})
			if err != nil {
				t.Fatalf("%v: %v", backend, err)
			}
		}
	})
}
