package geocol

import (
	"fmt"
	"sort"

	"chaos/internal/dist"
	"chaos/internal/machine"
)

// Graph is one rank's slice of a GeoCoL data structure. Vertices are
// distributed by Home (BLOCK); all per-vertex slices are indexed by
// home-local vertex number.
type Graph struct {
	// N is the global vertex count.
	N int
	// Home is the construction distribution of the vertex space.
	Home dist.BlockDist

	// HasLink, HasGeom, HasLoad report which directives contributed.
	HasLink, HasGeom, HasLoad bool

	// XAdj/Adj form a local CSR: neighbors of home-local vertex l are
	// Adj[XAdj[l]:XAdj[l+1]], as global vertex ids, sorted, with
	// duplicates and self-loops removed.
	XAdj []int
	Adj  []int
	// EdgeW holds per-edge weights parallel to Adj; nil means unit
	// weights. A CONSTRUCT-built graph is unweighted; coarse graphs
	// built by BuildCoarse carry the aggregated multiplicity of the
	// fine edges each coarse edge represents.
	EdgeW []float64
	// NEdges is the global undirected edge count after dedup.
	NEdges int

	// Dim and Coords hold GEOMETRY: Coords[d][l] is coordinate d of
	// home-local vertex l.
	Dim    int
	Coords [][]float64

	// Weights holds LOAD: Weights[l] is the computational weight of
	// home-local vertex l. When no LOAD directive is given, unit
	// weights are assumed by partitioners.
	Weights []float64
}

// Option contributes one directive keyword to a CONSTRUCT.
type Option func(*spec)

type spec struct {
	e1, e2  []int
	hasLink bool
	coords  [][]float64
	weights []float64
}

// WithLink supplies connectivity: edge i links global vertices e1[i]
// and e2[i]. Each rank passes its locally stored slice of the edge
// list (edges may name any vertices). Mirrors
// "LINK(E, edge_list1, edge_list2)".
func WithLink(e1, e2 []int) Option {
	return func(s *spec) {
		if len(e1) != len(e2) {
			panic(fmt.Sprintf("geocol: LINK lists of unequal length %d, %d", len(e1), len(e2)))
		}
		s.e1, s.e2 = e1, e2
		s.hasLink = true
	}
}

// WithGeometry supplies spatial coordinates: coords[d] holds dimension
// d for this rank's home-resident vertices, in home-local order.
// Mirrors "GEOMETRY(ndim, xcord, ycord, zcord)".
func WithGeometry(coords ...[]float64) Option {
	return func(s *spec) { s.coords = coords }
}

// WithLoad supplies per-vertex computational weight for this rank's
// home-resident vertices. Mirrors "LOAD(weight)".
func WithLoad(w []float64) Option {
	return func(s *spec) { s.weights = w }
}

// Build constructs the GeoCoL data structure for n vertices; it is the
// runtime realization of the CONSTRUCT directive (paper Section 4.1.2).
// Collective.
func Build(c *machine.Ctx, n int, opts ...Option) *Graph {
	var s spec
	for _, o := range opts {
		o(&s)
	}
	g := &Graph{N: n, Home: dist.NewBlock(n, c.Procs())}
	localN := g.Home.LocalSize(c.Rank())

	if s.coords != nil {
		g.HasGeom = true
		g.Dim = len(s.coords)
		for d, col := range s.coords {
			if len(col) != localN {
				panic(fmt.Sprintf("geocol: GEOMETRY dim %d has %d entries, want %d", d, len(col), localN))
			}
			cp := make([]float64, localN)
			copy(cp, col)
			g.Coords = append(g.Coords, cp)
		}
		c.Words(localN * g.Dim)
	}
	if s.weights != nil {
		g.HasLoad = true
		if len(s.weights) != localN {
			panic(fmt.Sprintf("geocol: LOAD has %d entries, want %d", len(s.weights), localN))
		}
		g.Weights = make([]float64, localN)
		copy(g.Weights, s.weights)
		c.Words(localN)
	}

	if s.hasLink {
		g.HasLink = true
		g.buildLink(c, s.e1, s.e2)
	} else {
		g.XAdj = make([]int, localN+1)
	}
	return g
}

// buildLink routes each edge endpoint to the home rank of the vertex,
// then assembles the deduplicated local CSR.
func (g *Graph) buildLink(c *machine.Ctx, e1, e2 []int) {
	p := c.Procs()
	out := make([][]int, p)
	emit := func(u, v int) {
		if u < 0 || u >= g.N || v < 0 || v >= g.N {
			panic(fmt.Sprintf("geocol: LINK edge (%d,%d) out of range [0,%d)", u, v, g.N))
		}
		if u == v {
			return // self-loops carry no dependence
		}
		out[g.Home.Owner(u)] = append(out[g.Home.Owner(u)], u, v)
	}
	for i := range e1 {
		emit(e1[i], e2[i])
		emit(e2[i], e1[i])
	}
	c.Words(4 * len(e1))
	in := c.AlltoAllInts(out)

	localN := g.Home.LocalSize(c.Rank())
	lo := g.Home.Lo(c.Rank())
	adj := make([][]int, localN)
	for src := 0; src < p; src++ {
		pairs := in[src]
		for i := 0; i+1 < len(pairs); i += 2 {
			u, v := pairs[i], pairs[i+1]
			adj[u-lo] = append(adj[u-lo], v)
		}
	}
	// Sort and dedup each adjacency list for determinism.
	g.XAdj = make([]int, localN+1)
	g.Adj = g.Adj[:0]
	degSum := 0
	for l := 0; l < localN; l++ {
		lst := adj[l]
		sort.Ints(lst)
		prev := -1
		for _, v := range lst {
			if v != prev {
				g.Adj = append(g.Adj, v)
				prev = v
				degSum++
			}
		}
		g.XAdj[l+1] = len(g.Adj)
	}
	c.Words(3 * degSum)
	g.NEdges = c.SumInt(degSum) / 2
}

// Degree returns the degree of home-local vertex l.
func (g *Graph) Degree(l int) int { return g.XAdj[l+1] - g.XAdj[l] }

// Neighbors returns the sorted global neighbor ids of home-local vertex
// l (do not mutate).
func (g *Graph) Neighbors(l int) []int { return g.Adj[g.XAdj[l]:g.XAdj[l+1]] }

// LocalN returns the number of home-resident vertices on rank.
func (g *Graph) LocalN(rank int) int { return g.Home.LocalSize(rank) }

// Weight returns the LOAD weight of home-local vertex l (1 when no
// LOAD was supplied).
func (g *Graph) Weight(l int) float64 {
	if !g.HasLoad {
		return 1
	}
	return g.Weights[l]
}

// Bytes reports the approximate heap footprint of this rank's slice of
// the graph — the CSR, edge weights, coordinates and load weights — in
// bytes. The service layer's cache uses it to account retained
// coarsening ladders against its memory cap.
func (g *Graph) Bytes() int {
	if g == nil {
		return 0
	}
	b := 8 * (len(g.XAdj) + len(g.Adj))
	b += 8 * (len(g.EdgeW) + len(g.Weights))
	for _, col := range g.Coords {
		b += 8 * len(col)
	}
	return b
}

// Full is a gathered (replicated) GeoCoL graph used by serial
// partitioners such as recursive spectral bisection.
type Full struct {
	N                         int
	HasLink, HasGeom, HasLoad bool
	XAdj, Adj                 []int
	// EdgeW is the per-edge weight parallel to Adj (nil = unit).
	EdgeW   []float64
	Dim     int
	Coords  [][]float64
	Weights []float64
	NEdges  int
}

// Gather assembles the complete GeoCoL graph on every rank;
// collective. The communication is charged to the virtual clock, which
// is part of the paper's "graph generation" cost for connectivity-based
// partitioners.
func (g *Graph) Gather(c *machine.Ctx) *Full {
	f := &Full{
		N: g.N, HasLink: g.HasLink, HasGeom: g.HasGeom, HasLoad: g.HasLoad,
		Dim: g.Dim, NEdges: g.NEdges,
	}
	if g.HasLink {
		// Degrees then adjacency; home ranges are rank-ordered so
		// concatenation lines up with global vertex order.
		degs := make([]int, g.Home.LocalSize(c.Rank()))
		for l := range degs {
			degs[l] = g.Degree(l)
		}
		allDeg := c.AllGatherInts(degs)
		f.XAdj = make([]int, g.N+1)
		for v := 0; v < g.N; v++ {
			f.XAdj[v+1] = f.XAdj[v] + allDeg[v]
		}
		f.Adj = c.AllGatherInts(g.Adj)
		if g.EdgeW != nil {
			f.EdgeW = c.AllGatherFloats(g.EdgeW)
		}
	} else {
		f.XAdj = make([]int, g.N+1)
	}
	if g.HasGeom {
		for _, col := range g.Coords {
			f.Coords = append(f.Coords, c.AllGatherFloats(col))
		}
	}
	if g.HasLoad {
		f.Weights = c.AllGatherFloats(g.Weights)
	}
	return f
}

// Weight returns the LOAD weight of global vertex v (1 when absent).
func (f *Full) Weight(v int) float64 {
	if !f.HasLoad {
		return 1
	}
	return f.Weights[v]
}

// Neighbors returns the neighbors of global vertex v.
func (f *Full) Neighbors(v int) []int { return f.Adj[f.XAdj[v]:f.XAdj[v+1]] }

// Contractor builds coarse graphs of weighted CSR graphs under a
// clustering — the coarse-GeoCoL construction step of multilevel
// partitioning schemes. The zero value is ready to use; reusing one
// Contractor across the calls of a coarsening ladder amortizes its
// scratch arrays, which matters because a multilevel partitioner
// contracts graphs proportional to its entire recursion tree.
type Contractor struct {
	start, next, members []int
	acc                  []float64 // summed weight toward each coarse neighbor
	mark                 []int     // mark[u] == stamp: u already seen for this cluster
	stamp                int
	nbrs                 []int
}

// Contract builds the coarse graph under a clustering. cmap maps each
// of the len(xadj)-1 fine vertices to a coarse vertex in [0, nc); ew
// holds per-edge weights parallel to adj and w per-vertex weights
// (either may be nil, meaning unit weights). The coarse graph
// aggregates faithfully: coarse vertex weights are the sums of their
// members' weights, parallel fine edges between two clusters merge
// into one coarse edge carrying the summed weight, and edges internal
// to a cluster vanish. Coarse adjacency lists follow first-encounter
// order over each cluster's members — deterministic (coarsening
// ladders must replay exactly), though not sorted — and the result
// keeps the symmetric CSR form the fine graph uses. The returned
// slices are freshly allocated; only scratch is reused.
func (ct *Contractor) Contract(xadj, adj []int, ew, w []float64, cmap []int, nc int) (cxadj, cadj []int, cew, cw []float64) {
	n := len(xadj) - 1
	cw = make([]float64, nc)
	for v := 0; v < n; v++ {
		if w == nil {
			cw[cmap[v]]++
		} else {
			cw[cmap[v]] += w[v]
		}
	}

	// Bucket fine vertices by coarse vertex (counting sort) so each
	// coarse adjacency list is assembled in one contiguous scan.
	start := ct.grow(&ct.start, nc+1)
	for i := range start {
		start[i] = 0
	}
	for v := 0; v < n; v++ {
		start[cmap[v]+1]++
	}
	for c := 0; c < nc; c++ {
		start[c+1] += start[c]
	}
	members := ct.grow(&ct.members, n)
	next := ct.grow(&ct.next, nc)
	copy(next, start[:nc])
	for v := 0; v < n; v++ {
		members[next[cmap[v]]] = v
		next[cmap[v]]++
	}

	if len(ct.acc) < nc {
		ct.acc = make([]float64, nc)
		ct.mark = make([]int, nc)
		ct.stamp = 0
	}
	cxadj = make([]int, nc+1)
	cadj = make([]int, 0, len(adj))
	cew = make([]float64, 0, len(adj))
	for c := 0; c < nc; c++ {
		ct.stamp++
		ct.nbrs = ct.nbrs[:0]
		for _, v := range members[start[c]:start[c+1]] {
			for k := xadj[v]; k < xadj[v+1]; k++ {
				u := cmap[adj[k]]
				if u == c {
					continue // internal edge vanishes
				}
				if ct.mark[u] != ct.stamp {
					ct.mark[u] = ct.stamp
					ct.acc[u] = 0
					ct.nbrs = append(ct.nbrs, u)
				}
				if ew == nil {
					ct.acc[u]++
				} else {
					ct.acc[u] += ew[k]
				}
			}
		}
		for _, u := range ct.nbrs {
			cadj = append(cadj, u)
			cew = append(cew, ct.acc[u])
		}
		cxadj[c+1] = len(cadj)
	}
	return cxadj, cadj, cew, cw
}

// grow returns (*s)[:n], reallocating only when the capacity is short.
func (ct *Contractor) grow(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	return (*s)[:n]
}

// Contract is the one-shot convenience form of Contractor.Contract.
func Contract(xadj, adj []int, ew, w []float64, cmap []int, nc int) (cxadj, cadj []int, cew, cw []float64) {
	var ct Contractor
	return ct.Contract(xadj, adj, ew, w, cmap, nc)
}

// CoarseAssembler holds the reusable scratch of the distributed
// contraction (BuildCoarse): the ghost copy of the clustering, the
// per-rank weight/edge routing tables, and the contribution triples of
// the local CSR assembly. Like Contractor it is plain per-goroutine
// state — the zero value is ready, buffers grow to the steady-state
// high-water mark and are reused across levels and epochs, and nothing
// the caller retains aliases them (the coarse Graph is always freshly
// allocated).
type CoarseAssembler struct {
	ghostC []int
	wIDs   [][]int
	wVals  [][]float64
	eIDs   [][]int
	eW     [][]float64
	tris   []coarseContrib
}

// coarseContrib is one routed fine-edge contribution: local coarse
// source, global coarse neighbor, weight.
type coarseContrib struct {
	l, u int
	w    float64
}

// growRankInts sizes a per-rank routing table to procs entries and
// resets each entry to length zero, keeping every backing array; the
// float twin below is identical.
func growRankInts(s *[][]int, procs int) [][]int {
	if cap(*s) < procs {
		*s = make([][]int, procs)
	}
	*s = (*s)[:procs]
	for r := range *s {
		(*s)[r] = (*s)[r][:0]
	}
	return *s
}

func growRankFloats(s *[][]float64, procs int) [][]float64 {
	if cap(*s) < procs {
		*s = make([][]float64, procs)
	}
	*s = (*s)[:procs]
	for r := range *s {
		(*s)[r] = (*s)[r][:0]
	}
	return *s
}

// BuildCoarse is the one-shot convenience form of
// CoarseAssembler.BuildCoarse.
func BuildCoarse(c *machine.Ctx, g *Graph, ge *GhostExchange, cmap []int, coarseN int) *Graph {
	var a CoarseAssembler
	return a.BuildCoarse(c, g, ge, cmap, coarseN)
}

// BuildCoarse is the distributed build path of the contraction: it
// collectively contracts a block-distributed Graph under a clustering
// without ever gathering it. cmap maps each of this rank's home-local
// fine vertices to a global coarse vertex id in [0, coarseN); the
// clustering may freely cross rank boundaries (a distributed matcher
// assigns both endpoints of a matched edge the same coarse id).
//
// Every rank routes its fine vertex weights and fine edges to the BLOCK
// owner of the coarse endpoint, where contributions from all ranks are
// aggregated exactly as Contractor.Contract does serially: coarse
// vertex weights are the global sums of their members' weights,
// parallel fine edges between two clusters merge into one coarse edge
// carrying the summed weight, and intra-cluster edges vanish. Because
// the fine CSR is symmetric and both endpoint owners route every edge,
// the coarse CSR comes out symmetric with identical weights on both
// directions. Adjacency lists are sorted by neighbor id, making the
// result independent of which ranks contributed which fine edges.
//
// The returned Graph is block-distributed over coarseN vertices and
// always carries LOAD weights (the aggregated member weights) and
// per-edge weights. ge must be the exchange pattern of g (the caller
// built it for the matching phase already). Collective; communication
// and assembly work are charged to the virtual clock.
//
//chaos:hotpath
func (a *CoarseAssembler) BuildCoarse(c *machine.Ctx, g *Graph, ge *GhostExchange, cmap []int, coarseN int) *Graph {
	me, procs := c.Rank(), c.Procs()
	ghostC := ge.PushIntsInto(c, cmap, a.ghostC)
	a.ghostC = ghostC

	coarse := &Graph{
		N: coarseN, Home: dist.NewBlock(coarseN, procs),
		HasLink: true, HasLoad: true,
	}
	localN := g.LocalN(me)

	// Route (coarse id, weight) and (coarse src, coarse dst, weight) to
	// the coarse owner of the (source) coarse vertex. Edge ids and edge
	// weights travel in two parallel exchanges with matching order.
	wIDs := growRankInts(&a.wIDs, procs)
	wVals := growRankFloats(&a.wVals, procs)
	eIDs := growRankInts(&a.eIDs, procs)
	eW := growRankFloats(&a.eW, procs)
	for l := 0; l < localN; l++ {
		cv := cmap[l]
		r := coarse.Home.Owner(cv)
		wIDs[r] = append(wIDs[r], cv)
		wVals[r] = append(wVals[r], g.Weight(l))
		for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
			var cu int
			// Loc resolves the neighbor to home index or ghost slot with
			// one read — no ownership test, no id lookup.
			if loc := ge.Loc[k]; loc >= 0 {
				cu = cmap[loc]
			} else {
				cu = ghostC[-loc-1]
			}
			if cu == cv {
				continue // intra-cluster edge vanishes
			}
			w := 1.0
			if g.EdgeW != nil {
				w = g.EdgeW[k]
			}
			eIDs[r] = append(eIDs[r], cv, cu)
			eW[r] = append(eW[r], w)
		}
	}
	c.Words(2*len(g.Adj) + 2*localN)
	inWIDs := c.AlltoAllInts(wIDs)
	inWVals := c.AlltoAllFloats(wVals)
	inEIDs := c.AlltoAllInts(eIDs)
	inEW := c.AlltoAllFloats(eW)

	lo2 := coarse.Home.Lo(me)
	localN2 := coarse.Home.LocalSize(me)
	coarse.Weights = make([]float64, localN2)
	for r := 0; r < procs; r++ {
		ids, vals := inWIDs[r], inWVals[r]
		for i, cv := range ids {
			coarse.Weights[cv-lo2] += vals[i]
		}
	}

	// Assemble the local coarse CSR: collect contributions, sort by
	// (local coarse vertex, neighbor), merge duplicates by summing.
	tris := a.tris[:0]
	for r := 0; r < procs; r++ {
		ids, ws := inEIDs[r], inEW[r]
		for i := 0; i+1 < len(ids); i += 2 {
			tris = append(tris, coarseContrib{ids[i] - lo2, ids[i+1], ws[i/2]})
		}
	}
	a.tris = tris
	// sort.Slice, NOT slices.SortFunc: both are unstable, and equal
	// (l,u) groups below sum their float weights in sort output order —
	// the exact algorithm is part of the bit-identity contract.
	sort.Slice(tris, func(a, b int) bool {
		if tris[a].l != tris[b].l {
			return tris[a].l < tris[b].l
		}
		return tris[a].u < tris[b].u
	})
	coarse.XAdj = make([]int, localN2+1)
	// EdgeW stays non-nil even when this rank assembled no edges:
	// Gather's EdgeW collective is gated on nil-ness, which must be
	// rank-uniform in a bulk-synchronous machine.
	coarse.EdgeW = make([]float64, 0, len(tris))
	degSum := 0
	for i := 0; i < len(tris); {
		j := i
		w := 0.0
		for ; j < len(tris) && tris[j].l == tris[i].l && tris[j].u == tris[i].u; j++ {
			w += tris[j].w
		}
		coarse.Adj = append(coarse.Adj, tris[i].u)
		coarse.EdgeW = append(coarse.EdgeW, w)
		coarse.XAdj[tris[i].l+1] = len(coarse.Adj)
		degSum++
		i = j
	}
	for l := 0; l < localN2; l++ {
		if coarse.XAdj[l+1] < coarse.XAdj[l] {
			coarse.XAdj[l+1] = coarse.XAdj[l]
		}
	}
	c.Words(3 * len(tris))
	coarse.NEdges = c.SumInt(degSum) / 2
	return coarse
}
