package geocol

import (
	"reflect"
	"strings"
	"testing"

	"chaos/internal/machine"
)

// ringEdges returns the edge list of an n-cycle, sliced for rank r of p
// by a block split of the edge index space.
func ringEdges(n, p, r int) (e1, e2 []int) {
	lo, hi := r*n/p, (r+1)*n/p
	for e := lo; e < hi; e++ {
		e1 = append(e1, e)
		e2 = append(e2, (e+1)%n)
	}
	return
}

func TestBuildLinkRing(t *testing.T) {
	const n, p = 12, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		e1, e2 := ringEdges(n, p, c.Rank())
		g := Build(c, n, WithLink(e1, e2))
		if !g.HasLink || g.HasGeom || g.HasLoad {
			t.Error("directive flags wrong")
		}
		if g.NEdges != n {
			t.Errorf("NEdges = %d, want %d", g.NEdges, n)
		}
		lo := g.Home.Lo(c.Rank())
		for l := 0; l < g.Home.LocalSize(c.Rank()); l++ {
			v := lo + l
			if g.Degree(l) != 2 {
				t.Errorf("degree(%d) = %d, want 2", v, g.Degree(l))
			}
			nb := g.Neighbors(l)
			want1, want2 := (v+n-1)%n, (v+1)%n
			if want1 > want2 {
				want1, want2 = want2, want1
			}
			if nb[0] != want1 || nb[1] != want2 {
				t.Errorf("neighbors(%d) = %v, want [%d %d]", v, nb, want1, want2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdgesAndSelfLoopsDropped(t *testing.T) {
	const n, p = 6, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		// Both ranks contribute the same edge (0,1) plus self-loops.
		e1 := []int{0, 0, 2, 1}
		e2 := []int{1, 1, 2, 0}
		g := Build(c, n, WithLink(e1, e2))
		if g.NEdges != 1 {
			t.Errorf("NEdges = %d, want 1 (dedup + self-loop removal)", g.NEdges)
		}
		if c.Rank() == 0 {
			if g.Degree(0) != 1 || g.Neighbors(0)[0] != 1 {
				t.Errorf("vertex 0 adjacency = %v", g.Neighbors(0))
			}
			if g.Degree(2) != 0 {
				t.Errorf("self-loop retained on vertex 2")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeometryAndLoad(t *testing.T) {
	const n, p = 10, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		localN := n/p + 0
		lo := c.Rank() * localN
		x := make([]float64, localN)
		y := make([]float64, localN)
		w := make([]float64, localN)
		for l := 0; l < localN; l++ {
			x[l] = float64(lo + l)
			y[l] = -float64(lo + l)
			w[l] = float64(lo+l) * 2
		}
		g := Build(c, n, WithGeometry(x, y), WithLoad(w))
		if !g.HasGeom || !g.HasLoad || g.HasLink {
			t.Error("flags wrong")
		}
		if g.Dim != 2 {
			t.Errorf("Dim = %d", g.Dim)
		}
		if g.Weight(0) != float64(lo)*2 {
			t.Errorf("Weight(0) = %v", g.Weight(0))
		}
		// Buffers are copied: mutating inputs must not change g.
		x[0] = 999
		if g.Coords[0][0] == 999 {
			t.Error("GEOMETRY aliases caller buffer")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnitWeightDefault(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		g := Build(c, 4)
		if g.Weight(0) != 1 {
			t.Errorf("default weight = %v, want 1", g.Weight(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherMatchesLocal(t *testing.T) {
	const n, p = 16, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		e1, e2 := ringEdges(n, p, c.Rank())
		localN := g0localN(n, p, c.Rank())
		x := make([]float64, localN)
		w := make([]float64, localN)
		lo := c.Rank() * (n / p)
		for l := range x {
			x[l] = float64(lo + l)
			w[l] = 1 + float64((lo+l)%3)
		}
		g := Build(c, n, WithLink(e1, e2), WithGeometry(x), WithLoad(w))
		f := g.Gather(c)
		if f.N != n || f.NEdges != n || !f.HasLink || !f.HasGeom || !f.HasLoad {
			t.Error("Full metadata wrong")
		}
		for v := 0; v < n; v++ {
			nb := f.Neighbors(v)
			if len(nb) != 2 {
				t.Errorf("full degree(%d) = %d", v, len(nb))
			}
			if f.Coords[0][v] != float64(v) {
				t.Errorf("full coord(%d) = %v", v, f.Coords[0][v])
			}
			if f.Weight(v) != 1+float64(v%3) {
				t.Errorf("full weight(%d) = %v", v, f.Weight(v))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func g0localN(n, p, r int) int {
	q, rem := n/p, n%p
	if r < rem {
		return q + 1
	}
	return q
}

func TestEdgeOutOfRangePanics(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		Build(c, 4, WithLink([]int{0}, []int{7}))
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestMismatchedLinkListsPanic(t *testing.T) {
	err := machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		Build(c, 4, WithLink([]int{0, 1}, []int{1}))
	})
	if err == nil || !strings.Contains(err.Error(), "unequal") {
		t.Fatalf("err = %v", err)
	}
}

func TestGeometryWrongLengthPanics(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		Build(c, 8, WithGeometry(make([]float64, 1)))
	})
	if err == nil {
		t.Fatal("expected panic for short GEOMETRY column")
	}
}

func TestCombinedGeometryConnectivity(t *testing.T) {
	// Figure 4/5 pattern: CONSTRUCT with both GEOMETRY and LINK.
	const n, p = 8, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		e1, e2 := ringEdges(n, p, c.Rank())
		localN := n / p
		x := make([]float64, localN)
		g := Build(c, n, WithGeometry(x), WithLink(e1, e2))
		if !g.HasGeom || !g.HasLink {
			t.Error("combined construct lost a directive")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContractAggregation(t *testing.T) {
	// A path 0-1-2-3 with edge weights 1,2,3 and vertex weights
	// 1,2,3,4; cluster {0,1} and {2,3}. The coarse graph must be a
	// single edge of weight 2 (the 1-2 edge) between vertices of
	// weight 3 and 7; the intra-cluster edges vanish.
	xadj := []int{0, 1, 3, 5, 6}
	adj := []int{1, 0, 2, 1, 3, 2}
	ew := []float64{1, 1, 2, 2, 3, 3}
	w := []float64{1, 2, 3, 4}
	cmap := []int{0, 0, 1, 1}
	cxadj, cadj, cew, cw := Contract(xadj, adj, ew, w, cmap, 2)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(cxadj, want) {
		t.Errorf("cxadj = %v, want %v", cxadj, want)
	}
	if want := []int{1, 0}; !reflect.DeepEqual(cadj, want) {
		t.Errorf("cadj = %v, want %v", cadj, want)
	}
	if want := []float64{2, 2}; !reflect.DeepEqual(cew, want) {
		t.Errorf("cew = %v, want %v", cew, want)
	}
	if want := []float64{3, 7}; !reflect.DeepEqual(cw, want) {
		t.Errorf("cw = %v, want %v", cw, want)
	}
}

func TestContractUnitWeightsAndReuse(t *testing.T) {
	// Nil ew/w mean unit weights: a triangle collapsed to an edge gets
	// vertex weights {2, 1} and the two fine edges between the
	// clusters merge into one coarse edge of weight 2. Reusing the
	// Contractor (as coarsening ladders do) must not leak state
	// between calls.
	xadj := []int{0, 2, 4, 6}
	adj := []int{1, 2, 0, 2, 0, 1}
	cmap := []int{0, 0, 1}
	var ct Contractor
	for round := 0; round < 3; round++ {
		cxadj, cadj, cew, cw := ct.Contract(xadj, adj, nil, nil, cmap, 2)
		if want := []int{0, 1, 2}; !reflect.DeepEqual(cxadj, want) {
			t.Fatalf("round %d: cxadj = %v, want %v", round, cxadj, want)
		}
		if want := []int{1, 0}; !reflect.DeepEqual(cadj, want) {
			t.Fatalf("round %d: cadj = %v, want %v", round, cadj, want)
		}
		if want := []float64{2, 2}; !reflect.DeepEqual(cew, want) {
			t.Fatalf("round %d: cew = %v, want %v", round, cew, want)
		}
		if want := []float64{2, 1}; !reflect.DeepEqual(cw, want) {
			t.Fatalf("round %d: cw = %v, want %v", round, cw, want)
		}
	}
}
