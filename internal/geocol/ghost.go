package geocol

import (
	"sort"

	"chaos/internal/machine"
)

// GhostExchange precomputes the boundary-exchange pattern of a
// block-distributed Graph: which of this rank's home vertices each
// neighboring rank reads (their ghosts of ours) and which off-rank
// vertices this rank reads (our ghosts). Because the CSR is symmetric —
// every undirected edge is stored by both endpoint owners — rank A
// needs a value for vertex u of rank B exactly when B needs to send it,
// so the pattern can be derived locally with no negotiation round. The
// Push methods then move one value per boundary vertex; distributed
// partitioners call them once per matching round or refinement sweep.
//
// The pattern is held entirely in flat index arrays — no maps. Loc
// localizes every CSR adjacency slot once at construction, so the hot
// loops of the distributed partitioners (matching rounds, FM sweeps,
// coarse assembly) resolve a neighbor's home-or-ghost location with a
// single array read instead of an ownership test plus a map lookup,
// and the incremental exchanges address ghost slots by position in the
// sender's send list, which the receiver converts to a slot with one
// addition (recvStart).
type GhostExchange struct {
	// IDs holds the sorted global ids of this rank's ghost (off-rank
	// neighbor) vertices; Push results are parallel to it.
	IDs []int
	// Loc localizes the owning graph's CSR: for adjacency slot k,
	// Loc[k] >= 0 is the home-local index of Adj[k] when this rank owns
	// it, and Loc[k] < 0 encodes ghost slot -(Loc[k]+1) otherwise.
	// Indexed exactly like g.Adj; hot loops read it instead of calling
	// Home.Owner and Slot per edge.
	Loc []int
	lo  int
	// send[p] lists the home-local vertices rank p reads, ascending.
	// By CSR symmetry this is exactly the run of rank p's ghost ids
	// owned by this rank, in the same (ascending) order — which is what
	// lets the incremental exchanges ship send-list positions instead
	// of global ids.
	send [][]int
	// recvStart[p] is the offset in IDs where rank p's vertices begin
	// (IDs is sorted and the home distribution is BLOCK, so each rank's
	// ghosts form one contiguous run).
	recvStart []int
	// sendInts/sendFloats are fixed-size per-rank send buffers sized to
	// the send lists, and updOut is the variable-length send scratch of
	// the incremental exchanges. All are reused across Push calls, which
	// run once per matching round or refinement sweep: AlltoAll copies
	// payloads before delivery, so handing the same backing arrays to
	// every exchange is safe and keeps the per-sweep allocation count
	// flat (see //chaos:hotpath).
	sendInts   [][]int
	sendFloats [][]float64
	updOut     [][]int
}

// Bytes reports the approximate heap footprint of the exchange
// pattern's retained index arrays and send buffers, in bytes; the
// service cache accounts retained ladders (which hold one exchange per
// level) against its memory cap with it.
func (ge *GhostExchange) Bytes() int {
	if ge == nil {
		return 0
	}
	b := 8 * (len(ge.IDs) + len(ge.Loc) + len(ge.recvStart))
	for _, s := range ge.send {
		b += 8 * len(s)
	}
	for _, s := range ge.sendInts {
		b += 8 * len(s)
	}
	for _, s := range ge.sendFloats {
		b += 8 * len(s)
	}
	for _, s := range ge.updOut {
		b += 8 * len(s)
	}
	return b
}

// NewGhostExchange derives the exchange pattern of g; purely local.
func NewGhostExchange(c *machine.Ctx, g *Graph) *GhostExchange {
	me, procs := c.Rank(), c.Procs()
	ge := &GhostExchange{
		lo:   g.Home.Lo(me),
		send: make([][]int, procs),
	}
	localN := g.LocalN(me)
	// Collect the remote endpoint of every edge, then sort and dedup:
	// the ghost id list and each rank's send list come out of one flat
	// pass with no map.
	remote := make([]int, 0, len(g.Adj))
	for l := 0; l < localN; l++ {
		for _, v := range g.Neighbors(l) {
			r := g.Home.Owner(v)
			if r == me {
				continue
			}
			remote = append(remote, v)
			// l's ascend in the outer loop, so adjacent-duplicate
			// suppression dedups each rank's send list.
			if s := ge.send[r]; len(s) == 0 || s[len(s)-1] != l {
				ge.send[r] = append(ge.send[r], l)
			}
		}
	}
	sort.Ints(remote)
	for i, v := range remote {
		if i == 0 || v != remote[i-1] {
			ge.IDs = append(ge.IDs, v)
		}
	}
	ge.recvStart = make([]int, procs+1)
	r := 0
	for i, v := range ge.IDs {
		for owner := g.Home.Owner(v); r < owner; {
			r++
			ge.recvStart[r] = i
		}
	}
	for ; r < procs; r++ {
		ge.recvStart[r+1] = len(ge.IDs)
	}
	// Localize the CSR once: every adjacency slot resolves to a home
	// index or a ghost slot here, never again in the sweeps. The
	// assembly rides in the same inspector charge as the pattern scan.
	ge.Loc = make([]int, len(g.Adj))
	for k, v := range g.Adj {
		if g.Home.Owner(v) == me {
			ge.Loc[k] = v - ge.lo
		} else {
			ge.Loc[k] = -(sort.SearchInts(ge.IDs, v) + 1)
		}
	}
	c.Words(localN + 2*len(ge.IDs))
	ge.sendInts = make([][]int, procs)
	ge.sendFloats = make([][]float64, procs)
	ge.updOut = make([][]int, procs)
	for r, ls := range ge.send {
		if len(ls) > 0 {
			ge.sendInts[r] = make([]int, len(ls))
			ge.sendFloats[r] = make([]float64, len(ls))
		}
	}
	return ge
}

// Slot returns the index in IDs of ghost vertex v (which must be a
// ghost of this rank). Hot loops should prefer Loc, which resolves the
// slot of an adjacency position with one array read; Slot binary-
// searches the sorted id list.
func (ge *GhostExchange) Slot(v int) int { return sort.SearchInts(ge.IDs, v) }

// PushInts exchanges one int per boundary vertex: vals is indexed by
// home-local vertex, and the result is parallel to IDs. Collective.
func (ge *GhostExchange) PushInts(c *machine.Ctx, vals []int) []int {
	return ge.PushIntsInto(c, vals, nil)
}

// PushIntsInto is PushInts delivering into dst when it has the
// capacity, allocating a fresh slice only when it does not. Loops that
// push once per sweep or per ladder level — coarsening, V-cycle
// construction, FM refinement — hand back the previous push's slice to
// keep the per-sweep allocation count flat. dst's prior contents are
// ignored. Collective.
//
//chaos:hotpath
func (ge *GhostExchange) PushIntsInto(c *machine.Ctx, vals []int, dst []int) []int {
	for r, ls := range ge.send {
		buf := ge.sendInts[r]
		for i, l := range ls {
			buf[i] = vals[l]
		}
	}
	in := c.AlltoAllInts(ge.sendInts)
	var res []int
	if cap(dst) >= len(ge.IDs) {
		res = dst[:len(ge.IDs)]
	} else {
		//chaosvet:ignore hotalloc grows only when the caller's buffer is short; steady-state sweeps reuse it
		res = make([]int, len(ge.IDs))
	}
	for r, xs := range in {
		copy(res[ge.recvStart[r]:ge.recvStart[r+1]], xs)
	}
	return res
}

// UpdateInts is the incremental form of PushInts: only home vertices
// with changed[l] set are exchanged (as explicit (position, value)
// pairs), and the receiver applies them in place to its ghost copy from
// an earlier PushInts. When few values change per round — refinement
// sweeps move a few percent of the boundary — this replaces a dense
// boundary exchange with a near-empty one, which matters because the
// dense exchange's byte volume is what keeps distributed coarsening
// from scaling on heavily interleaved vertex distributions. Collective.
func (ge *GhostExchange) UpdateInts(c *machine.Ctx, vals []int, changed []bool, ghost []int) {
	//chaosvet:ignore exchangeerr UpdateInts is the sanctioned no-touched-list wrapper; the payload lands in ghost, only the slot list is dropped
	ge.UpdateIntsTouchedInto(c, vals, changed, ghost, nil)
}

// UpdateIntsTouched is UpdateInts returning the ghost slots whose value
// actually changed, in ascending slot order (nil when nothing changed).
// Receivers that maintain incremental state keyed on ghost values — the
// parallel FM refiner keeps per-vertex gain and boundary caches that
// are only invalidated by a neighbor's part changing — use the touched
// list to reprocess exactly the affected vertices instead of rescanning
// the whole ghost layer every round. Collective.
func (ge *GhostExchange) UpdateIntsTouched(c *machine.Ctx, vals []int, changed []bool, ghost []int) []int {
	return ge.UpdateIntsTouchedInto(c, vals, changed, ghost, nil)
}

// UpdateIntsTouchedInto is UpdateIntsTouched accumulating the touched
// list into dst (overwritten, reused when its capacity suffices), so a
// steady-state refinement sweep allocates nothing for the exchange.
// The wire format is positional: each sender ships (index within its
// send list, value), and the receiver converts the index to a ghost
// slot with one addition — sender r's send list is exactly this rank's
// run of ghost ids owned by r, in the same ascending order. Collective.
//
//chaos:hotpath
func (ge *GhostExchange) UpdateIntsTouchedInto(c *machine.Ctx, vals []int, changed []bool, ghost []int, dst []int) []int {
	out := ge.resetUpdOut()
	for r, ls := range ge.send {
		for i, l := range ls {
			if changed[l] {
				out[r] = append(out[r], i, vals[l])
			}
		}
	}
	in := c.AlltoAllInts(out)
	// Senders are visited in rank order and each rank's positions
	// arrive ascending, so slots (contiguous per rank, ascending
	// within) come out sorted without an explicit sort.
	touched := dst[:0]
	for r, xs := range in {
		base := ge.recvStart[r]
		for i := 0; i+1 < len(xs); i += 2 {
			s := base + xs[i]
			if ghost[s] != xs[i+1] {
				ghost[s] = xs[i+1]
				//chaosvet:ignore hotalloc touched reuses dst and its growth is bounded by the ghost-layer size; steady-state sweeps reach fixed capacity
				touched = append(touched, s)
			}
		}
	}
	if len(touched) == 0 {
		return nil
	}
	return touched
}

// resetUpdOut empties the incremental-exchange send scratch keeping its
// per-rank backing arrays.
func (ge *GhostExchange) resetUpdOut() [][]int {
	for r := range ge.updOut {
		ge.updOut[r] = ge.updOut[r][:0]
	}
	return ge.updOut
}

// PushMarks is the one-bit form of UpdateInts for monotone flags (a
// matched vertex never unmatches): only the send-list positions of
// newly marked home vertices travel, and the receiver sets the
// corresponding ghost flags to 1. Collective.
//
//chaos:hotpath
func (ge *GhostExchange) PushMarks(c *machine.Ctx, changed []bool, ghost []int) {
	out := ge.resetUpdOut()
	for r, ls := range ge.send {
		for i, l := range ls {
			if changed[l] {
				out[r] = append(out[r], i)
			}
		}
	}
	in := c.AlltoAllInts(out)
	for r, xs := range in {
		base := ge.recvStart[r]
		for _, i := range xs {
			ghost[base+i] = 1
		}
	}
}

// PushFloats is PushInts for float64 values.
func (ge *GhostExchange) PushFloats(c *machine.Ctx, vals []float64) []float64 {
	return ge.PushFloatsInto(c, vals, nil)
}

// PushFloatsInto is PushFloats delivering into dst when it has the
// capacity (the float twin of PushIntsInto); dst's prior contents are
// ignored. Collective.
//
//chaos:hotpath
func (ge *GhostExchange) PushFloatsInto(c *machine.Ctx, vals []float64, dst []float64) []float64 {
	for r, ls := range ge.send {
		buf := ge.sendFloats[r]
		for i, l := range ls {
			buf[i] = vals[l]
		}
	}
	in := c.AlltoAllFloats(ge.sendFloats)
	var res []float64
	if cap(dst) >= len(ge.IDs) {
		res = dst[:len(ge.IDs)]
	} else {
		//chaosvet:ignore hotalloc grows only when the caller's buffer is short; steady-state sweeps reuse it
		res = make([]float64, len(ge.IDs))
	}
	for r, xs := range in {
		copy(res[ge.recvStart[r]:ge.recvStart[r+1]], xs)
	}
	return res
}
