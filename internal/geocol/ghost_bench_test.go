package geocol

import (
	"testing"

	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// BenchmarkHotGhostExchange measures the steady state of the
// arena-backed ghost-exchange hot paths on a 4-rank mesh: one dense
// push plus one sparse incremental update per op, every destination
// buffer reused. What remains per op is the irreducible AlltoAll
// transport floor (the machine copies payloads per delivery, by
// design); the bench-gate baseline pins it so routing allocations can
// never creep back in.
func BenchmarkHotGhostExchange(b *testing.B) {
	m := mesh.Generate(21000, 11)
	const p = 4
	b.ReportAllocs()
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := Build(c, m.NNode, WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		ge := NewGhostExchange(c, g)
		localN := g.LocalN(c.Rank())
		vals := make([]int, localN)
		for l := range vals {
			vals[l] = l
		}
		changed := make([]bool, localN)
		for l := 0; l < localN; l += 64 {
			changed[l] = true
		}
		var ghost, touched []int
		ghost = ge.PushIntsInto(c, vals, ghost) // warm the buffers
		if tc := ge.UpdateIntsTouchedInto(c, vals, changed, ghost, touched); tc != nil {
			touched = tc
		}
		c.SumInt(0) // barrier: all ranks warmed before the timer resets
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			ghost = ge.PushIntsInto(c, vals, ghost)
			if tc := ge.UpdateIntsTouchedInto(c, vals, changed, ghost, touched); tc != nil {
				touched = tc
			}
		}
		c.SumInt(0)
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
