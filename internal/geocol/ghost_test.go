package geocol

import (
	"testing"

	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// TestGhostExchangePush checks the boundary-exchange pattern on a ring:
// each rank's ghosts are exactly the two vertices just outside its home
// block, and pushed values land in the right slots.
func TestGhostExchangePush(t *testing.T) {
	const n, p = 12, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		e1, e2 := ringEdges(n, p, c.Rank())
		g := Build(c, n, WithLink(e1, e2))
		ge := NewGhostExchange(c, g)
		lo := g.Home.Lo(c.Rank())
		localN := g.LocalN(c.Rank())
		want := []int{(lo - 1 + n) % n, (lo + localN) % n}
		if want[0] > want[1] {
			want[0], want[1] = want[1], want[0]
		}
		if len(ge.IDs) != 2 || ge.IDs[0] != want[0] || ge.IDs[1] != want[1] {
			t.Errorf("rank %d ghosts %v, want %v", c.Rank(), ge.IDs, want)
		}

		vals := make([]int, localN)
		fvals := make([]float64, localN)
		for l := range vals {
			vals[l] = 10 * (lo + l)
			fvals[l] = 0.5 * float64(lo+l)
		}
		gi := ge.PushInts(c, vals)
		gf := ge.PushFloats(c, fvals)
		for i, id := range ge.IDs {
			if gi[i] != 10*id {
				t.Errorf("rank %d ghost int of %d = %d, want %d", c.Rank(), id, gi[i], 10*id)
			}
			if gf[i] != 0.5*float64(id) {
				t.Errorf("rank %d ghost float of %d = %g", c.Rank(), id, gf[i])
			}
		}

		// Incremental update: change one home value, mark it, and check
		// only it changes on the neighbors.
		changed := make([]bool, localN)
		vals[0] = -7
		changed[0] = true
		ge.UpdateInts(c, vals, changed, gi)
		for i, id := range ge.IDs {
			want := 10 * id
			if id == g.Home.Lo(g.Home.Owner(id)) {
				want = -7 // the updated vertex is the first of its block
			}
			if gi[i] != want {
				t.Errorf("rank %d after update: ghost of %d = %d, want %d", c.Rank(), id, gi[i], want)
			}
		}

		// Monotone marks: flag the last home vertex everywhere.
		flags := make([]int, len(ge.IDs))
		marked := make([]bool, localN)
		marked[localN-1] = true
		ge.PushMarks(c, marked, flags)
		for i, id := range ge.IDs {
			want := 0
			if id == g.Home.Lo(g.Home.Owner(id))+g.LocalN(g.Home.Owner(id))-1 {
				want = 1
			}
			if flags[i] != want {
				t.Errorf("rank %d mark of %d = %d, want %d", c.Rank(), id, flags[i], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuildCoarseMatchesSerialContract pins the distributed build path
// against the serial Contractor on a real mesh: contracting the
// block-distributed graph under a global clustering and gathering the
// result must agree edge-for-edge (as weighted neighbor sets; the two
// paths order adjacency differently) with contracting the gathered
// graph serially.
func TestBuildCoarseMatchesSerialContract(t *testing.T) {
	m := mesh.Generate(600, 13)
	const p = 4
	// Global clustering: pair consecutive ids (crosses every rank
	// boundary), so both paths see identical cluster membership.
	coarseN := (m.NNode + 1) / 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := Build(c, m.NNode, WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		lo := g.Home.Lo(c.Rank())
		cmap := make([]int, g.LocalN(c.Rank()))
		for l := range cmap {
			cmap[l] = (lo + l) / 2
		}
		ge := NewGhostExchange(c, g)
		coarse := BuildCoarse(c, g, ge, cmap, coarseN)

		cf := coarse.Gather(c)
		f := g.Gather(c)
		if c.Rank() != 0 {
			return
		}
		gmap := make([]int, f.N)
		for v := range gmap {
			gmap[v] = v / 2
		}
		sxadj, sadj, sew, sw := Contract(f.XAdj, f.Adj, f.EdgeW, f.Weights, gmap, coarseN)

		for cv := 0; cv < coarseN; cv++ {
			if cf.Weights[cv] != sw[cv] {
				t.Errorf("coarse vertex %d weight %g, serial %g", cv, cf.Weights[cv], sw[cv])
			}
			want := map[int]float64{}
			for k := sxadj[cv]; k < sxadj[cv+1]; k++ {
				want[sadj[k]] = sew[k]
			}
			got := map[int]float64{}
			for k := cf.XAdj[cv]; k < cf.XAdj[cv+1]; k++ {
				got[cf.Adj[k]] = cf.EdgeW[k]
			}
			if len(got) != len(want) {
				t.Fatalf("coarse vertex %d has %d neighbors, serial %d", cv, len(got), len(want))
			}
			for u, w := range want {
				if got[u] != w {
					t.Errorf("coarse edge (%d,%d) weight %g, serial %g", cv, u, got[u], w)
				}
			}
		}
		deg := 0
		for cv := 0; cv < coarseN; cv++ {
			deg += sxadj[cv+1] - sxadj[cv]
		}
		if cf.NEdges != deg/2 {
			t.Errorf("coarse NEdges %d, serial %d", cf.NEdges, deg/2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBuildCoarseAggregatesWeights checks LOAD aggregation across rank
// boundaries: coarse vertex weights are the sums of their members'
// weights even when the members live on different ranks.
func TestBuildCoarseAggregatesWeights(t *testing.T) {
	const n, p = 8, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		e1, e2 := ringEdges(n, p, c.Rank())
		lo := c.Rank() * 2
		w := []float64{float64(lo + 1), float64(lo + 2)}
		g := Build(c, n, WithLink(e1, e2), WithLoad(w))
		// Cluster vertices {1,2}, {3,4}, {5,6}, {7,0}: every cluster
		// spans a rank boundary.
		cmap := make([]int, 2)
		for l := 0; l < 2; l++ {
			cmap[l] = ((lo + l + n - 1) % n) / 2
		}
		ge := NewGhostExchange(c, g)
		coarse := BuildCoarse(c, g, ge, cmap, n/2)
		cf := coarse.Gather(c)
		if c.Rank() == 0 {
			// Cluster k = {2k+1, 2k+2 mod n}; weight of vertex v is v+1.
			for k := 0; k < n/2; k++ {
				a, b := 2*k+1, (2*k+2)%n
				want := float64(a+1) + float64(b+1)
				if cf.Weights[k] != want {
					t.Errorf("cluster %d weight %g, want %g", k, cf.Weights[k], want)
				}
			}
			// The ring of clusters keeps one edge between consecutive
			// clusters (weight 1 each).
			if cf.NEdges != n/2 {
				t.Errorf("coarse NEdges %d, want %d", cf.NEdges, n/2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUpdateIntsTouched checks the incremental exchange's change
// report: only slots whose ghost value actually changed are returned,
// in ascending slot order, and re-sending an unchanged value reports
// nothing.
func TestUpdateIntsTouched(t *testing.T) {
	const n, p = 12, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		e1, e2 := ringEdges(n, p, c.Rank())
		g := Build(c, n, WithLink(e1, e2))
		ge := NewGhostExchange(c, g)
		localN := g.LocalN(c.Rank())
		lo := g.Home.Lo(c.Rank())

		vals := make([]int, localN)
		for l := range vals {
			vals[l] = lo + l
		}
		ghost := ge.PushInts(c, vals)

		// Change every home value but mark only the first: exactly the
		// ghosts of the first vertex of each block may change.
		for l := range vals {
			vals[l] += 100
		}
		changed := make([]bool, localN)
		changed[0] = true
		touched := ge.UpdateIntsTouched(c, vals, changed, ghost)
		for i, s := range touched {
			if i > 0 && touched[i-1] >= s {
				t.Errorf("rank %d touched slots not ascending: %v", c.Rank(), touched)
			}
			id := ge.IDs[s]
			if id != g.Home.Lo(g.Home.Owner(id)) {
				t.Errorf("rank %d slot %d (vertex %d) touched but is not a block head", c.Rank(), s, id)
			}
			if ghost[s] != id+100 {
				t.Errorf("rank %d ghost of %d = %d, want %d", c.Rank(), id, ghost[s], id+100)
			}
		}
		// Every ghost that is a block head must have been reported.
		want := 0
		for _, id := range ge.IDs {
			if id == g.Home.Lo(g.Home.Owner(id)) {
				want++
			}
		}
		if len(touched) != want {
			t.Errorf("rank %d touched %d slots, want %d", c.Rank(), len(touched), want)
		}

		// Re-sending the same value is not a change.
		if again := ge.UpdateIntsTouched(c, vals, changed, ghost); len(again) != 0 {
			t.Errorf("rank %d unchanged resend reported touched slots %v", c.Rank(), again)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
