// Package iterpart implements the paper's workload (loop-iteration)
// partitioning phase (Section 4.3). After data arrays are distributed,
// each loop iteration is assigned to one processor:
//
//   - AlmostOwnerComputes (the runtime's default, per the paper):
//     "places a loop iteration on the processor that is the home of the
//     largest number of the iteration's distributed array references."
//   - OwnerComputes: the classical convention — the iteration runs on
//     the owner of the left-hand-side reference.
//   - BlockIterations: keep the default block assignment (the baseline
//     that ignores data placement).
//
// The decisions are pure and local once reference owners are known;
// batching and communication live in the core runtime.
package iterpart

import "fmt"

// Policy selects the iteration-placement convention.
type Policy int

const (
	AlmostOwnerComputes Policy = iota
	OwnerComputes
	BlockIterations
)

func (p Policy) String() string {
	switch p {
	case AlmostOwnerComputes:
		return "almost-owner-computes"
	case OwnerComputes:
		return "owner-computes"
	case BlockIterations:
		return "block-iterations"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Choose picks the home rank of one iteration. refOwners lists the
// owning ranks of every distributed-array reference the iteration
// makes (reads and writes); lhsOwner is the owner of the first
// left-hand-side reference (used by OwnerComputes and as the
// almost-owner-computes tie-break); blockHome is the iteration's home
// under the default block distribution (used by BlockIterations).
func Choose(refOwners []int, lhsOwner, blockHome int, policy Policy) int {
	switch policy {
	case OwnerComputes:
		return lhsOwner
	case BlockIterations:
		return blockHome
	case AlmostOwnerComputes:
		if len(refOwners) == 0 {
			return blockHome
		}
		// Majority vote over (small) reference lists; ties go to the
		// LHS owner when it is among the leaders, else the lowest
		// leading rank, deterministically.
		counts := map[int]int{}
		for _, o := range refOwners {
			counts[o]++
		}
		best, bestN := -1, -1
		for _, o := range refOwners { // iterate slice for determinism
			n := counts[o]
			if n > bestN || (n == bestN && o < best) {
				best, bestN = o, n
			}
		}
		if counts[lhsOwner] == bestN {
			return lhsOwner
		}
		return best
	default:
		panic(fmt.Sprintf("iterpart: unknown policy %d", int(policy)))
	}
}

// ChooseAll applies Choose to a batch: refOwners[i] holds iteration i's
// reference owners, lhsOwner[i] its LHS owner, blockHome[i] its default
// home.
func ChooseAll(refOwners [][]int, lhsOwner, blockHome []int, policy Policy) []int {
	out := make([]int, len(refOwners))
	for i := range refOwners {
		out[i] = Choose(refOwners[i], lhsOwner[i], blockHome[i], policy)
	}
	return out
}
