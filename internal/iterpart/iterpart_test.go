package iterpart

import "testing"

func TestOwnerComputes(t *testing.T) {
	if got := Choose([]int{1, 2, 2}, 1, 0, OwnerComputes); got != 1 {
		t.Errorf("OwnerComputes = %d, want 1", got)
	}
}

func TestBlockIterations(t *testing.T) {
	if got := Choose([]int{1, 2, 2}, 1, 3, BlockIterations); got != 3 {
		t.Errorf("BlockIterations = %d, want 3", got)
	}
}

func TestAlmostOwnerComputesMajority(t *testing.T) {
	// Rank 2 owns most references.
	if got := Choose([]int{2, 2, 2, 1}, 1, 0, AlmostOwnerComputes); got != 2 {
		t.Errorf("majority = %d, want 2", got)
	}
}

func TestAlmostOwnerComputesTieGoesToLHS(t *testing.T) {
	if got := Choose([]int{3, 1, 3, 1}, 1, 0, AlmostOwnerComputes); got != 1 {
		t.Errorf("tie = %d, want LHS owner 1", got)
	}
}

func TestAlmostOwnerComputesTieWithoutLHSIsLowestLeader(t *testing.T) {
	if got := Choose([]int{4, 2, 4, 2}, 9, 0, AlmostOwnerComputes); got != 2 {
		t.Errorf("tie = %d, want lowest leading rank 2", got)
	}
}

func TestAlmostOwnerComputesEmptyFallsBack(t *testing.T) {
	if got := Choose(nil, 5, 7, AlmostOwnerComputes); got != 7 {
		t.Errorf("empty refs = %d, want block home 7", got)
	}
}

func TestAlmostOwnerComputesSingleRef(t *testing.T) {
	if got := Choose([]int{6}, 6, 0, AlmostOwnerComputes); got != 6 {
		t.Errorf("single ref = %d, want 6", got)
	}
}

func TestChooseAll(t *testing.T) {
	refs := [][]int{{0, 0, 1}, {1, 1, 0}, {2}}
	lhs := []int{0, 1, 2}
	home := []int{9, 9, 9}
	got := ChooseAll(refs, lhs, home, AlmostOwnerComputes)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ChooseAll[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestChooseDeterministic(t *testing.T) {
	refs := []int{5, 3, 5, 3, 7}
	a := Choose(refs, 9, 0, AlmostOwnerComputes)
	for i := 0; i < 10; i++ {
		if b := Choose(refs, 9, 0, AlmostOwnerComputes); b != a {
			t.Fatalf("nondeterministic choice: %d vs %d", a, b)
		}
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Choose([]int{1}, 1, 0, Policy(42))
}

func TestPolicyString(t *testing.T) {
	if AlmostOwnerComputes.String() != "almost-owner-computes" ||
		OwnerComputes.String() != "owner-computes" ||
		BlockIterations.String() != "block-iterations" {
		t.Error("Policy.String mismatch")
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy should format")
	}
}
