package lang

import (
	"fmt"
	"strings"

	"chaos/internal/core"
)

// Program is a compiled source unit: declarations plus an executable
// statement list. It is produced by Compile and executed per rank with
// Execute.
type Program struct {
	Name   string
	Params map[string]int

	// RealArrays / IntArrays map array name to extent.
	RealArrays map[string]int
	IntArrays  map[string]int

	// Decomps maps decomposition name to extent; AlignsTo maps array
	// name to its decomposition.
	Decomps  map[string]int
	AlignsTo map[string]string

	Body []stmt
}

// stmt is one executable statement or directive.
type stmt interface {
	planLine() string
	line() int
}

type baseStmt struct{ ln int }

func (b baseStmt) line() int { return b.ln }

// readStmt pulls array contents from the host environment, standing in
// for Figure 4's "call read_data(end_pt1, end_pt2, ...)".
type readStmt struct {
	baseStmt
	Names []string
}

func (s *readStmt) planLine() string {
	return fmt.Sprintf("READ %s from host environment", strings.Join(s.Names, ", "))
}

// constructStmt is the C$ CONSTRUCT directive.
type constructStmt struct {
	baseStmt
	G        string
	N        int
	Geometry []string // coordinate array names
	Load     string   // weight array name or ""
	Link1    string   // edge endpoint array names or ""
	Link2    string
}

func (s *constructStmt) planLine() string {
	var parts []string
	if len(s.Geometry) > 0 {
		parts = append(parts, fmt.Sprintf("GEOMETRY(%s)", strings.Join(s.Geometry, ",")))
	}
	if s.Load != "" {
		parts = append(parts, fmt.Sprintf("LOAD(%s)", s.Load))
	}
	if s.Link1 != "" {
		parts = append(parts, fmt.Sprintf("LINK(%s,%s)", s.Link1, s.Link2))
	}
	return fmt.Sprintf("K1: call CHAOS to generate GeoCoL %s (n=%d, %s)", s.G, s.N, strings.Join(parts, ", "))
}

// setStmt is the C$ SET map BY PARTITIONING g USING p directive.
type setStmt struct {
	baseStmt
	Map, G, Partitioner string
}

func (s *setStmt) planLine() string {
	return fmt.Sprintf("K2/K3: pass GeoCoL %s to %s partitioner, obtain distribution %s", s.G, s.Partitioner, s.Map)
}

// redistributeStmt is the C$ REDISTRIBUTE decomp(map) directive.
type redistributeStmt struct {
	baseStmt
	Decomp, Map string
	// arrays aligned with Decomp, filled by sema.
	arrays []string
}

func (s *redistributeStmt) planLine() string {
	return fmt.Sprintf("K4: remap arrays [%s] aligned with %s to distribution %s",
		strings.Join(s.arrays, ","), s.Decomp, s.Map)
}

// distributeStmt is the executable irregular form of DISTRIBUTE
// (paper Figure 3, statement S7): "DISTRIBUTE irreg(map)" remaps the
// arrays aligned with Decomp onto the distribution given by the
// user-computed INTEGER map array.
type distributeStmt struct {
	baseStmt
	Decomp, MapArr string
	arrays         []string
}

func (s *distributeStmt) planLine() string {
	return fmt.Sprintf("K4: remap arrays [%s] aligned with %s onto user map array %s",
		strings.Join(s.arrays, ","), s.Decomp, s.MapArr)
}

// doStmt is a counted DO loop enclosing statements.
type doStmt struct {
	baseStmt
	Var    string
	Lo, Hi int
	Body   []stmt
}

func (s *doStmt) planLine() string {
	return fmt.Sprintf("DO %s = %d, %d (%d statements)", s.Var, s.Lo, s.Hi, len(s.Body))
}

// forallStmt is an irregular FORALL loop: the unit the inspector/
// executor transformation applies to.
type forallStmt struct {
	baseStmt
	Var     string
	N       int // iterations 1..N
	Assigns []forallAssign

	// Compiled access classification, filled by the compile pass.
	reads  []accessRef // unique gathered reads, in slot order
	writes []writeRef
}

func (s *forallStmt) planLine() string {
	return fmt.Sprintf("FORALL %s = 1, %d: inspector/executor with %d gathers, %d reductions (schedules cached)",
		s.Var, s.N, len(s.reads), len(s.writes))
}

// forallAssign is one statement inside a FORALL:
// either target = expr (Assign) or REDUCE(op, target, expr).
type forallAssign struct {
	Op     core.Reduce
	Target arrayRef
	Expr   expr
	code   []instr // bytecode, filled by sema
}

// arrayRef is data(index) where index is the loop variable or a
// single-level indirection ind(loopvar).
type arrayRef struct {
	Array string
	Ind   string // "" means direct indexing by the loop variable
}

func (a arrayRef) String() string {
	if a.Ind == "" {
		return a.Array + "(i)"
	}
	return fmt.Sprintf("%s(%s(i))", a.Array, a.Ind)
}

// accessRef is one gathered read slot.
type accessRef struct {
	ref arrayRef
}

// writeRef is one reduction target.
type writeRef struct {
	ref arrayRef
	op  core.Reduce
}

// expr is a parsed expression tree.
type expr interface {
	exprString() string
}

type numExpr struct{ v float64 }

func (e *numExpr) exprString() string { return fmt.Sprintf("%g", e.v) }

type loopVarExpr struct{}

func (e *loopVarExpr) exprString() string { return "i" }

type refExpr struct{ ref arrayRef }

func (e *refExpr) exprString() string { return e.ref.String() }

type binExpr struct {
	op   string
	l, r expr
}

func (e *binExpr) exprString() string {
	return "(" + e.l.exprString() + e.op + e.r.exprString() + ")"
}

type unExpr struct {
	op string
	x  expr
}

func (e *unExpr) exprString() string { return e.op + e.x.exprString() }

type callExpr struct {
	name string
	args []expr
}

func (e *callExpr) exprString() string {
	var as []string
	for _, a := range e.args {
		as = append(as, a.exprString())
	}
	return e.name + "(" + strings.Join(as, ",") + ")"
}

// PlanString renders the generated runtime plan — the compiler
// transformation of the paper's Figure 6 — as readable text.
func (p *Program) PlanString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s: compiled CHAOS plan\n", p.Name)
	var walk func(ss []stmt, indent string)
	walk = func(ss []stmt, indent string) {
		for _, s := range ss {
			fmt.Fprintf(&b, "%s%s\n", indent, s.planLine())
			if d, ok := s.(*doStmt); ok {
				walk(d.Body, indent+"  ")
			}
		}
	}
	walk(p.Body, "  ")
	return b.String()
}
