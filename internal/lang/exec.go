package lang

import (
	"fmt"

	"chaos/internal/core"
	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/partition"
)

// ExternFunc is a host function callable from FORALL expressions; iter
// is the global iteration number of the calling iteration.
type ExternFunc func(iter int, args []float64) float64

// Env binds a program to its host environment: initial array contents
// (the paper's "call read_data(...)"), host functions, and a completion
// hook for inspecting results. All fields are optional except those the
// program actually uses.
type Env struct {
	// RealData provides READ contents for REAL*8 arrays by global index.
	RealData map[string]func(g int) float64
	// IntData provides READ contents for INTEGER arrays by global index.
	IntData map[string]func(g int) int
	// Funcs provides host extern functions used in FORALL expressions.
	Funcs map[string]ExternFunc
	// OnFinish, when set, runs on every rank after the program's END
	// with the final distributed arrays.
	OnFinish func(s *core.Session, reals map[string]*core.Array, ints map[string]*core.IntArray)
	// DisableScheduleReuse forces a fresh inspector before every
	// FORALL execution — the "compiler without schedule reuse"
	// baseline of the paper's Tables 1 and 2.
	DisableScheduleReuse bool
}

// forallRuntime is the per-rank, per-FORALL cached state: the CHAOS
// loop object whose saved inspector the registry guards, the
// extern-resolved bytecode, and the identity indirection arrays
// synthesized for directly indexed accesses. It lives in the exec
// state, not on the shared AST, so one compiled Program can be executed
// concurrently by every rank.
type forallRuntime struct {
	loop            *core.Loop
	iterPartitioned bool
	codes           [][]instr
}

// execState is the per-rank interpreter state.
type execState struct {
	s       *core.Session
	env     *Env
	reals   map[string]*core.Array
	ints    map[string]*core.IntArray
	maps    map[string]*core.Mapping
	grs     map[string]*geocol.Graph
	foralls map[*forallStmt]*forallRuntime
}

// Execute runs the compiled program on one rank of the simulated
// machine. It must be called inside a machine SPMD body with the same
// program and environment on every rank. The per-directive bookkeeping
// a compiler-generated code performs (DAD tracking, plan dispatch) is
// charged to the virtual clock.
func (p *Program) Execute(s *core.Session, env *Env) error {
	if env == nil {
		env = &Env{}
	}
	st := &execState{
		s:       s,
		env:     env,
		reals:   map[string]*core.Array{},
		ints:    map[string]*core.IntArray{},
		maps:    map[string]*core.Mapping{},
		grs:     map[string]*geocol.Graph{},
		foralls: map[*forallStmt]*forallRuntime{},
	}
	for name, ext := range p.RealArrays {
		st.reals[name] = s.NewArray(name, ext)
	}
	for name, ext := range p.IntArrays {
		st.ints[name] = s.NewIntArray(name, ext)
	}
	if err := st.execBlock(p.Body); err != nil {
		return err
	}
	if env.OnFinish != nil {
		env.OnFinish(s, st.reals, st.ints)
	}
	return nil
}

func (st *execState) execBlock(body []stmt) error {
	for _, s := range body {
		if err := st.execStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (st *execState) execStmt(s stmt) error {
	// Plan dispatch overhead of compiler-generated code.
	st.s.C.Words(4)
	switch x := s.(type) {
	case *readStmt:
		for _, n := range x.Names {
			if a, ok := st.reals[n]; ok {
				f := st.env.RealData[n]
				if f == nil {
					return fmt.Errorf("line %d: READ %s: no host RealData binding", x.ln, n)
				}
				a.FillByGlobal(f)
				continue
			}
			a := st.ints[n]
			f := st.env.IntData[n]
			if f == nil {
				return fmt.Errorf("line %d: READ %s: no host IntData binding", x.ln, n)
			}
			a.FillByGlobal(f)
		}
		return nil
	case *constructStmt:
		in := core.GeoColInput{}
		for _, gn := range x.Geometry {
			in.Geometry = append(in.Geometry, st.reals[gn])
		}
		if x.Load != "" {
			in.Load = st.reals[x.Load]
		}
		if x.Link1 != "" {
			in.Link1 = st.ints[x.Link1]
			in.Link2 = st.ints[x.Link2]
		}
		st.grs[x.G] = st.s.Construct(x.N, in)
		return nil
	case *setStmt:
		g, ok := st.grs[x.G]
		if !ok {
			return fmt.Errorf("line %d: SET: GeoCoL %q not constructed", x.ln, x.G)
		}
		//chaosvet:ignore deprecatedspec the Fortran-D front end is the designated consumer of user-authored spec strings; everything repo-internal uses typed Spec literals
		sp, err := partition.ParseSpec(x.Partitioner)
		if err != nil {
			return fmt.Errorf("line %d: %w", x.ln, err)
		}
		m, err := st.s.SetPartitioning(g, sp, st.s.C.Procs())
		if err != nil {
			return fmt.Errorf("line %d: %w", x.ln, err)
		}
		st.maps[x.Map] = m
		return nil
	case *distributeStmt:
		m := st.s.MappingFromIntArray(st.ints[x.MapArr])
		var reals []*core.Array
		var ints []*core.IntArray
		for _, n := range x.arrays {
			if a, ok := st.reals[n]; ok {
				reals = append(reals, a)
			} else if a, ok := st.ints[n]; ok {
				ints = append(ints, a)
			}
		}
		st.s.Redistribute(m, reals, ints)
		return nil
	case *redistributeStmt:
		m, ok := st.maps[x.Map]
		if !ok {
			return fmt.Errorf("line %d: REDISTRIBUTE: unknown distribution %q", x.ln, x.Map)
		}
		var reals []*core.Array
		var ints []*core.IntArray
		for _, n := range x.arrays {
			if a, ok := st.reals[n]; ok {
				reals = append(reals, a)
			} else if a, ok := st.ints[n]; ok {
				ints = append(ints, a)
			}
		}
		if len(reals)+len(ints) == 0 {
			return fmt.Errorf("line %d: REDISTRIBUTE %s: no arrays aligned", x.ln, x.Decomp)
		}
		st.s.Redistribute(m, reals, ints)
		return nil
	case *doStmt:
		for k := x.Lo; k <= x.Hi; k++ {
			if err := st.execBlock(x.Body); err != nil {
				return err
			}
		}
		return nil
	case *forallStmt:
		return st.execForall(x)
	default:
		return fmt.Errorf("lang: unknown statement %T", s)
	}
}

// execForall realizes the inspector/executor transformation for one
// FORALL encounter. The loop object is created on first encounter; the
// registry decides whether its saved inspector can be reused.
func (st *execState) execForall(f *forallStmt) error {
	rt := st.foralls[f]
	if rt == nil {
		rt = &forallRuntime{}
		// Synthesize identity indirection arrays for direct accesses.
		var identity *core.IntArray
		getIdentity := func() *core.IntArray {
			if identity == nil {
				identity = st.s.NewIntArray(fmt.Sprintf("__ident_%d", f.ln), f.N)
				identity.FillByGlobal(func(g int) int { return g })
			}
			return identity
		}
		indOf := func(r arrayRef) *core.IntArray {
			if r.Ind == "" {
				return getIdentity()
			}
			return st.ints[r.Ind]
		}
		var reads []core.Read
		for _, ar := range f.reads {
			reads = append(reads, core.Read{Arr: st.reals[ar.ref.Array], Ind: indOf(ar.ref)})
		}
		var writes []core.Write
		for _, wr := range f.writes {
			writes = append(writes, core.Write{Arr: st.reals[wr.ref.Array], Ind: indOf(wr.ref), Op: wr.op})
		}
		// Per-rank bytecode copies with extern functions resolved
		// (the shared AST is never mutated). The virtual-clock charge
		// per iteration models the CSE'd code a compiler would emit
		// (see modeledFlops).
		flops := modeledFlops(f.Assigns)
		maxDepth := 1
		for _, a := range f.Assigns {
			code := append([]instr(nil), a.code...)
			for k := range code {
				ins := &code[k]
				if ins.op == opCall && ins.fn == nil {
					ext, ok := st.env.Funcs[ins.name]
					if !ok {
						return fmt.Errorf("line %d: no host binding for function %q", f.ln, ins.name)
					}
					ins.fn = ext
				}
			}
			rt.codes = append(rt.codes, code)
			if d := codeDepth(code); d > maxDepth {
				maxDepth = d
			}
		}
		codes := rt.codes
		stack := make([]float64, maxDepth)
		kernel := func(iter int, in, out []float64) {
			for k := range codes {
				out[k] = evalCode(codes[k], iter, in, stack)
			}
		}
		rt.loop = st.s.NewLoop(fmt.Sprintf("forall@%d", f.ln), f.N, reads, writes, flops, kernel)
		st.foralls[f] = rt
	}
	// Paper Section 5: "loop iterations are partitioned at runtime
	// ... whenever a loop accesses at least one irregularly
	// distributed array."
	if !rt.iterPartitioned && st.anyIrregular(f) {
		rt.loop.PartitionIterations(core.DefaultIterPolicy)
		rt.iterPartitioned = true
	}
	if st.env.DisableScheduleReuse {
		rt.loop.ExecuteNoReuse()
	} else {
		rt.loop.Execute()
	}
	return nil
}

func (st *execState) anyIrregular(f *forallStmt) bool {
	for _, ar := range f.reads {
		if st.reals[ar.ref.Array].DAD().Kind == dist.Irregular {
			return true
		}
	}
	for _, wr := range f.writes {
		if st.reals[wr.ref.Array].DAD().Kind == dist.Irregular {
			return true
		}
	}
	return false
}
