package lang

import (
	"fmt"
	"math"
)

// The FORALL kernel bodies are compiled to a small stack bytecode at
// compile time and interpreted by the executor — this is the "runtime
// compilation" counterpart of the code a real distributed-memory
// compiler would emit inline. The interpretation cost is charged to the
// virtual clock through the loop's flops-per-iteration, so the
// compiler-generated executor is slightly (but only slightly) more
// expensive than a hand-coded kernel, matching the paper's "within
// 10% of the hand parallelized version".

type opcode int

const (
	opConst opcode = iota
	opIn           // push gathered read slot i
	opIter         // push the global iteration number
	opAdd
	opSub
	opMul
	opDiv
	opPow
	opNeg
	opCall // builtin or extern function, argc arguments
)

type instr struct {
	op   opcode
	i    int     // read slot (opIn) or argc (opCall)
	f    float64 // constant (opConst)
	name string  // function name (opCall)
	fn   func(iter int, args []float64) float64
}

// builtin describes an intrinsic function.
type builtin struct {
	argc int
	fn   func(args []float64) float64
}

var builtins = map[string]builtin{
	"SIN":  {1, func(a []float64) float64 { return math.Sin(a[0]) }},
	"COS":  {1, func(a []float64) float64 { return math.Cos(a[0]) }},
	"TAN":  {1, func(a []float64) float64 { return math.Tan(a[0]) }},
	"SQRT": {1, func(a []float64) float64 { return math.Sqrt(a[0]) }},
	"ABS":  {1, func(a []float64) float64 { return math.Abs(a[0]) }},
	"EXP":  {1, func(a []float64) float64 { return math.Exp(a[0]) }},
	"LOG":  {1, func(a []float64) float64 { return math.Log(a[0]) }},
	"MIN":  {2, func(a []float64) float64 { return math.Min(a[0], a[1]) }},
	"MAX":  {2, func(a []float64) float64 { return math.Max(a[0], a[1]) }},
	"MOD":  {2, func(a []float64) float64 { return math.Mod(a[0], a[1]) }},
}

// compileProgram runs the post-parse pass over every FORALL: classify
// the accesses into gathered read slots and reduction targets, and
// compile each assignment expression to bytecode.
func compileProgram(p *Program) error {
	var walk func(ss []stmt) error
	walk = func(ss []stmt) error {
		for _, s := range ss {
			switch st := s.(type) {
			case *doStmt:
				if err := walk(st.Body); err != nil {
					return err
				}
			case *forallStmt:
				if err := compileForall(st); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(p.Body)
}

func compileForall(f *forallStmt) error {
	slots := map[arrayRef]int{}
	slotOf := func(r arrayRef) int {
		if i, ok := slots[r]; ok {
			return i
		}
		i := len(f.reads)
		slots[r] = i
		f.reads = append(f.reads, accessRef{ref: r})
		return i
	}
	for ai := range f.Assigns {
		a := &f.Assigns[ai]
		f.writes = append(f.writes, writeRef{ref: a.Target, op: a.Op})
		code, err := compileExpr(a.Expr, slotOf)
		if err != nil {
			return fmt.Errorf("line %d: %w", f.ln, err)
		}
		a.code = code
	}
	return nil
}

// compileExpr lowers an expression tree to bytecode, registering read
// slots through slotOf.
func compileExpr(e expr, slotOf func(arrayRef) int) ([]instr, error) {
	var code []instr
	var emit func(e expr) error
	emit = func(e expr) error {
		switch x := e.(type) {
		case *numExpr:
			code = append(code, instr{op: opConst, f: x.v})
		case *loopVarExpr:
			code = append(code, instr{op: opIter})
		case *refExpr:
			code = append(code, instr{op: opIn, i: slotOf(x.ref)})
		case *unExpr:
			if err := emit(x.x); err != nil {
				return err
			}
			code = append(code, instr{op: opNeg})
		case *binExpr:
			if err := emit(x.l); err != nil {
				return err
			}
			if err := emit(x.r); err != nil {
				return err
			}
			var op opcode
			switch x.op {
			case "+":
				op = opAdd
			case "-":
				op = opSub
			case "*":
				op = opMul
			case "/":
				op = opDiv
			case "**":
				op = opPow
			default:
				return fmt.Errorf("lang: unknown operator %q", x.op)
			}
			code = append(code, instr{op: op})
		case *callExpr:
			for _, a := range x.args {
				if err := emit(a); err != nil {
					return err
				}
			}
			ins := instr{op: opCall, i: len(x.args), name: x.name}
			if bi, ok := builtins[x.name]; ok {
				fn := bi.fn
				ins.fn = func(_ int, args []float64) float64 { return fn(args) }
			}
			code = append(code, ins)
		default:
			return fmt.Errorf("lang: unknown expression node %T", e)
		}
		return nil
	}
	if err := emit(e); err != nil {
		return nil, err
	}
	return code, nil
}

// evalCode interprets one assignment's bytecode. stack is a reusable
// scratch buffer with capacity >= codeDepth.
func evalCode(code []instr, iter int, in []float64, stack []float64) float64 {
	sp := 0
	push := func(v float64) {
		stack[sp] = v
		sp++
	}
	for k := range code {
		ins := &code[k]
		switch ins.op {
		case opConst:
			push(ins.f)
		case opIn:
			push(in[ins.i])
		case opIter:
			push(float64(iter))
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			stack[sp-1] /= stack[sp]
		case opPow:
			sp--
			stack[sp-1] = math.Pow(stack[sp-1], stack[sp])
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opCall:
			sp -= ins.i
			stack[sp] = ins.fn(iter, stack[sp:sp+ins.i])
			sp++
		}
	}
	return stack[sp-1]
}

// modeledFlops returns the floating-point operation count per
// iteration that compiler-*emitted* code would execute for these
// assignment bodies: every distinct arithmetic subtree counts once
// (the node compiler performs common-subexpression elimination across
// the statements of a FORALL body, exactly as f77 did for the code the
// paper's Fortran 90D compiler generated), and intrinsic/extern calls
// are costed at a small fixed weight. This is what the executor charges
// to the virtual clock; the bytecode interpreter's own (host) overhead
// is a host-side artifact and deliberately not modeled.
func modeledFlops(assigns []forallAssign) int {
	const callCost = 4
	seen := map[string]bool{}
	count := 0
	var walk func(e expr)
	walk = func(e expr) {
		switch x := e.(type) {
		case *binExpr:
			key := x.exprString()
			if seen[key] {
				return
			}
			seen[key] = true
			count++
			walk(x.l)
			walk(x.r)
		case *unExpr:
			key := x.exprString()
			if seen[key] {
				return
			}
			seen[key] = true
			count++
			walk(x.x)
		case *callExpr:
			key := x.exprString()
			if seen[key] {
				return
			}
			seen[key] = true
			count += callCost
			for _, a := range x.args {
				walk(a)
			}
		}
	}
	for i := range assigns {
		walk(assigns[i].Expr)
		count++ // the store/reduce combine itself
	}
	return count
}

// codeDepth returns the maximum operand-stack depth of a bytecode
// sequence (for sizing the scratch buffer).
func codeDepth(code []instr) int {
	depth, maxD := 0, 0
	for _, ins := range code {
		switch ins.op {
		case opConst, opIn, opIter:
			depth++
		case opAdd, opSub, opMul, opDiv, opPow:
			depth--
		case opCall:
			depth -= ins.i - 1
		}
		if depth > maxD {
			maxD = depth
		}
	}
	return maxD
}
