package lang

import (
	"math"
	"strings"
	"testing"

	"chaos/internal/core"
	"chaos/internal/dist"
	"chaos/internal/machine"
)

// TestFigure3ExplicitMapArray reproduces the paper's Figure 3: the map
// array is produced "by some mapping method" (here: the host), aligned
// with a regular decomposition, and DISTRIBUTE irreg(map) moves the
// data arrays onto the irregular distribution it describes.
func TestFigure3ExplicitMapArray(t *testing.T) {
	const src = `
      PROGRAM fig3
      PARAMETER (n = 24)
      REAL*8 x(n), y(n)
      INTEGER map(n)
      DECOMPOSITION reg(n), irreg(n)
      DISTRIBUTE reg(BLOCK)
      ALIGN map WITH reg
C     ... set values of map array using some mapping method ...
      READ map
      FORALL i = 1, n
        x(i) = 2.0 * i
        y(i) = 0.0 - i
      END FORALL
      ALIGN x, y WITH irreg
      DISTRIBUTE irreg(map)
      FORALL i = 1, n
        y(i) = y(i) + x(i)
      END FORALL
      END
`
	const p = 3
	mapv := func(g int) int { return (g * 7 % p) }
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.PlanString(), "user map array MAP") {
		t.Errorf("plan missing map-array remap:\n%s", prog.PlanString())
	}
	env := &Env{
		IntData: map[string]func(int) int{"MAP": mapv},
		OnFinish: func(s *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
			x, y := reals["X"], reals["Y"]
			if x.DAD().Kind != dist.Irregular || y.DAD().Kind != dist.Irregular {
				t.Errorf("arrays not irregular after DISTRIBUTE irreg(map)")
			}
			// Ownership follows the map array exactly.
			for _, g := range x.MyGlobals() {
				if mapv(g) != s.C.Rank() {
					t.Errorf("rank %d owns %d, map says %d", s.C.Rank(), g, mapv(g))
				}
			}
			// Values survived the remap and the post-remap loop.
			for i, g := range y.MyGlobals() {
				want := float64(g) // -g + 2g
				if math.Abs(y.Data[i]-want) > 1e-12 {
					t.Errorf("y(%d) = %v, want %v", g, y.Data[i], want)
				}
			}
		},
	}
	err = machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), env); e != nil {
			t.Error(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributeMapErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"extent mismatch", `
      PROGRAM p
      PARAMETER (n = 4, m = 6)
      REAL*8 x(n)
      INTEGER map(m)
      DECOMPOSITION d(n)
      ALIGN x WITH d
      DISTRIBUTE d(map)
      END
`, "does not conform"},
		{"unknown kind", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      DECOMPOSITION d(n)
      ALIGN x WITH d
      DISTRIBUTE d(CYCLIC)
      END
`, "want BLOCK or an INTEGER map array"},
		{"nothing aligned", `
      PROGRAM p
      PARAMETER (n = 4)
      INTEGER map(n)
      DECOMPOSITION d(n)
      DISTRIBUTE d(map)
      END
`, "no arrays aligned"},
		{"not alone on line", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      INTEGER map(n)
      DECOMPOSITION d(n), e(n)
      ALIGN x WITH d
      DISTRIBUTE d(map), e(BLOCK)
      END
`, "only item"},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestDistributeMapOutOfRangeValueFails checks the runtime guard on map
// array contents.
func TestDistributeMapOutOfRangeValueFails(t *testing.T) {
	const src = `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      INTEGER map(n)
      DECOMPOSITION d(n)
      ALIGN x WITH d
      READ map
      DISTRIBUTE d(map)
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{IntData: map[string]func(int) int{"MAP": func(int) int { return 99 }}}
	err = machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		prog.Execute(core.NewSession(c), env)
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}
