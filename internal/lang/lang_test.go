package lang

import (
	"math"
	"strings"
	"testing"

	"chaos/internal/core"
	"chaos/internal/machine"
)

// eulerSrc is the Figure 4 pattern: implicit mapping via LINK
// connectivity, RSB partitioning, and an edge sweep inside a time loop.
// Dialect note: array indexing is 0-based; FORALL i = 1, N iterates N
// times with i taking values 0..N-1.
const eulerSrc = `
      PROGRAM euler
      PARAMETER (nnode = 36, nedge = 60)
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
      DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
      DISTRIBUTE reg(BLOCK), reg2(BLOCK)
      ALIGN x, y WITH reg
      ALIGN end_pt1, end_pt2 WITH reg2
C     read the mesh from the host (Figure 4: call read_data(...))
      READ end_pt1, end_pt2
      FORALL i = 1, nnode
        x(i) = SIN(0.7*i) + 2.0
        y(i) = 0.0
      END FORALL
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      DO iter = 1, 3
        FORALL i = 1, nedge
          REDUCE (ADD, y(end_pt1(i)), (0.5*(x(end_pt1(i))+x(end_pt2(i))))**2 + 0.5*(x(end_pt2(i))-x(end_pt1(i))))
          REDUCE (ADD, y(end_pt2(i)), (0.5*(x(end_pt1(i))+x(end_pt2(i))))**2 - 0.5*(x(end_pt2(i))-x(end_pt1(i))))
        END FORALL
      END DO
      END
`

// grid6x6 produces the edges of a 6x6 grid (60 edges).
func grid6x6() (e1, e2 []int) {
	const gx, gy = 6, 6
	for v := 0; v < gx*gy; v++ {
		x, y := v%gx, v/gx
		if x+1 < gx {
			e1 = append(e1, v)
			e2 = append(e2, v+gx*0+1)
		}
		if y+1 < gy {
			e1 = append(e1, v)
			e2 = append(e2, v+gx)
		}
	}
	return
}

func eulerReference(n int, e1, e2 []int, sweeps int) []float64 {
	xv := make([]float64, n)
	for g := range xv {
		xv[g] = math.Sin(0.7*float64(g)) + 2
	}
	y := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		for i := range e1 {
			a, b := xv[e1[i]], xv[e2[i]]
			avg := 0.5 * (a + b)
			diff := b - a
			y[e1[i]] += avg*avg + 0.5*diff
			y[e2[i]] += avg*avg - 0.5*diff
		}
	}
	return y
}

func TestCompileEuler(t *testing.T) {
	p, err := Compile(eulerSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "EULER" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.RealArrays["X"] != 36 || p.IntArrays["END_PT1"] != 60 {
		t.Error("declarations wrong")
	}
	if p.AlignsTo["X"] != "REG" || p.AlignsTo["END_PT2"] != "REG2" {
		t.Error("alignment wrong")
	}
	plan := p.PlanString()
	for _, want := range []string{"K1", "K2/K3", "K4", "inspector/executor", "RSB"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExecuteEulerMatchesReference(t *testing.T) {
	const p = 4
	prog, err := Compile(eulerSrc)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := grid6x6()
	want := eulerReference(36, e1, e2, 3)
	env := &Env{
		IntData: map[string]func(int) int{
			"END_PT1": func(g int) int { return e1[g] },
			"END_PT2": func(g int) int { return e2[g] },
		},
		OnFinish: func(s *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
			y := reals["Y"]
			for i, g := range y.MyGlobals() {
				if math.Abs(y.Data[i]-want[g]) > 1e-9*(1+math.Abs(want[g])) {
					t.Errorf("y(%d) = %v, want %v", g, y.Data[i], want[g])
				}
			}
			// Schedule reuse across the DO loop: the edge sweep's
			// inspector must have run exactly once for 3 executions
			// (plus one for each init FORALL statement pair).
			hits, _ := s.Reg.Stats()
			if hits < 2 {
				t.Errorf("expected at least 2 inspector reuse hits, got %d", hits)
			}
		},
	}
	err = machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
		s := core.NewSession(c)
		if err := prog.Execute(s, env); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeometryProgram(t *testing.T) {
	// Figure 5 pattern: implicit mapping via GEOMETRY + RCB.
	src := `
      PROGRAM geo
      PARAMETER (n = 16)
      REAL*8 x(n), xc(n), yc(n)
      DECOMPOSITION reg(n)
      DISTRIBUTE reg(BLOCK)
      ALIGN x, xc, yc WITH reg
      READ xc, yc
      FORALL i = 1, n
        x(i) = 1.0
      END FORALL
C$    CONSTRUCT G (n, GEOMETRY(2, xc, yc))
C$    SET fmt BY PARTITIONING G USING RCB
C$    REDISTRIBUTE reg(fmt)
      FORALL i = 1, n
        x(i) = x(i) + i
      END FORALL
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{
		RealData: map[string]func(int) float64{
			"XC": func(g int) float64 { return float64(g % 4) },
			"YC": func(g int) float64 { return float64(g / 4) },
		},
		OnFinish: func(s *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
			x := reals["X"]
			if x.DAD().Kind.String() != "IRREGULAR" {
				t.Errorf("x not irregular after REDISTRIBUTE: %v", x.DAD())
			}
			for i, g := range x.MyGlobals() {
				if x.Data[i] != 1+float64(g) {
					t.Errorf("x(%d) = %v, want %v", g, x.Data[i], 1+float64(g))
				}
			}
		},
	}
	err = machine.Run(machine.Zero(4), func(c *machine.Ctx) {
		s := core.NewSession(c)
		if err := prog.Execute(s, env); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExternFunction(t *testing.T) {
	src := `
      PROGRAM md
      PARAMETER (natom = 12, npair = 8)
      REAL*8 q(natom), f(natom)
      INTEGER p1(npair), p2(npair)
      DECOMPOSITION atoms(natom), pairs(npair)
      DISTRIBUTE atoms(BLOCK), pairs(BLOCK)
      ALIGN q, f WITH atoms
      ALIGN p1, p2 WITH pairs
      READ p1, p2, q
      FORALL i = 1, npair
        REDUCE (ADD, f(p1(i)), q(p1(i))*q(p2(i))*INVR2(i))
        REDUCE (ADD, f(p2(i)), -q(p1(i))*q(p2(i))*INVR2(i))
      END FORALL
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p1 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p2 := []int{11, 10, 9, 8, 7, 6, 5, 4}
	invr2 := func(iter int, _ []float64) float64 { return 1 / float64(iter+1) }
	qv := func(g int) float64 { return float64(g%3) - 1 }
	want := make([]float64, 12)
	for i := range p1 {
		fval := qv(p1[i]) * qv(p2[i]) / float64(i+1)
		want[p1[i]] += fval
		want[p2[i]] -= fval
	}
	env := &Env{
		RealData: map[string]func(int) float64{"Q": qv},
		IntData: map[string]func(int) int{
			"P1": func(g int) int { return p1[g] },
			"P2": func(g int) int { return p2[g] },
		},
		Funcs: map[string]ExternFunc{"INVR2": invr2},
		OnFinish: func(_ *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
			f := reals["F"]
			for i, g := range f.MyGlobals() {
				if math.Abs(f.Data[i]-want[g]) > 1e-12 {
					t.Errorf("f(%d) = %v, want %v", g, f.Data[i], want[g])
				}
			}
		},
	}
	err = machine.Run(machine.Zero(3), func(c *machine.Ctx) {
		if err := prog.Execute(core.NewSession(c), env); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceVariantsParse(t *testing.T) {
	src := `
      PROGRAM r
      PARAMETER (n = 8)
      REAL*8 y(n), x(n)
      INTEGER ia(n)
      DECOMPOSITION d(n)
      DISTRIBUTE d(BLOCK)
      ALIGN y, x WITH d
      READ ia, x
      FORALL i = 1, n
        REDUCE (MAX, y(ia(i)), x(i))
        REDUCE (MIN, y(ia(i)), x(i))
        REDUCE (MUL, y(ia(i)), 1.0 + 0.0*x(i))
      END FORALL
      END
`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"undeclared array", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      FORALL i = 1, n
        z(i) = 1.0
      END FORALL
      END
`, "undeclared"},
		{"bad reduce op", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      FORALL i = 1, n
        REDUCE (XOR, x(i), 1.0)
      END FORALL
      END
`, "unknown REDUCE"},
		{"misaligned indirection", `
      PROGRAM p
      PARAMETER (n = 4, m = 6)
      REAL*8 x(n)
      INTEGER ia(m)
      FORALL i = 1, n
        x(ia(i)) = 1.0
      END FORALL
      END
`, "not aligned"},
		{"missing end", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
`, "missing END"},
		{"cyclic initial distribute", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      DECOMPOSITION d(n)
      DISTRIBUTE d(CYCLIC)
      END
`, "want BLOCK or an INTEGER map array"},
		{"unknown parameter", `
      PROGRAM p
      REAL*8 x(n)
      END
`, "unknown parameter"},
		{"align extent mismatch", `
      PROGRAM p
      PARAMETER (n = 4, m = 5)
      REAL*8 x(n)
      DECOMPOSITION d(m)
      ALIGN x WITH d
      END
`, "cannot align"},
		{"construct without clause", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
C$    CONSTRUCT G (n)
      END
`, "no GEOMETRY"},
		{"forall lower bound", `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      FORALL i = 2, n
        x(i) = 1.0
      END FORALL
      END
`, "lower bound"},
		{"stray character", "      PROGRAM p\n      REAL*8 x(4) @\n      END\n", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil {
			t.Errorf("%s: compile succeeded, want error containing %q", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	src := `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      READ x
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), &Env{}); e == nil ||
			!strings.Contains(e.Error(), "no host RealData binding") {
			t.Errorf("Execute err = %v", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	src2 := `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      FORALL i = 1, n
        x(i) = MYSTERY(i)
      END FORALL
      END
`
	prog2, err := Compile(src2)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		if e := prog2.Execute(core.NewSession(c), &Env{}); e == nil ||
			!strings.Contains(e.Error(), "no host binding for function") {
			t.Errorf("Execute err = %v", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	src3 := `
      PROGRAM p
      PARAMETER (n = 4)
      REAL*8 x(n)
      DECOMPOSITION d(n)
      DISTRIBUTE d(BLOCK)
      ALIGN x WITH d
C$    REDISTRIBUTE d(nosuchmap)
      END
`
	prog3, err := Compile(src3)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		if e := prog3.Execute(core.NewSession(c), &Env{}); e == nil ||
			!strings.Contains(e.Error(), "unknown distribution") {
			t.Errorf("Execute err = %v", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuiltins(t *testing.T) {
	src := `
      PROGRAM b
      PARAMETER (n = 6)
      REAL*8 x(n)
      FORALL i = 1, n
        x(i) = MAX(SIN(i), COS(i)) + SQRT(ABS(i - 2.5)) + MOD(i, 3.0)
      END FORALL
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{
		OnFinish: func(_ *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
			x := reals["X"]
			for i, g := range x.MyGlobals() {
				fg := float64(g)
				want := math.Max(math.Sin(fg), math.Cos(fg)) + math.Sqrt(math.Abs(fg-2.5)) + math.Mod(fg, 3)
				if math.Abs(x.Data[i]-want) > 1e-12 {
					t.Errorf("x(%d) = %v, want %v", g, x.Data[i], want)
				}
			}
		},
	}
	err = machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), env); e != nil {
			t.Error(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvalCodeOperators(t *testing.T) {
	// Direct bytecode check: 2**3 - 6/2 + (-1) = 8 - 3 - 1 = 4.
	f := &forallStmt{Var: "I", N: 1}
	toks, err := lexLine("2**3 - 6/2 + (-1)", 1)
	if err != nil {
		t.Fatal(err)
	}
	toks = append(toks, token{kind: tokEOL, line: 1})
	ps := &parser{prog: &Program{Params: map[string]int{}, RealArrays: map[string]int{}, IntArrays: map[string]int{}}}
	ps.lines = []srcLine{{num: 1, toks: toks}}
	ps.toks = toks
	e, err := ps.parseExpr(f)
	if err != nil {
		t.Fatal(err)
	}
	code, err := compileExpr(e, func(arrayRef) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	stack := make([]float64, codeDepth(code))
	if got := evalCode(code, 0, nil, stack); got != 4 {
		t.Errorf("eval = %v, want 4", got)
	}
}

func TestScheduleReuseThroughDoLoop(t *testing.T) {
	prog, err := Compile(eulerSrc)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := grid6x6()
	env := &Env{
		IntData: map[string]func(int) int{
			"END_PT1": func(g int) int { return e1[g] },
			"END_PT2": func(g int) int { return e2[g] },
		},
		OnFinish: func(s *core.Session, _ map[string]*core.Array, _ map[string]*core.IntArray) {
			_, misses := s.Reg.Stats()
			// Misses: init forall (first encounter), edge sweep first
			// encounter after redistribute. The two later sweeps hit.
			if misses > 3 {
				t.Errorf("too many inspector misses: %d", misses)
			}
		},
	}
	err = machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), env); e != nil {
			t.Error(e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetWithSpecOptions pins the option-list extension of the SET
// directive: a parenthesized key=value list after the partitioner
// name travels into partition.ParseSpec, and an unknown key fails at
// execution with the spec error, not a panic.
func TestSetWithSpecOptions(t *testing.T) {
	src := `
      PROGRAM specopt
      PARAMETER (n = 36, m = 60)
      REAL*8 x(n)
      INTEGER end_pt1(m), end_pt2(m)
      DYNAMIC, DECOMPOSITION reg(n), reg2(m)
      DISTRIBUTE reg(BLOCK), reg2(BLOCK)
      ALIGN x WITH reg
      ALIGN end_pt1, end_pt2 WITH reg2
      READ end_pt1, end_pt2
      FORALL i = 1, n
        x(i) = 1.0
      END FORALL
C$    CONSTRUCT G (n, LINK(m, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING MULTILEVEL(CoarsenTo=8, VCycle=TRUE)
C$    REDISTRIBUTE reg(distfmt)
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := grid6x6()
	env := &Env{
		IntData: map[string]func(int) int{
			"END_PT1": func(g int) int { return e1[g] },
			"END_PT2": func(g int) int { return e2[g] },
		},
	}
	err = machine.Run(machine.IPSC860(2), func(c *machine.Ctx) {
		s := core.NewSession(c)
		if err := prog.Execute(s, env); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// An unknown option key must surface partition.ParseSpec's error.
	bad, err := Compile(strings.Replace(src, "CoarsenTo=8", "Bogus=8", 1))
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.IPSC860(2), func(c *machine.Ctx) {
		s := core.NewSession(c)
		if e := bad.Execute(s, env); e == nil || !strings.Contains(e.Error(), "unknown spec option") {
			t.Errorf("bogus option: %v, want unknown-spec-option error", e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
