// Package lang implements the runtime-compilation front end: a
// miniature Fortran-90D-like language with the paper's irregular
// extensions (DECOMPOSITION / DISTRIBUTE / ALIGN, the CONSTRUCT / SET
// ... BY PARTITIONING ... USING / REDISTRIBUTE mapper-coupling
// directives, and FORALL loops with REDUCE statements), compiled into a
// plan of CHAOS runtime calls — the transformation of the paper's
// Figure 6 — and executed on the simulated machine.
package lang

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokPunct // single punctuation: ( ) , = + - * / : and ** as "**"
	tokEOL
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOL {
		return "end of line"
	}
	return fmt.Sprintf("%q", t.text)
}

// srcLine is one logical source line with its 1-based line number.
type srcLine struct {
	num    int
	toks   []token
	direct bool // came from a C$ directive line
}

// lexError reports a scanning problem with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.line, e.col, e.msg)
}

// lex splits source text into logical lines of tokens. Fortran-style
// comment lines (leading C/c/! without $) are dropped; `C$` directive
// lines are marked and lexed like code. Keywords are case-insensitive;
// identifiers are upper-cased during scanning.
func lex(src string) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimLeft(line, " \t")
		if trimmed == "" {
			continue
		}
		direct := false
		switch {
		case strings.HasPrefix(trimmed, "C$") || strings.HasPrefix(trimmed, "c$"):
			direct = true
			trimmed = trimmed[2:]
		case trimmed[0] == '!':
			continue
		case (trimmed[0] == 'C' || trimmed[0] == 'c') && (len(trimmed) == 1 || trimmed[1] == ' ' || trimmed[1] == '\t'):
			continue
		}
		toks, err := lexLine(trimmed, lineNo)
		if err != nil {
			return nil, err
		}
		if len(toks) == 0 {
			continue
		}
		toks = append(toks, token{kind: tokEOL, line: lineNo})
		out = append(out, srcLine{num: lineNo, toks: toks, direct: direct})
	}
	return out, nil
}

func lexLine(s string, lineNo int) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '!':
			// Inline comment to end of line.
			return toks, nil
		case isAlpha(c):
			j := i
			for j < len(s) && (isAlpha(s[j]) || isDigit(s[j]) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToUpper(s[i:j]), lineNo, i + 1})
			i = j
		case isDigit(c) || (c == '.' && i+1 < len(s) && isDigit(s[i+1])):
			j := i
			seenDot, seenExp := false, false
			for j < len(s) {
				ch := s[j]
				if isDigit(ch) {
					j++
					continue
				}
				if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (ch == 'e' || ch == 'E' || ch == 'd' || ch == 'D') && !seenExp && j+1 < len(s) &&
					(isDigit(s[j+1]) || ((s[j+1] == '+' || s[j+1] == '-') && j+2 < len(s) && isDigit(s[j+2]))) {
					seenExp = true
					j++
					if s[j] == '+' || s[j] == '-' {
						j++
					}
					continue
				}
				break
			}
			txt := strings.Map(func(r rune) rune {
				if r == 'd' || r == 'D' {
					return 'e'
				}
				return r
			}, s[i:j])
			toks = append(toks, token{tokNumber, txt, lineNo, i + 1})
			i = j
		case c == '*' && i+1 < len(s) && s[i+1] == '*':
			toks = append(toks, token{tokPunct, "**", lineNo, i + 1})
			i += 2
		case strings.ContainsRune("(),=+-*/:", rune(c)):
			toks = append(toks, token{tokPunct, string(c), lineNo, i + 1})
			i++
		default:
			return nil, &lexError{lineNo, i + 1, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	return toks, nil
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
