package lang

import (
	"strings"
	"testing"

	"chaos/internal/core"
	"chaos/internal/machine"
)

func lexOne(t *testing.T, src string) []token {
	t.Helper()
	lines, err := lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("expected 1 logical line, got %d", len(lines))
	}
	return lines[0].toks
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.25":    "3.25",
		"1.5e-3":  "1.5e-3",
		"2E+4":    "2E+4",
		"7.0d0":   "7.0e0", // Fortran double exponent normalized
		"1.25D-2": "1.25e-2",
		".5":      ".5",
	}
	for in, want := range cases {
		toks := lexOne(t, "x = "+in)
		last := toks[len(toks)-2] // before EOL
		if last.kind != tokNumber || last.text != want {
			t.Errorf("lex(%q) last token = %v %q, want number %q", in, last.kind, last.text, want)
		}
	}
}

func TestLexCommentsDropped(t *testing.T) {
	src := "C this is a comment\n! and this\n      REAL*8 x(4)\nc lower case too\n"
	lines, err := lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	if lines[0].toks[0].text != "REAL" {
		t.Errorf("kept line starts with %q", lines[0].toks[0].text)
	}
}

func TestLexInlineComment(t *testing.T) {
	toks := lexOne(t, "x = 1 ! trailing comment")
	// x = 1 EOL -> 4 tokens
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestLexDirectiveMarked(t *testing.T) {
	lines, err := lex("C$    CONSTRUCT G (4, LOAD(w))\n      END\n")
	if err != nil {
		t.Fatal(err)
	}
	if !lines[0].direct {
		t.Error("C$ line not marked as directive")
	}
	if lines[1].direct {
		t.Error("plain line marked as directive")
	}
}

func TestLexCaseInsensitiveIdents(t *testing.T) {
	toks := lexOne(t, "forall I_2 = 1, n")
	if toks[0].text != "FORALL" || toks[1].text != "I_2" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexPowerOperator(t *testing.T) {
	toks := lexOne(t, "y = x ** 2 * 3")
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokPunct {
			texts = append(texts, tk.text)
		}
	}
	joined := strings.Join(texts, " ")
	if joined != "= ** *" {
		t.Errorf("punct sequence %q", joined)
	}
}

func TestLexBadCharacterPosition(t *testing.T) {
	_, err := lex("      x = 1 # 2\n")
	if err == nil || !strings.Contains(err.Error(), ":") {
		t.Fatalf("err = %v, want positioned lex error", err)
	}
}

func TestEndDoAndEndForallVariants(t *testing.T) {
	src := `
      PROGRAM v
      PARAMETER (n = 4)
      REAL*8 x(n)
      DO k = 1, 2
        FORALL i = 1, n
          x(i) = 1.0
        ENDFORALL
      ENDDO
      END
`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDoLoops(t *testing.T) {
	src := `
      PROGRAM v
      PARAMETER (n = 4)
      REAL*8 x(n)
      DO a = 1, 2
        DO b = 1, 3
          FORALL i = 1, n
            x(i) = x(i) + 1.0
          END FORALL
        END DO
      END DO
      END
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// 2*3 = 6 executions accumulate.
	env := &Env{
		OnFinish: func(_ *core.Session, reals map[string]*core.Array, _ map[string]*core.IntArray) {
			x := reals["X"]
			for i := range x.Data {
				if x.Data[i] != 6 {
					t.Errorf("x[%d] = %v, want 6", i, x.Data[i])
				}
			}
		},
	}
	if err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		if e := prog.Execute(core.NewSession(c), env); e != nil {
			t.Error(e)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinArgCountChecked(t *testing.T) {
	src := `
      PROGRAM v
      PARAMETER (n = 4)
      REAL*8 x(n)
      FORALL i = 1, n
        x(i) = SIN(1.0, 2.0)
      END FORALL
      END
`
	if _, err := Compile(src); err == nil || !strings.Contains(err.Error(), "expects 1 argument") {
		t.Fatalf("err = %v", err)
	}
}
