package lang

import (
	"fmt"
	"strconv"

	"chaos/internal/core"
)

// Compile lexes, parses and semantically checks a source program,
// returning the executable Program (the generated CHAOS plan).
func Compile(src string) (*Program, error) {
	lines, err := lex(src)
	if err != nil {
		return nil, err
	}
	ps := &parser{
		lines: lines,
		prog: &Program{
			Params:     map[string]int{},
			RealArrays: map[string]int{},
			IntArrays:  map[string]int{},
			Decomps:    map[string]int{},
			AlignsTo:   map[string]string{},
		},
	}
	if err := ps.parse(); err != nil {
		return nil, err
	}
	if err := compileProgram(ps.prog); err != nil {
		return nil, err
	}
	return ps.prog, nil
}

type parser struct {
	lines []srcLine
	li    int // current line index
	toks  []token
	ti    int
	prog  *Program
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func (p *parser) errf(format string, args ...any) error {
	ln := 0
	if p.li < len(p.lines) {
		ln = p.lines[p.li].num
	} else if len(p.lines) > 0 {
		ln = p.lines[len(p.lines)-1].num
	}
	return &parseError{ln, fmt.Sprintf(format, args...)}
}

// Token helpers operate on the current line.
func (p *parser) peek() token { return p.toks[p.ti] }
func (p *parser) next() token {
	t := p.toks[p.ti]
	if t.kind != tokEOL {
		p.ti++
	}
	return t
}
func (p *parser) accept(text string) bool {
	if p.peek().kind != tokEOL && p.peek().text == text {
		p.ti++
		return true
	}
	return false
}
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.peek())
	}
	return nil
}
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.ti++
	return t.text, nil
}
func (p *parser) atEOL() bool { return p.peek().kind == tokEOL }
func (p *parser) expectEOL() error {
	if !p.atEOL() {
		return p.errf("unexpected trailing %s", p.peek())
	}
	return nil
}

// intVal parses an integer literal or parameter reference.
func (p *parser) intVal() (int, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.ti++
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return 0, p.errf("expected integer, found %q", t.text)
		}
		return v, nil
	case tokIdent:
		p.ti++
		v, ok := p.prog.Params[t.text]
		if !ok {
			return 0, p.errf("unknown parameter %q", t.text)
		}
		return v, nil
	default:
		return 0, p.errf("expected integer or parameter, found %s", t)
	}
}

// parse consumes every line.
func (p *parser) parse() error {
	body, err := p.parseBlock(nil)
	if err != nil {
		return err
	}
	p.prog.Body = body
	return nil
}

// parseBlock parses statements until one of the given terminators (or
// end of input when terminators is nil, requiring a final END).
func (p *parser) parseBlock(terminators []string) ([]stmt, error) {
	var body []stmt
	for p.li < len(p.lines) {
		p.toks = p.lines[p.li].toks
		p.ti = 0
		head := p.peek()
		if head.kind == tokIdent {
			for _, term := range terminators {
				if head.text == term {
					return body, nil
				}
			}
		}
		s, err := p.parseLine()
		if err != nil {
			return nil, err
		}
		if s != nil {
			body = append(body, s)
		}
		if s == nil && terminators == nil {
			return body, nil // END of program
		}
	}
	if terminators != nil {
		return nil, p.errf("missing %q", terminators[0])
	}
	return nil, p.errf("missing END")
}

// parseLine parses one statement starting at the current line; returns
// (nil, nil) for the program END.
func (p *parser) parseLine() (stmt, error) {
	ln := p.lines[p.li].num
	kw, err := p.ident()
	if err != nil {
		return nil, err
	}
	adv := func() { p.li++ }
	switch kw {
	case "PROGRAM":
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.prog.Name = name
		adv()
		return p.nextStmt()
	case "PARAMETER":
		if err := p.parseParameter(); err != nil {
			return nil, err
		}
		adv()
		return p.nextStmt()
	case "REAL":
		// REAL*8 decl-list
		if err := p.expect("*"); err != nil {
			return nil, err
		}
		if _, err := p.intVal(); err != nil {
			return nil, err
		}
		if err := p.parseDecls(p.prog.RealArrays, "REAL*8"); err != nil {
			return nil, err
		}
		adv()
		return p.nextStmt()
	case "INTEGER":
		if err := p.parseDecls(p.prog.IntArrays, "INTEGER"); err != nil {
			return nil, err
		}
		adv()
		return p.nextStmt()
	case "DYNAMIC":
		// DYNAMIC, DECOMPOSITION decl-list
		if err := p.expect(","); err != nil {
			return nil, err
		}
		if err := p.expect("DECOMPOSITION"); err != nil {
			return nil, err
		}
		if err := p.parseDecls(p.prog.Decomps, "DECOMPOSITION"); err != nil {
			return nil, err
		}
		adv()
		return p.nextStmt()
	case "DECOMPOSITION":
		if err := p.parseDecls(p.prog.Decomps, "DECOMPOSITION"); err != nil {
			return nil, err
		}
		adv()
		return p.nextStmt()
	case "DISTRIBUTE":
		st, err := p.parseDistribute(ln)
		if err != nil {
			return nil, err
		}
		adv()
		if st != nil {
			return st, nil
		}
		return p.nextStmt()
	case "ALIGN":
		if err := p.parseAlign(); err != nil {
			return nil, err
		}
		adv()
		return p.nextStmt()
	case "READ":
		s := &readStmt{baseStmt: baseStmt{ln}}
		for {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			if !p.isArray(n) {
				return nil, p.errf("READ of undeclared array %q", n)
			}
			s.Names = append(s.Names, n)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		adv()
		return s, nil
	case "CONSTRUCT":
		s, err := p.parseConstruct(ln)
		if err != nil {
			return nil, err
		}
		adv()
		return s, nil
	case "SET":
		s, err := p.parseSet(ln)
		if err != nil {
			return nil, err
		}
		adv()
		return s, nil
	case "REDISTRIBUTE":
		s, err := p.parseRedistribute(ln)
		if err != nil {
			return nil, err
		}
		adv()
		return s, nil
	case "DO":
		return p.parseDo(ln)
	case "FORALL":
		return p.parseForall(ln)
	case "END":
		if err := p.expectEOL(); err != nil {
			return nil, err
		}
		adv()
		return nil, nil
	default:
		return nil, p.errf("unexpected statement %q", kw)
	}
}

// nextStmt continues parsing after a declaration-type line consumed by
// parseLine.
func (p *parser) nextStmt() (stmt, error) {
	if p.li >= len(p.lines) {
		return nil, p.errf("missing END")
	}
	p.toks = p.lines[p.li].toks
	p.ti = 0
	return p.parseLine()
}

func (p *parser) isArray(n string) bool {
	_, r := p.prog.RealArrays[n]
	_, i := p.prog.IntArrays[n]
	return r || i
}

func (p *parser) parseParameter() error {
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		n, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		v, err := p.intVal()
		if err != nil {
			return err
		}
		p.prog.Params[n] = v
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	return p.expectEOL()
}

// parseDecls parses name(extent) {, name(extent)} into dst.
func (p *parser) parseDecls(dst map[string]int, what string) error {
	for {
		n, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("("); err != nil {
			return err
		}
		ext, err := p.intVal()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		if ext < 1 {
			return p.errf("%s %q has extent %d", what, n, ext)
		}
		if _, dup := dst[n]; dup {
			return p.errf("duplicate %s declaration %q", what, n)
		}
		dst[n] = ext
		if !p.accept(",") {
			break
		}
	}
	return p.expectEOL()
}

// parseDistribute handles both declarative BLOCK distributions (the
// default; no code is emitted) and the executable irregular form
// "DISTRIBUTE irreg(map)" of the paper's Figure 3, which remaps the
// arrays aligned with the decomposition according to a user-computed
// map array. The irregular form must be the only item on its line.
func (p *parser) parseDistribute(ln int) (stmt, error) {
	entries := 0
	var irreg *distributeStmt
	for {
		entries++
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, ok := p.prog.Decomps[n]; !ok {
			return nil, p.errf("DISTRIBUTE of undeclared decomposition %q", n)
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		kind, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch {
		case kind == "BLOCK":
			// The default initial distribution; nothing to emit.
		case p.prog.IntArrays[kind] > 0:
			if p.prog.IntArrays[kind] != p.prog.Decomps[n] {
				return nil, p.errf("map array %q (extent %d) does not conform to decomposition %q (extent %d)",
					kind, p.prog.IntArrays[kind], n, p.prog.Decomps[n])
			}
			if irreg != nil {
				return nil, p.errf("one irregular DISTRIBUTE per line")
			}
			irreg = &distributeStmt{baseStmt: baseStmt{ln}, Decomp: n, MapArr: kind}
		default:
			return nil, p.errf("DISTRIBUTE %s(%s): want BLOCK or an INTEGER map array", n, kind)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if !p.accept(",") {
			break
		}
	}
	if irreg != nil && entries > 1 {
		return nil, p.errf("irregular DISTRIBUTE must be the only item on its line")
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	if irreg == nil {
		return nil, nil
	}
	// Resolve the aligned array set (declarations precede use).
	for an, dec := range p.prog.AlignsTo {
		if dec == irreg.Decomp && an != irreg.MapArr {
			irreg.arrays = append(irreg.arrays, an)
		}
	}
	sortStrings(irreg.arrays)
	if len(irreg.arrays) == 0 {
		return nil, p.errf("DISTRIBUTE %s(%s): no arrays aligned with %s", irreg.Decomp, irreg.MapArr, irreg.Decomp)
	}
	return irreg, nil
}

func (p *parser) parseAlign() error {
	var names []string
	for {
		n, err := p.ident()
		if err != nil {
			return err
		}
		if !p.isArray(n) {
			return p.errf("ALIGN of undeclared array %q", n)
		}
		names = append(names, n)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("WITH"); err != nil {
		return err
	}
	d, err := p.ident()
	if err != nil {
		return err
	}
	ext, ok := p.prog.Decomps[d]
	if !ok {
		return p.errf("ALIGN WITH undeclared decomposition %q", d)
	}
	for _, n := range names {
		ne := p.prog.RealArrays[n]
		if ne == 0 {
			ne = p.prog.IntArrays[n]
		}
		if ne != ext {
			return p.errf("array %q (extent %d) cannot align with decomposition %q (extent %d)", n, ne, d, ext)
		}
		p.prog.AlignsTo[n] = d
	}
	return p.expectEOL()
}

func (p *parser) parseConstruct(ln int) (stmt, error) {
	s := &constructStmt{baseStmt: baseStmt{ln}}
	g, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.G = g
	if err := p.expect("("); err != nil {
		return nil, err
	}
	n, err := p.intVal()
	if err != nil {
		return nil, err
	}
	s.N = n
	for p.accept(",") {
		kw, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		switch kw {
		case "GEOMETRY":
			dim, err := p.intVal()
			if err != nil {
				return nil, err
			}
			for d := 0; d < dim; d++ {
				if err := p.expect(","); err != nil {
					return nil, err
				}
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				if p.prog.RealArrays[a] != s.N {
					return nil, p.errf("GEOMETRY array %q must be REAL*8 of extent %d", a, s.N)
				}
				s.Geometry = append(s.Geometry, a)
			}
		case "LOAD":
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.prog.RealArrays[a] != s.N {
				return nil, p.errf("LOAD array %q must be REAL*8 of extent %d", a, s.N)
			}
			s.Load = a
		case "LINK":
			if _, err := p.intVal(); err != nil { // edge count, informational
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			a1, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			a2, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.prog.IntArrays[a1] == 0 || p.prog.IntArrays[a2] == 0 {
				return nil, p.errf("LINK arrays %q, %q must be INTEGER arrays", a1, a2)
			}
			if p.prog.IntArrays[a1] != p.prog.IntArrays[a2] {
				return nil, p.errf("LINK arrays %q, %q have different extents", a1, a2)
			}
			s.Link1, s.Link2 = a1, a2
		default:
			return nil, p.errf("unknown CONSTRUCT clause %q", kw)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(s.Geometry) == 0 && s.Load == "" && s.Link1 == "" {
		return nil, p.errf("CONSTRUCT %q has no GEOMETRY, LOAD or LINK clause", s.G)
	}
	return s, p.expectEOL()
}

func (p *parser) parseSet(ln int) (stmt, error) {
	s := &setStmt{baseStmt: baseStmt{ln}}
	m, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Map = m
	if err := p.expect("BY"); err != nil {
		return nil, err
	}
	if err := p.expect("PARTITIONING"); err != nil {
		return nil, err
	}
	g, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.G = g
	if err := p.expect("USING"); err != nil {
		return nil, err
	}
	// Partitioner names may contain '-' (RSB-KL): IDENT (- IDENT)*.
	pn, err := p.ident()
	if err != nil {
		return nil, err
	}
	for p.accept("-") {
		more, err := p.ident()
		if err != nil {
			return nil, err
		}
		pn += "-" + more
	}
	// An optional parenthesized option list — USING MULTILEVEL
	// (CoarsenTo=200, VCycle=TRUE) — travels verbatim into the spec
	// string; partition.ParseSpec validates the keys at execution.
	if p.accept("(") {
		body := ""
		for !p.atEOL() && p.peek().text != ")" {
			body += p.next().text
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		pn += "(" + body + ")"
	}
	s.Partitioner = pn
	return s, p.expectEOL()
}

func (p *parser) parseRedistribute(ln int) (stmt, error) {
	s := &redistributeStmt{baseStmt: baseStmt{ln}}
	d, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, ok := p.prog.Decomps[d]; !ok {
		return nil, p.errf("REDISTRIBUTE of undeclared decomposition %q", d)
	}
	s.Decomp = d
	if err := p.expect("("); err != nil {
		return nil, err
	}
	m, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Map = m
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	// Resolve the aligned array set now (declarations precede use).
	for n, dec := range p.prog.AlignsTo {
		if dec == d {
			s.arrays = append(s.arrays, n)
		}
	}
	sortStrings(s.arrays)
	return s, p.expectEOL()
}

func (p *parser) parseDo(ln int) (stmt, error) {
	s := &doStmt{baseStmt: baseStmt{ln}}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Var = v
	if err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.intVal()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	hi, err := p.intVal()
	if err != nil {
		return nil, err
	}
	s.Lo, s.Hi = lo, hi
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	p.li++
	body, err := p.parseBlock([]string{"END", "ENDDO"})
	if err != nil {
		return nil, err
	}
	// Consume END DO / ENDDO.
	p.toks = p.lines[p.li].toks
	p.ti = 0
	kw, _ := p.ident()
	if kw == "END" {
		if err := p.expect("DO"); err != nil {
			return nil, err
		}
	}
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	p.li++
	s.Body = body
	return s, nil
}

func (p *parser) parseForall(ln int) (stmt, error) {
	s := &forallStmt{baseStmt: baseStmt{ln}}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Var = v
	if err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.intVal()
	if err != nil {
		return nil, err
	}
	if lo != 1 {
		return nil, p.errf("FORALL lower bound must be 1")
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	hi, err := p.intVal()
	if err != nil {
		return nil, err
	}
	if hi < 1 {
		return nil, p.errf("FORALL upper bound %d", hi)
	}
	s.N = hi
	if err := p.expectEOL(); err != nil {
		return nil, err
	}
	p.li++
	// Body: assignment / REDUCE lines until END FORALL.
	for {
		if p.li >= len(p.lines) {
			return nil, p.errf("missing END FORALL")
		}
		p.toks = p.lines[p.li].toks
		p.ti = 0
		if p.peek().kind == tokIdent && (p.peek().text == "END" || p.peek().text == "ENDFORALL") {
			kw, _ := p.ident()
			if kw == "END" {
				if err := p.expect("FORALL"); err != nil {
					return nil, err
				}
			}
			if err := p.expectEOL(); err != nil {
				return nil, err
			}
			p.li++
			break
		}
		a, err := p.parseForallAssign(s)
		if err != nil {
			return nil, err
		}
		s.Assigns = append(s.Assigns, a)
		p.li++
	}
	if len(s.Assigns) == 0 {
		return nil, p.errf("empty FORALL body")
	}
	return s, nil
}

// parseForallAssign parses `target = expr` or `REDUCE(op, target, expr)`.
func (p *parser) parseForallAssign(f *forallStmt) (forallAssign, error) {
	var a forallAssign
	if p.peek().kind == tokIdent && p.peek().text == "REDUCE" {
		p.ti++
		if err := p.expect("("); err != nil {
			return a, err
		}
		opName, err := p.ident()
		if err != nil {
			return a, err
		}
		switch opName {
		case "ADD", "SUM":
			a.Op = core.Add
		case "MAX":
			a.Op = core.Max
		case "MIN":
			a.Op = core.Min
		case "MUL", "MULT", "PROD":
			a.Op = core.Mul
		default:
			return a, p.errf("unknown REDUCE operator %q", opName)
		}
		if err := p.expect(","); err != nil {
			return a, err
		}
		ref, err := p.parseArrayRef(f)
		if err != nil {
			return a, err
		}
		a.Target = ref
		if err := p.expect(","); err != nil {
			return a, err
		}
		e, err := p.parseExpr(f)
		if err != nil {
			return a, err
		}
		a.Expr = e
		if err := p.expect(")"); err != nil {
			return a, err
		}
		return a, p.expectEOL()
	}
	ref, err := p.parseArrayRef(f)
	if err != nil {
		return a, err
	}
	a.Op = core.Assign
	a.Target = ref
	if err := p.expect("="); err != nil {
		return a, err
	}
	e, err := p.parseExpr(f)
	if err != nil {
		return a, err
	}
	a.Expr = e
	return a, p.expectEOL()
}

// parseArrayRef parses arr(i) or arr(ind(i)) against forall variable i.
func (p *parser) parseArrayRef(f *forallStmt) (arrayRef, error) {
	var r arrayRef
	name, err := p.ident()
	if err != nil {
		return r, err
	}
	if err := p.expect("("); err != nil {
		return r, err
	}
	inner, err := p.ident()
	if err != nil {
		return r, err
	}
	if inner == f.Var {
		if err := p.expect(")"); err != nil {
			return r, err
		}
		r.Array = name
		return r, p.checkRef(r, f)
	}
	// arr(ind(i))
	if err := p.expect("("); err != nil {
		return r, err
	}
	v, err := p.ident()
	if err != nil {
		return r, err
	}
	if v != f.Var {
		return r, p.errf("indirection %q must be indexed by loop variable %q", inner, f.Var)
	}
	if err := p.expect(")"); err != nil {
		return r, err
	}
	if err := p.expect(")"); err != nil {
		return r, err
	}
	r.Array = name
	r.Ind = inner
	return r, p.checkRef(r, f)
}

func (p *parser) checkRef(r arrayRef, f *forallStmt) error {
	if p.prog.RealArrays[r.Array] == 0 {
		return p.errf("reference to undeclared REAL*8 array %q", r.Array)
	}
	if r.Ind != "" {
		ext := p.prog.IntArrays[r.Ind]
		if ext == 0 {
			return p.errf("indirection array %q is not a declared INTEGER array", r.Ind)
		}
		if ext != f.N {
			return p.errf("indirection array %q (extent %d) not aligned with FORALL extent %d", r.Ind, ext, f.N)
		}
	} else if p.prog.RealArrays[r.Array] != f.N {
		return p.errf("directly indexed array %q (extent %d) not conformant with FORALL extent %d",
			r.Array, p.prog.RealArrays[r.Array], f.N)
	}
	return nil
}

// Expression grammar: expr := term {(+|-) term}; term := factor
// {(*|/) factor}; factor := unary [** factor]; unary := [+|-] primary;
// primary := number | loopvar | param | arrayref | call | (expr).
func (p *parser) parseExpr(f *forallStmt) (expr, error) {
	l, err := p.parseTerm(f)
	if err != nil {
		return nil, err
	}
	for {
		if p.accept("+") {
			r, err := p.parseTerm(f)
			if err != nil {
				return nil, err
			}
			l = &binExpr{"+", l, r}
		} else if p.accept("-") {
			r, err := p.parseTerm(f)
			if err != nil {
				return nil, err
			}
			l = &binExpr{"-", l, r}
		} else {
			return l, nil
		}
	}
}

func (p *parser) parseTerm(f *forallStmt) (expr, error) {
	l, err := p.parseFactor(f)
	if err != nil {
		return nil, err
	}
	for {
		if p.accept("*") {
			r, err := p.parseFactor(f)
			if err != nil {
				return nil, err
			}
			l = &binExpr{"*", l, r}
		} else if p.accept("/") {
			r, err := p.parseFactor(f)
			if err != nil {
				return nil, err
			}
			l = &binExpr{"/", l, r}
		} else {
			return l, nil
		}
	}
}

func (p *parser) parseFactor(f *forallStmt) (expr, error) {
	l, err := p.parseUnary(f)
	if err != nil {
		return nil, err
	}
	if p.accept("**") {
		r, err := p.parseFactor(f) // right associative
		if err != nil {
			return nil, err
		}
		return &binExpr{"**", l, r}, nil
	}
	return l, nil
}

func (p *parser) parseUnary(f *forallStmt) (expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary(f)
		if err != nil {
			return nil, err
		}
		return &unExpr{"-", x}, nil
	}
	p.accept("+")
	return p.parsePrimary(f)
}

func (p *parser) parsePrimary(f *forallStmt) (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.ti++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &numExpr{v}, nil
	case tokPunct:
		if t.text == "(" {
			p.ti++
			e, err := p.parseExpr(f)
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		name := t.text
		if name == f.Var {
			p.ti++
			return &loopVarExpr{}, nil
		}
		if v, ok := p.prog.Params[name]; ok {
			p.ti++
			return &numExpr{float64(v)}, nil
		}
		if p.prog.RealArrays[name] > 0 {
			// Re-parse as array reference from the name.
			ref, err := p.parseArrayRef(f)
			if err != nil {
				return nil, err
			}
			return &refExpr{ref}, nil
		}
		// Function call (builtin or host extern).
		p.ti++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		call := &callExpr{name: name}
		if !p.accept(")") {
			for {
				a, err := p.parseExpr(f)
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		if bi, ok := builtins[name]; ok && bi.argc != len(call.args) {
			return nil, p.errf("builtin %s expects %d argument(s), got %d", name, bi.argc, len(call.args))
		}
		return call, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
