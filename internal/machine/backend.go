package machine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Backend selects how a machine executes its ranks.
type Backend int

const (
	// Simulated is the classic mode: goroutine-per-rank with every
	// charge going to the virtual clock. Host wall time is incidental;
	// the virtual clock is the authoritative timing.
	Simulated Backend = iota
	// Real is the real-cores mode: ranks execute on a worker pool
	// capped at GOMAXPROCS compute slots, payloads are physically
	// copied into receiver memory on delivery, and the authoritative
	// timing is per-rank wall time (Stats.Elapsed). The virtual clock
	// is still charged so both trajectories come out of one run.
	Real
)

func (b Backend) String() string {
	switch b {
	case Simulated:
		return "simulated"
	case Real:
		return "real"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps the command-line spellings ("sim", "simulated",
// "real") to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim", "simulated":
		return Simulated, nil
	case "real":
		return Real, nil
	default:
		return Simulated, fmt.Errorf("machine: unknown backend %q (have sim, real)", s)
	}
}

// Stats reports both timing trajectories of one run: the simulated
// makespan (maximum final virtual clock across ranks) and the real
// makespan (maximum per-rank wall time). On the simulated backend
// MaxClock is authoritative and Elapsed merely records what the host
// happened to spend; on the real backend it is the reverse.
type Stats struct {
	// MaxClock is the maximum final virtual clock across ranks, in
	// simulated seconds.
	MaxClock float64
	// Elapsed is the maximum per-rank wall time: each rank's wall
	// clock runs from its goroutine starting the body to the body
	// returning (or unwinding), and the per-rank times are
	// max-reduced. Time spent blocked in collectives counts — a rank
	// waiting on a straggler is occupied, exactly as on real hardware.
	Elapsed time.Duration
}

// RunStats executes body like Run under the backend selected by
// cfg.Backend and returns both timing trajectories. The context
// cancels the run: cancellation aborts the machine exactly like a rank
// panic, unwinding every rank at its next machine call (blocked ranks
// are woken mid-collective), and the returned error wraps ctx.Err().
// A nil ctx means context.Background().
func RunStats(ctx context.Context, cfg Config, body func(*Ctx)) (Stats, error) {
	if cfg.Procs < 1 {
		return Stats{}, fmt.Errorf("machine: invalid processor count %d", cfg.Procs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := &Machine{
		cfg:     cfg,
		real:    cfg.Backend == Real,
		abortCh: make(chan struct{}),
		elapsed: make([]time.Duration, cfg.Procs),
		clocks:  make([]float64, cfg.Procs),
	}
	m.boxes = make([]*mailbox, cfg.Procs)
	for i := range m.boxes {
		m.boxes[i] = newMailbox(m)
	}
	m.rdv = newRendezvous(m, cfg.Procs)
	if m.real {
		m.slots = make(chan struct{}, workerSlots(cfg))
	}
	if err := ctx.Err(); err != nil {
		// Cancelled before launch: pre-abort so every rank unwinds at
		// its first machine call without doing work.
		m.abort(fmt.Errorf("machine: run cancelled: %w", err))
	}

	// The watcher translates context cancellation into a machine
	// abort; the done channel retires it when the run finishes first.
	done := make(chan struct{})
	if d := ctx.Done(); d != nil {
		go func() {
			select {
			case <-d:
				m.abort(fmt.Errorf("machine: run cancelled: %w", ctx.Err()))
			case <-done:
			}
		}()
	}

	var wg sync.WaitGroup
	wg.Add(cfg.Procs)
	for r := 0; r < cfg.Procs; r++ {
		go func(rank int) {
			c := &Ctx{rank: rank, procs: cfg.Procs, m: m}
			start := time.Now()
			defer wg.Done()
			defer func() {
				m.elapsed[rank] = time.Since(start)
				m.clocks[rank] = c.clock
				c.releaseSlot()
				if p := recover(); p != nil {
					if _, ok := p.(abortSignal); ok {
						return // secondary unwind; original error already recorded
					}
					m.abort(fmt.Errorf("machine: rank %d panicked: %v", rank, p))
				}
			}()
			c.checkAborted()
			c.acquireSlot()
			body(c)
		}(r)
	}
	wg.Wait()
	close(done)

	var st Stats
	for r := 0; r < cfg.Procs; r++ {
		if m.clocks[r] > st.MaxClock {
			st.MaxClock = m.clocks[r]
		}
		if m.elapsed[r] > st.Elapsed {
			st.Elapsed = m.elapsed[r]
		}
	}
	_, err := m.abortedErr()
	return st, err
}

// RunReal executes body on the real-cores backend regardless of
// cfg.Backend: a context-cancellable run whose ranks do real byte
// movement and real kernel work on host cores (see Backend).
func RunReal(ctx context.Context, cfg Config, body func(*Ctx)) error {
	cfg.Backend = Real
	_, err := RunStats(ctx, cfg, body)
	return err
}

// Elapsed runs body like Run and returns the maximum per-rank wall
// time across ranks in seconds — the real-time counterpart of
// MaxClock, comparable across backends.
func Elapsed(cfg Config, body func(*Ctx)) (float64, error) {
	st, err := RunStats(context.Background(), cfg, body)
	return st.Elapsed.Seconds(), err
}

// workerSlots resolves the compute-slot width of a real-backend run:
// cfg.Workers when positive, else min(GOMAXPROCS, Procs).
func workerSlots(cfg Config) int {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cfg.Procs {
		w = cfg.Procs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// acquireSlot claims a compute slot on the real backend, blocking
// while all slots are busy. Aborting the machine (rank panic or
// context cancellation) unwinds blocked acquirers, so a cancelled run
// never deadlocks on slot starvation. No-op on the simulated backend.
func (c *Ctx) acquireSlot() {
	if c.m.slots == nil || c.holdsSlot {
		return
	}
	select {
	case c.m.slots <- struct{}{}:
		c.holdsSlot = true
	case <-c.m.abortCh:
		panic(abortSignal{})
	}
}

// releaseSlot returns this rank's compute slot to the pool. No-op when
// the rank holds none (simulated backend, or already yielded).
func (c *Ctx) releaseSlot() {
	if c.m.slots == nil || !c.holdsSlot {
		return
	}
	<-c.m.slots
	c.holdsSlot = false
}

// yield runs the blocking operation f without occupying a compute
// slot, so that a rank waiting on a message or a collective never
// starves runnable ranks of cores — the property that lets P ranks
// share min(GOMAXPROCS, P) slots without deadlock. The slot is
// re-claimed before control returns to rank code; if the machine
// aborted meanwhile, re-claiming unwinds instead (the rank is dying
// and needs no core).
func (c *Ctx) yield(f func()) {
	if c.m.slots == nil {
		f()
		return
	}
	c.releaseSlot()
	defer c.acquireSlot()
	f()
}
