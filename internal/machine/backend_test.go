package machine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chaos/internal/xrand"
)

// realCfg returns a zero-cost Real-backend config.
func realCfg(procs int) Config {
	cfg := Zero(procs)
	cfg.Backend = Real
	return cfg
}

func TestBackendString(t *testing.T) {
	if Simulated.String() != "simulated" || Real.String() != "real" {
		t.Error("Backend.String mismatch")
	}
	if Backend(9).String() == "" {
		t.Error("unknown backend should still format")
	}
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]Backend{"sim": Simulated, "simulated": Simulated, "real": Real} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBackend("quantum"); err == nil {
		t.Error("ParseBackend accepted unknown backend")
	}
}

// TestRealBackendCollectives drives the full collective surface on the
// Real backend and checks every result, including the receiver-copy
// contract: mutating what one rank received must not corrupt another
// rank's view (payloads are physically copied on delivery).
func TestRealBackendCollectives(t *testing.T) {
	const p = 6
	err := Run(realCfg(p), func(c *Ctx) {
		if got := c.SumInt(c.Rank()); got != p*(p-1)/2 {
			t.Errorf("SumInt = %d", got)
		}
		bc := c.BroadcastInts(2, []int{10, 20, 30})
		bc[0] = -c.Rank() // scribble: per-rank copy, must stay private
		c.Barrier()
		bc2 := c.BroadcastInts(2, []int{10, 20, 30})
		if bc2[0] != 10 {
			t.Errorf("rank %d: broadcast copy not private: %v", c.Rank(), bc2)
		}
		out := make([][]int, p)
		for d := 0; d < p; d++ {
			out[d] = []int{c.Rank(), d}
		}
		in := c.AlltoAllInts(out)
		for s := 0; s < p; s++ {
			if in[s][0] != s || in[s][1] != c.Rank() {
				t.Errorf("rank %d from %d: %v", c.Rank(), s, in[s])
			}
			in[s][0] = -1 // receiver owns its copy
		}
		fo := make([][]float64, p)
		for d := 0; d < p; d++ {
			fo[d] = []float64{float64(c.Rank()) + 0.5}
		}
		fi := c.AlltoAllFloats(fo)
		for s := 0; s < p; s++ {
			if fi[s][0] != float64(s)+0.5 {
				t.Errorf("rank %d floats from %d: %v", c.Rank(), s, fi[s])
			}
		}
		if g := c.AllGatherInt(c.Rank() * 3); g[p-1] != (p-1)*3 {
			t.Errorf("AllGatherInt: %v", g)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRealBackendRecvCopies pins the point-to-point delivery contract
// of the Real backend: RecvInts hands back memory the receiver owns
// even when the sender used the raw reference-delivering Send.
func TestRealBackendRecvCopies(t *testing.T) {
	err := Run(realCfg(2), func(c *Ctx) {
		if c.Rank() == 0 {
			xs := []int{1, 2, 3}
			c.Send(1, 0, xs, 24) // raw send: delivered by reference on Simulated
			c.Barrier()
			xs[0] = 99
			c.Barrier()
		} else {
			got := c.Recv(0, 0).([]int)
			c.Barrier()
			c.Barrier()
			if got[0] != 1 {
				t.Errorf("real Recv shares sender memory: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRealBackendOversubscribed runs many more ranks than compute
// slots through a collective-heavy body: with Workers=1 every
// collective requires blocked ranks to yield their slot, so this
// deadlocks (and times out) if slot-yielding around blocking waits is
// ever broken.
func TestRealBackendOversubscribed(t *testing.T) {
	const p = 16
	cfg := realCfg(p)
	cfg.Workers = 1
	err := Run(cfg, func(c *Ctx) {
		for it := 0; it < 20; it++ {
			if got := c.SumInt(1); got != p {
				t.Errorf("SumInt = %d, want %d", got, p)
			}
			next := (c.Rank() + 1) % p
			prev := (c.Rank() + p - 1) % p
			c.SendInts(next, it, []int{c.Rank(), it})
			got := c.RecvInts(prev, it)
			if got[0] != prev || got[1] != it {
				t.Errorf("ring recv %v from %d", got, prev)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunStatsBothTrajectories checks that one run reports both the
// virtual makespan and a plausible wall time, on both backends.
func TestRunStatsBothTrajectories(t *testing.T) {
	for _, backend := range []Backend{Simulated, Real} {
		cfg := IPSC860(4)
		cfg.Backend = backend
		st, err := RunStats(context.Background(), cfg, func(c *Ctx) {
			c.Flops(1000)
			c.Barrier()
			time.Sleep(2 * time.Millisecond)
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxClock < 1000*cfg.FlopTime {
			t.Errorf("%v: MaxClock %v below flop charge", backend, st.MaxClock)
		}
		if st.Elapsed < 2*time.Millisecond {
			t.Errorf("%v: Elapsed %v below the slept wall time", backend, st.Elapsed)
		}
	}
}

func TestElapsedHelper(t *testing.T) {
	sec, err := Elapsed(Zero(2), func(c *Ctx) {
		time.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sec < 0.001 {
		t.Errorf("Elapsed = %v s, want >= 1ms", sec)
	}
}

func TestRunStatsInvalidProcs(t *testing.T) {
	if _, err := RunStats(context.Background(), Zero(0), func(*Ctx) {}); err == nil {
		t.Fatal("expected error for 0 procs")
	}
}

// TestCtxRandSplitting pins the per-rank stream contract: splits
// depend only on (Seed, rank), differ across ranks, repeat across
// runs, and are identical on both backends.
func TestCtxRandSplitting(t *testing.T) {
	draw := func(backend Backend, seed uint64) []uint64 {
		cfg := Zero(4)
		cfg.Backend = backend
		cfg.Seed = seed
		out := make([]uint64, 4)
		if err := Run(cfg, func(c *Ctx) {
			r := c.Rand()
			v := r.Uint64()
			if c.Rand() != r {
				t.Error("Rand() not stable across calls")
			}
			got := c.AllGatherInts([]int{int(v >> 1)})
			if c.Rank() == 0 {
				for i, x := range got {
					out[i] = uint64(x)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	simA := draw(Simulated, 42)
	simB := draw(Simulated, 42)
	realA := draw(Real, 42)
	other := draw(Simulated, 43)
	for r := 1; r < 4; r++ {
		if simA[r] == simA[0] {
			t.Errorf("ranks 0 and %d drew the same stream", r)
		}
	}
	for r := 0; r < 4; r++ {
		if simA[r] != simB[r] {
			t.Errorf("rank %d stream differs across runs", r)
		}
		if simA[r] != realA[r] {
			t.Errorf("rank %d stream differs across backends", r)
		}
		if simA[r] == other[r] {
			t.Errorf("rank %d stream ignores the seed", r)
		}
	}
}

func TestWorkerSlots(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, procs, want int
	}{
		{0, 64, min(gmp, 64)},
		{3, 8, 3},
		{8, 2, 2},
		{-1, 4, min(gmp, 4)},
	}
	for _, tc := range cases {
		cfg := Config{Procs: tc.procs, Workers: tc.workers}
		if got := workerSlots(cfg); got != tc.want {
			t.Errorf("workerSlots(workers=%d, procs=%d) = %d, want %d",
				tc.workers, tc.procs, got, tc.want)
		}
	}
}

// TestCancelBeforeRun pins pre-cancelled contexts: the body must never
// run and the error must unwrap to context.Canceled.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := RunReal(ctx, Zero(4), func(c *Ctx) {
		atomic.AddInt64(&ran, 1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d ranks ran under a pre-cancelled context", ran)
	}
}

// TestCancelStressRandomizedPoints is the race/cancellation gauntlet:
// 200 short Real-backend runs with randomized worker widths and cancel
// points — before the first collective, while other ranks sit inside
// one, and after the last — asserting that cancellation never
// deadlocks, that every rank unwinds with the same cancellation error,
// and that no goroutines leak once the loop settles.
func TestCancelStressRandomizedPoints(t *testing.T) {
	const (
		runs = 200
		p    = 4
	)
	rng := xrand.New(1993)
	base := runtime.NumGoroutine()
	for i := 0; i < runs; i++ {
		cfg := realCfg(p)
		cfg.Workers = 1 + rng.Intn(p) // 1..4 slots
		cfg.Seed = uint64(i)
		mode := rng.Intn(3)         // 0 = before first collective, 1 = during, 2 = no cancel
		canceller := rng.Intn(p)    // which rank calls cancel
		cancelAt := 1 + rng.Intn(4) // collective round for mode 1
		ctx, cancel := context.WithCancel(context.Background())
		var unwound int64
		err := RunReal(ctx, cfg, func(c *Ctx) {
			defer func() {
				if r := recover(); r != nil {
					atomic.AddInt64(&unwound, 1)
					panic(r)
				}
			}()
			c.Barrier() // warm-up: every rank is in the body past this point
			if mode == 0 && c.Rank() == canceller {
				// Cancel after the warm-up completes and before the
				// loop's first collective.
				cancel()
			}
			for it := 0; ; it++ {
				if mode == 2 && it == 5 {
					return
				}
				if mode == 1 && c.Rank() == canceller && it == cancelAt {
					// The other ranks are already blocked inside this
					// round's barrier: this cancel lands mid-collective.
					cancel()
				}
				c.Barrier()
				if s := c.SumInt(1); s != p {
					panic("bad SumInt under stress")
				}
				if it%3 == 0 {
					c.SendInts((c.Rank()+1)%p, it, []int{it})
					c.RecvInts((c.Rank()+p-1)%p, it)
				}
			}
		})
		if mode == 2 {
			if err != nil {
				t.Fatalf("run %d: uncancelled run failed: %v", i, err)
			}
			if unwound != 0 {
				t.Fatalf("run %d: %d ranks unwound without a cancel", i, unwound)
			}
		} else {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("run %d (mode %d): err = %v, want context.Canceled", i, mode, err)
			}
			if !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("run %d: error %q does not describe cancellation", i, err)
			}
			if unwound != p {
				t.Fatalf("run %d (mode %d): %d/%d ranks observed the cancellation unwind",
					i, mode, unwound, p)
			}
		}
		cancel() // mode 2: cancel after completion must be a no-op
	}
	// Goroutine settle: watcher and rank goroutines must all retire.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before the stress loop", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelUnblocksPointToPoint cancels a run whose ranks are blocked
// in a bare Recv that no sender will ever satisfy.
func TestCancelUnblocksPointToPoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- RunReal(ctx, Zero(3), func(c *Ctx) {
			c.Recv((c.Rank()+1)%3, 77) // nobody sends
		})
	}()
	time.Sleep(20 * time.Millisecond) // let every rank block
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock Recv")
	}
}

// TestRealBackendDeterministicClocks mirrors the simulated-backend
// clock-determinism pin on the Real backend: virtual charges are kept
// in real mode so both trajectories come out of one run, and they must
// not depend on host scheduling.
func TestRealBackendDeterministicClocks(t *testing.T) {
	run := func() float64 {
		cfg := IPSC860(8)
		cfg.Backend = Real
		v, err := MaxClock(cfg, func(c *Ctx) {
			out := make([][]float64, c.Procs())
			for p := range out {
				out[p] = make([]float64, (c.Rank()+1)*(p+1))
			}
			c.AlltoAllFloats(out)
			c.SumFloat(float64(c.Rank()))
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("real-backend virtual time not deterministic: %v vs %v", a, b)
	}
}
