package machine

import "sync"

// rendezvous implements an all-ranks exchange: every rank deposits one
// value, the last arriver snapshots the deposits and the maximum clock,
// and every rank leaves with the full snapshot and a synchronized
// clock. All collectives are built on it, which makes them
// deterministic regardless of goroutine scheduling.
type rendezvous struct {
	m     *Machine
	mu    sync.Mutex
	cond  *sync.Cond
	procs int

	gen    int64
	count  int
	vals   []any
	clocks []float64

	snapVals []any
	snapTime float64
}

func newRendezvous(m *Machine, procs int) *rendezvous {
	r := &rendezvous{
		m:      m,
		procs:  procs,
		vals:   make([]any, procs),
		clocks: make([]float64, procs),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *rendezvous) wake() { r.cond.Broadcast() }

// exchange deposits x for this rank and returns the slice of all ranks'
// deposits for the same generation. On return the rank's clock has been
// advanced to the maximum clock among participants (a synchronizing
// collective). The returned slice is shared between ranks and must be
// treated as read-only. On the Real backend the rank yields its
// compute slot for the duration — a rank waiting out a collective must
// not starve runnable ranks of cores.
func (c *Ctx) exchange(x any) []any {
	c.checkAborted()
	r := c.m.rdv
	var (
		snap []any
		t    float64
	)
	c.yield(func() {
		r.mu.Lock()
		gen := r.gen
		r.vals[c.rank] = x
		r.clocks[c.rank] = c.clock
		r.count++
		if r.count == r.procs {
			sv := make([]any, r.procs)
			copy(sv, r.vals)
			maxT := r.clocks[0]
			for _, ct := range r.clocks[1:] {
				if ct > maxT {
					maxT = ct
				}
			}
			r.snapVals = sv
			r.snapTime = maxT
			r.count = 0
			r.gen++
			r.cond.Broadcast()
		} else {
			for r.gen == gen {
				if ab, _ := c.m.abortedErr(); ab {
					r.mu.Unlock()
					panic(abortSignal{})
				}
				r.cond.Wait()
			}
		}
		snap = r.snapVals
		t = r.snapTime
		r.mu.Unlock()
	})
	if t > c.clock {
		c.clock = t
	}
	return snap
}

// collectiveCost charges the virtual clock for one synchronizing
// collective in which this rank contributes bytes of payload. The model
// is a log2(P)-depth combining tree: each level pays one message
// overhead pair plus hop latency, and the payload bytes are charged
// once.
func (c *Ctx) collectiveCost(bytes int) {
	cfg := c.m.cfg
	lv := float64(logceil(c.procs))
	c.clock += lv * (cfg.SendOverhead + cfg.RecvOverhead + cfg.HopLatency)
	c.clock += float64(bytes) * cfg.ByteTime
}

// Barrier synchronizes all ranks and their virtual clocks.
func (c *Ctx) Barrier() {
	c.exchange(nil)
	c.collectiveCost(0)
}

// AllReduceFloat combines one float64 per rank with op (applied in rank
// order, so op should be associative and commutative) and returns the
// result on every rank.
func (c *Ctx) AllReduceFloat(x float64, op func(a, b float64) float64) float64 {
	vals := c.exchange(x)
	acc := vals[0].(float64)
	for _, v := range vals[1:] {
		acc = op(acc, v.(float64))
	}
	c.collectiveCost(8)
	return acc
}

// AllReduceInt combines one int per rank with op and returns the result
// on every rank.
func (c *Ctx) AllReduceInt(x int, op func(a, b int) int) int {
	vals := c.exchange(x)
	acc := vals[0].(int)
	for _, v := range vals[1:] {
		acc = op(acc, v.(int))
	}
	c.collectiveCost(8)
	return acc
}

// SumInt returns the sum over ranks of x.
func (c *Ctx) SumInt(x int) int {
	return c.AllReduceInt(x, func(a, b int) int { return a + b })
}

// SumFloat returns the sum over ranks of x.
func (c *Ctx) SumFloat(x float64) float64 {
	return c.AllReduceFloat(x, func(a, b float64) float64 { return a + b })
}

// MaxInt returns the maximum over ranks of x.
func (c *Ctx) MaxInt(x int) int {
	return c.AllReduceInt(x, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// MaxFloat returns the maximum over ranks of x.
func (c *Ctx) MaxFloat(x float64) float64 {
	return c.AllReduceFloat(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// MinFloat returns the minimum over ranks of x.
func (c *Ctx) MinFloat(x float64) float64 {
	return c.AllReduceFloat(x, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

// AllGatherInt gathers one int per rank; result[r] is rank r's value.
func (c *Ctx) AllGatherInt(x int) []int {
	vals := c.exchange(x)
	out := make([]int, c.procs)
	for i, v := range vals {
		out[i] = v.(int)
	}
	c.collectiveCost(8 * c.procs)
	return out
}

// AllGatherFloat gathers one float64 per rank.
func (c *Ctx) AllGatherFloat(x float64) []float64 {
	vals := c.exchange(x)
	out := make([]float64, c.procs)
	for i, v := range vals {
		out[i] = v.(float64)
	}
	c.collectiveCost(8 * c.procs)
	return out
}

// AllGatherInts concatenates each rank's slice in rank order and
// returns the concatenation on every rank (an allgatherv).
func (c *Ctx) AllGatherInts(xs []int) []int {
	cp := make([]int, len(xs))
	copy(cp, xs)
	vals := c.exchange(cp)
	total := 0
	for _, v := range vals {
		total += len(v.([]int))
	}
	out := make([]int, 0, total)
	for _, v := range vals {
		out = append(out, v.([]int)...)
	}
	c.collectiveCost(8 * total)
	return out
}

// AllGatherFloats concatenates each rank's slice in rank order.
func (c *Ctx) AllGatherFloats(xs []float64) []float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	vals := c.exchange(cp)
	total := 0
	for _, v := range vals {
		total += len(v.([]float64))
	}
	out := make([]float64, 0, total)
	for _, v := range vals {
		out = append(out, v.([]float64)...)
	}
	c.collectiveCost(8 * total)
	return out
}

// BroadcastInts sends root's slice to every rank.
func (c *Ctx) BroadcastInts(root int, xs []int) []int {
	var dep any
	if c.rank == root {
		cp := make([]int, len(xs))
		copy(cp, xs)
		dep = cp
	}
	vals := c.exchange(dep)
	out := vals[root].([]int)
	if c.m.real {
		out = realClone(out).([]int)
	}
	c.collectiveCost(8 * len(out))
	return out
}

// BroadcastFloats sends root's slice to every rank.
func (c *Ctx) BroadcastFloats(root int, xs []float64) []float64 {
	var dep any
	if c.rank == root {
		cp := make([]float64, len(xs))
		copy(cp, xs)
		dep = cp
	}
	vals := c.exchange(dep)
	out := vals[root].([]float64)
	if c.m.real {
		out = realClone(out).([]float64)
	}
	c.collectiveCost(8 * len(out))
	return out
}

// alltoallCost charges the cost of an irregular all-to-all in which
// this rank sends sendBytes across nSend non-empty messages and
// receives recvBytes across nRecv messages. The latency term uses the
// topology diameter as a conservative per-message distance.
func (c *Ctx) alltoallCost(nSend, sendBytes, nRecv, recvBytes int) {
	cfg := c.m.cfg
	diam := float64(logceil(c.procs))
	if cfg.Topology == FullyConnected {
		diam = 1
	}
	c.clock += float64(nSend)*cfg.SendOverhead + float64(nRecv)*cfg.RecvOverhead
	c.clock += float64(nSend+nRecv) / 2 * diam * cfg.HopLatency
	c.clock += float64(sendBytes+recvBytes) * cfg.ByteTime
}

// AlltoAllInts performs an irregular all-to-all: out[p] is the slice to
// deliver to rank p (nil or empty means no message). The result's
// element [p] is the slice rank p addressed to this rank. Payloads are
// copied, so callers may reuse out.
func (c *Ctx) AlltoAllInts(out [][]int) [][]int {
	if len(out) != c.procs {
		panic("machine: AlltoAllInts requires one slice per rank")
	}
	dep := make([][]int, c.procs)
	nSend, sendBytes := 0, 0
	for p, xs := range out {
		if len(xs) == 0 {
			continue
		}
		cp := make([]int, len(xs))
		copy(cp, xs)
		dep[p] = cp
		if p != c.rank {
			nSend++
			sendBytes += 8 * len(xs)
		}
	}
	vals := c.exchange(dep)
	in := make([][]int, c.procs)
	nRecv, recvBytes := 0, 0
	for p := 0; p < c.procs; p++ {
		mat := vals[p].([][]int)
		row := mat[c.rank]
		if c.m.real && len(row) > 0 {
			row = realClone(row).([]int)
		}
		in[p] = row
		if p != c.rank && len(in[p]) > 0 {
			nRecv++
			recvBytes += 8 * len(in[p])
		}
	}
	c.alltoallCost(nSend, sendBytes, nRecv, recvBytes)
	return in
}

// AlltoAllFloats is AlltoAllInts for float64 payloads.
func (c *Ctx) AlltoAllFloats(out [][]float64) [][]float64 {
	if len(out) != c.procs {
		panic("machine: AlltoAllFloats requires one slice per rank")
	}
	dep := make([][]float64, c.procs)
	nSend, sendBytes := 0, 0
	for p, xs := range out {
		if len(xs) == 0 {
			continue
		}
		cp := make([]float64, len(xs))
		copy(cp, xs)
		dep[p] = cp
		if p != c.rank {
			nSend++
			sendBytes += 8 * len(xs)
		}
	}
	vals := c.exchange(dep)
	in := make([][]float64, c.procs)
	nRecv, recvBytes := 0, 0
	for p := 0; p < c.procs; p++ {
		mat := vals[p].([][]float64)
		row := mat[c.rank]
		if c.m.real && len(row) > 0 {
			row = realClone(row).([]float64)
		}
		in[p] = row
		if p != c.rank && len(in[p]) > 0 {
			nRecv++
			recvBytes += 8 * len(in[p])
		}
	}
	c.alltoallCost(nSend, sendBytes, nRecv, recvBytes)
	return in
}
