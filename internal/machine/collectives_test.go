package machine

import (
	"reflect"
	"testing"
)

// TestAlltoAllIntsTable drives AlltoAllInts through the edge cases the
// distributed coarsening path leans on: empty rows, self-sends only,
// single-rank machines, and fully dense traffic.
func TestAlltoAllIntsTable(t *testing.T) {
	cases := []struct {
		name string
		p    int
		// out(rank) builds the send matrix; want(rank) the expected
		// receive matrix (nil rows mean empty).
		out  func(rank, p int) [][]int
		want func(rank, p int) [][]int
	}{
		{
			name: "single rank self-send",
			p:    1,
			out: func(rank, p int) [][]int {
				return [][]int{{7, 8, 9}}
			},
			want: func(rank, p int) [][]int {
				return [][]int{{7, 8, 9}}
			},
		},
		{
			name: "single rank empty",
			p:    1,
			out: func(rank, p int) [][]int {
				return make([][]int, 1)
			},
			want: func(rank, p int) [][]int {
				return make([][]int, 1)
			},
		},
		{
			name: "all rows empty",
			p:    4,
			out: func(rank, p int) [][]int {
				return make([][]int, p)
			},
			want: func(rank, p int) [][]int {
				return make([][]int, p)
			},
		},
		{
			name: "self-sends only",
			p:    4,
			out: func(rank, p int) [][]int {
				o := make([][]int, p)
				o[rank] = []int{rank * 100}
				return o
			},
			want: func(rank, p int) [][]int {
				w := make([][]int, p)
				w[rank] = []int{rank * 100}
				return w
			},
		},
		{
			name: "one sender to all",
			p:    3,
			out: func(rank, p int) [][]int {
				o := make([][]int, p)
				if rank == 1 {
					for d := 0; d < p; d++ {
						o[d] = []int{10 + d}
					}
				}
				return o
			},
			want: func(rank, p int) [][]int {
				w := make([][]int, p)
				w[1] = []int{10 + rank}
				return w
			},
		},
		{
			name: "dense varying lengths",
			p:    4,
			out: func(rank, p int) [][]int {
				o := make([][]int, p)
				for d := 0; d < p; d++ {
					for i := 0; i <= rank; i++ {
						o[d] = append(o[d], rank*1000+d*10+i)
					}
				}
				return o
			},
			want: func(rank, p int) [][]int {
				w := make([][]int, p)
				for s := 0; s < p; s++ {
					for i := 0; i <= s; i++ {
						w[s] = append(w[s], s*1000+rank*10+i)
					}
				}
				return w
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(Zero(tc.p), func(c *Ctx) {
				in := c.AlltoAllInts(tc.out(c.Rank(), tc.p))
				want := tc.want(c.Rank(), tc.p)
				for r := 0; r < tc.p; r++ {
					if len(in[r]) == 0 && len(want[r]) == 0 {
						continue
					}
					if !reflect.DeepEqual(in[r], want[r]) {
						t.Errorf("rank %d from %d: got %v, want %v", c.Rank(), r, in[r], want[r])
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAlltoAllFloatsTable mirrors the int edge cases for the float
// payload path.
func TestAlltoAllFloatsTable(t *testing.T) {
	cases := []struct {
		name string
		p    int
		out  func(rank, p int) [][]float64
		want func(rank, p int) [][]float64
	}{
		{
			name: "single rank",
			p:    1,
			out: func(rank, p int) [][]float64 {
				return [][]float64{{1.5}}
			},
			want: func(rank, p int) [][]float64 {
				return [][]float64{{1.5}}
			},
		},
		{
			name: "empty rows and self-send",
			p:    3,
			out: func(rank, p int) [][]float64 {
				o := make([][]float64, p)
				o[rank] = []float64{float64(rank) + 0.25}
				return o
			},
			want: func(rank, p int) [][]float64 {
				w := make([][]float64, p)
				w[rank] = []float64{float64(rank) + 0.25}
				return w
			},
		},
		{
			name: "ring shift",
			p:    4,
			out: func(rank, p int) [][]float64 {
				o := make([][]float64, p)
				o[(rank+1)%p] = []float64{float64(rank)}
				return o
			},
			want: func(rank, p int) [][]float64 {
				w := make([][]float64, p)
				w[(rank+p-1)%p] = []float64{float64((rank + p - 1) % p)}
				return w
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(Zero(tc.p), func(c *Ctx) {
				in := c.AlltoAllFloats(tc.out(c.Rank(), tc.p))
				want := tc.want(c.Rank(), tc.p)
				for r := 0; r < tc.p; r++ {
					if len(in[r]) == 0 && len(want[r]) == 0 {
						continue
					}
					if !reflect.DeepEqual(in[r], want[r]) {
						t.Errorf("rank %d from %d: got %v, want %v", c.Rank(), r, in[r], want[r])
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAlltoAllPayloadReuse pins the copy contract: callers may mutate
// their send buffers the moment AlltoAllInts returns, without
// corrupting what other ranks received.
func TestAlltoAllPayloadReuse(t *testing.T) {
	const p = 4
	err := Run(Zero(p), func(c *Ctx) {
		buf := make([]int, 3)
		out := make([][]int, p)
		for d := 0; d < p; d++ {
			out[d] = buf
		}
		for i := range buf {
			buf[i] = c.Rank()*10 + i
		}
		in := c.AlltoAllInts(out)
		for i := range buf {
			buf[i] = -1 // scribble over the shared send buffer
		}
		c.Barrier()
		for s := 0; s < p; s++ {
			for i, v := range in[s] {
				if v != s*10+i {
					t.Errorf("rank %d from %d slot %d: got %d, want %d", c.Rank(), s, i, v, s*10+i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectivesStress hammers the full collective surface from every
// rank concurrently for many generations. Its job is to give the race
// detector (CI's `go test -race` gate) something to chew on: the
// machine is goroutine-per-rank and every collective goes through the
// shared rendezvous, so ordering bugs there surface here.
func TestCollectivesStress(t *testing.T) {
	const p = 8
	const iters = 200
	err := Run(Zero(p), func(c *Ctx) {
		for it := 0; it < iters; it++ {
			want := p * (p - 1) / 2
			if s := c.SumInt(c.Rank()); s != want {
				panic("bad SumInt")
			}
			out := make([][]int, p)
			for d := 0; d < p; d++ {
				out[d] = []int{c.Rank(), it}
			}
			in := c.AlltoAllInts(out)
			for s := 0; s < p; s++ {
				if in[s][0] != s || in[s][1] != it {
					panic("bad AlltoAllInts payload")
				}
			}
			if g := c.AllGatherInt(c.Rank() * it); g[p-1] != (p-1)*it {
				panic("bad AllGatherInt")
			}
			bc := c.BroadcastInts(it%p, []int{it * 3})
			if bc[0] != it*3 {
				panic("bad BroadcastInts")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
