package machine

import (
	"reflect"
	"testing"
)

// a2aCase deterministically derives rank's AlltoAll send matrix from
// the fuzz bytes. Every rank starts its cursor at a rank-dependent
// offset and reads with wraparound, so any rank can locally rebuild
// any other rank's matrix to know what it should have received.
// Lengths cycle through 0..4, which exercises empty sends (including
// all-empty machines), self-sends, and the max-rank row.
func a2aCase(data []byte, rank, p int) [][]int {
	if len(data) == 0 {
		data = []byte{0}
	}
	pos := (rank * 31) % len(data)
	next := func() byte {
		b := data[pos]
		pos = (pos + 1) % len(data)
		return b
	}
	out := make([][]int, p)
	for d := 0; d < p; d++ {
		n := int(next()) % 5
		for i := 0; i < n; i++ {
			out[d] = append(out[d], int(int8(next()))*(rank+1)+d)
		}
	}
	return out
}

// FuzzAlltoAll drives AlltoAllInts/AlltoAllFloats with fuzzed payload
// shapes (payload sizes, empty sends, self-sends, max-rank edges) on
// both backends and checks the transpose property against a locally
// rebuilt expectation. The seed corpus encodes the shapes of the
// table-driven cases in collectives_test.go.
func FuzzAlltoAll(f *testing.F) {
	f.Add([]byte{}, byte(0))                       // single rank, empty
	f.Add([]byte{3, 7, 8, 9}, byte(0))             // single rank self-send
	f.Add([]byte{0, 0, 0, 0}, byte(3))             // all rows empty at P=4
	f.Add([]byte{1, 42}, byte(3))                  // sparse self-and-neighbor sends
	f.Add([]byte{4, 1, 2, 3, 4, 2, 5, 6}, byte(7)) // dense varying lengths at P=8
	f.Fuzz(func(t *testing.T, data []byte, pb byte) {
		p := 1 + int(pb)%8
		for _, backend := range []Backend{Simulated, Real} {
			cfg := Zero(p)
			cfg.Backend = backend
			err := Run(cfg, func(c *Ctx) {
				in := c.AlltoAllInts(a2aCase(data, c.Rank(), p))
				fo := make([][]float64, p)
				for d, xs := range a2aCase(data, c.Rank(), p) {
					for _, x := range xs {
						fo[d] = append(fo[d], float64(x)/2)
					}
				}
				fin := c.AlltoAllFloats(fo)
				for s := 0; s < p; s++ {
					want := a2aCase(data, s, p)[c.Rank()]
					if len(want) == 0 && len(in[s]) == 0 {
						continue
					}
					if !reflect.DeepEqual(in[s], want) {
						t.Errorf("%v: rank %d from %d: got %v, want %v",
							backend, c.Rank(), s, in[s], want)
					}
					for i, x := range want {
						if fin[s][i] != float64(x)/2 {
							t.Errorf("%v: rank %d floats from %d slot %d: got %v",
								backend, c.Rank(), s, i, fin[s][i])
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("%v: %v", backend, err)
			}
		}
	})
}
