// Package machine simulates a distributed-memory multicomputer inside a
// single Go process.
//
// Each simulated processor ("rank") runs the same SPMD body function in
// its own goroutine and owns a private virtual clock. Communication is
// explicit message passing: point-to-point Send/Recv plus deterministic
// collectives (Barrier, AllReduce, AllGather, AlltoAllv, Broadcast).
// The virtual clock is charged using a LogP-style cost model (per-message
// send/recv overhead, per-hop latency on the configured topology,
// per-byte transfer time) plus per-flop and per-word compute charges, so
// experiments report machine-like "seconds" that are fully deterministic
// and independent of host scheduling.
//
// The default cost model is calibrated to the Intel iPSC/860 hypercube
// used in the paper this repository reproduces (Ponnusamy, Saltz,
// Choudhary; Supercomputing '93).
//
// Two execution backends share this machinery (Config.Backend). The
// default Simulated backend is the classic simulator above. The Real
// backend (Run with Config.Backend = Real, or RunReal) executes the
// same SPMD body as a worker pool pinned to min(GOMAXPROCS, Procs)
// compute slots on the host cores: payloads are physically copied into
// receiver memory, per-rank wall time is measured and max-reduced
// (Stats.Elapsed, Elapsed), runs are context-cancellable, and per-rank
// random streams (Ctx.Rand) are split from (Config.Seed, rank) so
// results are bit-identical to the simulated backend and across
// repeated runs. Both backends drive communication through the same
// deterministic rendezvous, so a body computes identical results under
// either; only the authoritative timing differs.
package machine

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"chaos/internal/xrand"
)

// Topology selects how the per-hop latency term is computed for a
// point-to-point message.
type Topology int

const (
	// FullyConnected charges exactly one hop for every message.
	FullyConnected Topology = iota
	// Hypercube charges popcount(src XOR dst) hops, the routing
	// distance on a binary hypercube (the iPSC/860 interconnect).
	Hypercube
	// Ring charges the minimal ring distance between the two ranks.
	Ring
)

func (t Topology) String() string {
	switch t {
	case FullyConnected:
		return "fully-connected"
	case Hypercube:
		return "hypercube"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Config describes the simulated machine: its size, interconnect
// topology, and cost model. All times are in seconds.
type Config struct {
	// Procs is the number of simulated processors. Must be >= 1.
	Procs int
	// Topology determines per-message hop counts.
	Topology Topology

	// SendOverhead is the sender CPU time consumed per message.
	SendOverhead float64
	// RecvOverhead is the receiver CPU time consumed per message.
	RecvOverhead float64
	// HopLatency is the network latency per hop.
	HopLatency float64
	// ByteTime is the transfer time per byte (inverse bandwidth).
	ByteTime float64

	// FlopTime is the time per floating-point operation charged by
	// Ctx.Flops.
	FlopTime float64
	// WordTime is the time per word of runtime-preprocessing memory
	// traffic charged by Ctx.Words (hashing, index translation,
	// buffer copying and similar inspector work).
	WordTime float64

	// Backend selects the execution backend (see Backend). The zero
	// value is Simulated, the classic virtual-clock simulator.
	Backend Backend
	// Workers caps the number of concurrently computing ranks on the
	// Real backend (0 = min(GOMAXPROCS, Procs)). Ranks blocked in a
	// receive or a collective release their compute slot, so any
	// positive width is deadlock-free. Ignored by Simulated.
	Workers int
	// Seed is the base of the per-rank random streams returned by
	// Ctx.Rand. Each rank's stream is split from (Seed, rank) alone —
	// never from scheduling order — so draws are reproducible across
	// runs and identical on both backends.
	Seed uint64
}

// IPSC860 returns a cost model calibrated to the Intel iPSC/860
// hypercube: roughly 75 microseconds end-to-end message latency, about
// 2.8 MB/s realized point-to-point bandwidth, and an i860 sustaining a
// few Mflop/s on irregular, gather/scatter-heavy inner loops.
func IPSC860(procs int) Config {
	return Config{
		Procs:        procs,
		Topology:     Hypercube,
		SendOverhead: 40e-6,
		RecvOverhead: 30e-6,
		HopLatency:   5e-6,
		ByteTime:     1.0 / 2.8e6,
		FlopTime:     1.0 / 3.5e6,
		WordTime:     1.0 / 9e6,
	}
}

// Zero returns a config with the given processor count and a cost model
// in which all charges are zero. Useful for pure-correctness tests.
func Zero(procs int) Config {
	return Config{Procs: procs, Topology: FullyConnected}
}

// Hops returns the routing distance between two ranks under the
// configured topology.
func (c Config) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	switch c.Topology {
	case Hypercube:
		return bits.OnesCount(uint(src ^ dst))
	case Ring:
		d := src - dst
		if d < 0 {
			d = -d
		}
		if alt := c.Procs - d; alt < d {
			d = alt
		}
		return d
	default:
		return 1
	}
}

// logceil returns ceil(log2(p)) with logceil(1) == 0.
func logceil(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// Machine is one simulated multicomputer instance. It is created by Run
// and lives only for the duration of the SPMD body.
type Machine struct {
	cfg   Config
	boxes []*mailbox
	rdv   *rendezvous

	// real marks the Real backend: receiver-side payload copies, and
	// compute gated by the slots semaphore.
	real bool
	// slots is the compute-slot semaphore of the Real backend (nil on
	// Simulated): a rank holds a token while running rank code and
	// yields it while blocked (see Ctx.yield).
	slots chan struct{}
	// abortCh is closed on the first abort so slot acquirers and the
	// context watcher unblock without a condition variable.
	abortCh chan struct{}

	// elapsed and clocks collect each rank's wall time and final
	// virtual clock; each rank writes only its own index.
	elapsed []time.Duration
	clocks  []float64

	abortMu  sync.Mutex
	aborted  bool
	abortErr error
}

// abort records the first fatal error and wakes every blocked rank.
func (m *Machine) abort(err error) {
	m.abortMu.Lock()
	if !m.aborted {
		m.aborted = true
		m.abortErr = err
		close(m.abortCh)
	}
	m.abortMu.Unlock()
	for _, b := range m.boxes {
		b.wake()
	}
	m.rdv.wake()
}

func (m *Machine) abortedErr() (bool, error) {
	m.abortMu.Lock()
	defer m.abortMu.Unlock()
	return m.aborted, m.abortErr
}

// abortSignal is panicked by blocked ranks when another rank has failed;
// Run swallows it so only the original error is reported.
type abortSignal struct{}

// Ctx is the per-rank handle passed to the SPMD body. All methods must
// be called only from the goroutine that owns the rank.
type Ctx struct {
	rank  int
	procs int
	m     *Machine
	clock float64
	// holdsSlot tracks whether this rank currently occupies a Real-
	// backend compute slot; only the owning goroutine touches it.
	holdsSlot bool
	rng       *xrand.Stream
}

// Rank returns this processor's rank in [0, Procs).
func (c *Ctx) Rank() int { return c.rank }

// Procs returns the number of processors in the machine.
func (c *Ctx) Procs() int { return c.procs }

// Config returns the machine configuration.
func (c *Ctx) Config() Config { return c.m.cfg }

// Clock returns this rank's current virtual time in seconds.
func (c *Ctx) Clock() float64 { return c.clock }

// AdvanceClock adds dt seconds of local work to the virtual clock.
func (c *Ctx) AdvanceClock(dt float64) {
	if dt > 0 {
		c.clock += dt
	}
}

// Flops charges n floating-point operations to the virtual clock.
func (c *Ctx) Flops(n int) {
	if n > 0 {
		c.clock += float64(n) * c.m.cfg.FlopTime
	}
}

// Words charges n words of runtime-preprocessing memory traffic
// (hash-table probes, index translation, buffer copies) to the clock.
func (c *Ctx) Words(n int) {
	if n > 0 {
		c.clock += float64(n) * c.m.cfg.WordTime
	}
}

// checkAborted panics with abortSignal if another rank has failed,
// unwinding this rank so Run can return the original error.
func (c *Ctx) checkAborted() {
	if ab, _ := c.m.abortedErr(); ab {
		panic(abortSignal{})
	}
}

// Rand returns this rank's deterministic random stream, split from
// (Config.Seed, rank) through SplitMix64. Because the split depends
// only on the seed and the rank id — never on which worker slot or
// host core runs the rank, nor on scheduling order — draws are
// bit-identical across repeated runs and across backends.
func (c *Ctx) Rand() *xrand.Stream {
	if c.rng == nil {
		c.rng = xrand.New(xrand.Hash64(c.m.cfg.Seed ^ xrand.Hash64(uint64(c.rank)+1)))
	}
	return c.rng
}

// Run executes body on cfg.Procs processors under the backend selected
// by cfg.Backend and blocks until every rank returns. If any rank
// panics, Run unblocks the remaining ranks and returns an error
// describing the first panic.
func Run(cfg Config, body func(*Ctx)) error {
	_, err := RunStats(context.Background(), cfg, body)
	return err
}

// MaxClock runs body like Run and additionally returns the maximum
// final virtual clock across ranks (the simulated makespan).
func MaxClock(cfg Config, body func(*Ctx)) (float64, error) {
	st, err := RunStats(context.Background(), cfg, body)
	return st.MaxClock, err
}
