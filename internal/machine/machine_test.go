package machine

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunSpawnsAllRanks(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 17} {
		var n int64
		if err := Run(Zero(p), func(c *Ctx) {
			atomic.AddInt64(&n, 1)
			if c.Procs() != p {
				t.Errorf("Procs() = %d, want %d", c.Procs(), p)
			}
		}); err != nil {
			t.Fatalf("Run(%d): %v", p, err)
		}
		if n != int64(p) {
			t.Fatalf("ran %d ranks, want %d", n, p)
		}
	}
}

func TestRunInvalidProcs(t *testing.T) {
	if err := Run(Zero(0), func(*Ctx) {}); err == nil {
		t.Fatal("expected error for 0 procs")
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(Zero(4), func(c *Ctx) {
		next := (c.Rank() + 1) % c.Procs()
		prev := (c.Rank() + c.Procs() - 1) % c.Procs()
		c.SendInts(next, 7, []int{c.Rank(), 2 * c.Rank()})
		got := c.RecvInts(prev, 7)
		if len(got) != 2 || got[0] != prev || got[1] != 2*prev {
			t.Errorf("rank %d: got %v from %d", c.Rank(), got, prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendIsCopied(t *testing.T) {
	err := Run(Zero(2), func(c *Ctx) {
		if c.Rank() == 0 {
			xs := []int{1, 2, 3}
			c.SendInts(1, 0, xs)
			xs[0] = 99 // must not affect the receiver
			c.Barrier()
		} else {
			got := c.RecvInts(0, 0)
			c.Barrier()
			if got[0] != 1 {
				t.Errorf("send buffer mutation visible to receiver: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameSrcTag(t *testing.T) {
	err := Run(Zero(2), func(c *Ctx) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.SendInts(1, 3, []int{i})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := c.RecvInts(0, 3); got[0] != i {
					t.Errorf("message %d arrived as %d", i, got[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsAreIndependent(t *testing.T) {
	err := Run(Zero(2), func(c *Ctx) {
		if c.Rank() == 0 {
			c.SendInts(1, 1, []int{100})
			c.SendInts(1, 2, []int{200})
		} else {
			// Receive in the opposite order of the sends.
			if got := c.RecvInts(0, 2); got[0] != 200 {
				t.Errorf("tag 2 got %d", got[0])
			}
			if got := c.RecvInts(0, 1); got[0] != 100 {
				t.Errorf("tag 1 got %d", got[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	err := Run(Zero(4), func(c *Ctx) {
		if c.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block forever; abort must unwedge them.
		c.Recv(3, 99)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic message", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("err = %v, want rank attribution", err)
	}
}

func TestPanicUnblocksCollectives(t *testing.T) {
	err := Run(Zero(4), func(c *Ctx) {
		if c.Rank() == 0 {
			panic("collective abort")
		}
		c.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "collective abort") {
		t.Fatalf("err = %v", err)
	}
}

func TestAllReduce(t *testing.T) {
	err := Run(Zero(8), func(c *Ctx) {
		if got := c.SumInt(c.Rank()); got != 28 {
			t.Errorf("SumInt = %d, want 28", got)
		}
		if got := c.MaxInt(c.Rank() * 3); got != 21 {
			t.Errorf("MaxInt = %d, want 21", got)
		}
		if got := c.SumFloat(0.5); got != 4.0 {
			t.Errorf("SumFloat = %v, want 4", got)
		}
		if got := c.MinFloat(float64(c.Rank()) - 2); got != -2 {
			t.Errorf("MinFloat = %v, want -2", got)
		}
		if got := c.MaxFloat(float64(c.Rank())); got != 7 {
			t.Errorf("MaxFloat = %v, want 7", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	err := Run(Zero(5), func(c *Ctx) {
		got := c.AllGatherInt(c.Rank() * c.Rank())
		for r, v := range got {
			if v != r*r {
				t.Errorf("AllGatherInt[%d] = %d", r, v)
			}
		}
		// Variable-length gather: rank r contributes r copies of r.
		xs := make([]int, c.Rank())
		for i := range xs {
			xs[i] = c.Rank()
		}
		cat := c.AllGatherInts(xs)
		if len(cat) != 10 {
			t.Fatalf("AllGatherInts length %d, want 10", len(cat))
		}
		want := []int{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}
		for i := range cat {
			if cat[i] != want[i] {
				t.Errorf("AllGatherInts[%d] = %d, want %d", i, cat[i], want[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	err := Run(Zero(6), func(c *Ctx) {
		var src []int
		if c.Rank() == 3 {
			src = []int{9, 8, 7}
		}
		got := c.BroadcastInts(3, src)
		if len(got) != 3 || got[0] != 9 || got[2] != 7 {
			t.Errorf("rank %d BroadcastInts = %v", c.Rank(), got)
		}
		var fs []float64
		if c.Rank() == 0 {
			fs = []float64{1.5}
		}
		gf := c.BroadcastFloats(0, fs)
		if len(gf) != 1 || gf[0] != 1.5 {
			t.Errorf("BroadcastFloats = %v", gf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAll(t *testing.T) {
	err := Run(Zero(4), func(c *Ctx) {
		out := make([][]int, c.Procs())
		for p := range out {
			// Send p+1 values of rank*10+p to rank p.
			for i := 0; i <= p; i++ {
				out[p] = append(out[p], c.Rank()*10+p)
			}
		}
		in := c.AlltoAllInts(out)
		for p := range in {
			if len(in[p]) != c.Rank()+1 {
				t.Errorf("rank %d: from %d got %d values, want %d",
					c.Rank(), p, len(in[p]), c.Rank()+1)
			}
			for _, v := range in[p] {
				if v != p*10+c.Rank() {
					t.Errorf("rank %d: from %d got value %d", c.Rank(), p, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAllFloats(t *testing.T) {
	err := Run(Zero(3), func(c *Ctx) {
		out := make([][]float64, c.Procs())
		for p := range out {
			out[p] = []float64{float64(c.Rank()) + float64(p)/10}
		}
		in := c.AlltoAllFloats(out)
		for p := range in {
			want := float64(p) + float64(c.Rank())/10
			if math.Abs(in[p][0]-want) > 1e-12 {
				t.Errorf("rank %d from %d: %v want %v", c.Rank(), p, in[p][0], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockAdvancesOnComm(t *testing.T) {
	cfg := IPSC860(2)
	err := Run(cfg, func(c *Ctx) {
		if c.Clock() != 0 {
			t.Errorf("initial clock %v", c.Clock())
		}
		if c.Rank() == 0 {
			c.SendFloats(1, 0, make([]float64, 1000))
			if c.Clock() <= cfg.SendOverhead {
				t.Errorf("send did not charge bytes: %v", c.Clock())
			}
		} else {
			c.RecvFloats(0, 0)
			// Receiver clock must cover wire time for 8000 bytes.
			if c.Clock() < 8000*cfg.ByteTime {
				t.Errorf("recv clock %v too small", c.Clock())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	err := Run(IPSC860(4), func(c *Ctx) {
		c.AdvanceClock(float64(c.Rank())) // rank r at time r
		c.Barrier()
		if c.Clock() < 3 {
			t.Errorf("rank %d clock %v after barrier, want >= 3", c.Rank(), c.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlopsAndWordsCharges(t *testing.T) {
	cfg := IPSC860(1)
	err := Run(cfg, func(c *Ctx) {
		c.Flops(1000)
		want := 1000 * cfg.FlopTime
		if math.Abs(c.Clock()-want) > 1e-15 {
			t.Errorf("Flops charge %v, want %v", c.Clock(), want)
		}
		c.Words(500)
		want += 500 * cfg.WordTime
		if math.Abs(c.Clock()-want) > 1e-15 {
			t.Errorf("Words charge %v, want %v", c.Clock(), want)
		}
		c.Flops(-5) // no-op
		c.Words(0)  // no-op
		if math.Abs(c.Clock()-want) > 1e-15 {
			t.Errorf("negative/zero charges changed clock")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHops(t *testing.T) {
	hc := Config{Procs: 8, Topology: Hypercube}
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 7, 3}, {5, 6, 2}, {3, 4, 3},
	}
	for _, tc := range cases {
		if got := hc.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("hypercube Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	ring := Config{Procs: 8, Topology: Ring}
	ringCases := []struct{ a, b, want int }{
		{0, 1, 1}, {0, 7, 1}, {0, 4, 4}, {1, 6, 3},
	}
	for _, tc := range ringCases {
		if got := ring.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	fc := Config{Procs: 8, Topology: FullyConnected}
	if got := fc.Hops(0, 5); got != 1 {
		t.Errorf("fully-connected Hops = %d", got)
	}
}

func TestLogceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6}
	for p, want := range cases {
		if got := logceil(p); got != want {
			t.Errorf("logceil(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestTopologyString(t *testing.T) {
	if FullyConnected.String() != "fully-connected" ||
		Hypercube.String() != "hypercube" ||
		Ring.String() != "ring" {
		t.Error("Topology.String mismatch")
	}
	if Topology(42).String() == "" {
		t.Error("unknown topology should still format")
	}
}

func TestMaxClock(t *testing.T) {
	got, err := MaxClock(Zero(4), func(c *Ctx) {
		c.AdvanceClock(float64(c.Rank()) * 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("MaxClock = %v, want 6", got)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() float64 {
		t1, err := MaxClock(IPSC860(8), func(c *Ctx) {
			out := make([][]float64, c.Procs())
			for p := range out {
				out[p] = make([]float64, (c.Rank()+1)*(p+1))
			}
			c.AlltoAllFloats(out)
			c.SumFloat(float64(c.Rank()))
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return t1
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual time not deterministic: %v vs %v", a, b)
	}
}
