package machine

import (
	"fmt"
	"sync"
)

// message is one in-flight point-to-point message.
type message struct {
	payload any
	arrive  float64 // virtual time at which the message is available
}

type mkey struct {
	src, tag int
}

// mailbox is the per-rank receive queue. Senders append under the lock;
// the owning rank blocks on the condition variable until a matching
// (src, tag) message exists or the machine aborts.
type mailbox struct {
	m    *Machine
	mu   sync.Mutex
	cond *sync.Cond
	q    map[mkey][]message
}

func newMailbox(m *Machine) *mailbox {
	b := &mailbox{m: m, q: make(map[mkey][]message)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(src, tag int, msg message) {
	b.mu.Lock()
	k := mkey{src, tag}
	b.q[k] = append(b.q[k], msg)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// pop removes and returns the head message for k. Callers hold b.mu
// and have checked the queue is non-empty.
func (b *mailbox) pop(k mkey) message {
	lst := b.q[k]
	msg := lst[0]
	if len(lst) == 1 {
		delete(b.q, k)
	} else {
		b.q[k] = lst[1:]
	}
	return msg
}

// tryTake returns a matching message without blocking.
func (b *mailbox) tryTake(src, tag int) (message, bool) {
	k := mkey{src, tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.q[k]) > 0 {
		return b.pop(k), true
	}
	return message{}, false
}

func (b *mailbox) take(src, tag int) (message, bool) {
	k := mkey{src, tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.q[k]) > 0 {
			return b.pop(k), true
		}
		if ab, _ := b.m.abortedErr(); ab {
			return message{}, false
		}
		b.cond.Wait()
	}
}

func (b *mailbox) wake() {
	b.cond.Broadcast()
}

// Send transmits payload to rank dst with the given tag. bytes is the
// modeled wire size used for the cost model; it does not constrain the
// payload. The payload is delivered by reference: the sender must not
// mutate it after sending (helpers such as SendInts copy for safety).
func (c *Ctx) Send(dst, tag int, payload any, bytes int) {
	c.checkAborted()
	if dst < 0 || dst >= c.procs {
		panic(fmt.Sprintf("machine: Send to invalid rank %d (P=%d)", dst, c.procs))
	}
	cfg := c.m.cfg
	c.clock += cfg.SendOverhead + float64(bytes)*cfg.ByteTime
	arrive := c.clock + float64(cfg.Hops(c.rank, dst))*cfg.HopLatency
	c.m.boxes[dst].put(c.rank, tag, message{payload: payload, arrive: arrive})
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload, advancing the virtual clock to the later of the
// local clock and the message arrival time plus the receive overhead.
// On the Real backend the rank yields its compute slot while blocked,
// and slice payloads ([]int, []float64) are copied into fresh
// receiver-owned memory on delivery.
func (c *Ctx) Recv(src, tag int) any {
	c.checkAborted()
	if src < 0 || src >= c.procs {
		panic(fmt.Sprintf("machine: Recv from invalid rank %d (P=%d)", src, c.procs))
	}
	box := c.m.boxes[c.rank]
	msg, ok := box.tryTake(src, tag)
	if !ok {
		c.yield(func() {
			msg, ok = box.take(src, tag)
		})
	}
	if !ok {
		panic(abortSignal{})
	}
	if msg.arrive > c.clock {
		c.clock = msg.arrive
	}
	c.clock += c.m.cfg.RecvOverhead
	if c.m.real {
		return realClone(msg.payload)
	}
	return msg.payload
}

// realClone copies slice payloads into receiver-owned memory — the
// Real backend's physical delivery. Payload types the machine does not
// know stay shared by reference, as documented on Send.
func realClone(payload any) any {
	switch xs := payload.(type) {
	case []int:
		cp := make([]int, len(xs))
		copy(cp, xs)
		return cp
	case []float64:
		cp := make([]float64, len(xs))
		copy(cp, xs)
		return cp
	}
	return payload
}

// SendInts sends a copy of xs to dst.
func (c *Ctx) SendInts(dst, tag int, xs []int) {
	cp := make([]int, len(xs))
	copy(cp, xs)
	c.Send(dst, tag, cp, 8*len(xs))
}

// RecvInts receives an []int sent with SendInts.
func (c *Ctx) RecvInts(src, tag int) []int {
	return c.Recv(src, tag).([]int)
}

// SendFloats sends a copy of xs to dst.
func (c *Ctx) SendFloats(dst, tag int, xs []float64) {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	c.Send(dst, tag, cp, 8*len(xs))
}

// RecvFloats receives a []float64 sent with SendFloats.
func (c *Ctx) RecvFloats(src, tag int) []float64 {
	return c.Recv(src, tag).([]float64)
}
