// Package md generates the molecular-dynamics workload standing in for
// the paper's 648-atom water electrostatic force calculation (CHARMM;
// the "648 Atoms" columns of the Section 6 evaluation, Tables 1, 3, 4):
// a box of 3-site water molecules on a jittered lattice, a cutoff-radius
// nonbonded pair list, and an electrostatic force kernel whose loop
// shape is exactly the paper's L2 (a pair list is an edge list; force
// accumulation is a left-hand-side ADD reduction on both endpoints).
package md

import (
	"fmt"
	"math"

	"chaos/internal/xrand"
)

// System is one water box.
type System struct {
	// NAtom is the number of atom sites (3 per molecule).
	NAtom int
	// X, Y, Z are site coordinates (Å).
	X, Y, Z []float64
	// Q holds partial charges (O: -0.8, H: +0.4).
	Q []float64
	// P1, P2 form the nonbonded pair list within the cutoff.
	P1, P2 []int
	// Cutoff is the pair-list radius (Å).
	Cutoff float64
}

// NPair returns the number of nonbonded pairs.
func (s *System) NPair() int { return len(s.P1) }

// Water generates a box of nMol water molecules (3*nMol atom sites) on
// a jittered cubic lattice with ~3.1 Å molecular spacing, builds the
// cutoff pair list, and randomly renumbers the atom sites so the
// numbering carries no locality (matching the irregular-access premise
// of the paper's experiments). Deterministic in (nMol, seed).
func Water(nMol int, cutoff float64, seed uint64) *System {
	if nMol < 1 {
		panic(fmt.Sprintf("md: nMol = %d", nMol))
	}
	side := int(math.Ceil(math.Cbrt(float64(nMol))))
	const spacing = 3.1
	n := 3 * nMol
	s := &System{NAtom: n, Cutoff: cutoff}
	s.X = make([]float64, n)
	s.Y = make([]float64, n)
	s.Z = make([]float64, n)
	s.Q = make([]float64, n)

	rng := xrand.New(seed)
	perm := rng.Perm(n)

	// Site offsets within a molecule (rough water geometry, Å).
	off := [3][3]float64{
		{0, 0, 0},        // O
		{0.76, 0.59, 0},  // H1
		{-0.76, 0.59, 0}, // H2
	}
	charge := [3]float64{-0.8, 0.4, 0.4}

	mol := 0
	for cz := 0; cz < side && mol < nMol; cz++ {
		for cy := 0; cy < side && mol < nMol; cy++ {
			for cx := 0; cx < side && mol < nMol; cx++ {
				j := xrand.Hash64(uint64(mol) ^ seed)
				jx := 0.3 * (float64(j%1024)/1024 - 0.5)
				jy := 0.3 * (float64((j>>10)%1024)/1024 - 0.5)
				jz := 0.3 * (float64((j>>20)%1024)/1024 - 0.5)
				for k := 0; k < 3; k++ {
					site := perm[3*mol+k]
					s.X[site] = float64(cx)*spacing + off[k][0] + jx
					s.Y[site] = float64(cy)*spacing + off[k][1] + jy
					s.Z[site] = float64(cz)*spacing + off[k][2] + jz
					s.Q[site] = charge[k]
				}
				mol++
			}
		}
	}

	s.buildPairs(perm, nMol)
	return s
}

// buildPairs constructs the cutoff pair list with a uniform cell grid,
// excluding intramolecular pairs. Pairs are emitted in deterministic
// order.
func (s *System) buildPairs(perm []int, nMol int) {
	molOf := make([]int, s.NAtom)
	for m := 0; m < nMol; m++ {
		for k := 0; k < 3; k++ {
			molOf[perm[3*m+k]] = m
		}
	}
	cut2 := s.Cutoff * s.Cutoff
	cell := s.Cutoff
	if cell <= 0 {
		panic("md: cutoff must be positive")
	}
	key := func(i int) [3]int {
		return [3]int{
			int(math.Floor(s.X[i] / cell)),
			int(math.Floor(s.Y[i] / cell)),
			int(math.Floor(s.Z[i] / cell)),
		}
	}
	cells := map[[3]int][]int{}
	for i := 0; i < s.NAtom; i++ {
		k := key(i)
		cells[k] = append(cells[k], i)
	}
	// Iterate atoms in id order for determinism; probe the 27
	// neighboring cells and keep pairs (i < j).
	for i := 0; i < s.NAtom; i++ {
		ki := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, j := range cells[[3]int{ki[0] + dx, ki[1] + dy, ki[2] + dz}] {
						if j <= i || molOf[i] == molOf[j] {
							continue
						}
						ddx := s.X[i] - s.X[j]
						ddy := s.Y[i] - s.Y[j]
						ddz := s.Z[i] - s.Z[j]
						if ddx*ddx+ddy*ddy+ddz*ddz <= cut2 {
							s.P1 = append(s.P1, i)
							s.P2 = append(s.P2, j)
						}
					}
				}
			}
		}
	}
}

// InvR2 returns 1/r² for pair p (precomputed pair geometry; the pair
// list and geometry are fixed for a force sweep, so the electrostatic
// loop reads only the distributed charge/state arrays, keeping the
// distributed-loop shape identical to the paper's L2).
func (s *System) InvR2(p int) float64 {
	i, j := s.P1[p], s.P2[p]
	dx := s.X[i] - s.X[j]
	dy := s.Y[i] - s.Y[j]
	dz := s.Z[i] - s.Z[j]
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	return 1 / r2
}

// ForceKernel returns the electrostatic force kernel for the system:
// per pair, the Coulomb force magnitude q_i q_j / r² is accumulated
// positively into the first endpoint and negatively into the second
// (Newton's third law), matching the REDUCE(ADD, ...) pattern of loop
// L2. in[0], in[1] are the gathered charges of the endpoints.
func (s *System) ForceKernel() func(iter int, in, out []float64) {
	return func(iter int, in, out []float64) {
		f := in[0] * in[1] * s.InvR2(iter)
		out[0] = f
		out[1] = -f
	}
}

// ForceFlops is the modeled cost of one ForceKernel call (including
// the pair-geometry factor).
const ForceFlops = 12
