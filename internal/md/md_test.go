package md

import (
	"math"
	"testing"
)

func TestWater648(t *testing.T) {
	s := Water(216, 4.5, 1)
	if s.NAtom != 648 {
		t.Fatalf("NAtom = %d, want 648", s.NAtom)
	}
	if s.NPair() == 0 {
		t.Fatal("empty pair list")
	}
	// Charges must sum to zero (neutral box) with 216 O and 432 H.
	sum := 0.0
	nO, nH := 0, 0
	for _, q := range s.Q {
		sum += q
		if q < 0 {
			nO++
		} else {
			nH++
		}
	}
	if math.Abs(sum) > 1e-9 || nO != 216 || nH != 432 {
		t.Errorf("charges: sum=%v nO=%d nH=%d", sum, nO, nH)
	}
}

func TestPairsWithinCutoff(t *testing.T) {
	s := Water(27, 4.0, 2)
	for p := 0; p < s.NPair(); p++ {
		i, j := s.P1[p], s.P2[p]
		if i >= j {
			t.Fatalf("pair %d not ordered: (%d,%d)", p, i, j)
		}
		dx := s.X[i] - s.X[j]
		dy := s.Y[i] - s.Y[j]
		dz := s.Z[i] - s.Z[j]
		if r := math.Sqrt(dx*dx + dy*dy + dz*dz); r > 4.0+1e-9 {
			t.Fatalf("pair %d at distance %v beyond cutoff", p, r)
		}
	}
}

func TestPairListComplete(t *testing.T) {
	// Brute-force reference on a small box.
	s := Water(8, 3.5, 3)
	have := map[[2]int]bool{}
	for p := 0; p < s.NPair(); p++ {
		have[[2]int{s.P1[p], s.P2[p]}] = true
	}
	// Reconstruct molecule membership via charge groups is not
	// possible; instead verify no intra-molecular pair exists by
	// distance histogram: intramolecular O-H is ~0.96 Å, H-H ~1.52 Å.
	cut2 := 3.5 * 3.5
	missed := 0
	for i := 0; i < s.NAtom; i++ {
		for j := i + 1; j < s.NAtom; j++ {
			dx := s.X[i] - s.X[j]
			dy := s.Y[i] - s.Y[j]
			dz := s.Z[i] - s.Z[j]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 <= cut2 && !have[[2]int{i, j}] {
				// Must be an intramolecular exclusion: bonded
				// geometry keeps those under 1.6 Å.
				if r2 > 1.6*1.6 {
					missed++
				}
			}
		}
	}
	if missed > 0 {
		t.Errorf("%d in-range intermolecular pairs missing from list", missed)
	}
}

func TestInvR2Positive(t *testing.T) {
	s := Water(27, 4.5, 4)
	for p := 0; p < s.NPair(); p++ {
		v := s.InvR2(p)
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("InvR2(%d) = %v", p, v)
		}
	}
}

func TestForceKernelAntisymmetric(t *testing.T) {
	s := Water(27, 4.5, 5)
	k := s.ForceKernel()
	in := []float64{-0.8, 0.4}
	out := make([]float64, 2)
	k(0, in, out)
	if out[0] != -out[1] {
		t.Errorf("force contributions not antisymmetric: %v", out)
	}
	if out[0] >= 0 {
		t.Errorf("opposite charges must attract (negative f): %v", out[0])
	}
}

func TestDeterminism(t *testing.T) {
	a := Water(64, 4.5, 7)
	b := Water(64, 4.5, 7)
	if a.NPair() != b.NPair() {
		t.Fatal("pair counts differ")
	}
	for p := range a.P1 {
		if a.P1[p] != b.P1[p] || a.P2[p] != b.P2[p] {
			t.Fatal("pair lists differ")
		}
	}
}

func TestWaterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Water(0, 4.5, 1)
}
