// Package mesh generates the synthetic 3-D unstructured meshes used in
// place of the paper's Euler-solver meshes (Mavriplis, 10K and 53K mesh
// points; the unstructured-mesh workload of the paper's Section 6
// evaluation, Tables 1-4). A jittered hexahedral lattice is split with tetrahedral-style
// diagonal connectivity, then the vertices are randomly renumbered.
// The renumbering reproduces the property the paper's experiments turn
// on: "the way in which the nodes of an irregular computational mesh
// are numbered frequently does not have a useful correspondence to the
// connectivity pattern of the mesh", so a BLOCK distribution of the
// renumbered arrays communicates heavily while geometric or spectral
// partitions localize the edges.
package mesh

import (
	"math"

	"chaos/internal/xrand"
)

// Mesh is a synthetic unstructured mesh: an edge list over randomly
// numbered vertices plus vertex coordinates.
type Mesh struct {
	// NNode is the number of mesh points.
	NNode int
	// E1, E2 are the edge endpoint lists: edge i links vertices
	// E1[i] and E2[i] (the paper's end_pt1 / end_pt2 arrays).
	E1, E2 []int
	// X, Y, Z are vertex coordinates indexed by vertex id.
	X, Y, Z []float64
}

// NEdge returns the number of edges.
func (m *Mesh) NEdge() int { return len(m.E1) }

// AvgDegree returns the average vertex degree.
func (m *Mesh) AvgDegree() float64 {
	if m.NNode == 0 {
		return 0
	}
	return 2 * float64(m.NEdge()) / float64(m.NNode)
}

// Generate builds a mesh with roughly nTarget vertices (the cube
// lattice is rounded to whole dimensions, so the exact count may differ
// slightly). The same (nTarget, seed) pair always produces the same
// mesh.
func Generate(nTarget int, seed uint64) *Mesh {
	side := SideFor(nTarget)
	return GenerateLattice(side, side, side, seed)
}

// GenerateLattice builds a gx × gy × gz lattice mesh with tetrahedral
// diagonals, jittered coordinates, and random vertex renumbering. The
// point set is bent onto a half-annular shell (the hallmark geometry of
// the aerodynamic meshes the paper used): coordinate-aligned planar
// cuts through the curved domain are workable but suboptimal, while
// connectivity-based (spectral) partitioning finds the intrinsic
// structure — which is exactly the RCB-vs-RSB trade-off the paper's
// Table 2 exhibits.
func GenerateLattice(gx, gy, gz int, seed uint64) *Mesh {
	n := gx * gy * gz
	rng := xrand.New(seed)
	perm := rng.Perm(n) // perm[lattice id] = renumbered vertex id

	m := &Mesh{NNode: n}
	m.X = make([]float64, n)
	m.Y = make([]float64, n)
	m.Z = make([]float64, n)
	id := func(x, y, z int) int { return perm[(z*gy+y)*gx+x] }

	r0 := float64(gx) / math.Pi // inner radius: unit arc spacing there
	for z := 0; z < gz; z++ {
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				v := id(x, y, z)
				j := xrand.Hash64(uint64(v) ^ seed)
				lx := float64(x) + 0.25*(float64(j%1024)/1024-0.5)
				ly := float64(y) + 0.25*(float64((j>>10)%1024)/1024-0.5)
				lz := float64(z) + 0.25*(float64((j>>20)%1024)/1024-0.5)
				theta := math.Pi * lx / float64(gx)
				r := r0 + ly
				m.X[v] = r * math.Cos(theta)
				m.Y[v] = r * math.Sin(theta)
				m.Z[v] = lz
			}
		}
	}
	addEdge := func(a, b int) {
		m.E1 = append(m.E1, a)
		m.E2 = append(m.E2, b)
	}
	for z := 0; z < gz; z++ {
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				v := id(x, y, z)
				if x+1 < gx {
					addEdge(v, id(x+1, y, z))
				}
				if y+1 < gy {
					addEdge(v, id(x, y+1, z))
				}
				if z+1 < gz {
					addEdge(v, id(x, y, z+1))
				}
				// Tetrahedral face diagonals.
				if x+1 < gx && y+1 < gy {
					addEdge(v, id(x+1, y+1, z))
				}
				if y+1 < gy && z+1 < gz {
					addEdge(v, id(x, y+1, z+1))
				}
				if x+1 < gx && z+1 < gz {
					addEdge(v, id(x+1, y, z+1))
				}
			}
		}
	}
	return m
}

// EulerFlux is the per-edge kernel of the unstructured Euler sweep
// template: a nonlinear two-point flux with distinct contributions to
// the two endpoint residuals (the f and g of the paper's loop L2).
func EulerFlux(_ int, in, out []float64) {
	x1, x2 := in[0], in[1]
	avg := 0.5 * (x1 + x2)
	diff := x2 - x1
	out[0] = avg*avg + 0.5*diff // f(x1, x2), reduced into y(end_pt1)
	out[1] = avg*avg - 0.5*diff // g(x1, x2), reduced into y(end_pt2)
}

// EulerFlops is the modeled floating-point cost of one EulerFlux call.
const EulerFlops = 8

// InitialState gives vertex v's initial solution value (smooth field
// over the jittered geometry so flux values are well conditioned).
func (m *Mesh) InitialState(v int) float64 {
	return 1 + 0.1*math.Sin(0.37*m.X[v])*math.Cos(0.29*m.Y[v]) + 0.05*math.Sin(0.41*m.Z[v])
}
