package mesh

import (
	"math"
	"testing"
)

func TestGenerateSizes(t *testing.T) {
	m := Generate(1000, 1)
	if m.NNode != 1000 {
		t.Errorf("NNode = %d, want 1000", m.NNode)
	}
	if m.NEdge() == 0 {
		t.Fatal("no edges")
	}
	// Tetrahedral-ish connectivity: average degree between 8 and 12
	// (boundary effects lower it below the interior value of 12).
	if d := m.AvgDegree(); d < 7 || d > 12 {
		t.Errorf("AvgDegree = %v", d)
	}
}

func TestEdgesValid(t *testing.T) {
	m := Generate(512, 2)
	for i := range m.E1 {
		if m.E1[i] < 0 || m.E1[i] >= m.NNode || m.E2[i] < 0 || m.E2[i] >= m.NNode {
			t.Fatalf("edge %d endpoints (%d,%d) out of range", i, m.E1[i], m.E2[i])
		}
		if m.E1[i] == m.E2[i] {
			t.Fatalf("self-loop at edge %d", i)
		}
	}
}

func TestEdgesAreGeometricallyLocal(t *testing.T) {
	// Connected vertices must be close in space even after the random
	// renumbering (that's the whole point of the fixture). On the
	// curved shell the outermost arc spacing stretches edges up to
	// about 1 + pi times the unit lattice step.
	m := Generate(729, 3)
	domain := 2 * (float64(9)/math.Pi + 9) // shell diameter for a 9^3 lattice
	for i := range m.E1 {
		a, b := m.E1[i], m.E2[i]
		dx := m.X[a] - m.X[b]
		dy := m.Y[a] - m.Y[b]
		dz := m.Z[a] - m.Z[b]
		d := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if d > 7.5 {
			t.Fatalf("edge %d spans distance %v", i, d)
		}
		if d > domain/3 {
			t.Fatalf("edge %d spans a third of the domain (%v of %v)", i, d, domain)
		}
	}
}

func TestRenumberingScattersIndices(t *testing.T) {
	// A BLOCK split of vertex ids must cut most edges: adjacent ids
	// should rarely be mesh neighbors.
	m := Generate(1728, 4)
	half := m.NNode / 2
	cut := 0
	for i := range m.E1 {
		if (m.E1[i] < half) != (m.E2[i] < half) {
			cut++
		}
	}
	frac := float64(cut) / float64(m.NEdge())
	if frac < 0.3 {
		t.Errorf("block split cuts only %.2f of edges; renumbering too tame", frac)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(343, 9)
	b := Generate(343, 9)
	if a.NEdge() != b.NEdge() {
		t.Fatal("edge counts differ")
	}
	for i := range a.E1 {
		if a.E1[i] != b.E1[i] || a.E2[i] != b.E2[i] {
			t.Fatal("edge lists differ")
		}
	}
	c := Generate(343, 10)
	same := true
	for i := range a.E1 {
		if a.E1[i] != c.E1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical meshes")
	}
}

func TestEulerFlux(t *testing.T) {
	in := []float64{1, 3}
	out := make([]float64, 2)
	EulerFlux(0, in, out)
	// avg = 2, diff = 2: f = 4+1 = 5, g = 4-1 = 3.
	if out[0] != 5 || out[1] != 3 {
		t.Errorf("EulerFlux = %v", out)
	}
}

func TestInitialStateBounded(t *testing.T) {
	m := Generate(216, 5)
	for v := 0; v < m.NNode; v++ {
		s := m.InitialState(v)
		if s < 0.8 || s > 1.2 {
			t.Fatalf("InitialState(%d) = %v", v, s)
		}
	}
}

func TestGenerateLatticeDims(t *testing.T) {
	m := GenerateLattice(3, 4, 5, 1)
	if m.NNode != 60 {
		t.Errorf("NNode = %d, want 60", m.NNode)
	}
}

func TestGeneratePanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(2, 1)
}
