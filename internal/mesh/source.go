package mesh

import (
	"fmt"
	"math"

	"chaos/internal/xrand"
)

// latticeOffsets are the 12 undirected neighbor offsets of the
// tetrahedral lattice: GenerateLattice's six forward edges (+x, +y,
// +z and the xy/yz/xz face diagonals) plus their reverses.
var latticeOffsets = [12][3]int{
	{1, 0, 0}, {-1, 0, 0},
	{0, 1, 0}, {0, -1, 0},
	{0, 0, 1}, {0, 0, -1},
	{1, 1, 0}, {-1, -1, 0},
	{0, 1, 1}, {0, -1, -1},
	{1, 0, 1}, {-1, 0, -1},
}

// LatticeSource generates the exact connectivity of
// GenerateLattice(gx, gy, gz, seed) one vertex at a time, without ever
// materializing the edge list: it is the stream.Source (satisfied
// structurally; this package does not import internal/stream) behind
// cmd/meshgen -stream. Resident state is the two O(n) renumbering
// permutations — vertex-sized, never edge-sized — so a billion-edge
// mesh streams from a few hundred MB while its materialized form would
// need many GB.
type LatticeSource struct {
	gx, gy, gz int
	perm       []int // lattice id -> renumbered vertex id
	inv        []int // renumbered vertex id -> lattice id
	nedges     int
}

// NewLatticeSource prepares a streaming view of the gx × gy × gz
// lattice mesh. The connectivity matches GenerateLattice with the same
// arguments edge for edge (pinned by test).
func NewLatticeSource(gx, gy, gz int, seed uint64) *LatticeSource {
	if gx < 1 || gy < 1 || gz < 1 {
		panic(fmt.Sprintf("mesh: lattice %dx%dx%d", gx, gy, gz))
	}
	n := gx * gy * gz
	perm := xrand.New(seed).Perm(n)
	inv := make([]int, n)
	for lat, v := range perm {
		inv[v] = lat
	}
	edges := (gx-1)*gy*gz + gx*(gy-1)*gz + gx*gy*(gz-1) + // axis edges
		(gx-1)*(gy-1)*gz + gx*(gy-1)*(gz-1) + (gx-1)*gy*(gz-1) // face diagonals
	return &LatticeSource{gx: gx, gy: gy, gz: gz, perm: perm, inv: inv, nedges: edges}
}

// NumVertices returns the mesh point count.
func (ls *LatticeSource) NumVertices() int { return len(ls.perm) }

// NumEdges returns the undirected edge count.
func (ls *LatticeSource) NumEdges() int { return ls.nedges }

// AppendNeighbors appends vertex v's neighbor ids to buf in strictly
// increasing order and returns it. Allocation-free once buf has
// capacity (a lattice vertex has at most 12 neighbors).
func (ls *LatticeSource) AppendNeighbors(v int, buf []int) []int {
	lat := ls.inv[v]
	x := lat % ls.gx
	y := (lat / ls.gx) % ls.gy
	z := lat / (ls.gx * ls.gy)
	n0 := len(buf)
	for _, d := range &latticeOffsets {
		nx, ny, nz := x+d[0], y+d[1], z+d[2]
		if nx < 0 || nx >= ls.gx || ny < 0 || ny >= ls.gy || nz < 0 || nz >= ls.gz {
			continue
		}
		u := ls.perm[(nz*ls.gy+ny)*ls.gx+nx]
		// Insertion sort into buf[n0:]: the renumbering scrambles ids,
		// and at most 12 entries makes this cheaper than sort.
		j := len(buf)
		buf = append(buf, u)
		for j > n0 && buf[j-1] > buf[j] {
			buf[j-1], buf[j] = buf[j], buf[j-1]
			j--
		}
	}
	return buf
}

// SideFor returns the lattice side length Generate uses for a target
// vertex count: the rounded cube root, at least 2.
func SideFor(nTarget int) int {
	if nTarget < 8 {
		panic(fmt.Sprintf("mesh: target %d too small", nTarget))
	}
	side := int(math.Round(math.Cbrt(float64(nTarget))))
	if side < 2 {
		side = 2
	}
	return side
}
