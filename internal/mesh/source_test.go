package mesh

import (
	"sort"
	"testing"
)

// csrOf materializes a sorted CSR from a mesh's edge list.
func csrOf(m *Mesh) (xadj, adj []int) {
	deg := make([]int, m.NNode)
	for i := range m.E1 {
		deg[m.E1[i]]++
		deg[m.E2[i]]++
	}
	xadj = make([]int, m.NNode+1)
	for v := 0; v < m.NNode; v++ {
		xadj[v+1] = xadj[v] + deg[v]
	}
	adj = make([]int, xadj[m.NNode])
	fill := make([]int, m.NNode)
	copy(fill, xadj[:m.NNode])
	for i := range m.E1 {
		a, b := m.E1[i], m.E2[i]
		adj[fill[a]] = b
		fill[a]++
		adj[fill[b]] = a
		fill[b]++
	}
	for v := 0; v < m.NNode; v++ {
		sort.Ints(adj[xadj[v]:xadj[v+1]])
	}
	return xadj, adj
}

// TestLatticeSourceMatchesGenerate pins that the streaming source
// reproduces GenerateLattice's connectivity edge for edge, in sorted
// order, for a non-cubic lattice.
func TestLatticeSourceMatchesGenerate(t *testing.T) {
	const gx, gy, gz, seed = 7, 6, 5, 42
	m := GenerateLattice(gx, gy, gz, seed)
	ls := NewLatticeSource(gx, gy, gz, seed)

	if ls.NumVertices() != m.NNode {
		t.Fatalf("NumVertices = %d, want %d", ls.NumVertices(), m.NNode)
	}
	if ls.NumEdges() != m.NEdge() {
		t.Fatalf("NumEdges = %d, want %d", ls.NumEdges(), m.NEdge())
	}

	xadj, adj := csrOf(m)
	var buf []int
	for v := 0; v < m.NNode; v++ {
		buf = ls.AppendNeighbors(v, buf[:0])
		want := adj[xadj[v]:xadj[v+1]]
		if len(buf) != len(want) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("vertex %d neighbor %d: got %d, want %d (%v vs %v)", v, i, buf[i], want[i], buf, want)
			}
		}
	}
}

// TestAppendNeighborsSorted pins the strictly-increasing contract on a
// cube with a different seed.
func TestAppendNeighborsSorted(t *testing.T) {
	ls := NewLatticeSource(9, 9, 9, 7)
	var buf []int
	for v := 0; v < ls.NumVertices(); v++ {
		buf = ls.AppendNeighbors(v, buf[:0])
		for i := 1; i < len(buf); i++ {
			if buf[i] <= buf[i-1] {
				t.Fatalf("vertex %d neighbors not strictly increasing: %v", v, buf)
			}
		}
		if len(buf) < 3 || len(buf) > 12 {
			t.Fatalf("vertex %d has %d neighbors, want 3..12", v, len(buf))
		}
	}
}

// TestSideFor pins the Generate rounding rule.
func TestSideFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{8, 2}, {27, 3}, {1000, 10}, {9261, 21}, {21952, 28}, {10000, 22},
	}
	for _, c := range cases {
		if got := SideFor(c.n); got != c.want {
			t.Errorf("SideFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if n := Generate(21952, 1).NNode; n != 21952 {
		t.Errorf("Generate(21952).NNode = %d, want 21952", n)
	}
}
