package partition

import (
	"chaos/internal/geocol"
)

// This file is the scratch arena of the multilevel partitioner: one
// per-run (and, through the Ladder, per-Repartitioner) bundle of every
// reusable buffer the hot paths need — gain buckets, FM snapshots,
// match-routing tables, projection/restriction routing, and the
// coarse-graph assembler. A cold PartitionLadder call creates one
// arena, threads it through coarsening, the serial solve, and every
// refinement level, and retains it in the Ladder, so warm Repartition
// epochs re-run the whole uncoarsening with steady-state capacity and
// allocate (almost) nothing. The buffers grow monotonically to the
// finest level's size and are never returned to callers: everything a
// caller keeps (cmap, coarse Graphs, part vectors) stays freshly
// allocated.
//
// An arena is single-goroutine state, like the Ladder that owns it:
// each SPMD rank runs its own Partition call and owns its own arena.
// The one deliberate aliasing rule: distHeavyEdgeMatch returns its
// match vector out of the arena, valid only until the next matching on
// the same arena — its sole caller (buildLadder) consumes it
// immediately via numberCoarse.
type arena struct {
	kl    klScratch
	kway  kwayScratch
	fm    fmScratch
	match matchScratch
	proj  projScratch
	asm   geocol.CoarseAssembler
	ct    geocol.Contractor
}

// klScratch is the per-bisection scratch of the serial KL/FM refiner
// (klRefineN): gain cache, locks, the balance-blocked stash, the move
// sequence, and the candidate heap.
type klScratch struct {
	gains  []float64
	locked []bool
	stash  []int
	seq    []klMove
	heap   klHeap
	// side/visited/queue seed klBisect's region-growing split.
	side    []bool
	visited []bool
	queue   []int
}

// kwayScratch is the scratch of the serial k-way FM refiner
// (kwayRefine): part weights, the per-candidate accumulator pair, gain
// buckets, locks, stamps, the move log and the balance-blocked stash.
type kwayScratch struct {
	W, acc       []float64
	seen         []bool
	touchedParts []int
	stamp        []int
	locked       []bool
	log          []fmMove
	blocked      []fmCand
	fb           fmBuckets
}

// fmScratch is the scratch of the distributed hill-climbing FM refiner
// (parallelFM). ghostAdj is the flattened (CSR) reverse index from
// ghost slot to adjacent home-local vertices; ghostPart the reused
// ghost part copy; touched the reused touched-slot list of the
// incremental exchanges.
type fmScratch struct {
	ghostPart     []int
	ghostAdjStart []int
	ghostAdj      []int
	cutW          []float64
	boundary      []bool
	dirty         []bool
	W             []float64
	buf           []float64
	acc           []float64
	seen          []bool
	touchedParts  []int
	stamp         []int
	locked        []bool
	movedFlag     []bool
	log           []fmMove
	blocked       []fmCand
	addBudget     []float64
	subBudget     []float64
	touched       []int
	fb            fmBuckets
}

// matchScratch is the scratch of distributed matching and coarse
// numbering (pcoarsen.go): home/ghost weights, the match and target
// vectors, monotone matched flags, and the per-rank proposal and
// notification routing.
type matchScratch struct {
	homeW        []float64
	ghostW       []float64
	match        []int
	ghostMatched []int
	newly        []bool
	target       []int
	props        [][]int
	notify       [][]int
}

// projScratch is the scratch of partition projection and restriction
// (pmultilevel.go): the sorted coarse-id list, its resolved parts, and
// the per-rank request/reply routing.
type projScratch struct {
	need []int
	val  []int
	req  [][]int
	rep  [][]int
	out  [][]int
}

// growInts returns (*s)[:n] with arbitrary contents, reallocating only
// when the capacity is short; the float/bool twins below are identical.
// Callers that need zeroed contents clear explicitly — most hot-path
// buffers are fully overwritten before use, and making that explicit
// at the use site is the contract that keeps reuse safe.
func growInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

func growFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

func growBools(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	}
	*s = (*s)[:n]
	return *s
}

// growRanks sizes a per-rank routing table to procs entries and resets
// each entry to length zero, keeping every per-rank backing array.
func growRanks(s *[][]int, procs int) [][]int {
	if cap(*s) < procs {
		*s = make([][]int, procs)
	}
	*s = (*s)[:procs]
	for r := range *s {
		(*s)[r] = (*s)[r][:0]
	}
	return *s
}

// ensure readies reusable gain buckets: first use allocates the fixed
// bucket array, later uses just empty it.
func (fb *fmBuckets) ensure() {
	if fb.buckets == nil {
		fb.buckets = make([][]fmCand, 2*fmBucketSpan+1)
		fb.head = make([]int, 2*fmBucketSpan+1)
	}
	fb.reset()
}
