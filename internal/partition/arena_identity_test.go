package partition

import (
	"fmt"
	"testing"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
	"chaos/internal/xrand"
)

// fingerprintColdWarm runs one cold PartitionLadder plus two warm
// Repartition epochs (each warm epoch perturbs the edge list
// deterministically) on the given backend and returns a per-epoch
// fingerprint: the edge cut and an order-sensitive hash of the global
// partition vector. The fingerprints pin the exact move sequences of
// the cold V-cycle and of ladder-reusing warm refinement.
//
// With reuseArena false the retained scratch arena is discarded before
// every warm epoch, so each Repartition rebuilds its buffers from
// scratch — comparing against the reusing run proves buffer reuse
// cannot leak state between epochs.
func fingerprintColdWarm(t *testing.T, backend machine.Backend, reuseArena bool) [3]string {
	t.Helper()
	m := mesh.Generate(4000, 7)
	const p = 4
	ml := Multilevel{Seed: 42}
	var out [3]string
	cfg := machine.IPSC860(p)
	cfg.Backend = backend
	cfg.Seed = 7
	err := machine.Run(cfg, func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		part, ld := ml.PartitionLadder(c, g, p)
		fp := fingerprint(c, g, part)
		if c.Rank() == 0 {
			out[0] = fp
		}
		for epoch := 1; epoch <= 2; epoch++ {
			e1, e2 := perturbEdges(m, epoch)
			gNew := geocol.Build(c, m.NNode, geocol.WithLink(e1[elo:ehi], e2[elo:ehi]))
			if !reuseArena {
				ld.ar = nil // force a pristine arena for this epoch
			}
			part = ml.Repartition(c, gNew, p, ld, part)
			fp := fingerprint(c, gNew, part)
			if c.Rank() == 0 {
				out[epoch] = fp
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// perturbEdges rewires a deterministic ~2% of the mesh edges.
func perturbEdges(m *mesh.Mesh, epoch int) (e1, e2 []int) {
	e1 = append([]int(nil), m.E1...)
	e2 = append([]int(nil), m.E2...)
	n := len(e1)
	for i := 0; i < n/50; i++ {
		j := int(xrand.Hash64(uint64(epoch)<<32|uint64(i)) % uint64(n))
		e2[j] = int(xrand.Hash64(uint64(epoch)<<40|uint64(i)+1) % uint64(m.NNode))
	}
	return e1, e2
}

// fingerprint gathers the global partition and folds it into
// "cut=N hash=H". Collective.
func fingerprint(c *machine.Ctx, g *geocol.Graph, part []int) string {
	full := c.AllGatherInts(part)
	f := g.Gather(c)
	cut := CutEdges(f.XAdj, f.Adj, full)
	h := uint64(14695981039346656037)
	for _, p := range full {
		h = (h ^ uint64(p)) * 1099511628211
	}
	return fmt.Sprintf("cut=%d hash=%x", cut, h)
}

// TestArenaReuseBitIdentical is the bit-identity gate of the scratch
// arenas: a cold partition followed by two warm repartition epochs must
// produce byte-for-byte identical partitions whether the warm epochs
// reuse the cold run's arena (steady state: buffers carry arbitrary
// stale contents) or rebuild pristine buffers every epoch — on the
// Simulated and the Real execution backend, which must also agree with
// each other. Any scratch buffer whose stale contents influence a
// single move would break this.
func TestArenaReuseBitIdentical(t *testing.T) {
	var first [3]string
	for i, b := range []machine.Backend{machine.Simulated, machine.Real} {
		reused := fingerprintColdWarm(t, b, true)
		fresh := fingerprintColdWarm(t, b, false)
		t.Logf("backend=%v fingerprints: %v", b, reused)
		if reused != fresh {
			t.Errorf("backend %v: arena reuse changed the result:\n  reused: %v\n  fresh:  %v", b, reused, fresh)
		}
		if i == 0 {
			first = reused
		} else if reused != first {
			t.Errorf("backends disagree:\n  simulated: %v\n  real:      %v", first, reused)
		}
	}
}
