package partition

import (
	"testing"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// partitionOn partitions m into nparts with the named registry method
// on a p-rank machine under the given backend and returns the full
// partition vector (gathered on rank 0). The graph carries both LINK
// and GEOMETRY so every registry method can run.
func partitionOn(t *testing.T, m *mesh.Mesh, method string, p, nparts int, backend machine.Backend) []int {
	t.Helper()
	sp := Spec{Method: Method(method)}
	if method == "RANDOM" || method == "MULTILEVEL" {
		sp.Seed = 12345
	}
	cfg := machine.IPSC860(p)
	cfg.Backend = backend
	cfg.Seed = 42
	var full []int
	err := machine.Run(cfg, func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		d := dist.NewBlock(m.NNode, p)
		lo, hi := d.Lo(c.Rank()), d.Hi(c.Rank())
		g := geocol.Build(c, m.NNode,
			geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]),
			geocol.WithGeometry(m.X[lo:hi], m.Y[lo:hi], m.Z[lo:hi]))
		pt, err := sp.ValidateFor(g, nparts)
		if err != nil {
			panic(err)
		}
		part := c.AllGatherInts(pt.Partition(c, g, nparts))
		if c.Rank() == 0 {
			full = part
		}
	})
	if err != nil {
		t.Fatalf("%s P=%d %v: %v", method, p, backend, err)
	}
	if len(full) != m.NNode {
		t.Fatalf("%s P=%d %v: partition has %d entries, want %d", method, p, backend, len(full), m.NNode)
	}
	for v, x := range full {
		if x < 0 || x >= nparts {
			t.Fatalf("%s P=%d %v: vertex %d assigned to part %d (nparts=%d)", method, p, backend, v, x, nparts)
		}
	}
	return full
}

// TestBackendDeterminismPin is the determinism pin for the Real
// backend: for every registry method at P in {1,2,4,8} with fixed
// seeds, the Real backend must produce a partition bit-identical to
// the Simulated backend's, and two consecutive Real runs must agree
// with each other. Both properties follow from the rendezvous
// aggregating contributions in rank order regardless of host
// scheduling; this test pins that no backend-conditional code path
// (payload cloning, slot yielding, per-rank RNG splitting) breaks it.
func TestBackendDeterminismPin(t *testing.T) {
	m := mesh.Generate(600, 5) // small enough for -short, still 3D
	const nparts = 4
	for _, method := range Names() {
		for _, p := range []int{1, 2, 4, 8} {
			sim := partitionOn(t, m, method, p, nparts, machine.Simulated)
			real1 := partitionOn(t, m, method, p, nparts, machine.Real)
			real2 := partitionOn(t, m, method, p, nparts, machine.Real)
			for v := range sim {
				if real1[v] != sim[v] {
					t.Errorf("%s P=%d: real backend diverges from simulated at vertex %d: %d vs %d",
						method, p, v, real1[v], sim[v])
					break
				}
			}
			for v := range real1 {
				if real2[v] != real1[v] {
					t.Errorf("%s P=%d: two real runs disagree at vertex %d: %d vs %d",
						method, p, v, real2[v], real1[v])
					break
				}
			}
		}
	}
}
