package partition

import (
	"sync"
	"testing"
	"time"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// The multilevel micro-benchmarks run on a >=20k-node shell mesh (the
// scale of the paper's larger Euler workload; mesh.Generate rounds the
// 21000 target to a 28^3 lattice of 21952 nodes). The mesh is built
// once and shared.
var big struct {
	once sync.Once
	m    *mesh.Mesh
}

func bigMesh() *mesh.Mesh {
	big.once.Do(func() { big.m = mesh.Generate(21000, 11) })
	return big.m
}

// timePartition runs the named partitioner on a single simulated rank
// (so host time measures the partitioner itself, not the simulation)
// and returns the host duration of the Partition call — GeoCoL
// construction and cut counting are outside the partitioner and stay
// untimed — plus the resulting edge cut.
func timePartition(tb testing.TB, m *mesh.Mesh, name string, nparts int) (time.Duration, int) {
	tb.Helper()
	pt, err := Lookup(name)
	if err != nil {
		tb.Fatal(err)
	}
	var cut int
	var elapsed time.Duration
	err = machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		g := geocol.Build(c, m.NNode,
			geocol.WithLink(m.E1, m.E2),
			geocol.WithGeometry(m.X, m.Y, m.Z))
		start := time.Now()
		part := pt.Partition(c, g, nparts)
		elapsed = time.Since(start)
		f := g.Gather(c)
		cut = CutEdges(f.XAdj, f.Adj, part)
	})
	if err != nil {
		tb.Fatal(err)
	}
	return elapsed, cut
}

// TestMultilevelSpeedup asserts the tentpole's speed bar: MULTILEVEL
// must partition the 20k-node mesh at least 5x faster than RSB in host
// time. Wall-clock assertions on shared CI runners are noise-prone, so
// the measurement is retried (best-of-two per side, up to three
// attempts, passing if any attempt clears the bar): a transient CPU
// spike recovers on retry while a genuine regression keeps failing.
// The typical ratio is ~7x. It also cross-checks cut quality at this
// scale.
func TestMultilevelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("host-timing comparison")
	}
	if raceEnabled {
		t.Skip("host-timing comparison is skewed by race instrumentation")
	}
	m := bigMesh()
	const nparts = 8
	bestOf2 := func(name string) (time.Duration, int) {
		d1, cut := timePartition(t, m, name, nparts)
		d2, _ := timePartition(t, m, name, nparts)
		if d2 < d1 {
			d1 = d2
		}
		return d1, cut
	}
	var mlTime, rsbTime time.Duration
	var mlCut, rsbCut int
	for attempt := 1; ; attempt++ {
		mlTime, mlCut = bestOf2("MULTILEVEL")
		rsbTime, rsbCut = bestOf2("RSB")
		t.Logf("attempt %d: %d nodes, %d parts: MULTILEVEL %v cut %d, RSB %v cut %d (%.1fx faster)",
			attempt, m.NNode, nparts, mlTime, mlCut, rsbTime, rsbCut,
			float64(rsbTime)/float64(mlTime))
		if rsbTime >= 5*mlTime || attempt == 3 {
			break
		}
	}
	if rsbTime < 5*mlTime {
		t.Errorf("MULTILEVEL %v vs RSB %v: speedup %.2fx, want >= 5x",
			mlTime, rsbTime, float64(rsbTime)/float64(mlTime))
	}
	if float64(mlCut) > 1.15*float64(rsbCut) {
		t.Errorf("MULTILEVEL cut %d exceeds RSB cut %d by more than 15%%", mlCut, rsbCut)
	}
}

// benchPartitioner reports the partitioner-only time as the custom
// metric "part-ms" — ns/op also includes the (identical, fixed) GeoCoL
// construction and cut counting, which would understate the
// MULTILEVEL-vs-RSB ratio if compared directly.
func benchPartitioner(b *testing.B, name string) {
	m := bigMesh()
	b.ResetTimer()
	var inner time.Duration
	for i := 0; i < b.N; i++ {
		d, _ := timePartition(b, m, name, 8)
		inner += d
	}
	b.ReportMetric(float64(inner.Milliseconds())/float64(b.N), "part-ms")
}

func BenchmarkMultilevel20K(b *testing.B) { benchPartitioner(b, "MULTILEVEL") }
func BenchmarkRSB20K(b *testing.B)        { benchPartitioner(b, "RSB") }
func BenchmarkRSBKL20K(b *testing.B)      { benchPartitioner(b, "RSB-KL") }
func BenchmarkKL20K(b *testing.B)         { benchPartitioner(b, "KL") }
func BenchmarkRCB20K(b *testing.B)        { benchPartitioner(b, "RCB") }

// BenchmarkCoarsen isolates the coarsening half of the V-cycle: one
// full heavy-edge-matching ladder from the 20k-node mesh down to the
// default coarsening floor.
func BenchmarkCoarsen(b *testing.B) {
	m := bigMesh()
	var f *geocol.Full
	err := machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1, m.E2))
		f = g.Gather(c)
	})
	if err != nil {
		b.Fatal(err)
	}
	verts := make([]int, f.N)
	for i := range verts {
		verts[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg := induce(f, verts)
		totalW := sg.totalWeight()
		var ct geocol.Contractor
		for cur := sg; cur.n > 100; {
			cmap, nc := heavyEdgeMatch(cur, totalW*0.01)
			if nc > cur.n*9/10 {
				break
			}
			cur = contract(&ct, cur, cmap, nc)
		}
	}
}

// BenchmarkParallelMultilevel8 exercises the distributed V-cycle
// (parallel coarsening ladder + hill-climbing FM refinement,
// pmultilevel.go/prefine.go) on the 20k-node mesh at eight simulated
// ranks. ns/op includes the whole goroutine-per-rank simulation; the
// custom metric reports the virtual partitioning seconds the paper's
// tables would, which is the number TestParallelMultilevelTimeScales
// pins against the serial path.
func BenchmarkParallelMultilevel8(b *testing.B) {
	m := bigMesh()
	pt, err := Lookup("MULTILEVEL")
	if err != nil {
		b.Fatal(err)
	}
	const p = 8
	b.ResetTimer()
	var virtual float64
	for i := 0; i < b.N; i++ {
		err := machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
			eb := m.NEdge() / p
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == p-1 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			t0 := c.Clock()
			pt.Partition(c, g, p)
			dt := c.MaxFloat(c.Clock() - t0)
			if c.Rank() == 0 {
				virtual = dt
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(virtual, "virtual-s")
}
