package partition

import (
	"math"

	"chaos/internal/geocol"
)

// This file implements the coarsening half of the multilevel
// partitioner: heavy-edge matching (Karypis & Kumar's HEM) collapses a
// graph level by level while vertex and edge weights are aggregated so
// every coarse graph remains a faithful summary of the finest one —
// the edge cut of a coarse partition equals the cut of its projection,
// and vertex-weight balance is preserved exactly.

// heavyEdgeMatch greedily matches each vertex with the still-unmatched
// neighbor joined by the heaviest edge; a vertex whose neighbors are
// all taken is absorbed into the cluster of its heaviest neighbor
// instead of surviving as a singleton, which speeds up the shrink rate
// (and so shortens the ladder) without hurting cut quality. Growing a
// cluster past maxW vertex weight is forbidden (maxW <= 0 disables the
// cap): the cap keeps coarse vertices small enough that the coarsest-
// level median sweep can land within the KL refiner's balance slack.
// Deterministic: vertices are visited in index order and ties broken
// by original id. Returns the fine-to-coarse vertex map and the coarse
// vertex count.
func heavyEdgeMatch(sg *subgraph, maxW float64) (cmap []int, nc int) {
	cmap = make([]int, sg.n)
	for i := range cmap {
		cmap[i] = -1
	}
	cw := make([]float64, 0, sg.n/2+1) // weight of each coarse cluster so far
	for v := 0; v < sg.n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		// First choice: the heaviest edge to an unmatched neighbor.
		best, bestW := -1, math.Inf(-1)
		for k := sg.xadj[v]; k < sg.xadj[v+1]; k++ {
			u := sg.adj[k]
			if cmap[u] >= 0 {
				continue
			}
			if maxW > 0 && sg.w[v]+sg.w[u] > maxW {
				continue
			}
			ew := sg.edgeW(k)
			if ew > bestW || (ew == bestW && sg.orig[u] < sg.orig[best]) {
				best, bestW = u, ew
			}
		}
		if best >= 0 {
			cmap[v], cmap[best] = nc, nc
			cw = append(cw, sg.w[v]+sg.w[best])
			nc++
			continue
		}
		// Fallback: absorb into the heaviest already-formed neighbor
		// cluster that still has weight headroom.
		best, bestW = -1, math.Inf(-1)
		for k := sg.xadj[v]; k < sg.xadj[v+1]; k++ {
			u := sg.adj[k]
			if cmap[u] < 0 {
				continue // unmatched but over the pair cap
			}
			if maxW > 0 && cw[cmap[u]]+sg.w[v] > maxW {
				continue
			}
			ew := sg.edgeW(k)
			if ew > bestW || (ew == bestW && sg.orig[u] < sg.orig[best]) {
				best, bestW = u, ew
			}
		}
		if best >= 0 {
			c := cmap[best]
			cmap[v] = c
			cw[c] += sg.w[v]
			continue
		}
		cmap[v] = nc
		cw = append(cw, sg.w[v])
		nc++
	}
	sg.flops += int64(2*len(sg.adj) + sg.n)
	return cmap, nc
}

// contract builds the coarse subgraph induced by cmap, delegating the
// CSR and weight aggregation to the geocol Contractor (shared across a
// ladder so its scratch is amortized). The coarse vertex inherits the
// smallest original id among its members, keeping the deterministic
// tie-breaks of the refiner meaningful at every level.
func contract(ct *geocol.Contractor, sg *subgraph, cmap []int, nc int) *subgraph {
	cxadj, cadj, cew, cw := ct.Contract(sg.xadj, sg.adj, sg.ew, sg.w, cmap, nc)
	cs := &subgraph{n: nc, xadj: cxadj, adj: cadj, ew: cew, w: cw}
	cs.orig = make([]int, nc)
	for i := range cs.orig {
		cs.orig[i] = -1
	}
	for v := 0; v < sg.n; v++ {
		c := cmap[v]
		if cs.orig[c] < 0 || sg.orig[v] < cs.orig[c] {
			cs.orig[c] = sg.orig[v]
		}
	}
	sg.flops += int64(2*len(sg.adj) + 2*sg.n)
	return cs
}
