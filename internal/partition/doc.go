// Package partition provides the library of data partitioners the
// paper's SET ... BY PARTITIONING ... USING directive selects from
// (Section 4.2: "The user will be provided a library of commonly
// available partitioners"), plus a registry so user code can link a
// customized partitioner as long as the calling sequence matches.
//
// Every partitioner consumes a GeoCoL data structure and produces a
// map array: for each vertex, the part (target processor) in
// [0, nparts). Partitioners are collective: each rank passes its
// home-resident slice of the GeoCoL graph and receives the part
// assignment for exactly those vertices. Implementations must be
// deterministic — the same graph on the same machine maps identically
// on every run and host.
//
// # Public surface
//
// Lookup selects a registered Partitioner by name ("BLOCK", "RANDOM",
// "RCB", "INERTIAL", "KL", "RSB", "RSB-KL", "MULTILEVEL"); Register
// links a custom one. CutEdges counts cut edges of a full map (test
// and experiment helper). The partitioner types themselves (RCB, RSB,
// KL, Multilevel, ...) are exported so non-default configurations can
// be constructed directly or registered under their name.
//
// # Tuning the multilevel partitioner
//
// Multilevel is the recommended connectivity partitioner for large
// graphs and carries the package's tuning surface:
//
//   - CoarsenTo (default 100): vertex count at which coarsening stops
//     and the spectral solve runs. Smaller is faster and coarser;
//     larger spends more Lanczos time for marginally better seeds.
//     Safe range ~25-400.
//   - ParallelThreshold (default 2048): minimum global vertex count
//     for the distributed V-cycle on multi-rank machines; below it
//     the gather-everything serial path is cheaper. Negative forces
//     the serial path at any size. It also floors the parallel
//     ladder's serial-solve handoff, max(8*CoarsenTo,
//     ParallelThreshold) — the empirical quality knee (see
//     docs/REFINEMENT.md).
//   - FMPasses (default 0 = 3 passes, 4 at the finest level): pass
//     budget of the hill-climbing parallel FM refiner (prefine.go)
//     at each uncoarsening level. Negative selects the legacy greedy
//     refiner with its original 16*CoarsenTo handoff.
//   - VCycle (default false): opt-in second, partition-preserving
//     V-cycle of refinement — a further ~1-2% of cut for roughly
//     double the distributed partitioning cost.
//
// # Guarantees pinned by tests
//
// quality_test.go pins the paper's Table 2 cut ordering (RSB < RCB <<
// BLOCK) and MULTILEVEL within 15% of RSB serially; bench_test.go
// pins MULTILEVEL >= 5x faster than RSB in host time on a 20k-node
// mesh; parallel_test.go pins the distributed path's virtual time
// strictly decreasing P=1..8 with cut within 5% of the serial
// V-cycle, plus balance, determinism and dispatch routing;
// prefine_test.go pins the refinement stack's contracts (FM beats
// greedy, improves seeds, holds the balance window, V-cycle
// refinement never worsens). docs/REFINEMENT.md is the guided tour of
// the refinement stack; docs/ARCHITECTURE.md places the package in
// the paper's Figure 2 pipeline.
package partition
