package partition

import (
	"math"

	"chaos/internal/xrand"
)

// subgraph is a compact CSR view of an induced subgraph used by the
// serial spectral and multilevel machinery. Vertex i of the subgraph
// corresponds to orig[i] in the parent graph.
type subgraph struct {
	n    int
	xadj []int
	adj  []int // subgraph-local neighbor ids
	// ew holds per-edge weights parallel to adj; nil means unit
	// weights. Coarsened graphs carry the aggregated multiplicity of
	// the fine edges each coarse edge represents.
	ew   []float64
	w    []float64
	orig []int
	// flops accumulates the floating-point work performed on this
	// subgraph so the caller can charge the virtual clock.
	flops int64
}

// edgeW returns the weight of adjacency slot k (1 when unweighted).
func (sg *subgraph) edgeW(k int) float64 {
	if sg.ew == nil {
		return 1
	}
	return sg.ew[k]
}

// totalWeight sums the vertex weights of the subgraph.
func (sg *subgraph) totalWeight() float64 {
	t := 0.0
	for i := 0; i < sg.n; i++ {
		t += sg.w[i]
	}
	return t
}

// laplacianMatVec computes y = L x where L = D - A is the (weighted)
// combinatorial Laplacian of the subgraph.
func (sg *subgraph) laplacianMatVec(x, y []float64) {
	if sg.ew == nil {
		for i := 0; i < sg.n; i++ {
			deg := float64(sg.xadj[i+1] - sg.xadj[i])
			s := deg * x[i]
			for _, j := range sg.adj[sg.xadj[i]:sg.xadj[i+1]] {
				s -= x[j]
			}
			y[i] = s
		}
	} else {
		for i := 0; i < sg.n; i++ {
			deg, s := 0.0, 0.0
			for k := sg.xadj[i]; k < sg.xadj[i+1]; k++ {
				deg += sg.ew[k]
				s -= sg.ew[k] * x[sg.adj[k]]
			}
			y[i] = s + deg*x[i]
		}
	}
	sg.flops += int64(2*len(sg.adj) + 2*sg.n)
}

// fiedlerMaxRestarts bounds the implicit-restart iterations of the
// capped Lanczos solve: each restart re-runs the full sweep, so the
// cap also bounds the worst-case flop charge at 1+fiedlerMaxRestarts
// sweeps.
const fiedlerMaxRestarts = 2

// fiedlerRestartTol is the relative Ritz-residual threshold
// (resid / theta) above which a cap-limited sweep is considered
// unconverged and restarted. Heavy multi-edge coarse graphs — whose
// clustered edge weights spread the Laplacian spectrum — routinely
// blow through this at depth 60; well-conditioned meshes mostly stay
// under it.
const fiedlerRestartTol = 0.25

// fiedler approximates the Fiedler vector (eigenvector of the second
// smallest Laplacian eigenvalue) with a Lanczos iteration that is kept
// orthogonal to the constant vector and fully reorthogonalized, then
// solves the small tridiagonal eigenproblem with an implicit-shift QL
// sweep. When the Krylov depth cap (60) is hit without the Fiedler
// pair converging — the ill-conditioned heavy multi-edge coarse
// graphs of the multilevel ladder — the iteration restarts from the
// best Ritz vector instead of returning it as-is, up to
// fiedlerMaxRestarts times. Deterministic: the start vector comes
// from a seeded stream.
func (sg *subgraph) fiedler(seed uint64) []float64 {
	return sg.fiedlerRestarted(seed, fiedlerMaxRestarts)
}

// fiedlerRestarted is fiedler with an explicit restart budget;
// maxRestarts = 0 reproduces the historical single-sweep behavior
// (kept callable for the regression tests).
func (sg *subgraph) fiedlerRestarted(seed uint64, maxRestarts int) []float64 {
	n := sg.n
	if n <= 2 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)
		}
		return out
	}
	// Krylov depth grows with subgraph size; larger meshes need more
	// steps for the Fiedler pair to settle.
	m := 30
	if n > 1000 {
		m = 60
	}
	capped := m == 60 && m < n-1
	if m > n-1 {
		m = n - 1
	}
	rng := xrand.New(seed)

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	projectOutConstant(v)
	normalize(v)

	out, theta, resid := sg.lanczosSweep(v, m)
	if capped {
		for r := 0; r < maxRestarts && resid > fiedlerRestartTol*math.Abs(theta); r++ {
			// Restart from the best Ritz vector: the sweep's Krylov
			// space is re-seeded with its own best approximation, so
			// each restart contracts toward the Fiedler pair without
			// growing the basis past the cap. The restarted space
			// contains its seed, so the Ritz value (the Rayleigh
			// quotient, which the median split's quality rides on) is
			// non-increasing in exact arithmetic; the guard below
			// keeps the previous vector if roundoff breaks that.
			v = append(v[:0], out...)
			projectOutConstant(v)
			normalize(v)
			out2, theta2, resid2 := sg.lanczosSweep(v, m)
			if theta2 >= theta {
				break
			}
			out, theta, resid = out2, theta2, resid2
		}
	}
	return out
}

// lanczosSweep runs one depth-m Lanczos iteration from start vector v
// (unit norm, orthogonal to the constant vector; not modified) and
// returns the best Ritz vector together with its Ritz value theta and
// residual-norm estimate ‖L y − θ y‖ ≈ β_m |z_m| used by the restart
// logic.
func (sg *subgraph) lanczosSweep(v0 []float64, m int) (out []float64, theta, resid float64) {
	n := sg.n

	basis := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m) // beta[k] links basis[k] and basis[k+1]
	lastB := 0.0                  // the β that would extend the basis past its end

	v := append([]float64(nil), v0...)
	work := make([]float64, n)
	for k := 0; k < m; k++ {
		basis = append(basis, append([]float64(nil), v...))
		sg.laplacianMatVec(v, work)
		a := dot(work, v)
		alpha = append(alpha, a)
		// w = L v - a v - b v_{k-1}
		for i := range work {
			work[i] -= a * v[i]
		}
		if k > 0 {
			b := beta[k-1]
			prev := basis[k-1]
			for i := range work {
				work[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization (constant vector + all basis).
		projectOutConstant(work)
		for _, u := range basis {
			d := dot(work, u)
			for i := range work {
				work[i] -= d * u[i]
			}
		}
		sg.flops += int64((len(basis) + 3) * 2 * n)
		b := math.Sqrt(dot(work, work))
		lastB = b
		if b < 1e-12 {
			break // invariant subspace found
		}
		if k < m-1 {
			beta = append(beta, b)
			for i := range v {
				v[i] = work[i] / b
			}
		}
	}

	k := len(alpha)
	d := append([]float64(nil), alpha...)
	e := make([]float64, k)
	copy(e[1:], beta[:k-1])
	z := identity(k)
	tql2(d, e, z)
	sg.flops += int64(k * k * 30)

	// Smallest Ritz value (the constant direction was projected out,
	// so this approximates the Fiedler pair).
	best := 0
	for i := 1; i < k; i++ {
		if d[i] < d[best] {
			best = i
		}
	}
	out = make([]float64, n)
	for j := 0; j < k; j++ {
		c := z[j][best]
		if c == 0 {
			continue
		}
		u := basis[j]
		for i := 0; i < n; i++ {
			out[i] += c * u[i]
		}
	}
	sg.flops += int64(2 * k * n)
	// The classic Lanczos error bound: the Ritz pair's residual norm
	// equals the next β times the last component of the tridiagonal
	// eigenvector.
	return out, d[best], lastB * math.Abs(z[k-1][best])
}

func projectOutConstant(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func normalize(v []float64) {
	nrm := math.Sqrt(dot(v, v))
	if nrm == 0 {
		return
	}
	for i := range v {
		v[i] /= nrm
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func identity(n int) [][]float64 {
	z := make([][]float64, n)
	for i := range z {
		z[i] = make([]float64, n)
		z[i][i] = 1
	}
	return z
}

// tql2 diagonalizes a symmetric tridiagonal matrix with diagonal d and
// subdiagonal e (e[0] unused) using the implicit QL method with shifts
// (EISPACK TQL2). On return d holds eigenvalues and column j of z the
// corresponding eigenvector. Panics only if the iteration fails to
// converge, which for the small matrices used here does not occur.
func tql2(d, e []float64, z [][]float64) {
	n := len(d)
	if n == 0 {
		return
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= 50 {
				panic("partition: tql2 failed to converge")
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f := z[k][i+1]
					z[k][i+1] = s*z[k][i] + c*f
					z[k][i] = c*z[k][i] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
}
