package partition

import (
	"math"
	"testing"

	"chaos/internal/geocol"
)

// contractedMultigraph builds the ill-conditioned input of the
// restart regression: a fine ring of 2-vertex clusters is contracted
// (geocol.Contract) so parallel fine edges merge into heavy coarse
// multi-edges — every 7th ring link carries 4 fine edges, the rest
// one — yielding a >1000-vertex weighted cycle whose clustered
// spectrum stalls the depth-capped Lanczos sweep.
func contractedMultigraph(nc int) *subgraph {
	n := 2 * nc
	type edge struct{ u, v int }
	var edges []edge
	add := func(u, v int) { edges = append(edges, edge{u, v}, edge{v, u}) }
	for k := 0; k < nc; k++ {
		a, b := 2*k, 2*k+1
		c, d := (2*k+2)%n, (2*k+3)%n
		add(a, b) // intra-cluster: vanishes under contraction
		add(b, c) // ring link, weight 1
		if k%7 == 0 {
			// Three extra parallel fine edges: coarse weight 4.
			add(a, c)
			add(b, d)
			add(a, d)
		}
	}
	xadj := make([]int, n+1)
	for _, e := range edges {
		xadj[e.u+1]++
	}
	for i := 0; i < n; i++ {
		xadj[i+1] += xadj[i]
	}
	adj := make([]int, len(edges))
	next := append([]int(nil), xadj[:n]...)
	for _, e := range edges {
		adj[next[e.u]] = e.v
		next[e.u]++
	}
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = i / 2
	}
	cxadj, cadj, cew, cw := geocol.Contract(xadj, adj, nil, nil, cmap, nc)
	orig := make([]int, nc)
	for i := range orig {
		orig[i] = i
	}
	return &subgraph{n: nc, xadj: cxadj, adj: cadj, ew: cew, w: cw, orig: orig}
}

// rayleigh returns the Rayleigh quotient of the normalized,
// constant-projected copy of v — the quantity the Fiedler
// approximation is judged by (smaller = closer to λ2, since the
// iterate is orthogonal to the constant nullspace vector).
func rayleigh(sg *subgraph, v []float64) float64 {
	y := append([]float64(nil), v...)
	projectOutConstant(y)
	normalize(y)
	ly := make([]float64, sg.n)
	sg.laplacianMatVec(y, ly)
	return dot(y, ly)
}

// relResidual measures ‖L y − θ y‖ / θ for the normalized,
// constant-projected Rayleigh pair of v.
func relResidual(sg *subgraph, v []float64) float64 {
	y := append([]float64(nil), v...)
	projectOutConstant(y)
	normalize(y)
	ly := make([]float64, sg.n)
	sg.laplacianMatVec(y, ly)
	theta := dot(y, ly)
	r := 0.0
	for i := range ly {
		d := ly[i] - theta*y[i]
		r += d * d
	}
	return math.Sqrt(r) / theta
}

// TestFiedlerRestartsOnContractedMultigraph pins the Lanczos restart
// behavior (ROADMAP "Lanczos restarts on the coarsest graph"): on a
// contracted heavy multi-edge graph whose depth-60 sweep does not
// converge, restarting from the best Ritz vector must tighten the
// Fiedler approximation — a strictly smaller Rayleigh quotient —
// instead of returning the unconverged vector as-is.
func TestFiedlerRestartsOnContractedMultigraph(t *testing.T) {
	sg := contractedMultigraph(1400)
	seed := uint64(12345)

	single := sg.fiedlerRestarted(seed, 0)
	if r := relResidual(sg, single); r <= fiedlerRestartTol {
		t.Fatalf("single sweep already converged (rel residual %.4f <= %.2f); the regression graph is too easy",
			r, fiedlerRestartTol)
	}
	raySingle := rayleigh(sg, single)

	restarted := sg.fiedler(seed)
	rayRestarted := rayleigh(sg, restarted)
	if rayRestarted >= raySingle {
		t.Errorf("restarts did not improve the Fiedler approximation: Rayleigh %.6g (restarted) vs %.6g (single sweep)",
			rayRestarted, raySingle)
	}
	if rayRestarted > 0.8*raySingle {
		t.Errorf("restarts barely helped: Rayleigh %.6g vs single-sweep %.6g (want <= 80%%)",
			rayRestarted, raySingle)
	}
}

// TestFiedlerNoRestartBelowCap pins that graphs under the depth cap
// (n <= 1000, Krylov depth 30 < cap) keep the historical single-sweep
// result bit-for-bit: restarts only engage when the cap is hit.
func TestFiedlerNoRestartBelowCap(t *testing.T) {
	sg := contractedMultigraph(400)
	seed := uint64(777)
	a := sg.fiedlerRestarted(seed, 0)
	b := sg.fiedler(seed)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fiedler changed below the cap at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
