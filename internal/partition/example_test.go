package partition_test

import (
	"fmt"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
	"chaos/internal/partition"
)

// ExampleMultilevel partitions a 3000-node unstructured mesh into four
// parts on a four-rank simulated machine, with the coarsening floor
// and the distributed-path threshold tuned away from their defaults
// (CoarsenTo 50 instead of 100, ParallelThreshold 1024 instead of
// 2048, so the distributed V-cycle engages on this small graph). Every
// stage — distributed matching, contraction, the gathered serial
// solve, and the parallel FM refinement — is deterministic, so the
// edge cut and part sizes are stable across runs and hosts, which is
// what lets this example pin its output.
func ExampleMultilevel() {
	m := mesh.Generate(3000, 5)
	const p, nparts = 4, 4
	ml := partition.Multilevel{CoarsenTo: 50, ParallelThreshold: 1024}
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		part := c.AllGatherInts(ml.Partition(c, g, nparts))
		f := g.Gather(c)
		if c.Rank() == 0 {
			counts := make([]int, nparts)
			for _, q := range part {
				counts[q]++
			}
			fmt.Printf("%d nodes in %d parts: sizes %v, cut %d\n",
				m.NNode, nparts, counts, partition.CutEdges(f.XAdj, f.Adj, part))
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: 2744 nodes in 4 parts: sizes [667 717 692 668], cut 1239
}
