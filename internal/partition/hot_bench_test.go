package partition

import (
	"testing"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// The BenchmarkHot* family measures the STEADY STATE of the arena-backed
// hot paths: every benchmark warms its scratch once before the timer, so
// allocs/op reports exactly what a warm repartition epoch pays. The
// serial kernels (KL refine, k-way FM) must report 0 allocs/op — their
// scratch is entirely arena-owned. The distributed benchmarks carry an
// irreducible transport floor (AlltoAll copies payloads per delivery,
// and retained results like cmap and part vectors are freshly allocated
// by design), so their allocs/op is nonzero but constant — the
// bench-gate baseline (BENCH_BASELINE.json) pins all of these so any
// per-iteration allocation sneaking back into a hot path fails CI.

// hotSubgraph gathers the 21952-node mesh into a serial subgraph with a
// deterministic half/half side seed.
func hotSubgraph(tb testing.TB) (*subgraph, []bool) {
	tb.Helper()
	m := bigMesh()
	var f *geocol.Full
	err := machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1, m.E2))
		f = g.Gather(c)
	})
	if err != nil {
		tb.Fatal(err)
	}
	verts := make([]int, f.N)
	for i := range verts {
		verts[i] = i
	}
	sg := induce(f, verts)
	side := make([]bool, sg.n)
	for i := range side {
		side[i] = i < sg.n/2
	}
	return sg, side
}

// BenchmarkHotKLRefine is the serial 2-way KL/FM kernel at steady
// state: one full klRefineN sweep over the 21952-node mesh per op,
// restarted from the same seed side each time. Must be 0 allocs/op.
func BenchmarkHotKLRefine(b *testing.B) {
	sg, side0 := hotSubgraph(b)
	target := sg.totalWeight() * 0.5
	side := make([]bool, len(side0))
	var s klScratch
	copy(side, side0)
	klRefineN(&s, sg, side, target, 2) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(side, side0)
		klRefineN(&s, sg, side, target, 2)
	}
}

// BenchmarkHotKwayRefine is the serial k-way FM kernel at steady state:
// one 8-part refinement of the 21952-node mesh from the same BLOCK seed
// each op. Must be 0 allocs/op.
func BenchmarkHotKwayRefine(b *testing.B) {
	sg, _ := hotSubgraph(b)
	const nparts = 8
	part0 := make([]int, sg.n)
	for v := range part0 {
		part0[v] = v * nparts / sg.n
	}
	part := make([]int, sg.n)
	var s kwayScratch
	copy(part, part0)
	kwayRefine(&s, sg.xadj, sg.adj, sg.ew, sg.w, part, nparts, 4, 0.07) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(part, part0)
		kwayRefine(&s, sg.xadj, sg.adj, sg.ew, sg.w, part, nparts, 4, 0.07)
	}
}

// BenchmarkHotDistMatch is one distributed heavy-edge matching plus
// coarse numbering per op on a 4-rank machine, scratch warm. The
// remaining allocs/op are the AlltoAll transport floor plus the
// retained cmap — both constant.
func BenchmarkHotDistMatch(b *testing.B) {
	m := bigMesh()
	const p = 4
	b.ReportAllocs()
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		ge := geocol.NewGhostExchange(c, g)
		var s matchScratch
		match := distHeavyEdgeMatch(c, &s, g, ge, 0, 42, nil, nil) // warm
		numberCoarse(c, &s, g, match)
		c.SumInt(0) // barrier: all ranks warmed before the timer resets
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			match := distHeavyEdgeMatch(c, &s, g, ge, 0, 42, nil, nil)
			numberCoarse(c, &s, g, match)
		}
		c.SumInt(0)
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHotWarmRepartition is the tentpole's end-to-end steady
// state: one warm Repartition epoch per op off a retained ladder (and
// its arena) on a 4-rank machine, alternating between two perturbed
// versions of the 4000-node mesh. Cold-run and graph-construction costs
// sit outside the timer; what remains is the warm path the
// Repartitioner drives every epoch — its allocs/op is the AlltoAll
// transport floor plus the returned part vectors, pinned by the gate.
func BenchmarkHotWarmRepartition(b *testing.B) {
	m := mesh.Generate(4000, 7)
	const p = 4
	ml := Multilevel{Seed: 42}
	b.ReportAllocs()
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		part, ld := ml.PartitionLadder(c, g, p)
		if ld == nil {
			panic("warm-repartition bench: cold run retained no ladder")
		}
		var gNew [2]*geocol.Graph
		for epoch := 0; epoch < 2; epoch++ {
			e1, e2 := perturbEdges(m, epoch+1)
			gNew[epoch] = geocol.Build(c, m.NNode, geocol.WithLink(e1[elo:ehi], e2[elo:ehi]))
		}
		part = ml.Repartition(c, gNew[0], p, ld, part) // warm the arena
		c.SumInt(0)
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			part = ml.Repartition(c, gNew[i%2], p, ld, part)
		}
		c.SumInt(0)
		if c.Rank() == 0 {
			b.StopTimer()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
