package partition

import (
	"math"

	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// klMove is one committed move of a klRefineN pass, kept so the tail
// past the best prefix can be rolled back.
type klMove struct {
	v    int
	gain float64
}

// klRefine improves a bisection with a Kernighan-Lin / Fiduccia-
// Mattheyses style boundary pass: repeatedly move the vertex with the
// best edge-cut gain to the other side, subject to a weight-balance
// constraint, keeping the best prefix of moves. Gains are computed once
// per pass and updated incrementally as moves commit, and candidates
// are drawn from a boundary-seeded lazy max-heap (the FM bookkeeping),
// so a pass costs O(E + moves log n) — cheap enough that the multilevel
// partitioner can afford a pass at every uncoarsening level. Runs a
// small fixed number of passes; deterministic (ties broken by original
// vertex id).
func klRefine(s *klScratch, sg *subgraph, side []bool, targetLeftW float64) {
	klRefineN(s, sg, side, targetLeftW, 4)
}

// klRefineN is klRefine with an explicit pass budget; the multilevel
// partitioner spends fewer passes on interior uncoarsening levels,
// whose boundaries get re-polished at every finer level anyway.
//
//chaos:hotpath
func klRefineN(s *klScratch, sg *subgraph, side []bool, targetLeftW float64, passes int) {
	const tol = 0.02 // allowed relative imbalance around the target
	// plateau bounds how far a pass chases zero/negative-gain moves
	// past its best prefix before giving up on the hill.
	const plateau = 64

	totalW := sg.totalWeight()
	slack := tol * totalW

	leftW := 0.0
	for i := 0; i < sg.n; i++ {
		if side[i] {
			leftW += sg.w[i]
		}
	}

	// gains[v] is the cut-weight reduction when v switches sides (unit
	// edge weights on the finest graph; aggregated multiplicities on
	// coarse graphs). All per-pass state lives in the arena scratch —
	// fully overwritten below, so steady-state calls allocate nothing
	// (gains and locked are recomputed for every vertex at each pass
	// start; stash and seq are length-reset).
	gains := growFloats(&s.gains, sg.n)
	locked := growBools(&s.locked, sg.n)
	stash := s.stash[:0]
	h := &s.heap
	h.orig = sg.orig
	seq := s.seq[:0]

	for pass := 0; pass < passes; pass++ {
		// Seed the candidate heap with the boundary vertices; interior
		// vertices (gain -2*weighted degree) are never competitive and
		// join lazily if a neighbor's move puts them on the boundary.
		h.reset()
		for v := 0; v < sg.n; v++ {
			g, boundary := 0.0, false
			for k := sg.xadj[v]; k < sg.xadj[v+1]; k++ {
				if side[sg.adj[k]] == side[v] {
					g -= sg.edgeW(k)
				} else {
					g += sg.edgeW(k)
					boundary = true
				}
			}
			gains[v] = g
			if boundary {
				h.push(g, v)
			}
		}
		for i := range locked {
			locked[i] = false
		}
		seq = seq[:0]
		cum, best, bestAt := 0.0, 0.0, -1
		curLeftW := leftW

		for len(seq) < sg.n {
			// Pop the best live candidate whose move keeps the balance
			// inside the window; balance-blocked candidates are stashed
			// and re-offered after the move commits.
			bv, bg := -1, math.Inf(-1)
			stash = stash[:0]
			for h.len() > 0 {
				e := h.pop()
				if locked[e.v] || gains[e.v] != e.gain {
					continue // stale entry
				}
				nl := curLeftW
				if side[e.v] {
					nl -= sg.w[e.v]
				} else {
					nl += sg.w[e.v]
				}
				if nl < targetLeftW-slack || nl > targetLeftW+slack {
					stash = append(stash, e.v)
					continue
				}
				bv, bg = e.v, e.gain
				break
			}
			for _, v := range stash {
				h.push(gains[v], v)
			}
			if bv < 0 {
				break
			}
			locked[bv] = true
			if side[bv] {
				curLeftW -= sg.w[bv]
			} else {
				curLeftW += sg.w[bv]
			}
			side[bv] = !side[bv]
			// Incremental gain update: every edge at bv flipped
			// internal<->external, so bv's gain negates and each
			// neighbor's moves by twice the edge weight.
			gains[bv] = -gains[bv]
			for k := sg.xadj[bv]; k < sg.xadj[bv+1]; k++ {
				u := sg.adj[k]
				if side[u] == side[bv] {
					gains[u] -= 2 * sg.edgeW(k)
				} else {
					gains[u] += 2 * sg.edgeW(k)
				}
				if !locked[u] {
					h.push(gains[u], u)
				}
			}
			cum += bg
			seq = append(seq, klMove{bv, bg})
			if cum > best {
				best, bestAt = cum, len(seq)-1
			}
			if bg <= 0 && len(seq)-bestAt > plateau {
				break // hill gone cold
			}
		}
		sg.flops += int64(2*len(sg.adj) + len(seq)*64) // gain upkeep + heap ops

		// Roll back moves past the best prefix.
		for i := len(seq) - 1; i > bestAt; i-- {
			v := seq[i].v
			if side[v] {
				leftW -= sg.w[v]
			}
			side[v] = !side[v]
			if side[v] {
				leftW += sg.w[v]
			}
		}
		// Recompute leftW exactly (cheap, avoids drift).
		leftW = 0
		for i := 0; i < sg.n; i++ {
			if side[i] {
				leftW += sg.w[i]
			}
		}
		if best <= 0 {
			break
		}
	}
	s.stash, s.seq = stash, seq // retain grown capacity for the next call
}

// KL is a standalone recursive Kernighan-Lin partitioner (Kernighan &
// Lin, the paper's reference [15]): each group is seeded with a
// breadth-first region-growing split — which already respects
// connectivity — and then improved with the boundary-refinement pass
// klRefine. Purely combinatorial: it needs LINK but neither GEOMETRY
// nor an eigensolver, making it the cheap connectivity-based
// alternative to RSB. Like RSB it runs on the gathered graph on rank 0
// and broadcasts the map; its (much smaller) cost is charged to every
// rank.
type KL struct{}

func (KL) Name() string { return "KL" }

// Capabilities: KL consumes LINK connectivity; its replicated
// gathered-graph run does not scale with the rank count.
func (KL) Capabilities() Capabilities { return Capabilities{NeedsLink: true} }

func (KL) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: KL requires a GeoCoL LINK component")
	}
	// One scratch per Partition call, shared by every bisection of the
	// recursion tree; each rank runs its own call, so no sharing.
	var s klScratch
	return serialBisectPartition(c, g, nparts,
		func(f *geocol.Full, verts []int, frac float64) ([]int, []int, int64) {
			return klBisect(&s, f, verts, frac)
		})
}

// klBisect seeds a split by breadth-first region growing from the
// lowest-numbered vertex until the target weight is reached, then
// refines it with klRefine.
//
//chaos:hotpath
func klBisect(s *klScratch, f *geocol.Full, verts []int, frac float64) (left, right []int, flops int64) {
	sg := induce(f, verts)
	totalW := 0.0
	for i := 0; i < sg.n; i++ {
		totalW += sg.w[i]
	}
	target := totalW * frac

	side := growBools(&s.side, sg.n)
	visited := growBools(&s.visited, sg.n)
	for i := 0; i < sg.n; i++ {
		side[i], visited[i] = false, false
	}
	grown := 0.0
	// BFS over possibly disconnected subgraphs, restarting from the
	// lowest unvisited vertex.
	queue := s.queue[:0]
	// head indexes the BFS front instead of re-slicing, so the backing
	// array survives intact for the next bisection.
	head := 0
	next := 0
	for grown < target {
		if head == len(queue) {
			for next < sg.n && visited[next] {
				next++
			}
			if next >= sg.n {
				break
			}
			queue = append(queue, next)
			visited[next] = true
		}
		v := queue[head]
		head++
		if grown >= target {
			break
		}
		side[v] = true
		grown += sg.w[v]
		for _, u := range sg.adj[sg.xadj[v]:sg.xadj[v+1]] {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	sg.flops += int64(sg.n + len(sg.adj))
	s.queue = queue

	klRefine(s, sg, side, target)

	left = make([]int, 0, sg.n)
	right = make([]int, 0, sg.n)
	for i := 0; i < sg.n; i++ {
		if side[i] {
			left = append(left, sg.orig[i])
		} else {
			right = append(right, sg.orig[i])
		}
	}
	return left, right, sg.flops
}

// klEntry is one candidate move in the refinement heap. Entries are
// immutable snapshots: when a vertex's gain changes a fresh entry is
// pushed and the old one turns stale (detected on pop by comparing
// against the live gain).
type klEntry struct {
	gain float64
	v    int
}

// klHeap is a deterministic max-heap of move candidates: highest gain
// first, ties broken toward the smaller original vertex id.
type klHeap struct {
	orig    []int
	entries []klEntry
}

func (h *klHeap) len() int { return len(h.entries) }

// reset empties the heap keeping its backing array, so refinement
// passes reuse steady-state capacity instead of reallocating.
func (h *klHeap) reset() { h.entries = h.entries[:0] }

// before reports whether a is a higher-priority candidate than b.
func (h *klHeap) before(a, b klEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return h.orig[a.v] < h.orig[b.v]
}

//chaos:hotpath
func (h *klHeap) push(gain float64, v int) {
	h.entries = append(h.entries, klEntry{gain, v})
	i := len(h.entries) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.entries[i], h.entries[p]) {
			break
		}
		h.entries[i], h.entries[p] = h.entries[p], h.entries[i]
		i = p
	}
}

//chaos:hotpath
func (h *klHeap) pop() klEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h.entries) && h.before(h.entries[l], h.entries[m]) {
			m = l
		}
		if r < len(h.entries) && h.before(h.entries[r], h.entries[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.entries[i], h.entries[m] = h.entries[m], h.entries[i]
		i = m
	}
	return top
}

// CutEdges counts edges crossing parts in a full partition map (test
// and experiment helper; works on the gathered graph).
func CutEdges(xadj, adj []int, part []int) int {
	cut := 0
	for v := 0; v+1 < len(xadj); v++ {
		for _, u := range adj[xadj[v]:xadj[v+1]] {
			if part[u] != part[v] {
				cut++
			}
		}
	}
	return cut / 2
}
