package partition

import (
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// klRefine improves a bisection with a Kernighan-Lin / Fiduccia-
// Mattheyses style boundary pass: repeatedly move the vertex with the
// best edge-cut gain to the other side, subject to a weight-balance
// constraint, keeping the best prefix of moves. Runs a small fixed
// number of passes; deterministic (ties broken by original vertex id).
func klRefine(sg *subgraph, side []bool, targetLeftW float64) {
	const passes = 4
	const tol = 0.02 // allowed relative imbalance around the target

	totalW := 0.0
	for i := 0; i < sg.n; i++ {
		totalW += sg.w[i]
	}
	slack := tol * totalW

	leftW := 0.0
	for i := 0; i < sg.n; i++ {
		if side[i] {
			leftW += sg.w[i]
		}
	}

	gain := func(v int) int {
		// Cut-edge reduction when v switches sides.
		ext, intr := 0, 0
		for _, u := range sg.adj[sg.xadj[v]:sg.xadj[v+1]] {
			if side[u] == side[v] {
				intr++
			} else {
				ext++
			}
		}
		return ext - intr
	}

	for pass := 0; pass < passes; pass++ {
		locked := make([]bool, sg.n)
		type move struct {
			v    int
			gain int
		}
		var seq []move
		cum, best, bestAt := 0, 0, -1
		curLeftW := leftW

		for step := 0; step < sg.n; step++ {
			bv, bg := -1, -1<<30
			for v := 0; v < sg.n; v++ {
				if locked[v] {
					continue
				}
				// Balance feasibility of moving v.
				nl := curLeftW
				if side[v] {
					nl -= sg.w[v]
				} else {
					nl += sg.w[v]
				}
				if nl < targetLeftW-slack || nl > targetLeftW+slack {
					continue
				}
				g := gain(v)
				if g > bg || (g == bg && bv >= 0 && sg.orig[v] < sg.orig[bv]) {
					bv, bg = v, g
				}
			}
			if bv < 0 {
				break
			}
			locked[bv] = true
			if side[bv] {
				curLeftW -= sg.w[bv]
			} else {
				curLeftW += sg.w[bv]
			}
			side[bv] = !side[bv]
			cum += bg
			seq = append(seq, move{bv, bg})
			if cum > best {
				best, bestAt = cum, len(seq)-1
			}
			if bg < 0 && len(seq)-bestAt > 8 {
				break // hill gone cold
			}
		}
		sg.flops += int64(len(seq) * sg.n) // selection scans

		// Roll back moves past the best prefix.
		for i := len(seq) - 1; i > bestAt; i-- {
			v := seq[i].v
			if side[v] {
				leftW -= sg.w[v]
			}
			side[v] = !side[v]
			if side[v] {
				leftW += sg.w[v]
			}
		}
		// Recompute leftW exactly (cheap, avoids drift).
		leftW = 0
		for i := 0; i < sg.n; i++ {
			if side[i] {
				leftW += sg.w[i]
			}
		}
		if best <= 0 {
			break
		}
	}
}

// KL is a standalone recursive Kernighan-Lin partitioner (Kernighan &
// Lin, the paper's reference [15]): each group is seeded with a
// breadth-first region-growing split — which already respects
// connectivity — and then improved with the boundary-refinement pass
// klRefine. Purely combinatorial: it needs LINK but neither GEOMETRY
// nor an eigensolver, making it the cheap connectivity-based
// alternative to RSB. Like RSB it runs on the gathered graph on rank 0
// and broadcasts the map; its (much smaller) cost is charged to every
// rank.
type KL struct{}

func (KL) Name() string { return "KL" }

func (KL) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: KL requires a GeoCoL LINK component")
	}
	f := g.Gather(c)

	var part []int
	var flops int64
	if c.Rank() == 0 {
		part = make([]int, f.N)
		verts := make([]int, f.N)
		for i := range verts {
			verts[i] = i
		}
		type task struct {
			verts  []int
			partLo int
			nparts int
		}
		stack := []task{{verts, 0, nparts}}
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if t.nparts == 1 {
				for _, v := range t.verts {
					part[v] = t.partLo
				}
				continue
			}
			nl := halves(t.nparts)
			left, right, fl := klBisect(f, t.verts, float64(nl)/float64(t.nparts))
			flops += fl
			stack = append(stack,
				task{right, t.partLo + nl, t.nparts - nl},
				task{left, t.partLo, nl},
			)
		}
		part = append(part, int(flops))
	}
	part = c.BroadcastInts(0, part)
	c.Flops(part[len(part)-1])
	part = part[:len(part)-1]

	lo := g.Home.Lo(c.Rank())
	out := make([]int, g.LocalN(c.Rank()))
	for l := range out {
		out[l] = part[lo+l]
	}
	return out
}

// klBisect seeds a split by breadth-first region growing from the
// lowest-numbered vertex until the target weight is reached, then
// refines it with klRefine.
func klBisect(f *geocol.Full, verts []int, frac float64) (left, right []int, flops int64) {
	sg := induce(f, verts)
	totalW := 0.0
	for i := 0; i < sg.n; i++ {
		totalW += sg.w[i]
	}
	target := totalW * frac

	side := make([]bool, sg.n)
	visited := make([]bool, sg.n)
	grown := 0.0
	// BFS over possibly disconnected subgraphs, restarting from the
	// lowest unvisited vertex.
	var queue []int
	next := 0
	for grown < target {
		if len(queue) == 0 {
			for next < sg.n && visited[next] {
				next++
			}
			if next >= sg.n {
				break
			}
			queue = append(queue, next)
			visited[next] = true
		}
		v := queue[0]
		queue = queue[1:]
		if grown >= target {
			break
		}
		side[v] = true
		grown += sg.w[v]
		for _, u := range sg.adj[sg.xadj[v]:sg.xadj[v+1]] {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	sg.flops += int64(sg.n + len(sg.adj))

	klRefine(sg, side, target)

	for i := 0; i < sg.n; i++ {
		if side[i] {
			left = append(left, sg.orig[i])
		} else {
			right = append(right, sg.orig[i])
		}
	}
	return left, right, sg.flops
}

// CutEdges counts edges crossing parts in a full partition map (test
// and experiment helper; works on the gathered graph).
func CutEdges(xadj, adj []int, part []int) int {
	cut := 0
	for v := 0; v+1 < len(xadj); v++ {
		for _, u := range adj[xadj[v]:xadj[v+1]] {
			if part[u] != part[v] {
				cut++
			}
		}
	}
	return cut / 2
}
