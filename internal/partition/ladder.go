package partition

import (
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// This file is the incremental-repartitioning support of MULTILEVEL:
// a cold run through PartitionLadder retains its distributed
// coarsening ladder, and Repartition warm-starts a slightly changed
// graph from it — the old partition is restricted down the retained
// ladder, polished k-way on the cached coarsest graph, and projected
// back up with FM refinement at every level, the finest level running
// on the NEW graph. The expensive cold-run stages — ghost-exchange
// construction, the 4-round distributed matching handshake per level,
// the distributed contraction per level, and the gathered serial
// V-cycle solve — are all skipped, which is what makes a warm
// repartition a fraction of a cold one (core.Repartitioner is the
// runtime handle that drives this; the paper's Section 3 reuse guard
// extended from "skip when unchanged" to "re-refine when slightly
// changed").

// Ladder is the retained coarsening ladder of a parallel MULTILEVEL
// run: per level the fine graph, its ghost-exchange pattern and the
// fine-to-coarse map, plus the coarsest (gathered-solve) graph and the
// scratch arena of the run that built it — warm Repartition epochs
// re-run restriction, polish and uncoarsening refinement on the
// already-grown buffers. A Ladder is per-rank state, like the Graph
// slices it holds.
type Ladder struct {
	n        int
	nparts   int
	levels   []plevel
	coarsest *geocol.Graph
	ar       *arena
}

// N returns the global vertex count of the ladder's finest graph.
func (ld *Ladder) N() int { return ld.n }

// NParts returns the part count the ladder was built for.
func (ld *Ladder) NParts() int { return ld.nparts }

// Depth returns the number of coarsening levels retained.
func (ld *Ladder) Depth() int { return len(ld.levels) }

// Bytes reports the approximate heap footprint of the retained ladder
// on this rank: the cached fine graphs, ghost-exchange patterns and
// fine-to-coarse maps of every level plus the coarsest graph. The
// scratch arena is excluded — it is bounded by the largest level the
// ladder already accounts for. The service layer's cache charges
// retained ladders against its memory cap with it.
func (ld *Ladder) Bytes() int {
	if ld == nil {
		return 0
	}
	b := ld.coarsest.Bytes()
	for i := range ld.levels {
		lv := &ld.levels[i]
		b += lv.fine.Bytes() + lv.ge.Bytes() + 8*len(lv.cmap)
	}
	return b
}

// PartitionLadder runs Partition and, when the distributed multilevel
// path was taken, additionally retains the coarsening ladder for
// incremental reuse; the ladder is nil when the serial
// gather-everything path ran (single rank, or a graph below
// ParallelThreshold — there is no k-way ladder to retain in the
// per-bisection serial V-cycle). This is the single owner of the
// serial-vs-distributed dispatch rule; Partition delegates here, so a
// cold run retains a ladder exactly when the distributed path runs.
// Collective.
func (ml Multilevel) PartitionLadder(c *machine.Ctx, g *geocol.Graph, nparts int) ([]int, *Ladder) {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: MULTILEVEL requires a GeoCoL LINK component")
	}
	thr := ml.parallelThreshold()
	if c.Procs() > 1 && thr > 0 && g.N >= thr && g.N > ml.serialTo(nparts) {
		return ml.parallelPartitionLadder(c, g, nparts)
	}
	// One scratch arena per call on the serial path too: the recursion
	// tree shares contraction and KL-refinement buffers.
	ar := &arena{}
	return serialBisectPartition(c, g, nparts, ml.bisecter(ar)), nil
}

// Reusable reports whether the ladder can warm-start a repartition of
// g into nparts parts: the vertex space and part count must match
// (edges may have changed — that is the point).
func (ld *Ladder) Reusable(g *geocol.Graph, nparts int) bool {
	return ld != nil && len(ld.levels) > 0 && ld.n == g.N && ld.nparts == nparts
}

// Repartition warm-starts a repartition of gNew — the same vertex
// space as the ladder's finest graph with a fraction of its edges
// changed — from the retained ladder and the previous partition
// oldPart (home-local, as returned by the cold run):
//
//  1. Restrict: oldPart is restricted down the retained ladder level
//     by level (restrictPart), giving every cached coarse graph a
//     partition consistent with the previous answer.
//  2. Polish: the cached coarsest graph gets the serial k-way FM
//     polish — orders of magnitude cheaper than the cold run's
//     gathered serial V-cycle solve, because the partition to fix up
//     already exists.
//  3. Uncoarsen: the partition is projected back up (projectPart) and
//     refined at every level. Interior levels refine over the cached
//     fine graphs — their edge weights are slightly stale, which is
//     fine for a refinement heuristic — while the finest level
//     refines over gNew with a fresh ghost exchange, so the final
//     boundary optimization sees the true new connectivity.
//
// The matching handshakes, distributed contractions and the gathered
// spectral solve of a cold run are all skipped. Falls back to a full
// cold Partition when the ladder is not reusable for (gNew, nparts).
// Collective; the returned slice is home-local like Partition's.
func (ml Multilevel) Repartition(c *machine.Ctx, gNew *geocol.Graph, nparts int, ld *Ladder, oldPart []int) []int {
	// The fallback decision must itself be collective: Reusable and the
	// ladder shape are replicated, but the oldPart length check is
	// rank-local, and a lone rank going cold while its peers warm-start
	// would wedge every collective below. A one-int min-reduce makes
	// the branch uniform by construction.
	warm := 0
	if ld.Reusable(gNew, nparts) && len(oldPart) == gNew.LocalN(c.Rank()) {
		warm = 1
	}
	allWarm := c.AllReduceInt(warm, func(a, b int) int {
		if a < b {
			return a
		}
		return b
	})
	if allWarm == 0 {
		return ml.Partition(c, gNew, nparts)
	}

	// Warm epochs run on the cold run's retained arena: every scratch
	// buffer below is already at steady-state capacity. The nil-guard
	// covers hand-built ladders (tests) that never saw a cold run.
	ar := ld.ar
	if ar == nil {
		ar = &arena{}
		ld.ar = ar
	}

	// Restrict the previous partition down the retained ladder. Mixed
	// clusters (boundary clusters whose members ended in different
	// parts after fine-level refinement) take one member's part; the
	// uncoarsening refinement repairs those boundaries.
	part := append([]int(nil), oldPart...)
	for i := range ld.levels {
		lv := ld.levels[i]
		part = restrictPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, part)
	}

	serialKway(c, ar, ld.coarsest, part, nparts, 8, ml.tol())

	for i := len(ld.levels) - 1; i >= 0; i-- {
		lv := ld.levels[i]
		part = projectPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, part)
		if i == 0 {
			ge := geocol.NewGhostExchange(c, gNew)
			ml.refineLevel(c, ar, gNew, ge, part, nparts, true)
		} else {
			ml.refineLevel(c, ar, lv.fine, lv.ge, part, nparts, false)
		}
	}
	return part
}
