package partition

import (
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// Multilevel is the multilevel graph partitioner (Hendrickson & Leland's
// Chaco scheme, later METIS): recursive bisection where every bisection
// runs a V-cycle instead of solving on the full graph —
//
//  1. Coarsen: heavy-edge matching collapses the graph level by level
//     (coarsen.go), aggregating vertex and edge weights so each coarse
//     graph stays faithful to the finest one.
//  2. Partition: once the graph is small, the existing RSB/Lanczos
//     machinery (fiedlerSide) bisects it at the weighted median of its
//     Fiedler vector. The weighted Laplacian sees the aggregated edge
//     weights, so the coarse solve approximates the fine spectral cut.
//  3. Uncoarsen: the bisection is projected back up level by level, and
//     the existing Kernighan-Lin boundary refiner (klRefine) polishes it
//     at every level, where a handful of boundary moves recover most of
//     the quality a full-graph spectral solve would have found.
//
// The payoff is the paper's partitioning bottleneck removed: the Lanczos
// iteration — the dominant cost in the paper's Table 2 SET BY
// PARTITIONING phase — only ever runs on a graph of about CoarsenTo
// vertices, so MULTILEVEL delivers near-RSB edge cuts at a small
// fraction of RSB's cost (see partition/bench_test.go and
// quality_test.go). Like RSB and KL it consumes LINK connectivity and
// honors LOAD weights.
//
// On a single rank (or below ParallelThreshold) the V-cycle runs
// serially on the gathered graph with the replicated-cost convention
// described on RSB. On larger machines the coarsening ladder instead
// runs distributed over the block-distributed GeoCoL graph
// (pmultilevel.go): only the coarsest level is gathered for the
// spectral solve, and the uncoarsening is refined by the
// hill-climbing parallel FM of prefine.go, so the partitioner's
// virtual time falls with the rank count instead of staying flat
// while the cut stays within 5% of the serial V-cycle's. The
// refinement stack and its tuning knobs are toured in
// docs/REFINEMENT.md.
type Multilevel struct {
	// CoarsenTo stops coarsening once a level has at most this many
	// vertices (0 means the default of 100).
	CoarsenTo int
	// ParallelThreshold is the minimum global vertex count for the
	// distributed coarsening path (pmultilevel.go), which is the
	// default whenever the machine has more than one rank and the graph
	// clears it. 0 means the default of 2048; negative forces the
	// serial gather-everything path at any size.
	ParallelThreshold int
	// FMPasses is the per-level pass budget of the hill-climbing
	// parallel FM refiner used during distributed uncoarsening
	// (prefine.go). 0 means the default (3 passes, 4 at the finest
	// level); negative selects the legacy greedy refiner (distRefine)
	// with its larger 16×CoarsenTo serial handoff.
	FMPasses int
	// VCycle enables a second, partition-preserving V-cycle after
	// uncoarsening (vcycleRefine): the refined partition is coarsened
	// again with matching restricted to same-part pairs and refined at
	// every scale on the way back up. A small cut improvement for
	// roughly double the distributed partitioning cost; off by
	// default. Only effective in the FM configuration — with
	// FMPasses < 0 (legacy greedy refiner) the knob is ignored.
	VCycle bool
	// Seed salts the randomized (but symmetric) tie-breaking of the
	// distributed heavy-edge matching, decorrelating the ladders of
	// repeated runs. 0 keeps the default stream.
	Seed uint64
	// Imbalance is the balance tolerance of the distributed k-way
	// refinement (fractional: 0.07 allows part weights within ±7% of
	// ideal). 0 means the default of 0.07; it must stay below 0.5.
	Imbalance float64
}

func (Multilevel) Name() string { return "MULTILEVEL" }

// Capabilities: MULTILEVEL consumes LINK connectivity, coarsens
// distributedly on multi-rank machines, and accepts the Spec tuning
// knobs.
func (Multilevel) Capabilities() Capabilities {
	return Capabilities{NeedsLink: true, Parallel: true, Tunable: true}
}

// tol resolves the Imbalance default for the distributed refiners.
func (ml Multilevel) tol() float64 {
	if ml.Imbalance == 0 {
		return 0.07
	}
	return ml.Imbalance
}

func (ml Multilevel) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	// One dispatch rule for both entry points: PartitionLadder owns the
	// serial-vs-distributed decision; Partition just drops the ladder.
	part, _ := ml.PartitionLadder(c, g, nparts)
	return part
}

// parallelThreshold resolves the ParallelThreshold default.
func (ml Multilevel) parallelThreshold() int {
	if ml.ParallelThreshold == 0 {
		return 2048
	}
	return ml.ParallelThreshold
}

// bisecter binds the run's arena to the bisect callback shape
// serialBisectPartition expects.
func (ml Multilevel) bisecter(ar *arena) func(f *geocol.Full, verts []int, frac float64) ([]int, []int, int64) {
	return func(f *geocol.Full, verts []int, frac float64) ([]int, []int, int64) {
		return ml.bisect(ar, f, verts, frac)
	}
}

// bisect runs one coarsen → spectral-bisect → uncoarsen+refine V-cycle
// on the subgraph induced by verts; ar supplies the contraction and
// KL-refinement scratch shared across the recursion tree.
func (ml Multilevel) bisect(ar *arena, f *geocol.Full, verts []int, frac float64) (left, right []int, flops int64) {
	coarsenTo := ml.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 100
	}
	sg := induce(f, verts)
	totalW := sg.totalWeight()
	target := totalW * frac

	// Coarsening phase. The cluster-weight cap (1% of the group) keeps
	// the coarsest median sweep within klRefine's 2% balance slack; the
	// stall check stops when matching no longer shrinks the graph
	// meaningfully (star-like or cap-bound regions).
	levels := []*subgraph{sg}
	var cmaps [][]int
	for cur := sg; cur.n > coarsenTo; {
		cmap, nc := heavyEdgeMatch(cur, totalW*0.01)
		if nc > cur.n*9/10 {
			break
		}
		next := contract(&ar.ct, cur, cmap, nc)
		cmaps = append(cmaps, cmap)
		levels = append(levels, next)
		cur = next
	}

	// Coarsest-level solve: the spectral split RSB would run, now on a
	// graph of ~coarsenTo vertices, followed by one refinement pass.
	coarsest := levels[len(levels)-1]
	side := fiedlerSide(coarsest, frac)
	klRefine(&ar.kl, coarsest, side, target)

	// Uncoarsening: project the side assignment through each matching
	// and let the KL refiner polish the boundary at every level. The
	// projection preserves the cut weight and the balance exactly, so
	// refinement only ever improves the partition. Interior levels get
	// a reduced pass budget — their boundary is re-refined at every
	// finer level — while the finest level gets the full one.
	for l := len(levels) - 2; l >= 0; l-- {
		fine := levels[l]
		cmap := cmaps[l]
		fineSide := make([]bool, fine.n)
		for v := range fineSide {
			fineSide[v] = side[cmap[v]]
		}
		fine.flops += int64(fine.n)
		passes := 1
		if l == 0 {
			passes = 4
		}
		klRefineN(&ar.kl, fine, fineSide, target, passes)
		side = fineSide
	}

	left, right = splitSides(sg, side)
	for _, lv := range levels {
		flops += lv.flops
	}
	return left, right, flops
}
