package partition

import (
	"testing"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// runParallelML partitions mesh m into nparts on a p-rank iPSC/860
// machine with MULTILEVEL and returns the maximum virtual time spent
// inside Partition across ranks plus the resulting edge cut.
func runParallelML(t *testing.T, m *mesh.Mesh, p, nparts int) (virtual float64, cut int) {
	t.Helper()
	pt, err := Lookup("MULTILEVEL")
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.IPSC860(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		t0 := c.Clock()
		part := pt.Partition(c, g, nparts)
		dt := c.MaxFloat(c.Clock() - t0)
		full := c.AllGatherInts(part)
		f := g.Gather(c)
		if c.Rank() == 0 {
			virtual = dt
			cut = CutEdges(f.XAdj, f.Adj, full)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return virtual, cut
}

// TestParallelMultilevelTimeScales is the tentpole's acceptance bar:
// on a >=20k-node mesh the distributed coarsening path's virtual
// (simulated) partitioning time must strictly decrease from P=1 (the
// serial gather-everything V-cycle) through P=8, while every parallel
// cut stays within 1.05x of the serial MULTILEVEL cut — tightened from
// the 1.15x the greedy refiner could manage, now that the uncoarsening
// runs the hill-climbing parallel FM (prefine.go) and the serial
// handoff sits at the ParallelThreshold knee. This is exactly the
// scaling the serial path cannot deliver: its replicated cost is flat
// in the machine size by construction.
func TestParallelMultilevelTimeScales(t *testing.T) {
	if testing.Short() {
		t.Skip("21952-node mesh partitioned at four machine sizes")
	}
	m := mesh.Generate(21000, 11) // 28^3 lattice: 21952 nodes
	const nparts = 8
	procs := []int{1, 2, 4, 8}
	times := make([]float64, len(procs))
	cuts := make([]int, len(procs))
	for i, p := range procs {
		times[i], cuts[i] = runParallelML(t, m, p, nparts)
		t.Logf("P=%d: partition %.3f virtual s, cut %d", p, times[i], cuts[i])
	}
	for i := 1; i < len(procs); i++ {
		if times[i] >= times[i-1] {
			t.Errorf("virtual partition time did not drop from P=%d (%.3fs) to P=%d (%.3fs)",
				procs[i-1], times[i-1], procs[i], times[i])
		}
	}
	serialCut := cuts[0]
	for i := 1; i < len(procs); i++ {
		if float64(cuts[i]) > 1.05*float64(serialCut) {
			t.Errorf("P=%d cut %d exceeds serial MULTILEVEL cut %d by more than 5%%",
				procs[i], cuts[i], serialCut)
		}
	}
}

// TestParallelMultilevelBalance checks the distributed path's balance:
// projection inherits the serial coarse solve's balance exactly (the
// contraction aggregates weights faithfully) and the distributed
// refinement budgets must keep every part within 10% of ideal.
func TestParallelMultilevelBalance(t *testing.T) {
	m := mesh.Generate(6000, 9)
	const p = 4
	pt, err := Lookup("MULTILEVEL")
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		part := c.AllGatherInts(pt.Partition(c, g, p))
		if c.Rank() == 0 {
			counts := make([]int, p)
			for _, x := range part {
				counts[x]++
			}
			ideal := m.NNode / p
			for r, n := range counts {
				if n < ideal*9/10 || n > ideal*11/10 {
					t.Errorf("part %d holds %d vertices, ideal %d", r, n, ideal)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelMultilevelDeterminism pins the collective contract on the
// parallel path: randomized tie-breaking is seeded and the handshake is
// bulk-synchronous, so the same mesh on the same machine must map
// identically on every run regardless of goroutine scheduling.
func TestParallelMultilevelDeterminism(t *testing.T) {
	m := mesh.Generate(4000, 3)
	run := func() []int {
		pt, err := Lookup("MULTILEVEL")
		if err != nil {
			t.Fatal(err)
		}
		var full []int
		err = machine.Run(machine.Zero(4), func(c *machine.Ctx) {
			eb := m.NEdge() / 4
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == 3 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			all := c.AllGatherInts(pt.Partition(c, g, 8))
			if c.Rank() == 0 {
				full = all
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return full
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel MULTILEVEL map differs across runs at vertex %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestParallelThresholdRouting pins the dispatch rule: a negative
// ParallelThreshold forces the serial path (whose result is identical
// at any machine size), and both paths produce full, in-range part
// assignments.
func TestParallelThresholdRouting(t *testing.T) {
	m := mesh.Generate(3000, 5)
	const p, nparts = 4, 4
	for _, ml := range []Multilevel{{ParallelThreshold: -1}, {ParallelThreshold: 1}} {
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			eb := m.NEdge() / p
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == p-1 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			part := ml.Partition(c, g, nparts)
			if len(part) != g.LocalN(c.Rank()) {
				panic("wrong local part length")
			}
			for _, q := range part {
				if q < 0 || q >= nparts {
					panic("part out of range")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
