package partition

import (
	"fmt"
	"sort"
	"sync"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/xrand"
)

// Partitioner maps GeoCoL vertices to parts. Partition returns the
// part of each home-resident vertex of g, aligned with g's home
// distribution. Implementations must be deterministic and collective.
type Partitioner interface {
	Name() string
	Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int
}

// Capabilities declares what a partitioner consumes and supports, so a
// Spec can be validated against the GeoCoL graph at the call site
// instead of panicking deep inside the library.
type Capabilities struct {
	// NeedsGeometry: consumes the GEOMETRY component (coordinates).
	NeedsGeometry bool
	// NeedsLink: consumes the LINK component (connectivity).
	NeedsLink bool
	// Parallel: the partitioner has a distributed path, so its virtual
	// time falls (or at least does not grow) with the rank count.
	Parallel bool
	// Tunable: accepts the multilevel tuning knobs of Spec (CoarsenTo,
	// ParallelThreshold, FMPasses, VCycle, Imbalance).
	Tunable bool
	// OutOfCore: the partitioner's own working state is bounded
	// independently of the edge count (streaming contract) — it can
	// serve graphs whose edge set never fits in memory when fed
	// through internal/stream's file path.
	OutOfCore bool
}

// PartitionerV2 is the v2 registry interface: a Partitioner that also
// reports its capabilities. All built-in partitioners implement it;
// legacy custom partitioners registered without capability metadata
// are treated as declaring no requirements (never rejected early).
type PartitionerV2 interface {
	Partitioner
	Capabilities() Capabilities
}

// Caps reports p's capabilities, or the zero Capabilities for a legacy
// v1 partitioner that does not declare any.
func Caps(p Partitioner) Capabilities {
	if v2, ok := p.(PartitionerV2); ok {
		return v2.Capabilities()
	}
	return Capabilities{}
}

var (
	regMu    sync.RWMutex
	registry = map[string]Partitioner{}
)

// Register adds a partitioner under its Name; it replaces any previous
// entry, which is how a user links a customized partitioner. Safe for
// concurrent use with Lookup and Names.
func Register(p Partitioner) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[p.Name()] = p
}

// Lookup finds a partitioner by name (case-sensitive, conventionally
// upper-case, e.g. "RSB", "RCB", "BLOCK").
func Lookup(name string) (Partitioner, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("partition: unknown partitioner %q (have %v)", name, namesLocked())
	}
	return p, nil
}

// Names returns the registered partitioner names, sorted. Safe for
// concurrent use with Register.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

// namesLocked gathers the sorted name list; callers hold regMu.
func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(BlockPartitioner{})
	Register(RandomPartitioner{Seed: 12345})
	Register(RCB{})
	Register(Inertial{})
	Register(RSB{})
	Register(RSB{Refine: true})
	Register(KL{})
	Register(Multilevel{})
	Register(Streaming{})
}

// serialBisectPartition is the shared driver of the serial recursive-
// bisection partitioners (RSB, KL, MULTILEVEL): the GeoCoL graph is
// gathered (charged as graph-generation cost), rank 0 recursively
// bisects the vertex set with bisect and broadcasts the map together
// with the flop count of the solve, and every rank's clock is charged
// the full cost — the replicated-cost convention explained on RSB.
func serialBisectPartition(c *machine.Ctx, g *geocol.Graph, nparts int,
	bisect func(f *geocol.Full, verts []int, frac float64) (left, right []int, flops int64)) []int {
	f := g.Gather(c)

	var part []int
	if c.Rank() == 0 {
		part = make([]int, f.N)
		var flops int64
		verts := make([]int, f.N)
		for i := range verts {
			verts[i] = i
		}
		stack := []splitTask{{verts: verts, partLo: 0, nparts: nparts}}
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if t.nparts == 1 {
				for _, v := range t.verts {
					part[v] = t.partLo
				}
				continue
			}
			nl := halves(t.nparts)
			left, right, fl := bisect(f, t.verts, float64(nl)/float64(t.nparts))
			flops += fl
			stack = append(stack,
				splitTask{verts: right, partLo: t.partLo + nl, nparts: t.nparts - nl},
				splitTask{verts: left, partLo: t.partLo, nparts: nl},
			)
		}
		part = append(part, int(flops))
	}
	part = c.BroadcastInts(0, part)
	c.Flops(part[len(part)-1])
	part = part[:len(part)-1]

	// Return this rank's home-resident slice.
	lo := g.Home.Lo(c.Rank())
	out := make([]int, g.LocalN(c.Rank()))
	for l := range out {
		out[l] = part[lo+l]
	}
	return out
}

// checkArgs validates common preconditions.
func checkArgs(g *geocol.Graph, nparts int) {
	if nparts < 1 {
		panic(fmt.Sprintf("partition: nparts = %d", nparts))
	}
	if g.N == 0 {
		return
	}
}

// BlockPartitioner assigns contiguous index ranges to parts — the
// naive HPF BLOCK mapping used as the paper's baseline (Table 4).
type BlockPartitioner struct{}

func (BlockPartitioner) Name() string { return "BLOCK" }

// Capabilities: BLOCK consumes nothing and is trivially distributed.
func (BlockPartitioner) Capabilities() Capabilities { return Capabilities{Parallel: true} }

func (BlockPartitioner) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	b := dist.NewBlock(g.N, nparts)
	localN := g.LocalN(c.Rank())
	lo := g.Home.Lo(c.Rank())
	part := make([]int, localN)
	for l := range part {
		part[l] = b.Owner(lo + l)
	}
	c.Words(localN)
	return part
}

// RandomPartitioner scatters vertices pseudo-randomly; the worst
// reasonable baseline for communication volume.
type RandomPartitioner struct {
	Seed uint64
}

func (RandomPartitioner) Name() string { return "RANDOM" }

// Capabilities: RANDOM consumes nothing and is trivially distributed.
func (RandomPartitioner) Capabilities() Capabilities { return Capabilities{Parallel: true} }

func (rp RandomPartitioner) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	localN := g.LocalN(c.Rank())
	lo := g.Home.Lo(c.Rank())
	part := make([]int, localN)
	for l := range part {
		part[l] = int(xrand.Hash64(uint64(lo+l)^rp.Seed) % uint64(nparts))
	}
	c.Words(localN)
	return part
}

// splitTask describes one node of the recursive bisection tree: the
// set of local vertices (home-local indices) still to be divided among
// parts [partLo, partLo+nparts).
type splitTask struct {
	verts  []int
	partLo int
	nparts int
}

// weightedKeySplit divides verts into (left, right) so that the total
// vertex weight of left approximates frac of the group weight, using a
// distributed binary search on the key values. Ties are broken
// deterministically by perturbing each key with a vertex-unique epsilon
// too small to disturb geometry. Collective.
func weightedKeySplit(c *machine.Ctx, g *geocol.Graph, verts []int, key []float64, frac float64) (left, right []int) {
	lo := g.Home.Lo(c.Rank())
	// Perturb keys for deterministic tie-breaking.
	kmin, kmax := 1e308, -1e308
	for _, v := range verts {
		if key[v] < kmin {
			kmin = key[v]
		}
		if key[v] > kmax {
			kmax = key[v]
		}
	}
	kmin = c.MinFloat(kmin)
	kmax = c.MaxFloat(kmax)
	span := kmax - kmin
	if span <= 0 {
		span = 1
	}
	eps := span * 1e-12 / float64(g.N+1)
	pkey := make(map[int]float64, len(verts))
	wsum := 0.0
	for _, v := range verts {
		pkey[v] = key[v] + eps*float64(lo+v)
		wsum += g.Weight(v)
	}
	totalW := c.SumFloat(wsum)
	target := totalW * frac

	a, b := kmin-2*eps*float64(g.N+1), kmax+2*eps*float64(g.N+1)
	for it := 0; it < 64; it++ {
		mid := (a + b) / 2
		wl := 0.0
		for _, v := range verts {
			if pkey[v] <= mid {
				wl += g.Weight(v)
			}
		}
		wl = c.SumFloat(wl)
		if wl < target {
			a = mid
		} else {
			b = mid
		}
	}
	cut := b
	for _, v := range verts {
		if pkey[v] <= cut {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	c.Words(3 * len(verts))
	return left, right
}

// halves returns the left part count for splitting nparts.
func halves(nparts int) int { return nparts / 2 }
