package partition

import (
	"math"
	"testing"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/xrand"
)

// gridFixture builds a gx × gy grid graph with jittered coordinates as
// a GeoCoL structure, distributed over the calling machine. Returns the
// local graph plus the full edge lists (identical on all ranks) for
// reference computations.
func gridFixture(c *machine.Ctx, gx, gy int, withGeom, withLink, withLoad bool) *geocol.Graph {
	n := gx * gy
	home := dist.NewBlock(n, c.Procs())
	lo, hi := home.Lo(c.Rank()), home.Hi(c.Rank())

	var opts []geocol.Option
	if withGeom {
		xs := make([]float64, hi-lo)
		ys := make([]float64, hi-lo)
		for l := 0; l < hi-lo; l++ {
			v := lo + l
			j := xrand.Hash64(uint64(v))
			xs[l] = float64(v%gx) + 1e-4*float64(j%1000)
			ys[l] = float64(v/gx) + 1e-4*float64((j/1000)%1000)
		}
		opts = append(opts, geocol.WithGeometry(xs, ys))
	}
	if withLink {
		// Each rank contributes the edges whose lexicographically
		// first endpoint it homes.
		var e1, e2 []int
		for v := lo; v < hi; v++ {
			x, y := v%gx, v/gx
			if x+1 < gx {
				e1 = append(e1, v)
				e2 = append(e2, v+1)
			}
			if y+1 < gy {
				e1 = append(e1, v)
				e2 = append(e2, v+gx)
			}
		}
		opts = append(opts, geocol.WithLink(e1, e2))
	}
	if withLoad {
		w := make([]float64, hi-lo)
		for l := range w {
			w[l] = 1 + float64((lo+l)%4) // weights 1..4
		}
		opts = append(opts, geocol.WithLoad(w))
	}
	return geocol.Build(c, n, opts...)
}

// gatherParts collects every rank's local part slice into the global
// map array (identical on all ranks).
func gatherParts(c *machine.Ctx, part []int) []int {
	return c.AllGatherInts(part)
}

// checkBalance verifies that part weights are within frac of ideal.
func checkBalance(t *testing.T, part []int, w []float64, nparts int, frac float64) {
	t.Helper()
	tot := 0.0
	pw := make([]float64, nparts)
	for v, p := range part {
		if p < 0 || p >= nparts {
			t.Fatalf("part[%d] = %d out of range", v, p)
		}
		wt := 1.0
		if w != nil {
			wt = w[v]
		}
		pw[p] += wt
		tot += wt
	}
	ideal := tot / float64(nparts)
	for p, x := range pw {
		if math.Abs(x-ideal) > frac*ideal+1 {
			t.Errorf("part %d weight %v, ideal %v (tolerance %v)", p, x, ideal, frac*ideal+1)
		}
	}
}

func gridEdges(gx, gy int) (xadj, adj []int) {
	n := gx * gy
	var lists [][]int = make([][]int, n)
	addE := func(u, v int) { lists[u] = append(lists[u], v); lists[v] = append(lists[v], u) }
	for v := 0; v < n; v++ {
		x, y := v%gx, v/gx
		if x+1 < gx {
			addE(v, v+1)
		}
		if y+1 < gy {
			addE(v, v+gx)
		}
	}
	xadj = make([]int, n+1)
	for v := 0; v < n; v++ {
		adj = append(adj, lists[v]...)
		xadj[v+1] = len(adj)
	}
	return
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"BLOCK", "RANDOM", "RCB", "INERTIAL", "RSB", "RSB-KL"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Error("Lookup of unknown partitioner succeeded")
	}
}

type fakePart struct{}

func (fakePart) Name() string { return "CUSTOM" }
func (fakePart) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	return make([]int, g.LocalN(c.Rank()))
}

func TestRegisterCustomPartitioner(t *testing.T) {
	Register(fakePart{})
	p, err := Lookup("CUSTOM")
	if err != nil || p.Name() != "CUSTOM" {
		t.Fatalf("custom partitioner not registered: %v", err)
	}
}

func TestBlockPartitioner(t *testing.T) {
	const p = 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 8, 8, false, false, false)
		part := gatherParts(c, BlockPartitioner{}.Partition(c, g, p))
		checkBalance(t, part, nil, p, 0.01)
		// Contiguity: parts must be non-decreasing over global index.
		for v := 1; v < len(part); v++ {
			if part[v] < part[v-1] {
				t.Fatalf("BLOCK not contiguous at %d", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomPartitionerRangeAndDeterminism(t *testing.T) {
	const p = 3
	var first []int
	for trial := 0; trial < 2; trial++ {
		var got []int
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			g := gridFixture(c, 6, 6, false, false, false)
			part := gatherParts(c, RandomPartitioner{Seed: 9}.Partition(c, g, 5))
			if c.Rank() == 0 {
				got = part
			}
			for _, x := range part {
				if x < 0 || x >= 5 {
					t.Errorf("random part %d out of range", x)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = got
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatal("RANDOM partitioner not deterministic")
				}
			}
		}
	}
}

func TestRCBBalanceAndLocality(t *testing.T) {
	const p = 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 16, 16, true, false, false)
		part := gatherParts(c, RCB{}.Partition(c, g, p))
		checkBalance(t, part, nil, p, 0.02)
		if c.Rank() == 0 {
			xadj, adj := gridEdges(16, 16)
			cutRCB := CutEdges(xadj, adj, part)
			// A 4-way geometric split of a 16x16 grid should cut on
			// the order of 2*16 edges; random would cut ~3/4 of 480.
			if cutRCB > 80 {
				t.Errorf("RCB cut %d edges, expected geometric locality (< 80)", cutRCB)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRCBNonPowerOfTwoParts(t *testing.T) {
	const p = 3
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 12, 12, true, false, false)
		part := gatherParts(c, RCB{}.Partition(c, g, 3))
		checkBalance(t, part, nil, 3, 0.03)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRCBHonorsLoadWeights(t *testing.T) {
	const p = 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 10, 10, true, false, true)
		localPart := RCB{}.Partition(c, g, p)
		part := gatherParts(c, localPart)
		w := make([]float64, 100)
		for v := range w {
			w[v] = 1 + float64(v%4)
		}
		checkBalance(t, part, w, p, 0.05)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRCBRequiresGeometry(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		g := gridFixture(c, 4, 4, false, true, false)
		RCB{}.Partition(c, g, 2)
	})
	if err == nil {
		t.Fatal("RCB without GEOMETRY should fail")
	}
}

func TestInertialBalance(t *testing.T) {
	const p = 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 16, 16, true, false, false)
		part := gatherParts(c, Inertial{}.Partition(c, g, p))
		checkBalance(t, part, nil, p, 0.02)
		if c.Rank() == 0 {
			xadj, adj := gridEdges(16, 16)
			if cut := CutEdges(xadj, adj, part); cut > 100 {
				t.Errorf("INERTIAL cut %d edges", cut)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRSBBalanceAndQuality(t *testing.T) {
	const p = 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 12, 12, false, true, false)
		part := gatherParts(c, RSB{}.Partition(c, g, p))
		checkBalance(t, part, nil, p, 0.05)
		if c.Rank() == 0 {
			xadj, adj := gridEdges(12, 12)
			cut := CutEdges(xadj, adj, part)
			// Spectral 4-way split of 12x12 grid: near-optimal is
			// ~24; anything under 60 shows real locality (total 264).
			if cut > 60 {
				t.Errorf("RSB cut %d edges", cut)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRSBKLNotWorseThanRSB(t *testing.T) {
	const p = 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		g := gridFixture(c, 12, 12, false, true, false)
		plain := gatherParts(c, RSB{}.Partition(c, g, 4))
		refined := gatherParts(c, RSB{Refine: true}.Partition(c, g, 4))
		if c.Rank() == 0 {
			xadj, adj := gridEdges(12, 12)
			c1, c2 := CutEdges(xadj, adj, plain), CutEdges(xadj, adj, refined)
			if c2 > c1 {
				t.Errorf("KL refinement worsened cut: %d -> %d", c1, c2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRSBRequiresLink(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		g := gridFixture(c, 4, 4, true, false, false)
		RSB{}.Partition(c, g, 2)
	})
	if err == nil {
		t.Fatal("RSB without LINK should fail")
	}
}

func TestPartitionersAgreeAcrossRanks(t *testing.T) {
	// The map array must be identical no matter which rank assembled
	// it (SPMD consistency).
	const p = 4
	for _, name := range []string{"BLOCK", "RCB", "RSB", "INERTIAL"} {
		pt, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]int, p)
		err = machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			g := gridFixture(c, 8, 8, true, true, false)
			part := gatherParts(c, pt.Partition(c, g, p))
			results[c.Rank()] = part
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r := 1; r < p; r++ {
			for v := range results[0] {
				if results[r][v] != results[0][v] {
					t.Fatalf("%s: ranks 0 and %d disagree at vertex %d", name, r, v)
				}
			}
		}
	}
}

func TestFiedlerPathGraph(t *testing.T) {
	// The Fiedler vector of a path graph is monotone (cos profile),
	// so the spectral split of a path must be its two halves.
	const n = 40
	sg := &subgraph{n: n, orig: make([]int, n), w: make([]float64, n)}
	sg.xadj = make([]int, n+1)
	for i := 0; i < n; i++ {
		sg.orig[i] = i
		sg.w[i] = 1
		if i > 0 {
			sg.adj = append(sg.adj, i-1)
		}
		if i < n-1 {
			sg.adj = append(sg.adj, i+1)
		}
		sg.xadj[i+1] = len(sg.adj)
	}
	fv := sg.fiedler(7)
	// All values on one half must be on the same side of the median.
	lessFirst := 0
	for i := 0; i < n/2; i++ {
		if fv[i] < fv[n-1-i] {
			lessFirst++
		}
	}
	if lessFirst != 0 && lessFirst != n/2 {
		t.Errorf("Fiedler vector of path not monotone-ish: %d/%d", lessFirst, n/2)
	}
}

func TestTql2KnownEigenvalues(t *testing.T) {
	// Tridiagonal with diag 2, offdiag -1 (n=4): eigenvalues
	// 2-2cos(kπ/5), k=1..4.
	d := []float64{2, 2, 2, 2}
	e := []float64{0, -1, -1, -1}
	z := identity(4)
	tql2(d, e, z)
	var want []float64
	for k := 1; k <= 4; k++ {
		want = append(want, 2-2*math.Cos(float64(k)*math.Pi/5))
	}
	// Sort both.
	for i := range d {
		for j := i + 1; j < len(d); j++ {
			if d[j] < d[i] {
				d[i], d[j] = d[j], d[i]
			}
		}
	}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-9 {
			t.Errorf("eigenvalue %d = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestCutEdges(t *testing.T) {
	xadj, adj := gridEdges(2, 2) // square: 4 edges
	if tot := CutEdges(xadj, adj, []int{0, 0, 0, 0}); tot != 0 {
		t.Errorf("uniform partition cut %d", tot)
	}
	if tot := CutEdges(xadj, adj, []int{0, 1, 0, 1}); tot != 2 {
		t.Errorf("checkerboard-ish cut %d, want 2", tot)
	}
	if tot := CutEdges(xadj, adj, []int{0, 1, 2, 3}); tot != 4 {
		t.Errorf("all-distinct cut %d, want 4", tot)
	}
}

func TestNamesIncludesBuiltins(t *testing.T) {
	names := Names()
	want := map[string]bool{"BLOCK": true, "RCB": true, "RSB": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("Names() missing %v (got %v)", want, names)
	}
}
