package partition

import (
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/xrand"
)

// This file implements the distributed half of the multilevel
// coarsening: heavy-edge matching over the block-distributed GeoCoL
// graph, with the cross-rank handshake resolved by AlltoAll exchanges,
// plus the global numbering of the resulting coarse vertices. Together
// with geocol.BuildCoarse this forms one level of the parallel
// coarsening ladder (pmultilevel.go) — the per-rank work is
// proportional to the rank's slice of the graph, which is what makes
// the partitioner's virtual time fall with the processor count.

// matchRounds is the number of handshake rounds one distributed
// matching runs; vertices still unmatched afterwards survive as
// singleton clusters (the next level retries them with fresh
// tie-breaking salt).
const matchRounds = 4

// distHeavyEdgeMatch performs distributed heavy-edge matching on the
// block-distributed graph. Each round, every unmatched home vertex
// selects its heaviest eligible edge — ties broken by a randomized but
// symmetric per-edge score (internal/xrand), so both endpoints rank
// their shared edge identically — and proposes along it. An edge is
// matched exactly when both endpoints select it (the locally-dominant
// edge criterion of Manne & Bisseling). The handshake needs no
// acknowledgment round: a proposal for edge (u,v) arriving at u's owner
// carries the fact "v selected u", and the owner knows locally whether
// u selected v, so both owners decide the same match from the crossing
// proposals. maxW caps the combined weight of a matched pair (<= 0
// disables the cap), keeping coarse vertices small enough for the
// coarsest-level balance slack, exactly like the serial matcher.
//
// When part is non-nil the matching is RESTRICTED to same-part pairs
// (ghostPart must be the ghost copy of part): the resulting clustering
// preserves the partition, which is what multilevel V-cycle refinement
// coarsens with (pmultilevel.go vcycleRefine).
//
// Returns match[l] = global id of home-local vertex l's partner, or -1
// for vertices left as singletons. The returned slice is arena scratch:
// it stays valid only until the next matching on the same arena (its
// sole caller consumes it immediately via numberCoarse). Collective and
// deterministic: the rounds are bulk-synchronous and every tie-break is
// seeded.
//
//chaos:hotpath
func distHeavyEdgeMatch(c *machine.Ctx, s *matchScratch, g *geocol.Graph, ge *geocol.GhostExchange, maxW float64, seed uint64, part, ghostPart []int) []int {
	me := c.Rank()
	procs := c.Procs()
	lo := g.Home.Lo(me)
	localN := g.LocalN(me)

	homeW := growFloats(&s.homeW, localN)
	for l := range homeW {
		homeW[l] = g.Weight(l)
	}
	// Unit-weight levels (the finest, unless LOAD was given) never hit
	// the weight cap, so their ghost weights need not travel at all.
	var ghostW []float64
	if g.HasLoad && maxW > 0 {
		ghostW = ge.PushFloatsInto(c, homeW, s.ghostW)
		s.ghostW = ghostW
	}

	match := growInts(&s.match, localN)
	for l := range match {
		match[l] = -1
	}
	// Matched flags are monotone, so rounds after the first exchange
	// only the ids newly matched in the previous round (PushMarks): the
	// first round has nothing to push, and the total flag traffic of a
	// matching is one boundary's worth instead of one per round.
	ghostMatched := growInts(&s.ghostMatched, len(ge.IDs))
	newly := growBools(&s.newly, localN)
	for l := 0; l < localN; l++ {
		newly[l] = false
	}
	for i := range ghostMatched {
		ghostMatched[i] = 0
	}
	target := growInts(&s.target, localN)
	// Proposal scratch, reused across rounds and matchings ([:0] reset
	// keeps the steady-state capacity; AlltoAll copies payloads before
	// delivery).
	props := growRanks(&s.props, procs)

	for round := 0; round < matchRounds; round++ {
		if round > 0 {
			ge.PushMarks(c, newly, ghostMatched)
			for l := range newly {
				newly[l] = false
			}
		}
		salt := xrand.Hash64(seed + uint64(round)*0x9e3779b97f4a7c15)

		// Selection: heaviest eligible edge, ties by symmetric score.
		for l := 0; l < localN; l++ {
			target[l] = -1
			if match[l] >= 0 {
				continue
			}
			v := lo + l
			best := -1
			bestW := -1.0
			bestS := uint64(0)
			for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
				u := g.Adj[k]
				// Loc resolves u to home index or ghost slot with one
				// read — no ownership test, no id lookup.
				loc := ge.Loc[k]
				var uw float64
				var uTaken bool
				if loc >= 0 {
					uTaken = match[loc] >= 0
					uw = homeW[loc]
				} else {
					slot := -loc - 1
					uTaken = ghostMatched[slot] != 0
					if ghostW != nil {
						uw = ghostW[slot]
					} else {
						uw = 1
					}
				}
				if uTaken {
					continue
				}
				if part != nil {
					var q int
					if loc >= 0 {
						q = part[loc]
					} else {
						q = ghostPart[-loc-1]
					}
					if q != part[l] {
						continue // restricted matching stays inside parts
					}
				}
				if maxW > 0 && homeW[l]+uw > maxW {
					continue
				}
				ew := 1.0
				if g.EdgeW != nil {
					ew = g.EdgeW[k]
				}
				s := edgeScore(v, u, salt)
				if ew > bestW || (ew == bestW && (s > bestS || (s == bestS && u < best))) {
					best, bestW, bestS = u, ew, s
				}
			}
			target[l] = best
		}

		// Same-rank mutual selections match immediately; cross-rank
		// selections travel as (target, proposer) pairs.
		for r := range props {
			props[r] = props[r][:0]
		}
		for l := 0; l < localN; l++ {
			t := target[l]
			if t < 0 {
				continue
			}
			if g.Home.Owner(t) == me {
				if lo+l < t && target[t-lo] == lo+l {
					match[l], match[t-lo] = t, lo+l
					newly[l], newly[t-lo] = true, true
				}
			} else {
				props[g.Home.Owner(t)] = append(props[g.Home.Owner(t)], t, lo+l)
			}
		}
		in := c.AlltoAllInts(props)
		for r := 0; r < procs; r++ {
			pr := in[r]
			for i := 0; i+1 < len(pr); i += 2 {
				u, v := pr[i], pr[i+1] // v selected our u
				if match[u-lo] < 0 && target[u-lo] == v {
					match[u-lo] = v
					newly[u-lo] = true
				}
			}
		}
		c.Flops(2*len(g.Adj) + localN)
	}
	return match
}

// edgeScore is the symmetric randomized tie-break: both endpoints of an
// edge compute the same score, so mutual selection is likely even when
// all edge weights tie (the finest, unit-weight level).
//
//chaos:hotpath
func edgeScore(u, v int, salt uint64) uint64 {
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	return xrand.Hash64(uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)<<1 ^ salt)
}

// numberCoarse assigns global coarse vertex ids to the clusters of a
// distributed matching: each pair is numbered by the owner of its
// smaller endpoint, singletons by their own owner, ids dense in rank
// order (an exclusive scan over per-rank cluster counts), and partner
// owners are notified of their vertices' ids. Returns the home-local
// fine-to-coarse map and the global coarse vertex count. Collective.
//
//chaos:hotpath
func numberCoarse(c *machine.Ctx, s *matchScratch, g *geocol.Graph, match []int) (cmap []int, coarseN int) {
	me := c.Rank()
	procs := c.Procs()
	lo := g.Home.Lo(me)
	localN := g.LocalN(me)

	mine := 0
	for l := 0; l < localN; l++ {
		if match[l] < 0 || lo+l < match[l] {
			mine++
		}
	}
	counts := c.AllGatherInt(mine)
	next := 0
	for r := 0; r < me; r++ {
		next += counts[r]
	}
	for _, n := range counts {
		coarseN += n
	}

	// cmap is retained by the caller's ladder; only the notification
	// routing is arena scratch.
	cmap = make([]int, localN)
	notify := growRanks(&s.notify, procs)
	for l := 0; l < localN; l++ {
		switch {
		case match[l] < 0:
			cmap[l] = next
			next++
		case lo+l < match[l]:
			cmap[l] = next
			if p := match[l]; g.Home.Owner(p) == me {
				cmap[p-lo] = next
			} else {
				r := g.Home.Owner(p)
				notify[r] = append(notify[r], p, next)
			}
			next++
		}
	}
	in := c.AlltoAllInts(notify)
	for r := 0; r < procs; r++ {
		ids := in[r]
		for i := 0; i+1 < len(ids); i += 2 {
			cmap[ids[i]-lo] = ids[i+1]
		}
	}
	c.Words(2 * localN)
	return cmap, coarseN
}
