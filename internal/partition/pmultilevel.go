package partition

import (
	"sort"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// This file is the parallel V-cycle of the multilevel partitioner: the
// coarsening ladder runs distributed over the simulated machine
// (pcoarsen.go + geocol.BuildCoarse), only the coarsest level is
// gathered for the serial spectral solve, and the k-way partition is
// projected back up level by level with a distributed greedy boundary
// refinement. Matching, contraction, projection and refinement all do
// O(local graph) work per rank plus AlltoAll exchanges, so — unlike the
// gather-everything serial path, whose replicated cost is flat in the
// machine size — the partitioner's virtual time falls as ranks are
// added (see TestParallelMultilevelTimeScales).

// parallelPartition runs the distributed V-cycle. The ladder coarsens
// until the graph fits the serial-solve threshold (or matching stalls),
// the coarsest graph is handed to the existing serial recursive-
// bisection V-cycle via serialBisectPartition — on a graph of a few
// thousand vertices, whose replicated cost is negligible — and the
// resulting part assignment is projected back through the distributed
// levels, each polished with a distributed refinement pass.
func (ml Multilevel) parallelPartition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	serialTo := ml.serialTo(nparts)

	totalW := 0.0
	for l := 0; l < g.LocalN(c.Rank()); l++ {
		totalW += g.Weight(l)
	}
	totalW = c.SumFloat(totalW)
	maxW := totalW * 0.01

	// Coarsening ladder. Each entry keeps the fine graph and its
	// fine-to-coarse map; the stall check stops when matching no longer
	// shrinks the graph meaningfully.
	type plevel struct {
		fine   *geocol.Graph
		ge     *geocol.GhostExchange
		cmap   []int
		coarse *geocol.Graph
	}
	var levels []plevel
	cur := g
	for cur.N > serialTo {
		ge := geocol.NewGhostExchange(c, cur)
		match := distHeavyEdgeMatch(c, cur, ge, maxW, uint64(len(levels))*0x2545f4914f6cdd1d+uint64(cur.N))
		cmap, coarseN := numberCoarse(c, cur, match)
		if coarseN*20 > cur.N*19 {
			break
		}
		next := geocol.BuildCoarse(c, cur, ge, cmap, coarseN)
		levels = append(levels, plevel{fine: cur, ge: ge, cmap: cmap, coarse: next})
		cur = next
	}

	// Coarsest-level solve: the serial multilevel V-cycle on the
	// gathered coarse graph (weighted vertices and edges preserve the
	// fine graph's cut and balance exactly).
	part := serialBisectPartition(c, cur, nparts, ml.bisect)

	// Uncoarsening: pull each home vertex's part from its coarse
	// vertex's owner, then refine the boundary distributedly.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		part = projectPart(c, lv.fine, lv.cmap, lv.coarse.Home, part)
		passes := 3
		if i == 0 {
			passes = 4
		}
		distRefine(c, lv.fine, lv.ge, part, nparts, passes)
	}
	return part
}

// serialTo returns the vertex count below which the ladder hands off to
// the serial V-cycle: enough vertices that the serial stage's own
// coarsening and per-level refinement recover near-serial cut quality,
// scaled so every part keeps a meaningful share of the coarse graph.
func (ml Multilevel) serialTo(nparts int) int {
	coarsenTo := ml.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 100
	}
	serialTo := 16 * coarsenTo
	if min := 8 * nparts; serialTo < min {
		serialTo = min
	}
	return serialTo
}

// projectPart projects a coarse part assignment onto the fine level:
// each rank requests the part of every coarse vertex its home vertices
// map to from the coarse vertex's block owner (one request/reply
// AlltoAll pair), then reads the fine assignment off cmap. Collective.
func projectPart(c *machine.Ctx, fine *geocol.Graph, cmap []int, coarseHome dist.BlockDist, coarsePart []int) []int {
	me, procs := c.Rank(), c.Procs()

	need := append([]int(nil), cmap...)
	sort.Ints(need)
	need = dedupSorted(need)
	req := make([][]int, procs)
	for _, cv := range need {
		r := coarseHome.Owner(cv)
		req[r] = append(req[r], cv)
	}
	in := c.AlltoAllInts(req)
	lo2 := coarseHome.Lo(me)
	rep := make([][]int, procs)
	for r := 0; r < procs; r++ {
		for _, cv := range in[r] {
			rep[r] = append(rep[r], coarsePart[cv-lo2])
		}
	}
	back := c.AlltoAllInts(rep)
	val := make(map[int]int, len(need))
	for r := 0; r < procs; r++ {
		for i, cv := range req[r] {
			val[cv] = back[r][i]
		}
	}
	part := make([]int, len(cmap))
	for l, cv := range cmap {
		part[l] = val[cv]
	}
	c.Words(2 * len(cmap))
	return part
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// distRefine is the distributed k-way boundary refinement run at each
// uncoarsening level: every rank sweeps its home boundary vertices and
// greedily moves each to the adjacent part with the best positive
// edge-cut gain, subject to a balance window. Two guards keep the
// concurrent greedy moves sane: a sub-pass direction rule (first only
// moves toward higher part ids, then only toward lower) prevents two
// neighboring vertices from swapping past each other in one sub-pass,
// and per-rank weight budgets — each rank may spend at most 1/Procs of
// a part's remaining balance headroom per sub-pass — bound the
// overshoot of simultaneous moves into the same part. Part weights are
// re-synchronized collectively after every sub-pass, and the pass loop
// exits as soon as a full pass moves nothing anywhere. Collective and
// deterministic.
func distRefine(c *machine.Ctx, g *geocol.Graph, ge *geocol.GhostExchange, part []int, nparts, passes int) {
	const tol = 0.07
	me, procs := c.Rank(), c.Procs()
	lo := g.Home.Lo(me)
	localN := g.LocalN(me)

	partWeights := func() []float64 {
		w := make([]float64, nparts)
		for l := 0; l < localN; l++ {
			w[part[l]] += g.Weight(l)
		}
		all := c.AllGatherFloats(w)
		tot := make([]float64, nparts)
		for i, v := range all {
			tot[i%nparts] += v
		}
		return tot
	}
	W := partWeights()
	totalW := 0.0
	for _, w := range W {
		totalW += w
	}
	ideal := totalW / float64(nparts)
	maxA, minA := ideal*(1+tol), ideal*(1-tol)

	acc := make([]float64, nparts) // edge weight toward each part
	seen := make([]bool, nparts)
	var touched []int

	// The ghost part copy is pushed densely once; every later sub-pass
	// only exchanges the vertices that actually moved (UpdateInts),
	// which is a few percent of the boundary at most.
	ghostPart := ge.PushInts(c, part)
	movedFlag := make([]bool, localN)
	first := true

	for pass := 0; pass < passes; pass++ {
		movedGlobal := 0
		for dir := 0; dir < 2; dir++ {
			if !first {
				ge.UpdateInts(c, part, movedFlag, ghostPart)
				for l := range movedFlag {
					movedFlag[l] = false
				}
			}
			first = false
			addBudget := make([]float64, nparts)
			subBudget := make([]float64, nparts)
			for q := 0; q < nparts; q++ {
				addBudget[q] = (maxA - W[q]) / float64(procs)
				subBudget[q] = (W[q] - minA) / float64(procs)
			}
			moved := 0
			for l := 0; l < localN; l++ {
				p := part[l]
				intW := 0.0
				touched = touched[:0]
				for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
					u := g.Adj[k]
					var q int
					if g.Home.Owner(u) == me {
						q = part[u-lo]
					} else {
						q = ghostPart[ge.Slot(u)]
					}
					ew := 1.0
					if g.EdgeW != nil {
						ew = g.EdgeW[k]
					}
					if q == p {
						intW += ew
						continue
					}
					if !seen[q] {
						seen[q] = true
						acc[q] = 0
						touched = append(touched, q)
					}
					acc[q] += ew
				}
				if len(touched) > 0 {
					w := g.Weight(l)
					bestQ := -1
					bestGain := 0.0
					for _, q := range touched {
						if dir == 0 && q < p || dir == 1 && q > p {
							continue
						}
						gain := acc[q] - intW
						if gain > bestGain || (gain == bestGain && bestQ >= 0 && q < bestQ) {
							if addBudget[q] >= w {
								bestQ, bestGain = q, gain
							}
						}
					}
					if bestQ >= 0 && bestGain > 0 && subBudget[p] >= w {
						part[l] = bestQ
						movedFlag[l] = true
						addBudget[bestQ] -= w
						subBudget[p] -= w
						moved++
					}
					for _, q := range touched {
						seen[q] = false
					}
				}
			}
			c.Flops(2*len(g.Adj) + localN)
			W = partWeights()
			movedGlobal += c.SumInt(moved)
		}
		if movedGlobal == 0 {
			break
		}
	}
}
