package partition

import (
	"sort"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// This file is the parallel V-cycle of the multilevel partitioner: the
// coarsening ladder runs distributed over the simulated machine
// (pcoarsen.go + geocol.BuildCoarse), only the coarsest level is
// gathered for the serial spectral solve (plus a k-way FM polish), and
// the k-way partition is projected back up level by level with the
// hill-climbing distributed FM refinement of prefine.go. Matching,
// contraction, projection and refinement all do O(local graph) work
// per rank plus AlltoAll exchanges, so — unlike the gather-everything
// serial path, whose replicated cost is flat in the machine size — the
// partitioner's virtual time falls as ranks are added (see
// TestParallelMultilevelTimeScales). docs/REFINEMENT.md is the guided
// tour of the refinement stack.

// plevel is one level of a distributed coarsening ladder: the fine
// graph, its ghost-exchange pattern, the fine-to-coarse map, and the
// coarse graph it contracts to.
type plevel struct {
	fine   *geocol.Graph
	ge     *geocol.GhostExchange
	cmap   []int
	coarse *geocol.Graph
}

// parallelPartition runs the distributed V-cycle. The ladder coarsens
// until the graph fits the serial-solve handoff (or matching stalls),
// the coarsest graph is handed to the serial recursive-bisection
// V-cycle via serialBisectPartition and polished k-way — on a graph
// below ParallelThreshold, whose replicated cost is small — and the
// resulting part assignment is projected back through the distributed
// levels, each refined in place (refineLevel). With VCycle set, a
// second, partition-preserving ladder re-coarsens the refined
// partition and refines it again at every scale (vcycleRefine).
// parallelPartitionLadder is the distributed V-cycle with ladder
// retention: the coarsening ladder (fine graphs, ghost exchanges,
// fine-to-coarse maps, coarse graphs) is packaged into a Ladder for
// incremental warm repartitioning (ladder.go). Plain Partition calls
// simply discard it.
func (ml Multilevel) parallelPartitionLadder(c *machine.Ctx, g *geocol.Graph, nparts int) ([]int, *Ladder) {
	serialTo := ml.serialTo(nparts)

	// One arena per run, threaded through coarsening, the serial solve
	// and every refinement level, then retained in the Ladder so warm
	// Repartition epochs reuse the grown buffers.
	ar := &arena{}

	totalW := 0.0
	for l := 0; l < g.LocalN(c.Rank()); l++ {
		totalW += g.Weight(l)
	}
	totalW = c.SumFloat(totalW)
	maxW := totalW * 0.01

	levels, cur, _ := buildLadder(c, ar, g, serialTo, maxW, ml.Seed, nil)

	// Coarsest-level solve: the serial multilevel V-cycle on the
	// gathered coarse graph (weighted vertices and edges preserve the
	// fine graph's cut and balance exactly), followed by a k-way FM
	// polish — the recursive bisection only ever refined 2-way inside
	// each split, the polish is nearly free on the already-small graph,
	// and every edge it removes is an edge no uncoarsening level has to
	// fight for.
	part := serialBisectPartition(c, cur, nparts, ml.bisecter(ar))
	if ml.FMPasses >= 0 {
		serialKway(c, ar, cur, part, nparts, 8, ml.tol())
	}

	// Uncoarsening: pull each home vertex's part from its coarse
	// vertex's owner, then refine each level in place.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		part = projectPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, part)
		ml.refineLevel(c, ar, lv.fine, lv.ge, part, nparts, i == 0)
	}

	if ml.VCycle && ml.FMPasses >= 0 {
		ml.vcycleRefine(c, ar, g, part, nparts, serialTo, maxW)
	}
	var ld *Ladder
	if len(levels) > 0 {
		ld = &Ladder{n: g.N, nparts: nparts, levels: levels, coarsest: cur, ar: ar}
	}
	return part, ld
}

// buildLadder builds a distributed coarsening ladder from g down to
// serialTo vertices (or until matching stalls). When part is non-nil
// the matching is restricted to same-part pairs — the ladder then
// PRESERVES the partition, which is what vcycleRefine coarsens with —
// and the partition is carried down the ladder (the third return value
// is the coarsest level's copy; nil in the unrestricted case). seedBase
// salts the tie-breaking so distinct ladders of one Partition call
// decorrelate. Collective.
func buildLadder(c *machine.Ctx, ar *arena, g *geocol.Graph, serialTo int, maxW float64, seedBase uint64, part []int) ([]plevel, *geocol.Graph, []int) {
	var levels []plevel
	cur, curPart := g, part
	// ghostBuf is handed back to PushIntsInto every level: the ghost
	// part copy is only read within the level, so the ladder reuses one
	// buffer instead of allocating per level.
	var ghostBuf []int
	for cur.N > serialTo {
		ge := geocol.NewGhostExchange(c, cur)
		var curGhost []int
		if curPart != nil {
			curGhost = ge.PushIntsInto(c, curPart, ghostBuf)
			ghostBuf = curGhost
		}
		seed := seedBase + uint64(len(levels))*0x2545f4914f6cdd1d + uint64(cur.N)
		match := distHeavyEdgeMatch(c, &ar.match, cur, ge, maxW, seed, curPart, curGhost)
		cmap, coarseN := numberCoarse(c, &ar.match, cur, match)
		if coarseN*20 > cur.N*19 {
			break
		}
		next := ar.asm.BuildCoarse(c, cur, ge, cmap, coarseN)
		levels = append(levels, plevel{fine: cur, ge: ge, cmap: cmap, coarse: next})
		if curPart != nil {
			curPart = restrictPart(c, &ar.proj, cur, cmap, next.Home, curPart)
		}
		cur = next
	}
	return levels, cur, curPart
}

// refineLevel refines one uncoarsening level in place: the
// hill-climbing parallel FM (prefine.go) by default, the legacy greedy
// positive-gain pass (distRefine) when FMPasses is negative. Interior
// levels get a reduced pass budget — their boundary is re-refined at
// every finer level — while the finest level gets the full one.
func (ml Multilevel) refineLevel(c *machine.Ctx, ar *arena, fine *geocol.Graph, ge *geocol.GhostExchange, part []int, nparts int, finest bool) {
	passes := 3
	if finest {
		passes = 4
	}
	if ml.FMPasses > 0 {
		passes = ml.FMPasses
	}
	if ml.FMPasses < 0 {
		distRefine(c, fine, ge, part, nparts, passes, ml.tol())
	} else {
		parallelFM(c, &ar.fm, fine, ge, part, nparts, passes, ml.tol())
	}
}

// serialKway gathers a sub-threshold graph and refines its partition
// with the serial k-way FM (kwayRefine), computed identically on every
// rank under the replicated-cost convention; each rank then keeps its
// home slice of the result. Collective.
func serialKway(c *machine.Ctx, ar *arena, g *geocol.Graph, part []int, nparts, passes int, tol float64) {
	f := g.Gather(c)
	full := c.AllGatherInts(part)
	c.Flops(int(kwayRefine(&ar.kway, f.XAdj, f.Adj, f.EdgeW, f.Weights, full, nparts, passes, tol)))
	lo := g.Home.Lo(c.Rank())
	for l := range part {
		part[l] = full[lo+l]
	}
}

// vcycleRefine is multilevel V-cycle refinement (the kMETIS/ParMETIS
// trick for escaping single-level local minima): coarsen the graph
// AGAIN with matching restricted to same-part pairs, so every level of
// the new ladder inherits the current partition exactly, then refine
// back up through the levels. At coarse levels a single FM move
// transfers a whole cluster of fine vertices between parts — the
// global moves plain boundary refinement cannot compose — and the
// gathered coarsest level gets exact serial treatment. The refined
// partition is written back into part. Roughly doubles the
// partitioner's distributed cost for a small cut improvement, which is
// why it sits behind the VCycle knob. Collective.
func (ml Multilevel) vcycleRefine(c *machine.Ctx, ar *arena, g *geocol.Graph, part []int, nparts, serialTo int, maxW float64) {
	levels, cur, cpart := buildLadder(c, ar, g, serialTo, maxW, ml.Seed^0x9e3779b97f4a7c15, part)
	if len(levels) == 0 {
		return
	}
	if cur.N < ml.parallelThreshold() {
		serialKway(c, ar, cur, cpart, nparts, 8, ml.tol())
	} else {
		parallelFM(c, &ar.fm, cur, geocol.NewGhostExchange(c, cur), cpart, nparts, 3, ml.tol())
	}
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		next := projectPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, cpart)
		ml.refineLevel(c, ar, lv.fine, lv.ge, next, nparts, i == 0)
		cpart = next
	}
	copy(part, cpart)
}

// restrictPart restricts a fine partition onto the coarse level of a
// partition-preserving ladder: every member of a coarse cluster holds
// the same part, so each rank routes one (coarse id, part) pair per
// home fine vertex to the coarse owner. Collective. The per-rank
// routing buffers come from the arena's projScratch; the returned
// cpart is a fresh result and stays unpooled.
//
//chaos:hotpath
func restrictPart(c *machine.Ctx, s *projScratch, fine *geocol.Graph, cmap []int, coarseHome dist.BlockDist, finePart []int) []int {
	me, procs := c.Rank(), c.Procs()
	out := growRanks(&s.out, procs)
	for l, cv := range cmap {
		r := coarseHome.Owner(cv)
		out[r] = append(out[r], cv, finePart[l])
	}
	in := c.AlltoAllInts(out)
	lo2 := coarseHome.Lo(me)
	cpart := make([]int, coarseHome.LocalSize(me))
	for r := 0; r < procs; r++ {
		xs := in[r]
		for i := 0; i+1 < len(xs); i += 2 {
			cpart[xs[i]-lo2] = xs[i+1]
		}
	}
	c.Words(2 * len(cmap))
	return cpart
}

// serialTo returns the vertex count below which the ladder hands off
// to the serial stage. For the FM configuration the handoff is
// 8×CoarsenTo floored by ParallelThreshold: a graph below the
// threshold is, by the dispatch rule in Partition, too small to be
// worth distributing at all, so the ladder stops there and the serial
// solve (plus k-way polish) takes over — empirically the quality knee:
// handing off smaller graphs loses more cut in the solve's seed than
// any amount of distributed refinement wins back (docs/REFINEMENT.md
// records the measurements). The legacy greedy configuration
// (FMPasses < 0) keeps its original 16×CoarsenTo handoff.
func (ml Multilevel) serialTo(nparts int) int {
	coarsenTo := ml.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 100
	}
	var serialTo int
	if ml.FMPasses < 0 {
		serialTo = 16 * coarsenTo
	} else {
		serialTo = 8 * coarsenTo
		if thr := ml.parallelThreshold(); serialTo < thr {
			serialTo = thr
		}
	}
	if min := 8 * nparts; serialTo < min {
		serialTo = min
	}
	return serialTo
}

// projectPart projects a coarse part assignment onto the fine level:
// each rank requests the part of every coarse vertex its home vertices
// map to from the coarse vertex's block owner (one request/reply
// AlltoAll pair), then reads the fine assignment off cmap. The
// resolved parts live in an array parallel to the sorted distinct
// coarse-id list (binary-searched per fine vertex) — O(local) memory
// with no map, and all routing scratch is arena-owned. Collective.
//
//chaos:hotpath
func projectPart(c *machine.Ctx, s *projScratch, fine *geocol.Graph, cmap []int, coarseHome dist.BlockDist, coarsePart []int) []int {
	me, procs := c.Rank(), c.Procs()

	need := append(s.need[:0], cmap...)
	sort.Ints(need)
	need = dedupSorted(need)
	s.need = need
	req := growRanks(&s.req, procs)
	for _, cv := range need {
		r := coarseHome.Owner(cv)
		req[r] = append(req[r], cv)
	}
	in := c.AlltoAllInts(req)
	lo2 := coarseHome.Lo(me)
	rep := growRanks(&s.rep, procs)
	for r := 0; r < procs; r++ {
		for _, cv := range in[r] {
			rep[r] = append(rep[r], coarsePart[cv-lo2])
		}
	}
	back := c.AlltoAllInts(rep)
	// need is sorted and block ownership is monotone in the id, so the
	// per-rank request lists are consecutive runs of need: the replies
	// concatenate into an array parallel to need.
	val := growInts(&s.val, len(need))
	j := 0
	for r := 0; r < procs; r++ {
		j += copy(val[j:], back[r])
	}
	// part is returned to the caller (and carried across levels), so it
	// stays freshly allocated.
	part := make([]int, len(cmap))
	for l, cv := range cmap {
		part[l] = val[sort.SearchInts(need, cv)]
	}
	c.Words(2 * len(cmap))
	return part
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// distRefine is the distributed k-way boundary refinement run at each
// uncoarsening level: every rank sweeps its home boundary vertices and
// greedily moves each to the adjacent part with the best positive
// edge-cut gain, subject to a balance window. Two guards keep the
// concurrent greedy moves sane: a sub-pass direction rule (first only
// moves toward higher part ids, then only toward lower) prevents two
// neighboring vertices from swapping past each other in one sub-pass,
// and per-rank weight budgets — each rank may spend at most 1/Procs of
// a part's remaining balance headroom per sub-pass — bound the
// overshoot of simultaneous moves into the same part. Part weights are
// re-synchronized collectively after every sub-pass, and the pass loop
// exits as soon as a full pass moves nothing anywhere. Collective and
// deterministic.
func distRefine(c *machine.Ctx, g *geocol.Graph, ge *geocol.GhostExchange, part []int, nparts, passes int, tol float64) {
	me, procs := c.Rank(), c.Procs()
	lo := g.Home.Lo(me)
	localN := g.LocalN(me)

	partWeights := func() []float64 {
		w := make([]float64, nparts)
		for l := 0; l < localN; l++ {
			w[part[l]] += g.Weight(l)
		}
		all := c.AllGatherFloats(w)
		tot := make([]float64, nparts)
		for i, v := range all {
			tot[i%nparts] += v
		}
		return tot
	}
	W := partWeights()
	totalW := 0.0
	for _, w := range W {
		totalW += w
	}
	ideal := totalW / float64(nparts)
	maxA, minA := ideal*(1+tol), ideal*(1-tol)

	acc := make([]float64, nparts) // edge weight toward each part
	seen := make([]bool, nparts)
	var touched []int

	// The ghost part copy is pushed densely once; every later sub-pass
	// only exchanges the vertices that actually moved (UpdateInts),
	// which is a few percent of the boundary at most.
	ghostPart := ge.PushInts(c, part)
	movedFlag := make([]bool, localN)
	first := true

	addBudget := make([]float64, nparts)
	subBudget := make([]float64, nparts)
	for pass := 0; pass < passes; pass++ {
		movedGlobal := 0
		for dir := 0; dir < 2; dir++ {
			if !first {
				ge.UpdateInts(c, part, movedFlag, ghostPart)
				for l := range movedFlag {
					movedFlag[l] = false
				}
			}
			first = false
			for q := 0; q < nparts; q++ {
				addBudget[q] = (maxA - W[q]) / float64(procs)
				subBudget[q] = (W[q] - minA) / float64(procs)
			}
			moved := 0
			for l := 0; l < localN; l++ {
				p := part[l]
				intW := 0.0
				touched = touched[:0]
				for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
					u := g.Adj[k]
					var q int
					if g.Home.Owner(u) == me {
						q = part[u-lo]
					} else {
						q = ghostPart[ge.Slot(u)]
					}
					ew := 1.0
					if g.EdgeW != nil {
						ew = g.EdgeW[k]
					}
					if q == p {
						intW += ew
						continue
					}
					if !seen[q] {
						seen[q] = true
						acc[q] = 0
						touched = append(touched, q)
					}
					acc[q] += ew
				}
				if len(touched) > 0 {
					w := g.Weight(l)
					bestQ := -1
					bestGain := 0.0
					for _, q := range touched {
						if dir == 0 && q < p || dir == 1 && q > p {
							continue
						}
						gain := acc[q] - intW
						if gain > bestGain || (gain == bestGain && bestQ >= 0 && q < bestQ) {
							if addBudget[q] >= w {
								bestQ, bestGain = q, gain
							}
						}
					}
					if bestQ >= 0 && bestGain > 0 && subBudget[p] >= w {
						part[l] = bestQ
						movedFlag[l] = true
						addBudget[bestQ] -= w
						subBudget[p] -= w
						moved++
					}
					for _, q := range touched {
						seen[q] = false
					}
				}
			}
			c.Flops(2*len(g.Adj) + localN)
			W = partWeights()
			movedGlobal += c.SumInt(moved)
		}
		if movedGlobal == 0 {
			break
		}
	}
}
