package partition

import (
	"math"

	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// This file is the hill-climbing parallel FM refiner of the distributed
// V-cycle (pmultilevel.go) — the ParMETIS-style move/commit/undo
// protocol that replaced the greedy positive-gain pass (distRefine) as
// the default uncoarsening refiner. Each pass runs a fixed number of
// bulk-synchronous sub-iterations; per sub-iteration every rank
//
//  1. selects moves for its boundary vertices from per-rank gain
//     buckets, highest gain first, spending a bounded budget of
//     NEGATIVE-gain moves once the positive ones are exhausted (the
//     hill-climbing step plain greedy refinement cannot take),
//  2. applies the moves speculatively — concurrent moves on other
//     ranks may invalidate the computed gains — and
//  3. resolves the conflicts in one batch: the moved parts are
//     exchanged through geocol.GhostExchange (UpdateIntsTouched), the
//     exact global cut is measured collectively, and the sub-iteration
//     boundary becomes a consistent global snapshot.
//
// Because every sub-iteration boundary is a snapshot whose exact cut
// all ranks agree on, rollback is sound and cheap: each rank records
// its local move log position at the best cut seen, and when a pass
// ends above that cut every rank undoes its own moves past the
// checkpoint, which restores precisely the best-seen global partition.
// Mispredicted speculative moves are therefore never committed — they
// either get repaired by later sub-iterations or rolled back.
//
// All local work after the first scan is proportional to the boundary
// and to what changed: gains and cut contributions are cached per
// vertex and only vertices adjacent to a move (local, or remote via
// the touched-slot list) are rescanned. See docs/REFINEMENT.md for the
// protocol diagram and tuning guidance.

// fmSubIters is the number of bulk-synchronous sub-iterations per FM
// pass: three direction pairs, mirroring the alternating direction
// rule of distRefine (even sub-iterations move toward higher part
// ids only, odd toward lower), which prevents neighboring vertices
// from swapping past each other inside one batch.
const fmSubIters = 6

// fmMove is one entry of the per-rank move log: enough to undo the
// move during rollback.
type fmMove struct {
	l    int // home-local vertex
	from int // part it left
}

// fmCand is one speculative move candidate in the gain buckets. An
// entry is a snapshot: when the vertex's cached gain changes a fresh
// entry is pushed and stale ones are detected on pop by comparing
// stamps.
type fmCand struct {
	l     int
	to    int
	gain  float64
	stamp int
}

// fmBuckets holds move candidates bucketed by integer-floored gain —
// the classic FM gain-bucket array. Coarse-graph edge weights are
// aggregated fine-edge multiplicities (integers), so the flooring is
// exact in practice; candidates within one bucket pop in push order,
// which is deterministic because selection scans vertices in ascending
// local id. Gains outside ±fmBucketSpan clamp to the end buckets.
type fmBuckets struct {
	buckets [][]fmCand
	head    []int // per-bucket pop cursor (consumed prefix)
	hi      int   // highest possibly-non-empty bucket index
	n       int   // live entry count (including stale)
}

const fmBucketSpan = 64

func newFMBuckets() *fmBuckets {
	return &fmBuckets{
		buckets: make([][]fmCand, 2*fmBucketSpan+1),
		head:    make([]int, 2*fmBucketSpan+1),
	}
}

func fmBucketIndex(gain float64) int {
	b := int(math.Floor(gain))
	if b > fmBucketSpan {
		b = fmBucketSpan
	}
	if b < -fmBucketSpan {
		b = -fmBucketSpan
	}
	return b + fmBucketSpan
}

//chaos:hotpath
func (fb *fmBuckets) push(cand fmCand) {
	b := fmBucketIndex(cand.gain)
	fb.buckets[b] = append(fb.buckets[b], cand)
	if b > fb.hi {
		fb.hi = b
	}
	fb.n++
}

// pop returns the highest-gain candidate, or false when empty. The
// consumed prefix is tracked by a cursor, NOT by re-slicing the bucket
// from the front — front-slicing would strand the popped capacity and
// make every later push reallocate, defeating the arena.
//
//chaos:hotpath
func (fb *fmBuckets) pop() (fmCand, bool) {
	for fb.hi >= 0 {
		if b := fb.buckets[fb.hi]; fb.head[fb.hi] < len(b) {
			cand := b[fb.head[fb.hi]]
			fb.head[fb.hi]++
			fb.n--
			return cand, true
		}
		fb.hi--
	}
	return fmCand{}, false
}

// reset empties the buckets keeping their backing arrays, so repeated
// passes reuse steady-state capacity instead of reallocating.
//
//chaos:hotpath
func (fb *fmBuckets) reset() {
	for i := range fb.buckets {
		fb.buckets[i] = fb.buckets[i][:0]
		fb.head[i] = 0
	}
	fb.hi = 0
	fb.n = 0
}

// kwayRefine is the serial k-way FM refiner run (replicated) on
// gathered coarse levels below ParallelThreshold, where each rank's
// slice is too small for distributed hill climbs to gain traction and
// the gather is cheap. It is klRefine generalized to k parts on the
// same fmBuckets structure the distributed refiner uses: pop the best
// move (any adjacent part, no direction rule — the serial view is
// exact), allow negative-gain moves, keep the best prefix, roll the
// tail back. Deterministic: every rank computing it on identical
// inputs produces the identical partition. Returns the flop count to
// charge.
//
//chaos:hotpath
func kwayRefine(s *kwayScratch, xadj, adj []int, ew, w []float64, part []int, nparts, passes int, tol float64) int64 {
	const plateau = 64
	n := len(xadj) - 1
	weight := func(v int) float64 {
		if w == nil {
			return 1
		}
		return w[v]
	}
	ewt := func(k int) float64 {
		if ew == nil {
			return 1
		}
		return ew[k]
	}

	// All per-call state comes from the arena scratch. W and seen are
	// cleared here; locked is reset at every pass start; acc is guarded
	// by seen; stamp may hold arbitrary values (bucket entries only
	// compare stamps recorded in this call, and the buckets are reset).
	W := growFloats(&s.W, nparts)
	seen := growBools(&s.seen, nparts)
	for q := 0; q < nparts; q++ {
		W[q], seen[q] = 0, false
	}
	totalW := 0.0
	for v := 0; v < n; v++ {
		W[part[v]] += weight(v)
		totalW += weight(v)
	}
	ideal := totalW / float64(nparts)
	maxA, minA := ideal*(1+tol), ideal*(1-tol)

	acc := growFloats(&s.acc, nparts)
	touchedParts := s.touchedParts
	stamp := growInts(&s.stamp, n)
	fb := &s.fb
	fb.ensure()
	locked := growBools(&s.locked, n)
	var scanned int64

	candidate := func(v int) (to int, gain float64, ok bool) {
		p := part[v]
		intW := 0.0
		touchedParts = touchedParts[:0]
		for k := xadj[v]; k < xadj[v+1]; k++ {
			q := part[adj[k]]
			wk := ewt(k)
			if q == p {
				intW += wk
				continue
			}
			if !seen[q] {
				seen[q] = true
				acc[q] = 0
				touchedParts = append(touchedParts, q)
			}
			acc[q] += wk
		}
		scanned += int64(xadj[v+1] - xadj[v])
		best, bestGain := -1, math.Inf(-1)
		for _, q := range touchedParts {
			seen[q] = false
			if gq := acc[q] - intW; gq > bestGain || (gq == bestGain && q < best) {
				best, bestGain = q, gq
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		return best, bestGain, true
	}

	log := s.log
	blocked := s.blocked
	for pass := 0; pass < passes; pass++ {
		fb.reset()
		for v := 0; v < n; v++ {
			locked[v] = false
			if to, gain, ok := candidate(v); ok {
				stamp[v]++
				fb.push(fmCand{l: v, to: to, gain: gain, stamp: stamp[v]})
			}
		}
		log = log[:0]
		blocked = blocked[:0]
		cum, bestCum, bestAt := 0.0, 0.0, 0
		for {
			cand, ok := fb.pop()
			if !ok {
				break
			}
			v := cand.l
			if cand.stamp != stamp[v] || locked[v] {
				continue
			}
			if cand.gain <= 0 && len(log)-bestAt >= plateau {
				break
			}
			p, wv := part[v], weight(v)
			if W[cand.to]+wv > maxA || W[p]-wv < minA {
				// Balance-blocked, not dead: re-offered after the next
				// committed move frees headroom (klRefine's stash).
				blocked = append(blocked, cand)
				continue
			}
			part[v] = cand.to
			locked[v] = true
			W[cand.to] += wv
			W[p] -= wv
			log = append(log, fmMove{l: v, from: p})
			cum += cand.gain
			if cum > bestCum {
				bestCum, bestAt = cum, len(log)
			}
			for _, bc := range blocked {
				fb.push(bc)
			}
			blocked = blocked[:0]
			for k := xadj[v]; k < xadj[v+1]; k++ {
				u := adj[k]
				if locked[u] {
					continue
				}
				if to, gain, ok := candidate(u); ok {
					stamp[u]++
					fb.push(fmCand{l: u, to: to, gain: gain, stamp: stamp[u]})
				}
			}
		}
		for i := len(log) - 1; i >= bestAt; i-- {
			mv := log[i]
			wv := weight(mv.l)
			W[part[mv.l]] -= wv
			W[mv.from] += wv
			part[mv.l] = mv.from
		}
		scanned += int64(64 * len(log))
		if bestCum <= 0 {
			break
		}
	}
	// Retain grown capacity for the next call on this arena.
	s.touchedParts, s.log, s.blocked = touchedParts, log, blocked
	return 2 * scanned
}

// parallelFM runs the hill-climbing distributed k-way FM refinement on
// a block-distributed graph whose part vector (indexed by home-local
// vertex) came from projecting a coarser level's partition. Balance is
// protected exactly as in distRefine: part weights are re-synchronized
// at every sub-iteration boundary and each rank may spend at most
// 1/Procs of a part's remaining headroom inside one sub-iteration, so
// concurrent moves cannot overshoot the window no matter how the
// speculation resolves. Collective and deterministic.
//
//chaos:hotpath
func parallelFM(c *machine.Ctx, s *fmScratch, g *geocol.Graph, ge *geocol.GhostExchange, part []int, nparts, passes int, tol float64) {
	me := c.Rank()
	procs := c.Procs()
	lo := g.Home.Lo(me)
	localN := g.LocalN(me)

	// The ghost part copy lands in the arena buffer; ge.Loc resolves
	// every neighbor to part or ghostPart with one array read, so the
	// scan loops below carry no ownership test or id lookup.
	ghostPart := ge.PushIntsInto(c, part, s.ghostPart)
	s.ghostPart = ghostPart
	edgeW := func(k int) float64 {
		if g.EdgeW == nil {
			return 1
		}
		return g.EdgeW[k]
	}

	// ghostAdj (CSR: start/items) lists the home-local vertices adjacent
	// to each ghost slot — the reverse index that turns "ghost s
	// changed" into "rescan these vertices". Built once per refine call
	// in the arena by counting sort, O(local E), allocation-free at
	// steady state.
	start := growInts(&s.ghostAdjStart, len(ge.IDs)+1)
	for i := range start {
		start[i] = 0
	}
	for _, loc := range ge.Loc {
		if loc < 0 {
			start[-loc]++ // slot -loc-1 counts into start[slot+1]
		}
	}
	for i := 0; i < len(ge.IDs); i++ {
		start[i+1] += start[i]
	}
	items := growInts(&s.ghostAdj, start[len(ge.IDs)])
	for l := 0; l < localN; l++ {
		for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
			if loc := ge.Loc[k]; loc < 0 {
				slot := -loc - 1
				items[start[slot]] = l
				start[slot]++
			}
		}
	}
	// The fill advanced each start[s] to the old start[s+1]; shift back.
	copy(start[1:], start)
	start[0] = 0
	ghostAdj := func(slot int) []int { return items[start[slot]:start[slot+1]] }

	// Cached per-vertex state, refreshed only for vertices marked dirty
	// by a local or remote move in their neighborhood:
	//   cutW[l]     weighted cut contribution of l's edges
	//   boundary[l] whether l has any cross-part edge
	// localCut is maintained incrementally from cutW deltas and checked
	// against a full recomputation at every pass start.
	cutW := growFloats(&s.cutW, localN)
	boundary := growBools(&s.boundary, localN)
	dirty := growBools(&s.dirty, localN)
	for l := 0; l < localN; l++ {
		dirty[l] = false
	}
	localCut := 0.0
	refresh := func(l int) {
		old := cutW[l]
		w, bnd := 0.0, false
		p := part[l]
		for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
			q := 0
			if loc := ge.Loc[k]; loc >= 0 {
				q = part[loc]
			} else {
				q = ghostPart[-loc-1]
			}
			if q != p {
				w += edgeW(k)
				bnd = true
			}
		}
		cutW[l], boundary[l] = w, bnd
		localCut += w - old
	}
	scanned := 0 // degree sum of refreshed vertices, for flop charges
	refreshAll := func() {
		localCut = 0
		for l := 0; l < localN; l++ {
			cutW[l] = 0
			refresh(l)
		}
		scanned += len(g.Adj)
	}

	// syncState fuses the two collectives every sub-iteration boundary
	// needs — part weights and exact global cut — into one allgather of
	// nparts+1 floats per rank.
	W := growFloats(&s.W, nparts)
	var cut float64
	buf := growFloats(&s.buf, nparts+1)
	syncState := func() {
		for q := 0; q < nparts; q++ {
			buf[q] = 0
		}
		for l := 0; l < localN; l++ {
			buf[part[l]] += g.Weight(l)
		}
		buf[nparts] = localCut
		all := c.AllGatherFloats(buf)
		for q := 0; q <= nparts; q++ {
			buf[q] = 0
		}
		for i, v := range all {
			buf[i%(nparts+1)] += v
		}
		copy(W, buf[:nparts])
		cut = buf[nparts] / 2 // symmetric CSR: both owners counted each edge
	}

	refreshAll()
	syncState()
	totalW := 0.0
	for _, w := range W {
		totalW += w
	}
	ideal := totalW / float64(nparts)
	maxA, minA := ideal*(1+tol), ideal*(1-tol)

	// Per-candidate scratch for the selection scan, all arena-owned:
	// seen and movedFlag are cleared here, locked is reset per pass,
	// acc is guarded by seen, the budgets are overwritten every
	// sub-iteration, and stamp may hold arbitrary values (entries only
	// compare stamps recorded in this call).
	acc := growFloats(&s.acc, nparts)
	seen := growBools(&s.seen, nparts)
	for q := 0; q < nparts; q++ {
		seen[q] = false
	}
	touchedParts := s.touchedParts
	stamp := growInts(&s.stamp, localN)
	fb := &s.fb
	fb.ensure()
	locked := growBools(&s.locked, localN)
	movedFlag := growBools(&s.movedFlag, localN)
	for l := 0; l < localN; l++ {
		movedFlag[l] = false
	}
	log := s.log[:0]
	blocked := s.blocked
	addBudget := growFloats(&s.addBudget, nparts)
	subBudget := growFloats(&s.subBudget, nparts)

	// candidate computes l's best direction-eligible move: the adjacent
	// part maximizing the cut gain (ties toward the smaller part id,
	// like distRefine). Returns ok=false for non-boundary vertices or
	// when the direction rule filters every adjacent part.
	candidate := func(l, dir int) (to int, gain float64, ok bool) {
		p := part[l]
		intW := 0.0
		touchedParts = touchedParts[:0]
		for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
			q := 0
			if loc := ge.Loc[k]; loc >= 0 {
				q = part[loc]
			} else {
				q = ghostPart[-loc-1]
			}
			w := edgeW(k)
			if q == p {
				intW += w
				continue
			}
			if !seen[q] {
				seen[q] = true
				acc[q] = 0
				touchedParts = append(touchedParts, q)
			}
			acc[q] += w
		}
		scanned += g.Degree(l)
		best, bestGain := -1, math.Inf(-1)
		for _, q := range touchedParts {
			seen[q] = false
			if dir == 0 && q < p || dir == 1 && q > p {
				continue
			}
			if gq := acc[q] - intW; gq > bestGain || (gq == bestGain && q < best) {
				best, bestGain = q, gq
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		return best, bestGain, true
	}

	for pass := 0; pass < passes; pass++ {
		startCut := cut
		bestCut := cut
		log = log[:0]
		bestLen := 0
		for l := range locked {
			locked[l] = false
		}
		passMoved, drySpell := 0, 0

		for it := 0; it < fmSubIters; it++ {
			dir := it & 1
			for q := 0; q < nparts; q++ {
				addBudget[q] = (maxA - W[q]) / float64(procs)
				subBudget[q] = (W[q] - minA) / float64(procs)
			}

			// Selection: seed the gain buckets from the current
			// boundary. Ascending l keeps within-bucket order (and so
			// the whole pop sequence) deterministic.
			fb.reset()
			for l := 0; l < localN; l++ {
				if !boundary[l] || locked[l] {
					continue
				}
				if to, gain, ok := candidate(l, dir); ok {
					stamp[l]++
					fb.push(fmCand{l: l, to: to, gain: gain, stamp: stamp[l]})
				}
			}

			// Apply: one serial-FM hill-climbing pass over the local
			// slice with the ghost layer frozen. Moves pop highest gain
			// first and may go NEGATIVE — the climb out of a local
			// minimum greedy refinement is stuck in — with the local
			// cumulative gain tracked serial-FM style (each committed
			// move refreshes its local neighbors' gains, so the running
			// total is exact in the local view). Before anything is
			// exchanged, the rank rolls its own batch back to the best
			// prefix it saw: only climbs that paid off locally ever
			// become visible to other ranks, so speculation noise does
			// not scale with the rank count. plateau bounds how far a
			// climb may chase a recovery before giving up.
			const plateau = 32
			moved := 0
			blocked = blocked[:0]
			cum, bestCum, bestAt := 0.0, 0.0, len(log)
			for {
				cand, ok := fb.pop()
				if !ok {
					break
				}
				l := cand.l
				if cand.stamp != stamp[l] || locked[l] {
					continue // superseded by a fresher entry
				}
				if cand.gain <= 0 && len(log)-bestAt >= plateau {
					break // climb gone cold past the best prefix
				}
				p, w := part[l], g.Weight(l)
				if addBudget[cand.to] < w || subBudget[p] < w {
					// Balance-blocked, not dead: re-offered after the
					// next committed move (klRefine's stash).
					blocked = append(blocked, cand)
					continue
				}
				part[l] = cand.to
				locked[l] = true
				movedFlag[l] = true
				dirty[l] = true
				log = append(log, fmMove{l: l, from: p})
				// Net-inflow accounting: the budgets bound each rank's
				// NET weight movement per part, so an outflow refunds
				// the headroom it frees — climbs that shuffle weight
				// through a part are not charged as if they parked it.
				addBudget[cand.to] -= w
				addBudget[p] += w
				subBudget[p] -= w
				subBudget[cand.to] += w
				moved++
				cum += cand.gain
				if cum > bestCum {
					bestCum, bestAt = cum, len(log)
				}
				for _, bc := range blocked {
					fb.push(bc)
				}
				blocked = blocked[:0]
				// Local neighbors see the move immediately: their
				// cached state is refreshed and fresh bucket entries
				// supersede the stale ones (serial-FM style). Remote
				// neighbors find out at the sub-iteration boundary.
				for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
					u := g.Adj[k]
					if g.Home.Owner(u) != me {
						continue
					}
					ul := u - lo
					dirty[ul] = true
					if locked[ul] {
						continue
					}
					refresh(ul)
					dirty[ul] = false
					if !boundary[ul] {
						continue
					}
					if to, gain, ok := candidate(ul, dir); ok {
						stamp[ul]++
						fb.push(fmCand{l: ul, to: to, gain: gain, stamp: stamp[ul]})
					}
				}
			}
			// Local rollback to the batch's best prefix: undone moves
			// never leave the rank. The vertices stay locked for the
			// rest of the pass (their climb did not pay off), and their
			// neighborhoods are re-marked dirty for the refresh below.
			for i := len(log) - 1; i >= bestAt; i-- {
				mv := log[i]
				part[mv.l] = mv.from
				movedFlag[mv.l] = false
				dirty[mv.l] = true
				moved--
				for k := g.XAdj[mv.l]; k < g.XAdj[mv.l+1]; k++ {
					if u := g.Adj[k]; g.Home.Owner(u) == me {
						dirty[u-lo] = true
					}
				}
			}
			log = log[:bestAt]

			// Conflict resolution: one batched exchange of the moved
			// parts; the touched-slot list marks exactly the vertices
			// whose cached gains a remote move invalidated.
			touched := ge.UpdateIntsTouchedInto(c, part, movedFlag, ghostPart, s.touched)
			if touched != nil {
				s.touched = touched
			}
			for l := range movedFlag {
				movedFlag[l] = false
			}
			for _, slot := range touched {
				for _, l := range ghostAdj(slot) {
					dirty[l] = true
				}
			}
			for l := 0; l < localN; l++ {
				if dirty[l] {
					refresh(l)
					dirty[l] = false
				}
			}
			syncState()
			c.Flops(2*scanned + localN)
			scanned = 0

			if cut < bestCut {
				bestCut = cut
				bestLen = len(log)
			}
			movedG := c.SumInt(moved)
			passMoved += movedG
			if movedG == 0 {
				if drySpell++; drySpell >= 2 {
					break // both directions dry: the pass converged
				}
			} else {
				drySpell = 0
			}
		}

		// Rollback: every sub-iteration boundary was a consistent global
		// snapshot, so undoing each rank's moves past its checkpoint
		// restores exactly the best-seen partition and cut. The decision
		// compares collective results (identical on every rank), so all
		// ranks enter the exchange together — a rank whose log is
		// already at its checkpoint just contributes an empty batch.
		if cut > bestCut {
			for i := len(log) - 1; i >= bestLen; i-- {
				mv := log[i]
				part[mv.l] = mv.from
				movedFlag[mv.l] = true
				dirty[mv.l] = true
				// Same-rank neighbors cached the undone move in cutW/
				// boundary; re-mark them exactly as the local batch
				// rollback does, or later passes measure a stale cut.
				for k := g.XAdj[mv.l]; k < g.XAdj[mv.l+1]; k++ {
					if u := g.Adj[k]; g.Home.Owner(u) == me {
						dirty[u-lo] = true
					}
				}
			}
			touched := ge.UpdateIntsTouchedInto(c, part, movedFlag, ghostPart, s.touched)
			if touched != nil {
				s.touched = touched
			}
			for l := range movedFlag {
				movedFlag[l] = false
			}
			for _, slot := range touched {
				for _, l := range ghostAdj(slot) {
					dirty[l] = true
				}
			}
			for l := 0; l < localN; l++ {
				if dirty[l] {
					refresh(l)
					dirty[l] = false
				}
			}
			syncState()
			c.Flops(2 * scanned)
			scanned = 0
		}

		if passMoved == 0 || bestCut >= startCut {
			break // no progress left for another pass to find
		}
	}
	// Retain grown capacity for the next call on this arena.
	s.touchedParts, s.log, s.blocked = touchedParts, log, blocked
}
