package partition

import (
	"testing"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// distCut computes the exact weighted edge cut of a distributed
// partition (test helper; collective).
func distCut(c *machine.Ctx, g *geocol.Graph, ge *geocol.GhostExchange, part []int) float64 {
	me := c.Rank()
	lo := g.Home.Lo(me)
	gp := ge.PushInts(c, part)
	w := 0.0
	for l := 0; l < g.LocalN(me); l++ {
		for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
			u := g.Adj[k]
			var q int
			if g.Home.Owner(u) == me {
				q = part[u-lo]
			} else {
				q = gp[ge.Slot(u)]
			}
			if q != part[l] {
				if g.EdgeW != nil {
					w += g.EdgeW[k]
				} else {
					w++
				}
			}
		}
	}
	return c.SumFloat(w) / 2
}

// TestParallelFMImprovesSeed drives the parallel FM refiner directly on
// a BLOCK-seeded partition of a distributed mesh: the cut must strictly
// improve, the part weights must stay inside the 7% balance window the
// refiner promises, and the whole run must be deterministic.
func TestParallelFMImprovesSeed(t *testing.T) {
	m := mesh.Generate(4000, 7)
	const p, nparts = 4, 4
	run := func() (before, after float64, counts []int) {
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			eb := m.NEdge() / p
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == p-1 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			ge := geocol.NewGhostExchange(c, g)
			b := dist.NewBlock(g.N, nparts)
			lo := g.Home.Lo(c.Rank())
			part := make([]int, g.LocalN(c.Rank()))
			for l := range part {
				part[l] = b.Owner(lo + l)
			}
			cut0 := distCut(c, g, ge, part)
			parallelFM(c, new(fmScratch), g, ge, part, nparts, 4, 0.07)
			cut1 := distCut(c, g, ge, part)
			full := c.AllGatherInts(part)
			if c.Rank() == 0 {
				before, after = cut0, cut1
				counts = make([]int, nparts)
				for _, q := range full {
					counts[q]++
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return before, after, counts
	}
	before, after, counts := run()
	if after >= before {
		t.Errorf("parallel FM did not improve the BLOCK seed: cut %.0f -> %.0f", before, after)
	}
	ideal := float64(m.NNode) / nparts
	for q, n := range counts {
		if float64(n) < ideal*0.93 || float64(n) > ideal*1.07 {
			t.Errorf("part %d holds %d vertices, outside the 7%% window around %.0f", q, n, ideal)
		}
	}
	b2, a2, counts2 := run()
	if b2 != before || a2 != after {
		t.Errorf("parallel FM is not deterministic: cuts (%.0f,%.0f) vs (%.0f,%.0f)", before, after, b2, a2)
	}
	for q := range counts {
		if counts[q] != counts2[q] {
			t.Fatalf("parallel FM part sizes differ across runs: %v vs %v", counts, counts2)
		}
	}
}

// TestParallelFMBeatsGreedy pins the tentpole's relative quality
// claim at the refiner level: started from the identical BLOCK seed on
// the identical distributed graph, the hill-climbing FM must cut no
// more edges than the legacy greedy pass — its move set strictly
// contains the greedy one, and the rollback protocol guarantees climbs
// that fail to pay off are never committed. In practice it cuts
// measurably fewer (see docs/REFINEMENT.md).
func TestParallelFMBeatsGreedy(t *testing.T) {
	m := mesh.Generate(6000, 9)
	const p, nparts = 4, 8
	cutOf := func(fm bool) float64 {
		var cut float64
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			eb := m.NEdge() / p
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == p-1 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			ge := geocol.NewGhostExchange(c, g)
			b := dist.NewBlock(g.N, nparts)
			lo := g.Home.Lo(c.Rank())
			part := make([]int, g.LocalN(c.Rank()))
			for l := range part {
				part[l] = b.Owner(lo + l)
			}
			if fm {
				parallelFM(c, new(fmScratch), g, ge, part, nparts, 4, 0.07)
			} else {
				distRefine(c, g, ge, part, nparts, 4, 0.07)
			}
			res := distCut(c, g, ge, part)
			if c.Rank() == 0 {
				cut = res
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return cut
	}
	fm := cutOf(true)
	greedy := cutOf(false)
	t.Logf("FM cut %.0f, greedy cut %.0f", fm, greedy)
	if fm > greedy {
		t.Errorf("FM refinement cut %.0f worse than greedy refinement cut %.0f", fm, greedy)
	}
}

// TestKwayRefineImprovesSeed checks the serial k-way FM on a gathered
// graph: strict improvement from a BLOCK seed, the balance window
// respected, and no-op on a single part.
func TestKwayRefineImprovesSeed(t *testing.T) {
	m := mesh.Generate(2000, 5)
	var f *geocol.Full
	err := machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1, m.E2))
		f = g.Gather(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	const nparts = 4
	b := dist.NewBlock(f.N, nparts)
	part := make([]int, f.N)
	for v := range part {
		part[v] = b.Owner(v)
	}
	before := CutEdges(f.XAdj, f.Adj, part)
	kwayRefine(new(kwayScratch), f.XAdj, f.Adj, nil, nil, part, nparts, 8, 0.07)
	after := CutEdges(f.XAdj, f.Adj, part)
	if after >= before {
		t.Errorf("kwayRefine did not improve the BLOCK seed: cut %d -> %d", before, after)
	}
	counts := make([]int, nparts)
	for _, q := range part {
		counts[q]++
	}
	ideal := float64(f.N) / nparts
	for q, n := range counts {
		if float64(n) < ideal*0.93 || float64(n) > ideal*1.07 {
			t.Errorf("part %d holds %d vertices, outside the 7%% window around %.0f", q, n, ideal)
		}
	}

	// nparts=1: no boundary, no moves, no panic.
	one := make([]int, f.N)
	kwayRefine(new(kwayScratch), f.XAdj, f.Adj, nil, nil, one, 1, 2, 0.07)
	for v, q := range one {
		if q != 0 {
			t.Fatalf("kwayRefine invented a part for vertex %d: %d", v, q)
		}
	}
}

// TestVCycleRefineNotWorse pins the partition-preserving V-cycle's
// contract: it starts from the default pipeline's (deterministic)
// result and every level of its refinement can only keep or improve
// the cut, so MULTILEVEL with VCycle must never cut more edges than
// without. Balance must hold as usual.
func TestVCycleRefineNotWorse(t *testing.T) {
	m := mesh.Generate(6000, 3)
	const p, nparts = 4, 4
	cutAndCounts := func(ml Multilevel) (int, []int) {
		var cut int
		var counts []int
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			eb := m.NEdge() / p
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == p-1 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			full := c.AllGatherInts(ml.Partition(c, g, nparts))
			f := g.Gather(c)
			if c.Rank() == 0 {
				cut = CutEdges(f.XAdj, f.Adj, full)
				counts = make([]int, nparts)
				for _, q := range full {
					counts[q]++
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return cut, counts
	}
	plain, _ := cutAndCounts(Multilevel{})
	vcycle, counts := cutAndCounts(Multilevel{VCycle: true})
	t.Logf("default cut %d, with V-cycle refinement %d", plain, vcycle)
	if vcycle > plain {
		t.Errorf("V-cycle refinement worsened the cut: %d -> %d", plain, vcycle)
	}
	ideal := m.NNode / nparts
	for q, n := range counts {
		if n < ideal*9/10 || n > ideal*11/10 {
			t.Errorf("part %d holds %d vertices, ideal %d", q, n, ideal)
		}
	}
}

// TestRestrictedMatchingPreservesParts checks the V-cycle ladder's
// foundation: with matching restricted to same-part pairs, every
// coarse cluster is part-pure, so restricting and then projecting the
// partition through the ladder reproduces it exactly.
func TestRestrictedMatchingPreservesParts(t *testing.T) {
	m := mesh.Generate(3000, 11)
	const p, nparts = 4, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		b := dist.NewBlock(g.N, nparts)
		lo := g.Home.Lo(c.Rank())
		part := make([]int, g.LocalN(c.Rank()))
		for l := range part {
			part[l] = b.Owner(lo + l)
		}
		ar := &arena{}
		levels, _, _ := buildLadder(c, ar, g, 512, 0, 42, part)
		if len(levels) == 0 {
			panic("restricted ladder built no levels")
		}
		cpart := part
		for _, lv := range levels {
			cpart = restrictPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, cpart)
		}
		for i := len(levels) - 1; i >= 0; i-- {
			lv := levels[i]
			cpart = projectPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, cpart)
		}
		for l := range part {
			if cpart[l] != part[l] {
				panic("restricted ladder did not preserve the partition")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
