package partition

import (
	"testing"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
)

// meshCuts partitions the standard shell mesh with the named method and
// returns the edge cut.
func meshCuts(t *testing.T, m *mesh.Mesh, name string, p int) int {
	t.Helper()
	pt, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	var cut int
	err = machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		home := geocol.Build(c, m.NNode).Home
		lo, hi := home.Lo(c.Rank()), home.Hi(c.Rank())
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		xs := make([]float64, hi-lo)
		ys := make([]float64, hi-lo)
		zs := make([]float64, hi-lo)
		for l := range xs {
			xs[l], ys[l], zs[l] = m.X[lo+l], m.Y[lo+l], m.Z[lo+l]
		}
		g := geocol.Build(c, m.NNode,
			geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]),
			geocol.WithGeometry(xs, ys, zs))
		part := c.AllGatherInts(pt.Partition(c, g, p))
		f := g.Gather(c)
		if c.Rank() == 0 {
			cut = CutEdges(f.XAdj, f.Adj, part)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return cut
}

// TestMeshCutQualityOrdering pins the paper's Table 2 partition-quality
// relationships on the curved-shell mesh: spectral bisection cuts fewer
// edges than coordinate bisection, and both beat BLOCK by a wide
// margin.
func TestMeshCutQualityOrdering(t *testing.T) {
	m := mesh.Generate(4000, 7)
	const p = 8
	rcb := meshCuts(t, m, "RCB", p)
	rsb := meshCuts(t, m, "RSB", p)
	rsbkl := meshCuts(t, m, "RSB-KL", p)
	blk := meshCuts(t, m, "BLOCK", p)
	if rsb >= rcb {
		t.Errorf("RSB cut %d not better than RCB cut %d on curved mesh", rsb, rcb)
	}
	if rsbkl > rsb {
		t.Errorf("KL refinement worsened RSB cut: %d -> %d", rsb, rsbkl)
	}
	if blk < 2*rcb {
		t.Errorf("BLOCK cut %d should dwarf RCB cut %d on a renumbered mesh", blk, rcb)
	}
}

// TestKLPartitioner checks the standalone Kernighan-Lin partitioner:
// balanced parts, far better than BLOCK on the renumbered mesh, and
// consistent across ranks.
func TestKLPartitioner(t *testing.T) {
	m := mesh.Generate(2000, 5)
	const p = 4
	kl := meshCuts(t, m, "KL", p)
	blk := meshCuts(t, m, "BLOCK", p)
	if kl*3 > blk {
		t.Errorf("KL cut %d not clearly better than BLOCK cut %d", kl, blk)
	}
}

func TestKLBalance(t *testing.T) {
	m := mesh.Generate(1000, 6)
	const p = 4
	pt, err := Lookup("KL")
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		home := geocol.Build(c, m.NNode).Home
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		part := c.AllGatherInts(pt.Partition(c, g, p))
		if c.Rank() == 0 {
			counts := make([]int, p)
			for _, x := range part {
				counts[x]++
			}
			ideal := m.NNode / p
			for r, n := range counts {
				if n < ideal*9/10 || n > ideal*11/10 {
					t.Errorf("part %d holds %d vertices, ideal %d", r, n, ideal)
				}
			}
		}
		_ = home
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultilevelCutQuality pins the multilevel tentpole's quality bar:
// the coarsen → spectral-solve → KL-refine V-cycle must stay within 15%
// of full recursive spectral bisection's edge cut on the reference
// shell meshes (in practice it matches or beats RSB, because the
// per-level refinement acts like RSB-KL).
func TestMultilevelCutQuality(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		seed uint64
	}{
		{4000, 8, 7},
		{2000, 4, 5},
	} {
		m := mesh.Generate(tc.n, tc.seed)
		rsb := meshCuts(t, m, "RSB", tc.p)
		ml := meshCuts(t, m, "MULTILEVEL", tc.p)
		if float64(ml) > 1.15*float64(rsb) {
			t.Errorf("mesh %d/%d parts: MULTILEVEL cut %d exceeds RSB cut %d by more than 15%%",
				tc.n, tc.p, ml, rsb)
		}
	}
}

// TestMultilevelBalance checks the weight balance survives the V-cycle:
// coarse vertices are capped at 1% of the group weight, so projection
// plus refinement must land every part within 10% of ideal.
func TestMultilevelBalance(t *testing.T) {
	m := mesh.Generate(1000, 6)
	const p = 4
	pt, err := Lookup("MULTILEVEL")
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
		part := c.AllGatherInts(pt.Partition(c, g, p))
		if c.Rank() == 0 {
			counts := make([]int, p)
			for _, x := range part {
				counts[x]++
			}
			ideal := m.NNode / p
			for r, n := range counts {
				if n < ideal*9/10 || n > ideal*11/10 {
					t.Errorf("part %d holds %d vertices, ideal %d", r, n, ideal)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultilevelDeterminism guards the collective contract: the same
// graph must produce the identical map on every run (matching,
// contraction and refinement are all deterministic).
func TestMultilevelDeterminism(t *testing.T) {
	m := mesh.Generate(1500, 3)
	a := meshCuts(t, m, "MULTILEVEL", 8)
	b := meshCuts(t, m, "MULTILEVEL", 8)
	if a != b {
		t.Errorf("MULTILEVEL cut differs across runs: %d vs %d", a, b)
	}
}

func TestMultilevelRequiresLink(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		g := geocol.Build(c, 16)
		Multilevel{}.Partition(c, g, 2)
	})
	if err == nil {
		t.Fatal("MULTILEVEL without LINK should fail")
	}
}

func TestKLRequiresLink(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		g := geocol.Build(c, 16)
		KL{}.Partition(c, g, 2)
	})
	if err == nil {
		t.Fatal("KL without LINK should fail")
	}
}
