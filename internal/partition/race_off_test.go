//go:build !race

package partition

// raceEnabled reports that the test binary was built with -race; see
// race_on_test.go.
const raceEnabled = false
