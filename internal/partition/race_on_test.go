//go:build race

package partition

// raceEnabled reports that the test binary was built with -race.
// Host-timing comparisons skip themselves under the race detector: its
// instrumentation slows the refinement-heavy multilevel path more than
// RSB's matvec loops, which skews wall-clock ratios without saying
// anything about either partitioner.
const raceEnabled = true
