package partition

import (
	"fmt"
	"math"

	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// RCB is recursive coordinate bisection (Berger & Bokhari): the
// geometry-based partitioner the paper calls "recursive binary
// coordinate bisection". At each level the current vertex group is cut
// at the weighted median along its widest coordinate direction, and
// the halves are recursed on until every part holds one group. RCB
// consumes GEOMETRY (and LOAD when present) and runs fully distributed:
// extents, weights and medians are found with collectives, never by
// gathering the point set.
type RCB struct{}

func (RCB) Name() string { return "RCB" }

// Capabilities: RCB consumes GEOMETRY and runs fully distributed.
func (RCB) Capabilities() Capabilities {
	return Capabilities{NeedsGeometry: true, Parallel: true}
}

func (RCB) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasGeom {
		panic("partition: RCB requires a GeoCoL GEOMETRY component")
	}
	localN := g.LocalN(c.Rank())
	part := make([]int, localN)
	verts := make([]int, localN)
	for l := range verts {
		verts[l] = l
	}
	// Iterative tree walk in deterministic order; every rank expands
	// tasks identically, so the embedded collectives stay matched.
	stack := []splitTask{{verts: verts, partLo: 0, nparts: nparts}}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.nparts == 1 {
			for _, v := range t.verts {
				part[v] = t.partLo
			}
			continue
		}
		//chaosvet:ignore spmdcollective stack length trajectory is replicated: every rank expands the same pre-order split tree, only the vert contents are rank-local
		d := widestDim(c, g, t.verts)
		nl := halves(t.nparts)
		//chaosvet:ignore spmdcollective stack length trajectory is replicated: every rank expands the same pre-order split tree, only the vert contents are rank-local
		left, right := weightedKeySplit(c, g, t.verts, g.Coords[d], float64(nl)/float64(t.nparts))
		// Push right first so left is processed next (pre-order).
		stack = append(stack,
			splitTask{verts: right, partLo: t.partLo + nl, nparts: t.nparts - nl},
			splitTask{verts: left, partLo: t.partLo, nparts: nl},
		)
	}
	return part
}

// widestDim finds the coordinate direction with the largest global
// extent over the group. Collective.
func widestDim(c *machine.Ctx, g *geocol.Graph, verts []int) int {
	best, bestSpan := 0, -1.0
	for d := 0; d < g.Dim; d++ {
		lo, hi := 1e308, -1e308
		col := g.Coords[d]
		for _, v := range verts {
			if col[v] < lo {
				lo = col[v]
			}
			if col[v] > hi {
				hi = col[v]
			}
		}
		lo = c.MinFloat(lo)
		hi = c.MaxFloat(hi)
		if span := hi - lo; span > bestSpan {
			best, bestSpan = d, span
		}
	}
	c.Words(2 * len(verts) * g.Dim)
	return best
}

// Inertial is inertial (principal-axis) bisection: like RCB but each
// cut is made along the group's principal inertia axis rather than a
// coordinate direction, which adapts to meshes not aligned with the
// axes. Requires GEOMETRY; honors LOAD.
type Inertial struct{}

func (Inertial) Name() string { return "INERTIAL" }

// Capabilities: INERTIAL consumes GEOMETRY and runs fully distributed.
func (Inertial) Capabilities() Capabilities {
	return Capabilities{NeedsGeometry: true, Parallel: true}
}

func (Inertial) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasGeom {
		panic("partition: INERTIAL requires a GeoCoL GEOMETRY component")
	}
	localN := g.LocalN(c.Rank())
	part := make([]int, localN)
	verts := make([]int, localN)
	for l := range verts {
		verts[l] = l
	}
	stack := []splitTask{{verts: verts, partLo: 0, nparts: nparts}}
	key := make([]float64, localN)
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.nparts == 1 {
			for _, v := range t.verts {
				part[v] = t.partLo
			}
			continue
		}
		//chaosvet:ignore spmdcollective stack length trajectory is replicated: every rank expands the same pre-order split tree, only the vert contents are rank-local
		axis, centroid := principalAxis(c, g, t.verts)
		for _, v := range t.verts {
			s := 0.0
			for d := 0; d < g.Dim; d++ {
				s += (g.Coords[d][v] - centroid[d]) * axis[d]
			}
			key[v] = s
		}
		c.Flops(2 * g.Dim * len(t.verts))
		nl := halves(t.nparts)
		//chaosvet:ignore spmdcollective stack length trajectory is replicated: every rank expands the same pre-order split tree, only the vert contents are rank-local
		left, right := weightedKeySplit(c, g, t.verts, key, float64(nl)/float64(t.nparts))
		stack = append(stack,
			splitTask{verts: right, partLo: t.partLo + nl, nparts: t.nparts - nl},
			splitTask{verts: left, partLo: t.partLo, nparts: nl},
		)
	}
	return part
}

// principalAxis computes the dominant eigenvector of the group's
// weighted covariance matrix by power iteration on the (replicated)
// dim×dim matrix assembled with collectives. Collective.
func principalAxis(c *machine.Ctx, g *geocol.Graph, verts []int) (axis, centroid []float64) {
	dim := g.Dim
	if dim > 8 {
		panic(fmt.Sprintf("partition: INERTIAL supports <= 8 dimensions, got %d", dim))
	}
	// Weighted centroid.
	wsum := 0.0
	sums := make([]float64, dim)
	for _, v := range verts {
		w := g.Weight(v)
		wsum += w
		for d := 0; d < dim; d++ {
			sums[d] += w * g.Coords[d][v]
		}
	}
	wTot := c.SumFloat(wsum)
	centroid = make([]float64, dim)
	for d := 0; d < dim; d++ {
		centroid[d] = c.SumFloat(sums[d])
		if wTot > 0 {
			centroid[d] /= wTot
		}
	}
	// Covariance (upper triangle, then mirrored).
	cov := make([]float64, dim*dim)
	for _, v := range verts {
		w := g.Weight(v)
		for a := 0; a < dim; a++ {
			da := g.Coords[a][v] - centroid[a]
			for b := a; b < dim; b++ {
				db := g.Coords[b][v] - centroid[b]
				cov[a*dim+b] += w * da * db
			}
		}
	}
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			cov[a*dim+b] = c.SumFloat(cov[a*dim+b])
			cov[b*dim+a] = cov[a*dim+b]
		}
	}
	c.Flops(len(verts) * dim * (dim + 2))
	// Power iteration, deterministic start.
	axis = make([]float64, dim)
	axis[0] = 1
	tmp := make([]float64, dim)
	for it := 0; it < 50; it++ {
		for a := 0; a < dim; a++ {
			s := 0.0
			for b := 0; b < dim; b++ {
				s += cov[a*dim+b] * axis[b]
			}
			tmp[a] = s
		}
		norm := 0.0
		for a := 0; a < dim; a++ {
			norm += tmp[a] * tmp[a]
		}
		if norm == 0 {
			break // degenerate geometry; keep current axis
		}
		inv := 1 / math.Sqrt(norm)
		for a := 0; a < dim; a++ {
			axis[a] = tmp[a] * inv
		}
	}
	return axis, centroid
}
