package partition

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// racePartitioner is a minimal v2 partitioner for registry tests.
type racePartitioner struct{ name string }

func (p racePartitioner) Name() string { return p.name }
func (racePartitioner) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	return make([]int, g.LocalN(c.Rank()))
}
func (racePartitioner) Capabilities() Capabilities { return Capabilities{} }

// TestRegistryConcurrentAccess hammers Register, Lookup and Names from
// concurrent goroutines; run under -race this pins that the v2
// registry is actually lock-correct (Names used to read the map
// without holding the lock).
func TestRegistryConcurrentAccess(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("RACE-%d-%d", w, i)
				Register(racePartitioner{name: name})
				if _, err := Lookup(name); err != nil {
					t.Errorf("Lookup(%q) after Register: %v", name, err)
				}
				if _, err := Lookup("definitely-not-registered"); err == nil {
					t.Error("Lookup of unregistered name succeeded")
				}
				if len(Names()) == 0 {
					t.Error("Names() empty during concurrent registration")
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLookupUnknownError pins the unknown-name error shape: it names
// the missing partitioner and lists what is registered.
func TestLookupUnknownError(t *testing.T) {
	_, err := Lookup("NO-SUCH-METHOD")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown partitioner "NO-SUCH-METHOD"`) {
		t.Errorf("error %q does not name the missing partitioner", msg)
	}
	if !strings.Contains(msg, "MULTILEVEL") || !strings.Contains(msg, "RCB") {
		t.Errorf("error %q does not list the registered names", msg)
	}
}

// TestNamesSorted pins Partitioners()/Names() ordering: sorted,
// duplicate-free, containing every built-in.
func TestNamesSorted(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("Names() contains %q twice", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"BLOCK", "RANDOM", "RCB", "INERTIAL", "RSB", "RSB-KL", "KL", "MULTILEVEL", "STREAM"} {
		if !seen[want] {
			t.Errorf("built-in %q missing from Names(): %v", want, names)
		}
	}
}

// TestBuiltinCapabilities pins the capability metadata of all nine
// built-in partitioners.
func TestBuiltinCapabilities(t *testing.T) {
	want := map[string]Capabilities{
		"BLOCK":      {Parallel: true},
		"RANDOM":     {Parallel: true},
		"RCB":        {NeedsGeometry: true, Parallel: true},
		"INERTIAL":   {NeedsGeometry: true, Parallel: true},
		"RSB":        {NeedsLink: true},
		"RSB-KL":     {NeedsLink: true},
		"KL":         {NeedsLink: true},
		"MULTILEVEL": {NeedsLink: true, Parallel: true, Tunable: true},
		"STREAM":     {NeedsLink: true, OutOfCore: true},
	}
	for name, caps := range want {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		v2, ok := p.(PartitionerV2)
		if !ok {
			t.Errorf("%s does not implement PartitionerV2", name)
			continue
		}
		if got := v2.Capabilities(); got != caps {
			t.Errorf("%s capabilities %+v, want %+v", name, got, caps)
		}
		if got := Caps(p); got != caps {
			t.Errorf("Caps(%s) = %+v, want %+v", name, got, caps)
		}
	}
	// A legacy v1 partitioner reports the zero capabilities.
	if got := Caps(legacyPartitioner{}); got != (Capabilities{}) {
		t.Errorf("legacy partitioner caps %+v, want zero", got)
	}
}

type legacyPartitioner struct{}

func (legacyPartitioner) Name() string { return "LEGACY" }
func (legacyPartitioner) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	return nil
}

// TestValidateForCapabilityMismatch pins the call-site errors the
// typed path produces for bad spec/graph combinations — the panics
// these used to be.
func TestValidateForCapabilityMismatch(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		linkOnly := geocol.Build(c, 64, geocol.WithLink(
			[]int{0, 1, 2, 3}, []int{1, 2, 3, 4}))
		localN := dist.NewBlock(64, c.Procs()).LocalSize(c.Rank())
		geomOnly := geocol.Build(c, 64, geocol.WithGeometry(make([]float64, localN)))

		if c.Rank() != 0 {
			return // validation is rank-local; checking once is enough
		}
		if _, err := (Spec{Method: MethodRCB}).ValidateFor(linkOnly, 2); err == nil ||
			!strings.Contains(err.Error(), "requires GEOMETRY") {
			t.Errorf("RCB on LINK-only graph: %v, want GEOMETRY requirement error", err)
		}
		if _, err := (Spec{Method: MethodMultilevel}).ValidateFor(geomOnly, 2); err == nil ||
			!strings.Contains(err.Error(), "requires LINK") {
			t.Errorf("MULTILEVEL on GEOMETRY-only graph: %v, want LINK requirement error", err)
		}
		if _, err := (Spec{Method: MethodBlock}).ValidateFor(linkOnly, 0); err == nil ||
			!strings.Contains(err.Error(), "nparts") {
			t.Errorf("nparts=0: %v, want nparts error", err)
		}
		if _, err := (Spec{Method: MethodBlock}).ValidateFor(linkOnly, 2); err != nil {
			t.Errorf("BLOCK on LINK-only graph should validate: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
