package partition

import (
	"sort"

	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// RSB is recursive spectral bisection (Simon; the paper's "eigenvalue
// partitioner"): each group of vertices is split at the weighted median
// of its approximate Fiedler vector, recursively, until nparts groups
// remain. It consumes LINK connectivity and honors LOAD weights.
//
// As in the paper the spectral solve is the expensive step: the paper
// reports 258 virtual seconds for spectral bisection of the 53K mesh on
// 32 processors versus 1.6 s for coordinate bisection. The GeoCoL graph
// is gathered (charged as graph-generation cost) and the recursive
// eigen-computation's full floating-point work is charged to every
// rank's clock — the parallelized eigensolver of the era was memory-
// and synchronization-bound and did not scale, so the replicated-cost
// model preserves the paper's partitioner-cost relationship.
//
// With Refine set, every bisection is post-processed with a
// Kernighan-Lin boundary refinement pass (the RSB-KL variant used for
// the ablation benches).
type RSB struct {
	Refine bool
}

func (r RSB) Name() string {
	if r.Refine {
		return "RSB-KL"
	}
	return "RSB"
}

func (r RSB) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: RSB requires a GeoCoL LINK component")
	}
	f := g.Gather(c)

	// Serial recursive bisection over the gathered graph. Rank 0 runs
	// the solve and broadcasts both the map and the flop count; every
	// rank's clock is charged the full cost (see the type comment).
	var part []int
	var flops int64
	if c.Rank() == 0 {
		part = make([]int, f.N)
		verts := make([]int, f.N)
		for i := range verts {
			verts[i] = i
		}
		type task struct {
			verts  []int
			partLo int
			nparts int
		}
		stack := []task{{verts, 0, nparts}}
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if t.nparts == 1 {
				for _, v := range t.verts {
					part[v] = t.partLo
				}
				continue
			}
			nl := halves(t.nparts)
			left, right, fl := spectralBisect(f, t.verts, float64(nl)/float64(t.nparts), r.Refine)
			flops += fl
			stack = append(stack,
				task{right, t.partLo + nl, t.nparts - nl},
				task{left, t.partLo, nl},
			)
		}
		part = append(part, int(flops))
	}
	part = c.BroadcastInts(0, part)
	flopsAll := part[len(part)-1]
	part = part[:len(part)-1]
	c.Flops(flopsAll)

	// Return this rank's home-resident slice.
	lo := g.Home.Lo(c.Rank())
	out := make([]int, g.LocalN(c.Rank()))
	for l := range out {
		out[l] = part[lo+l]
	}
	return out
}

// spectralBisect splits verts into halves at the weighted median of
// the Fiedler vector of the induced subgraph, returning the flop count
// of the solve.
func spectralBisect(f *geocol.Full, verts []int, frac float64, refine bool) (left, right []int, flops int64) {
	sg := induce(f, verts)
	fv := sg.fiedler(uint64(len(verts))*2654435761 + uint64(len(sg.adj)))

	// Sort subgraph vertices by Fiedler value, tie-broken by original
	// id for determinism.
	order := make([]int, sg.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if fv[ia] != fv[ib] {
			return fv[ia] < fv[ib]
		}
		return sg.orig[ia] < sg.orig[ib]
	})
	totalW := 0.0
	for i := 0; i < sg.n; i++ {
		totalW += sg.w[i]
	}
	target := totalW * frac
	acc := 0.0
	side := make([]bool, sg.n) // true = left
	for _, i := range order {
		if acc < target {
			side[i] = true
			acc += sg.w[i]
		}
	}
	sg.flops += int64(sg.n * 20) // sort + sweep bookkeeping

	if refine {
		klRefine(sg, side, target)
	}
	for i := 0; i < sg.n; i++ {
		if side[i] {
			left = append(left, sg.orig[i])
		} else {
			right = append(right, sg.orig[i])
		}
	}
	return left, right, sg.flops
}

// induce extracts the subgraph of f induced by verts.
func induce(f *geocol.Full, verts []int) *subgraph {
	sg := &subgraph{n: len(verts), orig: append([]int(nil), verts...)}
	local := make(map[int]int, len(verts))
	for i, v := range verts {
		local[v] = i
	}
	sg.xadj = make([]int, sg.n+1)
	sg.w = make([]float64, sg.n)
	for i, v := range verts {
		sg.w[i] = f.Weight(v)
		for _, u := range f.Neighbors(v) {
			if j, ok := local[u]; ok {
				sg.adj = append(sg.adj, j)
			}
		}
		sg.xadj[i+1] = len(sg.adj)
	}
	sg.flops += int64(len(sg.adj) + sg.n)
	return sg
}
