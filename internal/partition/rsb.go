package partition

import (
	"sort"

	"chaos/internal/geocol"
	"chaos/internal/machine"
)

// RSB is recursive spectral bisection (Simon; the paper's "eigenvalue
// partitioner"): each group of vertices is split at the weighted median
// of its approximate Fiedler vector, recursively, until nparts groups
// remain. It consumes LINK connectivity and honors LOAD weights.
//
// As in the paper the spectral solve is the expensive step: the paper
// reports 258 virtual seconds for spectral bisection of the 53K mesh on
// 32 processors versus 1.6 s for coordinate bisection. The GeoCoL graph
// is gathered (charged as graph-generation cost) and the recursive
// eigen-computation's full floating-point work is charged to every
// rank's clock — the parallelized eigensolver of the era was memory-
// and synchronization-bound and did not scale, so the replicated-cost
// model preserves the paper's partitioner-cost relationship.
//
// With Refine set, every bisection is post-processed with a
// Kernighan-Lin boundary refinement pass (the RSB-KL variant used for
// the ablation benches).
type RSB struct {
	Refine bool
}

func (r RSB) Name() string {
	if r.Refine {
		return "RSB-KL"
	}
	return "RSB"
}

// Capabilities: RSB consumes LINK connectivity; its replicated solve
// does not scale with the rank count.
func (RSB) Capabilities() Capabilities { return Capabilities{NeedsLink: true} }

func (r RSB) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: RSB requires a GeoCoL LINK component")
	}
	// One refinement scratch per Partition call, shared by every
	// bisection of the recursion tree (only used with Refine set).
	var s klScratch
	return serialBisectPartition(c, g, nparts,
		func(f *geocol.Full, verts []int, frac float64) ([]int, []int, int64) {
			return spectralBisect(&s, f, verts, frac, r.Refine)
		})
}

// spectralBisect splits verts into halves at the weighted median of
// the Fiedler vector of the induced subgraph, returning the flop count
// of the solve.
func spectralBisect(s *klScratch, f *geocol.Full, verts []int, frac float64, refine bool) (left, right []int, flops int64) {
	sg := induce(f, verts)
	side := fiedlerSide(sg, frac)
	if refine {
		klRefine(s, sg, side, sg.totalWeight()*frac)
	}
	left, right = splitSides(sg, side)
	return left, right, sg.flops
}

// fiedlerSide marks the left side of a weighted-median split of sg
// along its approximate Fiedler vector: vertices are sorted by Fiedler
// value (tie-broken by original id for determinism) and swept until a
// frac share of the vertex weight is on the left.
func fiedlerSide(sg *subgraph, frac float64) []bool {
	fv := sg.fiedler(uint64(sg.n)*2654435761 + uint64(len(sg.adj)))

	order := make([]int, sg.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if fv[ia] != fv[ib] {
			return fv[ia] < fv[ib]
		}
		return sg.orig[ia] < sg.orig[ib]
	})
	target := sg.totalWeight() * frac
	acc := 0.0
	side := make([]bool, sg.n) // true = left
	for _, i := range order {
		if acc < target {
			side[i] = true
			acc += sg.w[i]
		}
	}
	sg.flops += int64(sg.n * 20) // sort + sweep bookkeeping
	return side
}

// splitSides partitions sg's vertices by side, returning original-id
// lists.
func splitSides(sg *subgraph, side []bool) (left, right []int) {
	for i := 0; i < sg.n; i++ {
		if side[i] {
			left = append(left, sg.orig[i])
		} else {
			right = append(right, sg.orig[i])
		}
	}
	return left, right
}

// induce extracts the subgraph of f induced by verts. The global-to-
// local translation uses a scatter array rather than a map: bisection
// induces subgraphs proportional to the whole recursion tree, and the
// array keeps that linear in practice.
func induce(f *geocol.Full, verts []int) *subgraph {
	sg := &subgraph{n: len(verts), orig: append([]int(nil), verts...)}
	local := make([]int, f.N)
	for i := range local {
		local[i] = -1
	}
	for i, v := range verts {
		local[v] = i
	}
	sg.xadj = make([]int, sg.n+1)
	sg.w = make([]float64, sg.n)
	for i, v := range verts {
		sg.w[i] = f.Weight(v)
		for k := f.XAdj[v]; k < f.XAdj[v+1]; k++ {
			if j := local[f.Adj[k]]; j >= 0 {
				sg.adj = append(sg.adj, j)
				if f.EdgeW != nil {
					sg.ew = append(sg.ew, f.EdgeW[k])
				}
			}
		}
		sg.xadj[i+1] = len(sg.adj)
	}
	sg.flops += int64(len(sg.adj) + sg.n)
	return sg
}
