package partition

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"chaos/internal/geocol"
	"chaos/internal/stream"
)

// Method is the typed identity of a partitioning method — the
// replacement for the bare method-name string of the Fortran-D-style
// "SET distfmt BY PARTITIONING G USING <name>" directive. The value is
// the registry name, so custom partitioners linked via Register are
// addressed by Method(p.Name()).
type Method string

// Built-in partitioning methods (paper Section 4.2 plus MULTILEVEL).
const (
	MethodBlock      Method = "BLOCK"
	MethodRandom     Method = "RANDOM"
	MethodRCB        Method = "RCB"
	MethodInertial   Method = "INERTIAL"
	MethodRSB        Method = "RSB"
	MethodRSBKL      Method = "RSB-KL"
	MethodKL         Method = "KL"
	MethodMultilevel Method = "MULTILEVEL"
	MethodStream     Method = "STREAM"
)

// StreamObjective names the greedy placement rule of the STREAM
// method (spec-level counterpart of stream.Objective).
type StreamObjective string

// STREAM objectives.
const (
	// ObjectiveLDG is linear deterministic greedy placement (the
	// STREAM default).
	ObjectiveLDG StreamObjective = "LDG"
	// ObjectiveFennel is the degree-penalized Fennel objective.
	ObjectiveFennel StreamObjective = "FENNEL"
)

// Spec is a typed, validated partitioner selection: the method plus
// the tuning knobs that used to require importing internal/partition
// and registering a custom-named Multilevel configuration. The zero
// value of every option keeps the method default, so Spec{Method:
// MethodMultilevel} behaves exactly like the old "MULTILEVEL" string.
//
// A Spec is resolved against the registry and validated against the
// resolved partitioner's Capabilities and the GeoCoL graph's
// components before any partitioning work starts, so a bad
// combination (RCB without GEOMETRY, tuning knobs on an untunable
// method, nonsensical option values) fails with a descriptive error
// at the call site instead of a panic deep in the library.
type Spec struct {
	// Method names the partitioner (registry name).
	Method Method

	// CoarsenTo stops multilevel coarsening once a level has at most
	// this many vertices (0 = default 100).
	CoarsenTo int
	// ParallelThreshold is the minimum global vertex count for the
	// distributed multilevel coarsening path (0 = default 2048;
	// negative forces the serial gather-everything path at any size).
	ParallelThreshold int
	// FMPasses is the per-level pass budget of the hill-climbing
	// parallel FM refiner (0 = default; negative selects the legacy
	// greedy refiner).
	FMPasses int
	// VCycle enables the partition-preserving second V-cycle.
	VCycle bool
	// Seed salts randomized tie-breaking: the RANDOM scatter stream
	// and MULTILEVEL's distributed matching (0 = method default).
	Seed uint64
	// Imbalance is the balance tolerance of the distributed multilevel
	// refinement (fractional; 0 = default 0.07, must stay below 0.5).
	Imbalance float64

	// Objective selects the STREAM placement rule ("" = ObjectiveLDG).
	Objective StreamObjective
	// StreamBuffer is STREAM's bounded buffer budget in vertices — the
	// slab/pipeline chunk granularity (0 = stream default 4096).
	StreamBuffer int
	// Restreams is STREAM's count of additional buffered re-placement
	// passes (0 = single pass; at most 16).
	Restreams int
	// BalanceSlack is STREAM's part-capacity slack fraction: no part
	// exceeds (1+BalanceSlack) x the ideal load (0 = default 0.05,
	// must stay below 0.5).
	BalanceSlack float64
}

// tuned reports whether any multilevel tuning knob departs from its
// zero (method-default) value. Seed is handled separately because
// RANDOM accepts it too.
func (sp Spec) tuned() bool {
	return sp.CoarsenTo != 0 || sp.ParallelThreshold != 0 ||
		sp.FMPasses != 0 || sp.VCycle || sp.Imbalance != 0
}

// streamTuned reports whether any STREAM tuning knob departs from its
// zero (method-default) value.
func (sp Spec) streamTuned() bool {
	return sp.Objective != "" || sp.StreamBuffer != 0 ||
		sp.Restreams != 0 || sp.BalanceSlack != 0
}

// String renders the spec in the form ParseSpec accepts: the bare
// method name when every option is default, otherwise
// "METHOD(key=value,...)" with only the non-default options listed.
func (sp Spec) String() string {
	var opts []string
	if sp.CoarsenTo != 0 {
		opts = append(opts, fmt.Sprintf("CoarsenTo=%d", sp.CoarsenTo))
	}
	if sp.ParallelThreshold != 0 {
		opts = append(opts, fmt.Sprintf("ParallelThreshold=%d", sp.ParallelThreshold))
	}
	if sp.FMPasses != 0 {
		opts = append(opts, fmt.Sprintf("FMPasses=%d", sp.FMPasses))
	}
	if sp.VCycle {
		opts = append(opts, "VCycle=true")
	}
	if sp.Seed != 0 {
		opts = append(opts, fmt.Sprintf("Seed=%d", sp.Seed))
	}
	if sp.Imbalance != 0 {
		opts = append(opts, fmt.Sprintf("Imbalance=%g", sp.Imbalance))
	}
	if sp.Objective != "" {
		opts = append(opts, fmt.Sprintf("Objective=%s", sp.Objective))
	}
	if sp.StreamBuffer != 0 {
		opts = append(opts, fmt.Sprintf("StreamBuffer=%d", sp.StreamBuffer))
	}
	if sp.Restreams != 0 {
		opts = append(opts, fmt.Sprintf("Restreams=%d", sp.Restreams))
	}
	if sp.BalanceSlack != 0 {
		opts = append(opts, fmt.Sprintf("BalanceSlack=%g", sp.BalanceSlack))
	}
	if len(opts) == 0 {
		return string(sp.Method)
	}
	sort.Strings(opts)
	return fmt.Sprintf("%s(%s)", sp.Method, strings.Join(opts, ","))
}

// ParseSpec parses the Fortran-D-style string form of a spec: a bare
// registry name ("MULTILEVEL", "RCB", ...) or a name followed by a
// parenthesized, comma-separated option list ("MULTILEVEL(CoarsenTo=
// 200,VCycle=true)"). Option keys are matched case-insensitively
// against the Spec fields. The method name itself is not checked
// against the registry here — registration may legitimately happen
// later — so an unknown method surfaces at Resolve time with the
// registry's unknown-partitioner error.
//
// Deprecated: construct a typed Spec literal (Spec{Method: MethodRCB})
// instead; it exposes the tuning knobs with compile-time field checks.
// The string form survives for the Fortran-D front end and for
// external callers holding user-authored spec strings.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("partition: empty partitioner spec")
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return Spec{Method: Method(s)}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Spec{}, fmt.Errorf("partition: malformed spec %q: missing closing parenthesis", s)
	}
	sp := Spec{Method: Method(strings.TrimSpace(s[:open]))}
	if sp.Method == "" {
		return Spec{}, fmt.Errorf("partition: malformed spec %q: missing method name", s)
	}
	body := s[open+1 : len(s)-1]
	if strings.TrimSpace(body) == "" {
		return sp, nil
	}
	for _, kv := range strings.Split(body, ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return Spec{}, fmt.Errorf("partition: malformed spec option %q: want key=value", strings.TrimSpace(kv))
		}
		key := strings.ToLower(strings.TrimSpace(kv[:eq]))
		val := strings.TrimSpace(kv[eq+1:])
		var err error
		switch key {
		case "coarsento":
			sp.CoarsenTo, err = strconv.Atoi(val)
		case "parallelthreshold":
			sp.ParallelThreshold, err = strconv.Atoi(val)
		case "fmpasses":
			sp.FMPasses, err = strconv.Atoi(val)
		case "vcycle":
			sp.VCycle, err = strconv.ParseBool(val)
		case "seed":
			sp.Seed, err = strconv.ParseUint(val, 10, 64)
		case "imbalance":
			sp.Imbalance, err = strconv.ParseFloat(val, 64)
		case "objective":
			sp.Objective = StreamObjective(strings.ToUpper(val))
		case "streambuffer":
			sp.StreamBuffer, err = strconv.Atoi(val)
		case "restreams":
			sp.Restreams, err = strconv.Atoi(val)
		case "balanceslack":
			sp.BalanceSlack, err = strconv.ParseFloat(val, 64)
		default:
			return Spec{}, fmt.Errorf("partition: unknown spec option %q (have CoarsenTo, ParallelThreshold, FMPasses, VCycle, Seed, Imbalance, Objective, StreamBuffer, Restreams, BalanceSlack)", strings.TrimSpace(kv[:eq]))
		}
		if err != nil {
			return Spec{}, fmt.Errorf("partition: bad value for spec option %s: %v", key, err)
		}
	}
	return sp, nil
}

// MustSpec is ParseSpec for trusted literals; it panics on error.
//
// Deprecated: a trusted literal is exactly the case where a typed Spec
// literal (Spec{Method: MethodRCB}) says the same thing with
// compile-time checking and nothing to panic on.
func MustSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// Resolve looks the spec's method up in the registry and applies the
// tuning options, returning the ready-to-run Partitioner. Option
// values are range-checked here, and tuning knobs on a method that is
// not Tunable (only MULTILEVEL is, among the built-ins) are rejected
// rather than silently dropped.
func (sp Spec) Resolve() (Partitioner, error) {
	if sp.Method == "" {
		return nil, fmt.Errorf("partition: spec has no method (have %v)", Names())
	}
	p, err := Lookup(string(sp.Method))
	if err != nil {
		return nil, err
	}
	if sp.Imbalance != 0 && (sp.Imbalance < 0 || sp.Imbalance >= 0.5) {
		return nil, fmt.Errorf("partition: spec %s: Imbalance %g out of range (0, 0.5)", sp.Method, sp.Imbalance)
	}
	if sp.CoarsenTo < 0 {
		return nil, fmt.Errorf("partition: spec %s: CoarsenTo %d is negative", sp.Method, sp.CoarsenTo)
	}
	ml, isML := p.(Multilevel)
	if sp.tuned() && !isML {
		return nil, fmt.Errorf("partition: method %s does not accept multilevel tuning options (CoarsenTo/ParallelThreshold/FMPasses/VCycle/Imbalance); they apply to %s only", sp.Method, MethodMultilevel)
	}
	st, isStream := p.(Streaming)
	if sp.streamTuned() && !isStream {
		return nil, fmt.Errorf("partition: method %s does not accept streaming tuning options (Objective/StreamBuffer/Restreams/BalanceSlack); they apply to %s only", sp.Method, MethodStream)
	}
	if isStream {
		switch sp.Objective {
		case "", ObjectiveLDG:
			st.Objective = stream.LDG
		case ObjectiveFennel:
			st.Objective = stream.Fennel
		default:
			return nil, fmt.Errorf("partition: spec %s: unknown Objective %q (have %s, %s)", sp.Method, sp.Objective, ObjectiveLDG, ObjectiveFennel)
		}
		if sp.StreamBuffer < 0 {
			return nil, fmt.Errorf("partition: spec %s: StreamBuffer %d is negative", sp.Method, sp.StreamBuffer)
		}
		if sp.Restreams < 0 || sp.Restreams > 16 {
			return nil, fmt.Errorf("partition: spec %s: Restreams %d out of range [0, 16]", sp.Method, sp.Restreams)
		}
		if sp.BalanceSlack != 0 && (sp.BalanceSlack < 0 || sp.BalanceSlack >= 0.5) {
			return nil, fmt.Errorf("partition: spec %s: BalanceSlack %g out of range (0, 0.5)", sp.Method, sp.BalanceSlack)
		}
		st.Buffer = sp.StreamBuffer
		st.Restreams = sp.Restreams
		st.Slack = sp.BalanceSlack
		st.Seed = sp.Seed
		return st, nil
	}
	if isML {
		if sp.CoarsenTo != 0 {
			ml.CoarsenTo = sp.CoarsenTo
		}
		if sp.ParallelThreshold != 0 {
			ml.ParallelThreshold = sp.ParallelThreshold
		}
		if sp.FMPasses != 0 {
			ml.FMPasses = sp.FMPasses
		}
		if sp.VCycle {
			ml.VCycle = true
		}
		if sp.Seed != 0 {
			ml.Seed = sp.Seed
		}
		if sp.Imbalance != 0 {
			ml.Imbalance = sp.Imbalance
		}
		return ml, nil
	}
	if sp.Seed != 0 {
		rp, isRandom := p.(RandomPartitioner)
		if !isRandom {
			return nil, fmt.Errorf("partition: method %s does not accept a Seed; it applies to %s, %s and %s", sp.Method, MethodRandom, MethodMultilevel, MethodStream)
		}
		rp.Seed = sp.Seed
		return rp, nil
	}
	return p, nil
}

// ValidateFor resolves the spec and validates it against the
// components g actually carries and the part count, using the
// capability metadata of the resolved partitioner. It returns the
// resolved partitioner so callers validate and run in one step.
func (sp Spec) ValidateFor(g *geocol.Graph, nparts int) (Partitioner, error) {
	p, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	if nparts < 1 {
		return nil, fmt.Errorf("partition: spec %s: nparts %d, want >= 1", sp.Method, nparts)
	}
	caps := Caps(p)
	if caps.NeedsLink && !g.HasLink {
		return nil, fmt.Errorf("partition: %s requires LINK connectivity, but the GeoCoL graph was constructed without it — CONSTRUCT with edge endpoint arrays (GeoColInput.Link1/Link2)", sp.Method)
	}
	if caps.NeedsGeometry && !g.HasGeom {
		return nil, fmt.Errorf("partition: %s requires GEOMETRY coordinates, but the GeoCoL graph was constructed without them — CONSTRUCT with coordinate arrays (GeoColInput.Geometry)", sp.Method)
	}
	return p, nil
}
