package partition

import (
	"strings"
	"testing"
)

func TestParseSpecBareNames(t *testing.T) {
	for _, name := range []string{"BLOCK", "RANDOM", "RCB", "INERTIAL", "RSB", "RSB-KL", "KL", "MULTILEVEL"} {
		sp, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", name, err)
		}
		if sp != (Spec{Method: Method(name)}) {
			t.Errorf("ParseSpec(%q) = %+v, want bare method", name, sp)
		}
		if sp.String() != name {
			t.Errorf("String() = %q, want %q", sp.String(), name)
		}
	}
}

func TestParseSpecOptions(t *testing.T) {
	sp, err := ParseSpec("MULTILEVEL(CoarsenTo=200, ParallelThreshold=512, FMPasses=2, VCycle=true, Seed=7, Imbalance=0.05)")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Method: MethodMultilevel, CoarsenTo: 200, ParallelThreshold: 512,
		FMPasses: 2, VCycle: true, Seed: 7, Imbalance: 0.05}
	if sp != want {
		t.Errorf("parsed %+v, want %+v", sp, want)
	}
	// String renders a form ParseSpec accepts (round trip).
	back, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("round trip of %q: %v", sp.String(), err)
	}
	if back != sp {
		t.Errorf("round trip %+v != %+v", back, sp)
	}
	// Keys are case-insensitive (the Fortran-D front end upcases).
	up, err := ParseSpec("MULTILEVEL(COARSENTO=200,VCYCLE=TRUE)")
	if err != nil {
		t.Fatal(err)
	}
	if up.CoarsenTo != 200 || !up.VCycle {
		t.Errorf("upcased options not applied: %+v", up)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"MULTILEVEL(CoarsenTo=200",
		"MULTILEVEL(CoarsenTo)",
		"MULTILEVEL(Bogus=1)",
		"MULTILEVEL(CoarsenTo=x)",
		"(CoarsenTo=1)",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestSpecResolveAppliesOptions(t *testing.T) {
	sp := Spec{Method: MethodMultilevel, CoarsenTo: 250, VCycle: true, Seed: 9, Imbalance: 0.03}
	p, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ml, ok := p.(Multilevel)
	if !ok {
		t.Fatalf("resolved %T, want Multilevel", p)
	}
	if ml.CoarsenTo != 250 || !ml.VCycle || ml.Seed != 9 || ml.Imbalance != 0.03 {
		t.Errorf("options not applied: %+v", ml)
	}

	rp, err := Spec{Method: MethodRandom, Seed: 42}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rp.(RandomPartitioner).Seed != 42 {
		t.Errorf("RANDOM seed not applied: %+v", rp)
	}
}

func TestSpecResolveErrors(t *testing.T) {
	cases := []struct {
		sp   Spec
		frag string
	}{
		{Spec{}, "no method"},
		{Spec{Method: "NOPE"}, "unknown partitioner"},
		{Spec{Method: MethodRCB, CoarsenTo: 10}, "does not accept multilevel tuning"},
		{Spec{Method: MethodRSB, VCycle: true}, "does not accept multilevel tuning"},
		{Spec{Method: MethodBlock, Seed: 3}, "does not accept a Seed"},
		{Spec{Method: MethodMultilevel, Imbalance: 0.9}, "Imbalance"},
		{Spec{Method: MethodMultilevel, CoarsenTo: -5}, "negative"},
	}
	for _, c := range cases {
		_, err := c.sp.Resolve()
		if err == nil {
			t.Errorf("Resolve(%+v) succeeded, want error containing %q", c.sp, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Resolve(%+v) error %q does not mention %q", c.sp, err, c.frag)
		}
	}
}

func TestSpecDefaultsMatchStringPath(t *testing.T) {
	// The zero-option spec must resolve to the registry value itself,
	// which is what guarantees typed and string paths produce
	// bit-identical partitions.
	for _, name := range []string{"BLOCK", "RCB", "RSB", "MULTILEVEL"} {
		byName, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		bySpec, err := Spec{Method: Method(name)}.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if byName != bySpec {
			t.Errorf("%s: typed resolve %#v differs from Lookup %#v", name, bySpec, byName)
		}
	}
}
