package partition

import (
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/stream"
)

// Streaming is the registry adapter of internal/stream's out-of-core
// partitioner family (method "STREAM"): the buffered bootstrap
// (streaming clustering plus an in-memory coarse solve) followed by
// greedy re-placement passes under the LDG or Fennel objective. Under
// the SPMD machine it follows the replicated-cost convention of the
// serial methods (see serialBisectPartition): the GeoCoL graph is
// gathered and every rank runs the identical deterministic pipeline,
// so the result is bit-for-bit independent of the rank count and
// backend. Resident state of the pipeline itself is one slab plus the
// O(nparts) placer and the vertex-proportional bootstrap model — the
// out-of-core contract Capabilities.OutOfCore declares;
// stream.Partition is the machine-free entry point that honors it
// against file streams the machine path never needs.
type Streaming struct {
	// Objective selects stream.LDG (default) or stream.Fennel.
	Objective stream.Objective
	// Buffer is the resident fringe granularity in vertices per slab
	// (0 = stream.DefaultSlabVerts).
	Buffer int
	// Restreams is the number of additional re-placement passes.
	Restreams int
	// Slack is the part-capacity slack fraction (0 = default 0.05).
	Slack float64
	// Seed salts deterministic tie-breaking.
	Seed uint64
}

func (Streaming) Name() string { return "STREAM" }

// Capabilities: STREAM consumes connectivity only and keeps O(parts)
// partitioner state per pass — the only registry method that does not
// need the edge set resident.
func (Streaming) Capabilities() Capabilities {
	return Capabilities{NeedsLink: true, OutOfCore: true}
}

func (sp Streaming) Partition(c *machine.Ctx, g *geocol.Graph, nparts int) []int {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: STREAM requires a GeoCoL LINK component")
	}
	f := g.Gather(c)

	chunk := sp.Buffer
	if chunk <= 0 {
		chunk = stream.DefaultSlabVerts
	}
	var w []float64
	if f.HasLoad {
		w = f.Weights
	}
	// Every rank runs the identical deterministic pipeline on the
	// gathered graph; fine-level edges are treated as unit weight (the
	// edge-stream model carries none).
	part, err := stream.PartitionWeighted(stream.NewMemStream(f.XAdj, f.Adj, chunk),
		nparts, w, stream.Options{
			Objective: sp.Objective,
			Slack:     sp.Slack,
			Restreams: sp.Restreams,
			Seed:      sp.Seed,
		})
	if err != nil {
		panic("partition: STREAM on gathered graph: " + err.Error())
	}

	// Modeled cost, replicated on every clock: a k-way scan per vertex
	// plus a touch per directed edge, once per pass (the bootstrap's
	// two model passes included).
	passes := 3 + sp.Restreams
	c.Flops(passes * (g.N*nparts + 2*f.NEdges))

	lo := g.Home.Lo(c.Rank())
	out := make([]int, g.LocalN(c.Rank()))
	copy(out, part[lo:lo+len(out)])
	return out
}

// Cut returns the exact weighted edge cut of a distributed partition
// (home-local, as the partitioners return it). It builds a throwaway
// ghost exchange; callers refining repeatedly should keep their own.
// Collective.
func Cut(c *machine.Ctx, g *geocol.Graph, part []int) float64 {
	me := c.Rank()
	lo := g.Home.Lo(me)
	ge := geocol.NewGhostExchange(c, g)
	gp := ge.PushInts(c, part)
	w := 0.0
	for l := 0; l < g.LocalN(me); l++ {
		for k := g.XAdj[l]; k < g.XAdj[l+1]; k++ {
			u := g.Adj[k]
			var q int
			if g.Home.Owner(u) == me {
				q = part[u-lo]
			} else {
				q = gp[ge.Slot(u)]
			}
			if q != part[l] {
				if g.EdgeW != nil {
					w += g.EdgeW[k]
				} else {
					w++
				}
			}
		}
	}
	return c.SumFloat(w) / 2
}

// RefineLadder refines a seed partition (e.g. a STREAM first-touch
// cold start) at every scale and retains the resulting
// partition-preserving coarsening ladder for incremental warm
// Repartition — the bridge that lets a cheap streaming partition
// bootstrap the multilevel warm path without ever paying a full cold
// MULTILEVEL run. It mirrors vcycleRefine (coarsen with matching
// restricted to same-part pairs, polish the gathered coarsest level,
// project and FM-refine back up), but keeps the ladder instead of
// discarding it. On the serial path (single rank or a sub-threshold
// graph) the seed is polished by the serial k-way FM and no ladder is
// retained, matching PartitionLadder's convention. The seed must be
// home-local with nparts parts; it is not modified. Collective.
func (ml Multilevel) RefineLadder(c *machine.Ctx, g *geocol.Graph, nparts int, seed []int) ([]int, *Ladder) {
	checkArgs(g, nparts)
	if !g.HasLink {
		panic("partition: MULTILEVEL requires a GeoCoL LINK component")
	}
	part := append([]int(nil), seed...)
	ar := &arena{}
	thr := ml.parallelThreshold()
	if !(c.Procs() > 1 && thr > 0 && g.N >= thr && g.N > ml.serialTo(nparts)) {
		serialKway(c, ar, g, part, nparts, 8, ml.tol())
		return part, nil
	}

	totalW := 0.0
	for l := 0; l < g.LocalN(c.Rank()); l++ {
		totalW += g.Weight(l)
	}
	totalW = c.SumFloat(totalW)
	maxW := totalW * 0.01

	serialTo := ml.serialTo(nparts)
	levels, cur, cpart := buildLadder(c, ar, g, serialTo, maxW, ml.Seed^0xbf58476d1ce4e5b9, part)
	if len(levels) == 0 {
		// Matching stalled immediately: refine flat, nothing to retain.
		ml.refineLevel(c, ar, g, geocol.NewGhostExchange(c, g), part, nparts, true)
		return part, nil
	}
	serialKway(c, ar, cur, cpart, nparts, 8, ml.tol())
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		cpart = projectPart(c, &ar.proj, lv.fine, lv.cmap, lv.coarse.Home, cpart)
		ml.refineLevel(c, ar, lv.fine, lv.ge, cpart, nparts, i == 0)
	}
	ld := &Ladder{n: g.N, nparts: nparts, levels: levels, coarsest: cur, ar: ar}
	return cpart, ld
}
