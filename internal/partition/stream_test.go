package partition

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/mesh"
	"chaos/internal/stream"
)

// meshCSRFull assembles the full sorted CSR of a mesh — the same
// adjacency the edge-stream sources emit.
func meshCSRFull(m *mesh.Mesh) (xadj, adj []int) {
	deg := make([]int, m.NNode)
	for i := range m.E1 {
		deg[m.E1[i]]++
		deg[m.E2[i]]++
	}
	xadj = make([]int, m.NNode+1)
	for v := 0; v < m.NNode; v++ {
		xadj[v+1] = xadj[v] + deg[v]
	}
	adj = make([]int, xadj[m.NNode])
	at := append([]int(nil), xadj[:m.NNode]...)
	for i := range m.E1 {
		a, b := m.E1[i], m.E2[i]
		adj[at[a]] = b
		at[a]++
		adj[at[b]] = a
		at[b]++
	}
	for v := 0; v < m.NNode; v++ {
		sort.Ints(adj[xadj[v]:xadj[v+1]])
	}
	return xadj, adj
}

func TestStreamSpecParseResolve(t *testing.T) {
	sp, err := ParseSpec("STREAM(Objective=FENNEL, StreamBuffer=512, Restreams=2, BalanceSlack=0.1, Seed=5)")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Method: MethodStream, Objective: ObjectiveFennel,
		StreamBuffer: 512, Restreams: 2, BalanceSlack: 0.1, Seed: 5}
	if sp != want {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
	back, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("round trip of %q: %v", sp.String(), err)
	}
	if back != sp {
		t.Errorf("round trip %+v != %+v", back, sp)
	}

	p, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	st, ok := p.(Streaming)
	if !ok {
		t.Fatalf("resolved %T, want Streaming", p)
	}
	if st.Objective != stream.Fennel || st.Buffer != 512 || st.Restreams != 2 ||
		st.Slack != 0.1 || st.Seed != 5 {
		t.Errorf("options not applied: %+v", st)
	}

	for _, c := range []struct {
		sp   Spec
		frag string
	}{
		{Spec{Method: MethodStream, Objective: "BOGUS"}, "Objective"},
		{Spec{Method: MethodStream, Restreams: -1}, "Restreams"},
		{Spec{Method: MethodStream, Restreams: 99}, "Restreams"},
		{Spec{Method: MethodStream, BalanceSlack: 0.9}, "BalanceSlack"},
		{Spec{Method: MethodStream, StreamBuffer: -4}, "StreamBuffer"},
		{Spec{Method: MethodMultilevel, Restreams: 2}, "STREAM only"},
		{Spec{Method: MethodStream, CoarsenTo: 50}, "multilevel tuning"},
	} {
		_, err := c.sp.Resolve()
		if err == nil {
			t.Errorf("Resolve(%+v) succeeded, want error mentioning %q", c.sp, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Resolve(%+v) error %q does not mention %q", c.sp, err, c.frag)
		}
	}
}

// TestStreamAdapterMatchesEngine pins that the registry STREAM method
// is the machine-free engine bit for bit, at every rank count — the
// replicated-pipeline contract.
func TestStreamAdapterMatchesEngine(t *testing.T) {
	m := mesh.Generate(600, 5)
	xadj, adj := meshCSRFull(m)
	const nparts = 4
	opt := stream.Options{Restreams: 1, Seed: 7}
	want, err := stream.Partition(stream.NewMemStream(xadj, adj, stream.DefaultSlabVerts), nparts, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		cfg := machine.IPSC860(p)
		cfg.Seed = 42
		var full []int
		err := machine.Run(cfg, func(c *machine.Ctx) {
			eb := m.NEdge() / p
			elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
			if c.Rank() == p-1 {
				ehi = m.NEdge()
			}
			g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))
			sp := Streaming{Restreams: 1, Seed: 7}
			part := c.AllGatherInts(sp.Partition(c, g, nparts))
			if c.Rank() == 0 {
				full = part
			}
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for v := range want {
			if full[v] != want[v] {
				t.Fatalf("P=%d: adapter diverges from engine at vertex %d: %d vs %d",
					p, v, full[v], want[v])
			}
		}
	}
}

// TestStreamQualityMemoryPin is the out-of-core quality contract on
// the paper's 21952-node mesh: the streaming engine must land within
// 1.4x of MULTILEVEL's cut while allocating at least 10x less than
// the in-memory multilevel run, stay deterministic at a fixed seed,
// and partition an edge-stream file at least 10x larger than its
// resident fringe to the identical answer.
func TestStreamQualityMemoryPin(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("heavy quality pin; skipped under -short and -race")
	}
	m := mesh.Generate(21952, 42)
	const nparts = 8
	opt := stream.Options{Restreams: 2, Seed: 12345}

	// MULTILEVEL baseline: cut and end-to-end allocation of the
	// in-memory run (graph build included; it is a rounding error
	// against the coarsening ladder).
	var mlCut float64
	var s0, s1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&s0)
	cfg := machine.IPSC860(1)
	cfg.Seed = 42
	err := machine.Run(cfg, func(c *machine.Ctx) {
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1, m.E2))
		part := Multilevel{Seed: 12345}.Partition(c, g, nparts)
		mlCut = Cut(c, g, part)
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&s1)
	mlBytes := s1.TotalAlloc - s0.TotalAlloc

	// Streaming engine on the same graph.
	xadj, adj := meshCSRFull(m)
	runtime.GC()
	runtime.ReadMemStats(&s0)
	ms := stream.NewMemStream(xadj, adj, stream.DefaultSlabVerts)
	part, err := stream.Partition(ms, nparts, opt)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&s1)
	stBytes := s1.TotalAlloc - s0.TotalAlloc

	cut, err := stream.Cut(ms, part)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ML cut=%.0f (%d bytes), STREAM cut=%d (%d bytes)", mlCut, mlBytes, cut, stBytes)
	if float64(cut) > 1.4*mlCut {
		t.Errorf("STREAM cut %d exceeds 1.4x MULTILEVEL %.0f", cut, mlCut)
	}
	if stBytes*10 > mlBytes {
		t.Errorf("STREAM allocated %d bytes, want >=10x below MULTILEVEL's %d", stBytes, mlBytes)
	}

	// Deterministic at a fixed seed.
	again, err := stream.Partition(stream.NewMemStream(xadj, adj, stream.DefaultSlabVerts), nparts, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range part {
		if again[v] != part[v] {
			t.Fatalf("same seed diverges at vertex %d: %d vs %d", v, again[v], part[v])
		}
	}

	// Out-of-core fringe pin: the same mesh as an edge-stream file in
	// 256-vertex slabs. The file must dwarf the resident fringe and
	// decode to the identical partition (slab granularity must not
	// matter).
	side := mesh.SideFor(m.NNode)
	src := mesh.NewLatticeSource(side, side, side, 42)
	path := filepath.Join(t.TempDir(), "mesh.cs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Copy(f, stream.FromSource(src, 256)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rd, err := stream.NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	fringe := 0
	var slab stream.Slab
	for {
		if err := rd.Next(&slab); err != nil {
			break
		}
		if b := 8 * (len(slab.XAdj) + len(slab.Adj)); b > fringe {
			fringe = b
		}
	}
	t.Logf("file=%d bytes, resident fringe=%d bytes", st.Size(), fringe)
	if st.Size() < int64(10*fringe) {
		t.Errorf("edge-stream file %d bytes is not >=10x its %d-byte resident fringe", st.Size(), fringe)
	}
	fpart, err := stream.Partition(rd, nparts, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range part {
		if fpart[v] != part[v] {
			t.Fatalf("file-backed partition diverges at vertex %d: %d vs %d", v, fpart[v], part[v])
		}
	}
}

// TestStreamRefineLadder pins the STREAM -> MULTILEVEL bridge: a
// streaming first-touch partition refined through RefineLadder must
// not lose cut, must stay balanced, and on the parallel path must
// hand back a reusable ladder for warm repartitions.
func TestStreamRefineLadder(t *testing.T) {
	m := mesh.Generate(4096, 7)
	const nparts, p = 4, 4
	cfg := machine.IPSC860(p)
	cfg.Seed = 42
	err := machine.Run(cfg, func(c *machine.Ctx) {
		eb := m.NEdge() / p
		elo, ehi := c.Rank()*eb, (c.Rank()+1)*eb
		if c.Rank() == p-1 {
			ehi = m.NEdge()
		}
		g := geocol.Build(c, m.NNode, geocol.WithLink(m.E1[elo:ehi], m.E2[elo:ehi]))

		seed := Streaming{Restreams: 1, Seed: 7}.Partition(c, g, nparts)
		seedCut := Cut(c, g, seed)
		refined, ladder := Multilevel{Seed: 12345}.RefineLadder(c, g, nparts, seed)
		refCut := Cut(c, g, refined)

		if len(refined) != g.LocalN(c.Rank()) {
			panic("refined partition is not home-local")
		}
		if refCut > seedCut {
			panic(fmt.Sprintf("RefineLadder made the cut worse: %.0f -> %.0f", seedCut, refCut))
		}
		if ladder == nil {
			panic("parallel RefineLadder returned no ladder")
		}
		if !ladder.Reusable(g, nparts) {
			panic("retained ladder is not reusable for the same graph")
		}
		// The seed must be untouched (callers keep it for diffing).
		again := Streaming{Restreams: 1, Seed: 7}.Partition(c, g, nparts)
		for l := range seed {
			if seed[l] != again[l] {
				panic("RefineLadder mutated its seed argument")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
