// Package registry implements the conservative communication-schedule
// reuse method of the paper's Section 3.
//
// The compiler-generated code maintains, at runtime, a record of when
// any Fortran 90D loop, statement or array intrinsic may have written
// to a distributed array. A global counter nmod — "a global time stamp"
// — counts executed code blocks that modify any distributed array, and
// lastmod(DAD) maps each data access descriptor to the nmod value at
// its most recent possible modification. Each inspector for a loop L
// stores the DADs of L's data arrays, the DADs of L's indirection
// arrays, and the lastmod stamps of the indirection arrays; before a
// subsequent execution of L the saved results (communication schedules,
// loop-iteration partitions, buffer associations) may be reused iff
//
//  1. DAD(x_i)   == L.DAD(x_i)    for every data array x_i,
//  2. DAD(ind_j) == L.DAD(ind_j)  for every indirection array ind_j,
//  3. lastmod(DAD(ind_j)) == L.lastmod(L.DAD(ind_j)) for every ind_j.
//
// Remapping an array mints a fresh DAD, so conditions 1–2 catch
// redistribution; condition 3 catches writes through an unchanged
// distribution. The same mechanism guards GeoCoL graph construction, so
// the runtime also avoids rebuilding and repartitioning when nothing
// changed.
package registry

import "chaos/internal/dist"

// Registry is one rank's modification record. In the SPMD runtime
// every rank owns a replica and applies identical updates in program
// order, so all replicas agree without communication.
type Registry struct {
	nmod int
	last map[uint64]int

	// tracked, when non-nil, restricts lastmod bookkeeping to the
	// descriptors registered through Track — the optimization the
	// paper sketches as future work: "we could limit ourselves to
	// recording possible modifications of the sets of arrays that
	// have the same data access descriptor as an indirection array."
	tracked map[uint64]bool

	// Statistics for experiments.
	hits, misses int
}

// New returns an empty registry with nmod = 0 that tracks every
// descriptor.
func New() *Registry {
	return &Registry{last: make(map[uint64]int)}
}

// NewTracked returns a registry that records modification timestamps
// only for descriptors registered with Track. Writes to untracked
// descriptors still advance nmod (they are executed code blocks) but
// skip the lastmod update. Inspectors must Track every indirection
// descriptor before relying on its timestamps; Track is conservative
// for late registration (see Track).
func NewTracked() *Registry {
	return &Registry{last: make(map[uint64]int), tracked: make(map[uint64]bool)}
}

// Tracking reports whether the registry restricts bookkeeping to
// tracked descriptors.
func (r *Registry) Tracking() bool { return r.tracked != nil }

// Track registers d as an indirection descriptor whose modifications
// must be recorded. If d was not tracked before, its lastmod is
// conservatively set to the current nmod — the registry cannot know
// whether an untracked write already happened, so the first inspector
// after Track always runs.
func (r *Registry) Track(d dist.DAD) {
	if r.tracked == nil {
		return
	}
	if !r.tracked[d.ID] {
		r.tracked[d.ID] = true
		r.last[d.ID] = r.nmod
	}
}

// Nmod returns the current global timestamp.
func (r *Registry) Nmod() int { return r.nmod }

// NoteWrite records that one block of code (a loop, statement or array
// intrinsic) may have modified an array with descriptor d. Per the
// paper this is counted once per executed block, not once per element
// assignment.
func (r *Registry) NoteWrite(d dist.DAD) {
	r.nmod++
	if r.tracked != nil && !r.tracked[d.ID] {
		return // untracked descriptor: skip the lastmod update
	}
	r.last[d.ID] = r.nmod
}

// NoteRemap records that an array was remapped and now carries the
// fresh descriptor newDAD: "we increment nmod and then set
// lastmod(DAD(a)) = nmod".
func (r *Registry) NoteRemap(newDAD dist.DAD) {
	r.nmod++
	if r.tracked != nil && !r.tracked[newDAD.ID] {
		// Untracked: if the fresh descriptor is later Tracked, the
		// conservative lastmod there covers this remap.
		return
	}
	r.last[newDAD.ID] = r.nmod
}

// LastMod returns lastmod(d): the timestamp of the most recent possible
// modification of any array carrying descriptor d (0 if never
// modified since the descriptor was minted).
func (r *Registry) LastMod(d dist.DAD) int { return r.last[d.ID] }

// Stats returns the number of inspector reuse hits and misses observed
// by Check since the registry was created.
func (r *Registry) Stats() (hits, misses int) { return r.hits, r.misses }

// LoopRecord stores what loop L's inspector recorded the last time it
// ran: L.DAD(x_i), L.DAD(ind_j), and L.lastmod(DAD(ind_j)).
type LoopRecord struct {
	valid     bool
	dataDADs  []dist.DAD
	indDADs   []dist.DAD
	indStamps []int
}

// Valid reports whether the record holds a completed inspector.
func (lr *LoopRecord) Valid() bool { return lr.valid }

// Invalidate discards the record, forcing the next Check to miss.
func (lr *LoopRecord) Invalidate() { lr.valid = false }

// Check evaluates the three reuse conditions for a loop whose current
// data-array descriptors are data and indirection-array descriptors are
// ind. It returns true when the saved inspector results may be reused.
// The check itself is pure bookkeeping: a handful of integer
// comparisons per array, which is what makes amortization profitable.
func (r *Registry) Check(lr *LoopRecord, data, ind []dist.DAD) bool {
	ok := lr.check(r, data, ind)
	if ok {
		r.hits++
	} else {
		r.misses++
	}
	return ok
}

func (lr *LoopRecord) check(r *Registry, data, ind []dist.DAD) bool {
	if !lr.valid || len(data) != len(lr.dataDADs) || len(ind) != len(lr.indDADs) {
		return false
	}
	for i, d := range data {
		if !d.Equal(lr.dataDADs[i]) {
			return false // condition 1
		}
	}
	for j, d := range ind {
		if !d.Equal(lr.indDADs[j]) {
			return false // condition 2
		}
		if r.LastMod(d) != lr.indStamps[j] {
			return false // condition 3
		}
	}
	return true
}

// Record saves the descriptors and indirection timestamps after an
// inspector has completed, making the record valid.
func (r *Registry) Record(lr *LoopRecord, data, ind []dist.DAD) {
	lr.dataDADs = append(lr.dataDADs[:0], data...)
	lr.indDADs = append(lr.indDADs[:0], ind...)
	lr.indStamps = lr.indStamps[:0]
	for _, d := range ind {
		lr.indStamps = append(lr.indStamps, r.LastMod(d))
	}
	lr.valid = true
}
