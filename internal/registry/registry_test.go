package registry

import (
	"testing"

	"chaos/internal/dist"
)

func TestFirstCheckMisses(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var rec LoopRecord
	if r.Check(&rec, []dist.DAD{x}, []dist.DAD{ia}) {
		t.Fatal("empty record must not validate")
	}
	if h, m := r.Stats(); h != 0 || m != 1 {
		t.Fatalf("stats = (%d,%d)", h, m)
	}
}

func TestReuseAfterRecord(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	y := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var rec LoopRecord
	data, ind := []dist.DAD{x, y}, []dist.DAD{ia}
	r.Check(&rec, data, ind)
	r.Record(&rec, data, ind)
	for i := 0; i < 5; i++ {
		if !r.Check(&rec, data, ind) {
			t.Fatalf("iteration %d: reuse denied with nothing modified", i)
		}
	}
	if h, _ := r.Stats(); h != 5 {
		t.Fatalf("hits = %d, want 5", h)
	}
}

func TestWriteToIndirectionInvalidates(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var rec LoopRecord
	data, ind := []dist.DAD{x}, []dist.DAD{ia}
	r.Record(&rec, data, ind)
	if !r.Check(&rec, data, ind) {
		t.Fatal("expected initial reuse")
	}
	r.NoteWrite(ia) // condition 3 violated
	if r.Check(&rec, data, ind) {
		t.Fatal("reuse allowed after indirection array write")
	}
	// Re-inspect and reuse again.
	r.Record(&rec, data, ind)
	if !r.Check(&rec, data, ind) {
		t.Fatal("reuse denied after fresh inspector")
	}
}

func TestWriteToDataArrayDoesNotInvalidate(t *testing.T) {
	// The paper's conditions track only indirection arrays and
	// distributions; writing data *values* through an unchanged
	// distribution keeps the schedule valid.
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var rec LoopRecord
	data, ind := []dist.DAD{x}, []dist.DAD{ia}
	r.Record(&rec, data, ind)
	r.NoteWrite(x)
	if !r.Check(&rec, data, ind) {
		t.Fatal("writing data values must not force a re-inspection")
	}
}

func TestRemapInvalidatesThroughDADChange(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var rec LoopRecord
	r.Record(&rec, []dist.DAD{x}, []dist.DAD{ia})
	// Remap x: fresh DAD (condition 1).
	x2 := a.New(dist.Irregular, 100)
	r.NoteRemap(x2)
	if r.Check(&rec, []dist.DAD{x2}, []dist.DAD{ia}) {
		t.Fatal("reuse allowed after data array remap")
	}
	// Remap ia: fresh DAD (condition 2).
	r.Record(&rec, []dist.DAD{x2}, []dist.DAD{ia})
	ia2 := a.New(dist.Irregular, 50)
	r.NoteRemap(ia2)
	if r.Check(&rec, []dist.DAD{x2}, []dist.DAD{ia2}) {
		t.Fatal("reuse allowed after indirection array remap")
	}
}

func TestArityMismatchMisses(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var rec LoopRecord
	r.Record(&rec, []dist.DAD{x}, []dist.DAD{ia})
	if r.Check(&rec, []dist.DAD{x, x}, []dist.DAD{ia}) {
		t.Fatal("data arity change must miss")
	}
	if r.Check(&rec, []dist.DAD{x}, nil) {
		t.Fatal("indirection arity change must miss")
	}
}

func TestNmodCountsBlocksNotElements(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 1000)
	// One loop writing 1000 elements is ONE modification event.
	r.NoteWrite(x)
	if r.Nmod() != 1 {
		t.Fatalf("nmod = %d, want 1", r.Nmod())
	}
	r.NoteWrite(x)
	r.NoteRemap(a.New(dist.Block, 1000))
	if r.Nmod() != 3 {
		t.Fatalf("nmod = %d, want 3", r.Nmod())
	}
}

func TestLastModTracksLatest(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 10)
	y := a.New(dist.Block, 10)
	if r.LastMod(x) != 0 {
		t.Fatal("unmodified DAD should have stamp 0")
	}
	r.NoteWrite(x)
	r.NoteWrite(y)
	r.NoteWrite(x)
	if r.LastMod(x) != 3 || r.LastMod(y) != 2 {
		t.Fatalf("lastmod = (%d,%d)", r.LastMod(x), r.LastMod(y))
	}
}

func TestInvalidate(t *testing.T) {
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 10)
	var rec LoopRecord
	r.Record(&rec, []dist.DAD{x}, nil)
	if !rec.Valid() {
		t.Fatal("record should be valid after Record")
	}
	rec.Invalidate()
	if rec.Valid() || r.Check(&rec, []dist.DAD{x}, nil) {
		t.Fatal("invalidated record reused")
	}
}

func TestSharedIndirectionAcrossLoops(t *testing.T) {
	// Two loops indexing through the same indirection array keep
	// independent records; a write invalidates both.
	r := New()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	var l1, l2 LoopRecord
	r.Record(&l1, []dist.DAD{x}, []dist.DAD{ia})
	r.Record(&l2, []dist.DAD{x}, []dist.DAD{ia})
	r.NoteWrite(ia)
	if r.Check(&l1, []dist.DAD{x}, []dist.DAD{ia}) ||
		r.Check(&l2, []dist.DAD{x}, []dist.DAD{ia}) {
		t.Fatal("shared indirection write must invalidate every loop")
	}
}
