package registry

import (
	"testing"

	"chaos/internal/dist"
)

func TestTrackedSkipsUntrackedWrites(t *testing.T) {
	r := NewTracked()
	if !r.Tracking() {
		t.Fatal("NewTracked not tracking")
	}
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100) // data array, never an indirection
	ia := a.New(dist.Block, 50)
	r.Track(ia)

	var rec LoopRecord
	r.Record(&rec, []dist.DAD{x}, []dist.DAD{ia})
	// Writing the untracked data array must not disturb reuse.
	r.NoteWrite(x)
	r.NoteWrite(x)
	if !r.Check(&rec, []dist.DAD{x}, []dist.DAD{ia}) {
		t.Fatal("untracked data write broke reuse")
	}
	// nmod still counts all blocks.
	if r.Nmod() != 2 {
		t.Fatalf("nmod = %d, want 2", r.Nmod())
	}
	// lastmod for the untracked descriptor stays empty.
	if r.LastMod(x) != 0 {
		t.Fatalf("untracked lastmod = %d", r.LastMod(x))
	}
}

func TestTrackedStillCatchesIndirectionWrites(t *testing.T) {
	r := NewTracked()
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 100)
	ia := a.New(dist.Block, 50)
	r.Track(ia)
	var rec LoopRecord
	r.Record(&rec, []dist.DAD{x}, []dist.DAD{ia})
	r.NoteWrite(ia)
	if r.Check(&rec, []dist.DAD{x}, []dist.DAD{ia}) {
		t.Fatal("tracked indirection write missed")
	}
}

func TestLateTrackIsConservative(t *testing.T) {
	r := NewTracked()
	a := dist.NewDADAllocator()
	ia := a.New(dist.Block, 50)
	// A write happens before anyone tracks ia.
	r.NoteWrite(ia)
	// Late registration must pin lastmod to "now", so a record taken
	// before the Track (which could only have stamp 0) misses.
	var rec LoopRecord
	rec.valid = true
	rec.indDADs = []dist.DAD{ia}
	rec.indStamps = []int{0}
	r.Track(ia)
	if r.Check(&rec, nil, []dist.DAD{ia}) {
		t.Fatal("stale pre-Track record reused")
	}
	// A record taken after Track is good until the next write.
	var rec2 LoopRecord
	r.Record(&rec2, nil, []dist.DAD{ia})
	if !r.Check(&rec2, nil, []dist.DAD{ia}) {
		t.Fatal("post-Track record should reuse")
	}
	r.NoteWrite(ia)
	if r.Check(&rec2, nil, []dist.DAD{ia}) {
		t.Fatal("write after Track missed")
	}
}

func TestTrackNoOpOnDefaultRegistry(t *testing.T) {
	r := New()
	if r.Tracking() {
		t.Fatal("default registry claims tracking")
	}
	a := dist.NewDADAllocator()
	x := a.New(dist.Block, 10)
	r.Track(x) // must be a harmless no-op
	r.NoteWrite(x)
	if r.LastMod(x) != 1 {
		t.Fatal("default registry dropped a write after Track")
	}
}

func TestTrackedRemapSemantics(t *testing.T) {
	r := NewTracked()
	a := dist.NewDADAllocator()
	ia := a.New(dist.Block, 50)
	r.Track(ia)
	var rec LoopRecord
	r.Record(&rec, nil, []dist.DAD{ia})
	// Remap mints a fresh DAD; the record must miss on condition 2
	// even though the new DAD is not yet tracked.
	ia2 := a.New(dist.Irregular, 50)
	r.NoteRemap(ia2)
	if r.Check(&rec, nil, []dist.DAD{ia2}) {
		t.Fatal("remap missed under tracked registry")
	}
	// Re-inspection tracks and records the new DAD.
	r.Track(ia2)
	r.Record(&rec, nil, []dist.DAD{ia2})
	if !r.Check(&rec, nil, []dist.DAD{ia2}) {
		t.Fatal("fresh record should reuse")
	}
}
