// Package remap moves distributed arrays between distributions (the
// paper's Phase C and the REDISTRIBUTE directive): given the new owner
// of every locally held element, it builds a redistribution plan — a
// communication schedule from the old to the new distribution — and
// applies it to float64 or int payloads. One plan moves any number of
// arrays aligned to the same source distribution, which is how the
// runtime remaps x and y (and later the loop's indirection arrays) with
// a single inspector-style preprocessing step.
package remap

import (
	"fmt"
	"sort"

	"chaos/internal/machine"
)

// Plan is one rank's half of a redistribution. After Build, the calling
// rank will own NewGlobals() (ascending), and MoveFloats/MoveInts
// produce the local sections of arrays under the new distribution with
// local index = position in NewGlobals().
type Plan struct {
	procs int
	// sendPos[p] lists old-local positions shipped to rank p
	// (including p == self for elements that stay).
	sendPos [][]int
	// place[p][k] is the new-local position of the k-th element
	// received from rank p.
	place [][]int
	// newGlobals is the ascending list of globals now owned here.
	newGlobals []int
}

// Build constructs a redistribution plan. myGlobals lists the calling
// rank's current elements by global id (local order); newOwner[i] names
// the destination rank of myGlobals[i]. Collective. New local indices
// follow ascending global order, matching dist.IrregularDist numbering.
func Build(c *machine.Ctx, myGlobals, newOwner []int) *Plan {
	if len(myGlobals) != len(newOwner) {
		panic(fmt.Sprintf("remap: %d globals but %d owners", len(myGlobals), len(newOwner)))
	}
	p := c.Procs()
	pl := &Plan{procs: p}
	pl.sendPos = make([][]int, p)
	out := make([][]int, p)
	for i, g := range myGlobals {
		d := newOwner[i]
		if d < 0 || d >= p {
			panic(fmt.Sprintf("remap: destination %d out of range", d))
		}
		pl.sendPos[d] = append(pl.sendPos[d], i)
		out[d] = append(out[d], g)
	}
	c.Words(2 * len(myGlobals))
	in := c.AlltoAllInts(out)

	// Sort incoming globals to fix the new local order; remember
	// where each (src, k) element lands.
	type slot struct{ g, src, k int }
	var slots []slot
	for src := 0; src < p; src++ {
		for k, g := range in[src] {
			slots = append(slots, slot{g, src, k})
		}
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].g < slots[b].g })
	for i := 1; i < len(slots); i++ {
		if slots[i].g == slots[i-1].g {
			panic(fmt.Sprintf("remap: global %d delivered twice", slots[i].g))
		}
	}
	pl.place = make([][]int, p)
	for src := 0; src < p; src++ {
		pl.place[src] = make([]int, len(in[src]))
	}
	pl.newGlobals = make([]int, len(slots))
	for pos, s := range slots {
		pl.newGlobals[pos] = s.g
		pl.place[s.src][s.k] = pos
	}
	c.Words(3 * len(slots))
	return pl
}

// NewGlobals returns the globals owned after the move, ascending (the
// i-th entry has new local index i). Do not mutate.
func (pl *Plan) NewGlobals() []int { return pl.newGlobals }

// NewCount returns the number of elements owned after the move.
func (pl *Plan) NewCount() int { return len(pl.newGlobals) }

// MoveFloats redistributes one float64 array aligned with the source
// distribution. Collective.
func (pl *Plan) MoveFloats(c *machine.Ctx, data []float64) []float64 {
	out := make([][]float64, pl.procs)
	for p, pos := range pl.sendPos {
		if len(pos) == 0 {
			continue
		}
		buf := make([]float64, len(pos))
		for k, i := range pos {
			buf[k] = data[i]
		}
		out[p] = buf
	}
	c.Words(lenAll(pl.sendPos))
	in := c.AlltoAllFloats(out)
	res := make([]float64, len(pl.newGlobals))
	for src, places := range pl.place {
		vals := in[src]
		if len(vals) != len(places) {
			panic(fmt.Sprintf("remap: rank %d delivered %d values, want %d", src, len(vals), len(places)))
		}
		for k, pos := range places {
			res[pos] = vals[k]
		}
	}
	c.Words(len(res))
	return res
}

// MoveInts redistributes one int array aligned with the source
// distribution. Collective.
func (pl *Plan) MoveInts(c *machine.Ctx, data []int) []int {
	out := make([][]int, pl.procs)
	for p, pos := range pl.sendPos {
		if len(pos) == 0 {
			continue
		}
		buf := make([]int, len(pos))
		for k, i := range pos {
			buf[k] = data[i]
		}
		out[p] = buf
	}
	c.Words(lenAll(pl.sendPos))
	in := c.AlltoAllInts(out)
	res := make([]int, len(pl.newGlobals))
	for src, places := range pl.place {
		vals := in[src]
		if len(vals) != len(places) {
			panic(fmt.Sprintf("remap: rank %d delivered %d values, want %d", src, len(vals), len(places)))
		}
		for k, pos := range places {
			res[pos] = vals[k]
		}
	}
	c.Words(len(res))
	return res
}

func lenAll(xs [][]int) int {
	n := 0
	for _, x := range xs {
		n += len(x)
	}
	return n
}
