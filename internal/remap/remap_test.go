package remap

import (
	"strings"
	"testing"

	"chaos/internal/dist"
	"chaos/internal/machine"
	"chaos/internal/xrand"
)

func TestRemapBlockToIrregular(t *testing.T) {
	const n, p = 40, 4
	// Random new ownership, identical on all ranks.
	newOwnerOf := make([]int, n)
	rng := xrand.New(11)
	for g := range newOwnerOf {
		newOwnerOf[g] = rng.Intn(p)
	}
	ref := dist.NewIrregular(newOwnerOf, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		b := dist.NewBlock(n, c.Procs())
		lo, hi := b.Lo(c.Rank()), b.Hi(c.Rank())
		myGlobals := make([]int, hi-lo)
		data := make([]float64, hi-lo)
		idata := make([]int, hi-lo)
		dest := make([]int, hi-lo)
		for l := range myGlobals {
			g := lo + l
			myGlobals[l] = g
			data[l] = float64(10 * g)
			idata[l] = 3 * g
			dest[l] = newOwnerOf[g]
		}
		pl := Build(c, myGlobals, dest)
		if pl.NewCount() != ref.LocalSize(c.Rank()) {
			t.Errorf("rank %d NewCount = %d, want %d", c.Rank(), pl.NewCount(), ref.LocalSize(c.Rank()))
		}
		ng := pl.NewGlobals()
		for i, g := range ng {
			if newOwnerOf[g] != c.Rank() {
				t.Errorf("rank %d received global %d owned by %d", c.Rank(), g, newOwnerOf[g])
			}
			if i > 0 && ng[i] <= ng[i-1] {
				t.Error("NewGlobals not strictly ascending")
			}
			if ref.Local(g) != i {
				t.Errorf("local order mismatch: global %d at %d, want %d", g, i, ref.Local(g))
			}
		}
		fd := pl.MoveFloats(c, data)
		id := pl.MoveInts(c, idata)
		for i, g := range ng {
			if fd[i] != float64(10*g) {
				t.Errorf("float payload for %d = %v", g, fd[i])
			}
			if id[i] != 3*g {
				t.Errorf("int payload for %d = %v", g, id[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemapIdentityIsNoOp(t *testing.T) {
	const n, p = 12, 3
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		b := dist.NewBlock(n, p)
		lo, hi := b.Lo(c.Rank()), b.Hi(c.Rank())
		myGlobals := make([]int, hi-lo)
		dest := make([]int, hi-lo)
		data := make([]float64, hi-lo)
		for l := range myGlobals {
			myGlobals[l] = lo + l
			dest[l] = c.Rank()
			data[l] = float64(lo + l)
		}
		pl := Build(c, myGlobals, dest)
		got := pl.MoveFloats(c, data)
		if len(got) != len(data) {
			t.Fatalf("identity remap changed size")
		}
		for i := range got {
			if got[i] != data[i] {
				t.Errorf("identity remap moved element %d", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemapPlanReusedForMultipleArrays(t *testing.T) {
	const n, p = 20, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		b := dist.NewBlock(n, p)
		lo, hi := b.Lo(c.Rank()), b.Hi(c.Rank())
		myGlobals := make([]int, hi-lo)
		dest := make([]int, hi-lo)
		for l := range myGlobals {
			g := lo + l
			myGlobals[l] = g
			dest[l] = (g * 7 % p)
		}
		pl := Build(c, myGlobals, dest)
		for pass := 0; pass < 3; pass++ {
			data := make([]float64, hi-lo)
			for l := range data {
				data[l] = float64(pass*1000 + lo + l)
			}
			got := pl.MoveFloats(c, data)
			for i, g := range pl.NewGlobals() {
				if got[i] != float64(pass*1000+g) {
					t.Errorf("pass %d: global %d got %v", pass, g, got[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemapAllToOneRank(t *testing.T) {
	const n, p = 10, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		b := dist.NewBlock(n, p)
		lo, hi := b.Lo(c.Rank()), b.Hi(c.Rank())
		var myGlobals, dest []int
		var data []float64
		for g := lo; g < hi; g++ {
			myGlobals = append(myGlobals, g)
			dest = append(dest, 1)
			data = append(data, float64(g))
		}
		pl := Build(c, myGlobals, dest)
		got := pl.MoveFloats(c, data)
		if c.Rank() == 1 {
			if len(got) != n {
				t.Fatalf("rank 1 has %d elements, want %d", len(got), n)
			}
			for g := 0; g < n; g++ {
				if got[g] != float64(g) {
					t.Errorf("element %d = %v", g, got[g])
				}
			}
		} else if len(got) != 0 {
			t.Errorf("rank 0 kept %d elements", len(got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemapDetectsDuplicateDelivery(t *testing.T) {
	const p = 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		// Both ranks claim to own global 5 and send it to rank 0.
		Build(c, []int{5}, []int{0})
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate-delivery panic", err)
	}
}

func TestRemapLengthMismatchPanics(t *testing.T) {
	err := machine.Run(machine.Zero(1), func(c *machine.Ctx) {
		Build(c, []int{1, 2}, []int{0})
	})
	if err == nil {
		t.Fatal("expected panic")
	}
}
