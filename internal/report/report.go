// Package report formats experiment results as aligned text tables in
// the style of the paper's Section 6 evaluation (Tables 1-4).
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of float cells with row and column labels.
type Table struct {
	Title string
	Unit  string // printed under the title, e.g. "virtual seconds"
	Cols  []string
	Rows  []string
	// Cells[r][c]; NaN prints as "-".
	Cells [][]float64
}

// New creates a table with the given shape, cells initialized to 0.
func New(title, unit string, cols, rows []string) *Table {
	t := &Table{Title: title, Unit: unit, Cols: cols, Rows: rows}
	t.Cells = make([][]float64, len(rows))
	for i := range t.Cells {
		t.Cells[i] = make([]float64, len(cols))
	}
	return t
}

// Set stores a cell value by labels; it panics on unknown labels so
// harness typos fail loudly.
func (t *Table) Set(row, col string, v float64) {
	r, c := index(t.Rows, row), index(t.Cols, col)
	t.Cells[r][c] = v
}

func index(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	panic(fmt.Sprintf("report: unknown label %q (have %v)", want, xs))
}

// fmtCell renders one value with the precision the paper uses: one
// decimal place for values >= 10, two below.
func fmtCell(v float64) string {
	if v != v { // NaN
		return "-"
	}
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	if v >= 10 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	rowHdr := ""
	widths := make([]int, len(t.Cols)+1)
	for _, r := range t.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i := range t.Rows {
		cells[i] = make([]string, len(t.Cols))
		for j := range t.Cols {
			cells[i][j] = fmtCell(t.Cells[i][j])
		}
	}
	for j, c := range t.Cols {
		w := len(c)
		for i := range t.Rows {
			if len(cells[i][j]) > w {
				w = len(cells[i][j])
			}
		}
		widths[j+1] = w
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " (%s)", t.Unit)
	}
	b.WriteByte('\n')
	total := widths[0]
	for _, w := range widths[1:] {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-*s", widths[0], rowHdr)
	for j, c := range t.Cols {
		fmt.Fprintf(&b, "  %*s", widths[j+1], c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r)
		for j := range t.Cols {
			fmt.Fprintf(&b, "  %*s", widths[j+1], cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s**", t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " _(%s)_", t.Unit)
	}
	b.WriteString("\n\n| |")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Cols {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r)
		for j := range t.Cols {
			fmt.Fprintf(&b, " %s |", fmtCell(t.Cells[i][j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
