package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Sample", "seconds", []string{"A", "B"}, []string{"row1", "row2"})
	t.Set("row1", "A", 123.456)
	t.Set("row1", "B", 17.62)
	t.Set("row2", "A", 3.14159)
	t.Set("row2", "B", math.NaN())
	return t
}

func TestStringFormatting(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"Sample (seconds)", "row1", "row2", "123", "17.6", "3.14", "-"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, rule, header, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), s)
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	for _, want := range []string{"**Sample**", "| A |", "| row1 |", "|---|"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSetUnknownLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sample().Set("nope", "A", 1)
}

func TestFmtCellPrecision(t *testing.T) {
	cases := map[float64]string{
		250.7: "251", 99.94: "99.9", 10.0: "10.0", 9.876: "9.88", 0.05: "0.05",
	}
	for v, want := range cases {
		if got := fmtCell(v); got != want {
			t.Errorf("fmtCell(%v) = %q, want %q", v, got, want)
		}
	}
}
