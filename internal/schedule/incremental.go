package schedule

import (
	"chaos/internal/machine"
	"chaos/internal/ttable"
)

// BuildIncremental builds an *incremental* communication schedule — a
// CHAOS capability used by adaptive codes: given a base schedule whose
// ghost area already mirrors some off-processor elements, it fetches
// only the references in globals that the base does not cover.
//
// The returned reference vector addresses the combined buffer
// [ local | base ghosts | incremental ghosts ]: ref[i] < myLocalSize is
// a local element; myLocalSize <= ref[i] < myLocalSize+base.NGhost() is
// a base ghost slot; anything above is a slot of the new schedule
// (offset by myLocalSize+base.NGhost()).
//
// A Gather on the incremental schedule moves only the new elements, so
// a loop whose reference set grew slightly (an adapted mesh, an updated
// pair list) pays communication proportional to the change, while the
// base schedule keeps serving the old references. Collective.
func BuildIncremental(c *machine.Ctx, res ttable.Resolver, myLocalSize int, base *Schedule, globals []int, opt Options) (*Schedule, []int) {
	me := c.Rank()
	owners, locals := res.Resolve(c, globals)

	baseSlot := make(map[int]int, base.nGhost)
	for slot, g := range base.ghostGlobal {
		if _, ok := baseSlot[g]; !ok {
			baseSlot[g] = slot
		}
	}

	ref := make([]int, len(globals))
	var newIdx []int
	for i := range globals {
		switch slot, covered := baseSlot[globals[i]]; {
		case owners[i] == me:
			ref[i] = locals[i]
		case covered:
			ref[i] = myLocalSize + slot
		default:
			newIdx = append(newIdx, i)
		}
	}
	c.Words(2 * len(globals))

	// Build a fresh schedule over only the uncovered references. This
	// is collective even when a rank has nothing new (empty list).
	newGlobals := make([]int, len(newIdx))
	for k, i := range newIdx {
		newGlobals[k] = globals[i]
	}
	inc, incRef := BuildGather(c, res, myLocalSize, newGlobals, opt)
	offset := base.nGhost
	for k, i := range newIdx {
		ref[i] = incRef[k] + offset // all uncovered refs are off-processor
	}
	return inc, ref
}
