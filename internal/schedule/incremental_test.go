package schedule

import (
	"testing"

	"chaos/internal/machine"
)

func TestIncrementalFetchesOnlyNewElements(t *testing.T) {
	const n, p = 40, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		// Base: each rank reads the first element of the next rank.
		next := (c.Rank() + 1) % p
		baseGlobals := []int{d.Lo(next)}
		base, baseRef := BuildGather(c, res, len(local), baseGlobals, Options{})
		baseGhost := make([]float64, base.NGhost())
		base.Gather(c, local, baseGhost)

		// Incremental: the old reference plus two new ones.
		globals := []int{d.Lo(next), d.Lo(next) + 1, (d.Lo(next) + d.LocalSize(next)) % n}
		inc, ref := BuildIncremental(c, res, len(local), base, globals, Options{})

		// The covered reference reuses the base slot.
		if ref[0] != baseRef[0] {
			t.Errorf("covered ref got slot %d, want base slot %d", ref[0], baseRef[0])
		}
		// Only genuinely new elements occupy incremental slots.
		if inc.NGhost() > 2 {
			t.Errorf("incremental NGhost = %d, want <= 2", inc.NGhost())
		}
		incGhost := make([]float64, inc.NGhost())
		inc.Gather(c, local, incGhost)

		// Combined addressing resolves every reference.
		value := func(r int) float64 {
			switch {
			case r < len(local):
				return local[r]
			case r < len(local)+base.NGhost():
				return baseGhost[r-len(local)]
			default:
				return incGhost[r-len(local)-base.NGhost()]
			}
		}
		for i, g := range globals {
			if got := value(ref[i]); got != 1000+float64(g) {
				t.Errorf("rank %d: globals[%d]=%d got %v", c.Rank(), i, g, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalNoNewReferences(t *testing.T) {
	const n, p = 20, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		g0 := d.Lo((c.Rank() + 1) % p)
		base, _ := BuildGather(c, res, len(local), []int{g0}, Options{})
		inc, ref := BuildIncremental(c, res, len(local), base, []int{g0, g0}, Options{})
		if inc.NGhost() != 0 {
			t.Errorf("fully covered incremental built %d ghosts", inc.NGhost())
		}
		if ref[0] != len(local) || ref[1] != len(local) {
			t.Errorf("refs %v should point at base slot 0", ref)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalLocalReferences(t *testing.T) {
	const n, p = 16, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		base, _ := BuildGather(c, res, len(local), nil, Options{})
		mine := d.Lo(c.Rank())
		inc, ref := BuildIncremental(c, res, len(local), base, []int{mine}, Options{})
		if inc.NGhost() != 0 {
			t.Errorf("local ref created ghosts")
		}
		if ref[0] != 0 {
			t.Errorf("local ref = %d, want 0", ref[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGhostGlobalsTracksSlots(t *testing.T) {
	const n, p = 24, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		next := (c.Rank() + 1) % p
		globals := []int{d.Lo(next), d.Lo(next) + 1, d.Lo(next)}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		gg := s.GhostGlobals()
		if len(gg) != s.NGhost() {
			t.Fatalf("GhostGlobals length %d != NGhost %d", len(gg), s.NGhost())
		}
		for i, g := range globals {
			slot := ref[i] - len(local)
			if gg[slot] != g {
				t.Errorf("slot %d mirrors %d, want %d", slot, gg[slot], g)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
