// Package schedule implements CHAOS/PARTI communication schedules: the
// output of the paper's Phase D inspector. Given the set of global
// indices an executor loop will reference, BuildGather translates them
// to (owner, local) pairs through a Resolver, deduplicates off-processor
// references, assigns each unique off-processor element a slot in a
// local ghost ("buffer") area, and exchanges request lists so every
// rank knows which of its elements to ship where. The resulting
// Schedule drives the executor-phase Gather, Scatter and ScatterAdd
// data movements.
package schedule

import (
	"fmt"
	"sort"

	"chaos/internal/machine"
	"chaos/internal/ttable"
)

// Schedule is one rank's half of a communication pattern between the
// owners of a distributed array and the consumers of copies of its
// elements. It is symmetric: Gather moves owner→consumer, ScatterAdd
// moves consumer→owner.
type Schedule struct {
	procs int
	// sendLocal[p] lists local indices of elements this rank owns
	// that rank p holds ghost copies of.
	sendLocal [][]int
	// recvGhost[p] lists the ghost slots on this rank filled by
	// values owned by rank p, in the order rank p sends them.
	recvGhost [][]int
	// nGhost is the size of the ghost buffer.
	nGhost int
	// ghostGlobal[slot] is the global index a ghost slot mirrors;
	// used by incremental schedule building and diagnostics.
	ghostGlobal []int
}

// GhostGlobals returns the global index mirrored by each ghost slot
// (do not mutate).
func (s *Schedule) GhostGlobals() []int { return s.ghostGlobal }

// Options controls inspector behaviour.
type Options struct {
	// NoDedup disables duplicate-reference elimination: every
	// off-processor reference gets its own ghost slot and is
	// re-fetched on every Gather. Exists for the ablation bench; the
	// paper's inspector always deduplicates.
	NoDedup bool
}

// NGhost returns the number of ghost (off-processor copy) slots the
// schedule requires. Executors index ghost buffers of exactly this
// length.
func (s *Schedule) NGhost() int { return s.nGhost }

// SendCount returns the total number of owned elements this rank ships
// per Gather.
func (s *Schedule) SendCount() int {
	n := 0
	for _, l := range s.sendLocal {
		n += len(l)
	}
	return n
}

// RecvCount returns the total number of ghost values this rank receives
// per Gather (equal to NGhost for deduplicated schedules).
func (s *Schedule) RecvCount() int {
	n := 0
	for _, l := range s.recvGhost {
		n += len(l)
	}
	return n
}

// Messages returns the number of distinct peers this rank exchanges
// data with per Gather (send side, recv side).
func (s *Schedule) Messages() (nsend, nrecv int) {
	for p, l := range s.sendLocal {
		if p != -1 && len(l) > 0 {
			nsend++
		}
	}
	for _, l := range s.recvGhost {
		if len(l) > 0 {
			nrecv++
		}
	}
	return
}

// BuildGather runs the inspector for one data array. res resolves the
// array's global index space; myLocalSize is the length of the calling
// rank's local section; globals lists every global index the local
// iterations reference (duplicates allowed, order preserved).
//
// It returns the communication schedule and a reference vector ref with
// len(ref) == len(globals): ref[i] < myLocalSize means globals[i] is
// locally owned at that local index; otherwise globals[i] is an
// off-processor element available in ghost slot ref[i]-myLocalSize
// after a Gather. This is the paper's "information that associates
// off-processor data copies with on-processor buffer locations".
//
// Collective: all ranks must call BuildGather together.
func BuildGather(c *machine.Ctx, res ttable.Resolver, myLocalSize int, globals []int, opt Options) (*Schedule, []int) {
	p := c.Procs()
	me := c.Rank()
	owners, locals := res.Resolve(c, globals)

	ref := make([]int, len(globals))

	// Deduplicate off-processor references. Hash cost charged per
	// reference; slot order is (owner, global) sorted for
	// determinism and contiguous per-peer receive buffers.
	type remote struct{ owner, global, local int }
	var uniq []remote
	slotOf := make(map[int]int) // global -> ghost slot
	if opt.NoDedup {
		for i := range globals {
			if owners[i] == me {
				continue
			}
			uniq = append(uniq, remote{owners[i], globals[i], locals[i]})
		}
	} else {
		seen := make(map[int]bool, len(globals))
		for i := range globals {
			if owners[i] == me {
				continue
			}
			if !seen[globals[i]] {
				seen[globals[i]] = true
				uniq = append(uniq, remote{owners[i], globals[i], locals[i]})
			}
		}
	}
	c.Words(2 * len(globals)) // hash probes + owner tests
	sort.Slice(uniq, func(a, b int) bool {
		if uniq[a].owner != uniq[b].owner {
			return uniq[a].owner < uniq[b].owner
		}
		if uniq[a].global != uniq[b].global {
			return uniq[a].global < uniq[b].global
		}
		return false
	})
	c.Words(2 * len(uniq)) // sort traffic (approximate)

	s := &Schedule{procs: p}
	s.sendLocal = make([][]int, p)
	s.recvGhost = make([][]int, p)
	s.nGhost = len(uniq)
	s.ghostGlobal = make([]int, 0, len(uniq))

	// Assign ghost slots and build per-owner request lists (the
	// owner's local indices we need).
	requests := make([][]int, p)
	if opt.NoDedup {
		// Slots in reference order; slotOf not usable (duplicates).
		slot := 0
		for i := range globals {
			if owners[i] == me {
				ref[i] = locals[i]
			} else {
				ref[i] = myLocalSize + slot
				slot++
			}
		}
		// uniq is sorted; rebuild per-slot lists in sorted order and
		// map slots back. Simpler: iterate references again in order.
		requests = make([][]int, p)
		s.recvGhost = make([][]int, p)
		slot = 0
		for i := range globals {
			if owners[i] == me {
				continue
			}
			requests[owners[i]] = append(requests[owners[i]], locals[i])
			s.recvGhost[owners[i]] = append(s.recvGhost[owners[i]], slot)
			s.ghostGlobal = append(s.ghostGlobal, globals[i])
			slot++
		}
	} else {
		s.ghostGlobal = s.ghostGlobal[:0]
		for slot, r := range uniq {
			slotOf[r.global] = slot
			requests[r.owner] = append(requests[r.owner], r.local)
			s.recvGhost[r.owner] = append(s.recvGhost[r.owner], slot)
			s.ghostGlobal = append(s.ghostGlobal, r.global)
		}
		for i := range globals {
			if owners[i] == me {
				ref[i] = locals[i]
			} else {
				ref[i] = myLocalSize + slotOf[globals[i]]
			}
		}
	}
	c.Words(2 * len(globals))

	// Exchange request lists: what I ask of p becomes p's send list
	// to me.
	in := c.AlltoAllInts(requests)
	for src := 0; src < p; src++ {
		if len(in[src]) > 0 {
			s.sendLocal[src] = in[src]
		}
	}
	// Validate send-list bounds eagerly so executor failures point at
	// the inspector.
	for src, lst := range s.sendLocal {
		for _, l := range lst {
			if l < 0 || l >= myLocalSize {
				panic(fmt.Sprintf("schedule: rank %d requested local index %d of rank %d (size %d)",
					src, l, me, myLocalSize))
			}
		}
	}
	return s, ref
}

// Gather executes the schedule owner→consumer: ghost[slot] receives the
// current value of the owning rank's element for every ghost slot.
// ghost must have length NGhost. Collective.
func (s *Schedule) Gather(c *machine.Ctx, local, ghost []float64) {
	if len(ghost) != s.nGhost {
		panic(fmt.Sprintf("schedule: ghost buffer length %d, want %d", len(ghost), s.nGhost))
	}
	out := make([][]float64, s.procs)
	for p, lst := range s.sendLocal {
		if len(lst) == 0 {
			continue
		}
		buf := make([]float64, len(lst))
		for i, l := range lst {
			buf[i] = local[l]
		}
		out[p] = buf
	}
	c.Words(s.SendCount())
	in := c.AlltoAllFloats(out)
	for p, slots := range s.recvGhost {
		vals := in[p]
		if len(vals) != len(slots) {
			panic(fmt.Sprintf("schedule: gather from %d delivered %d values, want %d", p, len(vals), len(slots)))
		}
		for i, slot := range slots {
			ghost[slot] = vals[i]
		}
	}
	c.Words(s.RecvCount())
}

// ScatterAdd executes the schedule consumer→owner with an addition
// reduction: every ghost slot's value is added into the owning rank's
// element. This implements the paper's left-hand-side REDUCE(ADD, ...)
// accumulation. Collective.
func (s *Schedule) ScatterAdd(c *machine.Ctx, local, ghost []float64) {
	s.ScatterOp(c, local, ghost, func(a, b float64) float64 { return a + b })
}

// ScatterOp is ScatterAdd generalized to any commutative, associative
// reduction (max, min, multiply, ...). Contributions from different
// ranks are combined in rank order, so the result is deterministic.
func (s *Schedule) ScatterOp(c *machine.Ctx, local, ghost []float64, op func(owned, contrib float64) float64) {
	if len(ghost) != s.nGhost {
		panic(fmt.Sprintf("schedule: ghost buffer length %d, want %d", len(ghost), s.nGhost))
	}
	out := make([][]float64, s.procs)
	for p, slots := range s.recvGhost {
		if len(slots) == 0 {
			continue
		}
		buf := make([]float64, len(slots))
		for i, slot := range slots {
			buf[i] = ghost[slot]
		}
		out[p] = buf
	}
	c.Words(s.RecvCount())
	in := c.AlltoAllFloats(out)
	for p, lst := range s.sendLocal {
		vals := in[p]
		if len(vals) != len(lst) {
			panic(fmt.Sprintf("schedule: scatter from %d delivered %d values, want %d", p, len(vals), len(lst)))
		}
		for i, l := range lst {
			local[l] = op(local[l], vals[i])
		}
	}
	c.Flops(s.SendCount())
	c.Words(s.SendCount())
}

// Scatter executes the schedule consumer→owner with overwrite
// semantics: the owner's element is replaced by the contributed copy.
// With deduplicated schedules each element has at most one ghost copy
// per rank; if several ranks contribute, the highest rank wins
// (deterministic).
func (s *Schedule) Scatter(c *machine.Ctx, local, ghost []float64) {
	s.ScatterOp(c, local, ghost, func(_, contrib float64) float64 { return contrib })
}

// Merge combines two schedules over the same local array into one, so a
// single communication phase can serve two loops (CHAOS schedule
// merging). Ghost slots of b are renumbered to follow a's.
func Merge(a, b *Schedule) *Schedule {
	if a.procs != b.procs {
		panic("schedule: Merge across machines")
	}
	m := &Schedule{procs: a.procs, nGhost: a.nGhost + b.nGhost}
	m.sendLocal = make([][]int, a.procs)
	m.recvGhost = make([][]int, a.procs)
	for p := 0; p < a.procs; p++ {
		m.sendLocal[p] = append(append([]int(nil), a.sendLocal[p]...), b.sendLocal[p]...)
		ga := append([]int(nil), a.recvGhost[p]...)
		for _, slot := range b.recvGhost[p] {
			ga = append(ga, a.nGhost+slot)
		}
		m.recvGhost[p] = ga
	}
	return m
}
