package schedule

import (
	"math/rand"
	"testing"

	"chaos/internal/dist"
	"chaos/internal/machine"
	"chaos/internal/ttable"
)

// buildBlockFixture returns a BLOCK-distributed array of size n whose
// global element g holds value 1000+g, plus its resolver.
func blockData(c *machine.Ctx, n int) (ttable.Resolver, []float64, dist.BlockDist) {
	d := dist.NewBlock(n, c.Procs())
	local := make([]float64, d.LocalSize(c.Rank()))
	for l := range local {
		local[l] = 1000 + float64(d.Global(c.Rank(), l))
	}
	return ttable.Regular{D: d}, local, d
}

func TestGatherFetchesCorrectValues(t *testing.T) {
	const n, p = 40, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		// Each rank references a mix of local and remote globals.
		rng := rand.New(rand.NewSource(int64(7))) // same on all ranks is fine
		globals := make([]int, 25)
		for i := range globals {
			globals[i] = rng.Intn(n)
		}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		ghost := make([]float64, s.NGhost())
		s.Gather(c, local, ghost)
		for i, g := range globals {
			var got float64
			if ref[i] < len(local) {
				if d.Owner(g) != c.Rank() {
					t.Errorf("ref %d marked local but owner is %d", i, d.Owner(g))
				}
				got = local[ref[i]]
			} else {
				got = ghost[ref[i]-len(local)]
			}
			if got != 1000+float64(g) {
				t.Errorf("rank %d: globals[%d]=%d resolved to %v", c.Rank(), i, g, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDedupCollapsesDuplicates(t *testing.T) {
	const n, p = 16, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		// Reference one fixed remote global 10 times.
		remote := (d.Hi(c.Rank()) + 1) % n // someone else's element
		if d.Owner(remote) == c.Rank() {
			remote = (remote + d.LocalSize(c.Rank())) % n
		}
		globals := make([]int, 10)
		for i := range globals {
			globals[i] = remote
		}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		if s.NGhost() != 1 {
			t.Errorf("rank %d: NGhost = %d, want 1", c.Rank(), s.NGhost())
		}
		for i := 1; i < len(ref); i++ {
			if ref[i] != ref[0] {
				t.Errorf("duplicate refs map to different slots")
			}
		}
		// Without dedup every reference costs a slot.
		s2, _ := BuildGather(c, res, len(local), globals, Options{NoDedup: true})
		if s2.NGhost() != 10 {
			t.Errorf("NoDedup NGhost = %d, want 10", s2.NGhost())
		}
		ghost := make([]float64, s2.NGhost())
		s2.Gather(c, local, ghost)
		for _, v := range ghost {
			if v != 1000+float64(remote) {
				t.Errorf("NoDedup gather wrong value %v", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllLocalReferencesNeedNoComm(t *testing.T) {
	const n, p = 20, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		var globals []int
		for l := 0; l < len(local); l++ {
			globals = append(globals, d.Global(c.Rank(), l))
		}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		if s.NGhost() != 0 || s.SendCount() != 0 {
			t.Errorf("local-only loop built nontrivial schedule: ghosts=%d sends=%d",
				s.NGhost(), s.SendCount())
		}
		for i, r := range ref {
			if r != d.Local(globals[i]) {
				t.Errorf("ref[%d] = %d", i, r)
			}
		}
		s.Gather(c, local, nil) // zero-length ghost is legal
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterAddAccumulatesAcrossRanks(t *testing.T) {
	const n, p = 8, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		for l := range local {
			local[l] = 0
		}
		// Every rank contributes rank+1 to global 3 and to one local element.
		globals := []int{3}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		work := make([]float64, len(local)+s.NGhost())
		// Accumulate into the reference slot.
		work[ref[0]] += float64(c.Rank() + 1)
		// Split work buffer back into local and ghost halves.
		for l := range local {
			local[l] += work[l]
		}
		s.ScatterAdd(c, local, work[len(local):])
		c.Barrier()
		if d.Owner(3) == c.Rank() {
			want := float64(1 + 2 + 3 + 4) // sum over ranks of rank+1
			if got := local[d.Local(3)]; got != want {
				t.Errorf("accumulated %v, want %v", got, want)
			}
		} else {
			for l, v := range local {
				if v != 0 {
					t.Errorf("rank %d local[%d] = %v, want 0", c.Rank(), l, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterOpMax(t *testing.T) {
	const n, p = 6, 3
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		for l := range local {
			local[l] = -1
		}
		globals := []int{0}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		ghost := make([]float64, s.NGhost())
		contrib := float64(10 * (c.Rank() + 1))
		if ref[0] < len(local) {
			if contrib > local[ref[0]] {
				local[ref[0]] = contrib
			}
		} else {
			ghost[ref[0]-len(local)] = contrib
		}
		s.ScatterOp(c, local, ghost, func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if d.Owner(0) == c.Rank() {
			if got := local[d.Local(0)]; got != 30 {
				t.Errorf("max-reduce got %v, want 30", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterOverwrite(t *testing.T) {
	const n, p = 4, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		// Rank 1 overwrites global 0 (owned by rank 0).
		var globals []int
		if c.Rank() == 1 {
			globals = []int{0}
		}
		s, ref := BuildGather(c, res, len(local), globals, Options{})
		ghost := make([]float64, s.NGhost())
		if c.Rank() == 1 {
			ghost[ref[0]-len(local)] = 777
		}
		s.Scatter(c, local, ghost)
		if c.Rank() == 0 {
			if local[d.Local(0)] != 777 {
				t.Errorf("overwrite scatter got %v", local[d.Local(0)])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherWithIrregularDistribution(t *testing.T) {
	const n, p = 30, 3
	owner := make([]int, n)
	rng := rand.New(rand.NewSource(5))
	for g := range owner {
		owner[g] = rng.Intn(p)
	}
	ref := dist.NewIrregular(owner, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		var mine []int
		for g, o := range owner {
			if o == c.Rank() {
				mine = append(mine, g)
			}
		}
		tab := ttable.Build(c, n, mine)
		local := make([]float64, len(mine))
		for l, g := range mine {
			local[l] = float64(100 + g)
		}
		// All ranks read all globals.
		globals := make([]int, n)
		for i := range globals {
			globals[i] = i
		}
		s, refs := BuildGather(c, tab, len(local), globals, Options{})
		ghost := make([]float64, s.NGhost())
		s.Gather(c, local, ghost)
		for i, g := range globals {
			var got float64
			if refs[i] < len(local) {
				got = local[refs[i]]
			} else {
				got = ghost[refs[i]-len(local)]
			}
			if got != float64(100+g) {
				t.Errorf("rank %d: g=%d got %v (owner %d)", c.Rank(), g, got, ref.Owner(g))
			}
		}
		// Ghost count: everything not owned locally, deduplicated.
		if s.NGhost() != n-len(mine) {
			t.Errorf("NGhost = %d, want %d", s.NGhost(), n-len(mine))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesAndCounts(t *testing.T) {
	const n, p = 40, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		// Read one element from every other rank.
		var globals []int
		for r := 0; r < p; r++ {
			if r != c.Rank() {
				globals = append(globals, d.Lo(r))
			}
		}
		s, _ := BuildGather(c, res, len(local), globals, Options{})
		ns, nr := s.Messages()
		if ns != p-1 || nr != p-1 {
			t.Errorf("Messages = (%d,%d), want (%d,%d)", ns, nr, p-1, p-1)
		}
		if s.RecvCount() != p-1 || s.NGhost() != p-1 {
			t.Errorf("RecvCount=%d NGhost=%d", s.RecvCount(), s.NGhost())
		}
		if s.SendCount() != p-1 { // everyone fetches my Lo element
			t.Errorf("SendCount=%d", s.SendCount())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeServesBothLoops(t *testing.T) {
	const n, p = 24, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, _ := blockData(c, n)
		gA := []int{(c.Rank()*6 + 7) % n}
		gB := []int{(c.Rank()*6 + 13) % n, (c.Rank()*6 + 14) % n}
		sA, refA := BuildGather(c, res, len(local), gA, Options{})
		sB, refB := BuildGather(c, res, len(local), gB, Options{})
		m := Merge(sA, sB)
		ghost := make([]float64, m.NGhost())
		m.Gather(c, local, ghost)
		check := func(refs, globals []int, off int) {
			for i, g := range globals {
				var got float64
				if refs[i] < len(local) {
					got = local[refs[i]]
				} else {
					got = ghost[off+refs[i]-len(local)]
				}
				if got != 1000+float64(g) {
					t.Errorf("merged gather: g=%d got %v", g, got)
				}
			}
		}
		check(refA, gA, 0)
		check(refB, gB, sA.NGhost())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherPanicsOnWrongGhostLength(t *testing.T) {
	const n, p = 8, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		res, local, d := blockData(c, n)
		globals := []int{d.Lo((c.Rank() + 1) % p)}
		s, _ := BuildGather(c, res, len(local), globals, Options{})
		s.Gather(c, local, make([]float64, s.NGhost()+3))
	})
	if err == nil {
		t.Fatal("expected panic on wrong ghost length")
	}
}

func TestScheduleChargesVirtualTime(t *testing.T) {
	const n, p = 64, 4
	maxT, err := machine.MaxClock(machine.IPSC860(p), func(c *machine.Ctx) {
		res, local, _ := blockData(c, n)
		globals := make([]int, 32)
		for i := range globals {
			globals[i] = (i * 7) % n
		}
		s, _ := BuildGather(c, res, len(local), globals, Options{})
		ghost := make([]float64, s.NGhost())
		s.Gather(c, local, ghost)
		s.ScatterAdd(c, local, ghost)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxT <= 0 {
		t.Fatal("schedule operations charged no time")
	}
}
