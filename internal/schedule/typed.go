package schedule

import (
	"fmt"

	"chaos/internal/machine"
)

// Typed and vector data movement. The CHAOS library moved more than
// scalar doubles: solvers gather integer connectivity and, most
// importantly, multi-component state vectors (an unstructured Euler
// solver carries 4-5 conserved quantities per mesh point). A vector
// gather moves ncomp contiguous components per scheduled element with
// one message per peer, amortizing per-message overhead across
// components — which is why CHAOS provided fused vector schedules
// rather than calling the scalar gather ncomp times.

// GatherInts executes the schedule owner→consumer for an int array.
func (s *Schedule) GatherInts(c *machine.Ctx, local, ghost []int) {
	if len(ghost) != s.nGhost {
		panic(fmt.Sprintf("schedule: ghost buffer length %d, want %d", len(ghost), s.nGhost))
	}
	out := make([][]int, s.procs)
	for p, lst := range s.sendLocal {
		if len(lst) == 0 {
			continue
		}
		buf := make([]int, len(lst))
		for i, l := range lst {
			buf[i] = local[l]
		}
		out[p] = buf
	}
	c.Words(s.SendCount())
	in := c.AlltoAllInts(out)
	for p, slots := range s.recvGhost {
		vals := in[p]
		if len(vals) != len(slots) {
			panic(fmt.Sprintf("schedule: gather from %d delivered %d values, want %d", p, len(vals), len(slots)))
		}
		for i, slot := range slots {
			ghost[slot] = vals[i]
		}
	}
	c.Words(s.RecvCount())
}

// GatherVec executes the schedule for a vector array with ncomp
// components per element, laid out element-major: component k of local
// element l lives at local[l*ncomp+k], and likewise for ghost slots.
// All components of an element travel in one message.
func (s *Schedule) GatherVec(c *machine.Ctx, local, ghost []float64, ncomp int) {
	if ncomp < 1 {
		panic("schedule: GatherVec with ncomp < 1")
	}
	if len(ghost) != s.nGhost*ncomp {
		panic(fmt.Sprintf("schedule: vector ghost length %d, want %d", len(ghost), s.nGhost*ncomp))
	}
	out := make([][]float64, s.procs)
	for p, lst := range s.sendLocal {
		if len(lst) == 0 {
			continue
		}
		buf := make([]float64, len(lst)*ncomp)
		for i, l := range lst {
			copy(buf[i*ncomp:(i+1)*ncomp], local[l*ncomp:(l+1)*ncomp])
		}
		out[p] = buf
	}
	c.Words(s.SendCount() * ncomp)
	in := c.AlltoAllFloats(out)
	for p, slots := range s.recvGhost {
		vals := in[p]
		if len(vals) != len(slots)*ncomp {
			panic(fmt.Sprintf("schedule: vector gather from %d delivered %d values, want %d",
				p, len(vals), len(slots)*ncomp))
		}
		for i, slot := range slots {
			copy(ghost[slot*ncomp:(slot+1)*ncomp], vals[i*ncomp:(i+1)*ncomp])
		}
	}
	c.Words(s.RecvCount() * ncomp)
}

// ScatterAddVec is the consumer→owner reduction for vector arrays: each
// component of every ghost element is added into the owner's element.
func (s *Schedule) ScatterAddVec(c *machine.Ctx, local, ghost []float64, ncomp int) {
	if ncomp < 1 {
		panic("schedule: ScatterAddVec with ncomp < 1")
	}
	if len(ghost) != s.nGhost*ncomp {
		panic(fmt.Sprintf("schedule: vector ghost length %d, want %d", len(ghost), s.nGhost*ncomp))
	}
	out := make([][]float64, s.procs)
	for p, slots := range s.recvGhost {
		if len(slots) == 0 {
			continue
		}
		buf := make([]float64, len(slots)*ncomp)
		for i, slot := range slots {
			copy(buf[i*ncomp:(i+1)*ncomp], ghost[slot*ncomp:(slot+1)*ncomp])
		}
		out[p] = buf
	}
	c.Words(s.RecvCount() * ncomp)
	in := c.AlltoAllFloats(out)
	for p, lst := range s.sendLocal {
		vals := in[p]
		if len(vals) != len(lst)*ncomp {
			panic(fmt.Sprintf("schedule: vector scatter from %d delivered %d values, want %d",
				p, len(vals), len(lst)*ncomp))
		}
		for i, l := range lst {
			for k := 0; k < ncomp; k++ {
				local[l*ncomp+k] += vals[i*ncomp+k]
			}
		}
	}
	c.Flops(s.SendCount() * ncomp)
	c.Words(s.SendCount() * ncomp)
}
