package schedule

import (
	"testing"
	"testing/quick"

	"chaos/internal/dist"
	"chaos/internal/machine"
	"chaos/internal/ttable"
)

func TestGatherInts(t *testing.T) {
	const n, p = 30, 3
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		d := dist.NewBlock(n, p)
		local := make([]int, d.LocalSize(c.Rank()))
		for l := range local {
			local[l] = 100 + d.Global(c.Rank(), l)
		}
		globals := []int{0, n - 1, n / 2, 0}
		s, ref := BuildGather(c, ttable.Regular{D: d}, len(local), globals, Options{})
		ghost := make([]int, s.NGhost())
		s.GatherInts(c, local, ghost)
		for i, g := range globals {
			var got int
			if ref[i] < len(local) {
				got = local[ref[i]]
			} else {
				got = ghost[ref[i]-len(local)]
			}
			if got != 100+g {
				t.Errorf("g=%d got %d", g, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherVec(t *testing.T) {
	const n, p, ncomp = 20, 4, 5
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		d := dist.NewBlock(n, p)
		localN := d.LocalSize(c.Rank())
		local := make([]float64, localN*ncomp)
		for l := 0; l < localN; l++ {
			g := d.Global(c.Rank(), l)
			for k := 0; k < ncomp; k++ {
				local[l*ncomp+k] = float64(g*10 + k)
			}
		}
		globals := []int{(d.Hi(c.Rank()) + 3) % n, d.Lo(c.Rank())}
		s, ref := BuildGather(c, ttable.Regular{D: d}, localN, globals, Options{})
		ghost := make([]float64, s.NGhost()*ncomp)
		s.GatherVec(c, local, ghost, ncomp)
		for i, g := range globals {
			for k := 0; k < ncomp; k++ {
				var got float64
				if ref[i] < localN {
					got = local[ref[i]*ncomp+k]
				} else {
					got = ghost[(ref[i]-localN)*ncomp+k]
				}
				if got != float64(g*10+k) {
					t.Errorf("g=%d comp %d got %v", g, k, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterAddVec(t *testing.T) {
	const n, p, ncomp = 8, 4, 3
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		d := dist.NewBlock(n, p)
		localN := d.LocalSize(c.Rank())
		local := make([]float64, localN*ncomp)
		// Every rank contributes (rank+1, 0, -(rank+1)) to global 5.
		globals := []int{5}
		s, ref := BuildGather(c, ttable.Regular{D: d}, localN, globals, Options{})
		ghost := make([]float64, s.NGhost()*ncomp)
		contrib := []float64{float64(c.Rank() + 1), 0, -float64(c.Rank() + 1)}
		if ref[0] < localN {
			for k := 0; k < ncomp; k++ {
				local[ref[0]*ncomp+k] += contrib[k]
			}
		} else {
			copy(ghost[(ref[0]-localN)*ncomp:], contrib)
		}
		s.ScatterAddVec(c, local, ghost, ncomp)
		if d.Owner(5) == c.Rank() {
			l := d.Local(5)
			want := []float64{1 + 2 + 3 + 4, 0, -(1 + 2 + 3 + 4)}
			for k := 0; k < ncomp; k++ {
				if local[l*ncomp+k] != want[k] {
					t.Errorf("component %d = %v, want %v", k, local[l*ncomp+k], want[k])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherVecMatchesScalarGatherPerComponent(t *testing.T) {
	// Property: a vector gather equals ncomp scalar gathers.
	const n, p, ncomp = 24, 3, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		d := dist.NewBlock(n, p)
		localN := d.LocalSize(c.Rank())
		vec := make([]float64, localN*ncomp)
		scalar := make([][]float64, ncomp)
		for k := range scalar {
			scalar[k] = make([]float64, localN)
		}
		for l := 0; l < localN; l++ {
			g := d.Global(c.Rank(), l)
			for k := 0; k < ncomp; k++ {
				v := float64(g)*1.5 + float64(k)*100
				vec[l*ncomp+k] = v
				scalar[k][l] = v
			}
		}
		globals := []int{(c.Rank()*7 + 1) % n, (c.Rank()*7 + 13) % n}
		s, _ := BuildGather(c, ttable.Regular{D: d}, localN, globals, Options{})
		gv := make([]float64, s.NGhost()*ncomp)
		s.GatherVec(c, vec, gv, ncomp)
		for k := 0; k < ncomp; k++ {
			gs := make([]float64, s.NGhost())
			s.Gather(c, scalar[k], gs)
			for slot := 0; slot < s.NGhost(); slot++ {
				if gv[slot*ncomp+k] != gs[slot] {
					t.Errorf("comp %d slot %d: vec %v scalar %v", k, slot, gv[slot*ncomp+k], gs[slot])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVecPanicsOnBadSizes(t *testing.T) {
	err := machine.Run(machine.Zero(2), func(c *machine.Ctx) {
		d := dist.NewBlock(8, 2)
		s, _ := BuildGather(c, ttable.Regular{D: d}, d.LocalSize(c.Rank()), []int{0}, Options{})
		s.GatherVec(c, make([]float64, 100), make([]float64, 1), 3) // wrong ghost len
	})
	if err == nil {
		t.Fatal("expected panic")
	}
}

// Property-based inspector check: for random reference lists over a
// random block distribution, BuildGather + Gather delivers exactly the
// referenced values.
func TestBuildGatherQuickProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawP uint8, rawRefs []uint8) bool {
		n := int(rawN)%50 + 2
		p := int(rawP)%6 + 1
		refs := make([]int, len(rawRefs))
		for i, r := range rawRefs {
			refs[i] = int(r) % n
		}
		ok := true
		err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
			d := dist.NewBlock(n, p)
			local := make([]float64, d.LocalSize(c.Rank()))
			for l := range local {
				local[l] = float64(7 * d.Global(c.Rank(), l))
			}
			s, ref := BuildGather(c, ttable.Regular{D: d}, len(local), refs, Options{})
			ghost := make([]float64, s.NGhost())
			s.Gather(c, local, ghost)
			for i, g := range refs {
				var got float64
				if ref[i] < len(local) {
					got = local[ref[i]]
				} else {
					got = ghost[ref[i]-len(local)]
				}
				if got != float64(7*g) {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
