package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// stubCompute replaces the engine with a controllable stand-in: each
// compute blocks until its per-key gate opens, and records the order
// keys entered compute. Admission behavior (queue bounds, FIFO drain,
// rejection) is then deterministic and engine-free.
type stubCompute struct {
	mu    sync.Mutex
	order []Fingerprint
	gates map[Fingerprint]chan struct{}
}

func newStubCompute() *stubCompute {
	return &stubCompute{gates: make(map[Fingerprint]chan struct{})}
}

// gate returns (creating on demand) the release channel for fp.
func (sc *stubCompute) gate(fp Fingerprint) chan struct{} {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	g, ok := sc.gates[fp]
	if !ok {
		g = make(chan struct{})
		sc.gates[fp] = g
	}
	return g
}

func (sc *stubCompute) fn(ctx context.Context, gc *graphContent, sp partition.Spec, nparts, procs int, backend machine.Backend, warm *warmSource) (*computeResult, error) {
	fp := gc.fingerprint()
	sc.mu.Lock()
	sc.order = append(sc.order, fp)
	g, ok := sc.gates[fp]
	if !ok {
		g = make(chan struct{})
		sc.gates[fp] = g
	}
	sc.mu.Unlock()
	select {
	case <-g:
	case <-ctx.Done():
		return nil, fmt.Errorf("stub compute cancelled: %w", ctx.Err())
	}
	return &computeResult{part: make([]int, gc.n)}, nil
}

func (sc *stubCompute) started() []Fingerprint {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]Fingerprint(nil), sc.order...)
}

// tinyRequest builds a distinct trivial request per variant; the stub
// compute never looks at the graph beyond its fingerprint.
func tinyRequest(variant int) *Request {
	return &Request{
		NNode: 64, NParts: 2, Procs: 1,
		Spec: partition.Spec{Method: partition.MethodBlock},
		E1:   []int{0, 1}, E2: []int{1, (variant + 2) % 64},
	}
}

// TestAdmissionControl pins the bounded-pool contract across pool
// widths: with every worker busy and the queue full, the next
// distinct request is rejected immediately with ErrOverloaded; the
// queued requests then drain in FIFO order.
func TestAdmissionControl(t *testing.T) {
	const queueDepth = 3
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sc := newStubCompute()
			s := New(Options{Workers: workers, QueueDepth: queueDepth})
			defer s.Close()
			s.compute = sc.fn

			var wg sync.WaitGroup
			do := func(variant int) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := s.Do(context.Background(), tinyRequest(variant)); err != nil {
						t.Errorf("variant %d: %v", variant, err)
					}
				}()
			}

			// Plug every worker with a blocking compute, waiting until
			// each is actually inside the engine.
			for v := 0; v < workers; v++ {
				do(v)
			}
			deadline := time.After(5 * time.Second)
			for len(sc.started()) < workers {
				select {
				case <-deadline:
					t.Fatalf("only %d/%d workers started", len(sc.started()), workers)
				case <-time.After(time.Millisecond):
				}
			}

			// Fill the queue exactly, one request at a time — waiting for
			// each to claim its slot (visible in the flight map) before
			// issuing the next, so the enqueue order is the spawn order.
			// None of these can start: every worker is plugged.
			queued := make([]Fingerprint, 0, queueDepth)
			for v := workers; v < workers+queueDepth; v++ {
				queued = append(queued, tinyRequest(v).fingerprintForTest())
				do(v)
				for deadline2 := time.After(5 * time.Second); ; {
					s.mu.Lock()
					n := len(s.flight)
					s.mu.Unlock()
					if n == v+1 {
						break
					}
					select {
					case <-deadline2:
						t.Fatalf("flight has %d entries, want %d", n, v+1)
					case <-time.After(time.Millisecond):
					}
				}
			}

			// Beyond capacity: immediate typed rejection, no blocking.
			t0 := time.Now()
			_, err := s.Do(context.Background(), tinyRequest(workers+queueDepth))
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("over-capacity request: err = %v, want ErrOverloaded", err)
			}
			if d := time.Since(t0); d > time.Second {
				t.Fatalf("rejection took %v, want immediate", d)
			}
			if m := s.Metrics(); m.Rejected != 1 {
				t.Fatalf("Rejected = %d, want 1", m.Rejected)
			}

			// A request identical to a queued one batches on (shared),
			// costing no queue slot — it must NOT be rejected.
			sharedErr := make(chan error, 1)
			go func() {
				_, err := s.Do(context.Background(), tinyRequest(workers))
				sharedErr <- err
			}()

			// Pre-open every queued job's gate, then release exactly one
			// plugged worker: with its peers still plugged, it alone
			// drains the queue, so the stub's start order beyond the
			// plugs must equal the enqueue order exactly — FIFO, at
			// every pool width.
			for _, fp := range queued {
				close(sc.gate(fp))
			}
			close(sc.gate(tinyRequest(0).fingerprintForTest()))
			for deadline3 := time.After(5 * time.Second); len(sc.started()) < workers+queueDepth; {
				select {
				case <-deadline3:
					t.Fatalf("queue did not drain: %d/%d computes started", len(sc.started()), workers+queueDepth)
				case <-time.After(time.Millisecond):
				}
			}
			got := sc.started()[workers:]
			if !reflect.DeepEqual(got, queued) {
				t.Fatalf("queue drained as %v, enqueued as %v", got, queued)
			}

			// Release the remaining plugs and let everything unwind.
			for v := 1; v < workers; v++ {
				close(sc.gate(tinyRequest(v).fingerprintForTest()))
			}
			wg.Wait()
			if err := <-sharedErr; err != nil {
				t.Fatalf("request batched on queued key failed: %v", err)
			}
		})
	}
}

// fingerprintForTest exposes the request's content fingerprint to the
// admission test's gate bookkeeping.
func (r *Request) fingerprintForTest() Fingerprint {
	return (&graphContent{n: r.NNode, e1: r.E1, e2: r.E2, coords: r.Coords, weights: r.VertexWeights}).fingerprint()
}
