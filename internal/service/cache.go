package service

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"chaos/internal/partition"
)

// The cache is the paper's schedule-reuse economy lifted to
// cross-request scope: pay for partitioning (and, for MULTILEVEL, for
// building the coarsening ladder) once, then amortize across every
// client of the daemon. It is content-addressed — the key derives from
// the graph's content hash plus the canonicalized spec — so identical
// requests from unrelated clients collide on purpose.
//
// Two kinds of entries live side by side under one memory cap:
//
//   - graph entries: fingerprint → edge lists (+ coords/weights),
//     kept so later requests can name the graph by fingerprint and
//     ship only a churn delta;
//   - result entries: (fingerprint, spec, nparts, procs) → finished
//     part vector, stats, and — after a cold distributed MULTILEVEL
//     run — the per-rank retained coarsening ladders that warm-start
//     churned descendants of the graph.
//
// Leases protect entries in use: every read or warm-compute against an
// entry holds a lease (a refcount), and the evictor never removes a
// leased entry, however far over the cap the cache is — eviction
// mid-lease would hand a request a part vector or ladder being freed
// under it. Eviction is LRU over the unleased remainder.

// resultKey identifies one cached partition result. Spec is the
// canonical Spec.String() form (options sorted, defaults elided), so
// two specs that mean the same thing hit the same entry.
type resultKey struct {
	fp     Fingerprint
	spec   string
	nparts int
	procs  int
}

// graphContent is the server-side graph payload: the canonical,
// immutable content a fingerprint addresses.
type graphContent struct {
	n       int
	e1, e2  []int
	coords  [][]float64
	weights []float64
}

// bytes reports the heap footprint of the content.
func (gc *graphContent) bytes() int64 {
	b := int64(8 * (len(gc.e1) + len(gc.e2) + len(gc.weights)))
	for _, col := range gc.coords {
		b += int64(8 * len(col))
	}
	return b
}

// fingerprint computes the stable content address: FNV-1a/64 over a
// canonical little-endian stream of every component. Deterministic
// across processes and architectures, so fingerprints are valid
// cross-client currency.
func (gc *graphContent) fingerprint() Fingerprint {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi(0x63686165736431) // "chaosd1" domain separator
	wi(uint64(gc.n))
	wi(uint64(len(gc.e1)))
	for i := range gc.e1 {
		wi(uint64(gc.e1[i]))
		wi(uint64(gc.e2[i]))
	}
	wi(uint64(len(gc.coords)))
	for _, col := range gc.coords {
		wi(uint64(len(col)))
		for _, x := range col {
			wi(math.Float64bits(x))
		}
	}
	wi(uint64(len(gc.weights)))
	for _, x := range gc.weights {
		wi(math.Float64bits(x))
	}
	return Fingerprint(h.Sum64())
}

// graphEntry is one cached graph payload.
type graphEntry struct {
	fp     Fingerprint
	gc     *graphContent
	size   int64
	leases int
	elem   *list.Element
}

// resultEntry is one cached partition result. part, cut and the
// timing figures are immutable after insertion; ladders are mutable
// scratch-bearing state, so warm computes serialize on warmMu (and
// hold a lease, so the entry cannot be evicted mid-compute).
type resultEntry struct {
	key      resultKey
	part     []int
	cut      int
	virtualS float64
	wallMS   float64
	// ladders holds the per-rank retained coarsening ladders of the
	// cold run that produced this entry; nil when the serial path ran
	// or the entry came from a warm/non-multilevel compute.
	ladders []*partition.Ladder
	// warmMu serializes warm repartitions off this entry's ladders:
	// the ladders share one scratch arena per rank, so two concurrent
	// warm computes against the same base would race on it.
	warmMu sync.Mutex

	size   int64
	leases int
	elem   *list.Element
}

// hasLadders reports whether the entry can warm-start a same-shape
// repartition at the given machine width.
func (e *resultEntry) hasLadders(n, nparts, procs int) bool {
	if len(e.ladders) != procs {
		return false
	}
	for _, ld := range e.ladders {
		if ld == nil || ld.Depth() == 0 || ld.N() != n || ld.NParts() != nparts {
			return false
		}
	}
	return true
}

// CacheStats is a point-in-time cache summary.
type CacheStats struct {
	Graphs    int
	Results   int
	Bytes     int64
	CapBytes  int64
	Evictions int64
}

// cache is the shared store. All fields are guarded by mu; leases are
// manipulated only under it.
type cache struct {
	mu        sync.Mutex
	capBytes  int64
	used      int64
	graphs    map[Fingerprint]*graphEntry
	results   map[resultKey]*resultEntry
	lru       *list.List // *graphEntry | *resultEntry; front = oldest
	evictions int64
}

func newCache(capBytes int64) *cache {
	return &cache{
		capBytes: capBytes,
		graphs:   make(map[Fingerprint]*graphEntry),
		results:  make(map[resultKey]*resultEntry),
		lru:      list.New(),
	}
}

// putGraph inserts (or refreshes) a graph payload and returns the
// entry with one lease held; the caller must releaseGraph it.
func (c *cache) putGraph(fp Fingerprint, gc *graphContent) *graphEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ge, ok := c.graphs[fp]; ok {
		ge.leases++
		c.lru.MoveToBack(ge.elem)
		return ge
	}
	ge := &graphEntry{fp: fp, gc: gc, size: gc.bytes() + 64, leases: 1}
	ge.elem = c.lru.PushBack(ge)
	c.graphs[fp] = ge
	c.used += ge.size
	c.evict()
	return ge
}

// leaseGraph returns the graph entry for fp with one lease held, or
// false when the fingerprint is unknown (evicted or never seen).
func (c *cache) leaseGraph(fp Fingerprint) (*graphEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ge, ok := c.graphs[fp]
	if !ok {
		return nil, false
	}
	ge.leases++
	c.lru.MoveToBack(ge.elem)
	return ge, true
}

func (c *cache) releaseGraph(ge *graphEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ge.leases--
	c.evict()
}

// putResult inserts a finished partition result and returns the
// canonical entry with one lease held (when an identical key raced in
// first, the existing entry wins and the new one is dropped — the two
// are bit-identical by determinism).
func (c *cache) putResult(e *resultEntry) *resultEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.results[e.key]; ok {
		old.leases++
		c.lru.MoveToBack(old.elem)
		return old
	}
	e.size = int64(8*len(e.part)) + 128
	for _, ld := range e.ladders {
		e.size += int64(ld.Bytes())
	}
	e.leases++
	e.elem = c.lru.PushBack(e)
	c.results[e.key] = e
	c.used += e.size
	c.evict()
	return e
}

// leaseResult returns the result entry for key with one lease held.
func (c *cache) leaseResult(key resultKey) (*resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.results[key]
	if !ok {
		return nil, false
	}
	e.leases++
	c.lru.MoveToBack(e.elem)
	return e, true
}

func (c *cache) releaseResult(e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.leases--
	c.evict()
}

// evict walks the LRU from the oldest end, removing unleased entries
// until the cache fits its cap. Leased entries are skipped — never
// evicted mid-lease — so the cache can transiently exceed the cap
// while every resident entry is in use. Caller holds mu.
func (c *cache) evict() {
	if c.capBytes <= 0 {
		return // unbounded
	}
	for el := c.lru.Front(); el != nil && c.used > c.capBytes; {
		next := el.Next()
		switch e := el.Value.(type) {
		case *graphEntry:
			if e.leases == 0 {
				c.lru.Remove(el)
				delete(c.graphs, e.fp)
				c.used -= e.size
				c.evictions++
			}
		case *resultEntry:
			if e.leases == 0 {
				c.lru.Remove(el)
				delete(c.results, e.key)
				c.used -= e.size
				c.evictions++
			}
		}
		el = next
	}
}

// stats snapshots the cache counters.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Graphs:    len(c.graphs),
		Results:   len(c.results),
		Bytes:     c.used,
		CapBytes:  c.capBytes,
		Evictions: c.evictions,
	}
}
