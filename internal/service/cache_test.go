package service

import (
	"testing"
)

// mkResult builds a result entry whose part vector dominates its
// size: 8*n bytes + 128 overhead.
func mkResult(fp Fingerprint, n int) *resultEntry {
	return &resultEntry{
		key:  resultKey{fp: fp, spec: "MULTILEVEL", nparts: 2, procs: 1},
		part: make([]int, n),
	}
}

// TestCacheEvictionNeverMidLease pins the lease contract: however far
// over its cap the cache is pushed, a leased entry survives; the
// moment its lease drops it becomes fair game.
func TestCacheEvictionNeverMidLease(t *testing.T) {
	// Cap fits roughly two 100-part results (928 bytes each).
	c := newCache(2000)

	a := c.putResult(mkResult(1, 100)) // leased by put
	b := c.putResult(mkResult(2, 100))
	c.releaseResult(b) // a stays leased; b is evictable

	// Blow past the cap repeatedly. a is leased and must survive every
	// eviction pass; the filler entries and b go.
	for fp := Fingerprint(10); fp < 20; fp++ {
		e := c.putResult(mkResult(fp, 100))
		c.releaseResult(e)
	}
	if _, ok := c.leaseResult(a.key); !ok {
		t.Fatalf("leased entry was evicted")
	}
	c.releaseResult(a) // drop the extra lease taken just above

	if st := c.stats(); st.Evictions == 0 {
		t.Fatalf("no evictions despite cap pressure (bytes=%d cap=%d)", st.Bytes, st.CapBytes)
	}
	if _, ok := c.leaseResult(resultKey{fp: 2, spec: "MULTILEVEL", nparts: 2, procs: 1}); ok {
		t.Fatalf("unleased older entry survived cap pressure that should have evicted it")
	}

	// Release a's original lease: the next cap overflow may now evict
	// it like anything else.
	c.releaseResult(a)
	for fp := Fingerprint(30); fp < 40; fp++ {
		e := c.putResult(mkResult(fp, 100))
		c.releaseResult(e)
	}
	if _, ok := c.leaseResult(a.key); ok {
		t.Fatalf("released entry survived cap pressure; lease leak?")
	}
}

// TestCacheLRUOrder pins the eviction order: oldest unleased first,
// recently-touched entries last.
func TestCacheLRUOrder(t *testing.T) {
	c := newCache(3000) // fits three 100-part results
	for fp := Fingerprint(1); fp <= 3; fp++ {
		c.releaseResult(c.putResult(mkResult(fp, 100)))
	}
	// Touch entry 1: it becomes most-recent; 2 is now oldest.
	e, ok := c.leaseResult(resultKey{fp: 1, spec: "MULTILEVEL", nparts: 2, procs: 1})
	if !ok {
		t.Fatalf("entry 1 missing")
	}
	c.releaseResult(e)

	c.releaseResult(c.putResult(mkResult(4, 100))) // forces one eviction
	if _, ok := c.leaseResult(resultKey{fp: 2, spec: "MULTILEVEL", nparts: 2, procs: 1}); ok {
		t.Fatalf("LRU kept the oldest unleased entry")
	}
	for _, fp := range []Fingerprint{1, 3, 4} {
		e, ok := c.leaseResult(resultKey{fp: fp, spec: "MULTILEVEL", nparts: 2, procs: 1})
		if !ok {
			t.Fatalf("entry %d evicted out of LRU order", fp)
		}
		c.releaseResult(e)
	}
}

// TestCacheGraphLease covers the graph side: leased graph entries
// survive cap pressure, deltas keyed on them stay resolvable, and
// identical uploads dedup onto one entry.
func TestCacheGraphLease(t *testing.T) {
	c := newCache(3000)
	gc := &graphContent{n: 8, e1: make([]int, 100), e2: make([]int, 100)}
	ge := c.putGraph(gc.fingerprint(), gc) // leased

	dup := c.putGraph(gc.fingerprint(), &graphContent{n: 8, e1: make([]int, 100), e2: make([]int, 100)})
	if dup != ge {
		t.Fatalf("identical upload did not dedup onto the existing entry")
	}
	c.releaseGraph(dup)

	for fp := Fingerprint(100); fp < 110; fp++ {
		c.releaseResult(c.putResult(mkResult(fp, 100)))
	}
	if _, ok := c.leaseGraph(gc.fingerprint()); !ok {
		t.Fatalf("leased graph entry was evicted")
	}
	c.releaseGraph(ge)

	st := c.stats()
	if st.Graphs != 1 {
		t.Fatalf("Graphs = %d, want 1", st.Graphs)
	}
}

// TestCacheUnbounded pins the no-cap mode: capBytes <= 0 never
// evicts.
func TestCacheUnbounded(t *testing.T) {
	c := newCache(-1)
	for fp := Fingerprint(1); fp <= 50; fp++ {
		c.releaseResult(c.putResult(mkResult(fp, 1000)))
	}
	if st := c.stats(); st.Evictions != 0 || st.Results != 50 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
}
