package service

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
)

// Client speaks the chaosd wire protocol over one connection.
// Requests on a single client are serialized (one frame in flight at
// a time); open several clients for concurrency — the daemon batches
// identical requests server-side, so extra connections are cheap.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	out  []byte

	maxFrame int
}

// Dial connects a Client to a chaosd daemon at addr ("host:port" or,
// with network "unix", a socket path).
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection. The Client owns conn and
// closes it on Close.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 1<<16),
		maxFrame: DefaultMaxFrame,
	}
}

// Do sends one partition request and waits for its response. Errors
// the daemon signals come back as typed wire errors — check with
// errors.Is against ErrOverloaded (retryable), ErrUnknownGraph
// (re-send the full graph), ErrBadRequest, or context.Canceled.
// Cancelling ctx tears the connection down (the daemon notices the
// disconnect and abandons the compute); the Client is unusable after
// that and after any transport error.
func (cl *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()

	if ctx != nil && ctx.Done() != nil {
		// Unblock the pending read on cancellation by closing the
		// connection; the watcher is released on return.
		watch := make(chan struct{})
		defer close(watch)
		go func() {
			select {
			case <-ctx.Done():
				cl.conn.Close()
			case <-watch:
			}
		}()
	}

	cl.out = appendFrame(cl.out[:0], msgPartition, encodeRequest(req))
	if _, err := cl.conn.Write(cl.out); err != nil {
		return nil, wrapCtx(ctx, fmt.Errorf("service: send request: %w", err))
	}
	t, payload, err := readFrame(cl.br, cl.maxFrame)
	if err != nil {
		return nil, wrapCtx(ctx, fmt.Errorf("service: read response: %w", err))
	}
	switch t {
	case msgOK:
		return decodeResponse(payload)
	case msgError:
		return nil, decodeError(payload)
	default:
		return nil, fmt.Errorf("service: unexpected frame type %d in response", t)
	}
}

// wrapCtx prefers the context's cancellation cause over the transport
// error it provoked (closing the connection to unblock I/O surfaces as
// "use of closed network connection", which would mask the real cause).
func wrapCtx(ctx context.Context, err error) error {
	if ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("service: request cancelled: %w", ctx.Err())
	}
	return err
}

// Close tears the connection down.
func (cl *Client) Close() error {
	return cl.conn.Close()
}
