package service

import (
	"context"
	"reflect"
	"testing"

	"chaos/internal/machine"
)

// Pinned content fingerprints of load-generator graph variants 0 and
// 1 at the test shape. These are the cache's currency across
// processes — any change to the FNV-1a stream layout breaks every
// deployed client's delta requests, so a change here must be a
// deliberate wire-version bump.
const (
	pinnedFP0 = Fingerprint(0xcddc38ed7772a97a)
	pinnedFP1 = Fingerprint(0xae784ba8252badd2)
)

// TestPinnedFingerprints pins the content-hash function itself.
func TestPinnedFingerprints(t *testing.T) {
	for v, want := range map[int]Fingerprint{0: pinnedFP0, 1: pinnedFP1} {
		e1, e2 := LoadGraph(v, testNNode, testDegree)
		gc := &graphContent{n: testNNode, e1: e1, e2: e2}
		if got := gc.fingerprint(); got != want {
			t.Errorf("variant %d fingerprint = %s, pinned %s", v, got, want)
		}
	}
}

// TestCacheHitBitIdenticalAcrossBackends pins the determinism
// contract the cache is built on: at a fixed seed, a cold compute of
// the same key is bit-identical across fresh servers AND across
// execution backends — so serving a Simulated-computed cache entry to
// a Real-backend client is sound, and vice versa.
func TestCacheHitBitIdenticalAcrossBackends(t *testing.T) {
	type outcome struct {
		part []int
		cut  int
		fp   Fingerprint
	}
	compute := func(backend machine.Backend) outcome {
		s := New(Options{})
		defer s.Close()
		req := testRequest(0)
		req.Backend = backend
		resp, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("backend %v: %v", backend, err)
		}
		if resp.Served != ServedCold {
			t.Fatalf("backend %v: served %v, want cold", backend, resp.Served)
		}
		return outcome{part: resp.Part, cut: resp.Cut, fp: resp.Fingerprint}
	}

	sim := compute(machine.Simulated)
	simAgain := compute(machine.Simulated)
	real := compute(machine.Real)

	if !reflect.DeepEqual(sim, simAgain) {
		t.Fatalf("two cold Simulated computes differ: cut %d vs %d", sim.cut, simAgain.cut)
	}
	if !reflect.DeepEqual(sim.part, real.part) || sim.cut != real.cut {
		t.Fatalf("Simulated and Real backends disagree: cut %d vs %d", sim.cut, real.cut)
	}
	if sim.fp != real.fp {
		t.Fatalf("fingerprints differ across backends: %s vs %s", sim.fp, real.fp)
	}

	// And the cross-backend cache hit: compute under Simulated, then
	// request the same key under Real — the hit must be bit-identical
	// to what a cold Real run would have produced (= sim.part, by the
	// contract just verified).
	s := New(Options{})
	defer s.Close()
	req := testRequest(0)
	req.Backend = machine.Simulated
	if _, err := s.Do(context.Background(), req); err != nil {
		t.Fatalf("seed compute: %v", err)
	}
	realReq := testRequest(0)
	realReq.Backend = machine.Real
	hit, err := s.Do(context.Background(), realReq)
	if err != nil {
		t.Fatalf("cross-backend hit: %v", err)
	}
	if hit.Served != ServedHit || !reflect.DeepEqual(hit.Part, sim.part) {
		t.Fatalf("cross-backend request served %v with identical part=%v, want hit + true",
			hit.Served, reflect.DeepEqual(hit.Part, sim.part))
	}
}

// TestWarmDeterminism pins the warm path the same way: a warm
// repartition of a churned graph is bit-identical across independent
// servers (each doing its own cold run first).
func TestWarmDeterminism(t *testing.T) {
	run := func(backend machine.Backend) []int {
		s := New(Options{})
		defer s.Close()
		req := testRequest(0)
		req.Backend = backend
		cold, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("cold: %v", err)
		}
		warm, err := s.Do(context.Background(), &Request{
			NNode: testNNode, NParts: testNParts, Procs: testProcs,
			Spec: testSpec(), Backend: backend,
			Base:  cold.Fingerprint,
			Delta: []EdgeRewire{{Edge: testNNode + 2, NewEnd: 123}},
		})
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		if warm.Served != ServedWarm {
			t.Fatalf("served %v, want warm", warm.Served)
		}
		return warm.Part
	}
	a, b := run(machine.Simulated), run(machine.Simulated)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two warm computes of the same churned key differ")
	}
	if c := run(machine.Real); !reflect.DeepEqual(a, c) {
		t.Fatalf("warm compute differs across backends")
	}
}
