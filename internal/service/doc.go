// Package service is chaosd's core: partitioning-as-a-service. It
// wraps the Session/Repartitioner machinery behind a long-lived
// Server answering a small length-prefixed wire protocol — a request
// names a graph (full upload or fingerprint + churn delta) and a
// partitioning spec; the response is the part vector with cut and
// timing stats.
//
// The paper's economics motivate the shape: CHAOS amortizes
// partitioning and schedule construction across the iterations of one
// program. The service lifts that amortization across programs — a
// content-addressed cache keyed by (graph fingerprint, canonical
// spec, nparts, procs) holds finished partitions and, for MULTILEVEL,
// the retained coarsening ladders, so one client's cold run
// warm-starts every other client's churned follow-up. Admission
// control (bounded worker pool over a bounded FIFO queue, typed
// ErrOverloaded rejection) and singleflight batching of identical
// in-flight requests keep the daemon well-behaved under load.
//
// Entry points: New/Serve/Close for the daemon, Dial/Client.Do for
// the wire client, Server.Do for in-process use, and LoadGenConfig
// for the benchmark harness. cmd/chaosd is the daemon binary;
// cmd/chaosbench -service drives the load generator.
package service
