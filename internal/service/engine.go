package service

import (
	"context"
	"fmt"
	"sync"

	"chaos/internal/dist"
	"chaos/internal/geocol"
	"chaos/internal/machine"
	"chaos/internal/partition"
)

// The engine is the service's compute kernel: one request becomes one
// SPMD run on the simulated (or Real) machine — the same
// geocol.Build → Spec.ValidateFor → Partition pipeline a Session
// drives, minus the array/loop machinery a pure partitioning service
// does not need. Results are deterministic functions of (graph
// content, spec, nparts, procs), which is what makes the
// content-addressed cache sound: any two computes of the same key are
// bit-identical, on either backend (the PR 7 determinism contract).

// computeResult is the engine's answer for one request.
type computeResult struct {
	part    []int // full part vector, global vertex order
	cut     int
	stats   machine.Stats
	ladders []*partition.Ladder // per-rank; nil unless a cold distributed MULTILEVEL ran
	wasWarm bool
}

// warmSource is the retained state a warm compute starts from: the
// base entry's per-rank ladders and its full part vector.
type warmSource struct {
	ladders []*partition.Ladder
	part    []int
}

// computePartition runs one partitioning request on a fresh machine.
// When warm is non-nil the MULTILEVEL ladder-reuse path runs
// (Multilevel.Repartition) against the retained per-rank ladders;
// otherwise the partitioner runs cold, retaining fresh ladders when
// the distributed multilevel path was taken. Cancelling ctx aborts
// the machine mid-run; every rank unwinds and the returned error
// wraps ctx.Err().
func computePartition(ctx context.Context, gc *graphContent, sp partition.Spec, nparts, procs int, backend machine.Backend, warm *warmSource) (*computeResult, error) {
	p, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	ml, isML := p.(partition.Multilevel)
	if warm != nil && !isML {
		warm = nil // only MULTILEVEL retains ladders
	}

	cfg := machine.IPSC860(procs)
	cfg.Backend = backend
	cfg.Seed = sp.Seed

	home := dist.NewBlock(gc.n, procs)
	edges := dist.NewBlock(len(gc.e1), procs)
	res := &computeResult{ladders: make([]*partition.Ladder, procs), wasWarm: warm != nil}
	var mu sync.Mutex

	st, err := machine.RunStats(ctx, cfg, func(c *machine.Ctx) {
		me := c.Rank()
		var opts []geocol.Option
		if len(gc.e1) > 0 {
			lo, hi := edges.Lo(me), edges.Hi(me)
			opts = append(opts, geocol.WithLink(gc.e1[lo:hi], gc.e2[lo:hi]))
		}
		lo, hi := home.Lo(me), home.Hi(me)
		if len(gc.coords) > 0 {
			local := make([][]float64, len(gc.coords))
			for d, col := range gc.coords {
				local[d] = col[lo:hi]
			}
			opts = append(opts, geocol.WithGeometry(local...))
		}
		if len(gc.weights) > 0 {
			opts = append(opts, geocol.WithLoad(gc.weights[lo:hi]))
		}
		g := geocol.Build(c, gc.n, opts...)
		pp, err := sp.ValidateFor(g, nparts)
		if err != nil {
			// The server pre-validates; this is the belt-and-braces
			// path for capability drift, surfaced as a run error.
			panic(err)
		}
		var part []int
		switch {
		case warm != nil:
			part = ml.Repartition(c, g, nparts, warm.ladders[me], warm.part[lo:hi])
		case isML:
			var ld *partition.Ladder
			part, ld = ml.PartitionLadder(c, g, nparts)
			res.ladders[me] = ld // per-rank slot; no two ranks share one
		default:
			part = pp.Partition(c, g, nparts)
		}
		// The home distribution is BLOCK, so the rank-order allgather
		// concatenation is exactly the global part vector.
		full := c.AllGatherInts(part)
		if me == 0 {
			mu.Lock()
			res.part = full
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	res.stats = st
	if warm != nil || !isML {
		res.ladders = nil
	} else {
		for _, ld := range res.ladders {
			if ld == nil { // serial path: no ladder to retain
				res.ladders = nil
				break
			}
		}
	}
	if len(res.part) != gc.n {
		return nil, fmt.Errorf("service: internal: partition length %d, want %d", len(res.part), gc.n)
	}
	res.cut = cutOf(gc.e1, gc.e2, res.part)
	return res, nil
}

// cutOf counts edges crossing parts under the full part vector.
func cutOf(e1, e2, part []int) int {
	cut := 0
	for i := range e1 {
		if e1[i] != e2[i] && part[e1[i]] != part[e2[i]] {
			cut++
		}
	}
	return cut
}

// applyDelta materializes a churn request's graph: a copy of base
// with each rewire applied in order. Validation (edge index and
// endpoint ranges) happened before the copy.
func applyDelta(base *graphContent, delta []EdgeRewire) *graphContent {
	gc := &graphContent{
		n:       base.n,
		e1:      base.e1, // endpoints 1 are never rewired; share
		e2:      append([]int(nil), base.e2...),
		coords:  base.coords,
		weights: base.weights,
	}
	for _, d := range delta {
		gc.e2[d.Edge] = d.NewEnd
	}
	return gc
}
