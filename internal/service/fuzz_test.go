package service

import (
	"bufio"
	"bytes"
	"testing"

	"chaos/internal/partition"
)

// FuzzWireFrame throws arbitrary bytes at the full inbound decode
// path — frame layer, then every payload decoder — and pins the
// defensive contract: truncated, oversized or garbage frames must
// come back as errors, never as panics, and never as allocations
// larger than the frame itself (the count guards fail a declared
// element count against the bytes actually present before any make).
// Decoded requests must also survive server-side validation without
// panicking, whatever they claim to contain.
func FuzzWireFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of each message type, plus
	// assorted malformations.
	req := &Request{
		NNode: 8, NParts: 2, Procs: 2,
		Spec: partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 4, Seed: 1},
		E1:   []int{0, 1, 2}, E2: []int{1, 2, 3},
		Coords:        [][]float64{{0, 1, 2, 3, 4, 5, 6, 7}},
		VertexWeights: []float64{1, 1, 1, 1, 1, 1, 1, 1},
	}
	f.Add(appendFrame(nil, msgPartition, encodeRequest(req)))
	f.Add(appendFrame(nil, msgPartition, encodeRequest(&Request{
		NNode: 8, NParts: 2, Base: 0xbeef, Delta: []EdgeRewire{{Edge: 1, NewEnd: 5}},
		Spec: partition.Spec{Method: partition.MethodMultilevel},
	})))
	f.Add(appendFrame(nil, msgOK, encodeResponse(&Response{Part: []int{0, 1, 1, 0}, Cut: 2})))
	f.Add(appendFrame(nil, msgError, encodeError(ErrOverloaded)))
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, wireVersion, byte(msgPartition), 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{magic0, magic1, wireVersion, byte(msgOK), 0, 0, 0, 4, 1, 2})
	f.Add(bytes.Repeat([]byte{0xC4}, 64))

	const maxFrame = 1 << 20
	srv := New(Options{Workers: 1, CacheBytes: 1 << 20})
	f.Cleanup(func() { srv.Close() })

	f.Fuzz(func(t *testing.T, raw []byte) {
		br := bufio.NewReader(bytes.NewReader(raw))
		ty, payload, err := readFrame(br, maxFrame)
		if err != nil {
			return // rejected at the frame layer: exactly right
		}
		if len(payload) > maxFrame {
			t.Fatalf("readFrame returned a %d-byte payload past the %d cap", len(payload), maxFrame)
		}
		// Whatever the type says, every decoder must hold the
		// no-panic/no-overallocation line on this payload.
		if r, err := decodeRequest(payload); err == nil {
			// A structurally valid request must then pass through
			// server validation without panicking — admitRequest is the
			// semantic firewall for NNode/NParts/Procs/edge ranges.
			if ty == msgPartition {
				srv.admitRequest(r)
			}
		}
		decodeResponse(payload)
		decodeError(payload)
	})
}
