package service

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// The load generator is the service-layer benchmark harness: it
// drives a daemon with a fleet of concurrent clients issuing requests
// over a small working set of graphs — the access pattern the cache
// and singleflight layers exist for — and reports aggregate
// partitions/sec plus the served-class mix. cmd/chaosbench renders
// the result as parseable "servicebench:" lines; the service tests
// reuse it directly for the concurrency speedup acceptance check.

// LoadGenConfig configures one load-generation run.
type LoadGenConfig struct {
	// Dial opens one client connection per concurrent worker. Required.
	Dial func() (*Client, error)
	// Clients is the number of concurrent client connections.
	Clients int
	// Requests is the number of requests each client issues.
	Requests int
	// Graphs is the size of the working set: distinct graph variants
	// the clients cycle through (default 4). The first request against
	// each variant is a cold compute; the rest are cache currency.
	Graphs int
	// NNode and Degree shape each variant (ring + seeded chords).
	NNode, Degree int
	// NParts, Procs, Spec and Backend fill each request.
	NParts, Procs int
	Spec          partition.Spec
	Backend       machine.Backend
}

// LoadGenResult is the aggregate outcome of a load-generation run.
type LoadGenResult struct {
	Clients  int
	Requests int // total completed across all clients
	Elapsed  time.Duration

	PartsPerSec float64
	// Served-class counts over all responses.
	Hits, Cold, Warm, Shared int
	// HitRatio is the fraction of responses that reused prior work
	// (hit or shared) rather than running the partitioner.
	HitRatio float64
}

// LoadGraph builds load-generator graph variant v deterministically:
// a ring (guaranteed connectivity) plus seeded chords up to the
// requested degree. Exposed so tests and the client CLI can construct
// the exact graphs the generator sends.
func LoadGraph(v, nnode, degree int) (e1, e2 []int) {
	rng := rand.New(rand.NewSource(int64(0x10ad<<16 + v)))
	e1 = make([]int, 0, nnode*degree/2)
	e2 = make([]int, 0, cap(e1))
	for i := 0; i < nnode; i++ {
		e1 = append(e1, i)
		e2 = append(e2, (i+1)%nnode)
	}
	for i := 0; len(e1) < nnode*degree/2; i++ {
		a, b := rng.Intn(nnode), rng.Intn(nnode)
		if a != b {
			e1 = append(e1, a)
			e2 = append(e2, b)
		}
	}
	return e1, e2
}

// RunLoadGen drives cfg.Clients concurrent clients, each issuing
// cfg.Requests requests round-robin over the graph working set, and
// reports aggregate throughput. All clients start together (barrier)
// so Elapsed measures steady concurrent load.
func (cfg LoadGenConfig) RunLoadGen(ctx context.Context) (*LoadGenResult, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("service: loadgen: Dial is required")
	}
	if cfg.Clients < 1 || cfg.Requests < 1 {
		return nil, fmt.Errorf("service: loadgen: need Clients >= 1 and Requests >= 1, have %d, %d", cfg.Clients, cfg.Requests)
	}
	graphs := cfg.Graphs
	if graphs <= 0 {
		graphs = 4
	}

	type variant struct{ e1, e2 []int }
	vars := make([]variant, graphs)
	for v := range vars {
		vars[v].e1, vars[v].e2 = LoadGraph(v, cfg.NNode, cfg.Degree)
	}

	clients := make([]*Client, cfg.Clients)
	for i := range clients {
		cl, err := cfg.Dial()
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("service: loadgen: dial client %d: %w", i, err)
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
		res   = &LoadGenResult{Clients: cfg.Clients}
		first error
	)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			<-start
			var done, hits, cold, warm, shared int
			var err error
			for r := 0; r < cfg.Requests; r++ {
				v := &vars[(i+r)%graphs]
				req := &Request{
					NNode:   cfg.NNode,
					NParts:  cfg.NParts,
					Procs:   cfg.Procs,
					Backend: cfg.Backend,
					Spec:    cfg.Spec,
					E1:      v.e1,
					E2:      v.e2,
				}
				var resp *Response
				resp, err = cl.Do(ctx, req)
				if err != nil {
					break
				}
				done++
				switch resp.Served {
				case ServedHit:
					hits++
				case ServedCold:
					cold++
				case ServedWarm:
					warm++
				case ServedShared:
					shared++
				}
			}
			mu.Lock()
			res.Requests += done
			res.Hits += hits
			res.Cold += cold
			res.Warm += warm
			res.Shared += shared
			if err != nil && first == nil {
				first = fmt.Errorf("service: loadgen: client %d: %w", i, err)
			}
			mu.Unlock()
		}(i, cl)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	res.Elapsed = time.Since(t0)
	if first != nil {
		return nil, first
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.PartsPerSec = float64(res.Requests) / s
	}
	if res.Requests > 0 {
		res.HitRatio = float64(res.Hits+res.Shared) / float64(res.Requests)
	}
	return res, nil
}
