package service

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// Server is chaosd's core: a long-lived partitioning service wrapping
// the Session/Repartitioner machinery behind the wire protocol.
// Request lifecycle:
//
//	validate → fingerprint → cache hit? ──────────────► respond (hit)
//	                │ miss
//	                ▼
//	        identical request in flight? ─────────────► wait (shared)
//	                │ no — become the leader
//	                ▼
//	        admission: queue slot free? ── no ────────► ErrOverloaded
//	                │ yes (FIFO queue, bounded)
//	                ▼
//	        worker: warm ladder available? ── yes ───► Repartition (warm)
//	                │ no                                     │
//	                ▼                                        ▼
//	        cold partition (+ retain ladder) ────────► cache + respond
//
// Admission control is a bounded worker pool (Workers) over a bounded
// FIFO queue (QueueDepth): a request that finds the queue full is
// rejected immediately with the retryable ErrOverloaded instead of
// piling onto the daemon, and queued work starts in arrival order.
// Identical in-flight keys are batched (singleflight): a thundering
// herd of equal requests costs one compute, and every follower's
// response is marked ServedShared.
type Server struct {
	opt   Options
	cache *cache

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	flight    map[resultKey]*job
	listeners map[net.Listener]struct{}
	closed    bool

	work    chan *job
	workers sync.WaitGroup
	conns   sync.WaitGroup

	metrics serverMetrics

	// compute is the engine entry point; tests substitute it to make
	// admission and batching deterministic.
	compute func(ctx context.Context, gc *graphContent, sp partition.Spec, nparts, procs int, backend machine.Backend, warm *warmSource) (*computeResult, error)
}

// Options configures a Server. The zero value of every field selects
// the documented default.
type Options struct {
	// Workers is the compute pool width (default GOMAXPROCS): at most
	// this many partitioning runs execute concurrently.
	Workers int
	// QueueDepth bounds the admission queue (default 4×Workers):
	// requests beyond Workers running + QueueDepth queued are rejected
	// with ErrOverloaded.
	QueueDepth int
	// CacheBytes caps the content-addressed cache (default 256 MiB;
	// negative = unbounded).
	CacheBytes int64
	// MaxFrame caps wire frame payloads (default DefaultMaxFrame).
	MaxFrame int
	// MaxVertices / MaxEdges / MaxProcs bound a single request
	// (defaults 1<<22 vertices, 1<<24 edges, 64 procs).
	MaxVertices int
	MaxEdges    int
	MaxProcs    int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxVertices <= 0 {
		o.MaxVertices = 1 << 22
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 1 << 24
	}
	if o.MaxProcs <= 0 {
		o.MaxProcs = 64
	}
	return o
}

// serverMetrics are the monotonic service counters.
type serverMetrics struct {
	hits     atomic.Int64
	cold     atomic.Int64
	warm     atomic.Int64
	shared   atomic.Int64
	rejected atomic.Int64
}

// Metrics is a point-in-time server counter snapshot.
type Metrics struct {
	Hits     int64 // responses served from the finished-partition cache
	Cold     int64 // full cold partitioner runs
	Warm     int64 // ladder-reusing incremental repartitions
	Shared   int64 // responses batched onto an identical in-flight compute
	Rejected int64 // admission-control rejections (ErrOverloaded)
	Cache    CacheStats
}

// New creates a Server ready to Serve listeners or answer in-process
// Do calls.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:       opt,
		cache:     newCache(opt.CacheBytes),
		ctx:       ctx,
		cancel:    cancel,
		flight:    make(map[resultKey]*job),
		listeners: make(map[net.Listener]struct{}),
		work:      make(chan *job, opt.QueueDepth),
		compute:   computePartition,
	}
	for i := 0; i < opt.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Metrics snapshots the service counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Hits:     s.metrics.hits.Load(),
		Cold:     s.metrics.cold.Load(),
		Warm:     s.metrics.warm.Load(),
		Shared:   s.metrics.shared.Load(),
		Rejected: s.metrics.rejected.Load(),
		Cache:    s.cache.stats(),
	}
}

// job is one admitted compute: the leader request plus every follower
// batched onto it. waiters counts interested requests; when it drops
// to zero the job's context is cancelled, so a compute nobody is
// waiting for unwinds instead of burning workers.
type job struct {
	key     resultKey
	gc      *graphContent
	req     *Request
	ctx     context.Context
	cancel  context.CancelFunc
	waiters int // guarded by Server.mu

	done chan struct{} // closed once resp/err are set
	resp *Response     // leader-view response (Served = cold/warm)
	err  error
}

// Do answers one request in-process: the same path a wire request
// takes minus the codec. It is safe for concurrent use. The server
// retains the request's slices on a cache miss, so callers must not
// mutate them afterwards; cancelling ctx abandons the wait (and the
// compute itself, once no other request wants it) with an error
// wrapping ctx.Err().
func (s *Server) Do(ctx context.Context, req *Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gc, key, err := s.admitRequest(req)
	if err != nil {
		return nil, err
	}

	// Finished-partition fast path.
	if e, ok := s.cache.leaseResult(key); ok {
		resp := responseFrom(e, ServedHit)
		s.cache.releaseResult(e)
		s.metrics.hits.Add(1)
		return resp, nil
	}

	j, leader := s.joinFlight(key, gc, req)
	if j == nil {
		return nil, ErrOverloaded
	}
	select {
	case <-j.done:
		if j.err != nil {
			return nil, j.err
		}
		resp := *j.resp
		if !leader {
			resp.Served = ServedShared
			s.metrics.shared.Add(1)
		}
		return &resp, nil
	case <-ctx.Done():
		s.leaveFlight(j)
		return nil, fmt.Errorf("service: request abandoned: %w", ctx.Err())
	}
}

// admitRequest validates req and resolves its canonical cache key. No
// compute and no cache mutation happens here.
func (s *Server) admitRequest(req *Request) (*graphContent, resultKey, error) {
	var zero resultKey
	fail := func(format string, args ...any) (*graphContent, resultKey, error) {
		return nil, zero, fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
	}
	if req.NNode < 1 || req.NNode > s.opt.MaxVertices {
		return fail("NNode %d out of range [1, %d]", req.NNode, s.opt.MaxVertices)
	}
	if req.NParts < 1 {
		return fail("NParts %d, want >= 1", req.NParts)
	}
	procs := req.Procs
	if procs == 0 {
		procs = req.NParts
	}
	if procs < 1 || procs > s.opt.MaxProcs {
		return fail("Procs %d out of range [1, %d]", procs, s.opt.MaxProcs)
	}
	p, err := req.Spec.Resolve()
	if err != nil {
		return nil, zero, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	hasUpload := len(req.E1) > 0 || len(req.Coords) > 0 || len(req.VertexWeights) > 0
	hasDelta := req.Base != 0 || len(req.Delta) > 0
	var gc *graphContent
	switch {
	case hasUpload && hasDelta:
		return fail("request carries both a graph upload and a churn delta")
	case hasDelta:
		ge, ok := s.cache.leaseGraph(req.Base)
		if !ok {
			return nil, zero, fmt.Errorf("%w %s: re-send the graph as a full upload", ErrUnknownGraph, req.Base)
		}
		base := ge.gc
		s.cache.releaseGraph(ge) // content is immutable; the lease only pinned the lookup
		if base.n != req.NNode {
			return fail("delta base %s has %d vertices, request says %d", req.Base, base.n, req.NNode)
		}
		for _, d := range req.Delta {
			if d.Edge < 0 || d.Edge >= len(base.e1) {
				return fail("delta rewires edge %d of a %d-edge graph", d.Edge, len(base.e1))
			}
			if d.NewEnd < 0 || d.NewEnd >= base.n {
				return fail("delta endpoint %d out of range [0, %d)", d.NewEnd, base.n)
			}
		}
		gc = applyDelta(base, req.Delta)
	case hasUpload:
		if len(req.E1) != len(req.E2) {
			return fail("edge endpoint lists of unequal length %d, %d", len(req.E1), len(req.E2))
		}
		if len(req.E1) > s.opt.MaxEdges {
			return fail("%d edges exceed the per-request cap %d", len(req.E1), s.opt.MaxEdges)
		}
		for i := range req.E1 {
			if req.E1[i] < 0 || req.E1[i] >= req.NNode || req.E2[i] < 0 || req.E2[i] >= req.NNode {
				return fail("edge %d endpoints (%d,%d) out of range [0, %d)", i, req.E1[i], req.E2[i], req.NNode)
			}
		}
		for d, col := range req.Coords {
			if len(col) != req.NNode {
				return fail("coordinate column %d has %d entries, want %d", d, len(col), req.NNode)
			}
		}
		if req.VertexWeights != nil && len(req.VertexWeights) != req.NNode {
			return fail("vertex weights have %d entries, want %d", len(req.VertexWeights), req.NNode)
		}
		gc = &graphContent{n: req.NNode, e1: req.E1, e2: req.E2, coords: req.Coords, weights: req.VertexWeights}
	default:
		return fail("request carries neither a graph upload nor a churn delta")
	}

	caps := partition.Caps(p)
	if caps.NeedsLink && len(gc.e1) == 0 {
		return fail("%s requires LINK connectivity, but the request has no edges", req.Spec.Method)
	}
	if caps.NeedsGeometry && len(gc.coords) == 0 {
		return fail("%s requires GEOMETRY coordinates, but the request has none", req.Spec.Method)
	}

	key := resultKey{fp: gc.fingerprint(), spec: req.Spec.String(), nparts: req.NParts, procs: procs}
	return gc, key, nil
}

// joinFlight attaches the request to the in-flight job for key,
// creating (and enqueueing) the job when none exists. Returns the job
// and whether this request is its leader; a nil job means the
// admission queue rejected the request.
func (s *Server) joinFlight(key resultKey, gc *graphContent, req *Request) (*job, bool) {
	s.mu.Lock()
	if j, ok := s.flight[key]; ok {
		j.waiters++
		s.mu.Unlock()
		return j, false
	}
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	jctx, jcancel := context.WithCancel(s.ctx)
	j := &job{
		key:     key,
		gc:      gc,
		req:     req,
		ctx:     jctx,
		cancel:  jcancel,
		waiters: 1,
		done:    make(chan struct{}),
	}
	// Admission: claim a queue slot without blocking. The channel is
	// the FIFO — workers receive in enqueue order.
	select {
	case s.work <- j:
		s.flight[key] = j
		s.mu.Unlock()
		return j, true
	default:
		s.mu.Unlock()
		jcancel()
		s.metrics.rejected.Add(1)
		return nil, false
	}
}

// leaveFlight withdraws one waiter; the last one out cancels the
// compute.
func (s *Server) leaveFlight(j *job) {
	s.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0
	s.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// worker drains the admission queue.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.work:
			s.run(j)
		case <-s.ctx.Done():
			// Drain whatever is still queued so every waiter unwinds.
			for {
				select {
				case j := <-s.work:
					s.finish(j, nil, fmt.Errorf("service: server shutting down: %w", s.ctx.Err()))
				default:
					return
				}
			}
		}
	}
}

// run executes one admitted job end to end.
func (s *Server) run(j *job) {
	if err := j.ctx.Err(); err != nil {
		s.finish(j, nil, fmt.Errorf("service: request abandoned before compute: %w", err))
		return
	}

	// The graph becomes addressable-by-fingerprint from here on; the
	// lease pins it (and, below, the warm base) for the compute's
	// duration.
	ge := s.cache.putGraph(j.key.fp, j.gc)
	defer s.cache.releaseGraph(ge)

	// Warm path: a churn request whose base entry (same spec, nparts
	// and procs — the key with the base fingerprint swapped in)
	// retained usable ladders. The base entry stays leased and its
	// warmMu held for the whole compute: the ladders share per-rank
	// scratch arenas, so concurrent warm computes must serialize, and
	// eviction mid-compute must be impossible.
	var warm *warmSource
	var baseEntry *resultEntry
	if len(j.req.Delta) > 0 || j.req.Base != 0 {
		baseKey := j.key
		baseKey.fp = j.req.Base
		if be, ok := s.cache.leaseResult(baseKey); ok {
			if be.hasLadders(j.gc.n, j.key.nparts, j.key.procs) {
				baseEntry = be
				baseEntry.warmMu.Lock()
				warm = &warmSource{ladders: be.ladders, part: be.part}
			} else {
				s.cache.releaseResult(be)
			}
		}
	}
	res, err := s.compute(j.ctx, j.gc, j.req.Spec, j.key.nparts, j.key.procs, j.req.Backend, warm)
	if baseEntry != nil {
		baseEntry.warmMu.Unlock()
		s.cache.releaseResult(baseEntry)
	}
	if err != nil {
		s.finish(j, nil, err)
		return
	}

	e := &resultEntry{
		key:      j.key,
		part:     res.part,
		cut:      res.cut,
		virtualS: res.stats.MaxClock,
		wallMS:   float64(res.stats.Elapsed.Nanoseconds()) / 1e6,
		ladders:  res.ladders,
	}
	e = s.cache.putResult(e)
	served := ServedCold
	if res.wasWarm {
		served = ServedWarm
		s.metrics.warm.Add(1)
	} else {
		s.metrics.cold.Add(1)
	}
	resp := responseFrom(e, served)
	s.cache.releaseResult(e)
	s.finish(j, resp, nil)
}

// finish publishes the job's outcome: the cache (already updated)
// first, then flight-map removal, then the done broadcast — so a new
// identical request arriving at any point either hits the cache or
// joins a still-registered job, never recomputes.
func (s *Server) finish(j *job, resp *Response, err error) {
	s.mu.Lock()
	if s.flight[j.key] == j {
		delete(s.flight, j.key)
	}
	s.mu.Unlock()
	j.resp, j.err = resp, err
	close(j.done)
	j.cancel()
}

// responseFrom renders a leased cache entry as a Response. The part
// vector is copied: entries are shared across requests and may be
// evicted (and their buffers reused by nothing — but freed) after the
// lease drops.
func responseFrom(e *resultEntry, served Served) *Response {
	return &Response{
		Fingerprint: e.key.fp,
		Served:      served,
		Cut:         e.cut,
		VirtualS:    e.virtualS,
		WallMS:      e.wallMS,
		Part:        append([]int(nil), e.part...),
	}
}

// Serve accepts connections on l until the listener fails or the
// server closes. One goroutine per connection; requests on a
// connection are answered in order, and a connection that drops
// mid-request cancels its in-flight wait.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("service: server is closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return nil // orderly shutdown
			default:
				return err
			}
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn speaks the wire protocol on one connection. A dedicated
// reader goroutine feeds frames to the responder loop, so a peer that
// disconnects while a request is computing is noticed immediately and
// the request's context cancelled — the wire form of the stress
// gauntlet's mid-request cancellation.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	type inFrame struct {
		t       msgType
		payload []byte
	}
	frames := make(chan inFrame, 4)
	go func() {
		defer close(frames)
		br := bufio.NewReaderSize(conn, 1<<16)
		for {
			t, payload, err := readFrame(br, s.opt.MaxFrame)
			if err != nil {
				cancel() // disconnect or garbage: abandon any in-flight request
				return
			}
			select {
			case frames <- inFrame{t, payload}:
			case <-ctx.Done():
				return
			}
		}
	}()

	var out []byte
	for {
		var fr inFrame
		var ok bool
		select {
		case fr, ok = <-frames:
			if !ok {
				return
			}
		case <-ctx.Done():
			return
		}
		if fr.t != msgPartition {
			return // protocol violation; drop the connection
		}
		req, err := decodeRequest(fr.payload)
		var resp *Response
		if err == nil {
			resp, err = s.Do(ctx, req)
		}
		out = out[:0]
		if err != nil {
			out = appendFrame(out, msgError, encodeError(err))
		} else {
			out = appendFrame(out, msgOK, encodeResponse(resp))
		}
		if _, werr := conn.Write(out); werr != nil {
			return
		}
	}
}

// Close shuts the server down: listeners stop accepting, in-flight
// computes are cancelled (every waiter unwinds with a wrapped
// context error), workers and connection handlers drain, and the
// cache is dropped. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	s.mu.Unlock()

	s.cancel()
	for _, l := range ls {
		l.Close()
	}
	s.conns.Wait()
	s.workers.Wait()
	return nil
}
