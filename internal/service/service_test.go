package service

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// testSpec is sized so a few-hundred-vertex graph takes the
// distributed MULTILEVEL path (ladder retained) at procs >= 2:
// serialTo = max(8*CoarsenTo, ParallelThreshold) = 192 < testNNode.
func testSpec() partition.Spec {
	return partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 24, ParallelThreshold: 96, Seed: 42}
}

const (
	testNNode  = 400
	testDegree = 6
	testNParts = 4
	testProcs  = 2
)

func testRequest(variant int) *Request {
	e1, e2 := LoadGraph(variant, testNNode, testDegree)
	return &Request{
		NNode:  testNNode,
		NParts: testNParts,
		Procs:  testProcs,
		Spec:   testSpec(),
		E1:     e1,
		E2:     e2,
	}
}

func checkPartition(t *testing.T, resp *Response, req *Request) {
	t.Helper()
	if len(resp.Part) != req.NNode {
		t.Fatalf("part vector has %d entries, want %d", len(resp.Part), req.NNode)
	}
	for i, p := range resp.Part {
		if p < 0 || p >= req.NParts {
			t.Fatalf("part[%d] = %d out of range [0, %d)", i, p, req.NParts)
		}
	}
	// The response's cut must be the real cut of the returned vector
	// over the request's edges, not a stale cached figure.
	e1, e2 := req.E1, req.E2
	if got := cutOf(e1, e2, resp.Part); got != resp.Cut {
		t.Fatalf("response cut %d, recomputed %d", resp.Cut, got)
	}
}

// TestServedLifecycle walks one graph through the service economy:
// cold compute, then a cache hit (bit-identical), then a churn delta
// answered warm off the retained ladder, then a hit on the churned
// result.
func TestServedLifecycle(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	ctx := context.Background()

	req := testRequest(0)
	cold, err := s.Do(ctx, req)
	if err != nil {
		t.Fatalf("cold Do: %v", err)
	}
	if cold.Served != ServedCold {
		t.Fatalf("first compute served %v, want %v", cold.Served, ServedCold)
	}
	checkPartition(t, cold, req)

	hit, err := s.Do(ctx, testRequest(0))
	if err != nil {
		t.Fatalf("hit Do: %v", err)
	}
	if hit.Served != ServedHit {
		t.Fatalf("second compute served %v, want %v", hit.Served, ServedHit)
	}
	if !reflect.DeepEqual(hit.Part, cold.Part) || hit.Cut != cold.Cut || hit.Fingerprint != cold.Fingerprint {
		t.Fatalf("cache hit is not bit-identical to the cold compute")
	}

	// Churn: rewire a handful of chord edges by fingerprint + delta.
	delta := []EdgeRewire{{Edge: testNNode + 1, NewEnd: 7}, {Edge: testNNode + 3, NewEnd: 211}}
	warmReq := &Request{
		NNode:  testNNode,
		NParts: testNParts,
		Procs:  testProcs,
		Spec:   testSpec(),
		Base:   cold.Fingerprint,
		Delta:  delta,
	}
	warm, err := s.Do(ctx, warmReq)
	if err != nil {
		t.Fatalf("warm Do: %v", err)
	}
	if warm.Served != ServedWarm {
		t.Fatalf("delta compute served %v, want %v", warm.Served, ServedWarm)
	}
	if warm.Fingerprint == cold.Fingerprint {
		t.Fatalf("churned graph kept the base fingerprint %s", cold.Fingerprint)
	}
	// Verify against the materialized churned edges.
	e1, e2 := LoadGraph(0, testNNode, testDegree)
	for _, d := range delta {
		e2[d.Edge] = d.NewEnd
	}
	checkPartition(t, warm, &Request{NNode: testNNode, NParts: testNParts, E1: e1, E2: e2})

	again, err := s.Do(ctx, warmReq)
	if err != nil {
		t.Fatalf("churned hit Do: %v", err)
	}
	if again.Served != ServedHit || !reflect.DeepEqual(again.Part, warm.Part) {
		t.Fatalf("repeat delta request served %v, want bit-identical %v", again.Served, ServedHit)
	}

	m := s.Metrics()
	if m.Cold != 1 || m.Warm != 1 || m.Hits != 2 {
		t.Fatalf("metrics cold=%d warm=%d hits=%d, want 1/1/2", m.Cold, m.Warm, m.Hits)
	}
}

// TestDeltaUnknownBase pins the typed re-upload signal: a delta
// against a fingerprint the cache does not hold must come back
// ErrUnknownGraph, not a silent cold compute.
func TestDeltaUnknownBase(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	_, err := s.Do(context.Background(), &Request{
		NNode: testNNode, NParts: testNParts, Procs: testProcs, Spec: testSpec(),
		Base: 0xdeadbeef, Delta: []EdgeRewire{{Edge: 0, NewEnd: 1}},
	})
	if !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("delta against unknown base: err = %v, want ErrUnknownGraph", err)
	}
}

// TestBadRequests sweeps the validation surface: every malformed
// request is rejected with ErrBadRequest before any compute.
func TestBadRequests(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	base := testRequest(0)

	mut := func(f func(*Request)) *Request {
		r := *base
		f(&r)
		return &r
	}
	cases := map[string]*Request{
		"zero vertices":    mut(func(r *Request) { r.NNode = 0 }),
		"zero parts":       mut(func(r *Request) { r.NParts = 0 }),
		"negative procs":   mut(func(r *Request) { r.Procs = -1 }),
		"huge procs":       mut(func(r *Request) { r.Procs = 1 << 20 }),
		"unknown method":   mut(func(r *Request) { r.Spec = partition.Spec{Method: "VOODOO"} }),
		"ragged edges":     mut(func(r *Request) { r.E2 = r.E2[:len(r.E2)-1] }),
		"edge out of rng":  mut(func(r *Request) { e := append([]int(nil), r.E1...); e[0] = r.NNode; r.E1 = e }),
		"upload and delta": mut(func(r *Request) { r.Delta = []EdgeRewire{{Edge: 0, NewEnd: 1}} }),
		"empty request":    {NNode: 4, NParts: 2, Spec: testSpec()},
		"needs geometry":   mut(func(r *Request) { r.Spec = partition.Spec{Method: partition.MethodRCB} }),
		"bad weights len":  mut(func(r *Request) { r.VertexWeights = []float64{1, 2, 3} }),
	}
	for name, req := range cases {
		if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

// TestWireEndToEnd runs the daemon on a real TCP listener and drives
// it through the wire client: cold over the wire, hit over the wire,
// typed error over the wire.
func TestWireEndToEnd(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(l)

	cl, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	req := testRequest(1)
	cold, err := cl.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("wire cold Do: %v", err)
	}
	if cold.Served != ServedCold {
		t.Fatalf("wire cold served %v", cold.Served)
	}
	checkPartition(t, cold, req)

	hit, err := cl.Do(context.Background(), testRequest(1))
	if err != nil {
		t.Fatalf("wire hit Do: %v", err)
	}
	if hit.Served != ServedHit || !reflect.DeepEqual(hit.Part, cold.Part) {
		t.Fatalf("wire hit served %v, bit-identical=%v", hit.Served, reflect.DeepEqual(hit.Part, cold.Part))
	}

	// A typed error survives the round trip as an errors.Is match.
	if _, err := cl.Do(context.Background(), &Request{NNode: -1, NParts: 1, Spec: testSpec()}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("wire bad request: err = %v, want ErrBadRequest", err)
	}
}

// TestDoCancellation pins the unwinding contract for in-process
// callers: cancelling the request context mid-compute returns an
// error wrapping ctx.Err().
func TestDoCancellation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	s.compute = func(jctx context.Context, gc *graphContent, sp partition.Spec, nparts, procs int, backend machine.Backend, warm *warmSource) (*computeResult, error) {
		close(started)
		<-jctx.Done() // the abandoned job's context is cancelled with it
		return nil, jctx.Err()
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, testRequest(2))
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do: err = %v, want wrapped context.Canceled", err)
	}
}

// TestLoadGen runs the benchmark harness at small scale and checks
// its accounting: every request answered, the working set computed
// cold exactly once, everything else reused.
func TestLoadGen(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(l)

	cfg := LoadGenConfig{
		Dial:    func() (*Client, error) { return Dial("tcp", l.Addr().String()) },
		Clients: 4, Requests: 6, Graphs: 2,
		NNode: testNNode, Degree: testDegree,
		NParts: testNParts, Procs: testProcs,
		Spec: testSpec(),
	}
	res, err := cfg.RunLoadGen(context.Background())
	if err != nil {
		t.Fatalf("RunLoadGen: %v", err)
	}
	if res.Requests != 24 {
		t.Fatalf("completed %d requests, want 24", res.Requests)
	}
	if res.Cold != 2 {
		t.Fatalf("%d cold computes for a 2-graph working set, want 2 (hits=%d shared=%d)", res.Cold, res.Hits, res.Shared)
	}
	if got := res.Hits + res.Shared + res.Cold + res.Warm; got != res.Requests {
		t.Fatalf("served classes sum to %d, want %d", got, res.Requests)
	}
	if res.HitRatio <= 0.5 {
		t.Fatalf("hit ratio %.2f, want > 0.5 under a repeating working set", res.HitRatio)
	}
	if res.PartsPerSec <= 0 {
		t.Fatalf("PartsPerSec = %v, want > 0", res.PartsPerSec)
	}
}
