package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestStress32Clients is the service-grade concurrency gauntlet: 32
// concurrent wire clients fire a mix of cold computes, warm churn
// requests, repeat hits and mid-request cancellations at one
// in-process chaosd. The pinned contracts, checked under -race via
// the CI matrix:
//
//   - no deadlock: every request resolves within the test deadline;
//   - uniform unwinding: every cancelled request's error wraps
//     ctx.Err() (errors.Is(err, context.Canceled));
//   - consistency: all successful answers for one key are
//     bit-identical;
//   - no goroutine leak once the server closes.
func TestStress32Clients(t *testing.T) {
	const (
		clients  = 32
		rounds   = 5
		variants = 3
	)
	base := runtime.NumGoroutine()

	s := New(Options{QueueDepth: 4 * clients * variants}) // ample: overload is admission_test's subject
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go s.Serve(l)

	// Seed every variant cold so warm/delta rounds have a base, and
	// collect the reference answers.
	seed := make([]*Response, variants)
	cl0, err := Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	for v := 0; v < variants; v++ {
		seed[v], err = cl0.Do(context.Background(), testRequest(v))
		if err != nil {
			t.Fatalf("seed variant %d: %v", v, err)
		}
	}
	cl0.Close()

	deltaReq := func(v int) *Request {
		return &Request{
			NNode: testNNode, NParts: testNParts, Procs: testProcs, Spec: testSpec(),
			Base:  seed[v].Fingerprint,
			Delta: []EdgeRewire{{Edge: testNNode + v, NewEnd: (v*37 + 11) % testNNode}},
		}
	}

	var (
		mu       sync.Mutex
		byKey    = map[string][]int{} // request kind → reference part vector
		nCancels int
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v := (c + r) % variants
				mode := (c + 3*r) % 4
				switch mode {
				case 3:
					// Cancelled mid-request: its own connection, cancelled
					// while the request is (at most) in flight.
					cl, err := Dial("tcp", l.Addr().String())
					if err != nil {
						errs <- fmt.Errorf("client %d dial: %w", c, err)
						return
					}
					ctx, cancel := context.WithCancel(context.Background())
					done := make(chan struct{})
					go func() { time.Sleep(time.Duration(c%5) * time.Millisecond); cancel(); close(done) }()
					_, err = cl.Do(ctx, testRequest(v))
					<-done
					cl.Close()
					// The race is real: the response may have won. But a
					// loss must be a ctx.Err()-wrapped unwinding, not a
					// bare transport error.
					if err != nil && !errors.Is(err, context.Canceled) {
						errs <- fmt.Errorf("client %d cancelled request: err = %w, want wrapped context.Canceled", c, err)
						return
					}
					if err != nil {
						mu.Lock()
						nCancels++
						mu.Unlock()
					}
				default:
					// Durable connection per request keeps the mix honest:
					// hits, shared waits and warm computes interleave.
					cl, err := Dial("tcp", l.Addr().String())
					if err != nil {
						errs <- fmt.Errorf("client %d dial: %w", c, err)
						return
					}
					var req *Request
					kind := fmt.Sprintf("cold/%d", v)
					if mode == 2 {
						req = deltaReq(v)
						kind = fmt.Sprintf("delta/%d", v)
					} else {
						req = testRequest(v)
					}
					resp, err := cl.Do(context.Background(), req)
					cl.Close()
					if err != nil {
						errs <- fmt.Errorf("client %d %s: %w", c, kind, err)
						return
					}
					mu.Lock()
					if ref, ok := byKey[kind]; ok {
						if !reflect.DeepEqual(ref, resp.Part) {
							mu.Unlock()
							errs <- fmt.Errorf("client %d %s: answer differs from reference", c, kind)
							return
						}
					} else {
						byKey[kind] = resp.Part
					}
					mu.Unlock()
				}
			}
		}(c)
	}

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(2 * time.Minute):
		t.Fatalf("deadlock: stress clients did not finish")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics()
	if m.Cold < int64(variants) || m.Hits == 0 {
		t.Errorf("metrics show no cache economy: %+v", m)
	}
	t.Logf("metrics: cold=%d warm=%d hits=%d shared=%d rejected=%d cancels=%d",
		m.Cold, m.Warm, m.Hits, m.Shared, m.Rejected, nCancels)

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Goroutine settle: workers, connection handlers, readers and any
	// abandoned computes must all retire.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d at start", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseUnblocksWaiters pins shutdown unwinding: requests running
// or queued when the server closes come back with a wrapped context
// error, not a hang — the in-flight compute's context is cancelled
// and the queued jobs are drained with a shutdown error.
func TestCloseUnblocksWaiters(t *testing.T) {
	sc := newStubCompute()
	s := New(Options{Workers: 1, QueueDepth: 2})
	s.compute = sc.fn

	errc := make(chan error, 3)
	for v := 0; v < 3; v++ {
		go func(v int) {
			_, err := s.Do(context.Background(), tinyRequest(v))
			errc <- err
		}(v)
	}
	// Wait until the first compute is running (the other two are
	// queued or about to be).
	deadline := time.After(5 * time.Second)
	for len(sc.started()) == 0 {
		select {
		case <-deadline:
			t.Fatalf("no compute started")
		case <-time.After(time.Millisecond):
		}
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("waiter %d: err = %v, want wrapped context.Canceled", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d did not unblock on Close", i)
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}
