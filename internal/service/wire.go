package service

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

// This file is the chaosd wire protocol: length-prefixed binary frames
// over a byte stream. Every frame is
//
//	magic[2] version[1] type[1] length[4, big-endian] payload[length]
//
// and the payload is a flat varint/fixed64 encoding of one message.
// The codec is defensive by construction: a frame is rejected before
// its payload is read when the header is malformed or the declared
// length exceeds the frame cap, and every count inside a payload is
// bounds-checked against the bytes that remain before anything is
// allocated, so truncated, oversized or garbage frames produce
// descriptive errors — never a panic and never an allocation larger
// than the frame itself (FuzzWireFrame pins this).

const (
	magic0      = 0xC4
	magic1      = 0x05
	wireVersion = 1

	// headerLen is the fixed frame header size.
	headerLen = 8

	// DefaultMaxFrame caps a frame's payload length (64 MiB). Both
	// sides reject longer frames before allocating.
	DefaultMaxFrame = 64 << 20

	// maxMethodLen bounds the partitioner method name on the wire.
	maxMethodLen = 128
	// maxErrorLen bounds an error detail string on the wire.
	maxErrorLen = 4096
)

// msgType discriminates frame payloads.
type msgType byte

const (
	msgPartition msgType = 1 // client → server: partition request
	msgOK        msgType = 2 // server → client: partition response
	msgError     msgType = 3 // server → client: typed error
)

// Request flag bits.
const (
	flagEdges   = 1 << 0 // full edge-list upload
	flagGeom    = 1 << 1 // coordinate columns present
	flagLoad    = 1 << 2 // vertex weights present
	flagDelta   = 1 << 3 // churn delta against a base fingerprint
	flagBackend = 1 << 4 // run on the Real backend (default Simulated)
)

// Fingerprint is the content address of a graph: a stable 64-bit hash
// over the canonical graph payload (vertex count, edge lists,
// coordinates, weights). Identical graphs fingerprint identically
// across clients and processes, which is what lets one client's cold
// run serve another client's warm request.
type Fingerprint uint64

func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// EdgeRewire is one element of a churn delta: edge Edge's second
// endpoint is re-pointed at vertex NewEnd, the mesh-adaptation move of
// the adaptive-mesh study (experiments.AdaptiveStudy).
type EdgeRewire struct {
	Edge   int
	NewEnd int
}

// Request is one partitioning request. The graph arrives either as a
// full content upload (E1/E2 and optional Coords/VertexWeights) or as
// a churn delta against a base fingerprint the server has already
// seen; the latter is what unlocks the warm, ladder-reusing path.
type Request struct {
	// NNode is the global vertex count of the graph.
	NNode int
	// NParts is the number of parts to produce.
	NParts int
	// Procs is the SPMD machine width the partitioner runs at
	// (0 = NParts). It is part of the cache key: the distributed
	// multilevel path's answer depends on it.
	Procs int
	// Backend selects the execution backend (Simulated default).
	Backend machine.Backend
	// Spec selects and tunes the partitioner.
	Spec partition.Spec

	// E1/E2 are the edge endpoint lists of a full upload.
	E1, E2 []int
	// Coords are optional coordinate columns (len NNode each).
	Coords [][]float64
	// VertexWeights are optional LOAD weights (len NNode).
	VertexWeights []float64

	// Base and Delta describe a churn request: the graph is the one
	// fingerprinted Base with Delta applied. Mutually exclusive with a
	// full upload.
	Base  Fingerprint
	Delta []EdgeRewire
}

// Served reports how a response was produced.
type Served byte

const (
	// ServedHit: the finished partition was already cached.
	ServedHit Served = iota
	// ServedCold: a full cold partitioner run.
	ServedCold
	// ServedWarm: an incremental repartition off a retained ladder.
	ServedWarm
	// ServedShared: batched onto an identical in-flight request
	// (singleflight) — the herd computed once.
	ServedShared
)

func (s Served) String() string {
	switch s {
	case ServedHit:
		return "hit"
	case ServedCold:
		return "cold"
	case ServedWarm:
		return "warm"
	case ServedShared:
		return "shared"
	default:
		return fmt.Sprintf("Served(%d)", byte(s))
	}
}

// Response is the answer to one Request.
type Response struct {
	// Fingerprint is the content address of the graph that was
	// partitioned (after delta application), usable as Request.Base.
	Fingerprint Fingerprint
	// Served reports how the request was satisfied.
	Served Served
	// Cut is the global edge cut of the partition.
	Cut int
	// VirtualS is the virtual partitioning time of the run that
	// produced the cached answer (simulated seconds; 0 on cache hits'
	// re-serves it is the original run's figure).
	VirtualS float64
	// WallMS is the host wall time of the producing run in
	// milliseconds.
	WallMS float64
	// Part is the full partition vector: Part[v] is the part of global
	// vertex v.
	Part []int
}

// Typed errors of the service. The wire carries their code, so a
// client-side errors.Is works across the connection.
var (
	// ErrOverloaded is the admission-control rejection: the worker
	// pool and its bounded queue are full. Retryable — back off and
	// resend.
	ErrOverloaded = errors.New("service: server overloaded, queue full (retryable)")
	// ErrUnknownGraph rejects a delta request whose base fingerprint
	// the server no longer holds; re-send as a full upload.
	ErrUnknownGraph = errors.New("service: unknown base graph fingerprint")
	// ErrBadRequest rejects a structurally or semantically invalid
	// request.
	ErrBadRequest = errors.New("service: bad request")
)

// errCode is the wire form of a typed error.
type errCode byte

const (
	codeOverloaded errCode = 1
	codeBadRequest errCode = 2
	codeUnknown    errCode = 3
	codeCancelled  errCode = 4
	codeInternal   errCode = 5
)

// --- frame layer ---

// appendFrame appends one framed message to dst.
func appendFrame(dst []byte, t msgType, payload []byte) []byte {
	dst = append(dst, magic0, magic1, wireVersion, byte(t))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// readFrame reads one frame from br, enforcing the header invariants
// and the payload cap before any payload allocation.
func readFrame(br *bufio.Reader, maxFrame int) (msgType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, nil, fmt.Errorf("service: bad frame magic %02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != wireVersion {
		return 0, nil, fmt.Errorf("service: unsupported protocol version %d (have %d)", hdr[2], wireVersion)
	}
	t := msgType(hdr[3])
	if t != msgPartition && t != msgOK && t != msgError {
		return 0, nil, fmt.Errorf("service: unknown frame type %d", hdr[3])
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("service: frame payload %d bytes exceeds cap %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("service: truncated frame (%d-byte payload): %w", n, err)
	}
	return t, payload, nil
}

// --- payload codec ---

// wbuf is the append-only payload writer.
type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64)   { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) i64(v int64)    { w.b = binary.AppendVarint(w.b, v) }
func (w *wbuf) f64(v float64)  { w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(v)) }
func (w *wbuf) byteVal(v byte) { w.b = append(w.b, v) }
func (w *wbuf) str(s string) {
	w.u64(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) ints(xs []int) {
	w.u64(uint64(len(xs)))
	for _, x := range xs {
		w.i64(int64(x))
	}
}
func (w *wbuf) floats(xs []float64) {
	w.u64(uint64(len(xs)))
	for _, x := range xs {
		w.f64(x)
	}
}

// rbuf is the bounds-checked payload reader: the first failure latches
// into err and every later read returns a zero value, so decoders read
// straight through and check once.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("service: malformed payload: "+format, args...)
	}
}

func (r *rbuf) rem() int { return len(r.b) - r.off }

func (r *rbuf) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *rbuf) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *rbuf) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.rem() < 8 {
		r.fail("truncated float64 at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *rbuf) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.rem() < 1 {
		r.fail("truncated byte at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) str(max int) string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > uint64(max) || n > uint64(r.rem()) {
		r.fail("string length %d exceeds limit %d or remaining %d bytes", n, max, r.rem())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count reads an element count and rejects it when the remaining
// payload could not possibly hold that many elements of at least
// minBytes each — the over-allocation guard.
func (r *rbuf) count(minBytes int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.rem()/minBytes) {
		r.fail("element count %d exceeds remaining %d bytes", n, r.rem())
		return 0
	}
	return int(n)
}

func (r *rbuf) ints() []int {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(r.i64())
	}
	if r.err != nil {
		return nil
	}
	return xs
}

func (r *rbuf) floats() []float64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.rem()/8) {
		r.fail("float count %d exceeds remaining %d bytes", n, r.rem())
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.f64()
	}
	if r.err != nil {
		return nil
	}
	return xs
}

// done reports the latched error, or a trailing-garbage error when the
// payload was not fully consumed.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("service: malformed payload: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// --- message encodings ---

// encodeRequest renders req as a msgPartition payload.
func encodeRequest(req *Request) []byte {
	var w wbuf
	var flags byte
	if len(req.E1) > 0 || len(req.E2) > 0 {
		flags |= flagEdges
	}
	if len(req.Coords) > 0 {
		flags |= flagGeom
	}
	if len(req.VertexWeights) > 0 {
		flags |= flagLoad
	}
	if len(req.Delta) > 0 || req.Base != 0 {
		flags |= flagDelta
	}
	if req.Backend == machine.Real {
		flags |= flagBackend
	}
	w.byteVal(flags)
	w.u64(uint64(req.NNode))
	w.u64(uint64(req.NParts))
	w.u64(uint64(req.Procs))
	sp := req.Spec
	w.str(string(sp.Method))
	w.i64(int64(sp.CoarsenTo))
	w.i64(int64(sp.ParallelThreshold))
	w.i64(int64(sp.FMPasses))
	if sp.VCycle {
		w.byteVal(1)
	} else {
		w.byteVal(0)
	}
	w.u64(sp.Seed)
	w.f64(sp.Imbalance)
	w.str(string(sp.Objective))
	w.i64(int64(sp.StreamBuffer))
	w.i64(int64(sp.Restreams))
	w.f64(sp.BalanceSlack)
	if flags&flagEdges != 0 {
		w.ints(req.E1)
		w.ints(req.E2)
	}
	if flags&flagDelta != 0 {
		w.u64(uint64(req.Base))
		w.u64(uint64(len(req.Delta)))
		for _, d := range req.Delta {
			w.u64(uint64(d.Edge))
			w.u64(uint64(d.NewEnd))
		}
	}
	if flags&flagGeom != 0 {
		w.u64(uint64(len(req.Coords)))
		for _, col := range req.Coords {
			w.floats(col)
		}
	}
	if flags&flagLoad != 0 {
		w.floats(req.VertexWeights)
	}
	return w.b
}

// decodeRequest parses a msgPartition payload. Structural validation
// only — semantic checks (endpoint ranges, capability match) are the
// server's job.
func decodeRequest(p []byte) (*Request, error) {
	r := &rbuf{b: p}
	flags := r.byteVal()
	req := &Request{
		NNode:  int(r.u64()),
		NParts: int(r.u64()),
		Procs:  int(r.u64()),
	}
	if flags&flagBackend != 0 {
		req.Backend = machine.Real
	}
	req.Spec = partition.Spec{
		Method:            partition.Method(r.str(maxMethodLen)),
		CoarsenTo:         int(r.i64()),
		ParallelThreshold: int(r.i64()),
		FMPasses:          int(r.i64()),
		VCycle:            r.byteVal() != 0,
		Seed:              r.u64(),
		Imbalance:         r.f64(),
		Objective:         partition.StreamObjective(r.str(maxMethodLen)),
		StreamBuffer:      int(r.i64()),
		Restreams:         int(r.i64()),
		BalanceSlack:      r.f64(),
	}
	if flags&flagEdges != 0 {
		req.E1 = r.ints()
		req.E2 = r.ints()
		if r.err == nil && len(req.E1) != len(req.E2) {
			r.fail("edge endpoint lists of unequal length %d, %d", len(req.E1), len(req.E2))
		}
	}
	if flags&flagDelta != 0 {
		req.Base = Fingerprint(r.u64())
		n := r.count(2)
		if r.err == nil && n > 0 {
			req.Delta = make([]EdgeRewire, n)
			for i := range req.Delta {
				req.Delta[i] = EdgeRewire{Edge: int(r.u64()), NewEnd: int(r.u64())}
			}
		}
	}
	if flags&flagGeom != 0 {
		dim := r.count(1)
		if r.err == nil && dim > 8 {
			r.fail("geometry dimension %d exceeds 8", dim)
		}
		if r.err == nil && dim > 0 {
			req.Coords = make([][]float64, dim)
			for d := range req.Coords {
				req.Coords[d] = r.floats()
			}
		}
	}
	if flags&flagLoad != 0 {
		req.VertexWeights = r.floats()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// encodeResponse renders resp as a msgOK payload.
func encodeResponse(resp *Response) []byte {
	var w wbuf
	w.u64(uint64(resp.Fingerprint))
	w.byteVal(byte(resp.Served))
	w.u64(uint64(resp.Cut))
	w.f64(resp.VirtualS)
	w.f64(resp.WallMS)
	w.ints(resp.Part)
	return w.b
}

// decodeResponse parses a msgOK payload.
func decodeResponse(p []byte) (*Response, error) {
	r := &rbuf{b: p}
	resp := &Response{
		Fingerprint: Fingerprint(r.u64()),
		Served:      Served(r.byteVal()),
		Cut:         int(r.u64()),
		VirtualS:    r.f64(),
		WallMS:      r.f64(),
		Part:        r.ints(),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}

// encodeError renders err as a msgError payload, mapping the typed
// sentinels to their wire codes.
func encodeError(err error) []byte {
	code := codeInternal
	switch {
	case errors.Is(err, ErrOverloaded):
		code = codeOverloaded
	case errors.Is(err, ErrUnknownGraph):
		code = codeUnknown
	case errors.Is(err, ErrBadRequest):
		code = codeBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = codeCancelled
	}
	var w wbuf
	w.byteVal(byte(code))
	msg := err.Error()
	if len(msg) > maxErrorLen {
		msg = msg[:maxErrorLen]
	}
	w.str(msg)
	return w.b
}

// decodeError parses a msgError payload back into a typed error, so
// errors.Is(err, ErrOverloaded) works on the client side.
func decodeError(p []byte) error {
	r := &rbuf{b: p}
	code := errCode(r.byteVal())
	detail := r.str(maxErrorLen)
	if err := r.done(); err != nil {
		return err
	}
	switch code {
	case codeOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, detail)
	case codeBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, detail)
	case codeUnknown:
		return fmt.Errorf("%w: %s", ErrUnknownGraph, detail)
	case codeCancelled:
		return fmt.Errorf("service: request cancelled on server: %s: %w", detail, context.Canceled)
	default:
		return fmt.Errorf("service: server error: %s", detail)
	}
}
