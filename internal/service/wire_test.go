package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"chaos/internal/machine"
	"chaos/internal/partition"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := map[string]*Request{
		"upload full": {
			NNode: 10, NParts: 3, Procs: 2, Backend: machine.Real,
			Spec: partition.Spec{Method: partition.MethodMultilevel, CoarsenTo: 50,
				ParallelThreshold: 256, FMPasses: 3, VCycle: true, Seed: 99, Imbalance: 0.07},
			E1:            []int{0, 1, 2, 8},
			E2:            []int{1, 2, 3, 9},
			Coords:        [][]float64{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {9, 8, 7, 6, 5, 4, 3, 2, 1, 0}},
			VertexWeights: []float64{1, 1, 1, 2, 2, 2, 3, 3, 3, 4},
		},
		"delta": {
			NNode: 10, NParts: 2, Procs: 2,
			Spec:  partition.Spec{Method: partition.MethodMultilevel},
			Base:  Fingerprint(0xfeedface),
			Delta: []EdgeRewire{{Edge: 3, NewEnd: 7}, {Edge: 0, NewEnd: 9}},
		},
		"geometry only": {
			NNode: 4, NParts: 2,
			Spec:   partition.Spec{Method: partition.MethodRCB},
			Coords: [][]float64{{0, 1, 2, 3}},
		},
		"negative tuning": {
			NNode: 4, NParts: 2,
			Spec: partition.Spec{Method: partition.MethodMultilevel, FMPasses: -1, ParallelThreshold: -1},
			E1:   []int{0}, E2: []int{1},
		},
		"stream knobs": {
			NNode: 6, NParts: 2,
			Spec: partition.Spec{Method: partition.MethodStream, Objective: partition.ObjectiveFennel,
				StreamBuffer: 1024, Restreams: 3, BalanceSlack: 0.1, Seed: 7},
			E1: []int{0, 1}, E2: []int{1, 2},
		},
	}
	for name, req := range cases {
		got, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		Fingerprint: Fingerprint(0xabc123),
		Served:      ServedWarm,
		Cut:         17,
		VirtualS:    0.125,
		WallMS:      3.5,
		Part:        []int{0, 1, 1, 0, 2},
	}
	got, err := decodeResponse(encodeResponse(resp))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, resp)
	}
}

// TestErrorRoundTrip pins the typed-error contract: errors.Is works
// across the wire for every sentinel.
func TestErrorRoundTrip(t *testing.T) {
	cases := []struct {
		in     error
		target error
	}{
		{fmt.Errorf("%w: queue full", ErrOverloaded), ErrOverloaded},
		{fmt.Errorf("%w deadbeef", ErrUnknownGraph), ErrUnknownGraph},
		{fmt.Errorf("%w: NNode 0", ErrBadRequest), ErrBadRequest},
		{fmt.Errorf("abandoned: %w", context.Canceled), context.Canceled},
		{fmt.Errorf("slow: %w", context.DeadlineExceeded), context.Canceled},
	}
	for _, tc := range cases {
		out := decodeError(encodeError(tc.in))
		if !errors.Is(out, tc.target) {
			t.Errorf("decode(encode(%v)) = %v, not errors.Is %v", tc.in, out, tc.target)
		}
		if !strings.Contains(out.Error(), "service:") {
			t.Errorf("error %q lost its service prefix", out)
		}
	}
	// Unknown internal errors surface with their detail, untyped.
	out := decodeError(encodeError(errors.New("disk on fire")))
	if !strings.Contains(out.Error(), "disk on fire") {
		t.Errorf("internal error detail lost: %q", out)
	}
}

func frame(t msgType, payload []byte) []byte {
	return appendFrame(nil, t, payload)
}

// TestReadFrameRejects sweeps the frame-layer error surface:
// truncated, oversized, and garbage frames all error without panic.
func TestReadFrameRejects(t *testing.T) {
	good := frame(msgOK, []byte{1, 2, 3})
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:5],
		"bad magic":        append([]byte{0xff, 0x05}, good[2:]...),
		"bad version":      {magic0, magic1, 99, byte(msgOK), 0, 0, 0, 0},
		"bad type":         {magic0, magic1, wireVersion, 77, 0, 0, 0, 0},
		"truncated body":   good[:len(good)-2],
		"oversized length": binary.BigEndian.AppendUint32([]byte{magic0, magic1, wireVersion, byte(msgOK)}, 1<<30),
	}
	for name, raw := range cases {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw)), 1<<20)
		if err == nil {
			t.Errorf("%s: readFrame accepted a malformed frame", name)
		}
	}

	// And the good frame parses.
	ty, payload, err := readFrame(bufio.NewReader(bytes.NewReader(good)), 1<<20)
	if err != nil || ty != msgOK || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("good frame: type=%v payload=%v err=%v", ty, payload, err)
	}
}

// TestDecodeRejectsTrailingGarbage pins the full-consumption rule.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	p := encodeResponse(&Response{Part: []int{0, 1}})
	if _, err := decodeResponse(append(p, 0xee)); err == nil {
		t.Fatalf("decodeResponse accepted trailing garbage")
	}
	q := encodeRequest(&Request{NNode: 2, NParts: 2, Spec: partition.Spec{Method: "KL"}, E1: []int{0}, E2: []int{1}})
	if _, err := decodeRequest(append(q, 0x01)); err == nil {
		t.Fatalf("decodeRequest accepted trailing garbage")
	}
}

// TestDecodeOverAllocationGuard pins the count guard: a payload
// declaring a huge element count over a tiny body must fail before
// allocating, not allocate the declared size.
func TestDecodeOverAllocationGuard(t *testing.T) {
	// Hand-build a response payload whose part-count claims 2^40
	// entries with no bytes behind it.
	var w wbuf
	w.u64(1)        // fingerprint
	w.byteVal(0)    // served
	w.u64(0)        // cut
	w.f64(0)        // virtualS
	w.f64(0)        // wallMS
	w.u64(1 << 40)  // part count — absurd
	w.byteVal(0x7f) // one byte of "data"
	// The guard must fail the count against the remaining bytes before
	// make([]int, n) — a 2^40-element allocation would be 8 TiB and
	// kill the process, so surviving with an error IS the assertion.
	if _, err := decodeResponse(w.b); err == nil {
		t.Fatalf("decodeResponse accepted a 2^40 element count")
	}

	// Same shape on the request side: a delta count with no body.
	var q wbuf
	q.byteVal(flagDelta)
	q.u64(4) // nnode
	q.u64(2) // nparts
	q.u64(0) // procs
	q.str("KL")
	q.i64(0)
	q.i64(0)
	q.i64(0)
	q.byteVal(0)
	q.u64(0)
	q.f64(0)
	q.u64(1)       // base fingerprint
	q.u64(1 << 50) // delta count — absurd
	if _, err := decodeRequest(q.b); err == nil {
		t.Fatalf("decodeRequest accepted a 2^50 delta count")
	}
}
