package stream

import (
	"bytes"
	"io"
	"testing"

	"chaos/internal/mesh"
)

// BenchmarkHotStreamPass measures one steady-state restreaming pass
// (remove + re-place every vertex) over a resident 9261-vertex mesh.
// Gated at 0 allocs/op by bench-gate: the per-edge placement loop must
// not allocate once the slab and placer scratch are warm.
func BenchmarkHotStreamPass(b *testing.B) {
	xadj, adj := meshCSR(21, 13)
	ms := NewMemStream(xadj, adj, DefaultSlabVerts)
	pl := NewPlacer(ms.NumVertices(), ms.NumEdges(), 16, float64(ms.NumVertices()), Options{Seed: 3})
	part := make([]int, ms.NumVertices())
	for i := range part {
		part[i] = -1
	}
	var slab Slab
	if err := runPass(ms, &slab, pl, part, nil, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runPass(ms, &slab, pl, part, nil, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotStreamDecode measures a full decode pass over an
// in-memory edge-stream file of the same mesh. Gated at 0 allocs/op:
// after the first pass warms the slab, replaying the file must reuse
// its buffers entirely.
func BenchmarkHotStreamDecode(b *testing.B) {
	ls := mesh.NewLatticeSource(21, 21, 21, 13)
	var buf bytes.Buffer
	if _, err := Copy(&buf, FromSource(ls, DefaultSlabVerts)); err != nil {
		b.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	var slab Slab
	drain := func() {
		if err := rd.Reset(); err != nil {
			b.Fatal(err)
		}
		for {
			if err := rd.Next(&slab); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				return
			}
		}
	}
	drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain()
	}
}
