package stream

import (
	"fmt"
	"io"
	"sort"
)

// The buffered bootstrap. A blind greedy pass — even restreamed — is a
// label-propagation process: it converges to a locally smooth
// assignment whose cut stalls well above what an in-memory multilevel
// partitioner reaches, because no sequence of single-vertex moves can
// rearrange whole regions. The bootstrap closes that gap while keeping
// the out-of-core contract:
//
//  pass 1  streaming clustering — each arriving vertex joins the
//          best-connected cluster of its already-seen neighbors,
//          capped at a handful of vertices per cluster;
//  pass 2  coarse model build — cross-cluster edges accumulate into a
//          weighted coarse graph whose size is vertex-proportional
//          (clusters x coarse degree), never edge-proportional;
//  solve   an in-memory mini-multilevel on the coarse model: greedy
//          heavy-edge matching down to a few dozen vertices, weighted
//          greedy initial placement, and capacity-constrained
//          positive-gain refinement sweeps on the way back up;
//  project part[v] = coarsePart[cluster[v]], after which the driver's
//          restream passes polish the cluster boundaries.
//
// Resident state: the O(n) cluster vector (allowed — the part vector
// is already O(n)) plus the coarse graphs, totalW/clusterCap >= n/16
// times smaller than the input. Everything is deterministic in
// (stream, nparts, Options).

// bootstrapMin is the vertex count below which Partition skips the
// bootstrap: tiny graphs gain nothing over restreamed greedy and the
// coarse model would be a constant-factor copy of the input.
const bootstrapMin = 64

// clusterVerts is the target cluster granularity in average vertex
// weights — the fine-to-coarse contraction factor of pass 1.
const clusterVerts = 16

// clusterer is the pass-1 state: the grow-only cluster table and the
// per-vertex scoring scratch.
type clusterer struct {
	cluster []int     // vertex -> cluster (-1 until seen)
	w       []float64 // cluster weights, grow-only
	maxW    float64   // cluster capacity
	conn    map[int]float64
	cand    []int // first-touch order of conn keys, for determinism
}

func newClusterer(n int, maxW float64) *clusterer {
	cl := &clusterer{
		cluster: make([]int, n),
		maxW:    maxW,
		conn:    make(map[int]float64),
	}
	for i := range cl.cluster {
		cl.cluster[i] = -1
	}
	return cl
}

// assign picks a cluster for vertex v given its neighbor ids: the one
// holding most already-clustered neighbors that still has room, ties
// broken toward the lighter then the lower-numbered cluster; a fresh
// cluster when none qualifies. Applies and returns the choice.
func (cl *clusterer) assign(v int, adj []int, wv float64) int {
	cand := cl.cand[:0]
	for _, u := range adj {
		c := cl.cluster[u]
		if c < 0 {
			continue
		}
		if cl.conn[c] == 0 {
			cand = append(cand, c)
		}
		cl.conn[c]++
	}
	best, bestConn := -1, 0.0
	for _, c := range cand {
		if cl.w[c]+wv > cl.maxW {
			continue
		}
		conn := cl.conn[c]
		if conn > bestConn ||
			(conn == bestConn && best >= 0 && (cl.w[c] < cl.w[best] ||
				(cl.w[c] == cl.w[best] && c < best))) {
			best, bestConn = c, conn
		}
	}
	for _, c := range cand {
		delete(cl.conn, c)
	}
	cl.cand = cand
	if best < 0 {
		best = len(cl.w)
		cl.w = append(cl.w, 0)
	}
	cl.cluster[v] = best
	cl.w[best] += wv
	return best
}

// coarse is a resident weighted CSR — the bootstrap's in-memory model.
type coarse struct {
	xadj []int
	adj  []int
	ew   []float64 // edge multiplicities
	vw   []float64 // vertex weights
}

func (g *coarse) n() int { return len(g.vw) }

// buildCoarse folds a key->weight accumulation of directed
// cross-cluster edges (key = cv*nc + cu) into a sorted CSR.
func buildCoarse(nc int, vw []float64, acc map[int64]float64) *coarse {
	keys := make([]int64, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	g := &coarse{
		xadj: make([]int, nc+1),
		adj:  make([]int, len(keys)),
		ew:   make([]float64, len(keys)),
		vw:   vw,
	}
	for _, k := range keys {
		g.xadj[k/int64(nc)+1]++
	}
	for c := 0; c < nc; c++ {
		g.xadj[c+1] += g.xadj[c]
	}
	at := 0
	for _, k := range keys {
		g.adj[at] = int(k % int64(nc))
		g.ew[at] = acc[k]
		at++
	}
	return g
}

// contract performs one greedy heavy-edge matching level: each
// unmatched vertex in id order pairs with its heaviest-edge unmatched
// neighbor whose combined weight stays under maxVW. Returns the
// contracted graph and the fine-to-coarse map.
func contract(g *coarse, maxVW float64) (*coarse, []int) {
	n := g.n()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for v := 0; v < n; v++ {
		if match[v] >= 0 {
			continue
		}
		best, bw := -1, 0.0
		for j := g.xadj[v]; j < g.xadj[v+1]; j++ {
			u := g.adj[j]
			if match[u] >= 0 || g.vw[v]+g.vw[u] > maxVW {
				continue
			}
			if g.ew[j] > bw || (g.ew[j] == bw && (best < 0 || u < best)) {
				best, bw = u, g.ew[j]
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v
		}
	}
	cmap := make([]int, n)
	nc := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // representative: self-matched or pair leader
			cmap[v] = nc
			if match[v] > v {
				cmap[match[v]] = nc
			}
			nc++
		}
	}
	vw := make([]float64, nc)
	acc := make(map[int64]float64, len(g.adj)/2)
	for v := 0; v < n; v++ {
		vw[cmap[v]] += g.vw[v]
		cv := int64(cmap[v])
		for j := g.xadj[v]; j < g.xadj[v+1]; j++ {
			cu := int64(cmap[g.adj[j]])
			if cu != cv {
				acc[cv*int64(nc)+cu] += g.ew[j]
			}
		}
	}
	return buildCoarse(nc, vw, acc), cmap
}

// lpRefine runs capacity-constrained positive-gain sweeps over the
// resident graph: a vertex moves to the part with the largest weighted
// connectivity gain that still has room, ties toward the lighter
// target. Sweeps alternate direction and stop when a full sweep moves
// nothing.
func lpRefine(g *coarse, part []int, nparts int, capacity float64, sweeps int) {
	n := g.n()
	loads := make([]float64, nparts)
	for v := 0; v < n; v++ {
		loads[part[v]] += g.vw[v]
	}
	conn := make([]float64, nparts)
	touched := make([]int, 0, nparts)
	for s := 0; s < sweeps; s++ {
		moved := 0
		for i := 0; i < n; i++ {
			v := i
			if s%2 == 1 {
				v = n - 1 - i
			}
			cur := part[v]
			touched = touched[:0]
			for j := g.xadj[v]; j < g.xadj[v+1]; j++ {
				q := part[g.adj[j]]
				if conn[q] == 0 {
					touched = append(touched, q)
				}
				conn[q] += g.ew[j]
			}
			// Strict total order (gain, load, part id) — the winner must
			// not depend on adjacency traversal order, or bit-identity
			// across equivalent graph encodings breaks.
			best, bestGain := cur, 0.0
			for _, q := range touched {
				if q == cur || loads[q]+g.vw[v] > capacity {
					continue
				}
				gain := conn[q] - conn[cur]
				if gain > bestGain ||
					(gain == bestGain && gain > 0 && (loads[q] < loads[best] ||
						(loads[q] == loads[best] && q < best))) {
					best, bestGain = q, gain
				}
			}
			for _, q := range touched {
				conn[q] = 0
			}
			if best != cur {
				loads[cur] -= g.vw[v]
				loads[best] += g.vw[v]
				part[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// solveCoarse partitions the resident coarse model with a
// mini-multilevel: match-and-contract down to a few dozen vertices,
// place the coarsest greedily in decreasing-weight order, then project
// and lpRefine back up through every level (the input level included).
func solveCoarse(cg *coarse, nparts int, capacity float64, opt Options) []int {
	type level struct {
		g    *coarse
		cmap []int
	}
	var ladder []level
	cur := cg
	// Stop with ~32 vertices per part and cap matched weights near the
	// coarsest average: refinement moves must stay much smaller than
	// the per-part slack (capacity - ideal), or the coarsest placement
	// freezes and no sweep can fix it.
	coarsenTo := 32 * nparts
	if coarsenTo < 64 {
		coarsenTo = 64
	}
	var totalW float64
	for _, w := range cg.vw {
		totalW += w
	}
	maxVW := 1.5 * totalW / float64(coarsenTo)
	if maxVW > capacity/4 {
		maxVW = capacity / 4
	}
	for cur.n() > coarsenTo {
		next, cmap := contract(cur, maxVW)
		if next.n()*20 > cur.n()*19 {
			break // matching stalled
		}
		ladder = append(ladder, level{cur, cmap})
		cur = next
	}

	// Initial placement: heaviest first (bin packing), scored by the
	// configured objective through the shared weighted placer core.
	nc := cur.n()
	var nedges int
	for _, w := range cur.ew {
		nedges += int(w)
	}
	pl := NewPlacer(nc, nedges/2, nparts, totalW, opt)
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cur.vw[order[a]] > cur.vw[order[b]] })
	part := make([]int, nc)
	for i := range part {
		part[i] = -1
	}
	for _, v := range order {
		q := pl.PlaceWeighted(v, cur.adj[cur.xadj[v]:cur.xadj[v+1]], cur.ew[cur.xadj[v]:cur.xadj[v+1]], part)
		part[v] = q
		pl.Add(q, cur.vw[v])
	}
	lpRefine(cur, part, nparts, capacity, 16)

	for i := len(ladder) - 1; i >= 0; i-- {
		lv := ladder[i]
		fpart := make([]int, lv.g.n())
		for v := range fpart {
			fpart[v] = part[lv.cmap[v]]
		}
		lpRefine(lv.g, fpart, nparts, capacity, 8)
		part = fpart
	}
	return part
}

// bootstrap runs the clustering and model-build stream passes, solves
// the coarse model in memory, and returns the projected full partition
// (every vertex assigned, capacities respected at cluster granularity).
func bootstrap(gs GraphStream, nparts int, w []float64, totalW float64, opt Options) ([]int, error) {
	n := gs.NumVertices()
	capacity := totalW / float64(nparts) * (1 + opt.slack())
	maxCW := totalW * clusterVerts / float64(n)
	if maxCW > capacity/4 {
		maxCW = capacity / 4
	}
	if maxCW <= 0 {
		maxCW = 1
	}

	cl := newClusterer(n, maxCW)
	var slab Slab
	err := eachSlab(gs, &slab, func(s *Slab) {
		for i := 0; i < s.NVerts(); i++ {
			v := s.Lo + i
			cl.assign(v, s.Adj[s.XAdj[i]:s.XAdj[i+1]], vertexW(w, v))
		}
	})
	if err != nil {
		return nil, err
	}

	nc := len(cl.w)
	acc := make(map[int64]float64)
	err = eachSlab(gs, &slab, func(s *Slab) {
		for i := 0; i < s.NVerts(); i++ {
			cv := int64(cl.cluster[s.Lo+i])
			for _, u := range s.Adj[s.XAdj[i]:s.XAdj[i+1]] {
				cu := int64(cl.cluster[u])
				if cu != cv {
					acc[cv*int64(nc)+cu]++
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	cpart := solveCoarse(buildCoarse(nc, cl.w, acc), nparts, capacity, opt)
	part := make([]int, n)
	for v := 0; v < n; v++ {
		part[v] = cpart[cl.cluster[v]]
	}
	return part, nil
}

// eachSlab replays gs once, calling fn per slab and enforcing the
// contiguous-coverage contract runPass also checks.
func eachSlab(gs GraphStream, s *Slab, fn func(*Slab)) error {
	if err := gs.Reset(); err != nil {
		return err
	}
	expect := 0
	for {
		err := gs.Next(s)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if s.Lo != expect {
			return fmt.Errorf("stream: slab starts at vertex %d, want %d", s.Lo, expect)
		}
		fn(s)
		expect = s.Lo + s.NVerts()
	}
	if expect != gs.NumVertices() {
		return fmt.Errorf("stream: stream ended at vertex %d of %d", expect, gs.NumVertices())
	}
	return nil
}
