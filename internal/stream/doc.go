// Package stream is the out-of-core streaming layer of the partitioner
// library: bounded-memory graph streams and the one-pass greedy
// partitioner family built on them (registered as the STREAM method of
// internal/partition).
//
// Every method in the resident registry family (BLOCK … MULTILEVEL)
// needs the whole GeoCoL graph in memory before partitioning starts.
// This package drops that assumption. A graph arrives as a GraphStream
// — a replayable sequence of CSR slabs in global vertex order, each
// bounded by the format's fringe caps — and the pass engine places one
// vertex at a time with the linear deterministic greedy (LDG) or
// Fennel objective, keeping only
//
//   - the part assignment vector (the answer itself, 8 bytes/vertex),
//   - the per-part load table (8 bytes/part), and
//   - one slab of adjacency (the resident fringe, bounded by
//     MaxSlabVerts/MaxSlabAdj regardless of graph size)
//
// resident. Edges stream through and are never stored, so graphs
// 10-100x larger than memory partition in O(vertices) space — the
// out-of-core contract Capabilities.OutOfCore declares in the
// registry. Optional buffered restreaming (Options.Restreams) replays
// the stream and re-places every vertex with full knowledge of its
// neighbors' assignments, recovering most of the cut quality a
// single blind pass loses; the quality bar against MULTILEVEL is
// pinned by internal/partition's TestStreamQualityMemoryPin.
//
// The binary edge-stream file format (format.go: header + chunked CSR
// slabs, uvarint-encoded) is what cmd/meshgen -stream emits and
// chaosd-adjacent tooling consumes; its decoder is defensive in the
// style of internal/service/wire.go — every count is bounds-checked
// against the format caps before anything is allocated, and truncated,
// oversized, unsorted or duplicate-edge inputs produce descriptive
// errors, never a panic (FuzzStreamDecode pins this).
//
// The package is deliberately machine-free: it knows nothing about
// ranks or collectives. internal/partition's Streaming adapter runs
// the same Placer core under the SPMD machine, and the two stay
// deterministic with each other at a fixed seed.
package stream
